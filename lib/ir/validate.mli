(** IR well-formedness checking.

    Run before compilation and by tests on every generated workload: a
    validated program compiles without compiler-side assertions firing. *)

type error = { where : string; what : string }

val error_to_string : error -> string

(** [check p] — all violations found (empty = well-formed). Checks: entry
    block first and labelled consistently, block labels unique, every
    block reachable from the entry, terminator targets exist, vars and
    slots in range, direct callees and globals resolve, builtin names are
    known, [main] exists and takes no parameters, symbol names unique. *)
val check : Ir.program -> error list
