type error = { where : string; what : string }

let error_to_string e = Printf.sprintf "%s: %s" e.where e.what

let check (p : Ir.program) =
  let errors = ref [] in
  let err where what = errors := { where; what } :: !errors in
  let func_names = Hashtbl.create 64 in
  let global_names = Hashtbl.create 64 in
  List.iter
    (fun (f : Ir.func) ->
      if Hashtbl.mem func_names f.name then err f.name "duplicate function name";
      Hashtbl.replace func_names f.name f.nparams)
    p.funcs;
  List.iter
    (fun (g : Ir.global) ->
      if Hashtbl.mem global_names g.gname then err g.gname "duplicate global name";
      if Hashtbl.mem func_names g.gname then err g.gname "global shadows function";
      if Ir.init_footprint g.ginit > g.gsize then err g.gname "initialiser exceeds size";
      Hashtbl.replace global_names g.gname ())
    p.globals;
  let sym_exists s = Hashtbl.mem func_names s || Hashtbl.mem global_names s in
  List.iter
    (fun (g : Ir.global) ->
      List.iter
        (function
          | (Ir.Sym_addr s | Ir.Sym_addr_off (s, _)) when not (sym_exists s) ->
              err g.gname (Printf.sprintf "initialiser references unknown symbol %s" s)
          | Ir.Sym_addr _ | Ir.Sym_addr_off _ | Ir.Word _ | Ir.Str _ -> ())
        g.ginit)
    p.globals;
  let check_func (f : Ir.func) =
    let where what = err f.name what in
    if f.nparams > f.nvars then where "nparams exceeds nvars";
    let labels = Hashtbl.create 16 in
    List.iter
      (fun (b : Ir.block) ->
        if Hashtbl.mem labels b.lbl then
          where (Printf.sprintf "duplicate label %d" b.lbl);
        Hashtbl.replace labels b.lbl ())
      f.blocks;
    let check_label l =
      if not (Hashtbl.mem labels l) then where (Printf.sprintf "branch to unknown label %d" l)
    in
    let check_var v =
      if v < 0 || v >= f.nvars then where (Printf.sprintf "var %d out of range" v)
    in
    let check_operand = function
      | Ir.Const _ -> ()
      | Ir.Var v -> check_var v
      | Ir.Global g ->
          if not (Hashtbl.mem global_names g) then
            where (Printf.sprintf "unknown global %s" g)
      | Ir.Func fn ->
          if not (Hashtbl.mem func_names fn) then
            where (Printf.sprintf "unknown function %s" fn)
    in
    let check_callee callee nargs =
      match callee with
      | Ir.Direct name -> (
          match Hashtbl.find_opt func_names name with
          | None -> where (Printf.sprintf "call to unknown function %s" name)
          | Some nparams ->
              if nparams <> nargs then
                where
                  (Printf.sprintf "call to %s with %d args (expects %d)" name nargs nparams))
      | Ir.Indirect op -> check_operand op
      | Ir.Builtin name ->
          if not (List.mem name R2c_machine.Image.builtin_names) then
            where (Printf.sprintf "unknown builtin %s" name)
    in
    let check_instr = function
      | Ir.Mov (v, op) ->
          check_var v;
          check_operand op
      | Ir.Binop (v, _, a, b) | Ir.Cmp (v, _, a, b) ->
          check_var v;
          check_operand a;
          check_operand b
      | Ir.Load (v, base, _) | Ir.Load8 (v, base, _) ->
          check_var v;
          check_operand base
      | Ir.Store (base, _, value) | Ir.Store8 (base, _, value) ->
          check_operand base;
          check_operand value
      | Ir.Slot_addr (v, i) ->
          check_var v;
          if i < 0 || i >= Array.length f.slots then
            where (Printf.sprintf "slot %d out of range" i)
      | Ir.Call (dst, callee, args) ->
          Option.iter check_var dst;
          List.iter check_operand args;
          check_callee callee (List.length args)
    in
    (match f.blocks with
    | [] -> where "no blocks"
    | _ -> ());
    List.iter
      (fun (b : Ir.block) ->
        List.iter check_instr b.body;
        match b.term with
        | Ir.Ret None -> ()
        | Ir.Ret (Some op) -> check_operand op
        | Ir.Br l -> check_label l
        | Ir.Cond_br (c, l1, l2) ->
            check_operand c;
            check_label l1;
            check_label l2)
      f.blocks;
    (* Reachability from the entry block: dead blocks are always a
       generator bug, and they inflate the diversified layout for no
       coverage. (Skipped when labels are duplicated — the successor map
       would be ambiguous.) *)
    match f.blocks with
    | entry :: _ when List.length f.blocks = Hashtbl.length labels ->
        let succs = Hashtbl.create 16 in
        List.iter
          (fun (b : Ir.block) ->
            let s =
              match b.term with
              | Ir.Ret _ -> []
              | Ir.Br l -> [ l ]
              | Ir.Cond_br (_, l1, l2) -> [ l1; l2 ]
            in
            Hashtbl.replace succs b.lbl s)
          f.blocks;
        let seen = Hashtbl.create 16 in
        let rec visit l =
          if Hashtbl.mem labels l && not (Hashtbl.mem seen l) then begin
            Hashtbl.replace seen l ();
            List.iter visit (try Hashtbl.find succs l with Not_found -> [])
          end
        in
        visit entry.Ir.lbl;
        List.iter
          (fun (b : Ir.block) ->
            if not (Hashtbl.mem seen b.lbl) then
              where (Printf.sprintf "unreachable block %d" b.lbl))
          f.blocks;
        (* Use before initialization: a forward may-analysis over the
           same successor map. A non-parameter var read while its
           "never yet defined" fact still holds on some path makes the
           block's entry state ill-defined — the interpreter happens to
           zero-fill, but the diversified lowering is entitled to leave
           whatever the register allocator parked there. *)
        let module ISet = Set.Make (Int) in
        let uses_of_operand = function Ir.Var v -> [ v ] | _ -> [] in
        let uses_of_instr = function
          | Ir.Mov (_, op) | Ir.Load (_, op, _) | Ir.Load8 (_, op, _) -> uses_of_operand op
          | Ir.Binop (_, _, a, b) | Ir.Cmp (_, _, a, b) | Ir.Store (a, _, b)
          | Ir.Store8 (a, _, b) ->
              uses_of_operand a @ uses_of_operand b
          | Ir.Slot_addr _ -> []
          | Ir.Call (_, callee, args) ->
              (match callee with Ir.Indirect op -> uses_of_operand op | _ -> [])
              @ List.concat_map uses_of_operand args
        in
        let def_of_instr = function
          | Ir.Mov (v, _) | Ir.Binop (v, _, _, _) | Ir.Cmp (v, _, _, _)
          | Ir.Load (v, _, _) | Ir.Load8 (v, _, _) | Ir.Slot_addr (v, _) ->
              Some v
          | Ir.Store _ | Ir.Store8 _ -> None
          | Ir.Call (dst, _, _) -> dst
        in
        let uses_of_term = function
          | Ir.Ret (Some op) | Ir.Cond_br (op, _, _) -> uses_of_operand op
          | Ir.Ret None | Ir.Br _ -> []
        in
        let flow ?report maybe (b : Ir.block) =
          let maybe = ref maybe in
          let read k v =
            match report with
            | Some f when ISet.mem v !maybe -> f k v
            | _ -> ()
          in
          List.iteri
            (fun k instr ->
              List.iter (read (Some k)) (uses_of_instr instr);
              match def_of_instr instr with
              | Some v -> maybe := ISet.remove v !maybe
              | None -> ())
            b.body;
          List.iter (read None) (uses_of_term b.term);
          !maybe
        in
        let entry_maybe =
          ISet.of_list
            (List.init (max 0 (f.nvars - f.nparams)) (fun i -> f.nparams + i))
        in
        let at_entry = Hashtbl.create 16 in
        List.iteri
          (fun bi (b : Ir.block) ->
            Hashtbl.replace at_entry b.lbl (if bi = 0 then entry_maybe else ISet.empty))
          f.blocks;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (b : Ir.block) ->
              let out = flow (Hashtbl.find at_entry b.lbl) b in
              List.iter
                (fun l ->
                  match Hashtbl.find_opt at_entry l with
                  | Some cur ->
                      let next = ISet.union cur out in
                      if not (ISet.equal next cur) then begin
                        Hashtbl.replace at_entry l next;
                        changed := true
                      end
                  | None -> ())
                (Hashtbl.find succs b.lbl))
            f.blocks
        done;
        let reported = Hashtbl.create 8 in
        List.iter
          (fun (b : Ir.block) ->
            ignore
              (flow
                 ~report:(fun _k v ->
                   if not (Hashtbl.mem reported (b.lbl, v)) then begin
                     Hashtbl.replace reported (b.lbl, v) ();
                     where
                       (Printf.sprintf "var %d read before any definition (block %d)" v
                          b.lbl)
                   end)
                 (Hashtbl.find at_entry b.lbl) b))
          f.blocks
    | _ -> ()
  in
  List.iter check_func p.funcs;
  (match Ir.find_func p p.main with
  | None -> err "program" (Printf.sprintf "main function %s not found" p.main)
  | Some f -> if f.nparams <> 0 then err p.main "main must take no parameters");
  List.rev !errors
