type t = {
  tags : int array;  (* -1 = invalid *)
  lines : int;
  line_shift : int;
  mutable miss_count : int;
  mutable access_count : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~lines ~line_bytes =
  assert (lines > 0 && lines land (lines - 1) = 0);
  assert (line_bytes > 0 && line_bytes land (line_bytes - 1) = 0);
  {
    tags = Array.make lines (-1);
    lines;
    line_shift = log2 line_bytes;
    miss_count = 0;
    access_count = 0;
  }

let access t ~addr ~len =
  assert (len > 0);
  let first = addr lsr t.line_shift in
  let last = (addr + len - 1) lsr t.line_shift in
  if first = last then begin
    (* Single-line fetch — the overwhelmingly common case for our short
       instructions — skips the loop and the miss accumulator. *)
    t.access_count <- t.access_count + 1;
    let slot = first land (t.lines - 1) in
    if t.tags.(slot) <> first then begin
      t.tags.(slot) <- first;
      t.miss_count <- t.miss_count + 1;
      1
    end
    else 0
  end
  else begin
    let misses = ref 0 in
    for line = first to last do
      t.access_count <- t.access_count + 1;
      let slot = line land (t.lines - 1) in
      if t.tags.(slot) <> line then begin
        t.tags.(slot) <- line;
        incr misses
      end
    done;
    t.miss_count <- t.miss_count + !misses;
    !misses
  end

let line_shift t = t.line_shift

(* Single-line access with the line index precomputed by the caller (the
   tier-3 compiler bakes it in per instruction). Must stay bit-identical
   to the single-line branch of [access]. *)
let access_line t line =
  t.access_count <- t.access_count + 1;
  let slot = line land (t.lines - 1) in
  if Array.unsafe_get t.tags slot <> line then begin
    Array.unsafe_set t.tags slot line;
    t.miss_count <- t.miss_count + 1;
    1
  end
  else 0

let reset t =
  Array.fill t.tags 0 t.lines (-1);
  t.miss_count <- 0;
  t.access_count <- 0

let misses t = t.miss_count

let accesses t = t.access_count
