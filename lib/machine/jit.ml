(* Tier-3 template JIT (ROADMAP item 1).

   Hot functions — detected by cheap per-function call and loop-backedge
   counters — are compiled from their predecoded [Image.pslot] form into
   flat arrays of OCaml closures: one closure per instruction, straight-line
   basic blocks fused into arrays executed without any per-step decode,
   dispatch-table probe, or rip store. Execution enters compiled code at
   function entries and at any basic-block leader (which is what makes loop
   backedges OSR entry points), and leaves it — materializing the full
   interpreter frame: rip, the shared register file, call depth, and the
   cycle/insn/icache counters — at fuel exhaustion, any fault, a builtin
   call, a transfer out of the compiled region, or a deopt on an
   instruction the template compiler does not handle (unresolved symbols).
   Observer and injector attachment deopt one level higher: [Cpu.run]
   routes those to the reference tier before tier 3 is ever consulted.

   The bit-identicality contract is absolute: every cycle is accumulated by
   the same float additions in the same order as [Cpu.execute], base costs
   come from the same [Cost.base_cost], and the cold/deopt path funnels
   through [Cpu.Internal.execute] itself. Cycles are kept in a one-slot
   float array while compiled code runs (a boxed-float record store per
   instruction is the single biggest interpreter cost) and flushed back to
   [Cpu.t] on every exit, including exceptional ones.

   Compiled code is CPU-independent: closures take the machine context as
   an argument and capture only constants, so one code cache serves every
   respawn of a process ([Process.restart] reuses it warm). Caches survive
   re-imaging too: entries are keyed by function entry address and carry a
   digest of the decoded body, so after an incremental rerandomization a
   stale entry is either revalidated (digest unchanged — the function did
   not move or change) or invalidated and recompiled, never executed. *)

exception Unsupported

type config = { call_threshold : int; backedge_threshold : int }

let default_config = { call_threshold = 8; backedge_threshold = 24 }

(* Global default switch, consulted by Loader/Process at attach time.
   R2C_JIT=0 turns tier 3 off fleet-wide without touching call sites. *)
let enabled_ref =
  ref
    (match Sys.getenv_opt "R2C_JIT" with
    | Some ("0" | "false" | "off" | "no") -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

(* The machine context threaded through every compiled closure. All fields
   are aliases into the owning [Cpu.t] except [cyc], the unboxed cycle
   accumulator. *)
type ctx = {
  t : Cpu.t;
  regs : int array;
  ymm : int array;
  mem : Mem.t;
  ic : Icache.t;
  cyc : float array;  (* one slot: the live cycle counter while compiled *)
}

(* A fused basic block: [b_n] instructions at [b_addrs], the first
   [b_n - 1] as effect closures and the last as the terminator. The
   terminator returns the successor block index, [-1] for a transfer out
   of the block structure (rip has been set), or [-2] for a deopt (rip set
   to the instruction the interpreter must retry). *)
type block = {
  b_addrs : int array;
  b_ops : (ctx -> unit) array;
  b_term : ctx -> int;
  b_n : int;
}

type cfunc = {
  f_entry : int;
  mutable f_digest : string;  (* of the decoded body; mutable for [poison] *)
  mutable f_gen : int;  (* cache generation this entry is valid for *)
  f_blocks : block array;
  f_leaders : (int * int) array;  (* (address, block index) per leader *)
}

type stats = {
  mutable compiled : int;
  mutable revalidated : int;
  mutable invalidated : int;
  mutable entry_enters : int;
  mutable osr_enters : int;
  mutable deopts : int;
  mutable tier3_insns : int;
  mutable interp_insns : int;
}

type cache = {
  mutable owner : Image.t;
  mutable profile : Cost.profile;
  mutable cgen : int;
  mutable cfg : config;
  tbl : (int, cfunc) Hashtbl.t;  (* function entry address -> code *)
  (* Dense per-image state, rebuilt lazily whenever [owner] changes: *)
  mutable base : int;
  mutable slot : int array;
      (* per text offset: -1 nothing, -(i+2) entry of uncompiled function
         i, k >= 0 an index into [leaders] *)
  mutable funcs : Image.func_info array;  (* sorted by entry *)
  mutable fcalls : int array;
  mutable fbacks : int array;
  mutable nocompile : bool array;
  mutable leaders : (cfunc * int) array;
  mutable nleaders : int;
  stats : stats;
}

type t = { cpu : Cpu.t; cache : cache; ctx : ctx }

let stats_create () =
  {
    compiled = 0;
    revalidated = 0;
    invalidated = 0;
    entry_enters = 0;
    osr_enters = 0;
    deopts = 0;
    tier3_insns = 0;
    interp_insns = 0;
  }

let create_cache ?(config = default_config) ~profile (img : Image.t) =
  {
    owner = img;
    profile;
    cgen = 0;
    cfg = config;
    tbl = Hashtbl.create 64;
    base = img.Image.text_base;
    slot = [||];
    funcs = [||];
    fcalls = [||];
    fbacks = [||];
    nocompile = [||];
    leaders = [||];
    nleaders = 0;
    stats = stats_create ();
  }

let cache_stats c = c.stats
let stats j = j.cache.stats

(* ------------------------------------------------------------------ *)
(* Template compilation: one closure per instruction.                  *)
(* ------------------------------------------------------------------ *)

let rsp_i = Insn.reg_index Insn.RSP
let rax_i = Insn.reg_index Insn.RAX

let imm_val = function Insn.Abs v -> v | Insn.Sym _ -> raise Unsupported

let ev_mem (m : Insn.mem_operand) : ctx -> int =
  let d = imm_val m.Insn.disp in
  match (m.Insn.base, m.Insn.index) with
  | None, None -> fun _ -> d
  | Some b, None ->
      let bi = Insn.reg_index b in
      fun c -> Array.unsafe_get c.regs bi + d
  | None, Some (r, s) ->
      let ri = Insn.reg_index r and sf = Insn.scale_factor s in
      fun c -> (Array.unsafe_get c.regs ri * sf) + d
  | Some b, Some (r, s) ->
      let bi = Insn.reg_index b
      and ri = Insn.reg_index r
      and sf = Insn.scale_factor s in
      fun c ->
        Array.unsafe_get c.regs bi + (Array.unsafe_get c.regs ri * sf) + d

(* Operand evaluators return (closure, can-fault). The injector hook in
   [Cpu.eval_op] is an identity here: injector attachment forces the
   reference tier, so compiled code never coexists with one. *)
let ev_op (o : Insn.operand) : (ctx -> int) * bool =
  match o with
  | Insn.Imm i ->
      let v = imm_val i in
      ((fun _ -> v), false)
  | Insn.Reg r ->
      let i = Insn.reg_index r in
      ((fun c -> Array.unsafe_get c.regs i), false)
  | Insn.Mem m ->
      let ea = ev_mem m in
      ((fun c -> Mem.read_u64 c.mem (ea c)), true)

let ev_op8 (o : Insn.operand) : (ctx -> int) * bool =
  match o with
  | Insn.Imm i ->
      let v = imm_val i land 0xff in
      ((fun _ -> v), false)
  | Insn.Reg r ->
      let i = Insn.reg_index r in
      ((fun c -> Array.unsafe_get c.regs i land 0xff), false)
  | Insn.Mem m ->
      let ea = ev_mem m in
      ((fun c -> Mem.read_u8 c.mem (ea c) land 0xff), true)

let ev_cond (cnd : Insn.cond) : ctx -> bool =
  match cnd with
  | Insn.Eq -> fun c -> c.t.Cpu.cmp_l = c.t.Cpu.cmp_r
  | Insn.Ne -> fun c -> c.t.Cpu.cmp_l <> c.t.Cpu.cmp_r
  | Insn.Lt -> fun c -> c.t.Cpu.cmp_l < c.t.Cpu.cmp_r
  | Insn.Le -> fun c -> c.t.Cpu.cmp_l <= c.t.Cpu.cmp_r
  | Insn.Gt -> fun c -> c.t.Cpu.cmp_l > c.t.Cpu.cmp_r
  | Insn.Ge -> fun c -> c.t.Cpu.cmp_l >= c.t.Cpu.cmp_r

let vload n i (m : Insn.mem_operand) =
  let ea = ev_mem m in
  let base = i * 8 in
  fun c ->
    let a = ea c in
    for k = 0 to n - 1 do
      c.ymm.(base + k) <- Mem.read_u64 c.mem (a + (8 * k))
    done

let vstore n (m : Insn.mem_operand) i =
  let ea = ev_mem m in
  let base = i * 8 in
  fun c ->
    let a = ea c in
    for k = 0 to n - 1 do
      Mem.write_u64 c.mem (a + (8 * k)) c.ymm.(base + k)
    done

(* Effect closure for a non-control instruction, plus whether it can
   fault (which decides whether a rip-materializing handler wraps it).
   Every arm replicates the corresponding [Cpu.execute] arm exactly,
   including evaluation order at fault points. *)
let compile_effect ~addr (insn : Insn.t) : (ctx -> unit) * bool =
  match insn with
  | Insn.Mov (Insn.Reg r, Insn.Imm i) ->
      let ri = Insn.reg_index r and v = imm_val i in
      ((fun c -> Array.unsafe_set c.regs ri v), false)
  | Insn.Mov (Insn.Reg r, Insn.Reg s) ->
      let ri = Insn.reg_index r and si = Insn.reg_index s in
      ((fun c -> Array.unsafe_set c.regs ri (Array.unsafe_get c.regs si)), false)
  | Insn.Mov (Insn.Reg r, Insn.Mem m) ->
      let ri = Insn.reg_index r and ea = ev_mem m in
      ((fun c -> Array.unsafe_set c.regs ri (Mem.read_u64 c.mem (ea c))), true)
  | Insn.Mov (Insn.Mem m, src) ->
      let ev, _ = ev_op src in
      let ea = ev_mem m in
      ( (fun c ->
          let v = ev c in
          Mem.write_u64 c.mem (ea c) v),
        true )
  | Insn.Mov (Insn.Imm _, _) -> raise Unsupported
  | Insn.Mov8 (Insn.Reg r, src) ->
      let ri = Insn.reg_index r in
      let ev, cf = ev_op8 src in
      ((fun c -> Array.unsafe_set c.regs ri (ev c)), cf)
  | Insn.Mov8 (Insn.Mem m, src) ->
      let ev, _ = ev_op8 src in
      let ea = ev_mem m in
      ( (fun c ->
          let v = ev c in
          Mem.write_u8 c.mem (ea c) v),
        true )
  | Insn.Mov8 (Insn.Imm _, _) -> raise Unsupported
  | Insn.Lea (r, m) ->
      let ri = Insn.reg_index r and ea = ev_mem m in
      ((fun c -> Array.unsafe_set c.regs ri (ea c)), false)
  | Insn.Push o ->
      let ev, _ = ev_op o in
      ( (fun c ->
          let v = ev c in
          let rsp = Array.unsafe_get c.regs rsp_i - 8 in
          Mem.write_u64 c.mem rsp v;
          Array.unsafe_set c.regs rsp_i rsp),
        true )
  | Insn.Pop r ->
      let ri = Insn.reg_index r in
      ( (fun c ->
          let rsp = Array.unsafe_get c.regs rsp_i in
          let v = Mem.read_u64 c.mem rsp in
          Array.unsafe_set c.regs rsp_i (rsp + 8);
          Array.unsafe_set c.regs ri v),
        true )
  | Insn.Binop (op, r, o) ->
      let ri = Insn.reg_index r in
      let ev, cf = ev_op o in
      let eff =
        match op with
        | Insn.Add ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri + ev c)
        | Insn.Sub ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri - ev c)
        | Insn.Imul ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri * ev c)
        | Insn.And ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri land ev c)
        | Insn.Or ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri lor ev c)
        | Insn.Xor ->
            fun c ->
              Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri lxor ev c)
        | Insn.Shl ->
            fun c ->
              Array.unsafe_set c.regs ri
                (Array.unsafe_get c.regs ri lsl (ev c land 63))
        | Insn.Shr ->
            fun c ->
              Array.unsafe_set c.regs ri
                (Array.unsafe_get c.regs ri lsr (ev c land 63))
        | Insn.Sar ->
            fun c ->
              Array.unsafe_set c.regs ri
                (Array.unsafe_get c.regs ri asr (ev c land 63))
      in
      (eff, cf)
  | Insn.Div (r, o) ->
      let ri = Insn.reg_index r in
      let ev, _ = ev_op o in
      ( (fun c ->
          let d = ev c in
          if d = 0 then Fault.raise_fault (Division_by_zero { rip = addr });
          Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri / d)),
        true )
  | Insn.Rem (r, o) ->
      let ri = Insn.reg_index r in
      let ev, _ = ev_op o in
      ( (fun c ->
          let d = ev c in
          if d = 0 then Fault.raise_fault (Division_by_zero { rip = addr });
          Array.unsafe_set c.regs ri (Array.unsafe_get c.regs ri mod d)),
        true )
  | Insn.Neg r ->
      let ri = Insn.reg_index r in
      ((fun c -> Array.unsafe_set c.regs ri (-Array.unsafe_get c.regs ri)), false)
  | Insn.Cmp (a, b) ->
      let eva, fa = ev_op a in
      let evb, fb = ev_op b in
      ( (fun c ->
          c.t.Cpu.cmp_l <- eva c;
          c.t.Cpu.cmp_r <- evb c),
        fa || fb )
  | Insn.Setcc (cnd, r) ->
      let ri = Insn.reg_index r in
      let tst = ev_cond cnd in
      ((fun c -> Array.unsafe_set c.regs ri (if tst c then 1 else 0)), false)
  | Insn.Nop _ -> ((fun _ -> ()), false)
  | Insn.Trap -> ((fun _ -> Fault.raise_fault (Booby_trap { addr })), true)
  | Insn.Vload (i, m) -> (vload 4 i m, true)
  | Insn.Vstore (m, i) -> (vstore 4 m i, true)
  | Insn.Vload128 (i, m) -> (vload 2 i m, true)
  | Insn.Vstore128 (m, i) -> (vstore 2 m i, true)
  | Insn.Vload512 (i, m) -> (vload 8 i m, true)
  | Insn.Vstore512 (m, i) -> (vstore 8 m i, true)
  | Insn.Vzeroupper ->
      ( (fun c ->
          for i = 0 to 15 do
            for k = 2 to 7 do
              c.ymm.((i * 8) + k) <- 0
            done
          done),
        false )
  | Insn.Jmp _ | Insn.Jmp_ind _ | Insn.Jcc _ | Insn.Call _ | Insn.Call_ind _
  | Insn.Ret | Insn.Halt ->
      (* control instructions are terminators, never plain effects *)
      raise Unsupported

(* Fetch accounting, precomputed per instruction. The float additions run
   in exactly [Cpu.execute]'s order — base, then fetch, then the miss
   penalty term — on the live [cyc] slot; float addition is
   non-associative, so the order is part of the contract. *)
let mk_core (p : Cost.profile) ~addr ~size ~(cb : float) (eff : ctx -> unit) :
    ctx -> unit =
  let cf = float_of_int size /. p.Cost.fetch_bytes_per_cycle in
  let pen = p.Cost.icache_miss_penalty in
  let ls =
    let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
    log2 0 p.Cost.icache_line_bytes
  in
  let first = addr lsr ls and last = (addr + size - 1) lsr ls in
  if first = last then
    fun c ->
      let m = Icache.access_line c.ic first in
      Array.unsafe_set c.cyc 0
        (Array.unsafe_get c.cyc 0 +. cb +. cf +. (float_of_int m *. pen));
      let t = c.t in
      t.Cpu.insns <- t.Cpu.insns + 1;
      eff c
  else
    fun c ->
      let m = Icache.access c.ic ~addr ~len:size in
      Array.unsafe_set c.cyc 0
        (Array.unsafe_get c.cyc 0 +. cb +. cf +. (float_of_int m *. pen));
      let t = c.t in
      t.Cpu.insns <- t.Cpu.insns + 1;
      eff c

(* Exec-permission probes are kept only at block entries and page
   transitions: text protections can only change at builtin boundaries,
   which always exit compiled code, so within one runner activation the
   elided same-page probes are provably no-ops. *)
let wrap_op ~check ~can_fault ~addr (core : ctx -> unit) : ctx -> unit =
  if check then fun c ->
    try
      Mem.check_exec c.mem addr;
      core c
    with Fault.Fault _ as e ->
      c.t.Cpu.rip <- addr;
      raise e
  else if can_fault then fun c ->
    try core c
    with Fault.Fault _ as e ->
      c.t.Cpu.rip <- addr;
      raise e
  else core

let compile_op p ~check ~addr ~size insn : ctx -> unit =
  let eff, can_fault = compile_effect ~addr insn in
  let core = mk_core p ~addr ~size ~cb:(Cost.base_cost p insn) eff in
  wrap_op ~check ~can_fault ~addr core

(* do_call / shadow_check mirrors, with rip passed explicitly (the
   interpreter reads the already-correct [t.rip]; compiled code does not
   maintain it). *)
let do_call_c c ~addr ~target ~next =
  let t = c.t in
  t.Cpu.calls <- t.Cpu.calls + 1;
  let d = t.Cpu.depth + 1 in
  t.Cpu.depth <- d;
  if d > t.Cpu.max_depth then t.Cpu.max_depth <- d;
  let rsp = Array.unsafe_get c.regs rsp_i in
  if t.Cpu.strict_align && rsp land 15 <> 0 then
    Fault.raise_fault (Misaligned_stack { rip = addr; rsp });
  if t.Cpu.image.Image.shadow_stack then t.Cpu.shadow := next :: !(t.Cpu.shadow);
  let rsp' = rsp - 8 in
  Mem.write_u64 c.mem rsp' next;
  Array.unsafe_set c.regs rsp_i rsp';
  t.Cpu.rip <- target

let shadow_check_c c ~addr ra =
  let t = c.t in
  if t.Cpu.image.Image.shadow_stack then begin
    match !(t.Cpu.shadow) with
    | expected :: rest ->
        if ra <> expected then
          Fault.raise_fault (Cfi_violation { rip = addr; expected; got = ra });
        t.Cpu.shadow := rest
    | [] -> Fault.raise_fault (Cfi_violation { rip = addr; expected = 0; got = ra })
  end

let wrap_term ~check ~can_fault ~addr (core : ctx -> int) : ctx -> int =
  if check then fun c ->
    try
      Mem.check_exec c.mem addr;
      core c
    with Fault.Fault _ as e ->
      c.t.Cpu.rip <- addr;
      raise e
  else if can_fault then fun c ->
    try core c
    with Fault.Fault _ as e ->
      c.t.Cpu.rip <- addr;
      raise e
  else core

let deopt_term : ctx -> int = fun _ -> -2

(* Terminator for a control instruction ending a block. [bid] maps
   in-function leader addresses to block indices; targets outside it set
   rip and exit the runner. *)
let compile_term p ~check ~addr ~size insn ~(bid : (int, int) Hashtbl.t) :
    ctx -> int =
  let next = addr + size in
  let acct = mk_core p ~addr ~size ~cb:(Cost.base_cost p insn) (fun _ -> ()) in
  let fall = match Hashtbl.find_opt bid next with Some k -> k | None -> -1 in
  match insn with
  | Insn.Jmp (Insn.TAbs tgt) -> (
      match Hashtbl.find_opt bid tgt with
      | Some k ->
          wrap_term ~check ~can_fault:false ~addr (fun c ->
              acct c;
              k)
      | None ->
          wrap_term ~check ~can_fault:false ~addr (fun c ->
              acct c;
              c.t.Cpu.rip <- tgt;
              -1))
  | Insn.Jmp_ind o ->
      let ev, cf = ev_op o in
      wrap_term ~check ~can_fault:cf ~addr (fun c ->
          acct c;
          c.t.Cpu.rip <- ev c;
          -1)
  | Insn.Jcc (cnd, Insn.TAbs tgt) -> (
      let tst = ev_cond cnd in
      let delta = p.Cost.jcc_taken -. p.Cost.jcc_not_taken in
      match Hashtbl.find_opt bid tgt with
      | Some k ->
          wrap_term ~check ~can_fault:false ~addr (fun c ->
              acct c;
              if tst c then begin
                Array.unsafe_set c.cyc 0 (Array.unsafe_get c.cyc 0 +. delta);
                k
              end
              else if fall >= 0 then fall
              else begin
                c.t.Cpu.rip <- next;
                -1
              end)
      | None ->
          wrap_term ~check ~can_fault:false ~addr (fun c ->
              acct c;
              if tst c then begin
                Array.unsafe_set c.cyc 0 (Array.unsafe_get c.cyc 0 +. delta);
                c.t.Cpu.rip <- tgt;
                -1
              end
              else if fall >= 0 then fall
              else begin
                c.t.Cpu.rip <- next;
                -1
              end))
  | Insn.Call (Insn.TAbs tgt) ->
      wrap_term ~check ~can_fault:true ~addr (fun c ->
          acct c;
          do_call_c c ~addr ~target:tgt ~next;
          -1)
  | Insn.Call_ind o ->
      let ev, _ = ev_op o in
      wrap_term ~check ~can_fault:true ~addr (fun c ->
          acct c;
          let tgt = ev c in
          do_call_c c ~addr ~target:tgt ~next;
          -1)
  | Insn.Ret ->
      wrap_term ~check ~can_fault:true ~addr (fun c ->
          acct c;
          let t = c.t in
          let rsp = Array.unsafe_get c.regs rsp_i in
          let ra = Mem.read_u64 c.mem rsp in
          shadow_check_c c ~addr ra;
          Array.unsafe_set c.regs rsp_i (rsp + 8);
          t.Cpu.depth <-
            (let d = t.Cpu.depth - 1 in
             if d < 0 then 0 else d);
          t.Cpu.rip <- ra;
          -1)
  | Insn.Halt ->
      wrap_term ~check ~can_fault:false ~addr (fun c ->
          acct c;
          let t = c.t in
          t.Cpu.halted <- true;
          t.Cpu.exit_code <- Array.unsafe_get c.regs rax_i;
          t.Cpu.rip <- addr;
          -1)
  | Insn.Jmp (Insn.TSym _) | Insn.Jcc (_, Insn.TSym _) | Insn.Call (Insn.TSym _)
    ->
      (* unresolved targets fault in the interpreter; deopt reproduces it *)
      deopt_term
  | _ ->
      (* a non-control instruction in terminator position (block split
         before a leader, or the last instruction of the body) *)
      let op = compile_op p ~check ~addr ~size insn in
      if fall >= 0 then fun c ->
        op c;
        fall
      else fun c ->
        op c;
        c.t.Cpu.rip <- next;
        -1

(* ------------------------------------------------------------------ *)
(* Function bodies: scan, digest, carve into blocks, compile.          *)
(* ------------------------------------------------------------------ *)

(* Decoded body of a function: contiguous instructions from its entry, in
   the current predecode table. Stops at padding/builtin slots. Used both
   to compile and to revalidate a stale cache entry, so it must be a pure
   function of the current image. *)
let scan_body (pd : Image.pslot array) ~base (fi : Image.func_info) :
    (int * Insn.t * int) list =
  let lo = fi.Image.entry - base in
  let hi = min (lo + fi.Image.code_len) (Array.length pd) in
  let rec go off acc =
    if off < 0 || off >= hi then List.rev acc
    else
      match pd.(off) with
      | Image.P_insn (insn, size) when size > 0 ->
          go (off + size) ((base + off, insn, size) :: acc)
      | _ -> List.rev acc
  in
  if lo < 0 || lo >= Array.length pd then [] else go lo []

let body_digest (fi : Image.func_info) insns =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int fi.Image.entry);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int fi.Image.code_len);
  List.iter
    (fun (a, i, s) ->
      Buffer.add_string b (Printf.sprintf "|%d:%d:%s" a s (Insn.to_string i)))
    insns;
  Digest.string (Buffer.contents b)

let is_control = function
  | Insn.Jmp _ | Insn.Jmp_ind _ | Insn.Jcc _ | Insn.Call _ | Insn.Call_ind _
  | Insn.Ret | Insn.Halt ->
      true
  | _ -> false

let compile_func (p : Cost.profile) ~gen (fi : Image.func_info) insns : cfunc =
  let arr = Array.of_list insns in
  let n = Array.length arr in
  let addr_set = Hashtbl.create (2 * n) in
  Array.iter (fun (a, _, _) -> Hashtbl.replace addr_set a ()) arr;
  (* Leaders: the entry, every branch target inside the body, and the
     fall-through successor of every control instruction. Each leader is
     an OSR entry point. *)
  let leader = Hashtbl.create 16 in
  let mark a = if Hashtbl.mem addr_set a then Hashtbl.replace leader a () in
  (let a0, _, _ = arr.(0) in
   Hashtbl.replace leader a0 ());
  Array.iter
    (fun (a, insn, s) ->
      if is_control insn then begin
        mark (a + s);
        match insn with
        | Insn.Jmp (Insn.TAbs t) -> mark t
        | Insn.Jcc (_, Insn.TAbs t) -> mark t
        | _ -> ()
      end)
    arr;
  (* Carve [arr] into maximal straight-line blocks. *)
  let blocks_idx = ref [] in
  let i = ref 0 in
  while !i < n do
    let s = !i in
    let j = ref s in
    let fin = ref false in
    while not !fin do
      let _, insn, _ = arr.(!j) in
      if is_control insn || !j + 1 >= n then fin := true
      else begin
        let na, _, _ = arr.(!j + 1) in
        if Hashtbl.mem leader na then fin := true else incr j
      end
    done;
    blocks_idx := (s, !j) :: !blocks_idx;
    i := !j + 1
  done;
  let blocks_idx = Array.of_list (List.rev !blocks_idx) in
  let bid = Hashtbl.create 16 in
  Array.iteri
    (fun k (s, _) ->
      let a, _, _ = arr.(s) in
      Hashtbl.replace bid a k)
    blocks_idx;
  let compile_block (s, e) =
    let bn = e - s + 1 in
    let need_check k =
      k = 0
      ||
      let pa, _, _ = arr.(s + k - 1) in
      let a, _, _ = arr.(s + k) in
      Addr.page_base a <> Addr.page_base pa
    in
    (* Compile effects until one is unsupported; the block then truncates
       there with a deopt terminator (the interpreter retries that
       instruction; anything after it stays cold until the next leader). *)
    let ops = ref [] in
    let cut = ref (-1) in
    (try
       for k = 0 to bn - 2 do
         let a, insn, sz = arr.(s + k) in
         ops := compile_op p ~check:(need_check k) ~addr:a ~size:sz insn :: !ops
       done
     with Unsupported -> cut := List.length !ops);
    let term, bn =
      if !cut >= 0 then (deopt_term, !cut + 1)
      else
        let la, linsn, lsz = arr.(e) in
        ( (try compile_term p ~check:(need_check (bn - 1)) ~addr:la ~size:lsz
                 linsn ~bid
           with Unsupported -> deopt_term),
          bn )
    in
    {
      b_addrs =
        Array.init bn (fun k ->
            let a, _, _ = arr.(s + k) in
            a);
      b_ops = Array.of_list (List.rev !ops);
      b_term = term;
      b_n = bn;
    }
  in
  let f_blocks = Array.map compile_block blocks_idx in
  let f_leaders =
    Array.mapi
      (fun k (s, _) ->
        let a, _, _ = arr.(s) in
        (a, k))
      blocks_idx
  in
  {
    f_entry = fi.Image.entry;
    f_digest = body_digest fi insns;
    f_gen = gen;
    f_blocks;
    f_leaders;
  }

(* ------------------------------------------------------------------ *)
(* Cache state: dense slot table, leader registry, (un)installation.   *)
(* ------------------------------------------------------------------ *)

let build_state cache (img : Image.t) =
  let funcs = Image.funcs_by_entry img in
  let nf = Array.length funcs in
  cache.base <- img.Image.text_base;
  cache.funcs <- funcs;
  let tlen = max 1 img.Image.text_len in
  let slot = Array.make tlen (-1) in
  Array.iteri
    (fun i (fi : Image.func_info) ->
      let off = fi.Image.entry - img.Image.text_base in
      if off >= 0 && off < tlen then slot.(off) <- -(i + 2))
    funcs;
  cache.slot <- slot;
  cache.fcalls <- Array.make (max 1 nf) 0;
  cache.fbacks <- Array.make (max 1 nf) 0;
  cache.nocompile <- Array.make (max 1 nf) false;
  cache.leaders <- [||];
  cache.nleaders <- 0

let push_leader cache f bi =
  let n = cache.nleaders in
  if n = Array.length cache.leaders then begin
    let a = Array.make (max 64 (2 * n)) (f, bi) in
    Array.blit cache.leaders 0 a 0 n;
    cache.leaders <- a
  end;
  cache.leaders.(n) <- (f, bi);
  cache.nleaders <- n + 1;
  n

(* The slot value a text offset reverts to when compiled code is removed:
   a function-entry marker if the current image has an entry there. *)
let entry_marker cache addr =
  let fs = cache.funcs in
  let lo = ref 0 and hi = ref (Array.length fs - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let e = fs.(mid).Image.entry in
    if e = addr then begin
      res := mid;
      lo := !hi + 1
    end
    else if e < addr then lo := mid + 1
    else hi := mid - 1
  done;
  if !res >= 0 then -(!res + 2) else -1

let install cache f =
  Array.iter
    (fun (a, bix) ->
      let off = a - cache.base in
      if off >= 0 && off < Array.length cache.slot then
        cache.slot.(off) <- push_leader cache f bix)
    f.f_leaders

let uninstall cache f =
  Array.iter
    (fun (a, _) ->
      let off = a - cache.base in
      if off >= 0 && off < Array.length cache.slot then begin
        let s = cache.slot.(off) in
        if s >= 0 then begin
          let g, _ = cache.leaders.(s) in
          if g == f then cache.slot.(off) <- entry_marker cache a
        end
      end)
    f.f_leaders

(* Last function whose entry is <= addr and whose body covers it. *)
let func_covering cache addr =
  let fs = cache.funcs in
  let lo = ref 0 and hi = ref (Array.length fs - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if fs.(mid).Image.entry <= addr then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  let i = !res in
  if i >= 0 && addr < fs.(i).Image.entry + fs.(i).Image.code_len then i else -1

(* Compile (or adopt) function [fidx] of the current image. A cached entry
   from an earlier generation is revalidated against the digest of the
   current decoded body: unchanged bodies are re-installed as-is (the
   common case for functions an incremental rerandomization did not move);
   anything else is dropped and recompiled — a stale entry never runs. *)
let try_compile j fidx =
  let cache = j.cache in
  let fi = cache.funcs.(fidx) in
  let pd = Cpu.Internal.predecoded j.cpu in
  let insns = scan_body pd ~base:cache.base fi in
  if insns = [] then cache.nocompile.(fidx) <- true
  else begin
    let st = cache.stats in
    let fresh () =
      match compile_func cache.profile ~gen:cache.cgen fi insns with
      | f ->
          Hashtbl.replace cache.tbl fi.Image.entry f;
          install cache f;
          st.compiled <- st.compiled + 1
      | exception Unsupported -> cache.nocompile.(fidx) <- true
    in
    match Hashtbl.find_opt cache.tbl fi.Image.entry with
    | Some f when f.f_gen = cache.cgen -> ()
    | Some f when f.f_digest = body_digest fi insns ->
        f.f_gen <- cache.cgen;
        install cache f;
        st.revalidated <- st.revalidated + 1
    | Some _ ->
        Hashtbl.remove cache.tbl fi.Image.entry;
        st.invalidated <- st.invalidated + 1;
        fresh ()
    | None -> fresh ()
  end

(* ------------------------------------------------------------------ *)
(* The runner.                                                         *)
(* ------------------------------------------------------------------ *)

(* Execute compiled blocks of [f] starting at block [bi0] with at most
   [budget0] instructions. Returns instructions retired, or
   [-(retired + 1)] when the exit is a deopt (rip points at an
   instruction the caller must interpret). The cycle counter lives in
   [ctx.cyc] for the duration and is flushed back on every exit,
   exceptional ones included; rip is materialized at every exit point. *)
let exec_cfunc (j : t) (f : cfunc) bi0 budget0 =
  let c = j.ctx in
  let t = j.cpu in
  let cache = j.cache in
  let slot = cache.slot in
  let nslots = Array.length slot in
  c.cyc.(0) <- t.Cpu.cycles;
  let consumed = ref 0 in
  let deopt = ref false in
  let rec loop blocks bi budget =
    let b = Array.unsafe_get blocks bi in
    let n = b.b_n in
    if budget < n then begin
      (* fuel exhaustion mid-block: retire what the budget allows and
         materialize rip at the first unexecuted instruction *)
      for k = 0 to budget - 1 do
        (Array.unsafe_get b.b_ops k) c
      done;
      consumed := !consumed + budget;
      t.Cpu.rip <- Array.unsafe_get b.b_addrs budget
    end
    else begin
      let nops = n - 1 in
      for k = 0 to nops - 1 do
        (Array.unsafe_get b.b_ops k) c
      done;
      let k = b.b_term c in
      if k >= 0 then begin
        consumed := !consumed + n;
        if budget - n > 0 then loop blocks k (budget - n)
        else t.Cpu.rip <- Array.unsafe_get (Array.unsafe_get blocks k).b_addrs 0
      end
      else if k = -1 then begin
        consumed := !consumed + n;
        (* cross-function continuation: a call, return or tail jump whose
           target is itself a compiled leader stays in the runner rather
           than bouncing through the outer loop (the dominant cost on
           call-heavy workloads) *)
        let budget = budget - n in
        if budget > 0 && not t.Cpu.halted then begin
          let off = t.Cpu.rip - cache.base in
          if off >= 0 && off < nslots then begin
            let s = Array.unsafe_get slot off in
            if s >= 0 then begin
              let f', bi' = Array.unsafe_get cache.leaders s in
              let st = cache.stats in
              if bi' = 0 then st.entry_enters <- st.entry_enters + 1
              else st.osr_enters <- st.osr_enters + 1;
              loop f'.f_blocks bi' budget
            end
          end
        end
      end
      else begin
        consumed := !consumed + nops;
        t.Cpu.rip <- Array.unsafe_get b.b_addrs nops;
        deopt := true
      end
    end
  in
  (try loop f.f_blocks bi0 budget0
   with e ->
     t.Cpu.cycles <- c.cyc.(0);
     raise e);
  t.Cpu.cycles <- c.cyc.(0);
  if !deopt then -(!consumed + 1) else !consumed

(* One cold instruction through the shared interpreter core (the OSR exit
   path and everything not yet hot). *)
let interp_step j pd rip off =
  let t = j.cpu in
  Mem.check_exec t.Cpu.mem rip;
  (match Array.unsafe_get pd off with
  | Image.P_insn (insn, size) -> Cpu.Internal.execute t rip insn size
  | Image.P_builtin name -> Cpu.Internal.step_builtin t name
  | Image.P_none -> Fault.raise_fault (Invalid_opcode { addr = rip }));
  j.cache.stats.interp_insns <- j.cache.stats.interp_insns + 1

let rec go j pd budget =
  let t = j.cpu in
  if t.Cpu.halted then Cpu.Halted
  else if budget <= 0 then Cpu.Fuel_exhausted
  else begin
    let rip = t.Cpu.rip in
    let cache = j.cache in
    let off = rip - cache.base in
    if off >= 0 && off < Array.length cache.slot then begin
      let s = Array.unsafe_get cache.slot off in
      if s >= 0 then begin
        (* compiled leader: enter tier 3 (block 0 = function entry,
           anything else is an OSR entry at a block leader) *)
        let f, bi = Array.unsafe_get cache.leaders s in
        let st = cache.stats in
        if bi = 0 then st.entry_enters <- st.entry_enters + 1
        else st.osr_enters <- st.osr_enters + 1;
        let r = exec_cfunc j f bi budget in
        if r >= 0 then begin
          st.tier3_insns <- st.tier3_insns + r;
          go j pd (budget - r)
        end
        else begin
          let consumed = -r - 1 in
          st.tier3_insns <- st.tier3_insns + consumed;
          st.deopts <- st.deopts + 1;
          (* the deopt instruction itself runs in the interpreter; the
             budget always has room for it (a deopt exit retires at most
             budget - 1 instructions) *)
          interp_step j pd t.Cpu.rip (t.Cpu.rip - cache.base);
          go j pd (budget - consumed - 1)
        end
      end
      else begin
        if s <= -2 then begin
          (* uncompiled function entry: bump its call counter *)
          let fidx = -s - 2 in
          if not (Array.unsafe_get cache.nocompile fidx) then begin
            let ctr = Array.unsafe_get cache.fcalls fidx + 1 in
            Array.unsafe_set cache.fcalls fidx ctr;
            if ctr >= cache.cfg.call_threshold then try_compile j fidx
          end
        end;
        let s2 = Array.unsafe_get cache.slot off in
        if s2 >= 0 then go j pd budget (* just compiled: re-probe *)
        else begin
          interp_step j pd rip off;
          (* a backward transfer within one function is a loop backedge *)
          let rip' = t.Cpu.rip in
          if rip' < rip && rip' >= cache.base && not t.Cpu.halted then begin
            let fidx = func_covering cache rip' in
            if
              fidx >= 0
              && rip
                 < cache.funcs.(fidx).Image.entry
                   + cache.funcs.(fidx).Image.code_len
              && not (Array.unsafe_get cache.nocompile fidx)
            then begin
              let ctr = cache.fbacks.(fidx) + 1 in
              cache.fbacks.(fidx) <- ctr;
              if ctr >= cache.cfg.backedge_threshold then try_compile j fidx
            end
          end;
          go j pd (budget - 1)
        end
      end
    end
    else begin
      (* out-of-text rip: fault exactly as the interpreter tiers do *)
      Mem.check_exec t.Cpu.mem rip;
      Fault.raise_fault (Invalid_opcode { addr = rip })
    end
  end

let run j ~fuel =
  let cache = j.cache in
  if cache.owner != j.cpu.Cpu.image then begin
    (* the shared cache was retargeted at a (re)randomized image: dense
       state is per-layout, compiled entries await digest revalidation *)
    cache.owner <- j.cpu.Cpu.image;
    cache.cgen <- cache.cgen + 1;
    build_state cache j.cpu.Cpu.image
  end
  else if Array.length cache.slot = 0 then build_state cache j.cpu.Cpu.image;
  let pd = Cpu.Internal.predecoded j.cpu in
  try go j pd fuel with Fault.Fault f -> Cpu.Faulted f

(* ------------------------------------------------------------------ *)
(* Attachment.                                                         *)
(* ------------------------------------------------------------------ *)

let attach ?config ?cache (cpu : Cpu.t) =
  let cache =
    match cache with
    | None -> create_cache ?config ~profile:cpu.Cpu.profile cpu.Cpu.image
    | Some c ->
        if c.profile != cpu.Cpu.profile then begin
          (* compiled code bakes cost constants in; a different profile
             invalidates the whole cache *)
          Hashtbl.reset c.tbl;
          c.profile <- cpu.Cpu.profile;
          c.cgen <- c.cgen + 1;
          c.slot <- [||]
        end;
        (match config with Some cfg -> c.cfg <- cfg | None -> ());
        c
  in
  let ctx =
    {
      t = cpu;
      regs = cpu.Cpu.regs;
      ymm = cpu.Cpu.ymm;
      mem = cpu.Cpu.mem;
      ic = cpu.Cpu.icache;
      cyc = [| 0.0 |];
    }
  in
  let j = { cpu; cache; ctx } in
  Cpu.set_tier3 cpu (Some (fun _ ~fuel -> run j ~fuel));
  j

let detach cpu = Cpu.set_tier3 cpu None

let cache_of j = j.cache

(* Test hook: corrupt the cached entry for [entry] as a crashed
   rerandomization might leave it — stale generation, wrong digest. The
   probe path must invalidate and recompile it, never execute it. *)
let poison j ~entry =
  match Hashtbl.find_opt j.cache.tbl entry with
  | None -> false
  | Some f ->
      uninstall j.cache f;
      f.f_digest <- "<poisoned>";
      f.f_gen <- j.cache.cgen - 1;
      true
