type func_info = {
  fname : string;
  entry : int;
  code_len : int;
  is_booby_trap : bool;
}

type t = {
  code : (int, Insn.t * int) Hashtbl.t Lazy.t;
  code_list : (int * Insn.t * int) array Lazy.t;
  text_base : int;
  text_len : int;
  text_perm : Perm.t;
  data_base : int;
  data_len : int;
  data_words : (int * int) list Lazy.t;
  data_bytes : (int * string) list Lazy.t;
  symbols : (string, int) Hashtbl.t;
  funcs : func_info list;
  entry : int;
  builtin_addrs : (int, string) Hashtbl.t;
  stack_bytes : int;
  heap_base : int;
  unwind_funcs : (int * int * int * int) array;
  unwind_sites : (int, int) Hashtbl.t;
  checked_sites : (int, unit) Hashtbl.t;
  code_ptr_slots : (int, unit) Hashtbl.t Lazy.t;
  shadow_stack : bool;
}

let builtin_names =
  [
    "malloc"; "malloc_pages"; "free"; "mprotect_noread";
    "print_int"; "print_str"; "read_input"; "sensitive"; "exit"; "backtrace";
  ]

let code_at img addr = Hashtbl.find_opt (Lazy.force img.code) addr

let is_builtin img addr = Hashtbl.mem img.builtin_addrs addr

let symbol img name =
  match Hashtbl.find_opt img.symbols name with
  | Some a -> a
  | None -> raise Not_found

let func_of_addr img addr =
  List.find_opt
    (fun (f : func_info) -> addr >= f.entry && addr < f.entry + f.code_len)
    img.funcs

let funcs_by_entry img =
  let a = Array.of_list img.funcs in
  Array.sort (fun (a : func_info) (b : func_info) -> compare a.entry b.entry) a;
  a

(* Pseudo-encoding: byte 0 is an opcode tag, later bytes mix the tag with
   the position. Deterministic, so a leaked text page is a stable artifact
   a disclosure attack can fingerprint. *)
let opcode_tag : Insn.t -> int = function
  | Mov _ -> 0x48
  | Mov8 _ -> 0x8a
  | Lea _ -> 0x8d
  | Push _ -> 0x68
  | Pop _ -> 0x58
  | Binop _ -> 0x01
  | Div _ | Rem _ -> 0xf7
  | Neg _ -> 0xf6
  | Cmp _ -> 0x39
  | Setcc _ -> 0x0f
  | Jmp _ -> 0xe9
  | Jmp_ind _ -> 0xfe
  | Jcc _ -> 0x0f
  | Call _ -> 0xe8
  | Call_ind _ -> 0xff
  | Ret -> 0xc3
  | Nop _ -> 0x90
  | Trap -> 0xcc
  | Vload _ -> 0xc5
  | Vstore _ -> 0xc4
  | Vload128 _ -> 0x66
  | Vstore128 _ -> 0x67
  | Vload512 _ -> 0x62
  | Vstore512 _ -> 0x63
  | Vzeroupper -> 0xc5
  | Halt -> 0xf4

let encode_byte insn k =
  if k = 0 then opcode_tag insn
  else (opcode_tag insn * 31 + k * 17) land 0xff

(* Canonical digest: every observable field serialized in a fixed order,
   hashtables dumped sorted (their internal layout depends on insertion
   history, which byte-identical images are allowed to differ in). Two
   images are the same executable iff their fingerprints agree — the
   equality oracle of the incremental-rerandomization contract. *)
let fingerprint img =
  let code_list = Lazy.force img.code_list in
  let b = Buffer.create (4096 + (64 * Array.length code_list)) in
  let int i = Buffer.add_string b (string_of_int i); Buffer.add_char b ';' in
  let str s = Buffer.add_string b s; Buffer.add_char b ';' in
  let sorted_of_tbl tbl f =
    let l = Hashtbl.fold (fun k v acc -> f k v :: acc) tbl [] in
    List.sort compare l
  in
  int img.text_base;
  int img.text_len;
  str (Marshal.to_string img.text_perm []);
  int img.data_base;
  int img.data_len;
  int img.entry;
  int img.stack_bytes;
  int img.heap_base;
  int (if img.shadow_stack then 1 else 0);
  Array.iter
    (fun (addr, insn, len) ->
      int addr;
      int len;
      str (Insn.to_string insn))
    code_list;
  List.iter (fun (a, v) -> int a; int v) (Lazy.force img.data_words);
  List.iter (fun (a, s) -> int a; str s) (Lazy.force img.data_bytes);
  List.iter
    (fun (s, a) -> str s; int a)
    (sorted_of_tbl img.symbols (fun k v -> (k, v)));
  List.iter
    (fun f ->
      str f.fname;
      int f.entry;
      int f.code_len;
      int (if f.is_booby_trap then 1 else 0))
    (List.sort compare img.funcs);
  List.iter
    (fun (a, n) -> int a; str n)
    (sorted_of_tbl img.builtin_addrs (fun k v -> (k, v)));
  Array.iter (fun (e, l, fs, pw) -> int e; int l; int fs; int pw) img.unwind_funcs;
  List.iter (fun (a, w) -> int a; int w) (sorted_of_tbl img.unwind_sites (fun k v -> (k, v)));
  List.iter int (sorted_of_tbl img.checked_sites (fun k () -> k));
  List.iter int (sorted_of_tbl (Lazy.force img.code_ptr_slots) (fun k () -> k));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Predecoded text: one dense array slot per text byte, so the fast-path
   interpreter's fetch is a single bounds-checked array read instead of a
   [builtin_addrs] probe followed by a [code] probe. Slots between
   instruction starts stay [P_none] — jumping into the middle of an
   instruction is an invalid opcode, exactly as [code_at] reports it. *)
type pslot =
  | P_none
  | P_insn of Insn.t * int
  | P_builtin of string

let predecode img =
  let table = Array.make (max 1 img.text_len) P_none in
  Array.iter
    (fun (addr, insn, len) -> table.(addr - img.text_base) <- P_insn (insn, len))
    (Lazy.force img.code_list);
  Hashtbl.iter
    (fun addr name -> table.(addr - img.text_base) <- P_builtin name)
    img.builtin_addrs;
  table
