type func_info = {
  fname : string;
  entry : int;
  code_len : int;
  is_booby_trap : bool;
}

type t = {
  code : (int, Insn.t * int) Hashtbl.t;
  code_list : (int * Insn.t * int) array;
  text_base : int;
  text_len : int;
  text_perm : Perm.t;
  data_base : int;
  data_len : int;
  data_words : (int * int) list;
  data_bytes : (int * string) list;
  symbols : (string, int) Hashtbl.t;
  funcs : func_info list;
  entry : int;
  builtin_addrs : (int, string) Hashtbl.t;
  stack_bytes : int;
  heap_base : int;
  unwind_funcs : (int * int * int * int) array;
  unwind_sites : (int, int) Hashtbl.t;
  checked_sites : (int, unit) Hashtbl.t;
  code_ptr_slots : (int, unit) Hashtbl.t;
  shadow_stack : bool;
}

let builtin_names =
  [
    "malloc"; "malloc_pages"; "free"; "mprotect_noread";
    "print_int"; "print_str"; "read_input"; "sensitive"; "exit"; "backtrace";
  ]

let code_at img addr = Hashtbl.find_opt img.code addr

let is_builtin img addr = Hashtbl.mem img.builtin_addrs addr

let symbol img name =
  match Hashtbl.find_opt img.symbols name with
  | Some a -> a
  | None -> raise Not_found

let func_of_addr img addr =
  List.find_opt
    (fun (f : func_info) -> addr >= f.entry && addr < f.entry + f.code_len)
    img.funcs

(* Pseudo-encoding: byte 0 is an opcode tag, later bytes mix the tag with
   the position. Deterministic, so a leaked text page is a stable artifact
   a disclosure attack can fingerprint. *)
let opcode_tag : Insn.t -> int = function
  | Mov _ -> 0x48
  | Mov8 _ -> 0x8a
  | Lea _ -> 0x8d
  | Push _ -> 0x68
  | Pop _ -> 0x58
  | Binop _ -> 0x01
  | Div _ | Rem _ -> 0xf7
  | Neg _ -> 0xf6
  | Cmp _ -> 0x39
  | Setcc _ -> 0x0f
  | Jmp _ -> 0xe9
  | Jmp_ind _ -> 0xfe
  | Jcc _ -> 0x0f
  | Call _ -> 0xe8
  | Call_ind _ -> 0xff
  | Ret -> 0xc3
  | Nop _ -> 0x90
  | Trap -> 0xcc
  | Vload _ -> 0xc5
  | Vstore _ -> 0xc4
  | Vload128 _ -> 0x66
  | Vstore128 _ -> 0x67
  | Vload512 _ -> 0x62
  | Vstore512 _ -> 0x63
  | Vzeroupper -> 0xc5
  | Halt -> 0xf4

let encode_byte insn k =
  if k = 0 then opcode_tag insn
  else (opcode_tag insn * 31 + k * 17) land 0xff

(* Predecoded text: one dense array slot per text byte, so the fast-path
   interpreter's fetch is a single bounds-checked array read instead of a
   [builtin_addrs] probe followed by a [code] probe. Slots between
   instruction starts stay [P_none] — jumping into the middle of an
   instruction is an invalid opcode, exactly as [code_at] reports it. *)
type pslot =
  | P_none
  | P_insn of Insn.t * int
  | P_builtin of string

let predecode img =
  let table = Array.make (max 1 img.text_len) P_none in
  Array.iter
    (fun (addr, insn, len) -> table.(addr - img.text_base) <- P_insn (insn, len))
    img.code_list;
  Hashtbl.iter
    (fun addr name -> table.(addr - img.text_base) <- P_builtin name)
    img.builtin_addrs;
  table
