type record = {
  rip : int;
  insn : Insn.t;
  rsp : int;
  symbol : string option;
}

type t = {
  ring : record option array;
  mutable next : int;
  mutable total : int;
}

let create ~capacity =
  assert (capacity > 0);
  { ring = Array.make capacity None; next = 0; total = 0 }

let push t r =
  t.ring.(t.next) <- Some r;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let record_at cpu ~rip =
  match Image.code_at cpu.Cpu.image rip with
  | Some (insn, _) ->
      let symbol =
        match Image.func_of_addr cpu.Cpu.image rip with
        | Some f -> Some f.Image.fname
        | None -> None
      in
      Some { rip; insn; rsp = Cpu.reg_get cpu RSP; symbol }
  | None -> (
      match Hashtbl.find_opt cpu.Cpu.image.Image.builtin_addrs rip with
      | Some name ->
          Some { rip; insn = Insn.Nop 1; rsp = Cpu.reg_get cpu RSP; symbol = Some ("<" ^ name ^ ">") }
      | None -> None)

let record_of cpu = record_at cpu ~rip:cpu.Cpu.rip

let step t cpu =
  (match record_of cpu with Some r -> push t r | None -> ());
  Cpu.step cpu

let attach ?(tee = false) t cpu =
  let self ~rip ~cycles:_ ~misses:_ ~called:_ =
    match record_at cpu ~rip with Some r -> push t r | None -> ()
  in
  let obs =
    match (tee, cpu.Cpu.observer) with
    | true, Some prev ->
        fun ~rip ~cycles ~misses ~called ->
          prev ~rip ~cycles ~misses ~called;
          self ~rip ~cycles ~misses ~called
    | _ -> self
  in
  Cpu.set_observer cpu (Some obs)

let run t cpu ~fuel =
  let rec go budget =
    if cpu.Cpu.halted then Cpu.Halted
    else if budget <= 0 then Cpu.Fuel_exhausted
    else begin
      step t cpu;
      go (budget - 1)
    end
  in
  try go fuel with Fault.Fault f -> Cpu.Faulted f

let records t =
  (* Oldest first: the slot at [next] holds the oldest record once the ring
     has wrapped. *)
  let cap = Array.length t.ring in
  let out = ref [] in
  for i = cap - 1 downto 0 do
    let idx = (t.next + i) mod cap in
    match t.ring.(idx) with Some r -> out := r :: !out | None -> ()
  done;
  !out

let pp_tail t ~n =
  let rs = records t in
  let len = List.length rs in
  let tail = List.filteri (fun i _ -> i >= len - n) rs in
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%12x  %-28s rsp=%x%s" r.rip (Insn.to_string r.insn) r.rsp
           (match r.symbol with Some s -> "  ; " ^ s | None -> ""))
       tail)
