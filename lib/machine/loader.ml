let materialize_text mem (img : Image.t) =
  Array.iter
    (fun (addr, insn, len) ->
      for k = 0 to len - 1 do
        Mem.write_u8 mem (addr + k) (Image.encode_byte insn k)
      done)
    (Lazy.force img.Image.code_list)

let load ?(strict_align = false) ?inject ?jit ?jit_cache ~profile (img : Image.t) =
  let mem = Mem.create () in
  (* Text: filled while writable, then sealed. *)
  let text_len = Addr.align_up (max img.Image.text_len Addr.page_size) ~align:Addr.page_size in
  Mem.map mem img.Image.text_base text_len Perm.rw;
  materialize_text mem img;
  Mem.protect mem img.Image.text_base text_len img.Image.text_perm;
  (* Data. *)
  let data_len = Addr.align_up (max img.Image.data_len Addr.page_size) ~align:Addr.page_size in
  Mem.map mem img.Image.data_base data_len Perm.rw;
  List.iter (fun (addr, v) -> Mem.write_u64 mem addr v) (Lazy.force img.Image.data_words);
  List.iter
    (fun (addr, s) -> Mem.write_bytes mem addr (Bytes.of_string s))
    (Lazy.force img.Image.data_bytes);
  (* Stack. *)
  let stack_len = Addr.align_up img.Image.stack_bytes ~align:Addr.page_size in
  Mem.map mem (Addr.stack_top - stack_len) stack_len Perm.rw;
  let rsp = Addr.stack_top - 64 in
  assert (rsp land 15 = 0);
  let heap = Heap.create mem ~base:img.Image.heap_base in
  let cpu =
    Cpu.create ~strict_align ?inject ~profile ~mem ~heap img ~rip:img.Image.entry ~rsp
  in
  (* Tier-3 JIT: on by default (R2C_JIT=0 disables fleet-wide). An
     attached injector forces the reference tier anyway, so attaching a
     JIT under injection would only waste the cache. *)
  let want = match jit with Some b -> b | None -> Jit.enabled () in
  if want && Option.is_none inject then ignore (Jit.attach ?cache:jit_cache cpu);
  cpu
