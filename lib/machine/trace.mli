(** Execution tracing: a bounded ring of executed-instruction records, for
    debugging diversified binaries and for post-mortem views of attack
    runs (what did the victim execute right before the booby trap?). *)

type record = {
  rip : int;
  insn : Insn.t;
  rsp : int;
  symbol : string option;  (** function covering [rip], if compiled code *)
}

type t

(** [create ~capacity] — keeps the last [capacity] records. *)
val create : capacity:int -> t

(** [step t cpu] — record the instruction at the current rip, then
    {!Cpu.step}. Use when the caller drives stepping itself. *)
val step : t -> Cpu.t -> unit

(** [run t cpu ~fuel] — traced equivalent of {!Cpu.run}. *)
val run : t -> Cpu.t -> fuel:int -> Cpu.run_result

(** [attach ?tee t cpu] — record via the {!Cpu.observer} hook instead of
    wrapped stepping: every instruction retired through any runner
    ({!Cpu.run}, {!Process.run}, the pool) lands in the ring, including
    the faulting instruction of a crash. [rsp] in hook-recorded entries is
    post-step. By default any previously attached observer is replaced
    (the pool wants exactly one fresh ring per child); with [~tee:true]
    the previous observer keeps firing first on every step, so the ring
    can coexist with a profiler or a workload recorder. *)
val attach : ?tee:bool -> t -> Cpu.t -> unit

(** [records t] — oldest first. *)
val records : t -> record list

(** [pp_tail t ~n] — the last [n] records, one per line, annotated with
    function names. *)
val pp_tail : t -> n:int -> string
