type observer = rip:int -> cycles:float -> misses:int -> called:bool -> unit

type run_result = Halted | Fuel_exhausted | Faulted of Fault.t

type t = {
  mem : Mem.t;
  heap : Heap.t;
  image : Image.t;
  regs : int array;
  ymm : int array;
  mutable rip : int;
  mutable cmp_l : int;
  mutable cmp_r : int;
  mutable cycles : float;
  mutable insns : int;
  mutable calls : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable halted : bool;
  mutable exit_code : int;
  profile : Cost.profile;
  icache : Icache.t;
  out : Buffer.t;
  input : string Queue.t;
  mutable sensitive_log : (int * int) list;
  mutable strict_align : bool;
  shadow : int list ref;  (* shadow stack of return addresses (CFI) *)
  inject : Inject.t option;  (* chaos fault injector, if attached *)
  mutable observer : observer option;  (* per-step hook; None = no cost *)
  mutable btap : (t -> string -> unit) option;
      (* builtin-boundary tap; None = no cost *)
  mutable pdecode : Image.pslot array option;
      (* predecoded text, built on first fast-path run *)
  mutable tier3 : (t -> fuel:int -> run_result) option;
      (* the JIT runner (Jit.attach); None = run falls back to the fast
         interpreter tier *)
}

let create ?(strict_align = false) ?inject ~profile ~mem ~heap image ~rip ~rsp =
  let t =
    {
      mem;
      heap;
      image;
      regs = Array.make 16 0;
      ymm = Array.make (16 * 8) 0;
      rip;
      cmp_l = 0;
      cmp_r = 0;
      cycles = 0.0;
      insns = 0;
      calls = 0;
      depth = 0;
      max_depth = 0;
      halted = false;
      exit_code = 0;
      profile;
      icache = Icache.create ~lines:profile.Cost.icache_lines
          ~line_bytes:profile.Cost.icache_line_bytes;
      out = Buffer.create 256;
      input = Queue.create ();
      sensitive_log = [];
      strict_align;
      shadow = ref [];
      inject;
      observer = None;
      btap = None;
      pdecode = None;
      tier3 = None;
    }
  in
  t.regs.(Insn.reg_index RSP) <- rsp;
  t

let reg_get t r = t.regs.(Insn.reg_index r)
let reg_set t r v = t.regs.(Insn.reg_index r) <- v

let eval_imm = function
  | Insn.Abs v -> v
  | Insn.Sym (s, _) -> invalid_arg ("Cpu: unresolved symbol " ^ s)

let eval_mem t (m : Insn.mem_operand) =
  let base = match m.base with Some r -> reg_get t r | None -> 0 in
  let index =
    match m.index with
    | Some (r, s) -> reg_get t r * Insn.scale_factor s
    | None -> 0
  in
  base + index + eval_imm m.disp

(* Data loads thread through the injector (when attached): a fraction of
   them return a corrupted value. Control-flow reads (ret, pop of return
   addresses via the shadow stack, builtin dispatch) are left alone so the
   CFI semantics stay honest. *)
let injected_load t v =
  match t.inject with Some inj -> Inject.on_load inj v | None -> v

let eval_op t = function
  | Insn.Imm i -> eval_imm i
  | Insn.Reg r -> reg_get t r
  | Insn.Mem m -> injected_load t (Mem.read_u64 t.mem (eval_mem t m))

let eval_op8 t = function
  | Insn.Imm i -> eval_imm i land 0xff
  | Insn.Reg r -> reg_get t r land 0xff
  | Insn.Mem m -> injected_load t (Mem.read_u8 t.mem (eval_mem t m)) land 0xff

let store_op t op v =
  match op with
  | Insn.Reg r -> reg_set t r v
  | Insn.Mem m -> Mem.write_u64 t.mem (eval_mem t m) v
  | Insn.Imm _ -> invalid_arg "Cpu: immediate destination"

let store_op8 t op v =
  match op with
  | Insn.Reg r -> reg_set t r (v land 0xff)
  | Insn.Mem m -> Mem.write_u8 t.mem (eval_mem t m) v
  | Insn.Imm _ -> invalid_arg "Cpu: immediate destination"

let eval_binop (op : Insn.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Imul -> a * b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Sar -> a asr (b land 63)

let eval_cond t (c : Insn.cond) =
  let l = t.cmp_l and r = t.cmp_r in
  match c with
  | Eq -> l = r
  | Ne -> l <> r
  | Lt -> l < r
  | Le -> l <= r
  | Gt -> l > r
  | Ge -> l >= r

let eval_target = function
  | Insn.TAbs a -> a
  | Insn.TSym (s, _) -> invalid_arg ("Cpu: unresolved target " ^ s)

let read_cstring t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    if Buffer.length buf > 4096 then Buffer.contents buf
    else
      let c = Mem.read_u8 t.mem a in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1)
      end
  in
  go addr

(* Intercepted library calls. Arguments follow the System V convention:
   rdi, rsi; result in rax. *)
let dispatch_builtin t name =
  let rdi = reg_get t RDI and rsi = reg_get t RSI in
  t.cycles <- t.cycles +. Cost.builtin_cost t.profile name;
  match name with
  | "malloc" ->
      (* Like libc: unserviceable requests yield NULL. *)
      let p = if rdi <= 0 then 0 else (try Heap.malloc t.heap rdi with Out_of_memory -> 0) in
      reg_set t RAX p
  | "malloc_pages" ->
      let p =
        if rdi <= 0 then 0 else (try Heap.malloc_pages t.heap rdi with Out_of_memory -> 0)
      in
      reg_set t RAX p
  | "free" ->
      (* Freeing a non-block is heap corruption: an abort in glibc terms. *)
      (match Heap.free t.heap rdi with
      | () -> reg_set t RAX 0
      | exception Invalid_argument _ ->
          Fault.raise_fault (Segv { addr = rdi; access = Write }))
  | "mprotect_noread" -> (
      let page = Addr.page_base rdi in
      match Mem.protect t.mem page Addr.page_size Perm.none with
      | () ->
          Mem.tag_guard t.mem page Addr.page_size;
          reg_set t RAX 0
      | exception Invalid_argument _ ->
          (* EINVAL on unmapped pages. *)
          reg_set t RAX (-1))
  | "print_int" ->
      Buffer.add_string t.out (string_of_int rdi);
      Buffer.add_char t.out '\n';
      reg_set t RAX 0
  | "print_str" ->
      Buffer.add_string t.out (read_cstring t rdi);
      Buffer.add_char t.out '\n';
      reg_set t RAX 0
  | "read_input" ->
      (* Copy the next queued message into [rdi], at most [rsi] bytes.
         The copy itself goes through checked writes: a message longer
         than the destination buffer really does smash the stack. *)
      let n =
        if Queue.is_empty t.input then 0
        else begin
          let s = Queue.pop t.input in
          let n = min (String.length s) rsi in
          for i = 0 to n - 1 do
            Mem.write_u8 t.mem (rdi + i) (Char.code s.[i])
          done;
          n
        end
      in
      reg_set t RAX n
  | "sensitive" ->
      t.sensitive_log <- (rdi, rsi) :: t.sensitive_log;
      reg_set t RAX 0
  | "backtrace" ->
      (* Unwind from our own return-address slot: the frame count of the
         active call chain, straight through any BTRA camouflage. *)
      let frames = Unwind.backtrace t.mem t.image ~ra_slot:(reg_get t RSP) in
      reg_set t RAX (List.length frames)
  | "exit" ->
      t.halted <- true;
      t.exit_code <- rdi
  | other -> invalid_arg ("Cpu: unknown builtin " ^ other)

let do_call t ~target ~next =
  t.calls <- t.calls + 1;
  t.depth <- t.depth + 1;
  if t.depth > t.max_depth then t.max_depth <- t.depth;
  let rsp = reg_get t RSP in
  (* Real hardware only crashes on misalignment when an aligned vector
     access hits the stack; strict mode makes every call check — the
     compiler test suites run with it on to catch frame-layout bugs. *)
  if t.strict_align && rsp land 15 <> 0 then
    Fault.raise_fault (Misaligned_stack { rip = t.rip; rsp });
  if t.image.Image.shadow_stack then t.shadow := next :: !(t.shadow);
  let rsp' = rsp - 8 in
  Mem.write_u64 t.mem rsp' next;
  reg_set t RSP rsp';
  t.rip <- target

(* Backward-edge CFI (Section 8.2): the return target must match the
   protected shadow copy of the call chain. *)
let shadow_check t ra =
  if t.image.Image.shadow_stack then begin
    match !(t.shadow) with
    | expected :: rest ->
        if ra <> expected then
          Fault.raise_fault (Cfi_violation { rip = t.rip; expected; got = ra });
        t.shadow := rest
    | [] -> Fault.raise_fault (Cfi_violation { rip = t.rip; expected = 0; got = ra })
  end

(* An intercepted library entry behaves like a real function body: perform
   the effect, then return through the address on the stack. Reached
   uniformly via call, indirect call, tail jump, or a ret into the entry
   (ret2libc). *)
let step_builtin t name =
  t.insns <- t.insns + 1;
  dispatch_builtin t name;
  (* The builtin-boundary tap fires after the effect, while the machine
     state still shows the call: args in RDI/RSI, result in RAX, any
     delivered bytes in memory. A dispatch that faulted never reaches the
     tap — the per-step observer is the hook that sees faulting steps. *)
  (match t.btap with None -> () | Some tap -> tap t name);
  if not t.halted then begin
    let rsp = reg_get t RSP in
    let ra = Mem.read_u64 t.mem rsp in
    shadow_check t ra;
    reg_set t RSP (rsp + 8);
    t.cycles <- t.cycles +. t.profile.Cost.ret;
    t.depth <- max 0 (t.depth - 1);
    t.rip <- ra
  end

(* The per-instruction core shared by the reference and fast-path fetchers:
   icache charge, cycle accounting, and the dispatch itself. Both dispatch
   flavours funnel here, so they cannot disagree on execution semantics —
   only the fetch (hash probes vs predecoded array) differs, and the
   differential tests pin that down. *)
let execute t rip insn size =
  let misses = Icache.access t.icache ~addr:rip ~len:size in
  t.cycles <-
    t.cycles
    +. Cost.base_cost t.profile insn
    +. (float_of_int size /. t.profile.Cost.fetch_bytes_per_cycle)
    +. (float_of_int misses *. t.profile.Cost.icache_miss_penalty);
  t.insns <- t.insns + 1;
  let next = rip + size in
  match insn with
  | Mov (dst, src) ->
      store_op t dst (eval_op t src);
      t.rip <- next
  | Mov8 (dst, src) ->
      store_op8 t dst (eval_op8 t src);
      t.rip <- next
  | Lea (r, m) ->
      reg_set t r (eval_mem t m);
      t.rip <- next
  | Push o ->
      let v = eval_op t o in
      let rsp = reg_get t RSP - 8 in
      Mem.write_u64 t.mem rsp v;
      reg_set t RSP rsp;
      t.rip <- next
  | Pop r ->
      let rsp = reg_get t RSP in
      let v = Mem.read_u64 t.mem rsp in
      reg_set t RSP (rsp + 8);
      reg_set t r v;
      t.rip <- next
  | Binop (op, r, o) ->
      reg_set t r (eval_binop op (reg_get t r) (eval_op t o));
      t.rip <- next
  | Div (r, o) ->
      let d = eval_op t o in
      if d = 0 then Fault.raise_fault (Division_by_zero { rip });
      reg_set t r (reg_get t r / d);
      t.rip <- next
  | Rem (r, o) ->
      let d = eval_op t o in
      if d = 0 then Fault.raise_fault (Division_by_zero { rip });
      reg_set t r (reg_get t r mod d);
      t.rip <- next
  | Neg r ->
      reg_set t r (-reg_get t r);
      t.rip <- next
  | Cmp (a, b) ->
      t.cmp_l <- eval_op t a;
      t.cmp_r <- eval_op t b;
      t.rip <- next
  | Setcc (c, r) ->
      reg_set t r (if eval_cond t c then 1 else 0);
      t.rip <- next
  | Jmp tg -> t.rip <- eval_target tg
  | Jmp_ind o -> t.rip <- eval_op t o
  | Jcc (c, tg) ->
      if eval_cond t c then begin
        t.cycles <- t.cycles +. (t.profile.Cost.jcc_taken -. t.profile.Cost.jcc_not_taken);
        t.rip <- eval_target tg
      end
      else t.rip <- next
  | Call tg -> do_call t ~target:(eval_target tg) ~next
  | Call_ind o -> do_call t ~target:(eval_op t o) ~next
  | Ret ->
      let rsp = reg_get t RSP in
      let ra = Mem.read_u64 t.mem rsp in
      shadow_check t ra;
      reg_set t RSP (rsp + 8);
      t.depth <- max 0 (t.depth - 1);
      t.rip <- ra
  | Nop _ -> t.rip <- next
  | Trap -> Fault.raise_fault (Booby_trap { addr = rip })
  | Vload (i, m) ->
      let a = eval_mem t m in
      for k = 0 to 3 do
        t.ymm.((i * 8) + k) <- Mem.read_u64 t.mem (a + (8 * k))
      done;
      t.rip <- next
  | Vstore (m, i) ->
      let a = eval_mem t m in
      for k = 0 to 3 do
        Mem.write_u64 t.mem (a + (8 * k)) t.ymm.((i * 8) + k)
      done;
      t.rip <- next
  | Vload128 (i, m) ->
      let a = eval_mem t m in
      for k = 0 to 1 do
        t.ymm.((i * 8) + k) <- Mem.read_u64 t.mem (a + (8 * k))
      done;
      t.rip <- next
  | Vstore128 (m, i) ->
      let a = eval_mem t m in
      for k = 0 to 1 do
        Mem.write_u64 t.mem (a + (8 * k)) t.ymm.((i * 8) + k)
      done;
      t.rip <- next
  | Vload512 (i, m) ->
      let a = eval_mem t m in
      for k = 0 to 7 do
        t.ymm.((i * 8) + k) <- Mem.read_u64 t.mem (a + (8 * k))
      done;
      t.rip <- next
  | Vstore512 (m, i) ->
      let a = eval_mem t m in
      for k = 0 to 7 do
        Mem.write_u64 t.mem (a + (8 * k)) t.ymm.((i * 8) + k)
      done;
      t.rip <- next
  | Vzeroupper ->
      (* Zero bits 128-511 of every vector register. *)
      for i = 0 to 15 do
        for k = 2 to 7 do
          t.ymm.((i * 8) + k) <- 0
        done
      done;
      t.rip <- next
  | Halt ->
      t.halted <- true;
      t.exit_code <- reg_get t RAX

(* Reference dispatch: permission probe, builtin hash probe, then the
   [code] hash probe. Kept verbatim as the slow tier of the two-version
   contract (OSR-style): the fast path below must be bit-identical to
   this. *)
let step_uninstrumented t =
  if t.halted then invalid_arg "Cpu.step: halted";
  (match t.inject with
  | Some inj -> Inject.on_step inj ~mem:t.mem ~rip:t.rip
  | None -> ());
  let rip = t.rip in
  Mem.check_exec t.mem rip;
  match Hashtbl.find_opt t.image.Image.builtin_addrs rip with
  | Some name -> step_builtin t name
  | None -> (
      match Image.code_at t.image rip with
      | Some (insn, size) -> execute t rip insn size
      | None -> Fault.raise_fault (Invalid_opcode { addr = rip }))

(* The observation wrapper: with no observer attached, [step] is the bare
   interpreter — the cycle totals are bit-identical. With one, the hook
   fires after every retired instruction (and, so post-mortems see the
   detonating instruction, once more on the faulting one before the fault
   propagates) with the pre-step rip and this step's cycle/miss deltas. *)
let step t =
  match t.observer with
  | None -> step_uninstrumented t
  | Some obs ->
      let rip0 = t.rip in
      let cycles0 = t.cycles in
      let misses0 = Icache.misses t.icache in
      let calls0 = t.calls in
      let fire ~called =
        obs ~rip:rip0 ~cycles:(t.cycles -. cycles0)
          ~misses:(Icache.misses t.icache - misses0) ~called
      in
      (match step_uninstrumented t with
      | () -> fire ~called:(t.calls > calls0)
      | exception e ->
          fire ~called:false;
          raise e)

let set_observer t obs = t.observer <- obs

type builtin_tap = t -> string -> unit

let set_builtin_tap t tap = t.btap <- tap

let run_reference t ~fuel =
  let rec go budget =
    if t.halted then Halted
    else if budget <= 0 then Fuel_exhausted
    else begin
      step t;
      go (budget - 1)
    end
  in
  try go fuel with Fault.Fault f -> Faulted f

let predecoded t =
  match t.pdecode with
  | Some pd -> pd
  | None ->
      let pd = Image.predecode t.image in
      t.pdecode <- Some pd;
      pd

(* Fast tier: the observer and injector dispatches are hoisted out of the
   loop entirely (this loop only runs when neither is attached), and the
   fetch is one TLB exec probe plus one array read into the predecoded
   text. Out-of-text rip falls through to Invalid_opcode exactly as the
   reference fetch reports it: neither hash table can match outside the
   text segment. *)
let run_fast t ~fuel =
  let pd = predecoded t in
  let base = t.image.Image.text_base in
  let len = Array.length pd in
  let rec go budget =
    if t.halted then Halted
    else if budget <= 0 then Fuel_exhausted
    else begin
      let rip = t.rip in
      Mem.check_exec t.mem rip;
      let off = rip - base in
      (if off >= 0 && off < len then
         match Array.unsafe_get pd off with
         | Image.P_insn (insn, size) -> execute t rip insn size
         | Image.P_builtin name -> step_builtin t name
         | Image.P_none -> Fault.raise_fault (Invalid_opcode { addr = rip })
       else Fault.raise_fault (Invalid_opcode { addr = rip }));
      go (budget - 1)
    end
  in
  try go fuel with Fault.Fault f -> Faulted f

(* Tier dispatch: an attached observer or injector always forces the
   reference tier (they must see every step); otherwise tier-3 runs when
   installed, the fast interpreter when not. All three produce identical
   counters — the tiercmp/differential suites pin that contract down. *)
let run t ~fuel =
  match (t.observer, t.inject) with
  | None, None -> (
      match t.tier3 with
      | Some jit -> jit t ~fuel
      | None -> run_fast t ~fuel)
  | _ -> run_reference t ~fuel

let set_tier3 t f = t.tier3 <- f

let run_until t ~fuel ~break =
  let bset = Hashtbl.create (max 8 (List.length break)) in
  List.iter (fun a -> Hashtbl.replace bset a ()) break;
  let rec go budget =
    if t.halted then Error Halted
    else if budget <= 0 then Error Fuel_exhausted
    else if Hashtbl.mem bset t.rip then Ok ()
    else begin
      step t;
      go (budget - 1)
    end
  in
  try go fuel with Fault.Fault f -> Error (Faulted f)

let output t = Buffer.contents t.out

let push_input t s = Queue.push s t.input

(* Shared internals for the tier-3 compiler (lib/machine/jit.ml): its
   deopt/interpreter path must funnel through the very same [execute] /
   [step_builtin] the two interpreter tiers use, or the three-way
   bit-identicality contract would rest on duplicated semantics. *)
module Internal = struct
  let execute = execute
  let step_builtin = step_builtin
  let predecoded = predecoded
end
