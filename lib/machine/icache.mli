(** Direct-mapped instruction-cache model.

    R2C's dominant costs are front-end effects: the push-based BTRA setup
    "exerts significant pressure on the instruction cache" (Section 5.1.2)
    and prolog traps likewise (Section 7.1). A small direct-mapped cache of
    line tags reproduces that pressure honestly: bigger call sites and
    trap-padded prologues touch more lines and evict more. *)

type t

(** [create ~lines ~line_bytes] — [lines] must be a power of two. *)
val create : lines:int -> line_bytes:int -> t

(** [access t ~addr ~len] touches the lines covering [\[addr, addr+len)] and
    returns how many missed. *)
val access : t -> addr:int -> len:int -> int

(** [line_shift t] — log2 of the line size; [addr lsr line_shift] is the
    line index an address falls in. *)
val line_shift : t -> int

(** [access_line t line] — {!access} specialised to a fetch known to sit
    inside the single line [line] (index, not address). The tier-3
    compiler precomputes the index per instruction; the counter updates
    are bit-identical to the single-line case of {!access}. *)
val access_line : t -> int -> int

val reset : t -> unit

(** Cumulative miss/access counters. *)
val misses : t -> int

val accesses : t -> int
