type access = Read | Write | Exec

type t =
  | Segv of { addr : int; access : access }
  | Guard_page of { addr : int; access : access }
  | Booby_trap of { addr : int }
  | Misaligned_stack of { rip : int; rsp : int }
  | Invalid_opcode of { addr : int }
  | Division_by_zero of { rip : int }
  | Cfi_violation of { rip : int; expected : int; got : int }
  | Injected of { rip : int; kind : string }

exception Fault of t

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Exec -> "exec"

let to_string = function
  | Segv { addr; access } ->
      Printf.sprintf "SIGSEGV: %s at 0x%x" (access_to_string access) addr
  | Guard_page { addr; access } ->
      Printf.sprintf "SIGSEGV (guard page): %s at 0x%x" (access_to_string access) addr
  | Booby_trap { addr } -> Printf.sprintf "SIGTRAP (booby trap) at 0x%x" addr
  | Misaligned_stack { rip; rsp } ->
      Printf.sprintf "misaligned stack at rip=0x%x rsp=0x%x" rip rsp
  | Invalid_opcode { addr } -> Printf.sprintf "SIGILL at 0x%x" addr
  | Division_by_zero { rip } -> Printf.sprintf "SIGFPE at rip=0x%x" rip
  | Cfi_violation { rip; expected; got } ->
      Printf.sprintf "CFI: shadow-stack mismatch at rip=0x%x (expected 0x%x, got 0x%x)" rip
        expected got
  | Injected { rip; kind } -> Printf.sprintf "injected %s at rip=0x%x" kind rip

let is_detection = function
  | Guard_page _ | Booby_trap _ | Cfi_violation _ -> true
  | Segv _ | Misaligned_stack _ | Invalid_opcode _ | Division_by_zero _ | Injected _ ->
      false

let raise_fault t = raise (Fault t)
