(** Machine faults.

    Faults are the reactive half of R2C: a dereferenced booby-trapped data
    pointer raises {!constructor-Guard_page}, a control transfer into a booby trap
    function raises {!constructor-Booby_trap}; both "give defenders a way to respond
    to an ongoing attack" (Section 4.2). The Process layer turns them into
    detection events. *)

type access = Read | Write | Exec

type t =
  | Segv of { addr : int; access : access }
      (** Unmapped address or permission violation on a normal page. *)
  | Guard_page of { addr : int; access : access }
      (** Access to a BTDP guard page — an attack tripwire. *)
  | Booby_trap of { addr : int }
      (** Executed a trap instruction planted by the defense. *)
  | Misaligned_stack of { rip : int; rsp : int }
      (** Call with a stack pointer violating 16-byte alignment
          (Section 5.1: "programs crash when certain instructions access a
          misaligned stack"). *)
  | Invalid_opcode of { addr : int }
      (** Fetch from an address holding no instruction. *)
  | Division_by_zero of { rip : int }
  | Cfi_violation of { rip : int; expected : int; got : int }
      (** A shadow-stack mismatch on return (the enforcement-based
          comparison point of Section 8.2). *)
  | Injected of { rip : int; kind : string }
      (** A fault synthesized by the chaos injector ({!Inject}); behaves
          like an ordinary crash — monitoring cannot tell it from organic
          failure, which is the point of availability testing under
          chaos. *)

exception Fault of t

val access_to_string : access -> string
val to_string : t -> string

(** [is_detection f] — whether the fault is one a monitoring story counts
    as attack detection (booby traps, guard pages, CFI violations), as
    opposed to a plain crash. *)
val is_detection : t -> bool

val raise_fault : t -> 'a
