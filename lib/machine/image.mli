(** A linked executable image.

    The linker produces one of these; the loader maps it; the CPU fetches
    decoded instructions from [code]. Text bytes are also materialised into
    memory with a deterministic pseudo-encoding so that read attacks against
    non-execute-only text observe real bytes, while [code_at] is the
    (defender/CPU-side) decoder.

    [func_table] is defender-side metadata (symbols stay out of the
    process's memory, as with a stripped binary plus external debug info);
    attacks may only use it through the oracles that model their actual
    capabilities. *)

type func_info = {
  fname : string;
  entry : int;
  code_len : int;  (** bytes *)
  is_booby_trap : bool;
}

type t = {
  code : (int, Insn.t * int) Hashtbl.t Lazy.t;
      (** address -> decoded instruction and its layout-assigned byte
          length (the length is fixed at layout time, before symbol
          resolution, and drives the CPU's rip advance). Derived from
          [code_list] on first use: the fast-path interpreter fetches
          through {!predecode}, and the incremental-rerandomization
          rebuild path must not pay for a hash table it never probes. *)
  code_list : (int * Insn.t * int) array Lazy.t;
      (** ascending address order. Materialized on first use: the linker
          records layout and relocation decisions eagerly (cheap, per
          function) and fills the per-instruction table on demand (the
          whole-text cost the steady-state relink never pays unless the
          image is actually loaded, fingerprinted or audited). *)
  text_base : int;
  text_len : int;
  text_perm : Perm.t;
  data_base : int;
  data_len : int;
  data_words : (int * int) list Lazy.t;
      (** initialised 64-bit words. Materialized on first use together
          with [data_bytes] and [code_ptr_slots] — initialiser volume is
          proportional to program size (BTRA decoy arrays), so the
          steady-state incremental relink defers it; undefined symbolic
          initialisers are still an eager link error. *)
  data_bytes : (int * string) list Lazy.t;  (** initialised byte runs *)
  symbols : (string, int) Hashtbl.t;
  funcs : func_info list;
  entry : int;  (** _start *)
  builtin_addrs : (int, string) Hashtbl.t;  (** intercepted library entries *)
  stack_bytes : int;
  heap_base : int;
  unwind_funcs : (int * int * int * int) array;
      (** (entry, code length, frame size, post-offset words) per compiled
          function, ascending by entry — the CIE-like rows of the
          Section 7.2.4 unwind tables *)
  unwind_sites : (int, int) Hashtbl.t;
      (** return address -> words between the RA slot and the caller frame
          base (BTRA pre-offset + stack arguments) — the FDE-like rows *)
  checked_sites : (int, unit) Hashtbl.t;
      (** return addresses whose call site the compiler instrumented with a
          Section 7.3 post-return booby-trap check; the static auditor
          verifies the check bytes are actually present at each *)
  code_ptr_slots : (int, unit) Hashtbl.t Lazy.t;
      (** data addresses whose initialiser legitimately holds a text
          address (function-pointer tables, BTRA decoy arrays) — every
          other readable word resolving into text is a leak *)
  shadow_stack : bool;  (** run under backward-edge CFI (Section 8.2) *)
}

(** Intercepted library functions ("unprotected code" in the paper's
    terms — the glibc analogue). *)
val builtin_names : string list

(** [code_at img addr] — decoded instruction and byte length at [addr]. *)
val code_at : t -> int -> (Insn.t * int) option

(** [is_builtin img addr] *)
val is_builtin : t -> int -> bool

(** [symbol img name] — address of a symbol; raises [Not_found]. *)
val symbol : t -> string -> int

(** [func_of_addr img addr] — the function whose body covers [addr]. *)
val func_of_addr : t -> int -> func_info option

(** [funcs_by_entry img] — the function table as an array sorted by entry
    address; the tier-3 hot-function counters binary-search it to
    attribute calls and loop backedges. *)
val funcs_by_entry : t -> func_info array

(** [encode_byte insn k] — [k]-th byte of the pseudo-encoding of [insn];
    used by the loader to fill text pages. *)
val encode_byte : Insn.t -> int -> int

(** [fingerprint img] — canonical content digest: every observable field
    in a fixed order, hashtables dumped sorted. Equal fingerprints mean
    byte-identical executables; this is the equality oracle the
    incremental-rerandomization pipeline is gated on. *)
val fingerprint : t -> string

(** A predecoded text slot: what sits at one byte offset into the text
    segment. [P_none] marks bytes that are not an instruction start
    (padding, instruction interiors) — executing one is an invalid
    opcode. *)
type pslot =
  | P_none
  | P_insn of Insn.t * int  (** decoded instruction and byte length *)
  | P_builtin of string  (** intercepted library entry *)

(** [predecode img] — the dense fetch table for the fast-path interpreter,
    indexed by [addr - text_base] over [\[0, text_len)]. One O(1) array
    read replaces the per-step [builtin_addrs] + [code] hash probes; the
    result agrees with [code_at]/[is_builtin] at every address. *)
val predecode : t -> pslot array
