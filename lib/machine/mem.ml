type page = {
  mutable perm : Perm.t;
  mutable guard : bool;
  data : Bytes.t;
}

(* Direct-mapped software TLB. Each slot caches one page's data bytes plus
   its *decoded* permission bits, so the hot accessors never chase the
   page record or the [Perm.t] under it. Because the permission bits are
   copied out, every in-place page mutation — [map], [unmap], and crucially
   [protect]/[tag_guard], which change [perm]/[guard] without touching the
   page table — must invalidate the TLB or a read could be served under a
   permission that no longer exists. *)
type tlb_entry = {
  mutable e_index : int;  (* cached page index; -1 = invalid *)
  mutable e_data : Bytes.t;
  mutable e_read : bool;
  mutable e_write : bool;
  mutable e_exec : bool;
  mutable e_guard : bool;
}

let tlb_slots = 64
let tlb_mask = tlb_slots - 1

type t = {
  pages : (int, page) Hashtbl.t;
  tlb : tlb_entry array;
  mutable max_resident : int;
}

let no_bytes = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 1024;
    tlb =
      Array.init tlb_slots (fun _ ->
          {
            e_index = -1;
            e_data = no_bytes;
            e_read = false;
            e_write = false;
            e_exec = false;
            e_guard = false;
          });
    max_resident = 0;
  }

let tlb_invalidate t =
  for i = 0 to tlb_slots - 1 do
    t.tlb.(i).e_index <- -1
  done

(* Miss path: probe the page table and refill the direct-mapped slot. *)
let tlb_fill t index =
  match Hashtbl.find_opt t.pages index with
  | None -> None
  | Some p ->
      let e = t.tlb.(index land tlb_mask) in
      e.e_index <- index;
      e.e_data <- p.data;
      e.e_read <- p.perm.Perm.read;
      e.e_write <- p.perm.Perm.write;
      e.e_exec <- p.perm.Perm.exec;
      e.e_guard <- p.guard;
      Some e

let tlb_lookup t index =
  let e = t.tlb.(index land tlb_mask) in
  if e.e_index = index then Some e else tlb_fill t index

let find_page t index = Hashtbl.find_opt t.pages index

let page_range addr len =
  assert (len > 0);
  (Addr.page_of addr, Addr.page_of (addr + len - 1))

let map t addr len perm =
  let first, last = page_range addr len in
  for i = first to last do
    if Hashtbl.mem t.pages i then
      invalid_arg (Printf.sprintf "Mem.map: page 0x%x already mapped" (i lsl Addr.page_shift));
    Hashtbl.replace t.pages i
      { perm; guard = false; data = Bytes.make Addr.page_size '\000' }
  done;
  tlb_invalidate t;
  t.max_resident <- max t.max_resident (Hashtbl.length t.pages)

let unmap t addr len =
  let first, last = page_range addr len in
  for i = first to last do
    Hashtbl.remove t.pages i
  done;
  tlb_invalidate t

let protect t addr len perm =
  let first, last = page_range addr len in
  for i = first to last do
    match Hashtbl.find_opt t.pages i with
    | Some p -> p.perm <- perm
    | None ->
        invalid_arg (Printf.sprintf "Mem.protect: page 0x%x unmapped" (i lsl Addr.page_shift))
  done;
  tlb_invalidate t

let tag_guard t addr len =
  let first, last = page_range addr len in
  for i = first to last do
    match Hashtbl.find_opt t.pages i with
    | Some p -> p.guard <- true
    | None ->
        invalid_arg
          (Printf.sprintf "Mem.tag_guard: page 0x%x unmapped" (i lsl Addr.page_shift))
  done;
  tlb_invalidate t

let is_mapped t addr = Hashtbl.mem t.pages (Addr.page_of addr)

let perm_at t addr =
  match find_page t (Addr.page_of addr) with Some p -> Some p.perm | None -> None

let fault_access addr access guard =
  if guard then Fault.raise_fault (Guard_page { addr; access })
  else Fault.raise_fault (Segv { addr; access })

let checked_entry t addr (access : Fault.access) =
  match tlb_lookup t (Addr.page_of addr) with
  | None -> Fault.raise_fault (Segv { addr; access })
  | Some e ->
      let allowed =
        match access with
        | Read -> e.e_read
        | Write -> e.e_write
        | Exec -> e.e_exec
      in
      if not allowed then fault_access addr access e.e_guard;
      e

(* The interpreter's per-fetch exec probe. Matches the historical
   [perm_at]-based check bit for bit: an exec violation is always a plain
   SIGSEGV, never a guard-page detection, even on a tagged page. *)
let check_exec t addr =
  match tlb_lookup t (Addr.page_of addr) with
  | Some e when e.e_exec -> ()
  | Some _ | None -> Fault.raise_fault (Segv { addr; access = Exec })

let read_u8 t addr =
  let e = checked_entry t addr Read in
  Char.code (Bytes.unsafe_get e.e_data (Addr.page_offset addr))

let write_u8 t addr v =
  let e = checked_entry t addr Write in
  Bytes.unsafe_set e.e_data (Addr.page_offset addr) (Char.unsafe_chr (v land 0xff))

(* Word accessors: an 8-aligned word can never cross a page, so the
   aligned fast path goes straight to [Bytes.get/set_int64_le] with no
   boundary test; unaligned in-page words take the same single-probe path
   after the boundary test, and only page-straddling words fall back to
   byte-at-a-time. *)
let read_u64 t addr =
  if addr land 7 = 0 then
    let e = checked_entry t addr Read in
    Int64.to_int (Bytes.get_int64_le e.e_data (Addr.page_offset addr))
    (* The int64->int truncation drops bit 63; our address space and
       workload arithmetic never exercise it. *)
  else
    let off = Addr.page_offset addr in
    if off <= Addr.page_size - 8 then
      let e = checked_entry t addr Read in
      Int64.to_int (Bytes.get_int64_le e.e_data off)
    else begin
      let v = ref 0 in
      for i = 7 downto 0 do
        v := (!v lsl 8) lor read_u8 t (addr + i)
      done;
      !v
    end

let write_u64 t addr v =
  if addr land 7 = 0 then
    let e = checked_entry t addr Write in
    Bytes.set_int64_le e.e_data (Addr.page_offset addr) (Int64.of_int v)
  else
    let off = Addr.page_offset addr in
    if off <= Addr.page_size - 8 then
      let e = checked_entry t addr Write in
      Bytes.set_int64_le e.e_data off (Int64.of_int v)
    else
      for i = 0 to 7 do
        write_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
      done

let read_bytes t addr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (read_u8 t (addr + i)))
  done;
  b

let write_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (addr + i) (Char.code (Bytes.unsafe_get b i))
  done

let peek_u8 t addr =
  match find_page t (Addr.page_of addr) with
  | None -> None
  | Some p -> Some (Char.code (Bytes.unsafe_get p.data (Addr.page_offset addr)))

let peek_u64 t addr =
  let off = Addr.page_offset addr in
  if off <= Addr.page_size - 8 then
    match find_page t (Addr.page_of addr) with
    | None -> None
    | Some p -> Some (Int64.to_int (Bytes.get_int64_le p.data off))
  else begin
    let rec bytes i acc =
      if i < 0 then Some acc
      else
        match peek_u8 t (addr + i) with
        | None -> None
        | Some b -> bytes (i - 1) ((acc lsl 8) lor b)
    in
    bytes 7 0
  end

let poke_u64 t addr v =
  match find_page t (Addr.page_of addr) with
  | None -> invalid_arg (Printf.sprintf "Mem.poke_u64: 0x%x unmapped" addr)
  | Some p ->
      let off = Addr.page_offset addr in
      if off <= Addr.page_size - 8 then Bytes.set_int64_le p.data off (Int64.of_int v)
      else
        for i = 0 to 7 do
          let b = (v lsr (8 * i)) land 0xff in
          match find_page t (Addr.page_of (addr + i)) with
          | Some q -> Bytes.unsafe_set q.data (Addr.page_offset (addr + i)) (Char.chr b)
          | None -> invalid_arg "Mem.poke_u64: crosses unmapped page"
        done

let writable_page_addrs t =
  Hashtbl.fold
    (fun idx p acc -> if p.perm.Perm.write then (idx lsl Addr.page_shift) :: acc else acc)
    t.pages []
  |> List.sort compare

let flip_bit t ~addr ~bit =
  match find_page t (Addr.page_of addr) with
  | None -> invalid_arg (Printf.sprintf "Mem.flip_bit: 0x%x unmapped" addr)
  | Some p ->
      let off = Addr.page_offset addr in
      let c = Char.code (Bytes.unsafe_get p.data off) in
      Bytes.unsafe_set p.data off (Char.unsafe_chr (c lxor (1 lsl (bit land 7))))

let page_perms t =
  Hashtbl.fold (fun idx p acc -> (idx lsl Addr.page_shift, p.perm, p.guard) :: acc) t.pages []
  |> List.sort compare

let guard_page_addrs t =
  Hashtbl.fold
    (fun idx p acc -> if p.guard then (idx lsl Addr.page_shift) :: acc else acc)
    t.pages []
  |> List.sort compare

let mapped_pages t = Hashtbl.length t.pages

let max_mapped_pages t = t.max_resident
