(** A running process: image + CPU + crash/restart bookkeeping.

    Restart keeps the same image (and therefore the same randomized layout),
    modelling the worker-respawn behaviour of nginx/Apache/OpenSSH that
    Blind ROP exploits (Section 4, [11]); detection events (booby traps,
    guard pages) are accumulated across restarts — they are what a
    monitoring system would see.

    Fuel is a per-lifetime budget: it is consumed across [run]/[run_until]
    segments and refilled only by [restart] (or a fresh [start]). The
    supervision layer ({!R2c_runtime.Pool}) caps individual segments with
    the [?fuel] argument to implement per-request timeouts. *)

type outcome = Exited of int | Crashed of Fault.t | Timeout

type t = {
  image : Image.t;
  profile : Cost.profile;
  fuel : int;
  strict_align : bool;
  inject : Inject.t option;  (** chaos injector, re-attached on restart *)
  jit : bool;  (** tier-3 JIT attached to each incarnation's CPU *)
  jit_cache : Jit.cache option;
      (** the process's code cache, shared across {!restart}s so respawned
          workers start with their predecessor's hot code already
          compiled *)
  mutable cpu : Cpu.t;
  mutable fuel_left : int;  (** remaining lifetime budget, in instructions *)
  mutable detections : Fault.t list;
  mutable crashes : int;
  mutable restarts : int;
}

(** [start ?profile ?fuel ?strict_align ?inject ?jit image] loads the
    image; nothing runs yet. Default profile {!Cost.epyc_rome}, default
    fuel 50M instructions, strict alignment off, no injection. [?jit]
    (default {!Jit.enabled}) attaches the tier-3 JIT with a per-process
    code cache; an injector disables it (injection already forces the
    reference tier). *)
val start :
  ?profile:Cost.profile -> ?fuel:int -> ?strict_align:bool -> ?inject:Inject.t ->
  ?jit:bool -> Image.t -> t

(** [run ?fuel t] — run to halt/fault/fuel, recording crashes and
    detections. [?fuel] caps this segment below the remaining lifetime
    budget (per-request timeout); exceeding either yields [Timeout]. *)
val run : ?fuel:int -> t -> outcome

(** [run_until ?fuel t ~break] — run up to an address in [break]; [`Hit]
    means the process is stopped there (e.g. a blocked victim thread whose
    stack the attacker inspects). *)
val run_until : ?fuel:int -> t -> break:int list -> [ `Hit | `Done of outcome ]

(** [restart t] — fresh CPU and memory from the same image, and a full
    fuel budget (consistent with [start]). Input queue and output start
    empty; detection history is preserved. *)
val restart : t -> unit

val outcome_to_string : outcome -> string

(** Accessors. *)

val cycles : t -> float

val insns : t -> int
val calls : t -> int

(** [max_depth t] — peak call depth of the current child (resets with the
    CPU on {!restart}). *)
val max_depth : t -> int

(** Cumulative icache counters of the current child. *)

val icache_misses : t -> int

val icache_accesses : t -> int

(** [fuel_left t] — remaining lifetime fuel. *)
val fuel_left : t -> int

(** [maxrss_bytes t] — peak resident set, the Section 6.2.5 metric. *)
val maxrss_bytes : t -> int

(** [jit_stats t] — lifetime tier-3 counters of the process's code cache
    (compilations, OSR entries, tier split); [None] when the JIT is off. *)
val jit_stats : t -> Jit.stats option

val output : t -> string
val sensitive_log : t -> (int * int) list

(** [detected t] — true if any booby trap or guard page fired so far. *)
val detected : t -> bool
