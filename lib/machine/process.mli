(** A running process: image + CPU + crash/restart bookkeeping.

    Restart keeps the same image (and therefore the same randomized layout),
    modelling the worker-respawn behaviour of nginx/Apache/OpenSSH that
    Blind ROP exploits (Section 4, [11]); detection events (booby traps,
    guard pages) are accumulated across restarts — they are what a
    monitoring system would see.

    Fuel is a per-lifetime budget: it is consumed across [run]/[run_until]
    segments and refilled only by [restart] (or a fresh [start]). The
    supervision layer ({!R2c_runtime.Pool}) caps individual segments with
    the [?fuel] argument to implement per-request timeouts. *)

type outcome = Exited of int | Crashed of Fault.t | Timeout

type t = {
  image : Image.t;
  profile : Cost.profile;
  fuel : int;
  strict_align : bool;
  inject : Inject.t option;  (** chaos injector, re-attached on restart *)
  mutable cpu : Cpu.t;
  mutable fuel_left : int;  (** remaining lifetime budget, in instructions *)
  mutable detections : Fault.t list;
  mutable crashes : int;
  mutable restarts : int;
}

(** [start ?profile ?fuel ?strict_align ?inject image] loads the image;
    nothing runs yet. Default profile {!Cost.epyc_rome}, default fuel 50M
    instructions, strict alignment off, no injection. *)
val start :
  ?profile:Cost.profile -> ?fuel:int -> ?strict_align:bool -> ?inject:Inject.t ->
  Image.t -> t

(** [run ?fuel t] — run to halt/fault/fuel, recording crashes and
    detections. [?fuel] caps this segment below the remaining lifetime
    budget (per-request timeout); exceeding either yields [Timeout]. *)
val run : ?fuel:int -> t -> outcome

(** [run_until ?fuel t ~break] — run up to an address in [break]; [`Hit]
    means the process is stopped there (e.g. a blocked victim thread whose
    stack the attacker inspects). *)
val run_until : ?fuel:int -> t -> break:int list -> [ `Hit | `Done of outcome ]

(** [restart t] — fresh CPU and memory from the same image, and a full
    fuel budget (consistent with [start]). Input queue and output start
    empty; detection history is preserved. *)
val restart : t -> unit

val outcome_to_string : outcome -> string

(** Accessors. *)

val cycles : t -> float

val insns : t -> int
val calls : t -> int

(** [max_depth t] — peak call depth of the current child (resets with the
    CPU on {!restart}). *)
val max_depth : t -> int

(** Cumulative icache counters of the current child. *)

val icache_misses : t -> int

val icache_accesses : t -> int

(** [fuel_left t] — remaining lifetime fuel. *)
val fuel_left : t -> int

(** [maxrss_bytes t] — peak resident set, the Section 6.2.5 metric. *)
val maxrss_bytes : t -> int

val output : t -> string
val sensitive_log : t -> (int * int) list

(** [detected t] — true if any booby trap or guard page fired so far. *)
val detected : t -> bool
