module Rng = R2c_util.Rng

type rates = {
  bitflip : float;
  load_corrupt : float;
  spurious_fault : float;
  fuel_cut : float;
}

let zero = { bitflip = 0.0; load_corrupt = 0.0; spurious_fault = 0.0; fuel_cut = 0.0 }

let rates_active r =
  r.bitflip > 0.0 || r.load_corrupt > 0.0 || r.spurious_fault > 0.0 || r.fuel_cut > 0.0

type counters = {
  bitflips : int;
  load_corruptions : int;
  spurious_faults : int;
  fuel_cuts : int;
}

type t = {
  rng : Rng.t;
  rates : rates;
  mutable bitflips : int;
  mutable load_corruptions : int;
  mutable spurious_faults : int;
  mutable fuel_cuts : int;
}

let create ?(rates = zero) ~seed () =
  {
    rng = Rng.create seed;
    rates;
    bitflips = 0;
    load_corruptions = 0;
    spurious_faults = 0;
    fuel_cuts = 0;
  }

let rates t = t.rates

let counters t =
  {
    bitflips = t.bitflips;
    load_corruptions = t.load_corruptions;
    spurious_faults = t.spurious_faults;
    fuel_cuts = t.fuel_cuts;
  }

(* A rate of exactly 0 must not even consume randomness: a rate-0 injector
   is bitwise-indistinguishable from no injector (the chaos harness's
   baseline-equivalence guarantee). *)
let hit t rate = rate > 0.0 && Rng.float t.rng 1.0 < rate

let flip_random_bit t mem =
  match Mem.writable_page_addrs mem with
  | [] -> ()
  | pages ->
      let page = List.nth pages (Rng.int t.rng (List.length pages)) in
      let addr = page + Rng.int t.rng Addr.page_size in
      Mem.flip_bit mem ~addr ~bit:(Rng.int t.rng 8);
      t.bitflips <- t.bitflips + 1

let on_step t ~mem ~rip =
  if hit t t.rates.bitflip then flip_random_bit t mem;
  if hit t t.rates.spurious_fault then begin
    t.spurious_faults <- t.spurious_faults + 1;
    Fault.raise_fault (Injected { rip; kind = "spurious-segv" })
  end

let on_load t v =
  if hit t t.rates.load_corrupt then begin
    t.load_corruptions <- t.load_corruptions + 1;
    v lxor (1 lsl Rng.int t.rng 63)
  end
  else v

let cut_fuel t budget =
  if budget > 0 && hit t t.rates.fuel_cut then begin
    t.fuel_cuts <- t.fuel_cuts + 1;
    Rng.int t.rng (max 1 (budget / 4))
  end
  else budget
