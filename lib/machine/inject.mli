(** Deterministic fault injection (the chaos half of the supervision
    layer).

    An injector is attached to a process at load time and threads through
    the machine as a set of hooks: per-instruction it may flip a bit in
    writable memory (heap, stack, data — the soft-error / rowhammer model)
    or synthesize a spurious crash; per 64-bit data load it may corrupt the
    value read; per run segment it may cut the fuel budget so the request
    times out mid-flight.

    All decisions draw from a private {!R2c_util.Rng} stream, so a chaos
    campaign is reproducible from its seed. A rate of exactly 0 consumes no
    randomness and perturbs nothing: attaching a zero-rate injector is
    observationally identical to attaching none, which the availability
    harness relies on for its baseline runs. *)

type rates = {
  bitflip : float;  (** per-instruction probability of a memory bit flip *)
  load_corrupt : float;  (** per-load probability of corrupting the value *)
  spurious_fault : float;  (** per-instruction probability of a fake crash *)
  fuel_cut : float;  (** per-run-segment probability of a fuel exhaustion *)
}

(** All rates 0: injection disabled. *)
val zero : rates

val rates_active : rates -> bool

type counters = {
  bitflips : int;
  load_corruptions : int;
  spurious_faults : int;
  fuel_cuts : int;
}

type t

(** [create ?rates ~seed ()] — default rates {!zero}. *)
val create : ?rates:rates -> seed:int -> unit -> t

val rates : t -> rates

(** [counters t] — how many of each injection actually fired so far. *)
val counters : t -> counters

(** Hooks, called by the machine. *)

(** [on_step t ~mem ~rip] — before instruction dispatch: may flip a random
    bit in a random writable mapped page, and may raise
    {!Fault.constructor-Injected}. *)
val on_step : t -> mem:Mem.t -> rip:int -> unit

(** [on_load t v] — the (possibly corrupted) value of a 64-bit data load. *)
val on_load : t -> int -> int

(** [cut_fuel t budget] — the (possibly truncated) fuel budget for a run
    segment. *)
val cut_fuel : t -> int -> int
