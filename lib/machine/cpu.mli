(** The M64 interpreter.

    Executes a loaded image with full permission checking, the x86-64
    call/ret stack semantics the BTRA scheme builds on (Section 5.1), a
    16-byte stack-alignment check at calls, cycle accounting against a
    {!Cost.profile} (base cost + fetch bandwidth + icache misses), and the
    call-frequency counter used for Table 2 (tail jumps are not counted,
    matching the paper's instrumentation).

    Library calls are intercepted at dedicated text addresses
    ({!Image.builtin_names}); they model the unprotected glibc of
    Section 7.4.1. *)

(** Per-step observation hook, fired after each retired instruction with
    the instruction's address ([rip], pre-step), the cycle and icache-miss
    deltas it charged, and whether it transferred control via call. On a
    faulting step the hook fires once (with [called:false]) before the
    fault propagates, so post-mortem rings capture the detonating
    instruction. When [None] — the default — stepping takes the bare
    interpreter path and cycle totals are bit-identical to an unobserved
    run. *)
type observer = rip:int -> cycles:float -> misses:int -> called:bool -> unit

type run_result = Halted | Fuel_exhausted | Faulted of Fault.t

type t = {
  mem : Mem.t;
  heap : Heap.t;
  image : Image.t;
  regs : int array;  (** 16 GPRs, indexed by [Insn.reg_index] *)
  ymm : int array;  (** 16 vector registers x 8 words (zmm width) *)
  mutable rip : int;
  mutable cmp_l : int;
  mutable cmp_r : int;
  mutable cycles : float;
  mutable insns : int;
  mutable calls : int;
  mutable depth : int;  (** current call depth (calls minus returns) *)
  mutable max_depth : int;  (** peak call depth over the run *)
  mutable halted : bool;
  mutable exit_code : int;
  profile : Cost.profile;
  icache : Icache.t;
  out : Buffer.t;  (** output of print_int / print_str *)
  input : string Queue.t;  (** bytes consumed by read_input *)
  mutable sensitive_log : (int * int) list;
      (** (rdi, rsi) of every [sensitive] builtin call — the
          attacker-success detector *)
  mutable strict_align : bool;
      (** check 16-byte stack alignment at every call (off by default:
          real hardware only faults on aligned vector accesses; test
          suites enable it to catch frame-layout bugs) *)
  shadow : int list ref;
      (** the backward-edge-CFI shadow stack, active when the image was
          deployed with [shadow_stack] (Section 8.2) *)
  inject : Inject.t option;
      (** chaos fault injector; [None] (the default) leaves execution
          untouched *)
  mutable observer : observer option;
      (** per-step hook ({!set_observer}); [None] (the default) costs
          nothing *)
  mutable btap : (t -> string -> unit) option;
      (** builtin-boundary tap ({!set_builtin_tap}); [None] (the default)
          costs nothing *)
  mutable pdecode : Image.pslot array option;
      (** predecoded text ({!Image.predecode}), built lazily on the first
          fast-path {!run}; step-only uses (tracers, attack oracles) never
          pay for it *)
  mutable tier3 : (t -> fuel:int -> run_result) option;
      (** the tier-3 JIT runner, installed by [Jit.attach] ({!set_tier3});
          [None] (the default) makes {!run} fall back to the fast
          interpreter tier *)
}

(** [create ?strict_align ?inject ~profile ~mem ~heap image ~rip ~rsp] —
    registers zeroed except RSP. *)
val create :
  ?strict_align:bool ->
  ?inject:Inject.t ->
  profile:Cost.profile -> mem:Mem.t -> heap:Heap.t -> Image.t -> rip:int -> rsp:int -> t

val reg_get : t -> Insn.reg -> int
val reg_set : t -> Insn.reg -> int -> unit

(** [step t] executes one instruction. Raises {!Fault.Fault}. *)
val step : t -> unit

(** [set_observer t obs] attaches (or, with [None], detaches) the per-step
    hook. At most one observer slot exists; attaching replaces the previous
    one. Callers that need several hooks compose them into one with
    {!R2c_obs.Sink.tee} (or by hand) before attaching — {!Trace.attach} and
    [R2c_obs.Profile.attach] do that for you under [~tee:true]. *)
val set_observer : t -> observer option -> unit

(** Builtin-boundary tap: fired once per intercepted library call
    ([print_int], [read_input], [malloc], [sensitive], ... —
    {!Image.builtin_names}), on both interpreter tiers, immediately after
    the builtin's effect. At tap time the machine state still shows the
    call: arguments in RDI/RSI, the result in RAX, and any bytes a
    [read_input] delivered sitting in memory at RDI — everything a
    workload-capture recorder needs to snapshot the environment boundary.
    The tap charges nothing and never perturbs execution; a builtin whose
    dispatch faulted does not reach it. *)
type builtin_tap = t -> string -> unit

(** [set_builtin_tap t tap] attaches (or, with [None], detaches) the
    builtin-boundary tap. [None] (the default) costs nothing; unlike the
    per-step observer, an attached tap does not force {!run} off the
    predecoded fast path. *)
val set_builtin_tap : t -> builtin_tap option -> unit

(** [run t ~fuel] steps until halt, fault, or [fuel] instructions. With no
    observer and no injector attached it takes tier 3 (the template JIT,
    when [Jit.attach] installed one) or else the predecoded fast path —
    both contractually bit-identical to {!run_reference} in cycles, insns,
    icache misses, faults, and output; an attached observer or injector
    falls back to the reference dispatch (their attachment is a tier-3
    deopt trigger). *)
val run : t -> fuel:int -> run_result

(** [set_tier3 t f] installs (or, with [None], removes) the tier-3 runner
    {!run} dispatches to. Use [Jit.attach]/[Jit.detach] rather than
    calling this directly. *)
val set_tier3 : t -> (t -> fuel:int -> run_result) option -> unit

(** [run_reference t ~fuel] — the slow tier of the two-version contract:
    steps via the reference (hash-probing) dispatch regardless of
    attachments. The differential tests run every program through both
    tiers and require identical architectural state and counters. *)
val run_reference : t -> fuel:int -> run_result

(** [run_until t ~fuel ~break] like {!run} but also stops (returning
    [Ok ()]) just before executing the instruction at an address in
    [break]. Breakpoint membership is a hash probe, O(1) per step in the
    number of breakpoints. *)
val run_until : t -> fuel:int -> break:int list -> (unit, run_result) result

(** [output t] — program output so far. *)
val output : t -> string

(** Shared interpreter internals for the tier-3 compiler
    ([lib/machine/jit.ml]) only. The JIT's deopt/cold path funnels through
    the exact [execute]/[step_builtin] the interpreter tiers use, so the
    three-way bit-identicality contract rests on one set of semantics. *)
module Internal : sig
  (** [execute t rip insn size] — decode-free core step: icache charge,
      cycle/insn accounting, dispatch. Raises {!Fault.Fault}. *)
  val execute : t -> int -> Insn.t -> int -> unit

  (** [step_builtin t name] — one intercepted library call, including the
      builtin tap and the implicit return. *)
  val step_builtin : t -> string -> unit

  (** [predecoded t] — the cpu's lazily-built {!Image.predecode} table. *)
  val predecoded : t -> Image.pslot array
end

(** [push_input t s] queues bytes for [read_input]. *)
val push_input : t -> string -> unit
