(** Program loading: maps an image into fresh memory and hands back a ready
    CPU.

    Text is materialised as pseudo-encoded bytes and then sealed with the
    image's text permission ([rx] for the legacy baseline, [xo] when the
    execute-only assumption of Section 3 is in force); data is mapped
    read-write with its initialisers applied; the stack is mapped at the
    canonical top of user space. *)

val load : ?strict_align:bool -> ?inject:Inject.t -> profile:Cost.profile -> Image.t -> Cpu.t
