(** Program loading: maps an image into fresh memory and hands back a ready
    CPU.

    Text is materialised as pseudo-encoded bytes and then sealed with the
    image's text permission ([rx] for the legacy baseline, [xo] when the
    execute-only assumption of Section 3 is in force); data is mapped
    read-write with its initialisers applied; the stack is mapped at the
    canonical top of user space. *)

(** [load ?strict_align ?inject ?jit ?jit_cache ~profile img]. [?jit]
    (default {!Jit.enabled}, i.e. on unless [R2C_JIT=0]) attaches the
    tier-3 JIT to the fresh CPU; [?jit_cache] shares an existing code
    cache (warm restarts — see {!Process.restart}). An injector disables
    the attachment: injector presence already forces the reference tier. *)
val load :
  ?strict_align:bool ->
  ?inject:Inject.t ->
  ?jit:bool ->
  ?jit_cache:Jit.cache ->
  profile:Cost.profile ->
  Image.t ->
  Cpu.t
