(** Tier-3 template JIT with on-stack replacement (ROADMAP item 1).

    Hot functions — found by cheap per-function call and loop-backedge
    counters, zero-cost when the JIT is off — are compiled from their
    predecoded form into flat arrays of OCaml closures: straight-line
    basic blocks fused, no per-step decode or dispatch probe, registers
    and the cycle counter in unboxed locals. Execution enters compiled
    code at function entries and (OSR) at any basic-block leader, and
    leaves it by materializing the complete interpreter frame — rip,
    registers, RSP, call depth, cycle/insn/icache counters — at every
    deopt trigger: fault, fuel exhaustion, a builtin call, a transfer out
    of compiled code, or an instruction the template compiler declines
    (observer/injector attachment deopts one level higher, in
    {!Cpu.run}'s tier dispatch).

    The contract is three-way bit-identicality: {!Cpu.run} with tier 3,
    {!Cpu.run} with the JIT disabled (fast interpreter), and
    {!Cpu.run_reference} produce identical cycles, insns, icache
    counters, faults, output, exit codes and peak depth on every program.
    [bench/tiercmp.ml] and the [jit] test suite enforce it.

    Code caches are per-{!Process} and CPU-independent (closures receive
    the machine context as an argument), so a cache stays warm across
    {!Process.restart}. Entries carry a digest of the decoded body; after
    an incremental rerandomization retargets the cache, each entry is
    revalidated or invalidated on next use — stale code never runs. *)

type t
(** A JIT attachment: one CPU wired to a code cache. *)

type cache
(** A code cache, shareable across the respawns of one process. *)

type config = { call_threshold : int; backedge_threshold : int }
(** Hotness thresholds: compile a function after this many entries, or
    after this many loop backedges land inside it (whichever first). *)

val default_config : config

(** Lifetime counters of a cache (monotonic; shared by every CPU attached
    to it). [tier3_insns]/[interp_insns] split retired instructions by
    tier; [entry_enters]/[osr_enters] count compiled-code entries at
    function entry vs at OSR points; [deopts] counts mid-function exits
    to the interpreter. *)
type stats = {
  mutable compiled : int;
  mutable revalidated : int;
  mutable invalidated : int;
  mutable entry_enters : int;
  mutable osr_enters : int;
  mutable deopts : int;
  mutable tier3_insns : int;
  mutable interp_insns : int;
}

(** Global default used by {!Loader.load}/{!Process.start} when no
    explicit [?jit] is given. Initialised from [R2C_JIT] (off when set to
    [0]/[false]/[off]/[no], on otherwise). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [create_cache ?config ~profile img] — an empty cache for images laid
    out like [img] under cost profile [profile]. *)
val create_cache : ?config:config -> profile:Cost.profile -> Image.t -> cache

(** [attach ?config ?cache cpu] installs the tier-3 runner on [cpu]
    ({!Cpu.set_tier3}). Without [?cache] a private cache is created; with
    one, the cache is adopted — retargeting it (new image generation, or
    a full reset if the cost profile differs) as needed. *)
val attach : ?config:config -> ?cache:cache -> Cpu.t -> t

(** [detach cpu] removes the tier-3 runner; [cpu] falls back to the fast
    interpreter tier. *)
val detach : Cpu.t -> unit

(** [run j ~fuel] — the tier-3 driver itself: compiled blocks where hot
    code exists, the shared interpreter core everywhere else. Same
    results contract as {!Cpu.run}. *)
val run : t -> fuel:int -> Cpu.run_result

val stats : t -> stats
val cache_stats : cache -> stats
val cache_of : t -> cache

(** [poison j ~entry] corrupts the cached entry for the function at
    [entry] (stale generation, wrong digest) the way an interrupted
    rerandomization would strand it. Returns false if nothing is cached
    there. The next entry attempt must invalidate and recompile it —
    the regression suite asserts stale code never executes. *)
val poison : t -> entry:int -> bool
