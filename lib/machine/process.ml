type outcome = Exited of int | Crashed of Fault.t | Timeout

type t = {
  image : Image.t;
  profile : Cost.profile;
  fuel : int;
  strict_align : bool;
  inject : Inject.t option;
  jit : bool;
  jit_cache : Jit.cache option;
  mutable cpu : Cpu.t;
  mutable fuel_left : int;
  mutable detections : Fault.t list;
  mutable crashes : int;
  mutable restarts : int;
}

let start ?(profile = Cost.epyc_rome) ?(fuel = 50_000_000) ?(strict_align = false) ?inject
    ?jit image =
  (* One code cache per process, shared across respawns: a restarted
     worker reuses the hot code its predecessor compiled. *)
  let jit = (match jit with Some b -> b | None -> Jit.enabled ()) && Option.is_none inject in
  let jit_cache = if jit then Some (Jit.create_cache ~profile image) else None in
  {
    image;
    profile;
    fuel;
    strict_align;
    inject;
    jit;
    jit_cache;
    cpu = Loader.load ~strict_align ?inject ~jit ?jit_cache ~profile image;
    fuel_left = fuel;
    detections = [];
    crashes = 0;
    restarts = 0;
  }

let record_fault t f =
  t.crashes <- t.crashes + 1;
  if Fault.is_detection f then t.detections <- f :: t.detections

(* Fuel is a per-lifetime budget consumed across run segments: a process
   stopped at a breakpoint and resumed does not get a fresh allowance. An
   optional per-segment cap on top of the remaining budget is the
   supervisor's request-timeout primitive. The injector may cut the budget
   further (the mid-request fuel-exhaustion chaos). *)
let segment_budget t cap =
  let b = match cap with Some f -> min f t.fuel_left | None -> t.fuel_left in
  match t.inject with Some inj -> Inject.cut_fuel inj b | None -> b

let consume t ~insns_before =
  t.fuel_left <- max 0 (t.fuel_left - (t.cpu.Cpu.insns - insns_before))

let run ?fuel t =
  let budget = segment_budget t fuel in
  let insns_before = t.cpu.Cpu.insns in
  let r = Cpu.run t.cpu ~fuel:budget in
  consume t ~insns_before;
  match r with
  | Cpu.Halted -> Exited t.cpu.Cpu.exit_code
  | Cpu.Fuel_exhausted -> Timeout
  | Cpu.Faulted f ->
      record_fault t f;
      Crashed f

let run_until ?fuel t ~break =
  let budget = segment_budget t fuel in
  let insns_before = t.cpu.Cpu.insns in
  let r = Cpu.run_until t.cpu ~fuel:budget ~break in
  consume t ~insns_before;
  match r with
  | Ok () -> `Hit
  | Error Cpu.Halted -> `Done (Exited t.cpu.Cpu.exit_code)
  | Error Cpu.Fuel_exhausted -> `Done Timeout
  | Error (Cpu.Faulted f) ->
      record_fault t f;
      `Done (Crashed f)

let restart t =
  t.cpu <-
    Loader.load ~strict_align:t.strict_align ?inject:t.inject ~jit:t.jit
      ?jit_cache:t.jit_cache ~profile:t.profile t.image;
  (* A respawned worker gets the full fuel budget again, exactly as a
     [start]ed one does. *)
  t.fuel_left <- t.fuel;
  t.restarts <- t.restarts + 1

let outcome_to_string = function
  | Exited n -> Printf.sprintf "exited(%d)" n
  | Crashed f -> Printf.sprintf "crashed(%s)" (Fault.to_string f)
  | Timeout -> "timeout"

let cycles t = t.cpu.Cpu.cycles
let insns t = t.cpu.Cpu.insns
let calls t = t.cpu.Cpu.calls
let max_depth t = t.cpu.Cpu.max_depth
let icache_misses t = Icache.misses t.cpu.Cpu.icache
let icache_accesses t = Icache.accesses t.cpu.Cpu.icache
let fuel_left t = t.fuel_left
let maxrss_bytes t = Mem.max_mapped_pages t.cpu.Cpu.mem * Addr.page_size
let jit_stats t = Option.map Jit.cache_stats t.jit_cache
let output t = Cpu.output t.cpu
let sensitive_log t = t.cpu.Cpu.sensitive_log
let detected t = t.detections <> []
