(** Paged virtual memory with permissions.

    Provides the primitives the defense depends on: page-granular
    protection ([mprotect]-style {!protect}), guard-page tagging so that a
    BTDP dereference is distinguishable from an ordinary crash in reports,
    and resident-set accounting for the memory-overhead experiment
    (Section 6.2.5).

    Checked accesses are served through a small direct-mapped software TLB
    caching each hot page's bytes and decoded permission bits; [map],
    [unmap], {!protect} and {!tag_guard} all invalidate it, so an in-place
    permission change is visible on the very next access.

    All checked accessors raise {!Fault.Fault}. The [peek]/[poke] variants
    ignore permissions — they model the defender/experimenter's view (e.g.
    loaders and ground-truth checks in tests), never the attacker's. *)

type t

val create : unit -> t

(** [map t addr len perm] maps the pages covering [\[addr, addr+len)],
    zero-filled. Remapping an already-mapped page is an error. *)
val map : t -> int -> int -> Perm.t -> unit

(** [unmap t addr len] removes the covered pages. *)
val unmap : t -> int -> int -> unit

(** [protect t addr len perm] changes permissions of covered (mapped)
    pages. *)
val protect : t -> int -> int -> Perm.t -> unit

(** [tag_guard t addr len] marks covered pages as BTDP guard pages:
    permission faults on them raise {!Fault.constructor-Guard_page}. *)
val tag_guard : t -> int -> int -> unit

val is_mapped : t -> int -> bool

(** [perm_at t addr] — permissions of the page holding [addr], if mapped. *)
val perm_at : t -> int -> Perm.t option

(** [check_exec t addr] — the interpreter's per-fetch probe: returns [()]
    when the page holding [addr] is mapped executable, raises
    [Fault.Segv { access = Exec }] otherwise (never [Guard_page], matching
    the historical [perm_at]-based check). Served from the software TLB. *)
val check_exec : t -> int -> unit

(** Checked accessors (raise {!Fault.Fault} on violation). Multi-byte
    accesses may cross page boundaries. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u64 : t -> int -> int
val write_u64 : t -> int -> int -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit

(** Permission-free accessors for the simulator/defender side. [peek_u64]
    returns [None] when unmapped. *)

val peek_u64 : t -> int -> int option
val peek_u8 : t -> int -> int option
val poke_u64 : t -> int -> int -> unit

(** [writable_page_addrs t] — base addresses of writable mapped pages
    (heap, stack, data), sorted; the chaos injector's bit-flip target
    population. *)
val writable_page_addrs : t -> int list

(** [flip_bit t ~addr ~bit] — permission-free xor of bit [bit land 7] of
    the byte at [addr]; the {!Inject} bit-flip primitive. *)
val flip_bit : t -> addr:int -> bit:int -> unit

(** [page_perms t] — [(base, perm, guard)] for every mapped page, sorted by
    base address; the static auditor's page-table walk. *)
val page_perms : t -> (int * Perm.t * bool) list

(** [guard_page_addrs t] — base addresses of pages tagged as guards;
    defender-side ground truth for tests and reports. *)
val guard_page_addrs : t -> int list

(** [mapped_pages t] — currently resident pages; [max_mapped_pages t] — the
    high-water mark (maxrss analogue). *)

val mapped_pages : t -> int
val max_mapped_pages : t -> int
