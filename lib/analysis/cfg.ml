open R2c_machine

type block = {
  b_entry : int;
  b_insns : (int * Insn.t * int) list;
  b_succs : int list;
  b_calls : int list;
  b_indirect : int;
}

type func = {
  fc_name : string;
  fc_entry : int;
  fc_len : int;
  fc_booby_trap : bool;
  fc_blocks : block list;
}

type t = {
  funcs : func list;
  call_graph : (string, string list) Hashtbl.t;
}

(* Images are fully resolved (the linker asserts it), so every direct
   branch target is a [TAbs]. *)
let branch_target : Insn.t -> int option = function
  | Jmp (TAbs t) | Jcc (_, TAbs t) -> Some t
  | _ -> None

let is_terminator : Insn.t -> bool = function
  | Jmp _ | Jcc _ | Jmp_ind _ | Ret | Trap | Halt -> true
  | _ -> false

let decode_range img entry len =
  let rec go addr acc =
    if addr >= entry + len then List.rev acc
    else
      match Image.code_at img addr with
      | Some (insn, ilen) -> go (addr + ilen) ((addr, insn, ilen) :: acc)
      | None -> List.rev acc
  in
  go entry []

let recover_func img (fi : Image.func_info) =
  let insns = decode_range img fi.entry fi.code_len in
  let inside a = a >= fi.entry && a < fi.entry + fi.code_len in
  let leaders = Hashtbl.create 16 in
  Hashtbl.replace leaders fi.entry ();
  List.iter
    (fun (addr, insn, ilen) ->
      (match branch_target insn with
      | Some t when inside t -> Hashtbl.replace leaders t ()
      | _ -> ());
      if is_terminator insn then Hashtbl.replace leaders (addr + ilen) ())
    insns;
  let rec split cur acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | ((addr, _, _) as i) :: rest ->
        if Hashtbl.mem leaders addr && cur <> [] then split [ i ] (List.rev cur :: acc) rest
        else split (i :: cur) acc rest
  in
  let blocks =
    List.map
      (fun group ->
        let b_entry, _, _ = List.hd group in
        let laddr, last, llen = List.nth group (List.length group - 1) in
        let fall = laddr + llen in
        (* Direct transfers leaving the function (tail jumps, and Jcc
           targets under shuffling bugs) count as cross-function edges,
           exactly what the booby-trap reachability rule needs. *)
        let succs, cross =
          match last with
          | Insn.Jmp (TAbs t) -> if inside t then ([ t ], []) else ([], [ t ])
          | Insn.Jcc (_, TAbs t) ->
              let s = if inside fall then [ fall ] else [] in
              if inside t then (t :: s, []) else (s, [ t ])
          | Insn.Ret | Insn.Trap | Insn.Halt -> ([], [])
          | _ -> ((if inside fall then [ fall ] else []), [])
        in
        let calls =
          List.fold_left
            (fun acc (_, i, _) ->
              match i with Insn.Call (TAbs t) -> t :: acc | _ -> acc)
            cross group
        in
        let indirect =
          List.fold_left
            (fun acc (_, i, _) ->
              match i with Insn.Call_ind _ | Insn.Jmp_ind _ -> acc + 1 | _ -> acc)
            0 group
        in
        {
          b_entry;
          b_insns = group;
          b_succs = List.sort_uniq compare succs;
          b_calls = List.rev calls;
          b_indirect = indirect;
        })
      (split [] [] insns)
  in
  {
    fc_name = fi.fname;
    fc_entry = fi.entry;
    fc_len = fi.code_len;
    fc_booby_trap = fi.is_booby_trap;
    fc_blocks = blocks;
  }

(* [_start] is emitted by the linker without a func_info record; recover it
   as a synthetic function covering the gap up to the first placed
   function. *)
let start_info (img : Image.t) =
  let next =
    List.fold_left
      (fun acc (f : Image.func_info) ->
        if f.entry > img.entry && f.entry < acc then f.entry else acc)
      (img.text_base + img.text_len) img.funcs
  in
  { Image.fname = "_start"; entry = img.entry; code_len = next - img.entry;
    is_booby_trap = false }

let recover (img : Image.t) =
  let funcs = List.map (recover_func img) (start_info img :: img.funcs) in
  let name_of addr =
    match Hashtbl.find_opt img.builtin_addrs addr with
    | Some n -> Some n
    | None -> (
        match Image.func_of_addr img addr with
        | Some f -> Some f.fname
        | None -> None)
  in
  let call_graph = Hashtbl.create 64 in
  List.iter
    (fun fc ->
      let callees =
        List.concat_map (fun b -> List.filter_map name_of b.b_calls) fc.fc_blocks
      in
      Hashtbl.replace call_graph fc.fc_name (List.sort_uniq compare callees))
    funcs;
  { funcs; call_graph }

type stats = {
  n_funcs : int;
  n_blocks : int;
  n_edges : int;
  n_call_edges : int;
  n_indirect : int;
}

let stats t =
  List.fold_left
    (fun acc fc ->
      List.fold_left
        (fun acc b ->
          {
            acc with
            n_blocks = acc.n_blocks + 1;
            n_edges = acc.n_edges + List.length b.b_succs;
            n_call_edges = acc.n_call_edges + List.length b.b_calls;
            n_indirect = acc.n_indirect + b.b_indirect;
          })
        { acc with n_funcs = acc.n_funcs + 1 }
        fc.fc_blocks)
    { n_funcs = 0; n_blocks = 0; n_edges = 0; n_call_edges = 0; n_indirect = 0 }
    t.funcs
