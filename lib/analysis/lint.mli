(** The R2C invariant linter: a rule registry over a linked image.

    Each rule statically re-checks one leg of the paper's security
    argument (Sections 5 and 7.2) against the image and its loaded memory
    view, returning structured findings with image addresses. A clean
    full-R2C image reports zero findings; an emit/link regression that
    weakens the defense shows up here before any dynamic attack does. *)

(** What the diversity configuration promises, i.e. which invariants are
    load-bearing for this image. Derive it with {!expect_of_dconfig} so
    the linter does not flag, say, readable text on a baseline build. *)
type expect = {
  xom : bool;  (** text must be execute-only *)
  checked_btra : bool;  (** every call site carries a Section 7.3 post-check *)
  cph : bool;  (** readable function pointers must be trampolines *)
  booby_traps : bool;  (** the image must contain booby-trap functions *)
}

(** Nothing promised: only unconditional invariants (W^X, unwind-row and
    call-site consistency, pointer sanctioning) are checked. *)
val relaxed : expect

(** [expect_of_dconfig ?cph cfg] — the promises a {!R2c_core.Dconfig.t}
    makes. [cph] is a property of the defense model wrapped around the
    config (Readactor/CodeArmor), not of the config itself. *)
val expect_of_dconfig : ?cph:bool -> R2c_core.Dconfig.t -> expect

type finding = {
  rule : string;  (** registry name of the rule that fired *)
  f_addr : int option;  (** image address the finding anchors to *)
  detail : string;
}

val finding_to_string : finding -> string

(** Registry: [(name, one-line description)] in evaluation order. *)
val rules : (string * string) list

(** [run ~expect img] — load [img] into fresh memory, recover its CFG and
    evaluate every rule. Findings are sorted by rule then address. *)
val run : expect:expect -> R2c_machine.Image.t -> finding list

(** {1 IR-level rules}

    The image rules above check the emitted defense; these check the
    *input* program with the {!Dataflow} fact tables, before any
    lowering. They are what [r2cc --tval] and the [experiments tval]
    gate run alongside the translation validator: a program that is
    clean here has well-defined block semantics, which the validator's
    rejoin checks rely on. *)

type ir_finding = {
  ir_rule : string;  (** registry name of the rule that fired *)
  ir_func : string;
  ir_block : Ir.label;
  ir_instr : int option;
      (** instruction index within the block; [None] = the terminator *)
  ir_detail : string;
}

val ir_finding_to_string : ir_finding -> string

(** Registry: [(name, one-line description)] in evaluation order. *)
val ir_rules : (string * string) list

(** [run_ir p] — evaluate every IR rule on every function. Findings are
    in deterministic (function, block, instruction) order. Only
    statically executable code is flagged: reads, stores and divisions
    behind a constant-false branch are dead, not defects. *)
val run_ir : Ir.program -> ir_finding list
