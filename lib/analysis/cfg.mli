(** Static control-flow-graph recovery from a linked image.

    A disassembler-driven walk over the decoded instruction stream
    ({!R2c_machine.Image.code_at} is the ground-truth decoder): every
    function body is split into basic blocks at branch targets and after
    terminators, with intra-function edges, direct cross-function
    transfers, and a call graph. This is the substrate for the invariant
    linter's reachability rules. *)

type block = {
  b_entry : int;
  b_insns : (int * R2c_machine.Insn.t * int) list;  (** addr, insn, byte length *)
  b_succs : int list;  (** intra-function direct successors *)
  b_calls : int list;
      (** direct cross-function transfer targets: calls and tail jumps *)
  b_indirect : int;  (** indirect calls/jumps inside the block *)
}

type func = {
  fc_name : string;
  fc_entry : int;
  fc_len : int;
  fc_booby_trap : bool;
  fc_blocks : block list;  (** ascending address order *)
}

type t = {
  funcs : func list;  (** [_start] plus every placed function *)
  call_graph : (string, string list) Hashtbl.t;
      (** caller -> sorted direct callees (functions and builtins) *)
}

val recover : R2c_machine.Image.t -> t

type stats = {
  n_funcs : int;
  n_blocks : int;
  n_edges : int;  (** intra-function edges *)
  n_call_edges : int;  (** direct cross-function transfers *)
  n_indirect : int;
}

val stats : t -> stats
