(** Sanitizer wiring self-check: is the linter actually watching?

    Each {!mutation} deliberately breaks exactly one invariant of a
    healthy image — a dropped Section 7.3 post-return check, a skipped
    mprotect text seal, a raw code pointer planted in readable data — and
    {!run} asserts the linter flags it with findings from {e exactly} the
    corresponding rule and no other. A rule that fires on the wrong
    mutation, or not at all, is miswired. *)

type mutation =
  | Drop_btra_postcheck
      (** replace the first post-return check's load with a same-size NOP *)
  | Skip_mprotect  (** leave the text mapping read-write, never sealed *)
  | Plant_code_pointer
      (** append a readable data word holding a real function entry *)

val all : mutation list
val mutation_to_string : mutation -> string

(** [expected_rule m] — the one {!Lint} rule that must flag [m]. *)
val expected_rule : mutation -> string

(** [apply m img] — a mutated copy; [img] itself is never modified.
    [Drop_btra_postcheck] requires an image built with
    [check_after_return] (raises [Invalid_argument] otherwise). *)
val apply : mutation -> R2c_machine.Image.t -> R2c_machine.Image.t

type outcome = {
  mutation : mutation;
  expected : string;
  rules_hit : string list;  (** distinct rules that fired, sorted *)
  n_findings : int;
  ok : bool;  (** fired, and only the expected rule did *)
}

val run : expect:Lint.expect -> R2c_machine.Image.t -> outcome list

(** {1 IR rule pack + translation validator wiring}

    Same discipline, one level earlier: each {!ir_mutation} twists one
    instruction of a minimal carrier program and must be flagged by
    exactly its {!Lint.ir_rules} rule — or, for [Lowering_mismatch], by
    the translation validator ({!Tval}), which sees the twisted twin's
    machine code against the true carrier's IR semantics. *)

type ir_mutation =
  | Read_uninitialized  (** an operand becomes a var nothing defines *)
  | Orphan_definition  (** a constant [Mov] nobody reads is prepended *)
  | Zero_divisor  (** the division's divisor becomes [Const 0] *)
  | Slot_escape  (** a load offset walks one word past its slot *)
  | Lowering_mismatch  (** the compiled code computes [Add] where the IR says [Sub] *)

val ir_all : ir_mutation list
val ir_mutation_to_string : ir_mutation -> string

(** [ir_expected_rule m] — the one rule that must flag [m] ("tval" for
    {!Lowering_mismatch}). *)
val ir_expected_rule : ir_mutation -> string

(** The clean program the mutations twist; exposed so the test suite can
    assert it is finding-free under the whole rule pack and validator. *)
val carrier : unit -> Ir.program

(** [twist m p] — apply mutation [m] to (a copy of) [p]'s main. *)
val twist : ir_mutation -> Ir.program -> Ir.program

type ir_outcome = {
  ir_mutation : ir_mutation;
  ir_expected : string;
  ir_rules_hit : string list;  (** distinct rules that fired, sorted *)
  ir_n_findings : int;
  ir_ok : bool;  (** fired, and only the expected rule did *)
}

(** [run_ir ?seed ()] — every mutation against the carrier; [seed] feeds
    the {!Lowering_mismatch} compile (default 3). *)
val run_ir : ?seed:int -> unit -> ir_outcome list
