(** Sanitizer wiring self-check: is the linter actually watching?

    Each {!mutation} deliberately breaks exactly one invariant of a
    healthy image — a dropped Section 7.3 post-return check, a skipped
    mprotect text seal, a raw code pointer planted in readable data — and
    {!run} asserts the linter flags it with findings from {e exactly} the
    corresponding rule and no other. A rule that fires on the wrong
    mutation, or not at all, is miswired. *)

type mutation =
  | Drop_btra_postcheck
      (** replace the first post-return check's load with a same-size NOP *)
  | Skip_mprotect  (** leave the text mapping read-write, never sealed *)
  | Plant_code_pointer
      (** append a readable data word holding a real function entry *)

val all : mutation list
val mutation_to_string : mutation -> string

(** [expected_rule m] — the one {!Lint} rule that must flag [m]. *)
val expected_rule : mutation -> string

(** [apply m img] — a mutated copy; [img] itself is never modified.
    [Drop_btra_postcheck] requires an image built with
    [check_after_return] (raises [Invalid_argument] otherwise). *)
val apply : mutation -> R2c_machine.Image.t -> R2c_machine.Image.t

type outcome = {
  mutation : mutation;
  expected : string;
  rules_hit : string list;  (** distinct rules that fired, sorted *)
  n_findings : int;
  ok : bool;  (** fired, and only the expected rule did *)
}

val run : expect:Lint.expect -> R2c_machine.Image.t -> outcome list
