(** Generic worklist dataflow over [Ir] functions.

    The solver is parameterized on a join-semilattice and runs a
    deterministic round-robin worklist (blocks in layout order for
    forward problems, reverse layout order for backward ones), so fact
    tables — and everything derived from them, lint findings included —
    are reproducible across runs and job counts.

    Three instances ship with the framework: liveness (backward),
    reaching definitions (forward, with virtual "uninitialized" def
    sites feeding the use-before-init checks), and conditional constant
    propagation (forward, with edge executability so code behind a
    statically-false branch is neither folded nor flagged). These are
    exactly the facts the translation validator ({!Tval}) and the
    ROADMAP tier-3 OSR work need at block boundaries. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

(** Block-graph helpers, shared by the instances and exposed for tests
    and for {!Tval}. Blocks are indexed by their position in
    [f.blocks]; [block_index] maps labels back to positions. *)

val block_index : Ir.func -> (Ir.label, int) Hashtbl.t
val succs : Ir.func -> int list array
val preds : Ir.func -> int list array
val instr_uses : Ir.instr -> Ir.var list
val instr_defs : Ir.instr -> Ir.var list
val term_uses : Ir.term -> Ir.var list

module Make (L : LATTICE) : sig
  type result = {
    block_in : L.t array;  (** fact at block entry, by block index *)
    block_out : L.t array;  (** fact at block exit *)
    iterations : int;  (** round-robin sweeps until the fixpoint *)
  }

  (** [solve ~direction ?entry ?edge ~transfer f] — [entry] seeds the
      boundary (the entry block for [Forward], every [Ret] block for
      [Backward]; defaults to [L.bottom]). [transfer i fact] pushes a
      fact through block [i]. [edge ~src ~dst fact] filters the fact
      flowing along one CFG edge (identity by default); constant
      propagation uses it to kill statically-untaken branches. *)
  val solve :
    direction:direction ->
    ?entry:L.t ->
    ?edge:(src:int -> dst:int -> L.t -> L.t) ->
    transfer:(int -> L.t -> L.t) ->
    Ir.func ->
    result
end

module Iset : Set.S with type elt = int

module Liveness : sig
  type t = {
    live_in : Iset.t array;  (** vars live at block entry *)
    live_out : Iset.t array;  (** vars live at block exit *)
    iterations : int;
  }

  val compute : Ir.func -> t

  (** [before t f bi] — per-instruction table for block [bi]: element
      [k] is the set of vars live immediately before instruction [k];
      the final element (index [List.length body]) is the set live
      before the terminator. *)
  val before : t -> Ir.func -> int -> Iset.t array
end

module Reaching : sig
  (** A definition site. [Uninit v] is the virtual "no definition yet"
      site every non-parameter var carries at function entry; if one
      reaches a read, the read may observe an uninitialized var. *)
  type site =
    | Param of Ir.var
    | Uninit of Ir.var
    | Def of int * int  (** block index, instruction index *)

  type t = {
    sites : site array;  (** def id -> site *)
    site_var : int array;  (** def id -> var defined *)
    reach_in : Iset.t array;  (** def ids reaching block entry *)
    reach_out : Iset.t array;
    iterations : int;
  }

  val compute : Ir.func -> t

  (** [before t f bi] — def ids reaching each instruction of block
      [bi]; final element covers the terminator. *)
  val before : t -> Ir.func -> int -> Iset.t array

  (** Reads that some path reaches with no prior definition:
      [(var, block index, instruction index)], where the instruction
      index equals [List.length body] for a terminator read.
      Deterministic order; empty on initialization-clean functions. *)
  val uninit_reads : Ir.func -> (Ir.var * int * int) list
end

module Constprop : sig
  (** Value domain: unvisited, a single known constant, the address of
      IR slot [i] plus a constant byte offset (feeds the out-of-bounds
      slot-offset lint), or statically varying. *)
  type cval = Cundef | Cconst of int | Cslot of int * int | Cvaries

  type t = {
    env_in : cval array option array;
        (** per-block var environment at entry; [None] = unreachable
            under constant conditions *)
    executable : bool array;
    iterations : int;
  }

  val compute : Ir.func -> t

  (** [eval env op] — abstract value of an operand. [Global]/[Func]
      operands are link-time constants with unknown numeric value, so
      they evaluate to [Cvaries]. *)
  val eval : cval array -> Ir.operand -> cval

  (** [before t f bi] — environment before each instruction of an
      executable block (final element: before the terminator). Raises
      [Invalid_argument] on a non-executable block. *)
  val before : t -> Ir.func -> int -> cval array array

  (** Number of executable instructions whose result folds to a known
      constant without being a literal [Mov _, Const _]. *)
  val folded : t -> Ir.func -> int
end

(** Aggregate dataflow statistics for the audit table. [max_iterations]
    is the worst sweep count over all three analyses and functions. *)
type stats = { folded : int; max_iterations : int }

val program_stats : Ir.program -> stats
