open R2c_machine

type kind = K_ret | K_jmp_ind | K_call_ind

let kind_to_string = function
  | K_ret -> "ret"
  | K_jmp_ind -> "jmp*"
  | K_call_ind -> "call*"

type gadget = {
  g_off : int;
  g_len : int;
  g_insns : int;
  g_kind : kind;
  g_bytes : string;
}

(* The attacker's decoder: single-byte opcode dispatch over the
   pseudo-encoding's tag bytes (Image.opcode_tag), with a representative
   length per tag. Direct transfers, traps and halts surrender control to
   a fixed location, so they end a prospective gadget without producing
   one; bytes that match no tag (interior encoding bytes, zero padding)
   decode as invalid. *)
let classify byte =
  match byte with
  | 0xc3 -> `Term (K_ret, 1)
  | 0xfe -> `Term (K_jmp_ind, 2)
  | 0xff -> `Term (K_call_ind, 2)
  | 0xcc | 0xf4 | 0xe9 | 0xe8 -> `Invalid
  | 0x48 -> `Op 3 (* mov *)
  | 0x8a -> `Op 3 (* mov8 *)
  | 0x8d -> `Op 3 (* lea *)
  | 0x68 -> `Op 5 (* push *)
  | 0x58 -> `Op 2 (* pop *)
  | 0x01 -> `Op 3 (* alu *)
  | 0xf7 -> `Op 4 (* div *)
  | 0xf6 -> `Op 3 (* neg *)
  | 0x39 -> `Op 3 (* cmp *)
  | 0x0f -> `Op 4 (* setcc *)
  | 0x90 -> `Op 1 (* nop *)
  | 0xc5 -> `Op 3 (* vload / vzeroupper *)
  | 0xc4 -> `Op 4 (* vstore *)
  | 0x66 | 0x67 -> `Op 3 (* sse *)
  | 0x62 | 0x63 -> `Op 6 (* avx-512 *)
  | _ -> `Invalid

(* Materialise the text segment exactly as the loader does; gaps (function
   padding, the builtin PLT region) stay zero and decode as invalid. *)
let text_bytes (img : Image.t) =
  let b = Bytes.make img.text_len '\x00' in
  Array.iter
    (fun (addr, insn, len) ->
      let off = addr - img.text_base in
      for k = 0 to len - 1 do
        if off + k >= 0 && off + k < img.text_len then
          Bytes.unsafe_set b (off + k) (Char.unsafe_chr (Image.encode_byte insn k))
      done)
    (Lazy.force img.code_list);
  Bytes.unsafe_to_string b

let scan ?(max_insns = 5) img =
  let text = text_bytes img in
  let n = String.length text in
  let out = ref [] in
  for off = n - 1 downto 0 do
    let rec walk pos count =
      if count > max_insns || pos >= n then ()
      else
        match classify (Char.code text.[pos]) with
        | `Invalid -> ()
        | `Term (k, l) ->
            if pos + l <= n then
              out :=
                {
                  g_off = off;
                  g_len = pos + l - off;
                  g_insns = count + 1;
                  g_kind = k;
                  g_bytes = String.sub text off (pos + l - off);
                }
                :: !out
        | `Op l -> walk (pos + l) (count + 1)
    in
    walk off 0
  done;
  !out

(* Offsets are text-relative, so the survivor intersection is immune to
   ASLR slides: a gadget survives diversification only if both its
   location and its bytes are identical in every variant — the static
   analogue of the AOCR adversary correlating leaked pages. *)
let key g = (g.g_off, g.g_bytes)

let survivors = function
  | [] -> []
  | first :: rest ->
      let sets =
        List.map
          (fun gs ->
            let h = Hashtbl.create (max 16 (2 * List.length gs)) in
            List.iter (fun g -> Hashtbl.replace h (key g) ()) gs;
            h)
          rest
      in
      List.filter (fun g -> List.for_all (fun h -> Hashtbl.mem h (key g)) sets) first
