module Insn = R2c_machine.Insn
module Image = R2c_machine.Image
module Emit = R2c_compiler.Emit
module Regalloc = R2c_compiler.Regalloc

type finding = {
  tv_func : string;
  tv_block : int option;
  tv_addr : int option;
  tv_what : string;
}

type report = { findings : finding list; funcs : int; blocks : int }

let finding_to_string fd =
  Printf.sprintf "%s%s%s: %s" fd.tv_func
    (match fd.tv_block with Some l -> Printf.sprintf ".L%d" l | None -> "")
    (match fd.tv_addr with Some a -> Printf.sprintf " @0x%x" a | None -> "")
    fd.tv_what

(* Symbolic values. Both sides build expressions with the same
   constructors through the same smart helpers, so refinement reduces to
   structural equality. [X_sp] is the machine-only frame-relative stack
   pointer (frame base = offset 0); it never flows into an IR-visible
   value. [X_ev k] names the result of the k-th memory/call event;
   [X_junk] is a havoc value unequal to everything else. *)
type sexpr =
  | X_init of int  (* IR var's value at block entry *)
  | X_entry of int  (* machine register (by index) at function entry *)
  | X_const of int
  | X_slot of int * int  (* address of IR slot i, plus byte offset *)
  | X_sp of int
  | X_binop of Ir.binop * sexpr * sexpr
  | X_cmp of Ir.cmp * sexpr * sexpr
  | X_ev of int
  | X_junk of int

type callee_x = C_abs of int | C_sym of sexpr

type event =
  | Ev_load of int * sexpr  (* width, address *)
  | Ev_store of int * sexpr * sexpr  (* width, address, value *)
  | Ev_call of callee_x * sexpr list

let binop_str = function
  | Ir.Add -> "+" | Ir.Sub -> "-" | Ir.Mul -> "*" | Ir.Div -> "/" | Ir.Rem -> "%"
  | Ir.And -> "&" | Ir.Or -> "|" | Ir.Xor -> "^" | Ir.Shl -> "<<" | Ir.Shr -> ">>"
  | Ir.Sar -> ">>a"

let cmp_str = function
  | Ir.Eq -> "==" | Ir.Ne -> "!=" | Ir.Lt -> "<" | Ir.Le -> "<=" | Ir.Gt -> ">"
  | Ir.Ge -> ">="

let rec pp_x = function
  | X_init v -> Printf.sprintf "v%d@in" v
  | X_entry r -> Printf.sprintf "%s@entry" (Insn.reg_to_string (Insn.reg_of_index r))
  | X_const n -> string_of_int n
  | X_slot (i, 0) -> Printf.sprintf "&slot%d" i
  | X_slot (i, d) -> Printf.sprintf "&slot%d%+d" i d
  | X_sp d -> Printf.sprintf "sp%+d" d
  | X_binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (pp_x a) (binop_str op) (pp_x b)
  | X_cmp (c, a, b) -> Printf.sprintf "(%s %s %s)" (pp_x a) (cmp_str c) (pp_x b)
  | X_ev k -> Printf.sprintf "ev%d" k
  | X_junk k -> Printf.sprintf "junk%d" k

let pp_event = function
  | Ev_load (w, a) -> Printf.sprintf "load%d %s" w (pp_x a)
  | Ev_store (w, a, v) -> Printf.sprintf "store%d %s := %s" w (pp_x a) (pp_x v)
  | Ev_call (c, args) ->
      Printf.sprintf "call %s(%s)"
        (match c with C_abs a -> Printf.sprintf "0x%x" a | C_sym e -> pp_x e)
        (String.concat ", " (List.map pp_x args))

(* Offset folding shared by both sides: constant displacement on a
   constant, slot or stack-pointer base stays flat, so the machine's
   [base + disp] addressing rebuilds exactly the IR's [operand + off]. *)
let add_off x d =
  if d = 0 then x
  else
    match x with
    | X_const c -> X_const (c + d)
    | X_slot (i, k) -> X_slot (i, k + d)
    | X_sp k -> X_sp (k + d)
    | _ -> X_binop (Ir.Add, x, X_const d)

let mk_binop op a b =
  match (op, a, b) with
  | Ir.Add, X_sp d, X_const c -> X_sp (d + c)
  | Ir.Sub, X_sp d, X_const c -> X_sp (d - c)
  | _ -> X_binop (op, a, b)

(* --- IR side: a block's expected events and exit environment --- *)

let build_expected ~sym (f : Ir.func) (b : Ir.block) =
  let env = Array.init (max f.nvars 1) (fun v -> X_init v) in
  let rev_events = ref [] in
  let nev = ref 0 in
  let push e =
    rev_events := e :: !rev_events;
    let k = !nev in
    incr nev;
    k
  in
  let eval = function
    | Ir.Const n -> X_const n
    | Ir.Var v -> env.(v)
    | Ir.Global g -> X_const (sym g)
    | Ir.Func fn -> X_const (sym fn)
  in
  List.iter
    (fun instr ->
      match instr with
      | Ir.Mov (v, op) -> env.(v) <- eval op
      | Ir.Binop (v, op, a, b) -> env.(v) <- X_binop (op, eval a, eval b)
      | Ir.Cmp (v, c, a, b) -> env.(v) <- X_cmp (c, eval a, eval b)
      | Ir.Load (v, base, off) ->
          let k = push (Ev_load (8, add_off (eval base) off)) in
          env.(v) <- X_ev k
      | Ir.Load8 (v, base, off) ->
          let k = push (Ev_load (1, add_off (eval base) off)) in
          env.(v) <- X_ev k
      | Ir.Store (base, off, value) ->
          ignore (push (Ev_store (8, add_off (eval base) off, eval value)))
      | Ir.Store8 (base, off, value) ->
          ignore (push (Ev_store (1, add_off (eval base) off, eval value)))
      | Ir.Slot_addr (v, i) -> env.(v) <- X_slot (i, 0)
      | Ir.Call (dst, callee, args) ->
          let cal =
            match callee with
            | Ir.Direct n | Ir.Builtin n -> C_abs (sym n)
            | Ir.Indirect op -> C_sym (eval op)
          in
          let k = push (Ev_call (cal, List.map eval args)) in
          (match dst with Some d -> env.(d) <- X_ev k | None -> ()))
    b.body;
  (Array.of_list (List.rev !rev_events), env)

(* --- machine side --- *)

exception Mismatch of int * string

let fail pc fmt = Printf.ksprintf (fun m -> raise (Mismatch (pc, m))) fmt

let ir_of_mop : Insn.binop -> Ir.binop = function
  | Insn.Add -> Ir.Add
  | Insn.Sub -> Ir.Sub
  | Insn.Imul -> Ir.Mul
  | Insn.And -> Ir.And
  | Insn.Or -> Ir.Or
  | Insn.Xor -> Ir.Xor
  | Insn.Shl -> Ir.Shl
  | Insn.Shr -> Ir.Shr
  | Insn.Sar -> Ir.Sar

let ir_of_cond : Insn.cond -> Ir.cmp = function
  | Insn.Eq -> Ir.Eq
  | Insn.Ne -> Ir.Ne
  | Insn.Lt -> Ir.Lt
  | Insn.Le -> Ir.Le
  | Insn.Gt -> Ir.Gt
  | Insn.Ge -> Ir.Ge

let ri = Insn.reg_index

type mst = {
  regs : sexpr array;  (* by register index *)
  spill : sexpr array;
  save : sexpr array;  (* by register index; prologue-established values *)
  below : (int, sexpr) Hashtbl.t;  (* frame offset < 0 -> value *)
  mutable flags : (sexpr * sexpr) option;
  mutable junk : int;
  mutable evi : int;  (* next expected event *)
}

let block_fuel = 200_000

(* Validate one IR block against its machine code extent.
   [start]..[end_addr) is the extent; [body_start] is the address of the
   function's first label (machine addresses below it are prologue). *)
let check_block ~img ~(meta : Emit.tvmeta) ~(f : Ir.func) ~events ~(env : sexpr array)
    ~live_in ~live_out ~label_addr ~start ~end_addr ~body_start (b : Ir.block) =
  let frame_size = meta.Emit.tv_frame_size in
  let post_words = meta.Emit.tv_post_words in
  let entry_delta = frame_size + (8 * post_words) in
  let is_entry = start < body_start || start <> label_addr b.Ir.lbl in
  let spill_at = Hashtbl.create 8 in
  Array.iteri (fun k off -> Hashtbl.replace spill_at off k) meta.Emit.tv_spill_off;
  let save_at = Hashtbl.create 8 in
  List.iter (fun (r, off) -> Hashtbl.replace save_at off r) meta.Emit.tv_save;
  let irslot_at = Hashtbl.create 8 in
  Array.iteri (fun i off -> Hashtbl.replace irslot_at off i) meta.Emit.tv_ir_off;
  let st =
    {
      regs = Array.init 16 (fun _ -> X_junk 0);
      spill = Array.make (max (Array.length meta.Emit.tv_spill_off) 1) (X_junk 0);
      save = Array.init 16 (fun r -> X_entry r);
      below = Hashtbl.create 16;
      flags = None;
      junk = 0;
      evi = 0;
    }
  in
  let junk () =
    st.junk <- st.junk + 1;
    X_junk st.junk
  in
  for r = 0 to 15 do
    st.regs.(r) <- (if is_entry then X_entry r else junk ())
  done;
  for k = 0 to Array.length st.spill - 1 do
    st.spill.(k) <- junk ()
  done;
  if is_entry then begin
    st.regs.(ri Insn.RSP) <- X_sp entry_delta;
    List.iteri
      (fun i r -> if i < f.nparams then st.regs.(ri r) <- X_init i)
      Emit.arg_regs
  end
  else begin
    st.regs.(ri Insn.RSP) <- X_sp 0;
    (* Homes of live-in vars carry their block-entry values; everything
       else is havoc (reading it would be a use-before-init). *)
    Dataflow.Iset.iter
      (fun v ->
        match meta.Emit.tv_assign.(v) with
        | Regalloc.In_reg r -> st.regs.(ri r) <- X_init v
        | Regalloc.Spilled k -> st.spill.(k) <- X_init v)
      live_in
  end;
  let get_delta pc =
    match st.regs.(ri Insn.RSP) with
    | X_sp d -> d
    | v -> fail pc "rsp holds non-stack value %s" (pp_x v)
  in
  let expect_event pc =
    if st.evi >= Array.length events then fail pc "machine effect beyond the IR's events";
    let e = events.(st.evi) in
    st.evi <- st.evi + 1;
    e
  in
  let consume_load pc w addr =
    match expect_event pc with
    | Ev_load (w', a') when w = w' && addr = a' -> X_ev (st.evi - 1)
    | e -> fail pc "load%d %s where IR expects %s" w (pp_x addr) (pp_event e)
  in
  let consume_store pc w addr value =
    match expect_event pc with
    | Ev_store (w', a', v') when w = w' && addr = a' && value = v' -> ()
    | e ->
        fail pc "store%d %s := %s where IR expects %s" w (pp_x addr) (pp_x value)
          (pp_event e)
  in
  let rbp_entry_off = function
    | X_entry r when r = ri Insn.RBP -> Some 0
    | X_binop (Ir.Add, X_entry r, X_const d) when r = ri Insn.RBP -> Some d
    | _ -> None
  in
  let stack_param pc eff =
    (* Incoming stack parameter j at [frame + post + RA + 8*(j-6)]. *)
    let base = entry_delta + 8 in
    if eff < base || (eff - base) mod 8 <> 0 then fail pc "unaligned stack-parameter read";
    let j = 6 + ((eff - base) / 8) in
    if j >= f.nparams then fail pc "stack-parameter read beyond nparams";
    X_init j
  in
  let mem_read pc ~prologue w addr =
    match addr with
    | X_sp eff ->
        if eff < 0 then (
          match Hashtbl.find_opt st.below eff with Some v -> v | None -> junk ())
        else if eff < frame_size then (
          match Hashtbl.find_opt spill_at eff with
          | Some k when w = 8 -> st.spill.(k)
          | _ -> (
              match Hashtbl.find_opt save_at eff with
              | Some r when w = 8 -> st.save.(ri r)
              | _ ->
                  if prologue then junk ()
                  else fail pc "body read of camouflage frame slot sp+%d" eff))
        else if prologue && w = 8 then stack_param pc eff
        else fail pc "read above the frame (sp+%d)" eff
    | _ -> (
        match rbp_entry_off addr with
        | Some d when prologue && d mod 8 = 0 ->
            (* Offset-invariant addressing: rbp marks the caller's first
               stack argument (Section 5.1.1). *)
            let j = 6 + (d / 8) in
            if j >= f.nparams then fail pc "OIA stack-parameter read beyond nparams";
            X_init j
        | _ -> if prologue then junk () else consume_load pc w addr)
  in
  let mem_write pc ~prologue w addr value =
    match addr with
    | X_sp eff ->
        if eff < 0 then Hashtbl.replace st.below eff value
        else if eff < frame_size then (
          match Hashtbl.find_opt spill_at eff with
          | Some k when w = 8 -> st.spill.(k) <- value
          | _ -> (
              match Hashtbl.find_opt save_at eff with
              | Some r when w = 8 -> st.save.(ri r) <- value
              | _ ->
                  (* BTDP copies and padding writes are prologue-only
                     camouflage; the body never touches those slots. *)
                  if not prologue then fail pc "body write to camouflage frame slot sp+%d" eff))
        else fail pc "write above the frame (sp+%d)" eff
    | _ ->
        if prologue then fail pc "prologue store outside the frame"
        else consume_store pc w addr value
  in
  let addr_of pc (m : Insn.mem_operand) =
    (match m.Insn.index with
    | Some _ -> fail pc "indexed addressing is never emitted"
    | None -> ());
    let d = match m.Insn.disp with Insn.Abs n -> n | Insn.Sym _ -> fail pc "unresolved disp" in
    match m.Insn.base with
    | None -> X_const d
    | Some r -> add_off st.regs.(ri r) d
  in
  let value_of pc ~prologue w = function
    | Insn.Reg r -> st.regs.(ri r)
    | Insn.Imm (Insn.Abs n) -> X_const n
    | Insn.Imm (Insn.Sym _) -> fail pc "unresolved immediate"
    | Insn.Mem m -> mem_read pc ~prologue w (addr_of pc m)
  in
  let set_reg r v = st.regs.(ri r) <- v in
  let eval_final = function
    | Ir.Const n -> X_const n
    | Ir.Var v -> env.(v)
    | Ir.Global g -> X_const (Image.symbol img g)
    | Ir.Func fn -> X_const (Image.symbol img fn)
  in
  let code_at pc =
    match Image.code_at img pc with
    | Some (insn, len) -> (insn, len)
    | None -> fail pc "no instruction (hole in the block's extent)"
  in
  (* Forward-scan: is [pc..target) nothing but traps? (prolog sled,
     post-return check bodies). *)
  let all_traps_until pc0 target =
    let rec go pc =
      if pc = target then true
      else if pc > target then false
      else
        match Image.code_at img pc with
        | Some (Insn.Trap, len) -> go (pc + len)
        | _ -> false
    in
    target > pc0 && go pc0
  in
  let do_call pc target =
    let delta = get_delta pc in
    (match expect_event pc with
    | Ev_call (cal, args) ->
        let target_ok =
          match (cal, target) with
          | C_abs a, `Abs t -> a = t
          | C_sym e, `Abs t -> e = X_const t
          | C_abs a, `Val v -> v = X_const a
          | C_sym e, `Val v -> e = v
        in
        if not target_ok then
          fail pc "call target %s disagrees with IR callee %s"
            (match target with `Abs t -> Printf.sprintf "0x%x" t | `Val v -> pp_x v)
            (match cal with C_abs a -> Printf.sprintf "0x%x" a | C_sym e -> pp_x e);
        let nargs = List.length args in
        List.iteri
          (fun j a ->
            if j < 6 then begin
              let got = st.regs.(ri (List.nth Emit.arg_regs j)) in
              if got <> a then
                fail pc "call argument %d is %s where IR expects %s" j (pp_x got) (pp_x a)
            end)
          args;
        let k = max 0 (nargs - 6) in
        let pad = k land 1 in
        for j = 0 to k - 1 do
          (* Stack args were pushed from the balanced frame, so their
             offsets are BTRA-invariant: pad below the frame base, then
             args right-to-left. *)
          let off = (-8 * (pad + k)) + (8 * j) in
          let a = List.nth args (6 + j) in
          match Hashtbl.find_opt st.below off with
          | Some got when got = a -> ()
          | Some got ->
              fail pc "stack argument %d is %s where IR expects %s" (6 + j) (pp_x got)
                (pp_x a)
          | None -> fail pc "stack argument %d was never pushed" (6 + j)
        done;
        st.regs.(ri Insn.RAX) <- X_ev (st.evi - 1)
    | e -> fail pc "call where IR expects %s" (pp_event e));
    (* The callee owns everything below its RA slot; caller-saved
       registers and flags are havoc after the return. *)
    List.iter
      (fun r -> set_reg r (junk ()))
      Insn.[ RCX; RDX; RSI; RDI; R8; R9; R10; R11; RBP ];
    st.flags <- None;
    Hashtbl.iter
      (fun off _ -> if off < delta then Hashtbl.remove st.below off)
      (Hashtbl.copy st.below)
  in
  let cond_done = ref false in
  let finish_events pc =
    if st.evi < Array.length events then
      fail pc "block ends with IR effects unperformed (next: %s)"
        (pp_event events.(st.evi))
  in
  let check_homes pc =
    Dataflow.Iset.iter
      (fun v ->
        let got =
          match meta.Emit.tv_assign.(v) with
          | Regalloc.In_reg r -> st.regs.(ri r)
          | Regalloc.Spilled k -> st.spill.(k)
        in
        if got <> env.(v) then
          fail pc "live-out v%d holds %s where IR expects %s" v (pp_x got) (pp_x env.(v)))
      live_out
  in
  let finish_branch pc =
    finish_events pc;
    check_homes pc;
    let d = get_delta pc in
    if d <> 0 then fail pc "stack unbalanced at block exit (sp%+d)" d
  in
  let finish_ret pc op =
    finish_events pc;
    let expected = match op with Some o -> eval_final o | None -> X_const 0 in
    let rax = st.regs.(ri Insn.RAX) in
    if rax <> expected then
      fail pc "return value %s where IR expects %s" (pp_x rax) (pp_x expected);
    let d = get_delta pc in
    if d <> entry_delta then fail pc "frame not released before ret (sp%+d)" d;
    List.iter
      (fun (r, _) ->
        if st.regs.(ri r) <> X_entry (ri r) then
          fail pc "callee-saved %s not restored (%s)" (Insn.reg_to_string r)
            (pp_x st.regs.(ri r)))
      meta.Emit.tv_save
  in
  let rec step pc fuel =
    if fuel <= 0 then fail pc "block validation fuel exhausted"
    else if pc = end_addr then begin
      (* Fallthrough into the next label. *)
      match b.Ir.term with
      | Ir.Br l ->
          if label_addr l <> end_addr then
            fail pc "falls through to 0x%x, IR branches to L%d" end_addr l;
          finish_branch pc
      | Ir.Cond_br (_, _, l2) ->
          if not !cond_done then fail pc "conditional branch never tested";
          if label_addr l2 <> end_addr then
            fail pc "falls through to 0x%x, IR else-branch is L%d" end_addr l2;
          finish_branch pc
      | Ir.Ret _ -> fail pc "falls out of the block where IR returns"
    end
    else if pc > end_addr || pc < start then fail pc "pc escaped the block extent"
    else begin
      let insn, len = code_at pc in
      let prologue = is_entry && pc < body_start in
      let next = pc + len in
      match insn with
      | Insn.Nop _ -> step next (fuel - 1)
      | Insn.Mov (dst, src) | Insn.Mov8 (dst, src) -> (
          let w = match insn with Insn.Mov8 _ -> 1 | _ -> 8 in
          let v = value_of pc ~prologue w src in
          match dst with
          | Insn.Reg r ->
              set_reg r v;
              step next (fuel - 1)
          | Insn.Mem m ->
              mem_write pc ~prologue w (addr_of pc m) v;
              step next (fuel - 1)
          | Insn.Imm _ -> fail pc "store to immediate")
      | Insn.Lea (r, m) ->
          let a = addr_of pc m in
          let a =
            match a with
            | X_sp eff -> (
                match Hashtbl.find_opt irslot_at eff with
                | Some i when eff >= 0 && eff < frame_size && r <> Insn.RSP && r <> Insn.RBP
                  ->
                    X_slot (i, 0)
                | _ -> a)
            | _ -> a
          in
          set_reg r a;
          step next (fuel - 1)
      | Insn.Push op ->
          let v = value_of pc ~prologue 8 op in
          let d = get_delta pc - 8 in
          st.regs.(ri Insn.RSP) <- X_sp d;
          mem_write pc ~prologue 8 (X_sp d) v;
          step next (fuel - 1)
      | Insn.Pop r ->
          let d = get_delta pc in
          let v = mem_read pc ~prologue 8 (X_sp d) in
          set_reg r v;
          st.regs.(ri Insn.RSP) <- X_sp (d + 8);
          step next (fuel - 1)
      | Insn.Binop (op, r, o) ->
          let rhs = value_of pc ~prologue 8 o in
          set_reg r (mk_binop (ir_of_mop op) st.regs.(ri r) rhs);
          step next (fuel - 1)
      | Insn.Div (r, o) ->
          set_reg r (X_binop (Ir.Div, st.regs.(ri r), value_of pc ~prologue 8 o));
          step next (fuel - 1)
      | Insn.Rem (r, o) ->
          set_reg r (X_binop (Ir.Rem, st.regs.(ri r), value_of pc ~prologue 8 o));
          step next (fuel - 1)
      | Insn.Neg r ->
          set_reg r (X_binop (Ir.Sub, X_const 0, st.regs.(ri r)));
          step next (fuel - 1)
      | Insn.Cmp (a, bb) ->
          st.flags <- Some (value_of pc ~prologue 8 a, value_of pc ~prologue 8 bb);
          step next (fuel - 1)
      | Insn.Setcc (c, r) -> (
          match st.flags with
          | Some (x, y) ->
              set_reg r (X_cmp (ir_of_cond c, x, y));
              step next (fuel - 1)
          | None -> fail pc "setcc with undefined flags")
      | Insn.Jcc (_, Insn.TAbs t) -> (
          (* Post-return check normalization: a conditional over an
             immediately following trap is Section 7.3 camouflage. *)
          match Image.code_at img next with
          | Some (Insn.Trap, tlen) when t = next + tlen -> step t (fuel - 1)
          | _ -> (
              match b.Ir.term with
              | Ir.Cond_br (c, l1, _) ->
                  if !cond_done then fail pc "second conditional branch in block";
                  (match st.flags with
                  | Some (x, y) ->
                      let expected = eval_final c in
                      if x <> expected || y <> X_const 0 then
                        fail pc "branch tests (%s vs %s), IR tests (%s vs 0)" (pp_x x)
                          (pp_x y) (pp_x expected)
                  | None -> fail pc "conditional branch with undefined flags");
                  (match insn with
                  | Insn.Jcc (Insn.Ne, _) -> ()
                  | _ -> fail pc "conditional branch with unexpected condition");
                  if t <> label_addr l1 then
                    fail pc "true-branch goes to 0x%x, IR says L%d" t l1;
                  cond_done := true;
                  step next (fuel - 1)
              | _ -> fail pc "conditional jump where IR has no conditional branch"))
      | Insn.Jmp (Insn.TAbs t) ->
          if all_traps_until next t then (* prolog trap sled *) step t (fuel - 1)
          else begin
            match b.Ir.term with
            | Ir.Br l ->
                if t <> label_addr l then fail pc "jumps to 0x%x, IR branches to L%d" t l;
                finish_branch pc
            | Ir.Cond_br (_, _, l2) ->
                if not !cond_done then fail pc "conditional branch never tested";
                if t <> label_addr l2 then
                  fail pc "else-branch goes to 0x%x, IR says L%d" t l2;
                finish_branch pc
            | Ir.Ret _ -> fail pc "jump where IR returns"
          end
      | Insn.Call (Insn.TAbs t) ->
          do_call pc (`Abs t);
          step next (fuel - 1)
      | Insn.Call_ind op ->
          do_call pc (`Val (value_of pc ~prologue 8 op));
          step next (fuel - 1)
      | Insn.Ret -> (
          match b.Ir.term with
          | Ir.Ret op -> finish_ret pc op
          | _ -> fail pc "ret where IR branches")
      | Insn.Vload (_, _) | Insn.Vload128 (_, _) | Insn.Vload512 (_, _) ->
          (* Vector batch loads read the BTRA call-site array; the values
             only ever land below the frame. *)
          step next (fuel - 1)
      | Insn.Vstore (m, _) | Insn.Vstore128 (m, _) | Insn.Vstore512 (m, _) -> (
          let bytes =
            match insn with
            | Insn.Vstore128 _ -> 16
            | Insn.Vstore _ -> 32
            | _ -> 64
          in
          match addr_of pc m with
          | X_sp eff when eff + bytes <= 0 -> step next (fuel - 1)
          | a -> fail pc "vector store to %s (not below-frame scratch)" (pp_x a))
      | Insn.Vzeroupper -> step next (fuel - 1)
      | Insn.Trap -> fail pc "unexpected trap on the legitimate path"
      | Insn.Jmp (Insn.TSym _) | Insn.Jcc (_, Insn.TSym _) | Insn.Call (Insn.TSym _) ->
          fail pc "unresolved branch target"
      | Insn.Jmp_ind _ -> fail pc "indirect jump is never emitted"
      | Insn.Halt -> fail pc "halt inside a compiled function"
    end
  in
  step start block_fuel

let validate_func ~img ~(meta : Emit.tvmeta) (f : Ir.func) =
  let fi =
    List.find_opt (fun i -> i.Image.fname = f.Ir.name) img.Image.funcs
  in
  match fi with
  | None ->
      ( [ { tv_func = f.Ir.name; tv_block = None; tv_addr = None;
            tv_what = "function not present in image" } ],
        0 )
  | Some fi ->
      let label_addr l =
        Image.symbol img (Printf.sprintf "%s.L%d" f.Ir.name l)
      in
      let lv = Dataflow.Liveness.compute f in
      let blocks = Array.of_list f.Ir.blocks in
      let n = Array.length blocks in
      let findings = ref [] in
      let checked = ref 0 in
      (if Array.length meta.Emit.tv_assign <> f.Ir.nvars then
         findings :=
           { tv_func = f.Ir.name; tv_block = None; tv_addr = None;
             tv_what = "metadata does not cover all vars" }
           :: !findings
       else
         let body_start = if n > 0 then label_addr blocks.(0).Ir.lbl else fi.Image.entry in
         Array.iteri
           (fun bi b ->
             incr checked;
             let start = if bi = 0 then fi.Image.entry else label_addr b.Ir.lbl in
             let end_addr =
               if bi = n - 1 then fi.Image.entry + fi.Image.code_len
               else label_addr blocks.(bi + 1).Ir.lbl
             in
             let events, env =
               build_expected ~sym:(fun s -> Image.symbol img s) f b
             in
             try
               check_block ~img ~meta ~f ~events ~env
                 ~live_in:lv.Dataflow.Liveness.live_in.(bi)
                 ~live_out:lv.Dataflow.Liveness.live_out.(bi)
                 ~label_addr ~start ~end_addr ~body_start b
             with
             | Mismatch (pc, what) ->
                 findings :=
                   { tv_func = f.Ir.name; tv_block = Some b.Ir.lbl;
                     tv_addr = Some pc; tv_what = what }
                   :: !findings
             | Not_found ->
                 findings :=
                   { tv_func = f.Ir.name; tv_block = Some b.Ir.lbl; tv_addr = None;
                     tv_what = "missing symbol during validation" }
                   :: !findings)
           blocks);
      (List.rev !findings, !checked)

let validate ~img ~meta (p : Ir.program) =
  let findings = ref [] in
  let funcs = ref 0 in
  let blocks = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      incr funcs;
      match List.assoc_opt f.Ir.name meta with
      | None ->
          findings :=
            { tv_func = f.Ir.name; tv_block = None; tv_addr = None;
              tv_what = "no lowering metadata for function" }
            :: !findings
      | Some m ->
          let fs, nb = validate_func ~img ~meta:m f in
          blocks := !blocks + nb;
          findings := List.rev_append fs !findings)
    p.Ir.funcs;
  { findings = List.rev !findings; funcs = !funcs; blocks = !blocks }

let validate_config ?(seed = 1) cfg (p : Ir.program) =
  let img, meta, p' = R2c_core.Pipeline.compile_with_meta ~seed cfg p in
  validate ~img ~meta p'
