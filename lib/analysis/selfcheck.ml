open R2c_machine

type mutation = Drop_btra_postcheck | Skip_mprotect | Plant_code_pointer

let all = [ Drop_btra_postcheck; Skip_mprotect; Plant_code_pointer ]

let mutation_to_string = function
  | Drop_btra_postcheck -> "drop BTRA post-check"
  | Skip_mprotect -> "skip mprotect seal"
  | Plant_code_pointer -> "plant readable code pointer"

let expected_rule = function
  | Drop_btra_postcheck -> "btra"
  | Skip_mprotect -> "wx"
  | Plant_code_pointer -> "ptr"

let drop_postcheck (img : Image.t) =
  let ras = Hashtbl.fold (fun a () acc -> a :: acc) img.checked_sites [] in
  match List.sort compare ras with
  | [] ->
      invalid_arg
        "Selfcheck: image has no checked BTRA call sites (build with check_after_return)"
  | ra :: _ -> (
      match Image.code_at img ra with
      | Some (Insn.Mov (Reg R11, Mem _), len) ->
          (* Overwrite the first post-check instruction with a same-size
             NOP in a deep copy of the code tables: the emitted bytes no
             longer match what checked_sites promises. *)
          let code =
            let copy = Hashtbl.copy (Lazy.force img.code) in
            Hashtbl.replace copy ra (Insn.Nop len, len);
            Lazy.from_val copy
          in
          let code_list =
            Lazy.from_val
              (Array.map
                 (fun (a, i, l) -> if a = ra then (a, Insn.Nop len, l) else (a, i, l))
                 (Lazy.force img.code_list))
          in
          { img with code; code_list }
      | _ -> invalid_arg "Selfcheck: no post-return check at the first checked site")

let skip_mprotect (img : Image.t) = { img with text_perm = Perm.rw }

let plant_code_pointer (img : Image.t) =
  let victim =
    match List.find_opt (fun (f : Image.func_info) -> not f.is_booby_trap) img.funcs with
    | Some f -> f
    | None -> invalid_arg "Selfcheck: image has no ordinary function to leak"
  in
  let addr = Addr.align_up (img.data_base + img.data_len) ~align:8 in
  {
    img with
    data_len = addr + 8 - img.data_base;
    data_words = lazy (Lazy.force img.data_words @ [ (addr, victim.entry) ]);
  }

let apply m img =
  match m with
  | Drop_btra_postcheck -> drop_postcheck img
  | Skip_mprotect -> skip_mprotect img
  | Plant_code_pointer -> plant_code_pointer img

type outcome = {
  mutation : mutation;
  expected : string;
  rules_hit : string list;
  n_findings : int;
  ok : bool;
}

let run ~expect img =
  List.map
    (fun m ->
      let findings = Lint.run ~expect (apply m img) in
      let rules_hit =
        List.sort_uniq compare (List.map (fun (f : Lint.finding) -> f.rule) findings)
      in
      let expected = expected_rule m in
      {
        mutation = m;
        expected;
        rules_hit;
        n_findings = List.length findings;
        ok = findings <> [] && rules_hit = [ expected ];
      })
    all

(* === IR rule pack + translation validator wiring ======================== *)

type ir_mutation =
  | Read_uninitialized
  | Orphan_definition
  | Zero_divisor
  | Slot_escape
  | Lowering_mismatch

let ir_all =
  [ Read_uninitialized; Orphan_definition; Zero_divisor; Slot_escape; Lowering_mismatch ]

let ir_mutation_to_string = function
  | Read_uninitialized -> "read an uninitialized var"
  | Orphan_definition -> "define a var nobody reads"
  | Zero_divisor -> "divide by the constant 0"
  | Slot_escape -> "load one word past the slot"
  | Lowering_mismatch -> "lower Sub as Add"

let ir_expected_rule = function
  | Read_uninitialized -> "use-before-def"
  | Orphan_definition -> "dead-store"
  | Zero_divisor -> "const-div-by-zero"
  | Slot_escape -> "oob-const-slot-offset"
  | Lowering_mismatch -> "tval"

(* The carrier: a minimal program on which every mutation below is a
   single-instruction twist, and which is itself clean under the whole
   rule pack and the validator (asserted by the test suite). The loaded
   value is opaque to CCP, so the divisor and the slot offset are the
   only constants in sight. *)
let carrier () =
  let module B = Builder in
  let fb = B.func "main" ~nparams:0 in
  let s = B.slot fb 16 in
  let a = B.slot_addr fb s in
  B.store fb a 0 (Ir.Const 7);
  let l = B.load fb a 0 in
  let add = B.binop fb Ir.Add l (Ir.Const 1) in
  let sub = B.binop fb Ir.Sub add (Ir.Const 2) in
  let d = B.binop fb Ir.Div sub l in
  B.call_void fb (Ir.Builtin "print_int") [ d ];
  B.ret fb (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish fb ] []

let map_main_body ?(extra_vars = 0) f (p : Ir.program) =
  let funcs =
    List.map
      (fun (fn : Ir.func) ->
        if fn.Ir.name <> p.Ir.main then fn
        else
          {
            fn with
            Ir.nvars = fn.Ir.nvars + extra_vars;
            blocks =
              List.map
                (fun (b : Ir.block) -> { b with Ir.body = f fn b.Ir.body })
                fn.Ir.blocks;
          })
      p.Ir.funcs
  in
  { p with Ir.funcs }

let twist m p =
  match m with
  | Read_uninitialized ->
      (* The Add's left operand becomes a var no instruction defines. *)
      map_main_body ~extra_vars:1
        (fun fn body ->
          List.map
            (function
              | Ir.Binop (v, Ir.Add, _, rhs) -> Ir.Binop (v, Ir.Add, Ir.Var fn.Ir.nvars, rhs)
              | i -> i)
            body)
        p
  | Orphan_definition ->
      map_main_body ~extra_vars:1
        (fun fn body -> Ir.Mov (fn.Ir.nvars, Ir.Const 5) :: body)
        p
  | Zero_divisor ->
      map_main_body
        (fun _ body ->
          List.map
            (function
              | Ir.Binop (v, Ir.Div, a, _) -> Ir.Binop (v, Ir.Div, a, Ir.Const 0)
              | i -> i)
            body)
        p
  | Slot_escape ->
      map_main_body
        (fun _ body ->
          List.map
            (function Ir.Load (v, a, 0) -> Ir.Load (v, a, 16) | i -> i)
            body)
        p
  | Lowering_mismatch ->
      map_main_body
        (fun _ body ->
          List.map
            (function
              | Ir.Binop (v, Ir.Sub, a, b) -> Ir.Binop (v, Ir.Add, a, b)
              | i -> i)
            body)
        p

type ir_outcome = {
  ir_mutation : ir_mutation;
  ir_expected : string;
  ir_rules_hit : string list;
  ir_n_findings : int;
  ir_ok : bool;
}

let run_ir ?(seed = 3) () =
  let p = carrier () in
  List.map
    (fun m ->
      let rules_hit, n =
        match m with
        | Lowering_mismatch ->
            (* Compile the twisted twin and validate its image against the
               true carrier: the exact shape of an emitter miscompile. The
               twin itself is rule-pack-clean, so any signal is Tval's. *)
            let img, meta, p' =
              R2c_core.Pipeline.compile_with_meta ~seed
                (R2c_core.Dconfig.full ()) (twist m p)
            in
            let funcs =
              List.map
                (fun (f : Ir.func) ->
                  match Ir.find_func p f.Ir.name with Some o -> o | None -> f)
                p'.Ir.funcs
            in
            let r = Tval.validate ~img ~meta { p' with Ir.funcs } in
            let ir = Lint.run_ir (twist m p) in
            ( List.sort_uniq compare
                ((if r.Tval.findings <> [] then [ "tval" ] else [])
                @ List.map (fun (f : Lint.ir_finding) -> f.Lint.ir_rule) ir),
              List.length r.Tval.findings + List.length ir )
        | _ ->
            (* The other mutations break the validator's use-before-init
               precondition or only the IR-level contract, so the rule
               pack alone is in scope. *)
            let fs = Lint.run_ir (twist m p) in
            ( List.sort_uniq compare
                (List.map (fun (f : Lint.ir_finding) -> f.Lint.ir_rule) fs),
              List.length fs )
      in
      let ir_expected = ir_expected_rule m in
      {
        ir_mutation = m;
        ir_expected;
        ir_rules_hit = rules_hit;
        ir_n_findings = n;
        ir_ok = n > 0 && rules_hit = [ ir_expected ];
      })
    ir_all
