open R2c_machine

type mutation = Drop_btra_postcheck | Skip_mprotect | Plant_code_pointer

let all = [ Drop_btra_postcheck; Skip_mprotect; Plant_code_pointer ]

let mutation_to_string = function
  | Drop_btra_postcheck -> "drop BTRA post-check"
  | Skip_mprotect -> "skip mprotect seal"
  | Plant_code_pointer -> "plant readable code pointer"

let expected_rule = function
  | Drop_btra_postcheck -> "btra"
  | Skip_mprotect -> "wx"
  | Plant_code_pointer -> "ptr"

let drop_postcheck (img : Image.t) =
  let ras = Hashtbl.fold (fun a () acc -> a :: acc) img.checked_sites [] in
  match List.sort compare ras with
  | [] ->
      invalid_arg
        "Selfcheck: image has no checked BTRA call sites (build with check_after_return)"
  | ra :: _ -> (
      match Image.code_at img ra with
      | Some (Insn.Mov (Reg R11, Mem _), len) ->
          (* Overwrite the first post-check instruction with a same-size
             NOP in a deep copy of the code tables: the emitted bytes no
             longer match what checked_sites promises. *)
          let code = Hashtbl.copy img.code in
          Hashtbl.replace code ra (Insn.Nop len, len);
          let code_list =
            Array.map
              (fun (a, i, l) -> if a = ra then (a, Insn.Nop len, l) else (a, i, l))
              img.code_list
          in
          { img with code; code_list }
      | _ -> invalid_arg "Selfcheck: no post-return check at the first checked site")

let skip_mprotect (img : Image.t) = { img with text_perm = Perm.rw }

let plant_code_pointer (img : Image.t) =
  let victim =
    match List.find_opt (fun (f : Image.func_info) -> not f.is_booby_trap) img.funcs with
    | Some f -> f
    | None -> invalid_arg "Selfcheck: image has no ordinary function to leak"
  in
  let addr = Addr.align_up (img.data_base + img.data_len) ~align:8 in
  {
    img with
    data_len = addr + 8 - img.data_base;
    data_words = img.data_words @ [ (addr, victim.entry) ];
  }

let apply m img =
  match m with
  | Drop_btra_postcheck -> drop_postcheck img
  | Skip_mprotect -> skip_mprotect img
  | Plant_code_pointer -> plant_code_pointer img

type outcome = {
  mutation : mutation;
  expected : string;
  rules_hit : string list;
  n_findings : int;
  ok : bool;
}

let run ~expect img =
  List.map
    (fun m ->
      let findings = Lint.run ~expect (apply m img) in
      let rules_hit =
        List.sort_uniq compare (List.map (fun (f : Lint.finding) -> f.rule) findings)
      in
      let expected = expected_rule m in
      {
        mutation = m;
        expected;
        rules_hit;
        n_findings = List.length findings;
        ok = findings <> [] && rules_hit = [ expected ];
      })
    all
