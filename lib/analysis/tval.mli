(** Static translation validation: per-function, per-block symbolic
    execution of the emitted machine code against the IR semantics.

    For every IR basic block the validator builds the block's expected
    effect — the ordered list of memory/call events plus the symbolic
    value each live-out var must hold at the block boundary — and then
    symbolically executes the machine instructions between the block's
    label and the next label (for the entry block: from the function
    entry, through the prologue). The machine run must produce exactly
    the expected events in order, rejoin the IR state at the block exit,
    and keep the stack balanced. Diversification artifacts are the
    *normalization rules*: NOPs are skipped; the prolog trap sled's jump
    is followed; BTRA pre/post pushes, vector batch stores and the
    post-return check (a compare-and-branch over a trap) touch only
    below-frame scratch and normalize away; BTDP prologue copies land in
    camouflage-classified frame slots; shuffled slot and spill offsets
    are resolved through the {!R2c_compiler.Emit.tvmeta} frame map, so a
    permuted frame validates iff an identity frame does.

    Preconditions (all enforced elsewhere): the program passes
    [Ir.Validate.check] (in particular the use-before-init check — block
    rejoin checks compare homes only for live-out vars, which that check
    makes well-defined), and the config does not alias function symbols
    (no CPH — true of the whole [Fuzz.Oracle.matrix]). IR stores through
    out-of-range pointers that would alias compiler-owned frame slots
    are undetectable statically by construction; the
    [oob-const-slot-offset] lint rule covers the statically visible
    case. *)

type finding = {
  tv_func : string;
  tv_block : int option;  (** IR block label, [None] for function-level *)
  tv_addr : int option;  (** machine address of the disagreement *)
  tv_what : string;
}

type report = {
  findings : finding list;  (** deterministic (layout) order *)
  funcs : int;  (** functions validated *)
  blocks : int;  (** blocks validated *)
}

val finding_to_string : finding -> string

(** [validate ~img ~meta p] — validate every function of [p] against its
    emitted code in [img]. [meta] is keyed by function name (from
    {!R2c_compiler.Driver.compile_with_meta} or
    {!R2c_core.Pipeline.compile_with_meta}); a function without metadata
    is itself a finding. *)
val validate :
  img:R2c_machine.Image.t ->
  meta:(string * R2c_compiler.Emit.tvmeta) list ->
  Ir.program ->
  report

(** [validate_config ?seed cfg p] — compile [p] under [cfg] via the full
    pipeline and validate the instrumented program (including e.g. the
    BTDP constructor) against the linked image. *)
val validate_config : ?seed:int -> R2c_core.Dconfig.t -> Ir.program -> report
