open R2c_machine

type expect = {
  xom : bool;
  checked_btra : bool;
  cph : bool;
  booby_traps : bool;
}

let relaxed = { xom = false; checked_btra = false; cph = false; booby_traps = false }

let expect_of_dconfig ?(cph = false) (cfg : R2c_core.Dconfig.t) =
  {
    xom = cfg.xom;
    checked_btra =
      (match cfg.btra with Some b -> b.check_after_return | None -> false);
    cph;
    booby_traps = cfg.booby_trap_funcs > 0;
  }

type finding = { rule : string; f_addr : int option; detail : string }

let finding_to_string f =
  match f.f_addr with
  | Some a -> Printf.sprintf "[%s] 0x%x: %s" f.rule a f.detail
  | None -> Printf.sprintf "[%s] %s" f.rule f.detail

type ctx = { img : Image.t; mem : Mem.t; cfg : Cfg.t; expect : expect }

(* --- Rule: W^X / execute-only page audit ------------------------------- *)

(* Page-level violations are aggregated per kind: a single missing mprotect
   seal covers the whole text mapping and would otherwise drown the report
   in per-page noise. *)
let rule_wx ctx =
  let img = ctx.img in
  let text_lo = img.Image.text_base in
  let text_hi = img.Image.text_base + img.Image.text_len in
  let wx = ref [] and noexec = ref [] and xom_read = ref [] and stray = ref [] in
  List.iter
    (fun (base, (p : Perm.t), _guard) ->
      let in_text = base + Addr.page_size > text_lo && base < text_hi in
      if p.write && p.exec then wx := base :: !wx;
      if in_text then begin
        if not p.exec then noexec := base :: !noexec;
        if ctx.expect.xom && p.read then xom_read := base :: !xom_read
      end
      else if p.exec then stray := base :: !stray)
    (Mem.page_perms ctx.mem);
  let agg what pages =
    match List.rev pages with
    | [] -> []
    | first :: _ as l ->
        [
          {
            rule = "wx";
            f_addr = Some first;
            detail = Printf.sprintf "%s (%d page(s))" what (List.length l);
          };
        ]
  in
  agg "page mapped writable and executable" !wx
  @ agg "text page without execute permission (mprotect seal missing)" !noexec
  @ agg "text page readable under an execute-only policy" !xom_read
  @ agg "executable page outside the text segment" !stray

(* --- Rule: BTRA call sites vs unwind rows ------------------------------ *)

let rule_btra ctx =
  let img = ctx.img in
  let ends = Hashtbl.create 4096 in
  Array.iter (fun (a, i, l) -> Hashtbl.replace ends (a + l) i) (Lazy.force img.Image.code_list);
  let fs = ref [] in
  let add addr fmt =
    Printf.ksprintf
      (fun detail -> fs := { rule = "btra"; f_addr = Some addr; detail } :: !fs)
      fmt
  in
  Hashtbl.iter
    (fun ra words ->
      (match Hashtbl.find_opt ends ra with
      | Some (Insn.Call _ | Insn.Call_ind _) -> ()
      | _ -> add ra "unwind site does not follow a call instruction");
      if words < 0 || words > 256 then add ra "implausible unwind-site words %d" words;
      if ctx.expect.checked_btra && not (Hashtbl.mem img.Image.checked_sites ra) then
        add ra "call site lacks the expected post-return BTRA check";
      if Hashtbl.mem img.Image.checked_sites ra then begin
        (* Section 7.3 pattern: mov r11, [rsp+d]; cmp r11, <booby trap>;
           jcc eq, ok; trap. *)
        match Image.code_at img ra with
        | Some (Insn.Mov (Reg R11, Mem _), l1) -> (
            let a2 = ra + l1 in
            match Image.code_at img a2 with
            | Some (Insn.Cmp (Reg R11, Imm (Abs v)), l2) -> (
                (match Image.func_of_addr img v with
                | Some f when f.Image.is_booby_trap -> ()
                | _ ->
                    add ra "post-return check compares against 0x%x, not a booby trap" v);
                let a3 = a2 + l2 in
                match Image.code_at img a3 with
                | Some (Insn.Jcc (Insn.Eq, _), l3) -> (
                    match Image.code_at img (a3 + l3) with
                    | Some (Insn.Trap, _) -> ()
                    | _ -> add ra "post-return check has no trap on the mismatch path")
                | _ -> add ra "post-return check is missing its conditional branch")
            | _ -> add ra "post-return check is missing the pre-BTRA comparison")
        | _ -> add ra "post-return check bytes missing at checked call site"
      end)
    img.Image.unwind_sites;
  !fs

(* --- Rule: booby traps unreachable through direct control flow --------- *)

let rule_traps ctx =
  let img = ctx.img in
  let fs = ref [] in
  List.iter
    (fun (fc : Cfg.func) ->
      if not fc.fc_booby_trap then
        List.iter
          (fun (b : Cfg.block) ->
            List.iter
              (fun t ->
                match Image.func_of_addr img t with
                | Some f when f.Image.is_booby_trap ->
                    fs :=
                      {
                        rule = "traps";
                        f_addr = Some t;
                        detail =
                          Printf.sprintf "direct control transfer from %s into booby trap %s"
                            fc.fc_name f.Image.fname;
                      }
                      :: !fs
                | _ -> ())
              b.b_calls)
          fc.fc_blocks)
    ctx.cfg.Cfg.funcs;
  if
    ctx.expect.booby_traps
    && not (List.exists (fun (f : Image.func_info) -> f.is_booby_trap) img.Image.funcs)
  then
    fs :=
      {
        rule = "traps";
        f_addr = None;
        detail = "configuration expects booby-trap functions but the image has none";
      }
      :: !fs;
  !fs

(* --- Rule: code-pointer hygiene in readable data ----------------------- *)

let trampoline_prefix = "__tramp_"

let rule_ptr ctx =
  let img = ctx.img in
  let text_lo = img.Image.text_base in
  let text_hi = img.Image.text_base + img.Image.text_len in
  let fs = ref [] in
  (* Walk the loaded data segment on the word grid; anything resolving
     into text must be a slot the linker sanctioned, and under CPH a
     sanctioned function entry must still be a trampoline or a trap. *)
  let addr = ref img.Image.data_base in
  let data_end = img.Image.data_base + img.Image.data_len in
  while !addr + 8 <= data_end do
    (match Mem.peek_u64 ctx.mem !addr with
    | Some v when v >= text_lo && v < text_hi ->
        if Hashtbl.mem (Lazy.force img.Image.code_ptr_slots) !addr then begin
          if ctx.expect.cph then
            match Image.func_of_addr img v with
            | Some f
              when f.entry = v && (not f.is_booby_trap)
                   && not (String.starts_with ~prefix:trampoline_prefix f.fname) ->
                fs :=
                  {
                    rule = "ptr";
                    f_addr = Some !addr;
                    detail =
                      Printf.sprintf "CPH: raw entry of %s readable in data" f.fname;
                  }
                  :: !fs
            | _ -> ()
        end
        else
          fs :=
            {
              rule = "ptr";
              f_addr = Some !addr;
              detail = Printf.sprintf "unsanctioned code pointer 0x%x in readable data" v;
            }
            :: !fs
    | _ -> ());
    addr := !addr + 8
  done;
  !fs

(* --- Rule: frame layout / unwind rows / memory budget ------------------ *)

let rule_frame ctx =
  let img = ctx.img in
  let fs = ref [] in
  let add addr fmt =
    Printf.ksprintf
      (fun detail -> fs := { rule = "frame"; f_addr = Some addr; detail } :: !fs)
      fmt
  in
  let prev_end = ref 0 in
  Array.iter
    (fun (entry, len, frame, post) ->
      if entry < !prev_end then add entry "unwind rows overlap";
      prev_end := entry + len;
      if entry < img.Image.text_base || entry + len > img.Image.text_base + img.Image.text_len
      then add entry "unwind row outside the text segment";
      if frame < 0 || frame land 7 <> 0 then add entry "frame size %d not 8-aligned" frame;
      if post < 0 || post > 64 then add entry "implausible post-offset %d words" post;
      (* Entry rsp is 8 mod 16; calls need 0 mod 16 (Section 7.4.2). *)
      if (frame + (8 * post)) land 15 <> 8 then
        add entry "frame %d + post %d breaks call-site stack alignment" frame post)
    img.Image.unwind_funcs;
  let pages n = (n + Addr.page_size - 1) / Addr.page_size in
  if img.Image.stack_bytes < Addr.page_size then
    add img.Image.data_base "stack allocation below one page";
  let est =
    pages img.Image.text_len + pages img.Image.data_len + pages img.Image.stack_bytes
  in
  if est > 65536 then
    add img.Image.text_base "static resident-set estimate %d pages exceeds the 256 MiB budget"
      est;
  !fs

(* --- Registry ----------------------------------------------------------- *)

let registry =
  [
    ("wx", "W^X / execute-only page-permission audit", rule_wx);
    ("btra", "BTRA call sites vs unwind rows and post-return checks", rule_btra);
    ("traps", "booby traps unreachable through direct control flow", rule_traps);
    ("ptr", "code-pointer hygiene in readable data", rule_ptr);
    ("frame", "frame layout, unwind rows and memory-budget sanity", rule_frame);
  ]

let rules = List.map (fun (name, doc, _) -> (name, doc)) registry

let run ~expect img =
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  let ctx = { img; mem = cpu.Cpu.mem; cfg = Cfg.recover img; expect } in
  List.concat_map (fun (_, _, rule) -> rule ctx) registry
  |> List.sort (fun a b ->
         compare (a.rule, a.f_addr, a.detail) (b.rule, b.f_addr, b.detail))

(* === IR-level rules (Dataflow-powered) ================================== *)

type ir_finding = {
  ir_rule : string;
  ir_func : string;
  ir_block : Ir.label;
  ir_instr : int option;
  ir_detail : string;
}

let ir_finding_to_string f =
  Printf.sprintf "[%s] %s.L%d%s: %s" f.ir_rule f.ir_func f.ir_block
    (match f.ir_instr with Some i -> Printf.sprintf "#%d" i | None -> "(term)")
    f.ir_detail

let block_arr (f : Ir.func) = Array.of_list f.Ir.blocks

(* --- Rule: use-before-def (reaching definitions) ----------------------- *)

let ir_rule_ubd (f : Ir.func) =
  let blocks = block_arr f in
  List.map
    (fun (v, bi, k) ->
      let b = blocks.(bi) in
      let nbody = List.length b.Ir.body in
      {
        ir_rule = "use-before-def";
        ir_func = f.Ir.name;
        ir_block = b.Ir.lbl;
        ir_instr = (if k < nbody then Some k else None);
        ir_detail =
          Printf.sprintf "var %d may be read before any definition reaches it" v;
      })
    (Dataflow.Reaching.uninit_reads f)

(* --- Rule: dead-store (liveness) ---------------------------------------- *)

(* Only side-effect-free definitions are dead stores; calls and loads
   have effects (or can fault) even when the result is unused, and
   Div/Rem can trap on a zero divisor. *)
let pure_def = function
  | Ir.Mov (v, _) | Ir.Cmp (v, _, _, _) | Ir.Slot_addr (v, _) -> Some v
  | Ir.Binop (v, op, _, _) -> (
      match op with Ir.Div | Ir.Rem -> None | _ -> Some v)
  | Ir.Load _ | Ir.Load8 _ | Ir.Store _ | Ir.Store8 _ | Ir.Call _ -> None

let ir_rule_dead_store (f : Ir.func) =
  let lv = Dataflow.Liveness.compute f in
  let blocks = block_arr f in
  let fs = ref [] in
  Array.iteri
    (fun bi b ->
      let before = Dataflow.Liveness.before lv f bi in
      List.iteri
        (fun k instr ->
          match pure_def instr with
          | Some v when not (Dataflow.Iset.mem v before.(k + 1)) ->
              fs :=
                {
                  ir_rule = "dead-store";
                  ir_func = f.Ir.name;
                  ir_block = b.Ir.lbl;
                  ir_instr = Some k;
                  ir_detail = Printf.sprintf "var %d is defined but never read" v;
                }
                :: !fs
          | _ -> ())
        b.Ir.body)
    blocks;
  List.rev !fs

(* --- Rules: const-div-by-zero + oob-const-slot-offset (CCP) ------------ *)

(* Both walk the same conditional-constant environments, so they share
   one pass; the registry still reports them as distinct rules. *)
let ir_rules_ccp (f : Ir.func) =
  let cp = Dataflow.Constprop.compute f in
  let blocks = block_arr f in
  let fs = ref [] in
  let add rule b k fmt =
    Printf.ksprintf
      (fun ir_detail ->
        fs :=
          {
            ir_rule = rule;
            ir_func = f.Ir.name;
            ir_block = b.Ir.lbl;
            ir_instr = Some k;
            ir_detail;
          }
          :: !fs)
      fmt
  in
  Array.iteri
    (fun bi b ->
      if cp.Dataflow.Constprop.executable.(bi) then begin
        let envs = Dataflow.Constprop.before cp f bi in
        let slot_access b k base off width what =
          match Dataflow.Constprop.eval envs.(k) base with
          | Dataflow.Constprop.Cslot (i, d) ->
              let lo = d + off in
              if lo < 0 || lo + width > f.Ir.slots.(i) then
                add "oob-const-slot-offset" b k
                  "%s at slot %d offset %d (width %d) escapes its %d byte(s)" what i lo
                  width f.Ir.slots.(i)
          | _ -> ()
        in
        List.iteri
          (fun k instr ->
            match instr with
            | Ir.Binop (_, (Ir.Div | Ir.Rem), _, rhs) -> (
                match Dataflow.Constprop.eval envs.(k) rhs with
                | Dataflow.Constprop.Cconst 0 ->
                    add "const-div-by-zero" b k "divisor is the constant 0"
                | _ -> ())
            | Ir.Load (_, base, off) -> slot_access b k base off 8 "load"
            | Ir.Load8 (_, base, off) -> slot_access b k base off 1 "load"
            | Ir.Store (base, off, _) -> slot_access b k base off 8 "store"
            | Ir.Store8 (base, off, _) -> slot_access b k base off 1 "store"
            | _ -> ())
          b.Ir.body
      end)
    blocks;
  List.rev !fs

let ir_registry =
  [
    ( "use-before-def",
      "a path reaches a var read with no prior definition (reaching defs)" );
    ("dead-store", "a pure definition is never read (liveness)");
    ("const-div-by-zero", "a divisor folds to the constant 0 (CCP)");
    ( "oob-const-slot-offset",
      "a constant-folded slot access escapes the slot's bounds (CCP)" );
  ]

let ir_rules = ir_registry

let run_ir (p : Ir.program) =
  List.concat_map
    (fun f ->
      let ccp = ir_rules_ccp f in
      let by_rule name =
        List.filter (fun fd -> fd.ir_rule = name) ccp
      in
      ir_rule_ubd f @ ir_rule_dead_store f
      @ by_rule "const-div-by-zero"
      @ by_rule "oob-const-slot-offset")
    p.Ir.funcs
