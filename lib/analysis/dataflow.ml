type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

let block_index (f : Ir.func) =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i (b : Ir.block) -> Hashtbl.replace tbl b.lbl i) f.blocks;
  tbl

let succs (f : Ir.func) =
  let idx = block_index f in
  let arr = Array.make (List.length f.blocks) [] in
  List.iteri
    (fun i (b : Ir.block) ->
      let s =
        match b.term with
        | Ir.Ret _ -> []
        | Ir.Br l -> [ l ]
        | Ir.Cond_br (_, l1, l2) -> [ l1; l2 ]
      in
      arr.(i) <- List.filter_map (fun l -> Hashtbl.find_opt idx l) s)
    f.blocks;
  arr

let preds (f : Ir.func) =
  let sx = succs f in
  let arr = Array.make (Array.length sx) [] in
  Array.iteri (fun i ss -> List.iter (fun s -> arr.(s) <- i :: arr.(s)) ss) sx;
  (* Reversed accumulation: restore ascending order for determinism. *)
  Array.map List.rev arr

let op_uses = function Ir.Var v -> [ v ] | Ir.Const _ | Ir.Global _ | Ir.Func _ -> []

let instr_uses = function
  | Ir.Mov (_, op) -> op_uses op
  | Ir.Binop (_, _, a, b) | Ir.Cmp (_, _, a, b) -> op_uses a @ op_uses b
  | Ir.Load (_, base, _) | Ir.Load8 (_, base, _) -> op_uses base
  | Ir.Store (base, _, value) | Ir.Store8 (base, _, value) -> op_uses base @ op_uses value
  | Ir.Slot_addr _ -> []
  | Ir.Call (_, callee, args) ->
      (match callee with
      | Ir.Indirect op -> op_uses op
      | Ir.Direct _ | Ir.Builtin _ -> [])
      @ List.concat_map op_uses args

let instr_defs = function
  | Ir.Mov (v, _)
  | Ir.Binop (v, _, _, _)
  | Ir.Cmp (v, _, _, _)
  | Ir.Load (v, _, _)
  | Ir.Load8 (v, _, _)
  | Ir.Slot_addr (v, _) ->
      [ v ]
  | Ir.Store _ | Ir.Store8 _ -> []
  | Ir.Call (dst, _, _) -> Option.to_list dst

let term_uses = function
  | Ir.Ret (Some op) -> op_uses op
  | Ir.Cond_br (c, _, _) -> op_uses c
  | Ir.Ret None | Ir.Br _ -> []

module Make (L : LATTICE) = struct
  type result = { block_in : L.t array; block_out : L.t array; iterations : int }

  let solve ~direction ?(entry = L.bottom) ?(edge = fun ~src:_ ~dst:_ x -> x) ~transfer
      (f : Ir.func) =
    let blocks = Array.of_list f.blocks in
    let n = Array.length blocks in
    let sx = succs f and px = preds f in
    let block_in = Array.make n L.bottom in
    let block_out = Array.make n L.bottom in
    let order =
      match direction with
      | Forward -> Array.init n (fun i -> i)
      | Backward -> Array.init n (fun i -> n - 1 - i)
    in
    let is_exit i = match blocks.(i).Ir.term with Ir.Ret _ -> true | _ -> false in
    let iterations = ref 0 in
    let changed = ref true in
    (* Monotone transfers over finite lattices converge; the cap turns a
       non-monotone client into a loud failure instead of a hang. *)
    let cap = 64 + (4 * n) in
    while !changed do
      changed := false;
      incr iterations;
      if !iterations > cap then invalid_arg "Dataflow.solve: no fixpoint (non-monotone transfer?)";
      Array.iter
        (fun i ->
          match direction with
          | Forward ->
              let inc =
                List.fold_left
                  (fun acc p -> L.join acc (edge ~src:p ~dst:i block_out.(p)))
                  L.bottom px.(i)
              in
              let inc = if i = 0 then L.join inc entry else inc in
              let out = transfer i inc in
              if not (L.equal inc block_in.(i) && L.equal out block_out.(i)) then
                changed := true;
              block_in.(i) <- inc;
              block_out.(i) <- out
          | Backward ->
              let out =
                List.fold_left
                  (fun acc s -> L.join acc (edge ~src:i ~dst:s block_in.(s)))
                  L.bottom sx.(i)
              in
              let out = if is_exit i then L.join out entry else out in
              let inc = transfer i out in
              if not (L.equal inc block_in.(i) && L.equal out block_out.(i)) then
                changed := true;
              block_in.(i) <- inc;
              block_out.(i) <- out)
        order
    done;
    { block_in; block_out; iterations = !iterations }
end

module Iset = Set.Make (Int)

module Iset_lattice = struct
  type t = Iset.t

  let bottom = Iset.empty
  let equal = Iset.equal
  let join = Iset.union
end

module Iset_solver = Make (Iset_lattice)

module Liveness = struct
  type t = { live_in : Iset.t array; live_out : Iset.t array; iterations : int }

  let through_instr instr live =
    let live = List.fold_left (fun s v -> Iset.remove v s) live (instr_defs instr) in
    List.fold_left (fun s v -> Iset.add v s) live (instr_uses instr)

  let through_block (b : Ir.block) live_out =
    let live = List.fold_left (fun s v -> Iset.add v s) live_out (term_uses b.term) in
    List.fold_left (fun live instr -> through_instr instr live) live (List.rev b.body)

  let compute (f : Ir.func) =
    let blocks = Array.of_list f.blocks in
    let r =
      Iset_solver.solve ~direction:Backward
        ~transfer:(fun i out -> through_block blocks.(i) out)
        f
    in
    { live_in = r.block_in; live_out = r.block_out; iterations = r.iterations }

  let before t (f : Ir.func) bi =
    let b = List.nth f.blocks bi in
    let n = List.length b.body in
    let table = Array.make (n + 1) Iset.empty in
    table.(n) <-
      List.fold_left (fun s v -> Iset.add v s) t.live_out.(bi) (term_uses b.term);
    List.iteri
      (fun k instr ->
        (* k-th from the end of the body *)
        let pos = n - 1 - k in
        table.(pos) <- through_instr instr table.(pos + 1))
      (List.rev b.body);
    table
end

module Reaching = struct
  type site = Param of Ir.var | Uninit of Ir.var | Def of int * int

  type t = {
    sites : site array;
    site_var : int array;
    reach_in : Iset.t array;
    reach_out : Iset.t array;
    iterations : int;
  }

  (* Def-site numbering: params, then virtual uninit sites, then textual
     definitions in layout order — stable per function. *)
  let enumerate (f : Ir.func) =
    let sites = ref [] in
    let add s v = sites := (s, v) :: !sites in
    for v = 0 to f.nparams - 1 do
      add (Param v) v
    done;
    for v = f.nparams to f.nvars - 1 do
      add (Uninit v) v
    done;
    List.iteri
      (fun bi (b : Ir.block) ->
        List.iteri
          (fun k instr -> List.iter (fun v -> add (Def (bi, k)) v) (instr_defs instr))
          b.body)
      f.blocks;
    let all = List.rev !sites in
    (Array.of_list (List.map fst all), Array.of_list (List.map snd all))

  let compute (f : Ir.func) =
    let sites, site_var = enumerate f in
    (* var -> all of its def ids (the kill-set support). *)
    let var_sites = Array.make (max f.nvars 1) Iset.empty in
    Array.iteri (fun id v -> var_sites.(v) <- Iset.add id var_sites.(v)) site_var;
    (* (block, instr) -> def id for the textual defs. *)
    let def_id = Hashtbl.create 64 in
    Array.iteri
      (fun id s -> match s with Def (bi, k) -> Hashtbl.replace def_id (bi, k) id | _ -> ())
      sites;
    let blocks = Array.of_list f.blocks in
    let transfer bi inc =
      let set = ref inc in
      List.iteri
        (fun k instr ->
          List.iter
            (fun v ->
              let id = Hashtbl.find def_id (bi, k) in
              set := Iset.add id (Iset.diff !set var_sites.(v)))
            (instr_defs instr))
        blocks.(bi).Ir.body;
      !set
    in
    let entry = ref Iset.empty in
    Array.iteri
      (fun id s ->
        match s with Param _ | Uninit _ -> entry := Iset.add id !entry | Def _ -> ())
      sites;
    let r = Iset_solver.solve ~direction:Forward ~entry:!entry ~transfer f in
    { sites; site_var; reach_in = r.block_in; reach_out = r.block_out;
      iterations = r.iterations }

  let before t (f : Ir.func) bi =
    let b = List.nth f.blocks bi in
    let n = List.length b.body in
    (* This block's textual def ids, by instruction index. *)
    let def_id = Hashtbl.create 16 in
    Array.iteri
      (fun id s ->
        match s with Def (b', k) when b' = bi -> Hashtbl.replace def_id k id | _ -> ())
      t.sites;
    let table = Array.make (n + 1) Iset.empty in
    let cur = ref t.reach_in.(bi) in
    List.iteri
      (fun k instr ->
        table.(k) <- !cur;
        List.iter
          (fun v ->
            let id = Hashtbl.find def_id k in
            cur := Iset.add id (Iset.filter (fun s -> t.site_var.(s) <> v) !cur))
          (instr_defs instr))
      b.body;
    table.(n) <- !cur;
    table

  let uninit_reads (f : Ir.func) =
    let t = compute f in
    let blocks = Array.of_list f.blocks in
    let found = ref [] in
    let is_uninit_of v id = match t.sites.(id) with Uninit v' -> v' = v | _ -> false in
    Array.iteri
      (fun bi (b : Ir.block) ->
        let cur = ref t.reach_in.(bi) in
        let check_uses uses k =
          List.iter
            (fun v -> if Iset.exists (is_uninit_of v) !cur then found := (v, bi, k) :: !found)
            uses
        in
        List.iteri
          (fun k instr ->
            check_uses (instr_uses instr) k;
            List.iter
              (fun v -> cur := Iset.filter (fun id -> not (is_uninit_of v id)) !cur)
              (instr_defs instr))
          b.body;
        check_uses (term_uses b.term) (List.length b.body))
      blocks;
    List.rev !found
end

module Constprop = struct
  type cval = Cundef | Cconst of int | Cslot of int * int | Cvaries

  type t = { env_in : cval array option array; executable : bool array; iterations : int }

  let join_cval a b =
    match (a, b) with
    | Cundef, x | x, Cundef -> x
    | Cconst x, Cconst y when x = y -> a
    | Cslot (i, d), Cslot (i', d') when i = i' && d = d' -> a
    | _ -> Cvaries

  let eval env = function
    | Ir.Const n -> Cconst n
    | Ir.Var v -> env.(v)
    | Ir.Global _ | Ir.Func _ -> Cvaries

  (* Mirrors Interp.eval_binop exactly, except that a constant zero
     divisor stays symbolic (the interpreter traps; the lint rule
     reports it). *)
  let fold_binop op a b =
    match (op, a, b) with
    | _, Cundef, _ | _, _, Cundef -> Cundef
    | (Ir.Div | Ir.Rem), _, Cconst 0 -> Cvaries
    | op, Cconst x, Cconst y ->
        Cconst
          (match op with
          | Ir.Add -> x + y
          | Ir.Sub -> x - y
          | Ir.Mul -> x * y
          | Ir.Div -> x / y
          | Ir.Rem -> x mod y
          | Ir.And -> x land y
          | Ir.Or -> x lor y
          | Ir.Xor -> x lxor y
          | Ir.Shl -> x lsl (y land 63)
          | Ir.Shr -> x lsr (y land 63)
          | Ir.Sar -> x asr (y land 63))
    | Ir.Add, Cslot (i, d), Cconst c | Ir.Add, Cconst c, Cslot (i, d) -> Cslot (i, d + c)
    | Ir.Sub, Cslot (i, d), Cconst c -> Cslot (i, d - c)
    | _ -> Cvaries

  let fold_cmp c a b =
    match (a, b) with
    | Cundef, _ | _, Cundef -> Cundef
    | Cconst x, Cconst y ->
        let r =
          match c with
          | Ir.Eq -> x = y
          | Ir.Ne -> x <> y
          | Ir.Lt -> x < y
          | Ir.Le -> x <= y
          | Ir.Gt -> x > y
          | Ir.Ge -> x >= y
        in
        Cconst (if r then 1 else 0)
    | _ -> Cvaries

  let exec_instr env = function
    | Ir.Mov (v, op) -> env.(v) <- eval env op
    | Ir.Binop (v, op, a, b) -> env.(v) <- fold_binop op (eval env a) (eval env b)
    | Ir.Cmp (v, c, a, b) -> env.(v) <- fold_cmp c (eval env a) (eval env b)
    | Ir.Load (v, _, _) | Ir.Load8 (v, _, _) -> env.(v) <- Cvaries
    | Ir.Store _ | Ir.Store8 _ -> ()
    | Ir.Slot_addr (v, i) -> env.(v) <- Cslot (i, 0)
    | Ir.Call (dst, _, _) -> (
        match dst with Some d -> env.(d) <- Cvaries | None -> ())

  module Env_lattice = struct
    type t = cval array option

    let bottom = None

    let equal a b =
      match (a, b) with
      | None, None -> true
      | Some x, Some y -> x = y
      | _ -> false

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some x, Some y -> Some (Array.init (Array.length x) (fun i -> join_cval x.(i) y.(i)))
  end

  module Env_solver = Make (Env_lattice)

  let compute (f : Ir.func) =
    let blocks = Array.of_list f.blocks in
    let idx = block_index f in
    let transfer bi = function
      | None -> None
      | Some env ->
          let env = Array.copy env in
          List.iter (exec_instr env) blocks.(bi).Ir.body;
          Some env
    in
    let edge ~src ~dst fact =
      match fact with
      | None -> None
      | Some env -> (
          match blocks.(src).Ir.term with
          | Ir.Cond_br (c, l1, l2) -> (
              match eval env c with
              | Cconst n ->
                  let taken = if n <> 0 then l1 else l2 in
                  if Hashtbl.find_opt idx taken = Some dst then fact else None
              | Cundef | Cvaries | Cslot _ -> fact)
          | Ir.Br _ | Ir.Ret _ -> fact)
    in
    let entry_env =
      Array.init (max f.nvars 1) (fun v -> if v < f.nparams then Cvaries else Cundef)
    in
    let r =
      Env_solver.solve ~direction:Forward ~entry:(Some entry_env) ~edge ~transfer f
    in
    {
      env_in = r.block_in;
      executable = Array.map (fun e -> e <> None) r.block_in;
      iterations = r.iterations;
    }

  let before t (f : Ir.func) bi =
    match t.env_in.(bi) with
    | None -> invalid_arg "Dataflow.Constprop.before: non-executable block"
    | Some env0 ->
        let b = List.nth f.blocks bi in
        let n = List.length b.body in
        let table = Array.make (n + 1) [||] in
        let env = ref (Array.copy env0) in
        List.iteri
          (fun k instr ->
            table.(k) <- Array.copy !env;
            exec_instr !env instr)
          b.body;
        table.(n) <- Array.copy !env;
        table

  let folded t (f : Ir.func) =
    let count = ref 0 in
    List.iteri
      (fun bi (b : Ir.block) ->
        match t.env_in.(bi) with
        | None -> ()
        | Some env0 ->
            let env = Array.copy env0 in
            List.iter
              (fun instr ->
                exec_instr env instr;
                let foldable =
                  match instr with
                  | Ir.Mov (_, Ir.Const _) -> false
                  | Ir.Mov _ | Ir.Binop _ | Ir.Cmp _ -> true
                  | _ -> false
                in
                if foldable then
                  match instr_defs instr with
                  | [ v ] -> ( match env.(v) with Cconst _ -> incr count | _ -> ())
                  | _ -> ())
              b.body)
      f.blocks;
    !count
end

type stats = { folded : int; max_iterations : int }

let program_stats (p : Ir.program) =
  List.fold_left
    (fun acc (f : Ir.func) ->
      let lv = Liveness.compute f in
      let rd = Reaching.compute f in
      let cp = Constprop.compute f in
      {
        folded = acc.folded + Constprop.folded cp f;
        max_iterations =
          List.fold_left max acc.max_iterations
            [ lv.Liveness.iterations; rd.Reaching.iterations; cp.Constprop.iterations ];
      })
    { folded = 0; max_iterations = 0 }
    p.funcs
