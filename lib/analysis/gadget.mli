(** Static gadget-surface scanner.

    Enumerates ret/indirect-jump/indirect-call-terminated instruction
    sequences from {e every} byte offset of the materialised text segment —
    the attacker's unaligned decode, not the compiler's instruction
    stream — and intersects gadget populations across diversified
    variants. The cross-variant survivor count is the static counterpart
    of Table 3's dynamic AOCR/JIT-ROP results: a gadget is only reusable
    across variants if both its text-relative offset and its bytes
    survive diversification. *)

type kind = K_ret | K_jmp_ind | K_call_ind

val kind_to_string : kind -> string

type gadget = {
  g_off : int;  (** text-relative byte offset (ASLR-independent) *)
  g_len : int;  (** bytes *)
  g_insns : int;  (** decoded instructions including the terminator *)
  g_kind : kind;
  g_bytes : string;
}

(** [text_bytes img] — the text segment exactly as the loader materialises
    it (pseudo-encoded instructions, zero padding). *)
val text_bytes : R2c_machine.Image.t -> string

(** [scan ?max_insns img] — all gadgets of at most [max_insns]
    instructions (default 5), ascending by offset. *)
val scan : ?max_insns:int -> R2c_machine.Image.t -> gadget list

(** [survivors variants] — the gadgets of the first variant present at the
    same offset with the same bytes in every other variant. *)
val survivors : gadget list list -> gadget list
