module B = Builder

(* Serving loop bound: effectively "loop forever" next to the pool's
   recycling knobs — child rotation is the supervisor's decision
   (requests_per_child), not the program's. *)
let loop_bound = 4096

let break_symbol = "__ra_process_request_0"

let program () =
  (* One request: read into a bounded stack buffer, a tiny compute
     kernel, a served-request counter, and a heartbeat line every 16th
     request so the client-visible output channel stays exercised without
     the O(output) line scan growing past a few lines per child. *)
  let pr = B.func "process_request" ~nparams:1 in
  let i = B.param 0 in
  let s_buf = B.slot pr 64 in
  B.store8 pr (B.slot_addr pr s_buf) 0 (Ir.Const 0);
  (* Call site 0 — the serving point the pool parks workers at. *)
  let _n = B.call pr (Ir.Builtin "read_input") [ B.slot_addr pr s_buf; Ir.Const 4096 ] in
  let x = B.load8 pr (B.slot_addr pr s_buf) 0 in
  let x2 = B.binop pr Ir.Mul x x in
  let r = B.binop pr Ir.Add x2 (Ir.Const 7) in
  let c = B.load pr (Ir.Global "g_req_count") 0 in
  let c2 = B.binop pr Ir.Add c (Ir.Const 1) in
  B.store pr (Ir.Global "g_req_count") 0 c2;
  let beat = B.binop pr Ir.Rem i (Ir.Const 16) in
  let is_beat = B.cmp pr Ir.Eq beat (Ir.Const 0) in
  let say = B.new_block pr and fin = B.new_block pr in
  B.cond_br pr is_beat say fin;
  B.switch_to pr say;
  B.call_void pr (Ir.Builtin "print_int") [ r ];
  B.br pr fin;
  B.switch_to pr fin;
  B.ret pr (Some r);
  (* The accept loop. *)
  let main = B.func "main" ~nparams:0 in
  let s_i = B.slot main 8 in
  let i_addr = B.slot_addr main s_i in
  B.store main i_addr 0 (Ir.Const 0);
  let header = B.new_block main and body = B.new_block main and stop = B.new_block main in
  B.br main header;
  B.switch_to main header;
  let iv = B.load main i_addr 0 in
  let cmp = B.cmp main Ir.Lt iv (Ir.Const loop_bound) in
  B.cond_br main cmp body stop;
  B.switch_to main body;
  let iv2 = B.load main i_addr 0 in
  B.call_void main (Ir.Direct "process_request") [ iv2 ];
  let iv3 = B.binop main Ir.Add iv2 (Ir.Const 1) in
  B.store main i_addr 0 iv3;
  B.br main header;
  B.switch_to main stop;
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish pr; B.finish main ]
    [ B.global "g_req_count" ~size:8 [] ]

let build ?(seed = 1) cfg = R2c_core.Pipeline.compile ~seed cfg (program ())

(* Epoch builds through the per-function codegen cache: body
   diversification is pinned at [body_seed] and the fleet's rotating seed
   moves only the layout/ASLR coordinates, so every rotation after the
   first is a cache-hit relink (the R2C steady-state). The shared rerand
   handle is serialized by a mutex — [Fleet] fans shard builds over the
   Domain pool, and the handle's memo is single-writer. Images depend
   only on the coordinates (the byte-identical contract), never on cache
   state or build order, so fleet reports stay width-independent. *)
let incremental_builder ?(body_seed = 1) ?jobs cfg =
  let p = program () in
  let r = R2c_core.Pipeline.rerand_create () in
  let lock = Mutex.create () in
  fun ~seed ->
    Mutex.protect lock (fun () ->
        let img, _ =
          R2c_core.Pipeline.compile_incremental ?jobs r
            { R2c_core.Pipeline.cfg; body_seed; link_seed = Some seed }
            p
        in
        img)
