(* The generator moved to R2c_fuzz.Gen so the scalability experiment and
   the differential fuzzer share one implementation; [Gen.layered] is the
   verbatim v1 generator, so [generate ~seed ~funcs] output is unchanged
   (the determinism, validation, and differential tests pin it). *)

let generate = R2c_fuzz.Gen.layered
