(** The fleet-scale serving workload.

    A deliberately lean request server for campaigns that push hundreds of
    thousands of requests through {!R2c_runtime.Fleet}: the same
    park-at-[read_input] serving protocol as {!Vulnapp} (so the pool's
    break-symbol machinery applies unchanged) but with a minimal handler —
    bounded read, a small compute kernel, a served-request counter, and a
    heartbeat response line every 16th request. No planted vulnerability:
    fleet campaigns get their failures from the chaos injector, not from
    attack payloads, and the per-request instruction count is what sets
    the campaign's wall-clock. *)

(** Requests the serving loop accepts before the child exits on its own
    (set high; child rotation belongs to the supervisor's
    [requests_per_child], not the program). *)
val loop_bound : int

val program : unit -> Ir.program

(** Return-address symbol of the [read_input] call — the per-request
    serving point workers park at. *)
val break_symbol : string

(** [build ?seed cfg] — compile the server under a diversity
    configuration. *)
val build : ?seed:int -> R2c_core.Dconfig.t -> R2c_machine.Image.t

(** [incremental_builder ?body_seed ?jobs cfg] — a fleet/pool build
    function backed by one shared incremental-rerandomization handle
    ({!R2c_core.Pipeline.rerand}): the body diversification is pinned at
    [body_seed] and the rotating [~seed] moves only the layout/ASLR
    coordinates, so every epoch rotation after the first is a cache-hit
    relink. Thread-safe (epoch builds are serialized); the produced image
    is a pure function of the coordinates, so fleet reports remain
    Domain-pool-width independent. *)
val incremental_builder :
  ?body_seed:int ->
  ?jobs:int ->
  R2c_core.Dconfig.t ->
  seed:int ->
  R2c_machine.Image.t
