(** Random program generation for the scalability experiment (Section 6.3).

    The paper's claim is that the R2C compiler ingests multi-million-line
    browsers and the output still passes their test suites. Our analogue:
    generate seeded random programs with thousands of functions (layered
    call DAG, mixed arithmetic/memory/loop/call bodies), compile them under
    full R2C, execute, and differentially check the printed checksum
    against the reference interpreter. *)

(** [generate ~seed ~funcs] — a program with [funcs] functions (plus main)
    whose call graph is a layered DAG; every function is reachable and
    executed at least once. Delegates to {!R2c_fuzz.Gen.layered}: the
    scalability experiment and the differential fuzzer share one
    generator, and equal seeds keep producing the exact programs the
    pinned tests were written against. *)
val generate : seed:int -> funcs:int -> Ir.program
