(** Seeded program generators for the differential fuzzer.

    Two generators share this module:

    - {!layered} is the v1 generator (formerly [R2c_workloads.Genprog]):
      layered call DAGs with mixed arithmetic/memory/loop bodies, used by
      the Section 6.3 scalability experiment. Its output is stable: equal
      seeds produce exactly the programs the pinned scalability and
      property tests were written against.

    - {!v2} subsumes it for divergence hunting: bounded self-recursion,
      indirect calls through a code-pointer table, deliberately aliasing
      loads/stores (word and byte granularity against the same address
      computed twice), division/remainder and overflow edge operands, and
      booby-trap-adjacent control flow (statically reachable, dynamically
      cold branches). Every program terminates by construction: loops have
      constant bounds, recursion depth is masked to 15, the direct call
      graph is layered, and indirect calls only target strictly
      lower-numbered functions.

    All randomness comes from one splittable seed ({!R2c_util.Rng}), so a
    reproducer is its seed. Generated programs pass [Validate.check] and
    stay inside the differential contract (no address-dependent output). *)

(** [layered ~seed ~funcs] — a program with [funcs] functions (plus main)
    whose call graph is a layered DAG; every function is reachable and
    executed at least once. *)
val layered : seed:int -> funcs:int -> Ir.program

(** [v2 ~seed] — a generator-v2 program. [funcs] overrides the drawn
    function count (default 4–10). The program always contains at least
    one output-visible [Sub] instruction in [main], which the planted
    miscompile of {!Oracle.plant} keys on. *)
val v2 : ?funcs:int -> seed:int -> unit -> Ir.program
