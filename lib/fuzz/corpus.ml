let save ~dir ~name p =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Filename.concat dir (name ^ ".r2c") in
  let oc = open_out path in
  output_string oc (Text.to_string p);
  close_out oc;
  path

let files ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".r2c")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Text.parse src with
  | Ok p -> Ok p
  | Error e -> Error (Text.error_to_string e)
