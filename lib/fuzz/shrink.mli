(** Greedy delta-debugging over IR programs.

    Reduces a diverging program to a minimal reproducer the way Wasm-R3
    reduces recorded traces to standalone benchmarks: propose an edit,
    re-validate with [Validate.check], re-run the failure predicate, keep
    the edit only if the program still validates and still fails. Edits
    are ordered big-to-small: drop whole functions (rewriting their call
    sites to constants), collapse conditional branches and garbage-collect
    unreachable blocks, drop or neutralise instructions (definitions
    become [Mov v, 0] so no variable is ever left uninitialised — a raw
    drop could manufacture a fresh divergence and hijack the predicate),
    simplify operands toward small constants, halve constants (loop
    bounds shrink this way), remove unused globals, and compact unused
    stack slots.

    Each accepted edit strictly decreases an integer weight, so the
    process terminates; [max_checks] additionally bounds the number of
    predicate evaluations (each one compiles and runs the candidate). *)

(** The greedy delta-debugging core, generalized away from IR so other
    artifact kinds (notably recorded replay traces — see
    [R2c_replay.Reduce]) can reuse the machinery: propose candidate edits
    big-to-small, accept an edit iff it strictly decreases [weight] while
    remaining [valid] and still satisfying [keep], restart enumeration
    from the new value, and stop at a fixpoint or after [max_checks]
    [keep]-evaluations (the expensive predicate — [valid] is assumed
    cheap and is not budgeted). Strict weight decrease is the termination
    argument. *)
module Greedy : sig
  type stats = {
    checks : int;  (** [keep] evaluations spent *)
    kept : int;  (** accepted edits *)
  }

  val fix :
    ?max_checks:int ->
    weight:('a -> int) ->
    candidates:('a -> (unit -> 'a) list) ->
    valid:('a -> bool) ->
    keep:('a -> bool) ->
    'a ->
    'a * stats
end

(** [run ?max_checks ~still_fails p] — a minimal-ish program that
    validates and satisfies [still_fails]. [p] itself is assumed to fail;
    it is returned unchanged if no edit survives. Default [max_checks]:
    4000. An instance of {!Greedy.fix} with [valid = Validate.check _ = []]. *)
val run : ?max_checks:int -> still_fails:(Ir.program -> bool) -> Ir.program -> Ir.program
