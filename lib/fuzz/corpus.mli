(** Reproducer corpus: shrunk divergences persisted as [.r2c] files.

    A surviving divergence is saved via the [Text] surface syntax (the
    [Ir.Pretty]/[Text] round-trip is part of the fuzz test suite), so a
    reproducer is a standalone compiler input: [r2cc file.r2c] compiles
    it, [experiments fuzz] and [dune runtest] replay everything under
    [test/corpus/]. An absent or empty directory is vacuously clean, so
    CI is green before the first find. *)

(** [save ~dir ~name p] — write [p] as [dir/name.r2c] (directory created
    if missing), returning the path. *)
val save : dir:string -> name:string -> Ir.program -> string

(** [files ~dir] — sorted [.r2c] paths under [dir]; [] if the directory
    does not exist. *)
val files : dir:string -> string list

(** [load path] — parse a reproducer back into IR. *)
val load : string -> (Ir.program, string) result
