(** Fuzzing campaigns: generate, oracle-check, shrink, persist.

    The correctness backstop for every later perf/refactor PR: [run]
    hunts for compiler/VM divergences across the whole [Oracle.matrix];
    [self_check] plants a deliberate miscompile and requires the pipeline
    to catch it, shrink it to a handful of instructions, and emit a valid
    [.r2c] reproducer — proving the oracle and shrinker actually work
    before trusting a clean campaign. *)

type report = {
  seed : int;
  requested : int;  (** programs asked for *)
  programs : int;  (** programs oracle-checked (= requested) *)
  skipped : int;  (** outside the differential contract (interp fuel etc.) *)
  points : int;  (** config points checked per program *)
  divergences : int;  (** programs with at least one failing point *)
  reproducers : (string * int) list;
      (** saved reproducer path, shrunk size in IR instructions *)
}

(** [run ?corpus_dir ?fuel ?jobs ~seed ~count ()] — [count] generator-v2
    programs derived from [seed], each checked against the full matrix.
    Divergences are shrunk against their first failing point and, when
    [corpus_dir] is given, saved there. Programs fan out over a
    {!R2c_util.Parallel} domain pool capped at [jobs] (1 = the historical
    serial path); the report is identical at any [jobs]. *)
val run :
  ?corpus_dir:string -> ?fuel:int -> ?jobs:int -> seed:int -> count:int -> unit -> report

type self_check = {
  caught : bool;  (** the planted miscompile diverged *)
  shrunk_size : int;  (** [Ir.program_size] of the reduced reproducer *)
  reproducer : string;  (** path of the saved [.r2c] file *)
  roundtrip_ok : bool;  (** saved file parses, validates, still fails *)
  still_fails : bool;  (** the shrunk program still diverges *)
}

(** [self_check ?out_dir ?fuel ~seed ()] — plant [Oracle.Sub_to_add],
    fuzz one program, shrink the divergence, save the reproducer under
    [out_dir] (default: [<tmp>/r2c_fuzz]). *)
val self_check : ?out_dir:string -> ?fuel:int -> seed:int -> unit -> self_check

(** [replay ?fuel ~dir ()] — load every [.r2c] under [dir], demand it
    parses, validates, and passes the oracle. Returns
    [(path, error) list]; empty means clean (vacuously so for an empty
    corpus). *)
val replay : ?fuel:int -> dir:string -> unit -> (string * string) list
