(** Cross-configuration equivalence oracle.

    R2C's soundness claim (Section 6.3) is that every diversification
    configuration is observationally equivalent to the baseline program.
    The oracle makes that executable: a generated program is run through
    the reference interpreter and through the compiled [r2c_machine] under
    a matrix of [Dconfig] points — baseline, full R2C, and each knob in
    isolation — plus rerandomized variants (fresh seeds) of the full
    configuration. Every run must produce the identical observable
    (printed output + exit status); a booby trap firing on the legitimate
    path, a crash, or a timeout is a divergence like any other.

    A {!plant} deliberately miscompiles the program on the compiled side
    only, to prove end-to-end that the oracle catches real bugs and the
    shrinker reduces them (the fuzz self-check). *)

type plant =
  | Sub_to_add  (** every [Sub] compiles as [Add] *)
  | Drop_stores  (** word stores are discarded *)
  | Off_by_one  (** constant [Add] operands compile one too large *)

(** [apply_plant pl p] — the miscompiled program the compiled path sees. *)
val apply_plant : plant -> Ir.program -> Ir.program

(** The config matrix: name + configuration. Covers every [Dconfig] knob
    at least once (asserted by the test suite). Baseline first, so a
    config-independent miscompile fails fast on the cheapest point. *)
val matrix : (string * R2c_core.Dconfig.t) list

(** [find_cfg name] — matrix lookup; raises [Not_found] on unknown name. *)
val find_cfg : string -> R2c_core.Dconfig.t

type failure = {
  point : string;  (** matrix point name *)
  cseed : int;  (** compile seed of the diverging variant *)
  expected : string;  (** reference observable *)
  got : string;  (** compiled observable (or crash/timeout tag) *)
}

type verdict =
  | Pass of int  (** config points checked *)
  | Fail of failure list
  | Skip of string
      (** reference interpreter failed (fuel, runtime error) or the
          program does not validate — outside the differential contract *)

(** [check ?plant ?fuel ?seed ?rerand ?jobs p] — full matrix at compile
    seed [seed] (default 3), plus the full configuration recompiled at
    each seed in [rerand] (default [[1003; 2003]]) to assert equivalence
    across rerandomized variants. [fuel] caps reference interpretation
    (default 5M IR steps); the machine budget is 40x that. The matrix
    points are independent compile+run pairs and fan out over a
    {!R2c_util.Parallel} domain pool capped at [jobs]; the verdict is
    independent of [jobs]. *)
val check :
  ?plant:plant ->
  ?fuel:int -> ?seed:int -> ?rerand:int list -> ?jobs:int -> Ir.program -> verdict

(** [diverges ?plant ?fuel ~seed ~cfg p] — single-point oracle, the
    shrinker's predicate: true iff [p] validates, the reference run
    succeeds, and the compiled run under [cfg] at [seed] observably
    differs. *)
val diverges :
  ?plant:plant -> ?fuel:int -> seed:int -> cfg:R2c_core.Dconfig.t -> Ir.program -> bool
