module B = Builder
module Rng = R2c_util.Rng

(* Private copies of the Wb control-flow shapes: Wb lives in r2c_workloads,
   which depends on this library, so the helpers are duplicated here. The
   [for_] copy must stay instruction-identical to [Wb.for_] — [layered]
   relies on it to keep v1 output stable. *)

let for_ fb ~from ~below body =
  let ctr = B.slot fb 8 in
  B.store fb (B.slot_addr fb ctr) 0 from;
  let header = B.new_block fb and bodyl = B.new_block fb and fin = B.new_block fb in
  B.br fb header;
  B.switch_to fb header;
  let i = B.load fb (B.slot_addr fb ctr) 0 in
  let c = B.cmp fb Ir.Lt i below in
  B.cond_br fb c bodyl fin;
  B.switch_to fb bodyl;
  let i' = B.load fb (B.slot_addr fb ctr) 0 in
  body i';
  let i2 = B.load fb (B.slot_addr fb ctr) 0 in
  let inext = B.binop fb Ir.Add i2 (Ir.Const 1) in
  B.store fb (B.slot_addr fb ctr) 0 inext;
  B.br fb header;
  B.switch_to fb fin

let if_ fb c then_ else_ =
  let yes = B.new_block fb and no = B.new_block fb and join = B.new_block fb in
  B.cond_br fb c yes no;
  B.switch_to fb yes;
  then_ ();
  B.br fb join;
  B.switch_to fb no;
  else_ ();
  B.br fb join;
  B.switch_to fb join

(* ------------------------------------------------------------------ *)
(* v1: the layered-DAG generator, verbatim from the original Genprog.  *)
(* ------------------------------------------------------------------ *)

let gp_fname i = Printf.sprintf "gp_f%d" i

(* One generated function: mixes its parameters with arithmetic, touches a
   global array, sometimes loops, and calls 0-3 lower-numbered functions
   (guaranteeing an acyclic call graph). *)
let gen_layered_func rng i =
  let fb = B.func (gp_fname i) ~nparams:2 in
  let a = B.param 0 and b = B.param 1 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 a;
  let add v =
    let cur = B.load fb (B.slot_addr fb acc) 0 in
    B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.Add cur v)
  in
  (* Arithmetic body. *)
  let n_ops = Rng.int_in_range rng ~lo:2 ~hi:6 in
  let cur = ref b in
  for _ = 1 to n_ops do
    let op =
      match Rng.int rng 5 with
      | 0 -> Ir.Add
      | 1 -> Ir.Sub
      | 2 -> Ir.Mul
      | 3 -> Ir.Xor
      | _ -> Ir.And
    in
    cur := B.binop fb op !cur (Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:1000))
  done;
  add !cur;
  (* Global array touch. *)
  if Rng.bool rng then begin
    let idx = B.binop fb Ir.And a (Ir.Const 63) in
    let off = B.binop fb Ir.Mul idx (Ir.Const 8) in
    let slot = B.binop fb Ir.Add (Ir.Global "gp_data") off in
    let v = B.load fb slot 0 in
    B.store fb slot 0 (B.binop fb Ir.Add v (Ir.Const 1));
    add v
  end;
  (* Occasional small loop. *)
  if Rng.int rng 3 = 0 then begin
    let n = Rng.int_in_range rng ~lo:2 ~hi:5 in
    for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const n) (fun k ->
        let m = B.binop fb Ir.Mul k (Ir.Const 3) in
        add m)
  end;
  (* Calls to earlier functions (each executed exactly once per call of
     this function, keeping total work linear in program size). *)
  if i > 0 then begin
    (* Expected out-degree < 1 keeps the expected transitive work per call
       bounded, so even 30k-function programs execute in linear time. *)
    let n_calls =
      match Rng.int rng 10 with 0 | 1 | 2 | 3 -> 1 | 4 | 5 -> 2 | _ -> 0
    in
    let n_calls = min n_calls i in
    for _ = 1 to n_calls do
      let callee = Rng.int rng i in
      let v =
        B.call fb (Ir.Direct (gp_fname callee))
          [ B.binop fb Ir.And a (Ir.Const 0xffff); Ir.Const (Rng.int_in_range rng ~lo:0 ~hi:99) ]
      in
      add v
    done
  end;
  let r = B.load fb (B.slot_addr fb acc) 0 in
  B.ret fb (Some (B.binop fb Ir.And r (Ir.Const 0xffff_ffff)));
  B.finish fb

let layered ~seed ~funcs =
  assert (funcs > 0);
  let rng = Rng.create seed in
  let fs = List.init funcs (fun i -> gen_layered_func rng i) in
  let main = B.func "main" ~nparams:0 in
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  (* Call the top layer: the highest functions transitively execute a large
     share of the graph. *)
  let roots = min 8 funcs in
  for k = 1 to roots do
    let v = B.call main (Ir.Direct (gp_fname (funcs - k))) [ Ir.Const k; Ir.Const (k * 7) ] in
    let cur = B.load main (B.slot_addr main acc) 0 in
    B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v)
  done;
  (* Ensure every function ran at least once (coverage of the compile). *)
  for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 1) (fun _ -> ());
  let covered = B.func "gp_cover" ~nparams:0 in
  let acc2 = B.slot covered 8 in
  B.store covered (B.slot_addr covered acc2) 0 (Ir.Const 0);
  List.iteri
    (fun i _ ->
      let v = B.call covered (Ir.Direct (gp_fname i)) [ Ir.Const i; Ir.Const 3 ] in
      let cur = B.load covered (B.slot_addr covered acc2) 0 in
      B.store covered (B.slot_addr covered acc2) 0 (B.binop covered Ir.Xor cur v))
    fs;
  B.ret covered (Some (B.load covered (B.slot_addr covered acc2) 0));
  let v = B.call main (Ir.Direct "gp_cover") [] in
  let cur = B.load main (B.slot_addr main acc) 0 in
  B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v);
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    (fs @ [ B.finish covered; B.finish main ])
    [ { Ir.gname = "gp_data"; gsize = 8 * 64; ginit = [] } ]

(* ------------------------------------------------------------------ *)
(* v2: the divergence-hunting generator.                               *)
(* ------------------------------------------------------------------ *)

let fz_fname i = Printf.sprintf "fz_f%d" i
let data_words = 64
let tab_len = 8

(* Edge operands: overflow boundaries, sign boundaries, byte/word masks.
   All arithmetic is OCaml 63-bit on both sides of the oracle, so these
   probe wrap-around and truncation consistency, not undefined behaviour. *)
let edge_consts =
  [|
    0; 1; -1; 2; 3; 7; 8; 63; 255; 256; 0xffff; 0x7fffffff; -255;
    max_int; min_int; max_int - 1; min_int + 1;
  |]

(* Accumulate into a stack slot, like v1. *)
let mk_add fb acc v =
  let cur = B.load fb (B.slot_addr fb acc) 0 in
  B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.Add cur v)

(* The body of a non-recursive function: a random sequence of shapes.
   [max_calls] bounds the dynamic out-degree (worst case 2) so the layered
   call graph's total work stays manageable even at full depth. *)
let gen_shapes rng fb ~i ~acc ~recursive_pool =
  let a = B.param 0 and b = B.param 1 in
  let add = mk_add fb acc in
  let pool = ref [ a; b ] in
  let pick () =
    if Rng.int rng 4 = 0 then Ir.Const (Rng.choose rng edge_consts)
    else Rng.choose_list rng !pool
  in
  let push v = pool := v :: !pool in
  let calls = ref 0 in
  let max_calls = 2 in
  let arith () =
    let op =
      match Rng.int rng 6 with
      | 0 -> Ir.Add
      | 1 -> Ir.Sub
      | 2 -> Ir.Mul
      | 3 -> Ir.And
      | 4 -> Ir.Or
      | _ -> Ir.Xor
    in
    let v = B.binop fb op (pick ()) (pick ()) in
    push v;
    add v
  in
  let shift () =
    let amt = B.binop fb Ir.And (pick ()) (Ir.Const 15) in
    let op = match Rng.int rng 3 with 0 -> Ir.Shl | 1 -> Ir.Shr | _ -> Ir.Sar in
    let v = B.binop fb op (pick ()) amt in
    push v;
    add v
  in
  let divrem () =
    (* Divisors are forced odd (hence nonzero); numerators range over the
       edge set, so min_int / -1 and truncation toward zero are covered. *)
    let num = pick () in
    let den =
      if Rng.bool rng then Ir.Const (Rng.choose rng [| 1; -1; 3; 7; -5; 255; max_int |])
      else
        let d = B.binop fb Ir.And (pick ()) (Ir.Const 0xf) in
        B.binop fb Ir.Or d (Ir.Const 1)
    in
    let q = B.binop fb Ir.Div num den in
    let r = B.binop fb Ir.Rem num den in
    push q;
    add q;
    add r
  in
  let alias_global () =
    (* Two pointer chains computed independently from the same value: the
       store through one must be visible through the other, at word and at
       byte granularity. *)
    let src = pick () in
    let idx = B.binop fb Ir.And src (Ir.Const (data_words - 1)) in
    let off = B.binop fb Ir.Mul idx (Ir.Const 8) in
    let p = B.binop fb Ir.Add (Ir.Global "fz_data") off in
    let idx' = B.binop fb Ir.And src (Ir.Const (data_words - 1)) in
    let off' = B.binop fb Ir.Mul idx' (Ir.Const 8) in
    let q = B.binop fb Ir.Add (Ir.Global "fz_data") off' in
    B.store fb p 0 (pick ());
    B.store8 fb q (Rng.int rng 8) (pick ());
    let v = B.load fb p 0 in
    push v;
    add v
  in
  let alias_slot () =
    (* Byte-poke the accumulator slot, then read it back as a word. *)
    B.store8 fb (B.slot_addr fb acc) (Rng.int rng 8) (pick ());
    let v = B.load fb (B.slot_addr fb acc) 0 in
    push v
  in
  let loop () =
    let bound = Rng.int_in_range rng ~lo:2 ~hi:5 in
    let step = Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:9) in
    for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const bound) (fun k ->
        add (B.binop fb Ir.Mul k step))
  in
  let cold_branch () =
    (* Booby-trap-adjacent control flow: statically reachable (Validate
       demands it) but cold at run time — the shape trap insertion and
       layout shuffling must not disturb. *)
    let c =
      B.cmp fb Ir.Eq (B.binop fb Ir.And a (Ir.Const 7)) (Ir.Const (Rng.int rng 8))
    in
    if_ fb c
      (fun () ->
        B.store fb (Ir.Global "fz_data") (8 * Rng.int rng 8)
          (Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:99)))
      (fun () -> add (Ir.Const 1))
  in
  let call_direct () =
    if i > 0 && !calls < max_calls then begin
      incr calls;
      let callee = Rng.int rng i in
      let v =
        B.call fb
          (Ir.Direct (fz_fname callee))
          [ B.binop fb Ir.And (pick ()) (Ir.Const 0xffff);
            Ir.Const (Rng.int_in_range rng ~lo:0 ~hi:99) ]
      in
      push v;
      add v
    end
  in
  let call_indirect () =
    (* Through the code-pointer table, index masked to a power of two that
       only reaches strictly lower-numbered functions (acyclicity). *)
    if i > 0 && !calls < max_calls then begin
      incr calls;
      let m = min i tab_len in
      let k = ref 1 in
      while !k * 2 <= m do
        k := !k * 2
      done;
      let idx = B.binop fb Ir.And (pick ()) (Ir.Const (!k - 1)) in
      let off = B.binop fb Ir.Mul idx (Ir.Const 8) in
      let fp = B.load fb (B.binop fb Ir.Add (Ir.Global "fz_tab") off) 0 in
      let v =
        B.call fb (Ir.Indirect fp)
          [ B.binop fb Ir.And (pick ()) (Ir.Const 0xff); Ir.Const (Rng.int rng 50) ]
      in
      push v;
      add v
    end
  in
  let call_recursive () =
    (* Call an already-generated self-recursive function at full depth. *)
    match recursive_pool with
    | [] -> ()
    | pool when i > 0 && !calls < max_calls ->
        incr calls;
        let callee = Rng.choose_list rng pool in
        let v =
          B.call fb
            (Ir.Direct (fz_fname callee))
            [ Ir.Const 15; B.binop fb Ir.And (pick ()) (Ir.Const 0xfff) ]
        in
        push v;
        add v
    | _ -> ()
  in
  let n_shapes = Rng.int_in_range rng ~lo:3 ~hi:6 in
  for _ = 1 to n_shapes do
    match Rng.int rng 10 with
    | 0 | 1 -> arith ()
    | 2 -> shift ()
    | 3 -> divrem ()
    | 4 -> alias_global ()
    | 5 -> alias_slot ()
    | 6 -> loop ()
    | 7 -> cold_branch ()
    | 8 -> call_direct ()
    | 9 -> if Rng.bool rng then call_indirect () else call_recursive ()
    | _ -> assert false
  done

(* A self-recursive function: depth masked to 15 at entry, strictly
   decremented on the self-call, no other outgoing calls — a call to it
   costs at most 16x its own body. *)
let gen_recursive_func rng i =
  let fb = B.func (fz_fname i) ~nparams:2 in
  let a = B.param 0 and b = B.param 1 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 b;
  let add = mk_add fb acc in
  let d = B.binop fb Ir.And a (Ir.Const 15) in
  let mix = B.binop fb Ir.Xor b (Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:1000)) in
  add mix;
  let c = B.cmp fb Ir.Gt d (Ir.Const 0) in
  if_ fb c
    (fun () ->
      let t = B.binop fb Ir.Add mix d in
      let r =
        B.call fb (Ir.Direct (fz_fname i)) [ B.binop fb Ir.Sub d (Ir.Const 1); t ]
      in
      add (B.binop fb Ir.Sub r d))
    (fun () -> add (Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:9)));
  let r = B.load fb (B.slot_addr fb acc) 0 in
  B.ret fb (Some (B.binop fb Ir.And r (Ir.Const 0x3fff_ffff)));
  B.finish fb

let gen_v2_func rng ~recursive_pool i =
  let fb = B.func (fz_fname i) ~nparams:2 in
  let b = B.param 1 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 b;
  gen_shapes rng fb ~i ~acc ~recursive_pool;
  let r = B.load fb (B.slot_addr fb acc) 0 in
  B.ret fb (Some (B.binop fb Ir.And r (Ir.Const 0x3fff_ffff)));
  B.finish fb

let v2 ?funcs ~seed () =
  let rng = Rng.create seed in
  let n =
    match funcs with
    | Some n ->
        assert (n > 0);
        n
    | None -> Rng.int_in_range rng ~lo:4 ~hi:10
  in
  let recursive_pool = ref [] in
  (* Explicit loop: the RNG consumption order must not depend on the
     stdlib's List.init evaluation order. *)
  let fs_rev = ref [] in
  for i = 0 to n - 1 do
    let f =
      if i > 0 && Rng.int rng 4 = 0 then begin
        let f = gen_recursive_func rng i in
        recursive_pool := i :: !recursive_pool;
        f
      end
      else gen_v2_func rng ~recursive_pool:!recursive_pool i
    in
    fs_rev := f :: !fs_rev
  done;
  let fs = List.rev !fs_rev in
  let main = B.func "main" ~nparams:0 in
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  let add = mk_add main acc in
  (* Direct roots from the top of the DAG. *)
  let roots = min 4 n in
  for k = 1 to roots do
    add (B.call main (Ir.Direct (fz_fname (n - k))) [ Ir.Const ((k * 3) + 1); Ir.Const (k * 7) ])
  done;
  (* One indirect root through the table. *)
  let off = 8 * Rng.int rng (min n tab_len) in
  let fp = B.load main (Ir.Global "fz_tab") off in
  add (B.call main (Ir.Indirect fp) [ Ir.Const 5; Ir.Const 9 ]);
  (* Every recursive function at full depth. *)
  List.iter
    (fun i -> add (B.call main (Ir.Direct (fz_fname i)) [ Ir.Const 0x1ff; Ir.Const (i * 11) ]))
    (List.rev !recursive_pool);
  (* Checksum of the shared data array: layout divergence anywhere in the
     aliasing stores shows up here. *)
  for_ main ~from:(Ir.Const 0) ~below:(Ir.Const data_words) (fun k ->
      let off = B.binop main Ir.Mul k (Ir.Const 8) in
      add (B.load main (B.binop main Ir.Add (Ir.Global "fz_data") off) 0));
  let total = B.load main (B.slot_addr main acc) 0 in
  B.call_void main (Ir.Builtin "print_int") [ B.binop main Ir.And total (Ir.Const 0xffff_ffff) ];
  (* An output-visible Sub: the oracle's planted miscompile keys on Sub, so
     every generated program can reproduce it (see Oracle.plant). *)
  let chk = B.binop main Ir.Sub total (Ir.Const 1) in
  B.call_void main (Ir.Builtin "print_int") [ B.binop main Ir.And chk (Ir.Const 0xffff) ];
  B.ret main (Some (B.binop main Ir.And chk (Ir.Const 63)));
  let globals =
    [
      {
        Ir.gname = "fz_data";
        gsize = 8 * data_words;
        ginit = List.init 8 (fun k -> Ir.Word ((k * 0x0101) + 3));
      };
      {
        Ir.gname = "fz_tab";
        gsize = 8 * tab_len;
        ginit = List.init tab_len (fun x -> Ir.Sym_addr (fz_fname (x mod n)));
      };
    ]
  in
  B.program ~main:"main" (fs @ [ B.finish main ]) globals
