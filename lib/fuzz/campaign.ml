module Rng = R2c_util.Rng

type report = {
  seed : int;
  requested : int;
  programs : int;
  skipped : int;
  points : int;
  divergences : int;
  reproducers : (string * int) list;
}

let shrink_against ?plant ?fuel (f : Oracle.failure) p =
  let cfg = Oracle.find_cfg f.Oracle.point in
  Shrink.run
    ~still_fails:(fun q -> Oracle.diverges ?plant ?fuel ~seed:f.Oracle.cseed ~cfg q)
    p

let run ?corpus_dir ?fuel ?jobs ~seed ~count () =
  (* Program seeds are drawn sequentially up front — the exact stream the
     serial loop drew — then each program's generate/check/shrink runs as
     one independent task on the domain pool. [Parallel.map] preserves
     program order, so counts and reproducer order are identical at any
     [jobs]. [jobs] is threaded into {!Oracle.check} too: at [jobs = 1]
     the whole campaign is the historical serial code path, while a
     parallel campaign makes the nested matrix fan-out degrade to serial
     inside each worker (no domain pools inside domain pools). *)
  let prng = Rng.create seed in
  let pseeds = ref [] in
  for _ = 1 to count do
    pseeds := (Int64.to_int (Rng.int64 prng) land 0x3fff_ffff) :: !pseeds
  done;
  let outcomes =
    R2c_util.Parallel.map ?jobs
      (fun pseed ->
        let p = Gen.v2 ~seed:pseed () in
        match Oracle.check ?fuel ?jobs p with
        | Oracle.Pass n -> `Pass n
        | Oracle.Skip s -> `Skip s
        | Oracle.Fail (f0 :: _) ->
            let shrunk = shrink_against ?fuel f0 p in
            let size = Ir.program_size shrunk in
            let saved =
              match corpus_dir with
              | Some dir ->
                  let name = Printf.sprintf "div-seed%d-%s" pseed f0.Oracle.point in
                  Corpus.save ~dir ~name shrunk
              | None -> Printf.sprintf "<unsaved div-seed%d>" pseed
            in
            `Fail (saved, size)
        | Oracle.Fail [] -> assert false)
      (List.rev !pseeds)
  in
  let points =
    List.fold_left (fun acc -> function `Pass n -> n | _ -> acc) 0 outcomes
  in
  {
    seed;
    requested = count;
    programs = List.length outcomes;
    skipped = List.length (List.filter (function `Skip _ -> true | _ -> false) outcomes);
    points;
    divergences = List.length (List.filter (function `Fail _ -> true | _ -> false) outcomes);
    reproducers = List.filter_map (function `Fail r -> Some r | _ -> None) outcomes;
  }

type self_check = {
  caught : bool;
  shrunk_size : int;
  reproducer : string;
  roundtrip_ok : bool;
  still_fails : bool;
}

let default_out_dir () = Filename.concat (Filename.get_temp_dir_name ()) "r2c_fuzz"

let self_check ?out_dir ?fuel ~seed () =
  let out_dir = match out_dir with Some d -> d | None -> default_out_dir () in
  let plant = Oracle.Sub_to_add in
  let p = Gen.v2 ~seed () in
  match Oracle.check ~plant ?fuel p with
  | Oracle.Pass _ | Oracle.Skip _ ->
      (* Generator v2 always emits an output-visible Sub in main, so a
         clean verdict here means the oracle itself is broken. *)
      { caught = false; shrunk_size = 0; reproducer = ""; roundtrip_ok = false; still_fails = false }
  | Oracle.Fail (f0 :: _) ->
      let cfg = Oracle.find_cfg f0.Oracle.point in
      (* Isolate the planted bug: the candidate must diverge with the plant
         and agree without it, so shrinking cannot drift onto an unrelated
         genuine divergence. *)
      let still_fails q =
        Oracle.diverges ~plant ?fuel ~seed:f0.Oracle.cseed ~cfg q
        && not (Oracle.diverges ?fuel ~seed:f0.Oracle.cseed ~cfg q)
      in
      let shrunk = Shrink.run ~still_fails p in
      let path =
        Corpus.save ~dir:out_dir ~name:(Printf.sprintf "selfcheck-sub-add-seed%d" seed) shrunk
      in
      let roundtrip_ok =
        match Corpus.load path with
        | Ok q -> Validate.check q = [] && still_fails q
        | Error _ -> false
      in
      {
        caught = true;
        shrunk_size = Ir.program_size shrunk;
        reproducer = path;
        roundtrip_ok;
        still_fails = still_fails shrunk;
      }
  | Oracle.Fail [] -> assert false

let replay ?fuel ~dir () =
  List.filter_map
    (fun path ->
      match Corpus.load path with
      | Error e -> Some (path, "parse: " ^ e)
      | Ok p -> (
          match Validate.check p with
          | e :: _ -> Some (path, "validate: " ^ Validate.error_to_string e)
          | [] -> (
              match Oracle.check ?fuel p with
              | Oracle.Pass _ -> None
              | Oracle.Skip s -> Some (path, "skip: " ^ s)
              | Oracle.Fail (f :: _) ->
                  Some
                    ( path,
                      Printf.sprintf "divergence at %s (seed %d)" f.Oracle.point
                        f.Oracle.cseed )
              | Oracle.Fail [] -> None)))
    (Corpus.files ~dir)
