module Rng = R2c_util.Rng

type report = {
  seed : int;
  requested : int;
  programs : int;
  skipped : int;
  points : int;
  divergences : int;
  reproducers : (string * int) list;
}

let shrink_against ?plant ?fuel (f : Oracle.failure) p =
  let cfg = Oracle.find_cfg f.Oracle.point in
  Shrink.run
    ~still_fails:(fun q -> Oracle.diverges ?plant ?fuel ~seed:f.Oracle.cseed ~cfg q)
    p

let run ?corpus_dir ?fuel ~seed ~count () =
  let prng = Rng.create seed in
  let programs = ref 0 and skipped = ref 0 and divergences = ref 0 in
  let points = ref 0 in
  let reproducers = ref [] in
  for _ = 1 to count do
    let pseed = Int64.to_int (Rng.int64 prng) land 0x3fff_ffff in
    let p = Gen.v2 ~seed:pseed () in
    incr programs;
    match Oracle.check ?fuel p with
    | Oracle.Pass n -> points := n
    | Oracle.Skip _ -> incr skipped
    | Oracle.Fail (f0 :: _ as fails) ->
        incr divergences;
        let shrunk = shrink_against ?fuel f0 p in
        let size = Ir.program_size shrunk in
        (match corpus_dir with
        | Some dir ->
            let name = Printf.sprintf "div-seed%d-%s" pseed f0.Oracle.point in
            reproducers := (Corpus.save ~dir ~name shrunk, size) :: !reproducers
        | None -> reproducers := (Printf.sprintf "<unsaved div-seed%d>" pseed, size) :: !reproducers);
        ignore fails
    | Oracle.Fail [] -> assert false
  done;
  {
    seed;
    requested = count;
    programs = !programs;
    skipped = !skipped;
    points = !points;
    divergences = !divergences;
    reproducers = List.rev !reproducers;
  }

type self_check = {
  caught : bool;
  shrunk_size : int;
  reproducer : string;
  roundtrip_ok : bool;
  still_fails : bool;
}

let default_out_dir () = Filename.concat (Filename.get_temp_dir_name ()) "r2c_fuzz"

let self_check ?out_dir ?fuel ~seed () =
  let out_dir = match out_dir with Some d -> d | None -> default_out_dir () in
  let plant = Oracle.Sub_to_add in
  let p = Gen.v2 ~seed () in
  match Oracle.check ~plant ?fuel p with
  | Oracle.Pass _ | Oracle.Skip _ ->
      (* Generator v2 always emits an output-visible Sub in main, so a
         clean verdict here means the oracle itself is broken. *)
      { caught = false; shrunk_size = 0; reproducer = ""; roundtrip_ok = false; still_fails = false }
  | Oracle.Fail (f0 :: _) ->
      let cfg = Oracle.find_cfg f0.Oracle.point in
      (* Isolate the planted bug: the candidate must diverge with the plant
         and agree without it, so shrinking cannot drift onto an unrelated
         genuine divergence. *)
      let still_fails q =
        Oracle.diverges ~plant ?fuel ~seed:f0.Oracle.cseed ~cfg q
        && not (Oracle.diverges ?fuel ~seed:f0.Oracle.cseed ~cfg q)
      in
      let shrunk = Shrink.run ~still_fails p in
      let path =
        Corpus.save ~dir:out_dir ~name:(Printf.sprintf "selfcheck-sub-add-seed%d" seed) shrunk
      in
      let roundtrip_ok =
        match Corpus.load path with
        | Ok q -> Validate.check q = [] && still_fails q
        | Error _ -> false
      in
      {
        caught = true;
        shrunk_size = Ir.program_size shrunk;
        reproducer = path;
        roundtrip_ok;
        still_fails = still_fails shrunk;
      }
  | Oracle.Fail [] -> assert false

let replay ?fuel ~dir () =
  List.filter_map
    (fun path ->
      match Corpus.load path with
      | Error e -> Some (path, "parse: " ^ e)
      | Ok p -> (
          match Validate.check p with
          | e :: _ -> Some (path, "validate: " ^ Validate.error_to_string e)
          | [] -> (
              match Oracle.check ?fuel p with
              | Oracle.Pass _ -> None
              | Oracle.Skip s -> Some (path, "skip: " ^ s)
              | Oracle.Fail (f :: _) ->
                  Some
                    ( path,
                      Printf.sprintf "divergence at %s (seed %d)" f.Oracle.point
                        f.Oracle.cseed )
              | Oracle.Fail [] -> None)))
    (Corpus.files ~dir)
