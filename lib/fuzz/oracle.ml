module D = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Process = R2c_machine.Process
module Fault = R2c_machine.Fault

type plant = Sub_to_add | Drop_stores | Off_by_one

let map_instrs f (p : Ir.program) =
  {
    p with
    Ir.funcs =
      List.map
        (fun (fn : Ir.func) ->
          {
            fn with
            Ir.blocks =
              List.map
                (fun (b : Ir.block) -> { b with Ir.body = List.filter_map f b.Ir.body })
                fn.Ir.blocks;
          })
        p.Ir.funcs;
  }

let apply_plant plant p =
  match plant with
  | Sub_to_add ->
      map_instrs
        (function
          | Ir.Binop (v, Ir.Sub, a, b) -> Some (Ir.Binop (v, Ir.Add, a, b))
          | i -> Some i)
        p
  | Drop_stores ->
      map_instrs (function Ir.Store _ -> None | i -> Some i) p
  | Off_by_one ->
      map_instrs
        (function
          | Ir.Binop (v, Ir.Add, a, Ir.Const c) -> Some (Ir.Binop (v, Ir.Add, a, Ir.Const (c + 1)))
          | i -> Some i)
        p

(* Baseline first: a config-independent miscompile then fails on the
   cheapest compile, which is the point the shrinker re-runs. *)
let matrix =
  [
    ("baseline", D.baseline);
    ("full", D.full ());
    ("full-checked", D.full_checked);
    ("btra-push", D.btra_push_only);
    ("btra-sse", D.btra_sse_only);
    ("btra-avx", D.btra_avx_only);
    ("btra-avx512", D.btra_avx512_only);
    ("btdp", D.btdp_only);
    ("prolog", D.prolog_only);
    ("layout", D.layout_only);
    ("oia", D.oia_only);
  ]

let find_cfg name = List.assoc name matrix

type failure = { point : string; cseed : int; expected : string; got : string }

type verdict = Pass of int | Fail of failure list | Skip of string

let obs ~exit_code ~output = Printf.sprintf "exit:%d\n%s" exit_code output

let reference ~fuel p =
  match Interp.run ~fuel p with
  | Ok r -> Ok (obs ~exit_code:r.Interp.exit_code ~output:r.Interp.output)
  | Error e -> Error (Interp.error_to_string e)

let run_compiled ?plant ~fuel ~seed cfg p =
  let q = match plant with None -> p | Some pl -> apply_plant pl p in
  match Pipeline.compile ~seed cfg q with
  | exception e -> "compile-error:" ^ Printexc.to_string e
  | img -> (
      let proc = Process.start ~strict_align:true ~fuel img in
      match Process.run proc with
      | Process.Exited c -> obs ~exit_code:c ~output:(Process.output proc)
      | Process.Crashed f -> "crash:" ^ Fault.to_string f
      | Process.Timeout -> "timeout")

let default_fuel = 5_000_000
let machine_fuel fuel = fuel * 40

let check ?plant ?(fuel = default_fuel) ?(seed = 3) ?(rerand = [ 1003; 2003 ]) ?jobs p =
  match Validate.check p with
  | _ :: _ -> Skip "program does not validate"
  | [] -> (
      match reference ~fuel p with
      | Error e -> Skip e
      | Ok expected ->
          let mfuel = machine_fuel fuel in
          (* Matrix points first, then the rerandomized variants of the
             full configuration: equivalence across fresh diversification
             seeds, not just against one. Each point compiles and runs its
             own images, so the whole matrix fans out over the domain pool
             (serial when nested under a parallel campaign, or jobs = 1). *)
          let probes =
            List.map (fun (point, cfg) -> (point, seed, cfg)) matrix
            @ List.map (fun s -> ("full", s, D.full ())) rerand
          in
          let fails =
            R2c_util.Parallel.map ?jobs
              (fun (point, cseed, cfg) ->
                let got = run_compiled ?plant ~fuel:mfuel ~seed:cseed cfg p in
                if got <> expected then Some { point; cseed; expected; got } else None)
              probes
            |> List.filter_map Fun.id
          in
          if fails = [] then Pass (List.length probes) else Fail fails)

let diverges ?plant ?(fuel = default_fuel) ~seed ~cfg p =
  Validate.check p = []
  &&
  match reference ~fuel p with
  | Error _ -> false
  | Ok expected -> run_compiled ?plant ~fuel:(machine_fuel fuel) ~seed cfg p <> expected
