(* Generic operand plumbing: enumerate and rebuild the operands of an
   instruction, so one candidate generator covers every position. *)

let instr_ops (i : Ir.instr) =
  match i with
  | Mov (_, o) -> [ o ]
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Load (_, b, _) | Load8 (_, b, _) -> [ b ]
  | Store (b, _, v) | Store8 (b, _, v) -> [ b; v ]
  | Slot_addr _ -> []
  | Call (_, callee, args) -> (
      match callee with Indirect o -> o :: args | Direct _ | Builtin _ -> args)

let instr_with_ops (i : Ir.instr) ops =
  match (i, ops) with
  | Mov (v, _), [ o ] -> Ir.Mov (v, o)
  | Binop (v, op, _, _), [ a; b ] -> Binop (v, op, a, b)
  | Cmp (v, c, _, _), [ a; b ] -> Cmp (v, c, a, b)
  | Load (v, _, off), [ b ] -> Load (v, b, off)
  | Load8 (v, _, off), [ b ] -> Load8 (v, b, off)
  | Store (_, off, _), [ b; v ] -> Store (b, off, v)
  | Store8 (_, off, _), [ b; v ] -> Store8 (b, off, v)
  | Slot_addr _, [] -> i
  | Call (d, Indirect _, _), o :: args -> Call (d, Indirect o, args)
  | Call (d, callee, _), args -> Call (d, callee, args)
  | _ -> invalid_arg "Shrink.instr_with_ops: arity mismatch"

let map_instr_ops f i = instr_with_ops i (List.map f (instr_ops i))

let map_term_ops f (t : Ir.term) =
  match t with
  | Ret (Some o) -> Ir.Ret (Some (f o))
  | Cond_br (c, l1, l2) -> Cond_br (f c, l1, l2)
  | Ret None | Br _ -> t

let def_var (i : Ir.instr) =
  match i with
  | Mov (v, _) | Binop (v, _, _, _) | Cmp (v, _, _, _)
  | Load (v, _, _) | Load8 (v, _, _) | Slot_addr (v, _)
  | Call (Some v, _, _) ->
      Some v
  | Store _ | Store8 _ | Call (None, _, _) -> None

(* ---- weight: every accepted edit strictly decreases it ---- *)

let bits n =
  let n = abs n in
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let op_weight = function
  | Ir.Const 0 | Ir.Const 1 -> 0
  | Ir.Const n -> 2 + bits n
  | Ir.Var _ -> 8
  | Ir.Global _ | Ir.Func _ -> 12

(* Mov is cheaper than every other instruction so collapsing an
   arithmetic or memory op into a copy is a strict improvement. *)
let instr_weight i =
  (match i with Ir.Mov _ -> 20 | _ -> 30)
  + List.fold_left (fun a o -> a + op_weight o) 0 (instr_ops i)

let term_weight : Ir.term -> int = function
  | Ret None -> 0
  | Ret (Some o) -> op_weight o
  | Br _ -> 5
  | Cond_br (c, _, _) -> 50 + op_weight c

let weight (p : Ir.program) =
  let fw (f : Ir.func) =
    10_000
    + (5 * Array.length f.slots)
    + List.fold_left
        (fun a (b : Ir.block) ->
          a + 40
          + List.fold_left (fun a i -> a + instr_weight i) 0 b.body
          + term_weight b.term)
        0 f.blocks
  in
  let gw (g : Ir.global) = 500 + (8 * List.length g.ginit) in
  List.fold_left (fun a f -> a + fw f) 0 p.funcs
  + List.fold_left (fun a g -> a + gw g) 0 p.globals

(* ---- structural edits ---- *)

let map_func p name g =
  { p with Ir.funcs = List.map (fun (f : Ir.func) -> if f.name = name then g f else f) p.Ir.funcs }

let map_blocks g (f : Ir.func) = { f with Ir.blocks = List.map g f.Ir.blocks }

(* Drop unreachable blocks (the entry stays first), so collapsing a
   conditional branch leaves a program Validate accepts. *)
let gc_blocks (f : Ir.func) =
  match f.blocks with
  | [] -> f
  | entry :: _ ->
      let succs (b : Ir.block) =
        match b.term with
        | Ret _ -> []
        | Br l -> [ l ]
        | Cond_br (_, l1, l2) -> [ l1; l2 ]
      in
      let by_lbl = Hashtbl.create 16 in
      List.iter (fun (b : Ir.block) -> Hashtbl.replace by_lbl b.lbl b) f.blocks;
      let seen = Hashtbl.create 16 in
      let rec visit l =
        if (not (Hashtbl.mem seen l)) && Hashtbl.mem by_lbl l then begin
          Hashtbl.replace seen l ();
          List.iter visit (succs (Hashtbl.find by_lbl l))
        end
      in
      visit entry.lbl;
      { f with blocks = List.filter (fun (b : Ir.block) -> Hashtbl.mem seen b.lbl) f.blocks }

(* Remove a function wholesale: calls to it become [Mov dst, 0] (or
   vanish), address-of operands and table initialisers become 0. *)
let remove_func (p : Ir.program) name =
  let fix_op = function Ir.Func n when n = name -> Ir.Const 0 | o -> o in
  let fix_instr (i : Ir.instr) =
    match i with
    | Call (Some d, Direct n, _) when n = name -> Some (Ir.Mov (d, Ir.Const 0))
    | Call (None, Direct n, _) when n = name -> None
    | i -> Some (map_instr_ops fix_op i)
  in
  {
    Ir.main = p.main;
    funcs =
      List.filter_map
        (fun (f : Ir.func) ->
          if f.name = name then None
          else
            Some
              (map_blocks
                 (fun (b : Ir.block) ->
                   {
                     b with
                     Ir.body = List.filter_map fix_instr b.body;
                     term = map_term_ops fix_op b.term;
                   })
                 f))
        p.funcs;
    globals =
      List.map
        (fun (g : Ir.global) ->
          {
            g with
            Ir.ginit =
              List.map
                (function
                  | (Ir.Sym_addr n | Ir.Sym_addr_off (n, _)) when n = name -> Ir.Word 0
                  | it -> it)
                g.ginit;
          })
        p.globals;
  }

let var_used (f : Ir.func) v =
  let in_op = function Ir.Var w -> w = v | _ -> false in
  List.exists
    (fun (b : Ir.block) ->
      List.exists (fun i -> List.exists in_op (instr_ops i)) b.body
      ||
      match b.term with
      | Ret (Some o) -> in_op o
      | Cond_br (c, _, _) -> in_op c
      | Ret None | Br _ -> false)
    f.blocks

let edit_block_instr p fname lbl j g =
  map_func p fname
    (map_blocks (fun (b : Ir.block) ->
         if b.lbl <> lbl then b
         else
           {
             b with
             Ir.body =
               List.concat (List.mapi (fun k i -> if k = j then g i else [ i ]) b.body);
           }))

let global_used (p : Ir.program) name =
  let in_op = function Ir.Global g -> g = name | _ -> false in
  List.exists
    (fun (f : Ir.func) ->
      List.exists
        (fun (b : Ir.block) ->
          List.exists (fun i -> List.exists in_op (instr_ops i)) b.body
          ||
          match b.term with
          | Ret (Some o) -> in_op o
          | Cond_br (c, _, _) -> in_op c
          | Ret None | Br _ -> false)
        f.blocks)
    p.funcs
  || List.exists
       (fun (g : Ir.global) ->
         List.exists
           (function
             | Ir.Sym_addr n | Ir.Sym_addr_off (n, _) -> n = name
             | Ir.Word _ | Ir.Str _ -> false)
           g.ginit)
       p.globals

(* Renumber stack slots so only referenced ones remain. *)
let compact_slots (f : Ir.func) =
  let n = Array.length f.slots in
  let used = Array.make n false in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (function Ir.Slot_addr (_, i) when i < n -> used.(i) <- true | _ -> ()) b.body)
    f.blocks;
  let remap = Array.make n (-1) in
  let next = ref 0 in
  Array.iteri
    (fun i u ->
      if u then begin
        remap.(i) <- !next;
        incr next
      end)
    used;
  if !next = n then None
  else
    let slots =
      Array.of_list
        (List.filteri (fun i _ -> used.(i)) (Array.to_list f.slots))
    in
    Some
      (map_blocks
         (fun (b : Ir.block) ->
           {
             b with
             Ir.body =
               List.map
                 (function
                   | Ir.Slot_addr (v, i) -> Ir.Slot_addr (v, remap.(i))
                   | i -> i)
                 b.body;
           })
         { f with slots })

(* ---- candidate enumeration, big edits first ---- *)

let candidates (p : Ir.program) : (unit -> Ir.program) list =
  let cands = ref [] in
  let push c = cands := c :: !cands in
  (* Operand simplifications + constant halving (small edits, pushed first
     so they end up last after the final reversal). *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          (* Terminator operands. *)
          (match b.term with
          | Ret (Some o) when op_weight o > 0 ->
              push (fun () ->
                  map_func p f.name
                    (map_blocks (fun (b' : Ir.block) ->
                         if b'.lbl = b.lbl then { b' with Ir.term = Ret None } else b')))
          | _ -> ());
          List.iteri
            (fun j i ->
              List.iteri
                (fun k o ->
                  let replace o' =
                    push (fun () ->
                        edit_block_instr p f.name b.lbl j (fun i ->
                            [
                              instr_with_ops i
                                (List.mapi
                                   (fun k' o0 -> if k' = k then o' else o0)
                                   (instr_ops i));
                            ]))
                  in
                  (match o with
                  | Ir.Const n when n <> 0 && n <> 1 && n asr 1 <> n ->
                      replace (Ir.Const (n asr 1))
                  | _ -> ());
                  if op_weight o > 0 then begin
                    replace (Ir.Const 1);
                    replace (Ir.Const 0)
                  end)
                (instr_ops i))
            b.body)
        f.blocks)
    p.funcs;
  (* Data-flow collapse: rewrite a defining instruction to a copy of one
     of its own operands, and forward stored values into loads, so chains
     threaded through arithmetic and memory shrink to Movs. *)
  List.iter
    (fun (f : Ir.func) ->
      let store_vals =
        List.concat_map
          (fun (b : Ir.block) ->
            List.filter_map
              (function
                | Ir.Store (_, _, v) | Ir.Store8 (_, _, v) -> Some v
                | _ -> None)
              b.Ir.body)
          f.blocks
      in
      List.iter
        (fun (b : Ir.block) ->
          List.iteri
            (fun j i ->
              match (def_var i, i) with
              | Some _, Ir.Mov _ | None, _ -> ()
              | Some v, _ ->
                  let try_mov o =
                    push (fun () ->
                        edit_block_instr p f.name b.lbl j (fun _ -> [ Ir.Mov (v, o) ]))
                  in
                  List.iter try_mov (instr_ops i);
                  (match i with
                  | Ir.Load _ | Ir.Load8 _ -> List.iter try_mov store_vals
                  | _ -> ()))
            b.body)
        f.blocks)
    p.funcs;
  (* Copy propagation: a [Mov v, o] whose target has no other definition
     can vanish, with every use of [v] rewritten to [o]. *)
  List.iter
    (fun (f : Ir.func) ->
      let defs v =
        List.fold_left
          (fun a (b : Ir.block) ->
            List.fold_left
              (fun a i -> if def_var i = Some v then a + 1 else a)
              a b.Ir.body)
          0 f.blocks
      in
      List.iter
        (fun (b : Ir.block) ->
          List.iteri
            (fun j i ->
              match i with
              | Ir.Mov (v, o) when o <> Ir.Var v && defs v = 1 ->
                  push (fun () ->
                      let subst o' = if o' = Ir.Var v then o else o' in
                      map_func
                        (edit_block_instr p f.name b.lbl j (fun _ -> []))
                        f.name
                        (map_blocks (fun (b' : Ir.block) ->
                             {
                               b' with
                               Ir.body = List.map (map_instr_ops subst) b'.Ir.body;
                               term = map_term_ops subst b'.term;
                             })))
              | _ -> ())
            b.body)
        f.blocks)
    p.funcs;
  (* Merge a block into its unique successor when nothing else jumps
     there, straightening br-chains left by other edits. *)
  List.iter
    (fun (f : Ir.func) ->
      let preds l =
        List.fold_left
          (fun a (b : Ir.block) ->
            match b.term with
            | Br l' -> if l' = l then a + 1 else a
            | Cond_br (_, l1, l2) ->
                a + (if l1 = l then 1 else 0) + if l2 = l then 1 else 0
            | Ret _ -> a)
          0 f.blocks
      in
      List.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Br l when l <> b.lbl && preds l = 1 -> (
              match List.find_opt (fun (b' : Ir.block) -> b'.Ir.lbl = l) f.blocks with
              | Some tgt ->
                  push (fun () ->
                      map_func p f.name (fun f ->
                          gc_blocks
                            (map_blocks
                               (fun (b' : Ir.block) ->
                                 if b'.lbl = b.lbl then
                                   { b' with Ir.body = b'.Ir.body @ tgt.Ir.body; term = tgt.Ir.term }
                                 else b')
                               f)))
              | None -> ())
          | _ -> ())
        f.blocks)
    p.funcs;
  (* Slot compaction and unused-global removal. *)
  List.iter
    (fun (f : Ir.func) ->
      match compact_slots f with
      | Some f' -> push (fun () -> map_func p f.name (fun _ -> f'))
      | None -> ())
    p.funcs;
  List.iter
    (fun (g : Ir.global) ->
      (match g.ginit with
      | _ :: _ ->
          push (fun () ->
              {
                p with
                Ir.globals =
                  List.map
                    (fun (g' : Ir.global) ->
                      if g'.gname = g.gname then
                        { g' with Ir.ginit = List.filteri (fun i _ -> i < List.length g.ginit - 1) g.ginit }
                      else g')
                    p.Ir.globals;
              })
      | [] -> ());
      if not (global_used p g.gname) then
        push (fun () ->
            { p with Ir.globals = List.filter (fun (g' : Ir.global) -> g'.gname <> g.gname) p.Ir.globals }))
    p.globals;
  (* Per-instruction drops / neutralisations. *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iteri
            (fun j i ->
              match def_var i with
              | None ->
                  (* Pure effects (stores, void calls) can simply go. *)
                  push (fun () -> edit_block_instr p f.name b.lbl j (fun _ -> []))
              | Some v ->
                  if not (var_used f v) then
                    push (fun () -> edit_block_instr p f.name b.lbl j (fun _ -> []))
                  else if i <> Ir.Mov (v, Ir.Const 0) then
                    (* Keep the definition so no variable reads garbage on
                       the compiled side (the interpreter zero-fills). *)
                    push (fun () ->
                        edit_block_instr p f.name b.lbl j (fun _ -> [ Ir.Mov (v, Ir.Const 0) ])))
            b.body)
        f.blocks)
    p.funcs;
  (* Conditional branches become unconditional (then GC dead blocks). *)
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Cond_br (_, l1, l2) ->
              List.iter
                (fun l ->
                  push (fun () ->
                      map_func p f.name (fun f ->
                          gc_blocks
                            (map_blocks
                               (fun (b' : Ir.block) ->
                                 if b'.lbl = b.lbl then { b' with Ir.term = Br l } else b')
                               f))))
                [ l2; l1 ]
          | Ret _ | Br _ -> ())
        f.blocks)
    p.funcs;
  (* Whole-function removal: the biggest cut, tried first. *)
  List.iter
    (fun (f : Ir.func) ->
      if f.name <> p.main then push (fun () -> remove_func p f.name))
    p.funcs;
  !cands

(* The greedy delta-debugging core, independent of what is being shrunk:
   keep proposing candidate edits, accept any that strictly decreases the
   weight while staying [valid] and still satisfying [keep], restart the
   candidate enumeration from the new value, stop at a fixpoint or when
   the predicate budget runs out. The IR shrinker below and the replay
   trace reducer are both instances. *)
module Greedy = struct
  type stats = { checks : int; kept : int }

  let fix ?(max_checks = 4000) ~weight ~candidates ~valid ~keep v0 =
    let checks = ref 0 in
    let ok c =
      valid c
      && (incr checks;
          keep c)
    in
    let cur = ref v0 in
    let kept = ref 0 in
    let progress = ref true in
    (try
       while !progress do
         progress := false;
         let w = weight !cur in
         List.iter
           (fun mk ->
             if not !progress then begin
               if !checks >= max_checks then raise Exit;
               let c = mk () in
               if weight c < w && ok c then begin
                 cur := c;
                 incr kept;
                 progress := true
               end
             end)
           (candidates !cur)
       done
     with Exit -> ());
    (!cur, { checks = !checks; kept = !kept })
end

let run ?max_checks ~still_fails p0 =
  fst
    (Greedy.fix ?max_checks ~weight ~candidates
       ~valid:(fun c -> Validate.check c = [])
       ~keep:still_fails p0)
