module Rng = R2c_util.Rng
module Opts = R2c_compiler.Opts
module Insn = R2c_machine.Insn
module Addr = R2c_machine.Addr

let src = Logs.Src.create "r2c.pipeline" ~doc:"R2C instrumentation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let hash_string s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

(* Order-independent per-function (or per-site) generators: callbacks may be
   invoked in any order by the emitter, so each derives its stream from the
   master seed and its own identity. *)
let fn_rng seed tag fname =
  Rng.create (seed lxor (hash_string (tag ^ "/" ^ fname) * 0x9e3779b1))

let site_rng seed tag fname site =
  Rng.create (seed lxor (hash_string (Printf.sprintf "%s/%s/%d" tag fname site) * 0x85ebca6b))

let instrument ?(extra_raw = []) ~seed (cfg : Dconfig.t) (p : Ir.program) =
  let master = Rng.create seed in
  let rng_bt = Rng.split master in
  let rng_btra = Rng.split master in
  let rng_btdp = Rng.split master in
  let rng_layout = Rng.split master in
  let rng_aslr = Rng.split master in
  (* BTDP: extend the program with the constructor and its data. *)
  let btdp =
    match cfg.btdp with
    | Some bcfg -> Some (Btdp.build ~rng:rng_btdp ~cfg:bcfg ~seed)
    | None -> None
  in
  let p =
    match btdp with
    | Some b ->
        { p with Ir.funcs = p.funcs @ [ b.Btdp.ctor ]; globals = p.globals @ b.Btdp.globals }
    | None -> p
  in
  (* Booby-trap functions and BTRA plans. *)
  let needs_pool = cfg.btra <> None in
  let bt_funcs, pool =
    if needs_pool || cfg.booby_trap_funcs > 0 then begin
      let count = max cfg.booby_trap_funcs (if needs_pool then 16 else 0) in
      let funcs, targets = Boobytrap.generate rng_bt ~count in
      (funcs, Some (Boobytrap.pool_of_targets targets))
    end
    else ([], None)
  in
  let btra =
    match (cfg.btra, pool) with
    | Some bcfg, Some pool -> Some (Btra.build ~rng:rng_btra ~cfg:bcfg ~pool p)
    | Some _, None -> assert false
    | None, _ -> None
  in
  let oia = cfg.oia || cfg.btra <> None in
  Log.debug (fun m ->
      m "instrumenting %d functions (%s), seed %d: %d booby traps, %d BTRA plans"
        (List.length p.Ir.funcs) (Dconfig.describe cfg) seed (List.length bt_funcs)
        (match btra with Some b -> Hashtbl.length b.Btra.plans | None -> 0));
  (* Layout randomizations. *)
  let func_order names =
    if cfg.shuffle_functions then Rng.shuffle_list (Rng.copy rng_layout) names else names
  in
  let global_order globals =
    let globals =
      if cfg.shuffle_globals then Rng.shuffle_list (Rng.copy rng_layout) globals
      else globals
    in
    let r = Rng.create (seed lxor 0x5bd1e995) in
    List.map
      (fun g ->
        let pad =
          if cfg.global_padding_max > 0 then
            Rng.int r (cfg.global_padding_max + 1) land lnot 7
          else 0
        in
        (g, pad))
      globals
  in
  let default_pool = Insn.[ RBX; R12; R13; R14; R15 ] in
  let reg_pool ~fname =
    if cfg.randomize_regalloc then
      Rng.shuffle_list (fn_rng seed "regs" fname) default_pool
    else default_pool
  in
  let slot_perm ~fname ~n =
    if cfg.shuffle_stack_slots then begin
      let a = Array.init n (fun i -> i) in
      Rng.shuffle (fn_rng seed "slots" fname) a;
      a
    end
    else Opts.identity_perm n
  in
  let slot_pad_bytes ~fname =
    if cfg.slot_padding_max > 0 then
      Rng.int (fn_rng seed "slotpad" fname) (cfg.slot_padding_max + 1) land lnot 7
    else 0
  in
  let prolog_traps ~fname =
    match cfg.prolog_traps with
    | Some (lo, hi) -> Rng.int_in_range (fn_rng seed "prolog" fname) ~lo ~hi
    | None -> 0
  in
  let nops_before_call ~fname ~site =
    match cfg.nops with
    | Some (lo, hi) ->
        let r = site_rng seed "nops" fname site in
        List.init (Rng.int_in_range r ~lo ~hi) (fun _ -> 1)
    | None -> []
  in
  let post_offset_words ~fname =
    match btra with Some b -> Btra.post_offset b ~fname | None -> 0
  in
  let callsite_btra ~fname ~site ~callee:_ =
    match btra with Some b -> Btra.plan b ~fname ~site | None -> None
  in
  let btdp_indices ~fname ~writes_frame =
    match btdp with
    (* The constructor itself runs before the pointer array exists. *)
    | Some _ when fname = Btdp.ctor_name -> []
    | Some b -> Btdp.indices b ~fname ~writes_frame
    | None -> []
  in
  let func_pad ~fname:_ =
    if cfg.shuffle_functions then Rng.int (Rng.copy rng_layout) 17 land lnot 0 else 0
  in
  let page = Addr.page_size in
  let text_slide, data_slide, heap_slide =
    if cfg.aslr then
      ( Rng.int rng_aslr 4096 * page,
        Rng.int rng_aslr 256 * page,
        Rng.int rng_aslr 4096 * page )
    else (0, 0, 0)
  in
  let opts =
    {
      Opts.default with
      reg_pool;
      slot_perm;
      slot_pad_bytes;
      prolog_traps;
      post_offset_words;
      nops_before_call;
      callsite_btra;
      btdp_indices;
      btdp_array_sym = (match btdp with Some b -> Some b.Btdp.array_sym | None -> None);
      oia;
      func_order;
      global_order;
      func_pad;
      raw_funcs = extra_raw @ bt_funcs;
      text_perm = (if cfg.xom then R2c_machine.Perm.xo else R2c_machine.Perm.rx);
      constructors = (match btdp with Some _ -> [ Btdp.ctor_name ] | None -> []);
      extra_globals = (match btra with Some b -> b.Btra.arrays | None -> []);
      text_slide;
      data_slide;
      heap_slide;
    }
  in
  (p, opts)

let compile ?(extra_raw = []) ?(seed = 1) cfg p =
  let p, opts = instrument ~extra_raw ~seed cfg p in
  R2c_compiler.Driver.compile ~opts p

let compile_with_meta ?(extra_raw = []) ?(seed = 1) cfg p =
  let p, opts = instrument ~extra_raw ~seed cfg p in
  let img, meta = R2c_compiler.Driver.compile_with_meta ~opts p in
  (img, meta, p)
