module Rng = R2c_util.Rng
module Opts = R2c_compiler.Opts
module Insn = R2c_machine.Insn
module Addr = R2c_machine.Addr

let src = Logs.Src.create "r2c.pipeline" ~doc:"R2C instrumentation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let hash_string s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

(* Order-independent per-function (or per-site) generators: callbacks may be
   invoked in any order by the emitter, so each derives its stream from the
   master seed and its own identity. *)
let fn_rng seed tag fname =
  Rng.create (seed lxor (hash_string (tag ^ "/" ^ fname) * 0x9e3779b1))

let site_rng seed tag fname site =
  Rng.create (seed lxor (hash_string (Printf.sprintf "%s/%s/%d" tag fname site) * 0x85ebca6b))

(* Link-level randomization streams. With no [link_seed] they are the
   4th/5th splits of the body-seed master (the legacy single-seed
   streams, byte-for-byte); with one, they derive from the link seed
   alone, so layout coordinates can rotate while every per-function
   decision — and therefore every cached body — stays fixed. *)
let link_rngs ~seed ~link_seed =
  match link_seed with
  | None ->
      let master = Rng.create seed in
      let _ = Rng.split master in
      let _ = Rng.split master in
      let _ = Rng.split master in
      let rng_layout = Rng.split master in
      let rng_aslr = Rng.split master in
      (rng_layout, rng_aslr, seed)
  | Some ls ->
      let lm = Rng.create ls in
      let rng_layout = Rng.split lm in
      let rng_aslr = Rng.split lm in
      (rng_layout, rng_aslr, ls)

(* The six link-level option fields, factored so a rerandomization can
   rebuild exactly these on a memoized instrument output. *)
let link_fields ~(cfg : Dconfig.t) ~pad_seed ~rng_layout ~rng_aslr =
  let func_order names =
    if cfg.shuffle_functions then Rng.shuffle_list (Rng.copy rng_layout) names else names
  in
  let global_order globals =
    let globals =
      if cfg.shuffle_globals then Rng.shuffle_list (Rng.copy rng_layout) globals
      else globals
    in
    let r = Rng.create (pad_seed lxor 0x5bd1e995) in
    List.map
      (fun g ->
        let pad =
          if cfg.global_padding_max > 0 then
            Rng.int r (cfg.global_padding_max + 1) land lnot 7
          else 0
        in
        (g, pad))
      globals
  in
  let func_pad ~fname:_ =
    if cfg.shuffle_functions then Rng.int (Rng.copy rng_layout) 17 land lnot 0 else 0
  in
  let page = Addr.page_size in
  let text_slide, data_slide, heap_slide =
    if cfg.aslr then
      ( Rng.int rng_aslr 4096 * page,
        Rng.int rng_aslr 256 * page,
        Rng.int rng_aslr 4096 * page )
    else (0, 0, 0)
  in
  (func_order, global_order, func_pad, text_slide, data_slide, heap_slide)

let relink_opts ~cfg ~seed ~link_seed (opts : Opts.t) =
  let rng_layout, rng_aslr, pad_seed = link_rngs ~seed ~link_seed in
  let func_order, global_order, func_pad, text_slide, data_slide, heap_slide =
    link_fields ~cfg ~pad_seed ~rng_layout ~rng_aslr
  in
  { opts with Opts.func_order; global_order; func_pad; text_slide; data_slide; heap_slide }

let instrument ?(extra_raw = []) ?(mdesc = R2c_compiler.Mdesc.x86_64) ?link_seed ~seed
    (cfg : Dconfig.t) (p : Ir.program) =
  let master = Rng.create seed in
  let rng_bt = Rng.split master in
  let rng_btra = Rng.split master in
  let rng_btdp = Rng.split master in
  let rng_layout = Rng.split master in
  let rng_aslr = Rng.split master in
  let rng_layout, rng_aslr, pad_seed =
    match link_seed with
    | None -> (rng_layout, rng_aslr, seed)
    | Some _ -> link_rngs ~seed ~link_seed
  in
  (* BTDP: extend the program with the constructor and its data. *)
  let btdp =
    match cfg.btdp with
    | Some bcfg -> Some (Btdp.build ~rng:rng_btdp ~cfg:bcfg ~seed)
    | None -> None
  in
  let p =
    match btdp with
    | Some b ->
        { p with Ir.funcs = p.funcs @ [ b.Btdp.ctor ]; globals = p.globals @ b.Btdp.globals }
    | None -> p
  in
  (* Booby-trap functions and BTRA plans. *)
  let needs_pool = cfg.btra <> None in
  let bt_funcs, pool =
    if needs_pool || cfg.booby_trap_funcs > 0 then begin
      let count = max cfg.booby_trap_funcs (if needs_pool then 16 else 0) in
      let funcs, targets = Boobytrap.generate rng_bt ~count in
      (funcs, Some (Boobytrap.pool_of_targets targets))
    end
    else ([], None)
  in
  let btra =
    match (cfg.btra, pool) with
    | Some bcfg, Some pool -> Some (Btra.build ~rng:rng_btra ~cfg:bcfg ~pool p)
    | Some _, None -> assert false
    | None, _ -> None
  in
  let oia = cfg.oia || cfg.btra <> None in
  Log.debug (fun m ->
      m "instrumenting %d functions (%s), seed %d: %d booby traps, %d BTRA plans"
        (List.length p.Ir.funcs) (Dconfig.describe cfg) seed (List.length bt_funcs)
        (match btra with Some b -> Hashtbl.length b.Btra.plans | None -> 0));
  (* Layout randomizations. *)
  let func_order, global_order, func_pad, text_slide, data_slide, heap_slide =
    link_fields ~cfg ~pad_seed ~rng_layout ~rng_aslr
  in
  let default_pool = mdesc.R2c_compiler.Mdesc.callee_saved in
  let reg_pool ~fname =
    if cfg.randomize_regalloc then
      Rng.shuffle_list (fn_rng seed "regs" fname) default_pool
    else default_pool
  in
  let slot_perm ~fname ~n =
    if cfg.shuffle_stack_slots then begin
      let a = Array.init n (fun i -> i) in
      Rng.shuffle (fn_rng seed "slots" fname) a;
      a
    end
    else Opts.identity_perm n
  in
  let slot_pad_bytes ~fname =
    if cfg.slot_padding_max > 0 then
      Rng.int (fn_rng seed "slotpad" fname) (cfg.slot_padding_max + 1) land lnot 7
    else 0
  in
  let prolog_traps ~fname =
    match cfg.prolog_traps with
    | Some (lo, hi) -> Rng.int_in_range (fn_rng seed "prolog" fname) ~lo ~hi
    | None -> 0
  in
  let nops_before_call ~fname ~site =
    match cfg.nops with
    | Some (lo, hi) ->
        let r = site_rng seed "nops" fname site in
        List.init (Rng.int_in_range r ~lo ~hi) (fun _ -> 1)
    | None -> []
  in
  let post_offset_words ~fname =
    match btra with Some b -> Btra.post_offset b ~fname | None -> 0
  in
  let callsite_btra ~fname ~site ~callee:_ =
    match btra with Some b -> Btra.plan b ~fname ~site | None -> None
  in
  let btdp_indices ~fname ~writes_frame =
    match btdp with
    (* The constructor itself runs before the pointer array exists. *)
    | Some _ when fname = Btdp.ctor_name -> []
    | Some b -> Btdp.indices b ~fname ~writes_frame
    | None -> []
  in
  let opts =
    {
      Opts.default with
      mdesc;
      reg_pool;
      slot_perm;
      slot_pad_bytes;
      prolog_traps;
      post_offset_words;
      nops_before_call;
      callsite_btra;
      btdp_indices;
      btdp_array_sym = (match btdp with Some b -> Some b.Btdp.array_sym | None -> None);
      oia;
      func_order;
      global_order;
      func_pad;
      raw_funcs = extra_raw @ bt_funcs;
      text_perm = (if cfg.xom then R2c_machine.Perm.xo else R2c_machine.Perm.rx);
      constructors = (match btdp with Some _ -> [ Btdp.ctor_name ] | None -> []);
      extra_globals = (match btra with Some b -> b.Btra.arrays | None -> []);
      text_slide;
      data_slide;
      heap_slide;
    }
  in
  (p, opts)

let compile ?(extra_raw = []) ?(seed = 1) cfg p =
  let p, opts = instrument ~extra_raw ~seed cfg p in
  R2c_compiler.Driver.compile ~opts p

let compile_with_meta ?(extra_raw = []) ?(seed = 1) cfg p =
  let p, opts = instrument ~extra_raw ~seed cfg p in
  let img, meta = R2c_compiler.Driver.compile_with_meta ~opts p in
  (img, meta, p)

(* ------------------------------------------------------------------ *)
(* Rerandomization coordinates and the incremental rebuild handle.     *)

module Incremental = R2c_compiler.Incremental
module Mdesc = R2c_compiler.Mdesc

type coords = { cfg : Dconfig.t; body_seed : int; link_seed : int option }

let salt_of_coords c =
  Digest.to_hex (Digest.string (Marshal.to_string (c.cfg, c.body_seed) []))

let compile_cold ?extra_raw ?mdesc (c : coords) p =
  let p, opts =
    instrument ?extra_raw ?mdesc ?link_seed:c.link_seed ~seed:c.body_seed c.cfg p
  in
  R2c_compiler.Driver.compile ~opts p

let compile_cold_with_meta ?extra_raw ?mdesc (c : coords) p =
  let p, opts =
    instrument ?extra_raw ?mdesc ?link_seed:c.link_seed ~seed:c.body_seed c.cfg p
  in
  let img, meta = R2c_compiler.Driver.compile_with_meta ~opts p in
  (img, meta, p)

type memo = {
  m_src : Ir.program;  (** the caller's program, by physical identity *)
  m_cfg : Dconfig.t;
  m_seed : int;
  m_extra : Opts.raw_func list;
  m_mdesc : Mdesc.t;
  m_prog : Ir.program;  (** instrumented program *)
  m_opts : Opts.t;
  m_token : string;
}

type rerand = { cache : Incremental.t; mutable memo : memo option }

let rerand_create () = { cache = Incremental.create (); memo = None }

let rerand_cache r = r.cache

let compile_incremental_with_meta ?(extra_raw = []) ?jobs ?(mdesc = Mdesc.x86_64) r
    (c : coords) p =
  let salt = salt_of_coords c in
  let memo_valid m =
    m.m_src == p && m.m_seed = c.body_seed && m.m_cfg = c.cfg && m.m_extra == extra_raw
    && m.m_mdesc == mdesc
  in
  let m =
    match r.memo with
    | Some m when memo_valid m -> m
    | _ ->
        let prog, opts =
          instrument ~extra_raw ~mdesc ?link_seed:c.link_seed ~seed:c.body_seed c.cfg p
        in
        (* The Incremental key memo may only be reused while the
           emission-level options are unchanged; everything they depend
           on beyond the program itself goes into the token. *)
        let token =
          salt ^ ":" ^ Mdesc.fingerprint mdesc ^ ":"
          ^ Digest.to_hex (Digest.string (Marshal.to_string extra_raw []))
        in
        let m =
          {
            m_src = p;
            m_cfg = c.cfg;
            m_seed = c.body_seed;
            m_extra = extra_raw;
            m_mdesc = mdesc;
            m_prog = prog;
            m_opts = opts;
            m_token = token;
          }
        in
        r.memo <- Some m;
        m
  in
  (* Rotations override exactly the link-level fields; body-level
     decisions — and so the cache keys — are pure functions of the
     memoized options. *)
  let opts = relink_opts ~cfg:c.cfg ~seed:c.body_seed ~link_seed:c.link_seed m.m_opts in
  let img, meta, stats =
    Incremental.build_with_meta ?jobs ~key_token:m.m_token r.cache ~opts ~salt m.m_prog
  in
  (img, meta, stats, m.m_prog)

let compile_incremental ?extra_raw ?jobs ?mdesc r c p =
  let img, _, stats, _ = compile_incremental_with_meta ?extra_raw ?jobs ?mdesc r c p in
  (img, stats)
