(** The R2C compiler: IR program + diversity configuration + seed -> image.

    [instrument] performs the program-level work (booby-trap functions,
    BTDP constructor and data, call-site BTRA planning) and packages every
    per-function / per-call-site randomized decision into compiler options;
    [compile] runs the full pipeline. Equal seeds give identical binaries;
    different seeds give diversified variants (the paper's per-execution
    recompilation methodology, Section 6.2). *)

(** [instrument ?extra_raw ~seed cfg p] — the (possibly extended) program
    and the codegen options to compile it with. [extra_raw] appends raw
    machine-code functions (e.g. the libc-like runtime stubs that give
    evaluation targets a realistic gadget population); they are shuffled
    with everything else. *)
val instrument :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  seed:int ->
  Dconfig.t ->
  Ir.program ->
  Ir.program * R2c_compiler.Opts.t

(** [compile ?extra_raw ?seed cfg p] — full pipeline. Default seed 1. *)
val compile :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?seed:int ->
  Dconfig.t ->
  Ir.program ->
  R2c_machine.Image.t

(** [compile_with_meta ?extra_raw ?seed cfg p] — {!compile}, also
    returning per-function lowering metadata and the instrumented program
    actually compiled (the input plus e.g. the BTDP constructor), so the
    translation validator can check every IR function in the image. *)
val compile_with_meta :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?seed:int ->
  Dconfig.t ->
  Ir.program ->
  R2c_machine.Image.t * (string * R2c_compiler.Emit.tvmeta) list * Ir.program
