(** The R2C compiler: IR program + diversity configuration + seed -> image.

    [instrument] performs the program-level work (booby-trap functions,
    BTDP constructor and data, call-site BTRA planning) and packages every
    per-function / per-call-site randomized decision into compiler options;
    [compile] runs the full pipeline. Equal seeds give identical binaries;
    different seeds give diversified variants (the paper's per-execution
    recompilation methodology, Section 6.2). *)

(** [instrument ?extra_raw ?mdesc ?link_seed ~seed cfg p] — the (possibly
    extended) program and the codegen options to compile it with.
    [extra_raw] appends raw machine-code functions (e.g. the libc-like
    runtime stubs that give evaluation targets a realistic gadget
    population); they are shuffled with everything else. [mdesc] selects
    the machine description the options are seated on (default
    {!R2c_compiler.Mdesc.x86_64}). [link_seed], when given, drives the
    link-level streams (function/global order, padding, ASLR slides)
    from its own generator instead of the body seed's master — the
    coordinate split that lets a rerandomization change layout without
    invalidating any per-function work. Omitted, the streams are the
    legacy single-seed ones, byte-for-byte. *)
val instrument :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?mdesc:R2c_compiler.Mdesc.t ->
  ?link_seed:int ->
  seed:int ->
  Dconfig.t ->
  Ir.program ->
  Ir.program * R2c_compiler.Opts.t

(** [compile ?extra_raw ?seed cfg p] — full pipeline. Default seed 1. *)
val compile :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?seed:int ->
  Dconfig.t ->
  Ir.program ->
  R2c_machine.Image.t

(** [compile_with_meta ?extra_raw ?seed cfg p] — {!compile}, also
    returning per-function lowering metadata and the instrumented program
    actually compiled (the input plus e.g. the BTDP constructor), so the
    translation validator can check every IR function in the image. *)
val compile_with_meta :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?seed:int ->
  Dconfig.t ->
  Ir.program ->
  R2c_machine.Image.t * (string * R2c_compiler.Emit.tvmeta) list * Ir.program

(** {1 Incremental rerandomization}

    A variant is addressed by its {!coords}: the diversity config, the
    body seed (every per-function and per-call-site decision), and an
    optional link seed (layout order, padding, ASLR slides). Rotating
    only the link seed re-diversifies the image while every compiled
    function body stays valid — the incremental rebuild path recompiles
    nothing and re-links.

    Contract: {!compile_incremental} is byte-identical (per
    {!R2c_machine.Image.fingerprint}) to {!compile_cold} at the same
    coordinates, for every coordinate — the cache can only be faster,
    never different. With [link_seed = None] both equal the legacy
    {!compile} at [~seed:body_seed]. *)

type coords = {
  cfg : Dconfig.t;
  body_seed : int;
  link_seed : int option;
}

(** Digest of the body-level coordinates — the incremental cache salt;
    link-seed independent. *)
val salt_of_coords : coords -> string

(** Full non-cached pipeline at [coords] — the reference the incremental
    path is differentially tested against. *)
val compile_cold :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?mdesc:R2c_compiler.Mdesc.t ->
  coords ->
  Ir.program ->
  R2c_machine.Image.t

(** [compile_cold] plus lowering metadata and the instrumented program,
    for the translation validator. *)
val compile_cold_with_meta :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?mdesc:R2c_compiler.Mdesc.t ->
  coords ->
  Ir.program ->
  R2c_machine.Image.t * (string * R2c_compiler.Emit.tvmeta) list * Ir.program

(** A rerandomization handle: the per-function codegen cache plus a memo
    of the last instrumented program, so steady-state rotations skip
    instrumentation and key recomputation entirely. *)
type rerand

val rerand_create : unit -> rerand

(** The underlying cache (counters, poisoning, clearing — the test
    battery's hooks). *)
val rerand_cache : rerand -> R2c_compiler.Incremental.t

(** [compile_incremental ?extra_raw ?jobs ?mdesc r coords p] — the image
    and this rebuild's cache traffic. Recompiles only functions whose
    (IR, diversification slice, machine description) key is absent from
    [r]'s cache, fanned over the Domain pool ([jobs] as in
    [R2c_util.Parallel]). *)
val compile_incremental :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?jobs:int ->
  ?mdesc:R2c_compiler.Mdesc.t ->
  rerand ->
  coords ->
  Ir.program ->
  R2c_machine.Image.t * R2c_compiler.Incremental.stats

(** [compile_incremental] plus lowering metadata and the instrumented
    program. *)
val compile_incremental_with_meta :
  ?extra_raw:R2c_compiler.Opts.raw_func list ->
  ?jobs:int ->
  ?mdesc:R2c_compiler.Mdesc.t ->
  rerand ->
  coords ->
  Ir.program ->
  R2c_machine.Image.t
  * (string * R2c_compiler.Emit.tvmeta) list
  * R2c_compiler.Incremental.stats
  * Ir.program
