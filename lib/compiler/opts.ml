type btra_setup = Push_setup | Push_naive | Sse_setup | Avx_setup | Avx512_setup

type callsite_plan = {
  pre_syms : (string * int) list;
  post_syms : (string * int) list;
  setup : btra_setup;
  array_global : string option;
  avx_pad : int;
  dummy_sym : (string * int) option;
  check_sym : (int * (string * int)) option;
}

type callee_kind =
  | Known of string
  | Unknown_indirect
  | Lib of string

type raw_func = {
  rname : string;
  rinsns : R2c_machine.Insn.t list;
  rbooby_trap : bool;
}

type t = {
  mdesc : Mdesc.t;
  reg_pool : fname:string -> R2c_machine.Insn.reg list;
  slot_perm : fname:string -> n:int -> int array;
  slot_pad_bytes : fname:string -> int;
  prolog_traps : fname:string -> int;
  post_offset_words : fname:string -> int;
  nops_before_call : fname:string -> site:int -> int list;
  callsite_btra : fname:string -> site:int -> callee:callee_kind -> callsite_plan option;
  btdp_indices : fname:string -> writes_frame:bool -> int list;
  btdp_array_sym : string option;
  func_alias : string -> string;
  oia : bool;
  func_order : string list -> string list;
  global_order : Ir.global list -> (Ir.global * int) list;
  func_pad : fname:string -> int;
  raw_funcs : raw_func list;
  text_perm : R2c_machine.Perm.t;
  shadow_stack : bool;
  constructors : string list;
  extra_globals : Ir.global list;
  stack_bytes : int;
  text_slide : int;
  data_slide : int;
  heap_slide : int;
}

let identity_perm n = Array.init n (fun i -> i)

let with_mdesc md t =
  { t with mdesc = md; reg_pool = (fun ~fname:_ -> md.Mdesc.callee_saved) }

let default =
  {
    mdesc = Mdesc.x86_64;
    reg_pool = (fun ~fname:_ -> Mdesc.x86_64.Mdesc.callee_saved);
    slot_perm = (fun ~fname:_ ~n -> identity_perm n);
    slot_pad_bytes = (fun ~fname:_ -> 0);
    prolog_traps = (fun ~fname:_ -> 0);
    post_offset_words = (fun ~fname:_ -> 0);
    nops_before_call = (fun ~fname:_ ~site:_ -> []);
    callsite_btra = (fun ~fname:_ ~site:_ ~callee:_ -> None);
    btdp_indices = (fun ~fname:_ ~writes_frame:_ -> []);
    btdp_array_sym = None;
    func_alias = (fun s -> s);
    oia = false;
    func_order = (fun names -> names);
    global_order = (fun globals -> List.map (fun g -> (g, 0)) globals);
    func_pad = (fun ~fname:_ -> 0);
    raw_funcs = [];
    text_perm = R2c_machine.Perm.rx;
    shadow_stack = false;
    constructors = [];
    extra_globals = [];
    stack_bytes = 256 * 1024;
    text_slide = 0;
    data_slide = 0;
    heap_slide = 0;
  }
