open R2c_machine

(* The default machine's argument registers, re-exported for the
   translation validator; parameterized code reads them off the machine
   description instead. *)
let arg_regs = Mdesc.x86_64.Mdesc.arg_regs

(* Emission buffer: instructions plus symbol definitions recorded by
   instruction index, converted to byte offsets at the end. *)
type eb = {
  mutable rev : Insn.t list;
  mutable count : int;
  mutable sym_defs : (string * int) list;  (* name, instruction index *)
}

let eb_create () = { rev = []; count = 0; sym_defs = [] }

let ins eb i =
  eb.rev <- i :: eb.rev;
  eb.count <- eb.count + 1

let def_sym eb name = eb.sym_defs <- (name, eb.count) :: eb.sym_defs

let eb_finish eb ~size ~name ~booby_trap =
  let insns = Array.of_list (List.rev eb.rev) in
  let esizes = Asm.sizes_of ~size insns in
  (* Prefix byte offsets per instruction index. *)
  let offsets = Array.make (Array.length insns + 1) 0 in
  Array.iteri (fun i len -> offsets.(i + 1) <- offsets.(i) + len) esizes;
  let local_syms = List.map (fun (s, idx) -> (s, offsets.(idx))) eb.sym_defs in
  { Asm.ename = name; insns; esizes; local_syms; ebooby_trap = booby_trap; eframe = None }

type frame = {
  ir_off : int array;  (* IR slot index -> rsp offset *)
  spill_off : int array;
  btdp_slots : (int * int) list;  (* pointer-array index, rsp offset *)
  save_slots : (Insn.reg * int) list;
  frame_size : int;
  post_words : int;
}

type slot_kind =
  | K_ir of int
  | K_spill of int
  | K_btdp of int
  | K_save of Insn.reg

let build_frame ~(opts : Opts.t) (f : Ir.func) (alloc : Regalloc.result) ~btdps ~post_words =
  let fname = f.name in
  let w = opts.mdesc.Mdesc.word_bytes in
  let kinds =
    List.concat
      [
        List.init (Array.length f.slots) (fun i -> K_ir i);
        List.init alloc.nspills (fun i -> K_spill i);
        List.map (fun idx -> K_btdp idx) btdps;
        List.map (fun r -> K_save r) alloc.used_regs;
      ]
  in
  let n = List.length kinds in
  let perm = opts.slot_perm ~fname ~n in
  assert (Array.length perm = n);
  let kinds_arr = Array.of_list kinds in
  let ir_off = Array.make (Array.length f.slots) 0 in
  let spill_off = Array.make alloc.nspills 0 in
  let btdp_slots = ref [] in
  let save_slots = ref [] in
  let off = ref 0 in
  Array.iter
    (fun p ->
      let k = kinds_arr.(p) in
      let size =
        match k with
        | K_ir i -> Addr.align_up f.slots.(i) ~align:w
        | K_spill _ | K_btdp _ | K_save _ -> w
      in
      (match k with
      | K_ir i -> ir_off.(i) <- !off
      | K_spill i -> spill_off.(i) <- !off
      | K_btdp idx -> btdp_slots := (idx, !off) :: !btdp_slots
      | K_save r -> save_slots := (r, !off) :: !save_slots);
      off := !off + size)
    perm;
  let pad = Addr.align_up (max 0 (opts.slot_pad_bytes ~fname)) ~align:w in
  let raw = !off + pad in
  (* Entry rsp is one word past alignment (the pushed RA); after the
     post-offset and frame subtractions it must be aligned at call sites:
     frame + w*post = w (mod frame_align). *)
  let amask = opts.mdesc.Mdesc.frame_align - 1 in
  let target_mod = (w + (w * post_words)) land amask in
  let frame_size =
    let r = ref raw in
    while !r land amask <> target_mod do
      r := !r + w
    done;
    !r
  in
  {
    ir_off;
    spill_off;
    btdp_slots = List.rev !btdp_slots;
    save_slots = List.rev !save_slots;
    frame_size;
    post_words;
  }

type ctx = {
  f : Ir.func;
  opts : Opts.t;
  md : Mdesc.t;
  alloc : Regalloc.result;
  frame : frame;
  eb : eb;
  mutable push_adjust : int;  (* bytes pushed beyond the frame, live now *)
  mutable site : int;
  mutable ra_sites : (string * int) list;  (* unwind rows, reversed *)
  mutable check_sites : string list;  (* RA symbols with post-return checks *)
}

let label_sym ctx lbl = Printf.sprintf "%s.L%d" ctx.f.name lbl
let ra_sym fname site = Printf.sprintf "__ra_%s_%d" fname site

let slot_mem ctx off =
  Insn.mem ~base:ctx.md.Mdesc.stack_reg ~disp:(off + ctx.push_adjust) ()

let home ctx v = ctx.alloc.assign.(v)

(* Load an operand's value into [dst] (a scratch or argument register). *)
let load_operand ctx dst op =
  match op with
  | Ir.Const n -> ins ctx.eb (Insn.Mov (Reg dst, Imm (Abs n)))
  | Ir.Var v -> (
      match home ctx v with
      | Regalloc.In_reg r -> if r <> dst then ins ctx.eb (Insn.Mov (Reg dst, Reg r))
      | Regalloc.Spilled k ->
          ins ctx.eb (Insn.Mov (Reg dst, Mem (slot_mem ctx ctx.frame.spill_off.(k)))))
  | Ir.Global g -> ins ctx.eb (Insn.Mov (Reg dst, Imm (Sym (g, 0))))
  | Ir.Func fn -> ins ctx.eb (Insn.Mov (Reg dst, Imm (Sym (ctx.opts.func_alias fn, 0))))

(* Store scratch register [src] into a variable's home. *)
let store_home ctx v src =
  match home ctx v with
  | Regalloc.In_reg r -> if r <> src then ins ctx.eb (Insn.Mov (Reg r, Reg src))
  | Regalloc.Spilled k ->
      ins ctx.eb (Insn.Mov (Mem (slot_mem ctx ctx.frame.spill_off.(k)), Reg src))

(* A right-hand operand usable directly in a Binop/Cmp, if any. *)
let direct_operand ctx op =
  match op with
  | Ir.Const n -> Some (Insn.Imm (Insn.Abs n))
  | Ir.Var v -> (
      match home ctx v with
      | Regalloc.In_reg r -> Some (Insn.Reg r)
      | Regalloc.Spilled _ -> None)
  | Ir.Global _ | Ir.Func _ -> None

let lower_binop : Ir.binop -> [ `Op of Insn.binop | `Div | `Rem ] = function
  | Ir.Add -> `Op Insn.Add
  | Ir.Sub -> `Op Insn.Sub
  | Ir.Mul -> `Op Insn.Imul
  | Ir.And -> `Op Insn.And
  | Ir.Or -> `Op Insn.Or
  | Ir.Xor -> `Op Insn.Xor
  | Ir.Shl -> `Op Insn.Shl
  | Ir.Shr -> `Op Insn.Shr
  | Ir.Sar -> `Op Insn.Sar
  | Ir.Div -> `Div
  | Ir.Rem -> `Rem

let lower_cmp : Ir.cmp -> Insn.cond = function
  | Ir.Eq -> Insn.Eq
  | Ir.Ne -> Insn.Ne
  | Ir.Lt -> Insn.Lt
  | Ir.Le -> Insn.Le
  | Ir.Gt -> Insn.Gt
  | Ir.Ge -> Insn.Ge

(* Memory operand for [base + off] where base is an IR operand; folds
   global/slot bases into a single addressing mode when possible. *)
let base_mem ctx base off k =
  match base with
  | Ir.Global g -> k (Insn.mem_sym g off)
  | _ ->
      let ret = ctx.md.Mdesc.ret_reg in
      load_operand ctx ret base;
      k (Insn.mem ~base:ret ~disp:off ())

let emit_call ctx dst callee args =
  let eb = ctx.eb in
  let opts = ctx.opts in
  let md = ctx.md in
  let w = md.Mdesc.word_bytes in
  let sp = md.Mdesc.stack_reg in
  let ret = md.Mdesc.ret_reg in
  let nregs = Mdesc.nregs md in
  let fname = ctx.f.name in
  let site = ctx.site in
  ctx.site <- site + 1;
  let callee_kind =
    match callee with
    | Ir.Direct name -> Opts.Known name
    | Ir.Indirect _ -> Opts.Unknown_indirect
    | Ir.Builtin name -> Opts.Lib name
  in
  let plan = opts.callsite_btra ~fname ~site ~callee:callee_kind in
  (* Indirect target first, into the indirect-call register, before any
     stack motion. *)
  (match callee with
  | Ir.Indirect op -> load_operand ctx md.Mdesc.indirect_reg op
  | Ir.Direct _ | Ir.Builtin _ -> ());
  (* Register arguments. *)
  let nargs = List.length args in
  List.iteri
    (fun i arg -> if i < nregs then load_operand ctx (List.nth md.Mdesc.arg_regs i) arg)
    args;
  (* Stack arguments, right to left, padded to even count. *)
  let stack_args =
    if nargs > nregs then List.filteri (fun i _ -> i >= nregs) args else []
  in
  let k = List.length stack_args in
  let pad = k land 1 in
  if k > 0 then begin
    if plan <> None && not opts.oia then
      invalid_arg
        (Printf.sprintf
           "emit: %s call site %d: BTRAs on a stack-argument call require \
            offset-invariant addressing (Section 7.4.2)"
           fname site);
    if pad = 1 then begin
      ins eb (Insn.Push (Imm (Abs 0)));
      ctx.push_adjust <- ctx.push_adjust + w
    end;
    List.iter
      (fun arg ->
        load_operand ctx ret arg;
        ins eb (Insn.Push (Reg ret));
        ctx.push_adjust <- ctx.push_adjust + w)
      (List.rev stack_args);
    (* Offset-invariant addressing: the frame pointer marks the first stack
       argument, before any BTRA-induced variation (Section 5.1.1). *)
    if opts.oia then ins eb (Insn.Lea (md.Mdesc.frame_reg, Insn.mem ~base:sp ()))
  end;
  (* Call-site NOPs (Section 4.3). *)
  List.iter (fun w -> ins eb (Insn.Nop (max 1 (min 15 w)))) (opts.nops_before_call ~fname ~site);
  let target : Insn.t =
    match callee with
    | Ir.Direct name -> Insn.Call (TSym (name, 0))
    | Ir.Builtin name -> Insn.Call (TSym (name, 0))
    | Ir.Indirect _ -> Insn.Call_ind (Reg md.Mdesc.indirect_reg)
  in
  let this_ra = ra_sym fname site in
  (* Unwind row: words between this RA slot and the caller's frame base —
     pre-BTRAs plus pushed stack arguments and alignment padding. *)
  let pre_words = match plan with Some p -> List.length p.Opts.pre_syms | None -> 0 in
  ctx.ra_sites <- (this_ra, pre_words + k + pad) :: ctx.ra_sites;
  (match plan with
  | Some p when p.Opts.check_sym <> None -> ctx.check_sites <- this_ra :: ctx.check_sites
  | _ -> ());
  (* Defender-side metadata: the address of the call instruction itself
     (used by the race-window analysis and the unwinder tests). *)
  let call_label () = def_sym eb (Printf.sprintf "__call_%s_%d" fname site) in
  (* Section 7.3 hardening: after the return, verify that a chosen
     pre-BTRA survived; corruption means someone probed the RA window.
     Scratch is the check register — the return register holds the
     callee's result. *)
  let emit_check (p : Opts.callsite_plan) =
    match p.check_sym with
    | None -> ()
    | Some (slot, (s, o)) ->
        let chk = md.Mdesc.check_reg in
        let ok = Printf.sprintf "%s.Lchk%d" fname site in
        ins eb (Insn.Mov (Reg chk, Mem (Insn.mem ~base:sp ~disp:(w * slot) ())));
        ins eb (Insn.Cmp (Reg chk, Imm (Sym (s, o))));
        ins eb (Insn.Jcc (Eq, TSym (ok, 0)));
        ins eb Insn.Trap;
        def_sym eb ok
  in
  (match plan with
  | None ->
      call_label ();
      ins eb target;
      def_sym eb this_ra
  | Some p ->
      let pre = p.pre_syms and post = p.post_syms in
      if List.length pre land 1 <> 0 then
        invalid_arg (Printf.sprintf "emit: %s site %d: odd pre-BTRA count" fname site);
      (match callee_kind with
      | Opts.Known callee_name ->
          let expected = opts.post_offset_words ~fname:callee_name in
          if List.length post <> expected then
            invalid_arg
              (Printf.sprintf "emit: %s site %d: post-BTRA count %d, callee %s expects %d"
                 fname site (List.length post) callee_name expected)
      | Opts.Unknown_indirect | Opts.Lib _ -> ());
      let push_setup ~ra_word =
        (* Figure 3: push pre-BTRAs, the RA word, post-BTRAs; then
           reposition rsp above the RA slot so the call overwrites it. *)
        List.iter (fun (s, o) -> ins eb (Insn.Push (Imm (Sym (s, o))))) pre;
        ins eb (Insn.Push ra_word);
        List.iter (fun (s, o) -> ins eb (Insn.Push (Imm (Sym (s, o))))) post;
        ins eb (Insn.Binop (Add, sp, Imm (Abs (w * (List.length post + 1)))));
        call_label ();
        ins eb target;
        def_sym eb this_ra;
        emit_check p;
        (* Step 7: the caller reverts the pre-offset. *)
        if pre <> [] then ins eb (Insn.Binop (Add, sp, Imm (Abs (w * List.length pre))))
      in
      let vector_setup ~chunk_words ~load ~store ~zero_upper =
        (* Figure 4: batch-write [pad; post; RA; pre] from the call-site
           array in the data section, then position rsp above the RA. *)
        let arr =
          match p.array_global with
          | Some a -> a
          | None ->
              invalid_arg
                (Printf.sprintf "emit: %s site %d: vector plan without array" fname site)
        in
        let batch = p.avx_pad + List.length post + 1 + List.length pre in
        if batch mod chunk_words <> 0 then
          invalid_arg
            (Printf.sprintf "emit: %s site %d: batch of %d words not a multiple of %d"
               fname site batch chunk_words);
        let chunk_bytes = w * chunk_words in
        let vreg = md.Mdesc.vector_reg in
        for j = 0 to (batch / chunk_words) - 1 do
          ins eb (load vreg (Insn.mem_sym arr (chunk_bytes * j)));
          ins eb
            (store (Insn.mem ~base:sp ~disp:((-w * batch) + (chunk_bytes * j)) ()) vreg)
        done;
        if zero_upper then ins eb Insn.Vzeroupper;
        ins eb (Insn.Lea (sp, Insn.mem ~base:sp ~disp:(-w * List.length pre) ()));
        call_label ();
        ins eb target;
        def_sym eb this_ra;
        emit_check p;
        if pre <> [] then ins eb (Insn.Binop (Add, sp, Imm (Abs (w * List.length pre))))
      in
      (match p.setup with
      | Opts.Push_setup -> push_setup ~ra_word:(Insn.Imm (Sym (this_ra, 0)))
      | Opts.Push_naive ->
          (* The rejected kR^X-style scheme: a decoy sits in the RA slot
             until the call instruction replaces it — the Section 5.1 race
             window an observer can exploit. *)
          let dummy =
            match p.dummy_sym with
            | Some (s, o) -> Insn.Imm (Insn.Sym (s, o))
            | None ->
                invalid_arg
                  (Printf.sprintf "emit: %s site %d: naive plan without dummy" fname site)
          in
          push_setup ~ra_word:dummy
      | Opts.Sse_setup ->
          vector_setup ~chunk_words:2
            ~load:(fun r m -> Insn.Vload128 (r, m))
            ~store:(fun m r -> Insn.Vstore128 (m, r))
            ~zero_upper:false
      | Opts.Avx_setup ->
          vector_setup ~chunk_words:4
            ~load:(fun r m -> Insn.Vload (r, m))
            ~store:(fun m r -> Insn.Vstore (m, r))
            ~zero_upper:true
      | Opts.Avx512_setup ->
          vector_setup ~chunk_words:8
            ~load:(fun r m -> Insn.Vload512 (r, m))
            ~store:(fun m r -> Insn.Vstore512 (m, r))
            ~zero_upper:true));
  (* Pop stack arguments and padding. *)
  if k + pad > 0 then begin
    ins eb (Insn.Binop (Add, sp, Imm (Abs (w * (k + pad)))));
    ctx.push_adjust <- ctx.push_adjust - (w * (k + pad))
  end;
  match dst with Some v -> store_home ctx v ret | None -> ()

let emit_instr ctx (instr : Ir.instr) =
  let eb = ctx.eb in
  let ret = ctx.md.Mdesc.ret_reg in
  let tmp = ctx.md.Mdesc.scratch_reg in
  match instr with
  | Ir.Mov (v, op) -> (
      match (home ctx v, op) with
      | Regalloc.In_reg r, _ ->
          load_operand ctx r op
      | Regalloc.Spilled _, _ ->
          load_operand ctx ret op;
          store_home ctx v ret)
  | Ir.Binop (v, op, a, b) -> (
      load_operand ctx ret a;
      let rhs =
        match direct_operand ctx b with
        | Some o -> o
        | None ->
            load_operand ctx tmp b;
            Insn.Reg tmp
      in
      (match lower_binop op with
      | `Op o -> ins eb (Insn.Binop (o, ret, rhs))
      | `Div -> ins eb (Insn.Div (ret, rhs))
      | `Rem -> ins eb (Insn.Rem (ret, rhs)));
      store_home ctx v ret)
  | Ir.Cmp (v, c, a, b) ->
      load_operand ctx ret a;
      let rhs =
        match direct_operand ctx b with
        | Some o -> o
        | None ->
            load_operand ctx tmp b;
            Insn.Reg tmp
      in
      ins eb (Insn.Cmp (Reg ret, rhs));
      ins eb (Insn.Setcc (lower_cmp c, ret));
      store_home ctx v ret
  | Ir.Load (v, base, off) ->
      base_mem ctx base off (fun m -> ins eb (Insn.Mov (Reg ret, Mem m)));
      store_home ctx v ret
  | Ir.Load8 (v, base, off) ->
      base_mem ctx base off (fun m -> ins eb (Insn.Mov8 (Reg ret, Mem m)));
      store_home ctx v ret
  | Ir.Store (base, off, value) ->
      load_operand ctx tmp value;
      base_mem ctx base off (fun m -> ins eb (Insn.Mov (Mem m, Reg tmp)))
  | Ir.Store8 (base, off, value) ->
      load_operand ctx tmp value;
      base_mem ctx base off (fun m -> ins eb (Insn.Mov8 (Mem m, Reg tmp)))
  | Ir.Slot_addr (v, i) ->
      ins eb (Insn.Lea (ret, slot_mem ctx ctx.frame.ir_off.(i)));
      store_home ctx v ret
  | Ir.Call (dst, callee, args) -> emit_call ctx dst callee args

let emit_epilogue ctx ret_op =
  let eb = ctx.eb in
  let ret = ctx.md.Mdesc.ret_reg in
  let sp = ctx.md.Mdesc.stack_reg in
  let w = ctx.md.Mdesc.word_bytes in
  (* A value-less return still defines the result register: the reference
     interpreter gives [Ret None] the value 0, and main's return is the
     exit status — leaving a stale result register here is an observable
     divergence (found by the differential fuzzer). *)
  (match ret_op with
  | Some op -> load_operand ctx ret op
  | None -> ins eb (Insn.Mov (Reg ret, Imm (Abs 0))));
  List.iter
    (fun (r, off) -> ins eb (Insn.Mov (Reg r, Mem (slot_mem ctx off))))
    ctx.frame.save_slots;
  if ctx.frame.frame_size > 0 then
    ins eb (Insn.Binop (Add, sp, Imm (Abs ctx.frame.frame_size)));
  (* Figure 3 step 5: the callee reverts the post-offset before ret. *)
  if ctx.frame.post_words > 0 then
    ins eb (Insn.Binop (Add, sp, Imm (Abs (w * ctx.frame.post_words))));
  ins eb Insn.Ret

let emit_term ctx ~next_lbl (term : Ir.term) =
  let eb = ctx.eb in
  match term with
  | Ir.Ret op -> emit_epilogue ctx op
  | Ir.Br l -> if next_lbl <> Some l then ins eb (Insn.Jmp (TSym (label_sym ctx l, 0)))
  | Ir.Cond_br (c, l1, l2) ->
      let ret = ctx.md.Mdesc.ret_reg in
      load_operand ctx ret c;
      ins eb (Insn.Cmp (Reg ret, Imm (Abs 0)));
      ins eb (Insn.Jcc (Ne, TSym (label_sym ctx l1, 0)));
      if next_lbl <> Some l2 then ins eb (Insn.Jmp (TSym (label_sym ctx l2, 0)))

type tvmeta = {
  tv_assign : Regalloc.assignment array;
  tv_ir_off : int array;
  tv_spill_off : int array;
  tv_save : (Insn.reg * int) list;
  tv_frame_size : int;
  tv_post_words : int;
}

let emit_func_meta ~(opts : Opts.t) (f : Ir.func) =
  let fname = f.name in
  let md = opts.mdesc in
  let w = md.Mdesc.word_bytes in
  let sp = md.Mdesc.stack_reg in
  let nregs = Mdesc.nregs md in
  let alloc = Regalloc.allocate ~pool:(opts.reg_pool ~fname) f in
  let writes_frame = Array.length f.slots > 0 || alloc.nspills > 0 in
  let btdps =
    match opts.btdp_array_sym with
    | Some _ -> opts.btdp_indices ~fname ~writes_frame
    | None -> []
  in
  let post_words = opts.post_offset_words ~fname in
  let frame = build_frame ~opts f alloc ~btdps ~post_words in
  let ctx =
    {
      f; opts; md; alloc; frame; eb = eb_create (); push_adjust = 0; site = 0;
      ra_sites = []; check_sites = [];
    }
  in
  let eb = ctx.eb in
  (* Prolog traps: jumped over on the legitimate path (Section 4.3). *)
  let traps = opts.prolog_traps ~fname in
  if traps > 0 then begin
    let body = fname ^ ".Lprolog" in
    ins eb (Insn.Jmp (TSym (body, 0)));
    for _ = 1 to traps do
      ins eb Insn.Trap
    done;
    def_sym eb body
  end;
  (* Figure 3 step 4: skip below the post-offset BTRAs. *)
  if post_words > 0 then ins eb (Insn.Binop (Sub, sp, Imm (Abs (w * post_words))));
  if frame.frame_size > 0 then
    ins eb (Insn.Binop (Sub, sp, Imm (Abs frame.frame_size)));
  List.iter
    (fun (r, off) -> ins eb (Insn.Mov (Mem (slot_mem ctx off), Reg r)))
    frame.save_slots;
  (* BTDPs: copy camouflage pointers from the heap array into the frame
     (Section 5.2). *)
  (match (btdps, opts.btdp_array_sym) with
  | [], _ | _, None -> ()
  | _ :: _, Some arr_sym ->
      let chk = md.Mdesc.check_reg and ret = md.Mdesc.ret_reg in
      ins eb (Insn.Mov (Reg chk, Mem (Insn.mem_sym arr_sym 0)));
      List.iter
        (fun (idx, off) ->
          ins eb (Insn.Mov (Reg ret, Mem (Insn.mem ~base:chk ~disp:(w * idx) ())));
          ins eb (Insn.Mov (Mem (slot_mem ctx off), Reg ret)))
        frame.btdp_slots);
  (* Parameters to their homes. *)
  List.iteri
    (fun i r -> if i < f.nparams then store_home ctx i r)
    md.Mdesc.arg_regs;
  for j = nregs to f.nparams - 1 do
    let ret = md.Mdesc.ret_reg in
    if opts.oia then
      ins eb
        (Insn.Mov (Reg ret, Mem (Insn.mem ~base:md.Mdesc.frame_reg ~disp:(w * (j - nregs)) ())))
    else begin
      let disp = frame.frame_size + (w * post_words) + w + (w * (j - nregs)) in
      ins eb (Insn.Mov (Reg ret, Mem (Insn.mem ~base:sp ~disp ())))
    end;
    store_home ctx j ret
  done;
  (* Body. *)
  let rec blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
        def_sym eb (label_sym ctx b.lbl);
        List.iter (emit_instr ctx) b.body;
        let next_lbl = match rest with nb :: _ -> Some nb.Ir.lbl | [] -> None in
        emit_term ctx ~next_lbl b.term;
        blocks rest
  in
  blocks f.blocks;
  assert (ctx.push_adjust = 0);
  let emitted = eb_finish eb ~size:md.Mdesc.insn_size ~name:fname ~booby_trap:false in
  ( {
      emitted with
      Asm.eframe =
        Some
          {
            Asm.frame_size = frame.frame_size;
            post_words;
            ra_sites = List.rev ctx.ra_sites;
            check_sites = List.rev ctx.check_sites;
          };
    },
    {
      tv_assign = alloc.assign;
      tv_ir_off = frame.ir_off;
      tv_spill_off = frame.spill_off;
      tv_save = frame.save_slots;
      tv_frame_size = frame.frame_size;
      tv_post_words = post_words;
    } )

let emit_func ~opts f = fst (emit_func_meta ~opts f)
