(** The compilation pipeline: validate -> emit -> link.

    [compile] with default options is the paper's baseline compiler; R2C is
    [compile] with the options produced by [R2c_core.Pipeline]. *)

exception Invalid_program of Validate.error list

(** [compile ?opts program] — raises {!Invalid_program} on IR errors. *)
val compile : ?opts:Opts.t -> Ir.program -> R2c_machine.Image.t

(** [emit_all ~opts program] — the emitted functions (IR functions plus
    [opts.raw_funcs]), pre-layout; exposed for inspection and tests. *)
val emit_all : opts:Opts.t -> Ir.program -> Asm.emitted list

(** [compile_with_meta ?opts program] — {!compile}, also returning each IR
    function's lowering metadata ({!Emit.tvmeta}, keyed by name) for the
    translation validator. Raw functions carry no metadata. *)
val compile_with_meta :
  ?opts:Opts.t -> Ir.program -> R2c_machine.Image.t * (string * Emit.tvmeta) list
