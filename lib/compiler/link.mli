(** Layout and linking.

    Assigns text addresses (builtin PLT entries first, then the synthesized
    [_start], then all functions in the — possibly shuffled — order from
    {!Opts.t.func_order}), lays out globals in the data section in the —
    possibly shuffled and padded — order from {!Opts.t.global_order},
    resolves every symbolic immediate, and produces the {!Image.t} the
    loader maps.

    ASLR is the [*_slide] fields of {!Opts.t}: a fresh link per process,
    exactly like a PIE load. *)

(** [link ~opts ~main emitted globals] — [emitted] must contain [main] and
    every constructor named in [opts]. *)
val link :
  opts:Opts.t -> main:string -> Asm.emitted list -> Ir.global list -> R2c_machine.Image.t

(** A function body's layout-independent placement data: per-instruction
    byte offsets and the (sparse) relocation list. Placing a templated
    body at a new entry address only touches the instructions on the
    relocation list — the steady-state rerandomization relink is
    relocation-only patching. *)
type template

val template : Asm.emitted -> template

(** [link_templated] — {!link} with precomputed templates (the
    incremental rebuild path caches one per function body). Byte-for-byte
    the same image as {!link} on the same inputs. *)
val link_templated :
  opts:Opts.t ->
  main:string ->
  (Asm.emitted * template) list ->
  Ir.global list ->
  R2c_machine.Image.t
