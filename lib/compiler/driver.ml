let src = Logs.Src.create "r2c.compiler" ~doc:"R2C compiler driver"

module Log = (val Logs.src_log src : Logs.LOG)

exception Invalid_program of Validate.error list

let emit_all ~opts (p : Ir.program) =
  let size = opts.Opts.mdesc.Mdesc.insn_size in
  List.map (fun f -> Emit.emit_func ~opts f) p.funcs
  @ List.map (Asm.of_raw ~size) opts.Opts.raw_funcs

let compile ?(opts = Opts.default) (p : Ir.program) =
  (match Validate.check p with
  | [] -> ()
  | errors -> raise (Invalid_program errors));
  let emitted = emit_all ~opts p in
  let img = Link.link ~opts ~main:p.main emitted p.globals in
  Log.debug (fun m ->
      m "linked %s: %d functions, %d bytes of text, %d bytes of data"
        p.main (List.length img.R2c_machine.Image.funcs) img.R2c_machine.Image.text_len
        img.R2c_machine.Image.data_len);
  img

let compile_with_meta ?(opts = Opts.default) (p : Ir.program) =
  (match Validate.check p with
  | [] -> ()
  | errors -> raise (Invalid_program errors));
  let pairs = List.map (fun f -> Emit.emit_func_meta ~opts f) p.funcs in
  let emitted =
    List.map fst pairs
    @ List.map (Asm.of_raw ~size:opts.Opts.mdesc.Mdesc.insn_size) opts.Opts.raw_funcs
  in
  let img = Link.link ~opts ~main:p.main emitted p.globals in
  let meta =
    List.map2 (fun (f : Ir.func) (_, m) -> (f.name, m)) p.funcs pairs
  in
  (img, meta)
