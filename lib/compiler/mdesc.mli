(** Machine description: the register file, calling convention and encoder
    hooks the back end is parameterized over.

    Every machine-specific constant the emitter, register allocator and
    linker consult lives in this record (in the style of pi-nothing's
    [machine.rkt]); [x86_64] reproduces the historical hard-wired System
    V-flavoured convention byte for byte. A description also names itself:
    {!fingerprint} is part of the incremental-compilation cache key, so
    two profiles producing different code must carry distinct fields (or
    at least distinct [mname]s when they differ only in [insn_size]). *)

type t = {
  mname : string;  (** profile name, part of {!fingerprint} *)
  arg_regs : R2c_machine.Insn.reg list;
      (** argument registers, in passing order; further arguments go on
          the stack *)
  ret_reg : R2c_machine.Insn.reg;
      (** result register, also the primary scratch *)
  scratch_reg : R2c_machine.Insn.reg;  (** secondary scratch *)
  indirect_reg : R2c_machine.Insn.reg;  (** indirect-call target *)
  check_reg : R2c_machine.Insn.reg;
      (** scratch for BTDP prologue copies and post-return checks (must
          not alias [ret_reg]: it is live across the check) *)
  vector_reg : int;  (** vector register index for BTRA batch stores *)
  frame_reg : R2c_machine.Insn.reg;
      (** reserved for offset-invariant addressing *)
  stack_reg : R2c_machine.Insn.reg;
  callee_saved : R2c_machine.Insn.reg list;
      (** the register-allocation pool, in default allocation order *)
  word_bytes : int;
  frame_align : int;  (** stack alignment at call sites, a power of two *)
  plt_entry_bytes : int;  (** stride of builtin (PLT-like) entries *)
  insn_size : R2c_machine.Insn.t -> int;
      (** encoder hook: layout-assigned byte length of one instruction *)
}

(** The System V-flavoured default: arguments in rdi, rsi, rdx, rcx, r8,
    r9; result in rax; rbx, r12-r15 callee-saved; rax, rcx, r10, r11
    scratch; rbp reserved for offset-invariant addressing. *)
val x86_64 : t

(** Same encoder, reversed callee-saved allocation order and a 32-byte
    PLT stride — a second profile for cross-profile diversity and for
    exercising machine-description cache invalidation. *)
val x86_64_r15 : t

(** Number of register-passed arguments. *)
val nregs : t -> int

(** Digest of the declarative fields plus [mname]; the machine component
    of the incremental cache key. *)
val fingerprint : t -> string
