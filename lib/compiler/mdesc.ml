open R2c_machine

type t = {
  mname : string;
  arg_regs : Insn.reg list;
  ret_reg : Insn.reg;
  scratch_reg : Insn.reg;
  indirect_reg : Insn.reg;
  check_reg : Insn.reg;
  vector_reg : int;
  frame_reg : Insn.reg;
  stack_reg : Insn.reg;
  callee_saved : Insn.reg list;
  word_bytes : int;
  frame_align : int;
  plt_entry_bytes : int;
  insn_size : Insn.t -> int;
}

let x86_64 =
  {
    mname = "x86_64";
    arg_regs = Insn.[ RDI; RSI; RDX; RCX; R8; R9 ];
    ret_reg = Insn.RAX;
    scratch_reg = Insn.RCX;
    indirect_reg = Insn.R10;
    check_reg = Insn.R11;
    vector_reg = 13;
    frame_reg = Insn.RBP;
    stack_reg = Insn.RSP;
    callee_saved = Insn.[ RBX; R12; R13; R14; R15 ];
    word_bytes = 8;
    frame_align = 16;
    plt_entry_bytes = 16;
    insn_size = Insn.size;
  }

(* A second calling-convention profile over the same encoder: allocation
   order of the callee-saved file reversed and a wider PLT stride. Same
   instruction set, different images — the cross-profile diversity axis
   the cache key must separate. *)
let x86_64_r15 =
  {
    x86_64 with
    mname = "x86_64-r15";
    callee_saved = Insn.[ R15; R14; R13; R12; RBX ];
    plt_entry_bytes = 32;
  }

let nregs t = List.length t.arg_regs

let fingerprint t =
  (* The encoder hook is a closure, so the fingerprint hashes the
     declarative fields plus the profile name; profiles with a custom
     [insn_size] must carry a distinct [mname]. *)
  let scalars =
    ( t.arg_regs,
      t.ret_reg,
      t.scratch_reg,
      t.indirect_reg,
      t.check_reg,
      t.vector_reg,
      t.frame_reg,
      t.stack_reg,
      t.callee_saved,
      t.word_bytes,
      t.frame_align,
      t.plt_entry_bytes )
  in
  Digest.to_hex (Digest.string (t.mname ^ "\x00" ^ Marshal.to_string scalars []))
