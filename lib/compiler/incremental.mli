(** Per-function incremental code generation with a content-keyed cache.

    A cache entry is one emitted function body (plus its translation-
    validation metadata) keyed by the triple the emission actually
    depends on: the IR function's digest, a digest of every
    diversification decision the {!Opts.t} hooks will hand this function
    (the "dconfig slice" — materialized by probing the hooks, so
    program-wide streams like BTRA planning invalidate exactly the
    functions whose plans moved), and the {!Mdesc.t} fingerprint.
    [build] recompiles only cache misses, fanned over
    [R2c_util.Parallel], and re-links; linking is relocation-only work,
    so a rebuild whose bodies all hit costs layout + resolution and
    nothing else.

    Contract (enforced by the rerand gate and the differential test
    battery): the image returned by [build] is byte-identical to a cold
    {!Driver.compile} under the same options — the cache can only make
    compilation faster, never different.

    The [salt] covers everything the slice probes cannot see without
    running the register allocator: callers hash the diversification
    config and per-function body seed into it (see
    [R2c_core.Pipeline.compile_incremental]). Thread-safety: [build] may
    be called concurrently from multiple domains sharing one [t]; the
    cache phases are mutex-protected and emission itself runs unlocked. *)

type stats = {
  hits : int;
  misses : int;
  missed : string list;  (** names of the recompiled functions, in program order *)
}

type t

val create : unit -> t
val clear : t -> unit

(** Resident entries. *)
val size : t -> int

(** Cumulative hit/miss traffic since [create]/[clear] ([missed] is
    empty). *)
val totals : t -> stats

(** Content digest of one IR function. *)
val func_digest : Ir.func -> string

(** Digest of the diversification slice [opts] assigns to [f] under
    [salt]. *)
val slice_digest : opts:Opts.t -> salt:string -> Ir.func -> string

(** [build ?jobs ?key_token t ~opts ~salt p] — the linked image and this
    build's cache traffic. Raises {!Driver.Invalid_program} like the
    cold driver.

    [key_token], when given, asserts that every emission-relevant
    decision in [opts] is a pure function of the token — so consecutive
    builds of the physically-same program under the same token may reuse
    the previous build's cache keys without re-probing the hooks. The
    steady-state rotation path ({!R2c_core.Pipeline.compile_incremental})
    passes its coordinate salt here, because rotations only override
    link-level hooks; hand-assembled [opts] values must omit it. *)
val build :
  ?jobs:int ->
  ?key_token:string ->
  t ->
  opts:Opts.t ->
  salt:string ->
  Ir.program ->
  R2c_machine.Image.t * stats

(** [build_with_meta] — [build] plus per-function lowering metadata for
    the translation validator. *)
val build_with_meta :
  ?jobs:int ->
  ?key_token:string ->
  t ->
  opts:Opts.t ->
  salt:string ->
  Ir.program ->
  R2c_machine.Image.t * (string * Emit.tvmeta) list * stats

(** Test hook: plant [payload] in the cache under the key [f] gets with
    [opts]/[salt], so the next [build] hits a deliberately wrong entry.
    The stale-cache regression tests use this to prove the equality gate
    and the translation validator both catch cache corruption. *)
val poison :
  t -> opts:Opts.t -> salt:string -> Ir.func -> payload:(Asm.emitted * Emit.tvmeta) -> unit
