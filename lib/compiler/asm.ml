type frame_meta = {
  frame_size : int;
  post_words : int;
  ra_sites : (string * int) list;
  check_sites : string list;
}

type emitted = {
  ename : string;
  insns : R2c_machine.Insn.t array;
  esizes : int array;
  local_syms : (string * int) list;
  ebooby_trap : bool;
  eframe : frame_meta option;
}

let byte_size e = Array.fold_left ( + ) 0 e.esizes

let sizes_of ?(size = R2c_machine.Insn.size) insns = Array.map size insns

let of_raw ?size (r : Opts.raw_func) =
  let insns = Array.of_list r.rinsns in
  {
    ename = r.rname;
    insns;
    esizes = sizes_of ?size insns;
    local_syms = [];
    ebooby_trap = r.rbooby_trap;
    eframe = None;
  }

let to_string e =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s:\n" e.ename);
  let off = ref 0 in
  Array.iteri
    (fun idx i ->
      List.iter
        (fun (s, o) -> if o = !off then Buffer.add_string buf (Printf.sprintf "%s:\n" s))
        e.local_syms;
      Buffer.add_string buf
        (Printf.sprintf "  +%-4d %s\n" !off (R2c_machine.Insn.to_string i));
      off := !off + e.esizes.(idx))
    e.insns;
  Buffer.contents buf
