(** Code-generation options: the hook points that diversifying passes fill.

    The compiler itself is deterministic; every randomized decision of
    Sections 4 and 5 — register pool order, stack slot permutation, prolog
    traps, NOP insertion, BTRA call-site plans, BTDP instrumentation,
    function and global order — arrives through this record. [default]
    performs no diversification, which is the paper's baseline ("the same
    compiler version and flags but with R2C disabled"). *)

(** How a call site writes its BTRAs (Sections 5.1, 5.1.2 and 7.1).
    [Push_naive] is the kR^X-style decoy scheme the paper argues against:
    only decoys are pre-pushed and the return address appears solely when
    the call instruction writes it — opening the race window of
    Section 5.1. [Sse_setup]/[Avx512_setup] are the 16-/64-byte variants
    discussed in Section 7.1. *)
type btra_setup = Push_setup | Push_naive | Sse_setup | Avx_setup | Avx512_setup

(** A call-site BTRA plan. Symbols are (name, byte offset) pairs resolved
    at link time; they point into booby-trap functions. [pre] must have
    even length (stack alignment, Section 5.1); for direct calls [post]
    must have exactly the callee's post-offset length. [array_global] names
    the call-site-specific data array of Figure 4 (required for
    [Avx_setup]); its contents must be, low to high: post (padded to make
    the total a multiple of 4), return-address symbol, pre. *)
type callsite_plan = {
  pre_syms : (string * int) list;
  post_syms : (string * int) list;
  setup : btra_setup;
  array_global : string option;
  avx_pad : int;  (** extra decoy words below [post] to pad the batch width *)
  dummy_sym : (string * int) option;
      (** [Push_naive] only: the decoy occupying the return-address slot
          until the call overwrites it *)
  check_sym : (int * (string * int)) option;
      (** Section 7.3's hardening: after the call returns, verify that the
          [i]-th pre-BTRA still holds the given value; a mismatch means an
          attacker has been probing return-address candidates — trap. *)
}

(** What the compiler knows about a call site's callee. *)
type callee_kind =
  | Known of string  (** direct call to compiled code *)
  | Unknown_indirect  (** through a function pointer *)
  | Lib of string  (** builtin — unprotected code, Section 7.4.1 *)

(** A function of raw machine code appended at layout (booby-trap
    functions). *)
type raw_func = {
  rname : string;
  rinsns : R2c_machine.Insn.t list;
  rbooby_trap : bool;
}

type t = {
  mdesc : Mdesc.t;
      (** the machine description code generation and layout consult for
          every register-file / calling-convention / encoder constant *)
  reg_pool : fname:string -> R2c_machine.Insn.reg list;
      (** allocatable (callee-saved) registers, in allocation order; must
          draw from [mdesc.callee_saved] *)
  slot_perm : fname:string -> n:int -> int array;
      (** permutation of frame-slot order (stack slot randomization) *)
  slot_pad_bytes : fname:string -> int;
      (** extra frame padding, a multiple of 8 *)
  prolog_traps : fname:string -> int;
      (** trap instructions jumped over at function entry (Section 4.3) *)
  post_offset_words : fname:string -> int;
      (** the callee-chosen number of BTRAs after the return address *)
  nops_before_call : fname:string -> site:int -> int list;
      (** NOP widths inserted at the call site (Section 4.3) *)
  callsite_btra : fname:string -> site:int -> callee:callee_kind -> callsite_plan option;
  btdp_indices : fname:string -> writes_frame:bool -> int list;
      (** per-function BTDP pointer-array indices; one stack slot each *)
  btdp_array_sym : string option;
      (** data-section slot holding the heap pointer-array address *)
  func_alias : string -> string;
      (** code-pointer substitution: the symbol actually materialized when a
          function's address is taken (identity by default). Defense models
          use it for Readactor-style code-pointer hiding: the alias names a
          trampoline, so leaked function pointers reveal only trampoline
          addresses. Applies to [Ir.Func] operands and to function
          [Sym_addr] initialisers. *)
  oia : bool;
      (** offset-invariant addressing (Section 5.1.1): the caller prepares
          the frame pointer for callees with stack arguments. Mandatory
          whenever BTRAs are enabled; measurable alone. *)
  func_order : string list -> string list;
      (** text-section function order (function shuffling) *)
  global_order : Ir.global list -> (Ir.global * int) list;
      (** data-section order with post-padding (global shuffling) *)
  func_pad : fname:string -> int;  (** padding bytes after a function *)
  raw_funcs : raw_func list;
  text_perm : R2c_machine.Perm.t;
  shadow_stack : bool;
      (** deploy with backward-edge CFI (a hardware/runtime shadow stack):
          every return is checked against the true call chain — the
          Section 8.2 enforcement comparison *)
  constructors : string list;  (** run before [main], in order *)
  extra_globals : Ir.global list;
      (** synthesized data (BTRA AVX arrays, BTDP array slot, decoys) *)
  stack_bytes : int;
  text_slide : int;
  data_slide : int;
  heap_slide : int;
}

(** No diversification; text mapped read-execute (the pre-XOM legacy
    baseline); zero slides. *)
val default : t

(** Fisher–Yates-free identity permutation helper. *)
val identity_perm : int -> int array

(** [with_mdesc md t] — [t] retargeted at [md]: the machine description
    replaced and the register pool re-seated on [md]'s callee-saved file
    (in its declared order; diversifying pipelines re-shuffle on top). *)
val with_mdesc : Mdesc.t -> t -> t
