(** Instruction selection and function emission.

    Lowers one IR function to M64 code, weaving in every diversification the
    {!Opts.t} requests:

    - prolog traps jumped over at entry (Section 4.3);
    - the callee-side BTRA post-offset around the frame (Figure 3, steps 4
      and 5);
    - BTDP stores from the heap pointer array into permuted frame slots
      (Section 5.2);
    - frame-slot permutation and padding (stack slot randomization);
    - call-site NOPs, and the BTRA push or AVX2 setup sequences of
      Figures 3 and 4, including the stack-alignment parity rules of
      Section 5.1;
    - offset-invariant addressing for stack arguments (Section 5.1.1).

    The System V-flavoured convention: arguments in rdi, rsi, rdx, rcx, r8,
    r9, further arguments on the stack; result in rax; rbx and r12-r15
    callee-saved (the register-allocation pool); rax, rcx, r10, r11
    scratch; rbp reserved for offset-invariant addressing. *)

val arg_regs : R2c_machine.Insn.reg list

(** Per-function lowering metadata for the translation validator
    ({!module:R2c_analysis} [.Tval]): the regalloc var->home mapping and
    the (possibly permuted) frame layout. Offsets are rsp-relative with
    the frame fully established (after the post-offset and frame-size
    subtractions). *)
type tvmeta = {
  tv_assign : Regalloc.assignment array;  (** indexed by var *)
  tv_ir_off : int array;  (** IR slot index -> frame offset *)
  tv_spill_off : int array;  (** spill slot index -> frame offset *)
  tv_save : (R2c_machine.Insn.reg * int) list;  (** callee-saved homes *)
  tv_frame_size : int;
  tv_post_words : int;  (** BTRA post-offset words above the frame *)
}

(** [emit_func ~opts f] — emit one function. Raises [Invalid_argument] on
    unsupported combinations (BTRAs on stack-argument call sites without
    offset-invariant addressing — the Section 7.4.2 limitation). *)
val emit_func : opts:Opts.t -> Ir.func -> Asm.emitted

(** [emit_func_meta ~opts f] — {!emit_func} plus the lowering metadata. *)
val emit_func_meta : opts:Opts.t -> Ir.func -> Asm.emitted * tvmeta
