open R2c_machine

let plt_entry_bytes = 16

let link ~(opts : Opts.t) ~main (emitted : Asm.emitted list) (globals : Ir.global list) =
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let define name addr =
    if Hashtbl.mem symbols name then invalid_arg ("link: duplicate symbol " ^ name);
    Hashtbl.replace symbols name addr
  in
  let text_base = Addr.text_base + opts.text_slide in
  let builtin_addrs = Hashtbl.create 16 in
  List.iteri
    (fun i name ->
      let a = text_base + (i * plt_entry_bytes) in
      Hashtbl.replace builtin_addrs a name;
      define name a)
    Image.builtin_names;
  (* _start: run constructors, call main, halt with main's result. *)
  let start_insns =
    List.map (fun c -> Insn.Call (TSym (c, 0))) opts.constructors
    @ [ Insn.Call (TSym (main, 0)); Insn.Halt ]
  in
  let start_base = text_base + (List.length Image.builtin_names * plt_entry_bytes) in
  define "_start" start_base;
  let start_len =
    List.fold_left (fun acc i -> acc + Insn.size i) 0 start_insns
  in
  (* Function placement. *)
  let by_name = Hashtbl.create 256 in
  List.iter
    (fun (e : Asm.emitted) ->
      if Hashtbl.mem by_name e.ename then invalid_arg ("link: duplicate function " ^ e.ename);
      Hashtbl.replace by_name e.ename e)
    emitted;
  let names = List.map (fun (e : Asm.emitted) -> e.Asm.ename) emitted in
  let order = opts.func_order names in
  if List.length order <> List.length names then
    invalid_arg "link: func_order changed the number of functions";
  List.iter
    (fun n -> if not (Hashtbl.mem by_name n) then invalid_arg ("link: func_order invented " ^ n))
    order;
  let cursor = ref (start_base + start_len) in
  let placed =
    List.map
      (fun name ->
        let e = Hashtbl.find by_name name in
        let entry = !cursor in
        define e.Asm.ename entry;
        List.iter (fun (s, off) -> define s (entry + off)) e.Asm.local_syms;
        let len = Asm.byte_size e in
        cursor := !cursor + len + max 0 (opts.func_pad ~fname:name);
        (e, entry, len))
      order
  in
  let text_len = !cursor - text_base in
  if text_base + text_len > Addr.text_limit then invalid_arg "link: text region overflow";
  (* Data layout. *)
  let data_base = Addr.data_base + opts.data_slide in
  let ordered_globals = opts.global_order (globals @ opts.extra_globals) in
  let dcursor = ref data_base in
  let global_addr =
    List.map
      (fun ((g : Ir.global), pad) ->
        let addr = Addr.align_up !dcursor ~align:16 in
        define g.gname addr;
        dcursor := addr + g.gsize + max 0 pad;
        (g, addr))
      ordered_globals
  in
  let data_len = max Addr.page_size (!dcursor - data_base) in
  if data_base + data_len > Addr.data_limit then invalid_arg "link: data region overflow";
  (* Resolution. *)
  let resolve s off =
    match Hashtbl.find_opt symbols s with
    | Some a -> a + off
    | None -> invalid_arg ("link: undefined symbol " ^ s)
  in
  let code = Hashtbl.create 4096 in
  let code_list = ref [] in
  let add_insn addr insn len =
    Hashtbl.replace code addr (insn, len);
    code_list := (addr, insn, len) :: !code_list
  in
  let place_insns base insns =
    List.fold_left
      (fun addr insn ->
        (* Length from the pre-resolution form: layout and execution must
           agree even when resolution changes an immediate's width. *)
        let len = Insn.size insn in
        let resolved = Insn.map_syms resolve insn in
        assert (Insn.is_resolved resolved);
        add_insn addr resolved len;
        addr + len)
      base insns
  in
  let (_ : int) = place_insns start_base start_insns in
  let unwind_sites = Hashtbl.create 1024 in
  let checked_sites = Hashtbl.create 64 in
  let unwind_rows = ref [] in
  let funcs =
    List.map
      (fun ((e : Asm.emitted), entry, len) ->
        let (_ : int) = place_insns entry (Array.to_list e.insns) in
        (match e.eframe with
        | Some meta ->
            unwind_rows := (entry, len, meta.Asm.frame_size, meta.Asm.post_words) :: !unwind_rows;
            List.iter
              (fun (ra, words) -> Hashtbl.replace unwind_sites (resolve ra 0) words)
              meta.Asm.ra_sites;
            List.iter
              (fun ra -> Hashtbl.replace checked_sites (resolve ra 0) ())
              meta.Asm.check_sites
        | None -> ());
        { Image.fname = e.ename; entry; code_len = len; is_booby_trap = e.ebooby_trap })
      placed
  in
  let unwind_funcs =
    let arr = Array.of_list !unwind_rows in
    Array.sort compare arr;
    arr
  in
  (* Global initialisers. Function symbols go through the code-pointer
     alias (CPH trampolines for defense models). *)
  let is_func = Hashtbl.mem by_name in
  let alias s = if is_func s then opts.func_alias s else s in
  let data_words = ref [] in
  let data_bytes = ref [] in
  (* Symbolic initialisers resolving into text are the sanctioned
     code-pointer population the static auditor's hygiene rule checks
     readable memory against. *)
  let code_ptr_slots = Hashtbl.create 64 in
  let add_word addr v =
    data_words := (addr, v) :: !data_words;
    if v >= text_base && v < text_base + text_len then Hashtbl.replace code_ptr_slots addr ()
  in
  List.iter
    (fun ((g : Ir.global), addr) ->
      let (_ : int) =
        List.fold_left
          (fun off item ->
            match item with
            | Ir.Word v ->
                data_words := (addr + off, v) :: !data_words;
                off + 8
            | Ir.Sym_addr s ->
                add_word (addr + off) (resolve (alias s) 0);
                off + 8
            | Ir.Sym_addr_off (s, o) ->
                add_word (addr + off) (resolve s o);
                off + 8
            | Ir.Str s ->
                data_bytes := (addr + off, s) :: !data_bytes;
                off + String.length s)
          0 g.ginit
      in
      ())
    global_addr;
  let code_list =
    let arr = Array.of_list !code_list in
    Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
    arr
  in
  {
    Image.code;
    code_list;
    text_base;
    text_len;
    text_perm = opts.text_perm;
    data_base;
    data_len;
    data_words = List.rev !data_words;
    data_bytes = List.rev !data_bytes;
    symbols;
    funcs;
    entry = start_base;
    builtin_addrs;
    stack_bytes = opts.stack_bytes;
    heap_base = Addr.heap_base + opts.heap_slide;
    unwind_funcs;
    unwind_sites;
    checked_sites;
    code_ptr_slots;
    shadow_stack = opts.shadow_stack;
  }
