open R2c_machine

(* A relocation template: everything layout-independent about one emitted
   function's placement. Instruction byte offsets are fixed at emission
   time ([Asm.esizes]), so only the instructions listed in [t_reloc]
   (those carrying symbolic operands) need any work when the function
   lands at a new entry address — the rest are placed as-is. Computed
   once per cache entry by the incremental rebuild path; the cold linker
   derives the same information on the fly. *)
type template = {
  t_len : int;  (* total encoded length, [Asm.byte_size] precomputed *)
  t_offs : int array;  (* byte offset of each instruction *)
  t_reloc : int array;  (* indices of unresolved instructions, ascending *)
  t_syms : string array;  (* distinct external symbols referenced, for
                             the eager undefined-symbol check; the
                             body's own labels are defined at placement
                             and need no check *)
}

let template (e : Asm.emitted) =
  let n = Array.length e.insns in
  let offs = Array.make n 0 in
  let off = ref 0 in
  let reloc = ref [] in
  let syms = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    offs.(i) <- !off;
    off := !off + e.esizes.(i);
    if not (Insn.is_resolved e.insns.(i)) then begin
      reloc := i :: !reloc;
      ignore
        (Insn.map_syms
           (fun s o ->
             Hashtbl.replace syms s ();
             o)
           e.insns.(i))
    end
  done;
  Hashtbl.remove syms e.ename;
  List.iter (fun (s, _) -> Hashtbl.remove syms s) e.local_syms;
  {
    t_len = !off;
    t_offs = offs;
    t_reloc = Array.of_list (List.rev !reloc);
    t_syms = Array.of_seq (Seq.map fst (Hashtbl.to_seq syms));
  }

let link_gen ~(opts : Opts.t) ~main (pairs : (Asm.emitted * template) list)
    (globals : Ir.global list) =
  let md = opts.mdesc in
  let plt_entry_bytes = md.Mdesc.plt_entry_bytes in
  let insn_size = md.Mdesc.insn_size in
  let npairs = List.length pairs in
  (* Sized for the full symbol population (functions, local labels,
     globals) up front: at fleet scale the default-doubling resizes are a
     measurable slice of the per-rotation relink. *)
  let symbols : (string, int) Hashtbl.t = Hashtbl.create (max 1024 (8 * npairs)) in
  let define name addr =
    if Hashtbl.mem symbols name then invalid_arg ("link: duplicate symbol " ^ name);
    Hashtbl.replace symbols name addr
  in
  let text_base = Addr.text_base + opts.text_slide in
  let builtin_addrs = Hashtbl.create 16 in
  List.iteri
    (fun i name ->
      let a = text_base + (i * plt_entry_bytes) in
      Hashtbl.replace builtin_addrs a name;
      define name a)
    Image.builtin_names;
  (* _start: run constructors, call main, halt with main's result. *)
  let start_insns =
    List.map (fun c -> Insn.Call (TSym (c, 0))) opts.constructors
    @ [ Insn.Call (TSym (main, 0)); Insn.Halt ]
  in
  let start_base = text_base + (List.length Image.builtin_names * plt_entry_bytes) in
  define "_start" start_base;
  let start_len =
    List.fold_left (fun acc i -> acc + insn_size i) 0 start_insns
  in
  (* Function placement. *)
  let by_name = Hashtbl.create (max 256 (2 * npairs)) in
  List.iter
    (fun ((e : Asm.emitted), _) ->
      if Hashtbl.mem by_name e.ename then invalid_arg ("link: duplicate function " ^ e.ename);
      Hashtbl.replace by_name e.ename e)
    pairs;
  let tmpl_of = Hashtbl.create (max 256 (2 * npairs)) in
  List.iter (fun ((e : Asm.emitted), t) -> Hashtbl.replace tmpl_of e.Asm.ename t) pairs;
  let names = List.map (fun ((e : Asm.emitted), _) -> e.Asm.ename) pairs in
  let order = opts.func_order names in
  if List.length order <> List.length names then
    invalid_arg "link: func_order changed the number of functions";
  List.iter
    (fun n -> if not (Hashtbl.mem by_name n) then invalid_arg ("link: func_order invented " ^ n))
    order;
  let cursor = ref (start_base + start_len) in
  let placed =
    List.map
      (fun name ->
        let e : Asm.emitted = Hashtbl.find by_name name in
        let t : template = Hashtbl.find tmpl_of name in
        let entry = !cursor in
        define e.Asm.ename entry;
        List.iter (fun (s, off) -> define s (entry + off)) e.Asm.local_syms;
        let len = t.t_len in
        cursor := !cursor + len + max 0 (opts.func_pad ~fname:name);
        (e, t, entry, len))
      order
  in
  let text_len = !cursor - text_base in
  if text_base + text_len > Addr.text_limit then invalid_arg "link: text region overflow";
  (* Data layout. *)
  let data_base = Addr.data_base + opts.data_slide in
  let ordered_globals = opts.global_order (globals @ opts.extra_globals) in
  let dcursor = ref data_base in
  let global_addr =
    List.map
      (fun ((g : Ir.global), pad) ->
        let addr = Addr.align_up !dcursor ~align:16 in
        define g.gname addr;
        dcursor := addr + g.gsize + max 0 pad;
        (g, addr))
      ordered_globals
  in
  let data_len = max Addr.page_size (!dcursor - data_base) in
  if data_base + data_len > Addr.data_limit then invalid_arg "link: data region overflow";
  (* Resolution. *)
  let resolve s off =
    match Hashtbl.find_opt symbols s with
    | Some a -> a + off
    | None -> invalid_arg ("link: undefined symbol " ^ s)
  in
  (* Undefined references are a link-time error even though the
     per-instruction fill below is deferred: check every distinct symbol
     each body references (plus _start's own) against the now-complete
     table. *)
  List.iter (fun insn -> ignore (Insn.map_syms resolve insn)) start_insns;
  List.iter
    (fun ((_ : Asm.emitted), (t : template), _, _) ->
      Array.iter (fun s -> ignore (resolve s 0)) t.t_syms)
    placed;
  (* Text placement, in ascending address order: _start first, then the
     functions at their assigned entries. Lengths come from the
     emission-time encoder measurement ([Asm.esizes]): layout and
     execution must agree even when resolution changes an immediate's
     width. Only instructions on a template's relocation list touch the
     symbol table; everything else is placed as-is. The whole-text fill
     is deferred until the image is loaded, fingerprinted or audited —
     layout and symbol resolution above are the only eager per-rotation
     work, which is what makes the steady-state incremental relink
     relocation-only. *)
  let code_list =
    lazy
      (let total_insns =
         List.fold_left
           (fun acc ((e : Asm.emitted), _, _, _) -> acc + Array.length e.insns)
           (List.length start_insns) placed
       in
       let arr = Array.make total_insns (0, Insn.Halt, 0) in
       let slot = ref 0 in
       let place addr insn len =
         arr.(!slot) <- (addr, insn, len);
         incr slot
       in
       let (_ : int) =
         List.fold_left
           (fun addr insn ->
             let len = insn_size insn in
             let resolved = Insn.map_syms resolve insn in
             assert (Insn.is_resolved resolved);
             place addr resolved len;
             addr + len)
           start_base start_insns
       in
       let place_emitted (e : Asm.emitted) (t : template) entry =
         let ri = ref 0 in
         let nr = Array.length t.t_reloc in
         Array.iteri
           (fun i insn ->
             let insn =
               if !ri < nr && t.t_reloc.(!ri) = i then begin
                 incr ri;
                 let resolved = Insn.map_syms resolve insn in
                 assert (Insn.is_resolved resolved);
                 resolved
               end
               else insn
             in
             place (entry + t.t_offs.(i)) insn e.esizes.(i))
           e.insns
       in
       List.iter
         (fun ((e : Asm.emitted), t, entry, _len) -> place_emitted e t entry)
         placed;
       assert (!slot = total_insns);
       arr)
  in
  let unwind_sites = Hashtbl.create (max 1024 (4 * npairs)) in
  let checked_sites = Hashtbl.create 64 in
  let unwind_rows = ref [] in
  let funcs =
    List.map
      (fun ((e : Asm.emitted), _, entry, len) ->
        (match e.eframe with
        | Some meta ->
            unwind_rows := (entry, len, meta.Asm.frame_size, meta.Asm.post_words) :: !unwind_rows;
            List.iter
              (fun (ra, words) -> Hashtbl.replace unwind_sites (resolve ra 0) words)
              meta.Asm.ra_sites;
            List.iter
              (fun ra -> Hashtbl.replace checked_sites (resolve ra 0) ())
              meta.Asm.check_sites
        | None -> ());
        { Image.fname = e.ename; entry; code_len = len; is_booby_trap = e.ebooby_trap })
      placed
  in
  let unwind_funcs =
    let arr = Array.of_list !unwind_rows in
    Array.sort
      (fun (e1, _, _, _) (e2, _, _, _) -> Int.compare (e1 : int) e2)
      arr;
    arr
  in
  (* Global initialisers. Function symbols go through the code-pointer
     alias (CPH trampolines for defense models). The per-word
     materialization is deferred like the text fill — BTRA decoy arrays
     make the initialiser volume proportional to program size — but
     undefined references stay an eager link error: check each symbolic
     initialiser against the completed table now (membership only, no
     list building). *)
  let is_func = Hashtbl.mem by_name in
  let alias s = if is_func s then opts.func_alias s else s in
  let check s = if not (Hashtbl.mem symbols s) then invalid_arg ("link: undefined symbol " ^ s) in
  List.iter
    (fun ((g : Ir.global), _) ->
      List.iter
        (function
          | Ir.Sym_addr s -> check (alias s)
          | Ir.Sym_addr_off (s, _) -> check s
          | Ir.Word _ | Ir.Str _ -> ())
        g.ginit)
    global_addr;
  let data_init =
    lazy
      (let data_words = ref [] in
       let data_bytes = ref [] in
       (* Symbolic initialisers resolving into text are the sanctioned
          code-pointer population the static auditor's hygiene rule checks
          readable memory against. *)
       let code_ptr_slots = Hashtbl.create 64 in
       let add_word addr v =
         data_words := (addr, v) :: !data_words;
         if v >= text_base && v < text_base + text_len then
           Hashtbl.replace code_ptr_slots addr ()
       in
       List.iter
         (fun ((g : Ir.global), addr) ->
           let (_ : int) =
             List.fold_left
               (fun off item ->
                 match item with
                 | Ir.Word v ->
                     data_words := (addr + off, v) :: !data_words;
                     off + 8
                 | Ir.Sym_addr s ->
                     add_word (addr + off) (resolve (alias s) 0);
                     off + 8
                 | Ir.Sym_addr_off (s, o) ->
                     add_word (addr + off) (resolve s o);
                     off + 8
                 | Ir.Str s ->
                     data_bytes := (addr + off, s) :: !data_bytes;
                     off + String.length s)
               0 g.ginit
           in
           ())
         global_addr;
       (List.rev !data_words, List.rev !data_bytes, code_ptr_slots))
  in
  let code =
    lazy
      (let arr = Lazy.force code_list in
       let h = Hashtbl.create (max 4096 (2 * Array.length arr)) in
       Array.iter (fun (addr, insn, len) -> Hashtbl.replace h addr (insn, len)) arr;
       h)
  in
  {
    Image.code;
    code_list;
    text_base;
    text_len;
    text_perm = opts.text_perm;
    data_base;
    data_len;
    data_words = lazy (let w, _, _ = Lazy.force data_init in w);
    data_bytes = lazy (let _, b, _ = Lazy.force data_init in b);
    symbols;
    funcs;
    entry = start_base;
    builtin_addrs;
    stack_bytes = opts.stack_bytes;
    heap_base = Addr.heap_base + opts.heap_slide;
    unwind_funcs;
    unwind_sites;
    checked_sites;
    code_ptr_slots = (lazy (let _, _, s = Lazy.force data_init in s));
    shadow_stack = opts.shadow_stack;
  }

let link ~opts ~main emitted globals =
  link_gen ~opts ~main (List.map (fun e -> (e, template e)) emitted) globals

let link_templated ~opts ~main pairs globals = link_gen ~opts ~main pairs globals
