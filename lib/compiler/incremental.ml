(* Per-function incremental code generation.

   The cache maps (IR function digest, diversification-slice digest,
   machine description) to the emitted body and its lowering metadata. A
   rebuild recompiles only functions whose key changed, fans the misses
   over the Domain pool, and re-links — layout and symbol resolution are
   the only whole-image work, so a steady-state rerandomization (layout
   coordinates change, bodies do not) is relocation-only.

   The slice digest does not hash the [Opts.t] closures themselves (they
   are opaque); it hashes their *outputs* at every point this function's
   emission will consult them: register pool, prolog traps, frame
   padding, the callee-side post offset, BTDP indices for both frame
   classes, alias substitutions for address-taken functions, and the
   per-call-site NOP and BTRA plans. BTRA planning draws from one shared
   stream across the whole program, so an IR edit in one function can
   shift the plans of another — probing the materialized plans (rather
   than the seed that produced them) makes the key catch exactly that.
   Decisions that cannot be materialized without running the register
   allocator (the frame-slot permutation's length) are covered by the
   caller's [salt], which must change whenever the per-function
   diversification seed does. *)

type stats = { hits : int; misses : int; missed : string list }

type entry = Asm.emitted * Emit.tvmeta * Link.template

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable total_hits : int;
  mutable total_misses : int;
  (* Key memoization: valid only while the same instrumented program is
     rebuilt under the same caller-asserted key token — the steady-state
     rotation path, where only link-level options change between builds.
     Builds without a token always recompute. *)
  mutable memo_ctx : (string * Ir.program) option;
  memo_keys : (string, string) Hashtbl.t;
  mutable validated : Ir.program option;
}

let create () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 4096;
    total_hits = 0;
    total_misses = 0;
    memo_ctx = None;
    memo_keys = Hashtbl.create 4096;
    validated = None;
  }

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      Hashtbl.reset t.memo_keys;
      t.memo_ctx <- None;
      t.validated <- None)

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let totals t =
  Mutex.protect t.lock (fun () ->
      { hits = t.total_hits; misses = t.total_misses; missed = [] })

let func_digest (f : Ir.func) = Digest.string (Marshal.to_string f [])

let add_operand ~(opts : Opts.t) b (op : Ir.operand) =
  match op with
  | Ir.Func fn ->
      Buffer.add_string b (opts.func_alias fn);
      Buffer.add_char b '|'
  | Ir.Const _ | Ir.Var _ | Ir.Global _ -> ()

let slice_digest ~(opts : Opts.t) ~salt (f : Ir.func) =
  let fname = f.name in
  let b = Buffer.create 512 in
  let str s = Buffer.add_string b s; Buffer.add_char b ';' in
  let int i = Buffer.add_string b (string_of_int i); Buffer.add_char b ';' in
  str salt;
  str (Mdesc.fingerprint opts.mdesc);
  int (if opts.oia then 1 else 0);
  str (match opts.btdp_array_sym with Some s -> s | None -> "");
  str (Marshal.to_string (opts.reg_pool ~fname) []);
  int (opts.prolog_traps ~fname);
  int (opts.slot_pad_bytes ~fname);
  int (opts.post_offset_words ~fname);
  str (Marshal.to_string (opts.btdp_indices ~fname ~writes_frame:true) []);
  str (Marshal.to_string (opts.btdp_indices ~fname ~writes_frame:false) []);
  (* Alias substitutions for every address-taken function operand. *)
  let site = ref 0 in
  List.iter
    (fun (blk : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          (match i with
          | Ir.Mov (_, op) -> add_operand ~opts b op
          | Ir.Binop (_, _, a, c) | Ir.Cmp (_, _, a, c) ->
              add_operand ~opts b a;
              add_operand ~opts b c
          | Ir.Load (_, base, _) | Ir.Load8 (_, base, _) -> add_operand ~opts b base
          | Ir.Store (base, _, v) | Ir.Store8 (base, _, v) ->
              add_operand ~opts b base;
              add_operand ~opts b v
          | Ir.Slot_addr _ -> ()
          | Ir.Call (_, callee, args) ->
              List.iter (add_operand ~opts b) args;
              let kind =
                match callee with
                | Ir.Direct name -> Opts.Known name
                | Ir.Indirect op ->
                    add_operand ~opts b op;
                    Opts.Unknown_indirect
                | Ir.Builtin name -> Opts.Lib name
              in
              (* Per-site decisions, numbered exactly as the emitter
                 numbers them. *)
              str (Marshal.to_string (opts.nops_before_call ~fname ~site:!site) []);
              str
                (Marshal.to_string
                   (opts.callsite_btra ~fname ~site:!site ~callee:kind)
                   []);
              incr site);
          ())
        blk.body;
      match blk.term with
      | Ir.Ret (Some op) | Ir.Cond_br (op, _, _) -> add_operand ~opts b op
      | Ir.Ret None | Ir.Br _ -> ())
    f.blocks;
  Digest.string (Buffer.contents b)

let key ~opts ~salt f =
  Digest.to_hex (func_digest f) ^ Digest.to_hex (slice_digest ~opts ~salt f)

let poison t ~opts ~salt f ~payload =
  let e, m = payload in
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.table (key ~opts ~salt f) (e, m, Link.template e);
      (* The planted entry must survive key memoization. *)
      t.memo_ctx <- None;
      Hashtbl.reset t.memo_keys)

let keys_of t ~key_token ~opts ~salt (p : Ir.program) =
  let fresh () =
    let ks = List.map (fun f -> (f, key ~opts ~salt f)) p.funcs in
    (match key_token with
    | None ->
        Hashtbl.reset t.memo_keys;
        t.memo_ctx <- None
    | Some tok ->
        Hashtbl.reset t.memo_keys;
        List.iter (fun ((f : Ir.func), k) -> Hashtbl.replace t.memo_keys f.name k) ks;
        t.memo_ctx <- Some (tok, p));
    ks
  in
  match (t.memo_ctx, key_token) with
  | Some (tok, q), Some tok' when String.equal tok tok' && q == p ->
      List.map (fun (f : Ir.func) -> (f, Hashtbl.find t.memo_keys f.name)) p.funcs
  | _ -> fresh ()

let build_with_meta ?jobs ?key_token t ~(opts : Opts.t) ~salt (p : Ir.program) =
  (match t.validated with
  | Some q when q == p -> ()
  | _ -> (
      match Validate.check p with
      | [] -> t.validated <- Some p
      | errors -> raise (Driver.Invalid_program errors)));
  (* Phase 1 (under the lock): classify against the cache. *)
  let keyed = Mutex.protect t.lock (fun () -> keys_of t ~key_token ~opts ~salt p) in
  let looked =
    Mutex.protect t.lock (fun () ->
        List.map (fun (f, k) -> (f, k, Hashtbl.find_opt t.table k)) keyed)
  in
  let misses = List.filter_map (fun (f, k, e) -> if e = None then Some (f, k) else None) looked in
  (* Phase 2 (outside the lock): emit only the invalidated functions,
     fanned over the Domain pool. Emission only reads [opts]. *)
  let compiled =
    R2c_util.Parallel.map ?jobs
      (fun ((f : Ir.func), k) ->
        let e, m = Emit.emit_func_meta ~opts f in
        (f.name, k, (e, m, Link.template e)))
      misses
  in
  (* Phase 3 (under the lock): install results, count traffic. *)
  let fresh = Hashtbl.create (max 16 (List.length compiled)) in
  List.iter (fun (name, k, e) -> Hashtbl.replace fresh name (k, e)) compiled;
  let stats =
    Mutex.protect t.lock (fun () ->
        List.iter (fun (_, k, e) -> Hashtbl.replace t.table k e) compiled;
        let hits = List.length keyed - List.length misses in
        t.total_hits <- t.total_hits + hits;
        t.total_misses <- t.total_misses + List.length misses;
        {
          hits;
          misses = List.length misses;
          missed = List.map (fun ((f : Ir.func), _) -> f.name) misses;
        })
  in
  let entries =
    List.map
      (fun ((f : Ir.func), k, cached) ->
        match cached with
        | Some e -> e
        | None -> (
            match Hashtbl.find_opt fresh f.name with
            | Some (k', e) when String.equal k k' -> e
            | _ -> assert false))
      looked
  in
  let size = opts.mdesc.Mdesc.insn_size in
  let pairs =
    List.map (fun (e, _, t) -> (e, t)) entries
    @ List.map
        (fun r ->
          let e = Asm.of_raw ~size r in
          (e, Link.template e))
        opts.Opts.raw_funcs
  in
  let img = Link.link_templated ~opts ~main:p.main pairs p.globals in
  let meta = List.map2 (fun (f : Ir.func) (_, m, _) -> (f.name, m)) p.funcs entries in
  (img, meta, stats)

let build ?jobs ?key_token t ~opts ~salt p =
  let img, _, stats = build_with_meta ?jobs ?key_token t ~opts ~salt p in
  (img, stats)
