(** Emitted (pre-link) functions: machine instructions plus local symbol
    definitions (block labels and return-address symbols) as byte offsets
    from the function entry. *)

(** Unwind metadata, the .eh_frame analogue of Section 7.2.4: enough to
    walk a stack through BTRA pre/post offsets and stack-argument pushes. *)
type frame_meta = {
  frame_size : int;
  post_words : int;  (** callee-side BTRA skip *)
  ra_sites : (string * int) list;
      (** per call site: return-address symbol and the number of words
          between the RA slot and the caller's frame base (pre-BTRAs plus
          pushed stack arguments and padding) *)
  check_sites : string list;
      (** return-address symbols of call sites carrying a Section 7.3
          post-return booby-trap check *)
}

type emitted = {
  ename : string;
  insns : R2c_machine.Insn.t array;
  esizes : int array;
      (** layout-assigned byte length per instruction, fixed at emission
          by the machine description's encoder hook — the linker places
          and the CPU advances by these, never by re-measuring *)
  local_syms : (string * int) list;  (** symbol -> byte offset *)
  ebooby_trap : bool;
  eframe : frame_meta option;  (** None for raw functions *)
}

(** [byte_size e] — total encoded length. *)
val byte_size : emitted -> int

(** [sizes_of ?size insns] — per-instruction lengths under an encoder
    hook (default {!R2c_machine.Insn.size}). *)
val sizes_of : ?size:(R2c_machine.Insn.t -> int) -> R2c_machine.Insn.t array -> int array

(** [of_raw ?size r] — wrap a raw machine-code function, measuring with
    the given encoder hook. *)
val of_raw : ?size:(R2c_machine.Insn.t -> int) -> Opts.raw_func -> emitted

val to_string : emitted -> string
