(** Trace-level delta debugging: shrink a recorded trace while a
    fidelity oracle keeps passing.

    An instance of {!Shrink.Greedy} (the same greedy driver the fuzzer
    uses on IR programs) over {!Trace.t}: weight is {!Trace.size},
    validity is structural (dictionary indices in range, loop counts
    positive), and the keep-predicate re-replays the candidate with
    {!Replayer.check} — an edit survives only if the reduced trace still
    reproduces the recorded profile within tolerance. Edits go
    big-to-small:

    - drop every span of one builtin family (prints, allocations,
      [sensitive] probes are pure observations — replay performs the
      calls itself, the trace need not carry them);
    - drop empty [read_input] spans (reads against a drained queue);
    - elide surviving [read_input] spans to [Feed] references into a
      deduplicated payload dictionary (allocation/timestamp chatter
      gone, repeated request bodies interned once);
    - collapse periodic event runs into [Loop] nodes (steady-state
      request traffic becomes one iteration and a count);
    - split a family in half when the whole family would not go.

    Every oracle call recompiles and re-runs the candidate, so the
    budget counts oracle calls, not structural checks. *)

type report = {
  raw_bytes : int;  (** {!Trace.size} before reduction *)
  reduced_bytes : int;
  raw_spans : int;
  reduced_spans : int;  (** after loop expansion — recorded calls represented *)
  checks : int;  (** fidelity-oracle runs spent *)
  kept : int;  (** accepted edits *)
}

(** Fraction of event/dictionary bytes removed, in [0, 1]. *)
val ratio : report -> float

val report_json : report -> R2c_obs.Json.t

(** [run ?max_checks ?tolerance t] — the reduced trace and the report.
    [t] must itself pass the oracle; if nothing can be removed it is
    returned unchanged. Default [max_checks]: 200 (each check is a full
    compile-and-run). *)
val run : ?max_checks:int -> ?tolerance:float -> Trace.t -> Trace.t * report
