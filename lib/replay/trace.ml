module J = R2c_obs.Json
module Cost = R2c_machine.Cost
module Dconfig = R2c_core.Dconfig

type span = {
  builtin : string;
  rdi : int;
  rsi : int;
  rax : int;
  data : string option;
  cycles : float;
  insns : int;
}

type event = Span of span | Feed of int | Loop of event list * int

type expect = {
  e_cycles : float;
  e_insns : int;
  e_accesses : int;
  e_misses : int;
  e_exit : int;
  e_output_len : int;
  e_output_hash : int64;
}

type meta = {
  workload : string;
  config : string;
  seed : int;
  machine : string;
  fuel : int;
}

type t = {
  meta : meta;
  program : Ir.program;
  dict : string array;
  events : event list;
  expect : expect;
}

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
   the digest is written into artifacts that CI re-checks. *)
let output_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let feeds t =
  let out = ref [] in
  let rec go ev =
    match ev with
    | Span s -> if s.builtin = "read_input" && s.rax > 0 then
        (match s.data with Some d -> out := d :: !out | None -> ())
    | Feed i -> out := t.dict.(i) :: !out
    | Loop (body, n) ->
        for _ = 1 to n do
          List.iter go body
        done
  in
  List.iter go t.events;
  List.rev !out

let span_count t =
  let rec go acc = function
    | Span _ | Feed _ -> acc + 1
    | Loop (body, n) -> acc + (n * List.fold_left go 0 body)
  in
  List.fold_left go 0 t.events

(* --- serialization ------------------------------------------------- *)

let span_json s =
  let base =
    [
      ("b", J.Str s.builtin);
      ("rdi", J.Int s.rdi);
      ("rsi", J.Int s.rsi);
      ("rax", J.Int s.rax);
    ]
  in
  let data = match s.data with None -> [] | Some d -> [ ("d", J.Str d) ] in
  J.Obj (base @ data @ [ ("cyc", J.Float s.cycles); ("ins", J.Int s.insns) ])

let rec event_json = function
  | Span s -> span_json s
  | Feed i -> J.Obj [ ("f", J.Int i) ]
  | Loop (body, n) ->
      J.Obj [ ("n", J.Int n); ("do", J.Arr (List.map event_json body)) ]

let event_lines t = List.map (fun e -> J.to_string (event_json e)) t.events

let dict_json t = J.Arr (Array.to_list (Array.map (fun s -> J.Str s) t.dict))

(* Reduction is measured on what reduction can change: the event stream
   and the payload dictionary. Header and program ride along unchanged. *)
let size t =
  let ev = List.fold_left (fun a l -> a + String.length l + 1) 0 (event_lines t) in
  ev + String.length (J.to_string (dict_json t))

let header_json t =
  J.Obj
    [
      ("r2cr", J.Int 1);
      ("workload", J.Str t.meta.workload);
      ("config", J.Str t.meta.config);
      ("seed", J.Int t.meta.seed);
      ("machine", J.Str t.meta.machine);
      ("fuel", J.Int t.meta.fuel);
      ( "expect",
        J.Obj
          [
            ("cycles", J.Float t.expect.e_cycles);
            ("insns", J.Int t.expect.e_insns);
            ("accesses", J.Int t.expect.e_accesses);
            ("misses", J.Int t.expect.e_misses);
            ("exit", J.Int t.expect.e_exit);
            ("output_len", J.Int t.expect.e_output_len);
            ("output_hash", J.Str (Printf.sprintf "%016Lx" t.expect.e_output_hash));
          ] );
      ("dict", dict_json t);
    ]

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (J.to_string (header_json t));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (J.to_string (J.Obj [ ("program", J.Str (Text.to_string t.program)) ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (event_lines t);
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let get_int what = function
  | J.Int i -> i
  | _ -> fail "%s: expected integer" what

let get_num what = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> fail "%s: expected number" what

let get_str what = function
  | J.Str s -> s
  | _ -> fail "%s: expected string" what

let field what j k =
  match J.member k j with
  | Some v -> v
  | None -> fail "%s: missing field %S" what k

let span_of_json j =
  {
    builtin = get_str "span.b" (field "span" j "b");
    rdi = get_int "span.rdi" (field "span" j "rdi");
    rsi = get_int "span.rsi" (field "span" j "rsi");
    rax = get_int "span.rax" (field "span" j "rax");
    data = (match J.member "d" j with Some v -> Some (get_str "span.d" v) | None -> None);
    cycles = get_num "span.cyc" (field "span" j "cyc");
    insns = get_int "span.ins" (field "span" j "ins");
  }

let rec event_of_json j =
  match J.member "f" j with
  | Some v -> Feed (get_int "feed" v)
  | None -> (
      match J.member "do" j with
      | Some (J.Arr body) ->
          Loop (List.map event_of_json body, get_int "loop.n" (field "loop" j "n"))
      | Some _ -> fail "loop: 'do' must be an array"
      | None -> Span (span_of_json j))

let expect_of_json j =
  let f k = field "expect" j k in
  let hash =
    let s = get_str "expect.output_hash" (f "output_hash") in
    try Int64.of_string ("0x" ^ s) with _ -> fail "expect.output_hash: bad hex"
  in
  {
    e_cycles = get_num "expect.cycles" (f "cycles");
    e_insns = get_int "expect.insns" (f "insns");
    e_accesses = get_int "expect.accesses" (f "accesses");
    e_misses = get_int "expect.misses" (f "misses");
    e_exit = get_int "expect.exit" (f "exit");
    e_output_len = get_int "expect.output_len" (f "output_len");
    e_output_hash = hash;
  }

(* Structural validity: everything [feeds]/[size] index into must be in
   range. The reducer re-checks this on every candidate. *)
let structurally_valid t =
  let dlen = Array.length t.dict in
  let rec ok = function
    | Span _ -> true
    | Feed i -> i >= 0 && i < dlen
    | Loop (body, n) -> n >= 1 && body <> [] && List.for_all ok body
  in
  List.for_all ok t.events

let parse_line what line =
  match J.parse line with
  | Ok v -> v
  | Error e -> fail "%s: %s" what e

let of_string s =
  match
    let lines =
      String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | header :: program :: events ->
        let hj = parse_line "header" header in
        (match J.member "r2cr" hj with
        | Some (J.Int 1) -> ()
        | _ -> fail "header: not an r2cr v1 file");
        let meta =
          {
            workload = get_str "workload" (field "header" hj "workload");
            config = get_str "config" (field "header" hj "config");
            seed = get_int "seed" (field "header" hj "seed");
            machine = get_str "machine" (field "header" hj "machine");
            fuel = get_int "fuel" (field "header" hj "fuel");
          }
        in
        let expect = expect_of_json (field "header" hj "expect") in
        let dict =
          match field "header" hj "dict" with
          | J.Arr xs -> Array.of_list (List.map (get_str "dict entry") xs)
          | _ -> fail "header: dict must be an array"
        in
        let pj = parse_line "program" program in
        let ptext = get_str "program" (field "program line" pj "program") in
        let prog =
          match Text.parse ptext with
          | Ok p -> p
          | Error e -> fail "program: %s" (Text.error_to_string e)
        in
        (match Validate.check prog with
        | [] -> ()
        | e :: _ -> fail "program: %s" (Validate.error_to_string e));
        let events =
          List.map (fun l -> event_of_json (parse_line "event" l)) events
        in
        let t = { meta; program = prog; dict; events; expect } in
        if not (structurally_valid t) then
          fail "events: dictionary index out of range or bad loop";
        t
    | _ -> fail "truncated: expected header and program lines"
  with
  | t -> Ok t
  | exception Bad m -> Error ("r2cr: " ^ m)

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error e -> Error ("r2cr: " ^ e)

let files ~dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".r2cr")
      |> List.sort compare
      |> List.map (Filename.concat dir)
  | exception Sys_error _ -> []

(* --- rebuild under the recorded coordinates ------------------------ *)

let config_of_name = function
  | "baseline" -> Dconfig.baseline
  | "full" -> Dconfig.full ()
  | "full-push" -> Dconfig.full ~setup:Dconfig.Push ()
  | "full-checked" -> Dconfig.full_checked
  | "push" -> Dconfig.btra_push_only
  | "avx" -> Dconfig.btra_avx_only
  | "btdp" -> Dconfig.btdp_only
  | "prolog" -> Dconfig.prolog_only
  | "layout" -> Dconfig.layout_only
  | "oia" -> Dconfig.oia_only
  | other -> failwith ("r2cr: unknown config " ^ other)

let cost_profile meta =
  match
    List.find_opt
      (fun p ->
        String.lowercase_ascii p.Cost.name = String.lowercase_ascii meta.machine)
      Cost.all_machines
  with
  | Some p -> p
  | None -> failwith ("r2cr: unknown machine " ^ meta.machine)

let build meta program =
  if meta.config = "baseline" then R2c_compiler.Driver.compile program
  else R2c_core.Pipeline.compile ~seed:meta.seed (config_of_name meta.config) program
