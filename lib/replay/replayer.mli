(** Standalone replay of a [.r2cr] trace with a profile-fidelity gate.

    Replay recompiles the embedded program under the recorded
    diversification coordinates ({!Trace.build} — same config, same seed,
    same cost model), stubs the environment by pre-queueing the recorded
    [read_input] responses ({!Trace.feeds}), and runs to completion on
    the fast interpreter tier (no hooks attached). The run is fully
    deterministic, so the measured profile is compared against the
    recorded {!Trace.expect}: cycles, instructions and icache traffic
    must agree within a relative tolerance (default 1%), exit code and
    output digest exactly. A reduced trace only survives reduction if it
    still passes this gate, so every [.r2cr] in the corpus is a
    regression benchmark for interpreter, compiler and cost model at
    once. *)

type run = {
  r_cycles : float;
  r_insns : int;
  r_accesses : int;
  r_misses : int;
  r_exit : int;
  r_output_len : int;
  r_output_hash : int64;
}

type verdict = {
  result : run;
  failures : string list;  (** empty means the gate passed *)
}

val default_tolerance : float

(** [execute ?image t] — recompile, feed, run; the measured profile.
    Errors on fuel exhaustion or fault. With [?image] the recompile is
    skipped and the given image runs instead — the caller asserts it was
    built at the trace's recorded coordinates (the incremental-rebuild
    regression path substitutes a cache-backed rebuild here and lets the
    fidelity gate vouch for it). *)
val execute : ?image:R2c_machine.Image.t -> Trace.t -> (run, string) result

(** [check ?tolerance t] — {!execute} plus the fidelity comparison
    against [t.expect]. Counter comparisons are relative
    ([|got - want| / max 1 |want|]); exit code, output length and output
    hash are exact. *)
val check :
  ?tolerance:float -> ?image:R2c_machine.Image.t -> Trace.t -> (verdict, string) result

(** JSON fragment for reports: the measured counters. *)
val run_json : run -> R2c_obs.Json.t
