module J = R2c_obs.Json
module Shrink = R2c_fuzz.Shrink
open Trace

type report = {
  raw_bytes : int;
  reduced_bytes : int;
  raw_spans : int;
  reduced_spans : int;
  checks : int;
  kept : int;
}

let ratio r =
  if r.raw_bytes <= 0 then 0.0
  else 1.0 -. (float_of_int r.reduced_bytes /. float_of_int r.raw_bytes)

let report_json r =
  J.Obj
    [
      ("raw_bytes", J.Int r.raw_bytes);
      ("reduced_bytes", J.Int r.reduced_bytes);
      ("reduction", J.Float (ratio r));
      ("raw_spans", J.Int r.raw_spans);
      ("reduced_spans", J.Int r.reduced_spans);
      ("oracle_checks", J.Int r.checks);
      ("edits_kept", J.Int r.kept);
    ]

(* --- tree helpers -------------------------------------------------- *)

(* Keep events whose spans satisfy [pred]; loops with emptied bodies
   disappear too. *)
let filter_spans pred t =
  let rec go evs =
    List.filter_map
      (fun ev ->
        match ev with
        | Span s -> if pred s then Some ev else None
        | Feed _ -> Some ev
        | Loop (body, n) -> (
            match go body with [] -> None | body' -> Some (Loop (body', n))))
      evs
  in
  { t with events = go t.events }

let builtin_names t =
  let seen = Hashtbl.create 8 in
  let rec go = function
    | Span s -> if not (Hashtbl.mem seen s.builtin) then Hashtbl.add seen s.builtin ()
    | Feed _ -> ()
    | Loop (body, _) -> List.iter go body
  in
  List.iter go t.events;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

(* Count spans of one builtin, loop bodies counted once (edits operate on
   the tree, not the expansion). *)
let family_size t name =
  let rec go acc = function
    | Span s -> if s.builtin = name then acc + 1 else acc
    | Feed _ -> acc
    | Loop (body, _) -> List.fold_left go acc body
  in
  List.fold_left go 0 t.events

(* Drop the spans of [name] whose in-order ordinal is in [lo, hi). *)
let drop_family_range t name lo hi =
  let ord = ref 0 in
  filter_spans
    (fun s ->
      if s.builtin <> name then true
      else begin
        let i = !ord in
        incr ord;
        not (i >= lo && i < hi)
      end)
    t

(* Replace data-carrying read_input spans with dictionary references:
   the payload is all replay needs, and repeated request bodies intern
   to one dictionary slot. *)
let elide_reads t =
  let tbl = Hashtbl.create 16 in
  let entries = ref [] in
  let count = ref 0 in
  Array.iter
    (fun s ->
      Hashtbl.replace tbl s !count;
      entries := s :: !entries;
      incr count)
    t.dict;
  let intern s =
    match Hashtbl.find_opt tbl s with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add tbl s i;
        entries := s :: !entries;
        incr count;
        i
  in
  let rec go = function
    | Span s when s.builtin = "read_input" && s.rax > 0 -> (
        match s.data with Some d -> Feed (intern d) | None -> Span s)
    | Loop (body, n) -> Loop (List.map go body, n)
    | ev -> ev
  in
  let events = List.map go t.events in
  { t with events; dict = Array.of_list (List.rev !entries) }

(* Greedy periodic-run detection over the top-level stream: at each
   position take the (period, repeats) pair covering the most events and
   fold it into a [Loop]. Period is bounded; steady-state request loops
   have short periods once reads are elided. *)
let collapse_loops ?(max_period = 64) t =
  let arr = Array.of_list t.events in
  let n = Array.length arr in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let best = ref None in
    for p = 1 to min max_period ((n - !i) / 2) do
      let reps = ref 1 in
      let continue_ = ref true in
      while !continue_ do
        let s = !i + (!reps * p) in
        if s + p <= n then begin
          let eq = ref true in
          for k = 0 to p - 1 do
            if arr.(!i + k) <> arr.(s + k) then eq := false
          done;
          if !eq then incr reps else continue_ := false
        end
        else continue_ := false
      done;
      if !reps >= 2 then
        match !best with
        | Some (bp, br) when bp * br >= p * !reps -> ()
        | _ -> best := Some (p, !reps)
    done;
    match !best with
    | Some (p, reps) ->
        out := Loop (Array.to_list (Array.sub arr !i p), reps) :: !out;
        i := !i + (p * reps)
    | None ->
        out := arr.(!i) :: !out;
        incr i
  done;
  { t with events = List.rev !out }

(* Drop dictionary entries no Feed references and renumber. *)
let compact_dict t =
  let used = Hashtbl.create 16 in
  let rec mark = function
    | Feed i -> Hashtbl.replace used i ()
    | Loop (body, _) -> List.iter mark body
    | Span _ -> ()
  in
  List.iter mark t.events;
  let remap = Hashtbl.create 16 in
  let entries = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem used i then begin
        Hashtbl.add remap i !next;
        entries := s :: !entries;
        incr next
      end)
    t.dict;
  let rec go = function
    | Feed i -> Feed (Hashtbl.find remap i)
    | Loop (body, n) -> Loop (List.map go body, n)
    | ev -> ev
  in
  { t with events = List.map go t.events; dict = Array.of_list (List.rev !entries) }

(* --- candidate enumeration, big-to-small --------------------------- *)

let candidates t =
  let fams = builtin_names t in
  let whole_families =
    List.concat_map
      (fun name ->
        if name = "read_input" then []
        else [ (fun () -> filter_spans (fun s -> s.builtin <> name) t) ])
      fams
  in
  let empty_reads =
    [ (fun () -> filter_spans (fun s -> not (s.builtin = "read_input" && s.rax <= 0)) t) ]
  in
  let elide = [ (fun () -> elide_reads t) ] in
  let collapse = [ (fun () -> collapse_loops t) ] in
  let gc = [ (fun () -> compact_dict t) ] in
  let halves =
    List.concat_map
      (fun name ->
        if name = "read_input" then []
        else
          let k = family_size t name in
          if k < 2 then []
          else
            [
              (fun () -> drop_family_range t name 0 (k / 2));
              (fun () -> drop_family_range t name (k / 2) k);
            ])
      fams
  in
  whole_families @ empty_reads @ elide @ collapse @ gc @ halves

let run ?(max_checks = 200) ?tolerance t0 =
  let keep t =
    match Replayer.check ?tolerance t with
    | Ok v -> v.Replayer.failures = []
    | Error _ -> false
  in
  let reduced, stats =
    Shrink.Greedy.fix ~max_checks ~weight:Trace.size ~candidates
      ~valid:Trace.structurally_valid ~keep t0
  in
  ( reduced,
    {
      raw_bytes = Trace.size t0;
      reduced_bytes = Trace.size reduced;
      raw_spans = Trace.span_count t0;
      reduced_spans = Trace.span_count reduced;
      checks = stats.Shrink.Greedy.checks;
      kept = stats.Shrink.Greedy.kept;
    } )
