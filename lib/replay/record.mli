(** Workload recorder: captures every builtin-boundary crossing of a run
    into a {!Trace.t}.

    The recorder attaches two hooks. The builtin tap
    ({!R2c_machine.Cpu.set_builtin_tap}) fires once per intercepted
    builtin call — after the call's effect, so argument registers,
    result register and delivered [read_input] bytes are all observable —
    and is the source of {!Trace.span}s. A per-step {!R2c_machine.Cpu.observer}
    rides along tee'd over any observer already attached (a profiler, a
    trace ring), counting retired instructions as a cross-check that the
    recorded expectation matches what the hooks saw. *)

type recorder

val create : unit -> recorder

(** [attach r cpu] — install the builtin tap and tee the step counter
    over any existing observer (which keeps firing first). Note the
    observer hook forces the reference interpreter tier; the builtin tap
    alone would not. *)
val attach : recorder -> R2c_machine.Cpu.t -> unit

(** Recorded spans, oldest first. *)
val spans : recorder -> Trace.span list

(** Instructions seen by the tee'd per-step observer. *)
val steps : recorder -> int

(** [capture ?fuel ?prepare ~meta ~program ~inputs ()] — compile
    [program] under [meta]'s coordinates, queue [inputs] for
    [read_input], run to completion with the recorder attached, and
    return the raw (unreduced) trace: one [Span] per builtin call and an
    {!Trace.expect} snapshot of the finished run's counters. [prepare]
    runs after load and before the recorder attaches (attach a profiler
    there to exercise observer coexistence). Errors on fuel exhaustion or
    a fault — a run that did not halt cleanly is not a benchmark. *)
val capture :
  ?fuel:int ->
  ?prepare:(R2c_machine.Cpu.t -> unit) ->
  meta:Trace.meta ->
  program:Ir.program ->
  inputs:string list ->
  unit ->
  (Trace.t, string) result
