(** Recorded workload traces and the standalone [.r2cr] benchmark format.

    A trace is what the recorder captured at the environment boundary of
    one diversified run: every intercepted builtin call ([print_int],
    [read_input], [malloc], [sensitive], ...) with its argument registers,
    result, delivered payload and simulated-cycle timestamp, plus the
    profile the run is expected to reproduce (cycles, instructions,
    icache traffic, output digest). The trace embeds the IR program and
    the exact diversification coordinates ([config], [seed], [machine]),
    so a [.r2cr] file is a self-contained benchmark: replaying it
    recompiles the program under the same coordinates, stubs the
    environment with the recorded responses, and asserts the profile
    matches — the Wasm-R3 record/reduce/replay recipe applied to R2C's
    simulated machine. *)

(** One intercepted builtin call. [rdi]/[rsi] are the System-V argument
    registers at entry, [rax] the result; [data] carries the delivered
    bytes for a successful [read_input]. [cycles]/[insns] are the CPU
    counters right after the call — simulated time, so captures are
    deterministic. *)
type span = {
  builtin : string;
  rdi : int;
  rsi : int;
  rax : int;
  data : string option;
  cycles : float;
  insns : int;
}

(** The reduced event language. [Span] is a verbatim recorded call.
    [Feed i] is a reduced [read_input] span: only the delivered payload
    (interned in the dictionary) matters for re-execution, so the
    registers and timestamps are dropped. [Loop (body, n)] is [n]
    consecutive repetitions of [body] — periodic request traffic
    collapses to one iteration and a count. *)
type event = Span of span | Feed of int | Loop of event list * int

(** The profile the replayed run must reproduce. Counter fields are
    checked within a relative tolerance by {!Replayer.check}; exit code
    and output digest are exact. *)
type expect = {
  e_cycles : float;
  e_insns : int;
  e_accesses : int;  (** icache accesses *)
  e_misses : int;  (** icache misses *)
  e_exit : int;
  e_output_len : int;
  e_output_hash : int64;  (** FNV-1a 64 of the full output *)
}

(** Diversification coordinates: enough to rebuild the exact image. The
    [config] and [machine] names use the [r2cc] vocabulary ([full],
    [full-checked], [baseline], ... / cost-model names). *)
type meta = {
  workload : string;
  config : string;
  seed : int;
  machine : string;
  fuel : int;
}

type t = {
  meta : meta;
  program : Ir.program;
  dict : string array;  (** interned [Feed] payloads *)
  events : event list;
  expect : expect;
}

(** [output_hash s] — FNV-1a 64-bit digest, the output fingerprint stored
    in {!expect}. *)
val output_hash : string -> int64

(** [feeds t] — the [read_input] payload sequence the replayer queues,
    in delivery order: recorded data from successful [read_input] spans,
    dictionary payloads from [Feed]s, loops expanded. Empty reads and
    non-input builtins contribute nothing (the replayed program performs
    those calls itself). *)
val feeds : t -> string list

(** [span_count t] — recorded builtin calls after loop expansion
    ([Feed]s count as one each: they stand for a recorded call). *)
val span_count : t -> int

(** [size t] — serialized size in bytes of the event stream plus
    dictionary. This is the weight the reducer minimizes and the
    denominator of the reduction-ratio gate; the fixed header and
    embedded program are excluded so the ratio measures trace shrinkage,
    not program size. *)
val size : t -> int

(** [structurally_valid t] — dictionary indices in range, loop counts
    positive, loop bodies nonempty. Checked on load and on every reducer
    candidate. *)
val structurally_valid : t -> bool

(** [.r2cr] serialization: JSONL. Line 1 is the header (version, meta,
    expect, dictionary), line 2 the embedded IR program text, then one
    line per event. *)
val to_string : t -> string

(** [of_string s] — parse and structurally validate a [.r2cr] document
    (the embedded program must pass [Validate.check], dictionary indices
    must be in range, loop counts positive). *)
val of_string : string -> (t, string) result

val save : path:string -> t -> unit
val load : string -> (t, string) result

(** [files ~dir] — paths of the [*.r2cr] files under [dir], sorted. *)
val files : dir:string -> string list

(** [config_of_name name] — the diversification config for an
    [r2cc]-style preset name. Raises [Failure] on unknown names. *)
val config_of_name : string -> R2c_core.Dconfig.t

(** [cost_profile meta] — the cost model named by [meta.machine]
    (case-insensitive). Raises [Failure] on unknown names. *)
val cost_profile : meta -> R2c_machine.Cost.profile

(** [build meta program] — recompile under the recorded coordinates:
    [Driver.compile] for [baseline], the diversifying [Pipeline.compile]
    with [meta.seed] otherwise. Record and replay both go through this,
    which is what makes the replayed image bit-identical to the recorded
    one. *)
val build : meta -> Ir.program -> R2c_machine.Image.t
