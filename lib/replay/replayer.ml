module Cpu = R2c_machine.Cpu
module Icache = R2c_machine.Icache
module Loader = R2c_machine.Loader
module Fault = R2c_machine.Fault
module J = R2c_obs.Json

type run = {
  r_cycles : float;
  r_insns : int;
  r_accesses : int;
  r_misses : int;
  r_exit : int;
  r_output_len : int;
  r_output_hash : int64;
}

type verdict = { result : run; failures : string list }

let default_tolerance = 0.01

let execute ?image (t : Trace.t) =
  let img = match image with Some i -> i | None -> Trace.build t.meta t.program in
  let cpu = Loader.load ~profile:(Trace.cost_profile t.meta) img in
  List.iter (Cpu.push_input cpu) (Trace.feeds t);
  match Cpu.run cpu ~fuel:t.meta.fuel with
  | Cpu.Halted ->
      let output = Cpu.output cpu in
      Ok
        {
          r_cycles = cpu.Cpu.cycles;
          r_insns = cpu.Cpu.insns;
          r_accesses = Icache.accesses cpu.Cpu.icache;
          r_misses = Icache.misses cpu.Cpu.icache;
          r_exit = cpu.Cpu.exit_code;
          r_output_len = String.length output;
          r_output_hash = Trace.output_hash output;
        }
  | Cpu.Fuel_exhausted -> Error "replay: fuel exhausted before halt"
  | Cpu.Faulted f -> Error ("replay: faulted: " ^ Fault.to_string f)

let rel got want = Float.abs (got -. want) /. Float.max 1.0 (Float.abs want)

let check ?(tolerance = default_tolerance) ?image (t : Trace.t) =
  match execute ?image t with
  | Error e -> Error e
  | Ok r ->
      let e = t.expect in
      let fails = ref [] in
      let within what got want =
        let d = rel got want in
        if d > tolerance then
          fails :=
            Printf.sprintf "%s: got %.1f, recorded %.1f (%.2f%% > %.2f%%)" what
              got want (100. *. d) (100. *. tolerance)
            :: !fails
      in
      within "cycles" r.r_cycles e.Trace.e_cycles;
      within "insns" (float_of_int r.r_insns) (float_of_int e.Trace.e_insns);
      within "icache_accesses"
        (float_of_int r.r_accesses)
        (float_of_int e.Trace.e_accesses);
      within "icache_misses"
        (float_of_int r.r_misses)
        (float_of_int e.Trace.e_misses);
      if r.r_exit <> e.Trace.e_exit then
        fails :=
          Printf.sprintf "exit: got %d, recorded %d" r.r_exit e.Trace.e_exit
          :: !fails;
      if
        r.r_output_len <> e.Trace.e_output_len
        || r.r_output_hash <> e.Trace.e_output_hash
      then fails := "output: digest differs from recording" :: !fails;
      Ok { result = r; failures = List.rev !fails }

let run_json r =
  J.Obj
    [
      ("cycles", J.Float r.r_cycles);
      ("insns", J.Int r.r_insns);
      ("icache_accesses", J.Int r.r_accesses);
      ("icache_misses", J.Int r.r_misses);
      ("exit", J.Int r.r_exit);
      ("output_len", J.Int r.r_output_len);
      ("output_hash", J.Str (Printf.sprintf "%016Lx" r.r_output_hash));
    ]
