module Cpu = R2c_machine.Cpu
module Insn = R2c_machine.Insn
module Mem = R2c_machine.Mem
module Icache = R2c_machine.Icache
module Loader = R2c_machine.Loader
module Fault = R2c_machine.Fault
module Sink = R2c_obs.Sink

type recorder = { mutable spans_rev : Trace.span list; mutable steps : int }

let create () = { spans_rev = []; steps = 0 }

let attach r cpu =
  let tap (cpu : Cpu.t) builtin =
    let rdi = Cpu.reg_get cpu Insn.RDI in
    let rsi = Cpu.reg_get cpu Insn.RSI in
    let rax = Cpu.reg_get cpu Insn.RAX in
    (* The tap fires after the builtin's effect, so for a successful
       read_input the delivered bytes are already in guest memory at rdi
       and rax holds the count — read them back verbatim. *)
    let data =
      if builtin = "read_input" && rax > 0 then begin
        let b = Bytes.create rax in
        for i = 0 to rax - 1 do
          Bytes.set b i (Char.chr (Mem.read_u8 cpu.Cpu.mem (rdi + i) land 0xff))
        done;
        Some (Bytes.to_string b)
      end
      else None
    in
    r.spans_rev <-
      {
        Trace.builtin;
        rdi;
        rsi;
        rax;
        data;
        cycles = cpu.Cpu.cycles;
        insns = cpu.Cpu.insns;
      }
      :: r.spans_rev
  in
  Cpu.set_builtin_tap cpu (Some tap);
  let count ~rip:_ ~cycles:_ ~misses:_ ~called:_ = r.steps <- r.steps + 1 in
  let obs =
    match cpu.Cpu.observer with
    | None -> count
    | Some prev -> Sink.tee [ prev; count ]
  in
  Cpu.set_observer cpu (Some obs)

let spans r = List.rev r.spans_rev
let steps r = r.steps

let capture ?(fuel = 200_000_000) ?(prepare = fun (_ : Cpu.t) -> ()) ~meta
    ~program ~inputs () =
  let meta = { meta with Trace.fuel } in
  let img = Trace.build meta program in
  let cpu = Loader.load ~profile:(Trace.cost_profile meta) img in
  List.iter (Cpu.push_input cpu) inputs;
  prepare cpu;
  let r = create () in
  attach r cpu;
  match Cpu.run cpu ~fuel with
  | Cpu.Halted ->
      let output = Cpu.output cpu in
      let expect =
        {
          Trace.e_cycles = cpu.Cpu.cycles;
          e_insns = cpu.Cpu.insns;
          e_accesses = Icache.accesses cpu.Cpu.icache;
          e_misses = Icache.misses cpu.Cpu.icache;
          e_exit = cpu.Cpu.exit_code;
          e_output_len = String.length output;
          e_output_hash = Trace.output_hash output;
        }
      in
      Ok
        {
          Trace.meta;
          program;
          dict = [||];
          events = List.rev_map (fun s -> Trace.Span s) r.spans_rev;
          expect;
        }
  | Cpu.Fuel_exhausted -> Error "record: fuel exhausted before halt"
  | Cpu.Faulted f -> Error ("record: faulted: " ^ Fault.to_string f)
