(* Fixed-size Domain pool with deterministic task->result ordering.

   Work items are claimed through one atomic counter (dynamic load
   balancing — cheap items do not pin a domain while an expensive one
   runs), but every result lands in its item's slot, so [map] returns
   exactly what [List.map] would, in the same order, whatever the
   schedule. Exceptions are captured per item and re-raised in item
   order once every domain has joined, so the first (lowest-index)
   failure wins deterministically.

   Nested regions run serially: a [map] issued from inside a worker's
   task body degrades to [List.map] instead of spawning domains from
   domains, so callers can parallelise at whatever level they sit at
   without coordinating with their callers.

   Determinism of the *tasks* is the caller's contract: each item must
   carry its own independent seed/state (the harnesses derive one seed
   per item up front) and must not share mutable structures across
   items. *)

let in_region = Domain.DLS.new_key (fun () -> false)

let env_jobs () =
  match Sys.getenv_opt "R2C_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let map ?jobs f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs =
    min n (match jobs with Some j -> max 1 j | None -> default_jobs ())
  in
  if jobs <= 1 || Domain.DLS.get in_region then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_region true;
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some
              (try Ok (f arr.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          claim ()
        end
      in
      claim ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's first worker; restore its flag
       afterwards so sibling regions opened later still parallelise. *)
    worker ();
    Domain.DLS.set in_region false;
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let mapi ?jobs f xs = map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let tasks ?jobs thunks = map ?jobs (fun f -> f ()) thunks
