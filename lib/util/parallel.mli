(** Fixed-size Domain pool for embarrassingly parallel experiment
    fan-out, with deterministic task->result ordering.

    [map f xs] equals [List.map f xs] observably — same results, same
    order, first (lowest-index) exception re-raised — while claiming
    items dynamically across [jobs] domains. The caller owes the usual
    contract for determinism: one independent seed/state per item, no
    mutable structure shared between items.

    With [jobs = 1] (or [Domain.recommended_domain_count () = 1], or
    fewer than two items) everything runs serially in the calling
    domain, so single-core runners take exactly the historical code
    path. A [map] issued from inside another [map]'s task body also
    degrades to serial instead of nesting domain pools. *)

(** Effective default worker count: [$R2C_JOBS] when set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] — parallel, order-preserving [List.map]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi ?jobs f xs] — {!map} with the item index. *)
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [tasks ?jobs thunks] — run independent thunks, results in thunk
    order. *)
val tasks : ?jobs:int -> (unit -> 'a) list -> 'a list
