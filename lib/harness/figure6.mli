(** Figure 6: per-benchmark overhead of full R2C protection on the four
    machine profiles (Section 6.2.4). Worst-case configuration: BTRAs also
    on call sites into unprotected library code, AVX2 setup, 0-5 BTDPs,
    1-9 NOPs, 1-5 prolog traps, all layout randomizations, XOM, ASLR. *)

type machine_result = {
  machine : string;
  per_benchmark : (string * float) list;
  geomean : float;
}

(** [run ?seeds ?jobs ()] — the full machine x benchmark matrix. Cells
    are independent (each compiles and runs its own images), so they fan
    out over a {!R2c_util.Parallel} domain pool; [jobs] caps the pool
    (default [Parallel.default_jobs ()], serial when 1). The result is
    identical to the serial run regardless of [jobs]. *)
val run : ?seeds:int list -> ?jobs:int -> unit -> machine_result list

(** [print results] — one column per machine plus an ASCII rendering of the
    figure's bars. *)
val print : machine_result list -> unit
