(** Measurement helpers shared by the experiment harnesses. *)

type stats = {
  total_cycles : float;
  steady_cycles : float;  (** from [main] entry to exit — startup excluded,
                              matching SPEC's amortization of one-time costs *)
  calls : int;
  insns : int;
  maxrss_bytes : int;
  icache_accesses : int;
  icache_misses : int;
  peak_depth : int;  (** deepest simulated call nesting reached *)
}

(** [run ?profile ?obs ?label img] — execute to completion; fails on crash
    or non-zero exit.

    With [?obs], a {!R2c_obs.Profile} observer rides the whole run: the
    flat per-function profile is stored in the sink under [label] (default
    ["measure"]), published into its metrics registry, and the run appears
    as one span on the event timeline. Without [?obs] the interpreter runs
    bare and cycle totals are bit-identical to an unobserved run. *)
val run :
  ?profile:R2c_machine.Cost.profile ->
  ?obs:R2c_obs.Sink.t ->
  ?label:string ->
  R2c_machine.Image.t ->
  stats

(** [overhead ?profile ~seeds cfg program] — median over [seeds] of the
    steady-cycle ratio R2C(cfg)/baseline. *)
val overhead :
  ?profile:R2c_machine.Cost.profile ->
  seeds:int list ->
  R2c_core.Dconfig.t ->
  Ir.program ->
  float

(** [suite_overheads ?profile ~seeds cfg] — (benchmark, overhead) for the
    whole SPEC-shaped suite. *)
val suite_overheads :
  ?profile:R2c_machine.Cost.profile ->
  seeds:int list ->
  R2c_core.Dconfig.t ->
  (string * float) list

(** [geomean_max rows] — (max, geomean) of the overhead column. *)
val geomean_max : (string * float) list -> float * float
