module Obs = R2c_obs
module Pool = R2c_runtime.Pool
module Policy = R2c_runtime.Policy
module Vulnapp = R2c_workloads.Vulnapp
module Table = R2c_util.Table

type side = { label : string; stats : Measure.stats; prof : Obs.Profile.t }

type result = {
  workload : string;
  cfg_name : string;
  base : side;
  r2c : side;
  sink : Obs.Sink.t;
}

let run ?(cfg = R2c_core.Dconfig.full ()) ?(cfg_name = "full") ?(seed = 1) ?profile
    ~workload () =
  let b = R2c_workloads.Spec.find workload in
  let sink = Obs.Sink.create () in
  let base_stats =
    Measure.run ?profile ~obs:sink ~label:"baseline"
      (R2c_compiler.Driver.compile b.R2c_workloads.Spec.program)
  in
  let r2c_stats =
    Measure.run ?profile ~obs:sink ~label:cfg_name
      (R2c_core.Pipeline.compile ~seed cfg b.R2c_workloads.Spec.program)
  in
  let prof_of label =
    match Obs.Sink.profile sink label with
    | Some p -> p
    | None -> invalid_arg ("Prof.run: no profile stored under " ^ label)
  in
  {
    workload;
    cfg_name;
    base = { label = "baseline"; stats = base_stats; prof = prof_of "baseline" };
    r2c = { label = cfg_name; stats = r2c_stats; prof = prof_of cfg_name };
    sink;
  }

(* The profiler's column sums must reproduce the CPU's own counters: insn
   and miss counts exactly, cycles up to float-summation noise. *)
let side_sums_ok ?(tol = 0.01) s =
  let t = Obs.Profile.total s.prof in
  let cycles_ok =
    let c = s.stats.Measure.total_cycles in
    if c = 0.0 then t.Obs.Profile.cycles = 0.0
    else abs_float (t.Obs.Profile.cycles -. c) /. c <= tol
  in
  cycles_ok
  && t.Obs.Profile.insns = s.stats.Measure.insns
  && t.Obs.Profile.misses = s.stats.Measure.icache_misses

let sums_ok ?tol r = side_sums_ok ?tol r.base && side_sums_ok ?tol r.r2c

let f0 x = Printf.sprintf "%.0f" x

let print ?(top = 12) r =
  let base_rows = Obs.Profile.rows r.base.prof in
  let r2c_rows = Obs.Profile.rows r.r2c.prof in
  let base_cycles name =
    match List.find_opt (fun (x : Obs.Profile.row) -> x.name = name) base_rows with
    | Some x -> x.Obs.Profile.cycles
    | None -> 0.0
  in
  let rows =
    List.filteri (fun i _ -> i < top) r2c_rows
    |> List.map (fun (x : Obs.Profile.row) ->
           let b = base_cycles x.Obs.Profile.name in
           let other =
             x.Obs.Profile.cycles -. x.callsite_cycles -. x.prologue_cycles
             -. x.icache_cycles
           in
           [
             x.Obs.Profile.name;
             f0 b;
             f0 x.Obs.Profile.cycles;
             (if b > 0.0 then Table.ratio (x.Obs.Profile.cycles /. b) else "-");
             f0 x.callsite_cycles;
             f0 x.prologue_cycles;
             f0 x.icache_cycles;
             f0 other;
           ])
  in
  let bt = Obs.Profile.total r.base.prof in
  let rt = Obs.Profile.total r.r2c.prof in
  let total_row =
    let other =
      rt.Obs.Profile.cycles -. rt.callsite_cycles -. rt.prologue_cycles
      -. rt.icache_cycles
    in
    [
      "TOTAL";
      f0 bt.Obs.Profile.cycles;
      f0 rt.Obs.Profile.cycles;
      Table.ratio (rt.Obs.Profile.cycles /. bt.Obs.Profile.cycles);
      f0 rt.callsite_cycles;
      f0 rt.prologue_cycles;
      f0 rt.icache_cycles;
      f0 other;
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf "profile: %s — baseline vs %s (cycles)" r.workload r.cfg_name)
    ~headers:
      [ "function"; "base"; r.cfg_name; "ratio"; "callsite"; "prologue"; "icache"; "other" ]
    ~aligns:
      [
        Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right;
      ]
    (rows @ [ total_row ]);
  let extra = rt.Obs.Profile.cycles -. bt.Obs.Profile.cycles in
  if extra > 0.0 then
    Printf.printf
      "overhead split: +%.0f cycles total — callsite %s, prologue %s, icache %s of the added cost\n"
      extra
      (Table.pct (rt.Obs.Profile.callsite_cycles /. extra))
      (Table.pct (rt.Obs.Profile.prologue_cycles /. extra))
      (Table.pct
         ((rt.Obs.Profile.icache_cycles -. bt.Obs.Profile.icache_cycles) /. extra));
  Printf.printf
    "icache: baseline %d/%d misses, %s %d/%d; peak call depth: %d -> %d\n\n"
    r.base.stats.Measure.icache_misses r.base.stats.Measure.icache_accesses r.cfg_name
    r.r2c.stats.Measure.icache_misses r.r2c.stats.Measure.icache_accesses
    r.base.stats.Measure.peak_depth r.r2c.stats.Measure.peak_depth

(* ------------------------------------------------------------------ *)
(* A small observed pool run for the timeline export: the chaos victim
   serving mostly legitimate traffic with a periodic stack smash mixed
   in, so the trace shows requests, crashes, detections, respawns and
   (once the threshold trips) the reactive escalation. *)

let victim_cfg = { (R2c_core.Dconfig.full_checked) with R2c_core.Dconfig.aslr = false }

let pool_timeline ?(requests = 60) ?(seed = 7) () =
  let sink = Obs.Sink.create () in
  let cfg =
    {
      Pool.default_config with
      Pool.policy = Policy.Reactive Policy.Escalate_rerandomize;
      seed;
    }
  in
  let pool =
    Pool.create ~cfg ~obs:sink
      ~build:(fun ~seed -> Vulnapp.build ~seed victim_cfg)
      ~break_sym:Vulnapp.break_symbol ()
  in
  let payloads =
    List.init requests (fun i ->
        if i mod 7 = 3 then String.make 120 'A' else "GET /status")
  in
  ignore (Pool.run pool payloads);
  (sink, Pool.stats pool)
