module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp
module Probability = R2c_core.Probability
module Rng = R2c_util.Rng
module Stats = R2c_util.Stats
open R2c_machine

type t = {
  ra_candidates_mean : float;
  analytic_ra_p : float;
  empirical_ra_p : float;
  heap_benign_mean : float;
  heap_btdp_mean : float;
  analytic_pick_p : float;
  empirical_pick_p : float;
  aocr_trials : int;
  aocr_successes : int;
  aocr_detections : int;
  brop_trials : int;
  brop_successes : int;
  brop_detections : int;
}

(* Ground-truth inspection of one R2C victim's leaked frame. *)
let frame_census ~seed =
  let img = Defenses.build_vulnapp Defenses.r2c ~seed in
  (* Reference.measure on the target itself: evaluation-side ground truth. *)
  let truth = Reference.measure img in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol img in
  (match Oracle.to_break target with `Break -> () | `Done _ -> failwith "no break");
  (match Oracle.resume_to_break target with `Break -> () | `Done _ -> failwith "no break2");
  let words = (truth.Reference.ra_off / 8) + 8 in
  let _, values = Oracle.leak_stack target ~words in
  let mem = target.Oracle.proc.Process.cpu.Cpu.mem in
  let guards = Mem.guard_page_addrs mem in
  let text_candidates = ref 0 in
  let benign_heap = ref 0 in
  let btdp = ref 0 in
  Array.iter
    (fun v ->
      match Addr.region_of v with
      | Addr.Text -> incr text_candidates
      | Addr.Heap ->
          if List.mem (Addr.page_base v) guards then incr btdp else incr benign_heap
      | Addr.Data | Addr.Stack | Addr.Unmapped_region -> ())
    values;
  (!text_candidates, !benign_heap, !btdp)

let run ?(trials = 8) ?jobs () =
  (* Every trial builds its own victim from its own seed — an
     embarrassingly parallel campaign, fanned out over the domain pool.
     [Parallel.map] keeps trial order, so the statistics match the serial
     run exactly. *)
  let parallel_init n f = R2c_util.Parallel.mapi ?jobs (fun i () -> f i) (List.init n (fun _ -> ())) in
  let censuses = parallel_init trials (fun i -> frame_census ~seed:((i * 7) + 1)) in
  let mean f = Stats.mean (List.map f censuses) in
  let ra_candidates_mean = mean (fun (c, _, _) -> float_of_int c) in
  let heap_benign_mean = mean (fun (_, h, _) -> float_of_int h) in
  let heap_btdp_mean = mean (fun (_, _, b) -> float_of_int b) in
  (* AOCR battery. *)
  let aocr_reports =
    parallel_init trials (fun i ->
        let seed = (i * 3) + 1 in
        let target =
          Oracle.attach ~break_sym:Vulnapp.break_symbol
            (Defenses.build_vulnapp Defenses.r2c ~seed)
        in
        let reference =
          Reference.measure (Defenses.build_vulnapp Defenses.r2c ~seed:(seed + 500))
        in
        R2c_attacks.Aocr.run ~rng:(Rng.create (seed * 131)) ~reference ~target ())
  in
  (* Blind ROP battery against a non-PIE R2C server (the restart scenario
     of Section 7.3). *)
  let r2c_nopie =
    { Defenses.r2c with Defenses.cfg = { (R2c_core.Dconfig.full ()) with aslr = false } }
  in
  let brop_trials = max 2 (trials / 3) in
  let brop_reports =
    parallel_init brop_trials (fun i ->
        let target =
          Oracle.attach ~break_sym:Vulnapp.break_symbol
            (Defenses.build_vulnapp r2c_nopie ~seed:((i * 11) + 3))
        in
        R2c_attacks.Blindrop.run ~probe_budget:4000 ~target ())
  in
  let count p l = List.length (List.filter p l) in
  {
    ra_candidates_mean;
    analytic_ra_p = Probability.guess_return_address ~btras:10;
    empirical_ra_p = 1.0 /. Float.max 1.0 ra_candidates_mean;
    heap_benign_mean;
    heap_btdp_mean;
    analytic_pick_p =
      Probability.pick_benign_heap_pointer
        ~benign:(int_of_float (Float.round heap_benign_mean))
        ~btdps:(max 1 (int_of_float (Float.round heap_btdp_mean)));
    empirical_pick_p = heap_benign_mean /. Float.max 1.0 (heap_benign_mean +. heap_btdp_mean);
    aocr_trials = trials;
    aocr_successes = count (fun r -> r.Report.success) aocr_reports;
    aocr_detections = count (fun r -> r.Report.detected) aocr_reports;
    brop_trials;
    brop_successes = count (fun r -> r.Report.success) brop_reports;
    brop_detections = count (fun r -> r.Report.detected) brop_reports;
  }

let print t =
  Printf.printf "\n== Security evaluation (Section 7.2) ==\n";
  Printf.printf "return-address camouflage: %.1f text-range candidates per frame\n"
    t.ra_candidates_mean;
  Printf.printf "  guess probability: empirical %.4f vs analytic 1/(R+1) = %.4f\n"
    t.empirical_ra_p t.analytic_ra_p;
  Printf.printf "  paper example (n=4, R=10): (1/11)^4 = %.6f; ours: %.6f\n"
    Paper.guess_probability_example
    (t.empirical_ra_p ** 4.0);
  Printf.printf "heap-pointer camouflage: %.1f benign vs %.1f BTDPs per leak\n"
    t.heap_benign_mean t.heap_btdp_mean;
  Printf.printf "  benign pick probability: empirical %.3f vs analytic H/(H+B) = %.3f\n"
    t.empirical_pick_p t.analytic_pick_p;
  Printf.printf "AOCR vs R2C: %d/%d succeeded, %d/%d campaigns detected\n" t.aocr_successes
    t.aocr_trials t.aocr_detections t.aocr_trials;
  Printf.printf "Blind ROP vs non-PIE R2C: %d/%d succeeded, %d/%d detected\n"
    t.brop_successes t.brop_trials t.brop_detections t.brop_trials
