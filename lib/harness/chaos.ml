open R2c_machine
module Pool = R2c_runtime.Pool
module Policy = R2c_runtime.Policy
module Vulnapp = R2c_workloads.Vulnapp
module Payload = R2c_attacks.Payload
module Table = R2c_util.Table

(* The victim: the vulnerable server under full R2C with post-return BTRA
   checks (Section 7.3) and without ASLR — the non-PIE worker-respawn
   scenario Blind ROP was built for. Booby-trap detections during stack
   reading are the signal the Reactive policy listens to. *)
let victim_cfg = { (R2c_core.Dconfig.full_checked) with R2c_core.Dconfig.aslr = false }

let build_victim ~seed = Vulnapp.build ~seed victim_cfg

let legit_payload = "GET /status"

(* ------------------------------------------------------------------ *)
(* A Blind-ROP campaign against a worker pool (Section 4.1 adapted to
   the supervision layer).

   The attacker talks to the pool like any client — probes are requests
   with [~retries:0], and the only feedback is served / connection died /
   connection refused. Stack reading extends a filler one byte at a time,
   keeping bytes the server survives; a learned 8-byte word that decodes
   into the text segment is a return-address candidate (BROP's "plausible
   code pointer" heuristic — BTRA decoys satisfy it too, by design), and
   each candidate gets a ret2plt gadget sweep. Two give-up rules make the
   attacker honest: a previously-survivable filler that starts crashing
   again and again means the layout churned under the attacker's feet
   (re-randomization — BROP's published kryptonite), and a stretch of
   refused connections means the fleet is down and there is nothing to
   learn from. *)

type attack_cfg = {
  probe_budget : int;
  churn_limit : int;  (** consecutive failed revalidations before giving up *)
  stall_limit : int;  (** consecutive refused probes before giving up *)
  sweep_budget : int;  (** gadget addresses swept per RA candidate *)
}

let default_attack =
  { probe_budget = 4000; churn_limit = 3; stall_limit = 20; sweep_budget = 4000 }

type attack_report = { probes : int; note : string; compromised : bool }

let plt_addr_of name_wanted =
  let rec idx i = function
    | [] -> 0
    | n :: tl -> if n = name_wanted then i else idx (i + 1) tl
  in
  Addr.text_base + (16 * idx 0 Image.builtin_names)

let blind_rop_pool ~pool ~legit ~(cfg : attack_cfg) () =
  let compromised () =
    List.exists (fun (rdi, _) -> rdi = Vulnapp.marker) (Pool.sensitive_log pool)
  in
  let probes = ref 0 in
  let stalls = ref 0 in
  let churn = ref 0 in
  let finished = ref None in
  let give_up note = if !finished = None then finished := Some note in
  let probe payload =
    legit ();
    incr probes;
    match Pool.submit ~retries:0 pool payload with
    | Pool.Served { lines; _ } ->
        stalls := 0;
        `Survived lines
    | Pool.Rejected { lines; _ } ->
        stalls := 0;
        `Crashed lines
    | Pool.Dropped ->
        incr stalls;
        if !stalls >= cfg.stall_limit then give_up "fleet down, nothing to probe";
        `Stall
  in
  let budget_ok () =
    if !probes >= cfg.probe_budget then begin
      give_up "probe budget exhausted";
      false
    end
    else !finished = None
  in
  let filler = Buffer.create 128 in
  (* Likely bytes first (zero padding, canonical high bytes), then all. *)
  let guesses = [ 0x00; 0x41; 0xff; 0x7f; 0xfe; 0x55; 0x40 ] @ List.init 256 Fun.id in
  (* A byte the server already accepted should still be accepted: when it
     stops being, the layout has changed under the attacker's feet —
     re-randomization, BROP's published kryptonite. *)
  let revalidate () =
    if Buffer.length filler = 0 then true
    else
      match probe (Buffer.contents filler) with
      | `Survived _ ->
          churn := 0;
          true
      | `Crashed _ ->
          incr churn;
          if !churn >= cfg.churn_limit then
            give_up "layout churn: learned bytes no longer hold";
          false
      | `Stall -> false
  in
  let learn_byte () =
    let rec try_guesses = function
      | [] ->
          (* Every value crashed at this depth: the oracle is lying —
             nothing stable left to learn. *)
          give_up "stack reading wedged: no survivable byte"
      | g :: tl -> (
          if budget_ok () then
            match probe (Buffer.contents filler ^ String.make 1 (Char.chr g)) with
            | `Survived _ -> Buffer.add_char filler (Char.chr g)
            | `Crashed _ -> try_guesses tl
            | `Stall -> try_guesses (g :: tl))
    in
    try_guesses guesses
  in
  (* Stop-gadget test at a word boundary: a ret into a harmless PLT entry
     produces one extra response line iff the word is the return address
     (both probes crash; the information is in the output seen first). *)
  let stop_plt = plt_addr_of "print_int" in
  let ra_here () =
    let base = Buffer.contents filler in
    match probe (base ^ Payload.le64 stop_plt) with
    | `Survived _ | `Stall -> false
    | `Crashed with_stop -> (
        match probe (base ^ Payload.fill 8) with
        | `Survived _ | `Stall -> false
        | `Crashed with_garbage -> with_stop > with_garbage)
  in
  (* ret2plt: [pop rdi-style gadget][marker][sensitive] written over the
     located return address; the first-gadget address is brute-forced
     through the region after the PLT — architectural knowledge for a
     non-PIE binary. *)
  let sweep () =
    let base = Buffer.contents filler in
    let sensitive = plt_addr_of "sensitive" in
    let start = Addr.text_base + (16 * List.length Image.builtin_names) in
    let addr = ref start in
    let quiet = ref 0 in
    while budget_ok () && (not (compromised ())) && !addr < start + cfg.sweep_budget do
      (* Sweeping blind is pointless if the layout churned mid-sweep:
         recheck the learned filler every so often, and notice when the
         chains stop crashing altogether — a chain that no longer lands on
         a return address only tickles padding. *)
      if (!addr - start) mod 24 = 23 && not (revalidate ()) then incr addr
      else begin
        let chain =
          Payload.le64 !addr ^ Payload.le64 Vulnapp.marker ^ Payload.le64 sensitive
        in
        match probe (base ^ chain) with
        | `Crashed _ ->
            quiet := 0;
            incr addr
        | `Survived _ ->
            incr quiet;
            if !quiet >= 40 then
              give_up "sweep chains stopped crashing: layout churn";
            incr addr
        | `Stall -> ()
      end
    done;
    if !finished = None && not (compromised ()) then
      give_up "gadget sweep exhausted without a working chain"
  in
  let ra_found = ref false in
  while (not !ra_found) && !finished = None && not (compromised ()) do
    if budget_ok () then
      if Buffer.length filler >= 512 then
        give_up "return address not located within 512 bytes"
      else if revalidate () then
        if Buffer.length filler mod 8 = 0 && ra_here () then ra_found := true
        else learn_byte ()
  done;
  if !ra_found then sweep ();
  let note =
    if compromised () then "compromised: sensitive(marker) reached"
    else match !finished with Some n -> n | None -> "done"
  in
  { probes = !probes; note; compromised = compromised () }

(* ------------------------------------------------------------------ *)
(* Availability under attack, per restart policy. *)

type run_result = {
  policy : Policy.t;
  stats : Pool.stats;
  clock : int;
  legit_served : int;
  legit_total : int;
  availability : float;  (** legit traffic only *)
  probes : int;
  attack_note : string;
  compromised : bool;
  escalated : bool;
}

let pool_cfg ?(inject = Inject.zero) ~seed policy =
  {
    Pool.default_config with
    Pool.policy;
    seed;
    (* MaxRequestsPerChild = 1: every request is served by a fresh fork,
       so probe feedback depends only on the payload — the uniform oracle
       Blind ROP needs (and real pre-fork servers provide). *)
    requests_per_child = 1;
    inject;
  }

let run_policy ?(seed = 7) ?(legit_total = 400) ?(attack = default_attack) policy =
  let pool =
    Pool.create ~cfg:(pool_cfg ~seed policy) ~build:build_victim
      ~break_sym:Vulnapp.break_symbol ()
  in
  let legit_sent = ref 0 in
  let legit_served = ref 0 in
  let legit () =
    if !legit_sent < legit_total then begin
      incr legit_sent;
      match Pool.submit pool legit_payload with
      | Pool.Served _ -> incr legit_served
      | Pool.Rejected _ | Pool.Dropped -> ()
    end
  in
  let report = blind_rop_pool ~pool ~legit ~cfg:attack () in
  (* The campaign is over (aborted or compromised); the service keeps
     serving — post-attack traffic shows where the fleet settled. *)
  while !legit_sent < legit_total do
    legit ()
  done;
  {
    policy;
    stats = Pool.stats pool;
    clock = Pool.clock pool;
    legit_served = !legit_served;
    legit_total;
    availability = float_of_int !legit_served /. float_of_int (max 1 legit_total);
    probes = report.probes;
    attack_note = report.note;
    compromised = report.compromised;
    escalated = Pool.escalated pool;
  }

let policies =
  [
    Policy.Same_image;
    Policy.Backoff Policy.default_backoff;
    Policy.Rerandomize;
    Policy.Reactive Policy.Escalate_rerandomize;
    Policy.Reactive (Policy.Escalate_mvee { variants = 3 });
  ]

let run ?seed ?legit_total ?attack () =
  List.map (fun p -> run_policy ?seed ?legit_total ?attack p) policies

let mttr_str s =
  match Pool.mttr s with Some m -> Printf.sprintf "%.0fk" (m /. 1000.) | None -> "-"

let d2r_str s =
  match Pool.detection_to_response s with
  | Some d -> Printf.sprintf "%dk" (d / 1000)
  | None -> "-"

let print results =
  Table.print ~title:"Availability under Blind ROP, by restart policy"
    ~headers:
      [ "policy"; "avail"; "served"; "crashes"; "detect"; "rerand"; "mttr"; "det->resp";
        "probes"; "campaign end" ]
    ~aligns:
      [ Table.Left; Right; Right; Right; Right; Right; Right; Right; Right; Left ]
    (List.map
       (fun r ->
         [
           Policy.to_string r.policy;
           Table.pct r.availability;
           Printf.sprintf "%d/%d" r.legit_served r.legit_total;
           string_of_int r.stats.Pool.crashes;
           string_of_int r.stats.Pool.detections;
           string_of_int r.stats.Pool.rerandomizations;
           mttr_str r.stats;
           d2r_str r.stats;
           string_of_int r.probes;
           (if r.compromised then "COMPROMISED" else r.attack_note);
         ])
       results)

(* ------------------------------------------------------------------ *)
(* Fault-injection sweep: legit traffic only, increasing chaos rates.
   Measures what the supervision layer buys when the faults are not an
   attacker but plain bad luck (bitflips, corrupted loads, lost fuel). *)

type sweep_row = {
  label : string;
  rates : Inject.rates;
  sweep_policy : Policy.t;
  sweep_stats : Pool.stats;
  sweep_availability : float;
}

let sweep_points =
  [
    ("none", Inject.zero);
    ("light", { Inject.bitflip = 0.00002; load_corrupt = 0.00002; spurious_fault = 0.00001; fuel_cut = 0.0 });
    ("heavy", { Inject.bitflip = 0.0002; load_corrupt = 0.0002; spurious_fault = 0.0001; fuel_cut = 0.05 });
  ]

let injection_sweep ?(seed = 11) ?(requests = 120) () =
  List.concat_map
    (fun policy ->
      List.map
        (fun (label, rates) ->
          let pool =
            Pool.create
              ~cfg:(pool_cfg ~inject:rates ~seed policy)
              ~build:build_victim ~break_sym:Vulnapp.break_symbol ()
          in
          let served = ref 0 in
          for _ = 1 to requests do
            match Pool.submit pool legit_payload with
            | Pool.Served _ -> incr served
            | Pool.Rejected _ | Pool.Dropped -> ()
          done;
          {
            label;
            rates;
            sweep_policy = policy;
            sweep_stats = Pool.stats pool;
            sweep_availability = float_of_int !served /. float_of_int requests;
          })
        sweep_points)
    [ Policy.Same_image; Policy.Backoff Policy.default_backoff; Policy.Rerandomize ]

let print_sweep rows =
  Table.print ~title:"Fault-injection sweep (legit traffic only)"
    ~headers:[ "policy"; "chaos"; "avail"; "crashes"; "timeouts"; "restarts"; "quarantine" ]
    ~aligns:[ Table.Left; Left; Right; Right; Right; Right; Right ]
    (List.map
       (fun r ->
         [
           Policy.to_string r.sweep_policy;
           r.label;
           Table.pct r.sweep_availability;
           string_of_int r.sweep_stats.Pool.crashes;
           string_of_int r.sweep_stats.Pool.timeouts;
           string_of_int r.sweep_stats.Pool.restarts;
           string_of_int r.sweep_stats.Pool.quarantines;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Rate-zero equivalence: an attached injector with all rates at 0.0 must
   not perturb execution at all — same outcome, same instruction count,
   same cycle count, bit for bit. The chaos harness is only trustworthy
   if observing the system (at rate 0) does not change it. *)

let baseline_equivalence ?(seed = 5) () =
  let run inject =
    let proc = Process.start ?inject ~fuel:5_000_000 (build_victim ~seed) in
    let outcome = Process.run proc in
    (outcome, Process.insns proc, Process.cycles proc)
  in
  let bare = run None in
  let zeroed = run (Some (Inject.create ~rates:Inject.zero ~seed:99 ())) in
  bare = zeroed

let print_equivalence ok =
  Printf.printf "rate-0 injector equivalence: %s\n%!"
    (if ok then "exact (outcome, insns, cycles identical)" else "MISMATCH")
