module Tval = R2c_analysis.Tval
module Lint = R2c_analysis.Lint
module Oracle = R2c_fuzz.Oracle
module Parallel = R2c_util.Parallel
module J = R2c_obs.Json

type point = {
  pname : string;
  pfuncs : int;
  pblocks : int;
  pfindings : string list;
}

type workload = {
  wname : string;
  ir_findings : string list;
  points : point list;
}

type plant = { plname : string; plpoint : string; caught : int }

type replay = { rpath : string; rerrors : string list }

type report = {
  seed : int;
  workloads : workload list;
  plants : plant list;
  corpus : replay list;
}

let plant_name = function
  | Oracle.Sub_to_add -> "sub-to-add"
  | Oracle.Drop_stores -> "drop-stores"
  | Oracle.Off_by_one -> "off-by-one"

let all_plants = [ Oracle.Sub_to_add; Oracle.Drop_stores; Oracle.Off_by_one ]

let validate_point ~seed cfg p =
  let r = Tval.validate_config ~seed cfg p in
  ( r.Tval.funcs,
    r.Tval.blocks,
    List.map Tval.finding_to_string r.Tval.findings )

(* Compile the planted miscompile, then validate its image against the
   *unplanted* IR: every finding is the validator statically catching the
   plant. The instrumented program keeps the planted compile's extra
   functions (BTDP constructor) — those are not planted and must rejoin. *)
let validate_plant ~seed cfg pl p =
  let planted = Oracle.apply_plant pl p in
  let img, meta, p' = R2c_core.Pipeline.compile_with_meta ~seed cfg planted in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Ir.find_func p f.Ir.name with Some o -> o | None -> f)
      p'.Ir.funcs
  in
  let r = Tval.validate ~img ~meta { p' with Ir.funcs } in
  List.length r.Tval.findings

let replay_one ~seed path =
  match R2c_fuzz.Corpus.load path with
  | Error e -> { rpath = path; rerrors = [ "parse: " ^ e ] }
  | Ok p -> (
      match Validate.check p with
      | _ :: _ as errs ->
          { rpath = path;
            rerrors = List.map (fun e -> "validate: " ^ Validate.error_to_string e) errs }
      | [] ->
          let _, _, findings = validate_point ~seed (R2c_core.Dconfig.full ()) p in
          { rpath = path; rerrors = findings })

let run ?(seed = 3) ?jobs ?(corpus_dir = "test/corpus") () =
  let programs = Audit.ir_programs () in
  let matrix = Oracle.matrix in
  (* One unit per workload x matrix point, flattened so the Domain pool
     stays saturated; Parallel.map preserves order, so regrouping by
     workload is positional. *)
  let units =
    List.concat_map
      (fun (wname, p) -> List.map (fun (pname, cfg) -> (wname, p, pname, cfg)) matrix)
      programs
  in
  let point_results =
    Parallel.map ?jobs
      (fun (_, p, pname, cfg) ->
        let pfuncs, pblocks, pfindings = validate_point ~seed cfg p in
        { pname; pfuncs; pblocks; pfindings })
      units
  in
  let ir_results =
    Parallel.map ?jobs
      (fun (_, p) -> List.map Lint.ir_finding_to_string (Lint.run_ir p))
      programs
  in
  let npoints = List.length matrix in
  let workloads =
    List.mapi
      (fun i (wname, _) ->
        let points =
          List.filteri
            (fun j _ -> j / npoints = i)
            point_results
        in
        { wname; ir_findings = List.nth ir_results i; points })
      programs
  in
  let plant_prog = R2c_fuzz.Gen.v2 ~seed:1 () in
  let plant_points =
    [ ("baseline", R2c_core.Dconfig.baseline); ("full", R2c_core.Dconfig.full ()) ]
  in
  let plants =
    Parallel.map ?jobs
      (fun (pl, (plpoint, cfg)) ->
        { plname = plant_name pl;
          plpoint;
          caught = validate_plant ~seed cfg pl plant_prog })
      (List.concat_map (fun pl -> List.map (fun pt -> (pl, pt)) plant_points) all_plants)
  in
  let corpus =
    Parallel.map ?jobs (replay_one ~seed) (R2c_fuzz.Corpus.files ~dir:corpus_dir)
  in
  { seed; workloads; plants; corpus }

let totals r =
  List.fold_left
    (fun (funcs, blocks, findings, ir) w ->
      let f, b, fd =
        List.fold_left
          (fun (f, b, fd) pt -> (f + pt.pfuncs, b + pt.pblocks, fd + List.length pt.pfindings))
          (0, 0, 0) w.points
      in
      (funcs + f, blocks + b, findings + fd, ir + List.length w.ir_findings))
    (0, 0, 0, 0) r.workloads

let gate ?(min_workloads = 17) ?(min_points = 11) r =
  let fails = ref [] in
  let check ok msg = if not ok then fails := msg :: !fails in
  let _, _, findings, ir = totals r in
  check
    (List.length r.workloads >= min_workloads)
    (Printf.sprintf "workloads %d < %d" (List.length r.workloads) min_workloads);
  List.iter
    (fun w ->
      check
        (List.length w.points >= min_points)
        (Printf.sprintf "%s: points %d < %d" w.wname (List.length w.points) min_points))
    r.workloads;
  check (findings = 0) (Printf.sprintf "validator findings %d <> 0" findings);
  check (ir = 0) (Printf.sprintf "IR lint findings %d <> 0" ir);
  List.iter
    (fun pl ->
      check (pl.caught > 0)
        (Printf.sprintf "plant %s uncaught under %s" pl.plname pl.plpoint))
    r.plants;
  List.iter
    (fun rp ->
      check (rp.rerrors = [])
        (Printf.sprintf "corpus %s: %d error(s)" rp.rpath (List.length rp.rerrors)))
    r.corpus;
  List.rev !fails

(* One-line JSON. Deterministic fields first; the volatile run metadata
   ([jobs], [wall_ms]) last so CI's serial-vs-parallel diff can strip it
   with a tail cut. *)
let json ?jobs ?wall_ms r =
  let funcs, blocks, findings, ir = totals r in
  J.Obj
    ([
       ("seed", J.Int r.seed);
       ("workloads", J.Int (List.length r.workloads));
       ("points", J.Int (match r.workloads with w :: _ -> List.length w.points | [] -> 0));
       ("validated_funcs", J.Int funcs);
       ("validated_blocks", J.Int blocks);
       ("findings", J.Int findings);
       ("ir_findings", J.Int ir);
       ( "plants",
         J.Arr
           (List.map
              (fun pl ->
                J.Obj
                  [
                    ("plant", J.Str pl.plname);
                    ("point", J.Str pl.plpoint);
                    ("caught", J.Int pl.caught);
                  ])
              r.plants) );
       ("corpus_replayed", J.Int (List.length r.corpus));
       ( "corpus_failures",
         J.Int (List.length (List.filter (fun rp -> rp.rerrors <> []) r.corpus)) );
       ("gate_failures", J.Arr (List.map (fun m -> J.Str m) (gate r)));
     ]
    @ (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @ match wall_ms with Some w -> [ ("wall_ms", J.Float w) ] | None -> [])

let print r =
  let module Table = R2c_util.Table in
  let funcs, blocks, findings, ir = totals r in
  Printf.printf
    "Translation validation (seed %d): %d workloads x %d config points\n" r.seed
    (List.length r.workloads)
    (match r.workloads with w :: _ -> List.length w.points | [] -> 0);
  Table.print ~title:"E-TVAL: symbolic refinement per workload"
    ~headers:[ "workload"; "funcs"; "blocks"; "tval"; "ir lint" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    (List.map
       (fun w ->
         let f, b, fd =
           List.fold_left
             (fun (f, b, fd) pt ->
               (f + pt.pfuncs, b + pt.pblocks, fd + List.length pt.pfindings))
             (0, 0, 0) w.points
         in
         [ w.wname; string_of_int f; string_of_int b; string_of_int fd;
           string_of_int (List.length w.ir_findings) ])
       r.workloads);
  List.iter
    (fun w ->
      List.iter (fun m -> Printf.printf "  %s: %s\n" w.wname m) w.ir_findings;
      List.iter
        (fun pt ->
          List.iter (fun m -> Printf.printf "  %s/%s: %s\n" w.wname pt.pname m) pt.pfindings)
        w.points)
    r.workloads;
  Table.print ~title:"Planted miscompiles (must be caught statically)"
    ~headers:[ "plant"; "config"; "findings"; "verdict" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left ]
    (List.map
       (fun pl ->
         [ pl.plname; pl.plpoint; string_of_int pl.caught;
           (if pl.caught > 0 then "caught" else "MISSED") ])
       r.plants);
  Printf.printf "Corpus replays: %d, failures %d\n" (List.length r.corpus)
    (List.length (List.filter (fun rp -> rp.rerrors <> []) r.corpus));
  List.iter
    (fun rp -> List.iter (fun m -> Printf.printf "  %s: %s\n" rp.rpath m) rp.rerrors)
    r.corpus;
  Printf.printf "Totals: %d functions, %d blocks validated; %d finding(s), %d IR finding(s)\n"
    funcs blocks findings ir;
  Printf.printf "E-TVAL: %s\n" (if gate r = [] then "CLEAN" else "FINDINGS")

let gate r = gate r
