(** Fleet-scale chaos campaign (E-FLEET).

    Drives {!R2c_runtime.Fleet} over the lean {!Fleetapp} workload: a
    deterministic stream of ≥100k simulated requests while the PR-1 chaos
    injector flips bits, corrupts loads and raises spurious faults inside
    the shard workers, and the fleet live-rotates through fresh diversity
    epochs on its cycle timer. The campaign is the robustness argument for
    the serving tier: under sustained low-grade chaos plus continuous
    rerandomization, availability holds ≥ 99.9% and rotation itself drops
    nothing.

    The {!report} is bit-identical at any Domain-pool width ([?jobs] /
    [R2C_JOBS]): parallelism only accelerates background epoch compiles,
    never reorders a randomized decision. Wall-clock and job-count are
    therefore kept out of the report and only appended (last) to the JSON
    by the caller. *)

(** Chaos rates applied inside every shard worker (the injection sweep's
    "light" mix). *)
val light_rates : R2c_machine.Inject.rates

(** Diversity configuration the shard images are compiled under. *)
val fleet_dconfig : R2c_core.Dconfig.t

type report = {
  seed : int;
  requests : int;  (** requested campaign length *)
  shards : int;
  epoch_cycles : int;
  incremental : bool;
      (** epoch builds went through the shared per-function codegen cache
          ({!R2c_workloads.Fleetapp.incremental_builder}): rotations move
          only the layout coordinates and relink from cache hits *)
  fleet : R2c_runtime.Fleet.stats;
  pool : R2c_runtime.Pool.stats;
      (** shard-pool totals across every epoch, retired pools included *)
  clock : int;  (** final fleet clock (cycles) *)
  epochs : int;  (** completed rotations *)
  p50 : int;  (** request-latency median, cycles *)
  p99 : int;  (** request-latency tail, cycles *)
  shard_p50 : int list;  (** per-shard latency medians, shard order *)
  shard_p99 : int list;  (** per-shard latency tails, shard order *)
  availability : float;
}

val run :
  ?seed:int ->
  ?requests:int ->
  ?shards:int ->
  ?epoch_cycles:int ->
  ?jobs:int ->
  ?incremental:bool ->
  unit ->
  report

(** [gate r] — the E-FLEET SLO checks; returns the list of violated
    criteria (empty = pass): campaign length, shard count, completed
    rotations, zero rotation-caused drops, availability floor. With
    [?max_p99] (cycles) the latency SLO also binds: the fleet-wide p99
    and every per-shard p99 must stay at or under the ceiling. *)
val gate :
  ?min_requests:int ->
  ?min_shards:int ->
  ?min_rotations:int ->
  ?min_availability:float ->
  ?max_p99:int ->
  report ->
  string list

(** [json ?jobs ?wall_ms r] — the one-line campaign summary. Deterministic
    fields first; [jobs] and [wall_ms] (when given) are appended last so a
    serial-vs-parallel diff can strip them. *)
val json : ?jobs:int -> ?wall_ms:float -> report -> R2c_obs.Json.t

val print : report -> unit
