(** Section 6.2.5's memory overhead: maxrss of the SPEC-shaped suite and
    the webserver workers under full R2C, with the BTDP guard-page share
    isolated by differencing against a full-minus-BTDP build. *)

type row = {
  name : string;
  base_kb : int;
  r2c_kb : int;
  overhead : float;  (** fraction *)
  btdp_share : float;  (** of the overhead attributable to BTDP pages *)
}

(** [run ?seed ?jobs ()] — per-workload rows, fanned out over a
    {!R2c_util.Parallel} domain pool ([jobs] caps it; results are
    independent of [jobs]). *)
val run : ?seed:int -> ?jobs:int -> unit -> row list * row list
(** (spec, webserver) *)

val print : row list * row list -> unit
