(** Incremental rerandomization benchmark and gate (E-RERAND).

    Compiles a Genprog-scale program cold at one coordinate, warms the
    per-function codegen cache, then rotates the link seed
    [rotations] times through {!R2c_core.Pipeline.compile_incremental},
    differentially fingerprinting sampled rotations against cold
    compiles at the same coordinates. A final edit step changes one
    function's IR and asserts the rebuild recompiles exactly that
    function and still matches a cold compile of the edited program.

    The {!report} is deterministic at any Domain-pool width; wall-clock
    lives in {!timing} and is appended to the JSON after ["jobs"], so
    CI's serial-vs-parallel diff can strip the volatile tail. *)

type report = {
  funcs : int;
  config : string;
  body_seed : int;
  base_link_seed : int;
  rotations : int;
  checked : int;  (** rotations differentially checked against cold *)
  identical : bool;  (** warm build and every checked rotation match cold *)
  warm_misses : int;  (** cache misses of the warm (first) build *)
  rotation_hits : int;
  rotation_misses : int;  (** must be 0: rotations recompile nothing *)
  edit_misses : int;  (** must be 1: the edited function only *)
  edit_missed : string list;
  edit_identical : bool;
  cache_entries : int;
}

type timing = { cold_ms : float; incr_ms : float; speedup : float }

val run :
  ?funcs:int ->
  ?config:string ->
  ?body_seed:int ->
  ?base_link_seed:int ->
  ?rotations:int ->
  ?checked:int ->
  ?jobs:int ->
  unit ->
  report * timing

(** Violated criteria (empty = pass). The timing criterion (incremental
    rebuild at least [min_speedup] times faster than cold, default 10)
    binds only when [timing] is given — the deterministic half of the
    gate also serves the test battery, which must not gate on wall
    clock. *)
val gate : ?min_speedup:float -> ?timing:timing -> report -> string list

(** Deterministic fields first; [jobs] opens the volatile tail, timing
    after it. *)
val json : ?jobs:int -> ?timing:timing -> report -> R2c_obs.Json.t

val print : report * timing -> unit
