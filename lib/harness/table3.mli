(** Table 3: the defense comparison. Every cell is *measured*: the attack
    runs against the defense model over several independently seeded
    victim/reference pairs. A filled cell means the defense stopped every
    trial; the overhead column shows our measured SPEC-subset geomean
    beside the number the defense's paper reported.

    The source text of the paper available to this reproduction has
    OCR-damaged glyphs in Table 3, so the paper-side cells are
    reconstructed; see EXPERIMENTS.md. *)

type cell = {
  attack : string;
  trials : int;
  successes : int;
  detections : int;
}

type row = {
  defense : string;
  measured_overhead : float option;  (** geomean on a SPEC subset *)
  icache_miss_pct : float option;
      (** defended builds' aggregate icache miss rate on the subset *)
  peak_depth : int option;  (** deepest call nesting across the subset *)
  paper_overhead : string;
  cpp : bool;
  cells : cell list;
}

(** [run ?trials ?with_overhead ()] — defaults: 3 trials per cell, with the
    overhead column (set [with_overhead:false] to skip the slow part). *)
val run : ?trials:int -> ?with_overhead:bool -> unit -> row list

val print : row list -> unit

(** [glyph cell] — "●" stopped every trial, "○" succeeded in most trials,
    "◐" in between. *)
val glyph : cell -> string
