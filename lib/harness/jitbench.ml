(* E-JIT: the three-tier comparison. Every SPEC-like workload under full
   R2C runs through the reference dispatch, the fast interpreter, and
   tier 3 (template JIT, steady-state: the timed run reuses the code
   cache a warm-up run populated, exactly as a respawned fleet worker
   does), asserting bit-identical counters across all three and gating
   the tier-3 wall-clock win over the reference tier. *)

module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Spec = R2c_workloads.Spec
module Parallel = R2c_util.Parallel
open R2c_machine
module J = R2c_obs.Json

type row = {
  name : string;
  insns : int;
  cycles_bits : int64;  (* exact: Int64.bits_of_float of the cycle total *)
  icache_misses : int;
  identical : bool;  (* all three tiers bit-identical on this workload *)
  compiled : int;  (* functions compiled by the warm + timed runs *)
  entry_enters : int;
  osr_enters : int;
  deopts : int;
  tier3_insns : int;
  interp_insns : int;
}

type report = {
  seed : int;
  config : string;
  fuel : int;
  rows : row list;
  identical : bool;
  compiled_total : int;
  osr_total : int;
  tier3_share : float;  (* fraction of JIT-run instructions retired in tier 3 *)
}

type timing = {
  ref_ms : float;
  fast_ms : float;
  jit_ms : float;
  speedup_fast : float;  (* reference / fast *)
  speedup_jit : float;  (* reference / tier-3 *)
}

(* Everything the contract pins down: counters, architectural effects,
   and the run result. Cycles compared as IEEE bits — "close" is a bug. *)
type fingerprint = {
  fp_result : Cpu.run_result;
  fp_cycles : int64;
  fp_insns : int;
  fp_misses : int;
  fp_accesses : int;
  fp_max_depth : int;
  fp_exit : int;
  fp_out : string;
}

let fingerprint (c : Cpu.t) (r : Cpu.run_result) =
  {
    fp_result = r;
    fp_cycles = Int64.bits_of_float c.Cpu.cycles;
    fp_insns = c.Cpu.insns;
    fp_misses = Icache.misses c.Cpu.icache;
    fp_accesses = Icache.accesses c.Cpu.icache;
    fp_max_depth = c.Cpu.max_depth;
    fp_exit = c.Cpu.exit_code;
    fp_out = Cpu.output c;
  }

let now () = Unix.gettimeofday ()

let run ?(seed = 3) ?(config = "full") ?(fuel = 50_000_000) ?jobs () =
  let cfg =
    match config with
    | "baseline" -> Dconfig.baseline
    | "full" -> Dconfig.full ()
    | "full-checked" -> Dconfig.full_checked
    | "layout" -> Dconfig.layout_only
    | name -> invalid_arg ("jitbench: unknown config " ^ name)
  in
  let benches = Spec.all () in
  (* Image compilation fans out over the Domain pool; the measured runs
     below stay serial so the timings mean something. *)
  let images =
    Parallel.map ?jobs
      (fun (b : Spec.benchmark) -> (b, Pipeline.compile ~seed cfg b.Spec.program))
      benches
  in
  let settle () = Gc.full_major () in
  let profile = Cost.epyc_rome in
  let t_ref = ref 0.0 and t_fast = ref 0.0 and t_jit = ref 0.0 in
  let rows =
    List.map
      (fun ((b : Spec.benchmark), img) ->
        let cache = Jit.create_cache ~profile img in
        (* Warm-up: populates the code cache (and the host's). The timed
           tier-3 leg below is the steady state a fleet worker respawning
           onto a shared cache sees. *)
        ignore (Cpu.run (Loader.load ~jit:true ~jit_cache:cache ~profile img) ~fuel);
        settle ();
        let c_ref = Loader.load ~jit:false ~profile img in
        let t0 = now () in
        let r_ref = Cpu.run_reference c_ref ~fuel in
        t_ref := !t_ref +. (now () -. t0);
        let fp_ref = fingerprint c_ref r_ref in
        settle ();
        let c_fast = Loader.load ~jit:false ~profile img in
        let t0 = now () in
        let r_fast = Cpu.run c_fast ~fuel in
        t_fast := !t_fast +. (now () -. t0);
        let fp_fast = fingerprint c_fast r_fast in
        settle ();
        let c_jit = Loader.load ~jit:true ~jit_cache:cache ~profile img in
        let t0 = now () in
        let r_jit = Cpu.run c_jit ~fuel in
        t_jit := !t_jit +. (now () -. t0);
        let fp_jit = fingerprint c_jit r_jit in
        let st = Jit.cache_stats cache in
        {
          name = b.Spec.name;
          insns = fp_jit.fp_insns;
          cycles_bits = fp_jit.fp_cycles;
          icache_misses = fp_jit.fp_misses;
          identical = fp_ref = fp_fast && fp_ref = fp_jit;
          compiled = st.Jit.compiled;
          entry_enters = st.Jit.entry_enters;
          osr_enters = st.Jit.osr_enters;
          deopts = st.Jit.deopts;
          tier3_insns = st.Jit.tier3_insns;
          interp_insns = st.Jit.interp_insns;
        })
      images
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let t3 = sum (fun r -> r.tier3_insns) and cold = sum (fun r -> r.interp_insns) in
  let report =
    {
      seed;
      config;
      fuel;
      rows;
      identical = List.for_all (fun (r : row) -> r.identical) rows;
      compiled_total = sum (fun r -> r.compiled);
      osr_total = sum (fun r -> r.osr_enters);
      tier3_share =
        (if t3 + cold = 0 then 0.0
         else float_of_int t3 /. float_of_int (t3 + cold));
    }
  in
  let ref_ms = !t_ref *. 1000.0
  and fast_ms = !t_fast *. 1000.0
  and jit_ms = !t_jit *. 1000.0 in
  let timing =
    {
      ref_ms;
      fast_ms;
      jit_ms;
      speedup_fast = (if fast_ms > 0.0 then ref_ms /. fast_ms else 0.0);
      speedup_jit = (if jit_ms > 0.0 then ref_ms /. jit_ms else 0.0);
    }
  in
  (report, timing)

(* The E-JIT gate: the deterministic half (three-way identity, real
   compilation, real OSR entries, tier-3 coverage) always binds; the
   timing floor binds when a timing is supplied. *)
let gate ?(min_speedup = 5.0) ?timing r =
  let checks =
    [
      ("all three tiers bit-identical on every workload", r.identical);
      ( "every workload compiled at least one hot function",
        List.for_all (fun row -> row.compiled > 0) r.rows );
      ("compiled code entered via OSR at least once", r.osr_total > 0);
      ( Printf.sprintf "tier 3 retired >= 50%% of JIT-run instructions (got %.1f%%)"
          (100.0 *. r.tier3_share),
        r.tier3_share >= 0.5 );
    ]
    @
    match timing with
    | None -> []
    | Some t ->
        [
          ( Printf.sprintf "tier 3 >= %.0fx over the reference tier (got %.2fx)"
              min_speedup t.speedup_jit,
            t.speedup_jit >= min_speedup );
        ]
  in
  List.filter_map (fun (what, ok) -> if ok then None else Some what) checks

(* Deterministic fields first; [jobs] opens the volatile tail (the CI
   serial-vs-parallel diff strips from "jobs" on), timings stay last. *)
let json ?jobs ?timing r =
  let row_json row =
    J.Obj
      [
        ("name", J.Str row.name);
        ("insns", J.Int row.insns);
        ("cycles_bits", J.Str (Printf.sprintf "%016Lx" row.cycles_bits));
        ("icache_misses", J.Int row.icache_misses);
        ("identical", J.Bool row.identical);
        ("compiled", J.Int row.compiled);
        ("entry_enters", J.Int row.entry_enters);
        ("osr_enters", J.Int row.osr_enters);
        ("deopts", J.Int row.deopts);
        ("tier3_insns", J.Int row.tier3_insns);
        ("interp_insns", J.Int row.interp_insns);
      ]
  in
  J.Obj
    ([
       ("seed", J.Int r.seed);
       ("config", J.Str r.config);
       ("fuel", J.Int r.fuel);
       ("identical", J.Bool r.identical);
       ("compiled_total", J.Int r.compiled_total);
       ("osr_total", J.Int r.osr_total);
       ("tier3_share", J.Float r.tier3_share);
       ("workloads", J.Arr (List.map row_json r.rows));
     ]
    @ (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @
    match timing with
    | Some t ->
        [
          ("ref_ms", J.Float t.ref_ms);
          ("fast_ms", J.Float t.fast_ms);
          ("jit_ms", J.Float t.jit_ms);
          ("speedup_fast", J.Float t.speedup_fast);
          ("speedup_jit", J.Float t.speedup_jit);
        ]
    | None -> [])

let print (r, t) =
  List.iter
    (fun row ->
      Printf.printf
        "%-12s %9d insns  compiled %3d  entries %7d (osr %5d, deopts %3d)  tier3 \
         %5.1f%%  identical=%b\n"
        row.name row.insns row.compiled
        (row.entry_enters + row.osr_enters)
        row.osr_enters row.deopts
        (let tot = row.tier3_insns + row.interp_insns in
         if tot = 0 then 0.0
         else 100.0 *. float_of_int row.tier3_insns /. float_of_int tot)
        row.identical)
    r.rows;
  Printf.printf
    "TOTAL ref %.1fms fast %.1fms (%.2fx) jit %.1fms (%.2fx)  tier3 share %.1f%%  \
     identical=%b\n"
    t.ref_ms t.fast_ms t.speedup_fast t.jit_ms t.speedup_jit
    (100.0 *. r.tier3_share) r.identical
