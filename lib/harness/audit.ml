module Table = R2c_util.Table
module Dconfig = R2c_core.Dconfig
module Defenses = R2c_defenses.Defenses
module Lint = R2c_analysis.Lint
module Cfg = R2c_analysis.Cfg
module Gadget = R2c_analysis.Gadget
module Selfcheck = R2c_analysis.Selfcheck

type variant = {
  label : string;
  seed : int;
  findings : Lint.finding list;
  n_gadgets : int;
  cfg_stats : Cfg.stats;
}

type dataflow_row = {
  dwork : string;
  dead_stores : int;
  folded : int;
  max_iterations : int;
}

type t = {
  ir_checked : (string * string list) list;
  dataflow : dataflow_row list;
  r2c : variant list;
  r2c_survivors : int;
  baseline : variant list;
  baseline_survivors : int;
  checked : variant;
  selfcheck : Selfcheck.outcome list;
  ir_selfcheck : Selfcheck.ir_outcome list;
}

let default_seeds = [ 2; 3; 5; 7; 11 ]

(* Every IR program the repo generates, named; `make check` validates the
   lot, so a Builder or workload-generator regression fails loudly. *)
let ir_programs () =
  List.concat
    [
      List.map
        (fun (b : R2c_workloads.Spec.benchmark) -> (b.name, b.program))
        (R2c_workloads.Spec.all ());
      [
        ("nginx", R2c_workloads.Webserver.server `Nginx ~requests:40);
        ("apache", R2c_workloads.Webserver.server `Apache ~requests:40);
        ("vulnapp", R2c_workloads.Vulnapp.program ());
        ("genprog-200", R2c_workloads.Genprog.generate ~seed:1 ~funcs:200);
        ("browser", R2c_workloads.Browser.program ~pages:2);
      ];
    ]

let check_ir () =
  List.map
    (fun (name, p) ->
      (name, List.map Validate.error_to_string (Validate.check p)))
    (ir_programs ())

(* Dataflow statistics per workload: how much the solver sees. Dead
   stores come from the liveness-backed lint rule (a clean workload has
   none); folded instructions and sweep counts from the CCP/liveness/
   reaching fixpoints. *)
let dataflow_stats () =
  List.map
    (fun (name, p) ->
      let s = R2c_analysis.Dataflow.program_stats p in
      let dead =
        List.length
          (List.filter
             (fun (f : Lint.ir_finding) -> f.Lint.ir_rule = "dead-store")
             (Lint.run_ir p))
      in
      {
        dwork = name;
        dead_stores = dead;
        folded = s.R2c_analysis.Dataflow.folded;
        max_iterations = s.R2c_analysis.Dataflow.max_iterations;
      })
    (ir_programs ())

let audit_variant ~label ~expect ~seed img =
  {
    label;
    seed;
    findings = Lint.run ~expect img;
    n_gadgets = List.length (Gadget.scan img);
    cfg_stats = Cfg.stats (Cfg.recover img);
  }

let run ?(seeds = default_seeds) () =
  let ir_checked = check_ir () in
  let dataflow = dataflow_stats () in
  let full_expect = Lint.expect_of_dconfig (Dconfig.full ()) in
  let r2c_images =
    List.map (fun seed -> (seed, Defenses.build_vulnapp Defenses.r2c ~seed)) seeds
  in
  let r2c =
    List.map
      (fun (seed, img) -> audit_variant ~label:"r2c" ~expect:full_expect ~seed img)
      r2c_images
  in
  let r2c_survivors =
    List.length (Gadget.survivors (List.map (fun (_, img) -> Gadget.scan img) r2c_images))
  in
  let baseline_images =
    List.map (fun seed -> (seed, R2c_workloads.Vulnapp.build ~seed Dconfig.baseline)) seeds
  in
  let baseline_expect = Lint.expect_of_dconfig Dconfig.baseline in
  let baseline =
    List.map
      (fun (seed, img) -> audit_variant ~label:"baseline" ~expect:baseline_expect ~seed img)
      baseline_images
  in
  let baseline_survivors =
    List.length
      (Gadget.survivors (List.map (fun (_, img) -> Gadget.scan img) baseline_images))
  in
  let checked_expect = Lint.expect_of_dconfig Dconfig.full_checked in
  let checked_img = Defenses.build_vulnapp Defenses.r2c_checked ~seed:3 in
  let checked =
    audit_variant ~label:"r2c-checked" ~expect:checked_expect ~seed:3 checked_img
  in
  let selfcheck = Selfcheck.run ~expect:checked_expect checked_img in
  let ir_selfcheck = Selfcheck.run_ir () in
  { ir_checked; dataflow; r2c; r2c_survivors; baseline; baseline_survivors; checked;
    selfcheck; ir_selfcheck }

let min_gadgets variants =
  List.fold_left (fun acc v -> min acc v.n_gadgets) max_int variants

let ok t =
  List.for_all (fun (_, errs) -> errs = []) t.ir_checked
  && List.for_all (fun v -> v.findings = []) (t.checked :: t.r2c @ t.baseline)
  && List.for_all (fun (o : Selfcheck.outcome) -> o.ok) t.selfcheck
  && List.for_all (fun (o : Selfcheck.ir_outcome) -> o.ir_ok) t.ir_selfcheck
  && t.r2c_survivors < min_gadgets t.r2c

let print t =
  let ir_bad = List.filter (fun (_, errs) -> errs <> []) t.ir_checked in
  Printf.printf "IR validation: %d workload programs, %d with diagnostics\n"
    (List.length t.ir_checked) (List.length ir_bad);
  List.iter
    (fun (name, errs) ->
      List.iter (fun e -> Printf.printf "  %s: %s\n" name e) errs)
    ir_bad;
  Table.print ~title:"IR dataflow statistics (per workload)"
    ~headers:[ "workload"; "dead stores"; "folded"; "max iters" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    (List.map
       (fun d ->
         [
           d.dwork;
           string_of_int d.dead_stores;
           string_of_int d.folded;
           string_of_int d.max_iterations;
         ])
       t.dataflow);
  let variant_row v =
    [
      v.label;
      string_of_int v.seed;
      string_of_int (List.length v.findings);
      string_of_int v.cfg_stats.Cfg.n_funcs;
      string_of_int v.cfg_stats.Cfg.n_blocks;
      string_of_int v.cfg_stats.Cfg.n_edges;
      string_of_int v.n_gadgets;
    ]
  in
  Table.print ~title:"Static image audit (vulnapp)"
    ~headers:[ "config"; "seed"; "findings"; "funcs"; "blocks"; "edges"; "gadgets" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
              Table.Right; Table.Right ]
    (List.map variant_row (t.r2c @ t.baseline @ [ t.checked ]));
  List.iter
    (fun v ->
      List.iter
        (fun f -> Printf.printf "  %s seed %d: %s\n" v.label v.seed (Lint.finding_to_string f))
        v.findings)
    (t.r2c @ t.baseline @ [ t.checked ]);
  Printf.printf
    "Gadget survivors across %d diversified r2c variants: %d (min single-variant %d)\n"
    (List.length t.r2c) t.r2c_survivors (min_gadgets t.r2c);
  Printf.printf "Gadget survivors across %d identical baseline variants: %d\n"
    (List.length t.baseline) t.baseline_survivors;
  Table.print ~title:"Sanitizer wiring self-check (r2c-checked image)"
    ~headers:[ "mutation"; "expected rule"; "rules hit"; "findings"; "verdict" ]
    (List.map
       (fun (o : Selfcheck.outcome) ->
         [
           Selfcheck.mutation_to_string o.mutation;
           o.expected;
           String.concat "," o.rules_hit;
           string_of_int o.n_findings;
           (if o.ok then "ok" else "MISWIRED");
         ])
       t.selfcheck);
  Table.print ~title:"IR rule pack + validator wiring self-check"
    ~headers:[ "mutation"; "expected rule"; "rules hit"; "findings"; "verdict" ]
    (List.map
       (fun (o : Selfcheck.ir_outcome) ->
         [
           Selfcheck.ir_mutation_to_string o.ir_mutation;
           o.ir_expected;
           String.concat "," o.ir_rules_hit;
           string_of_int o.ir_n_findings;
           (if o.ir_ok then "ok" else "MISWIRED");
         ])
       t.ir_selfcheck);
  Printf.printf "Audit: %s\n" (if ok t then "CLEAN" else "FINDINGS")
