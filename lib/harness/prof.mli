(** Profiling harness: one workload, baseline vs one R2C configuration,
    measured side by side with the {!R2c_obs.Profile} per-step profiler,
    plus an observed worker-pool run for the Chrome-trace timeline export
    (experiment E-PROF). *)

type side = {
  label : string;
  stats : Measure.stats;
  prof : R2c_obs.Profile.t;
}

type result = {
  workload : string;
  cfg_name : string;
  base : side;
  r2c : side;
  sink : R2c_obs.Sink.t;  (** holds both profiles, metrics and spans *)
}

(** [run ?cfg ?cfg_name ?seed ?profile ~workload ()] — measure the named
    SPEC-shaped workload baseline and under [cfg] (default full R2C), with
    the profiler attached to both runs. *)
val run :
  ?cfg:R2c_core.Dconfig.t ->
  ?cfg_name:string ->
  ?seed:int ->
  ?profile:R2c_machine.Cost.profile ->
  workload:string ->
  unit ->
  result

(** [sums_ok ?tol r] — the profiler's column sums reproduce the CPU's own
    counters on both sides: insns and icache misses exactly, cycles within
    [tol] (default 1%). *)
val sums_ok : ?tol:float -> result -> bool

(** [print ?top r] — side-by-side per-function cycle table (descending by
    diversified cycles) with the callsite / prologue / icache / other
    overhead split, followed by icache and call-depth summary lines. *)
val print : ?top:int -> result -> unit

(** [pool_timeline ?requests ?seed ()] — run the chaos victim pool under
    observation on a mixed legitimate/attack request stream; returns the
    sink (whose event timeline a caller exports via
    {!R2c_obs.Events.to_chrome}) and the pool's final stats. *)
val pool_timeline :
  ?requests:int -> ?seed:int -> unit -> R2c_obs.Sink.t * R2c_runtime.Pool.stats
