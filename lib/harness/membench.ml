module Table = R2c_util.Table
module Stats = R2c_util.Stats
module Dconfig = R2c_core.Dconfig

type row = {
  name : string;
  base_kb : int;
  r2c_kb : int;
  overhead : float;
  btdp_share : float;
}

let measure_one ~seed name program =
  let full = Dconfig.full () in
  let no_btdp = { full with Dconfig.btdp = None } in
  let rss img = (Measure.run img).Measure.maxrss_bytes in
  let base = rss (R2c_compiler.Driver.compile program) in
  let r2c = rss (R2c_core.Pipeline.compile ~seed full program) in
  let without_btdp = rss (R2c_core.Pipeline.compile ~seed no_btdp program) in
  let overhead_bytes = max 1 (r2c - base) in
  {
    name;
    base_kb = base / 1024;
    r2c_kb = r2c / 1024;
    overhead = float_of_int (r2c - base) /. float_of_int base;
    btdp_share = float_of_int (r2c - without_btdp) /. float_of_int overhead_bytes;
  }

let run ?(seed = 17) ?jobs () =
  (* One flat task list over both suites: each row compiles three images
     (base, full, full-minus-BTDP) and runs them, all from this row's own
     inputs — independent work fanned out over the domain pool. *)
  let spec_tasks =
    List.map
      (fun (b : R2c_workloads.Spec.benchmark) () -> measure_one ~seed b.name b.program)
      (R2c_workloads.Spec.all ())
  in
  let web_tasks =
    List.map
      (fun (fl, name) () ->
        measure_one ~seed name (R2c_workloads.Webserver.server fl ~requests:200))
      [ (`Nginx, "nginx"); (`Apache, "apache") ]
  in
  let rows = R2c_util.Parallel.tasks ?jobs (spec_tasks @ web_tasks) in
  let nspec = List.length spec_tasks in
  (List.filteri (fun i _ -> i < nspec) rows, List.filteri (fun i _ -> i >= nspec) rows)

let print (spec, web) =
  let render rows =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.base_kb;
          string_of_int r.r2c_kb;
          Table.pct r.overhead;
          Table.pct r.btdp_share;
        ])
      rows
  in
  Table.print ~title:"Memory overhead (maxrss)"
    ~headers:[ "workload"; "base KB"; "R2C KB"; "overhead"; "BTDP share" ]
    ~aligns:[ Table.Left; Right; Right; Right; Right ]
    (render spec @ render web);
  let lo, hi = Paper.spec_memory_overhead in
  Printf.printf
    "paper: SPEC %.0f-%.0f%%; webserver ~%.0f%% of which ~%.0f%% from BTDP pages\n"
    (lo *. 100.0) (hi *. 100.0)
    (Paper.webserver_memory_overhead *. 100.0)
    (Paper.webserver_memory_btdp_share *. 100.0);
  Printf.printf "measured SPEC median: %s\n"
    (Table.pct (Stats.median (List.map (fun r -> r.overhead) spec)))
