(** Record-reduce-replay campaign (E-REPLAY).

    For each capture case — the {!Fleetapp} server under a deterministic
    periodic request stream, and a generated {!Genprog} compute program —
    the campaign records a full builtin-boundary trace
    ({!R2c_replay.Record}), delta-debugs it down to the semantic core
    ({!R2c_replay.Reduce}), and replays the reduced trace as a standalone
    benchmark ({!R2c_replay.Replayer}), asserting the replay reproduces
    the recorded cycles, instructions and icache traffic within 1%.

    Cases fan out over {!R2c_util.Parallel}; each case is internally
    sequential and fully deterministic (simulated time only), so the
    {!report} is bit-identical at any Domain-pool width. Wall-clock and
    job count are appended last to the JSON by the caller, never stored
    in the report. *)

type case = {
  c_name : string;
  c_meta : R2c_replay.Trace.meta;
  c_program : Ir.program;
  c_inputs : string list;
}

(** The standard corpus: [fleetapp] (periodic request traffic, the
    reduction-ratio workhorse) and [genprog] (no input, pure compute). *)
val cases : unit -> case list

type case_report = {
  cr_name : string;
  cr_trace : R2c_replay.Trace.t;  (** the reduced trace *)
  cr_reduce : R2c_replay.Reduce.report;
  cr_replay : R2c_replay.Replayer.run;  (** final replay of the reduced trace *)
  cr_failures : string list;  (** fidelity failures of that final replay *)
}

type report = { case_reports : case_report list }

(** [run ?tolerance ?max_checks ?jobs ()] — record, reduce and replay
    every case. [Error] if any case fails to record or replay outright
    (fault, fuel); fidelity mismatches are reported per-case, not
    errors. *)
val run :
  ?tolerance:float -> ?max_checks:int -> ?jobs:int -> unit -> (report, string) result

(** [gate ?min_reduction r] — violated criteria (empty = pass): every
    replay within tolerance, and every input-driven case reduced by at
    least [min_reduction] (default 0.30) of its event/dictionary bytes. *)
val gate : ?min_reduction:float -> report -> string list

(** [save_corpus ~dir r] — write each reduced trace to
    [dir/<name>.r2cr]; returns the paths written. *)
val save_corpus : dir:string -> report -> string list

(** Deterministic fields first; [jobs]/[wall_ms] appended last. *)
val json : ?jobs:int -> ?wall_ms:float -> report -> R2c_obs.Json.t

val print : report -> unit
