module Fleet = R2c_runtime.Fleet
module Pool = R2c_runtime.Pool
module Inject = R2c_machine.Inject
module Rng = R2c_util.Rng
module J = R2c_obs.Json

(* Sustained low-grade chaos: bit flips, corrupted loads and spurious
   faults at half the injection sweep's "light" mix. The sweep's rates
   are sized for 120-request bursts; over a 100k-request campaign they
   keep roughly half the fleet's workers inside a crash-recovery window
   at any instant — a saturation study, not an SLO. This mix still
   crashes workers continuously (hundreds of rerandomizing respawns per
   campaign) while leaving the 99.9% floor reachable by a correct
   balancer. *)
let light_rates =
  {
    Inject.bitflip = 0.00001;
    load_corrupt = 0.00001;
    spurious_fault = 0.000005;
    fuel_cut = 0.0;
  }

let fleet_dconfig = R2c_core.Dconfig.full_checked

let fleet_cfg ~seed ~shards ~epoch_cycles ~jobs =
  {
    Fleet.default_config with
    Fleet.shards;
    seed;
    epoch_cycles;
    jobs;
    shard = { Fleet.default_config.Fleet.shard with Pool.inject = light_rates };
  }

type report = {
  seed : int;
  requests : int;
  shards : int;
  epoch_cycles : int;
  incremental : bool;
  fleet : Fleet.stats;
  pool : Pool.stats;  (** shard-pool totals incl. retired epochs *)
  clock : int;
  epochs : int;
  p50 : int;
  p99 : int;
  shard_p50 : int list;  (** per-shard latency medians, shard order *)
  shard_p99 : int list;  (** per-shard latency tails, shard order *)
  availability : float;
}

(* Deterministic traffic: short GET lines whose item ids come from a
   payload RNG derived from the master seed. Payloads stay well under the
   handler's 64-byte buffer — fleet campaigns measure chaos resilience,
   not attack response (that is [Chaos]'s job). *)
let payload rng = Printf.sprintf "GET /item/%d" (Rng.int rng 100_000)

let run ?(seed = 11) ?(requests = 100_000) ?(shards = 4)
    ?(epoch_cycles = Fleet.default_config.Fleet.epoch_cycles) ?(jobs = 0)
    ?(incremental = false) () =
  let cfg = fleet_cfg ~seed ~shards ~epoch_cycles ~jobs in
  (* Incremental mode: epoch and shard seeds rotate only the layout
     coordinates through one shared per-function codegen cache — every
     rotation after the fleet's first build is a cache-hit relink. The
     body diversification is pinned at the campaign seed. *)
  let build =
    if incremental then
      R2c_workloads.Fleetapp.incremental_builder ~body_seed:seed
        ?jobs:(if jobs > 0 then Some jobs else None)
        fleet_dconfig
    else fun ~seed -> R2c_workloads.Fleetapp.build ~seed fleet_dconfig
  in
  let fleet =
    Fleet.create ~cfg ~build ~break_sym:R2c_workloads.Fleetapp.break_symbol ()
  in
  let rng = Rng.create (seed + 0x5eed) in
  for _ = 1 to requests do
    ignore (Fleet.submit fleet (payload rng))
  done;
  let stats = Fleet.stats fleet in
  {
    seed;
    requests;
    shards;
    epoch_cycles;
    incremental;
    fleet = stats;
    pool = Fleet.pool_totals fleet;
    clock = Fleet.clock fleet;
    epochs = Fleet.epoch fleet;
    p50 = Fleet.percentile fleet 50.0;
    p99 = Fleet.percentile fleet 99.0;
    shard_p50 = List.init shards (fun i -> Fleet.shard_percentile fleet i 50.0);
    shard_p99 = List.init shards (fun i -> Fleet.shard_percentile fleet i 99.0);
    availability = Fleet.availability stats;
  }

(* The SLO gate (E-FLEET acceptance): empty list = pass. *)
let gate ?(min_requests = 100_000) ?(min_shards = 4) ?(min_rotations = 3)
    ?(min_availability = 0.999) ?max_p99 r =
  let fails = ref [] in
  let check cond msg = if not cond then fails := msg :: !fails in
  check
    (r.fleet.Fleet.submitted >= min_requests)
    (Printf.sprintf "requests %d < %d" r.fleet.Fleet.submitted min_requests);
  check (r.shards >= min_shards) (Printf.sprintf "shards %d < %d" r.shards min_shards);
  check
    (r.fleet.Fleet.rotations >= min_rotations)
    (Printf.sprintf "rotations %d < %d" r.fleet.Fleet.rotations min_rotations);
  check
    (r.fleet.Fleet.rotation_drops = 0)
    (Printf.sprintf "rotation_drops %d <> 0" r.fleet.Fleet.rotation_drops);
  check
    (r.availability >= min_availability)
    (Printf.sprintf "availability %.5f < %.3f" r.availability min_availability);
  (* Latency SLO (ROADMAP item 3): opt-in ceiling on the tail, checked
     fleet-wide and per shard so one degraded shard cannot hide behind a
     healthy aggregate. *)
  (match max_p99 with
  | None -> ()
  | Some ceiling ->
      check (r.p99 <= ceiling) (Printf.sprintf "p99 %d > %d cycles" r.p99 ceiling);
      List.iteri
        (fun i p ->
          check (p <= ceiling)
            (Printf.sprintf "shard %d p99 %d > %d cycles" i p ceiling))
        r.shard_p99);
  List.rev !fails

(* One-line JSON. Deterministic fields first; the volatile run metadata
   ([jobs], [wall_ms]) last so CI's serial-vs-parallel diff can strip it
   with a tail cut. *)
let json ?jobs ?wall_ms r =
  let f = r.fleet and p = r.pool in
  J.Obj
    ([
       ("seed", J.Int r.seed);
       ("requests", J.Int f.Fleet.submitted);
       ("shards", J.Int r.shards);
       ("epoch_cycles", J.Int r.epoch_cycles);
       ("incremental", J.Bool r.incremental);
       ("served", J.Int f.Fleet.served);
       ("dropped", J.Int f.Fleet.dropped);
       ("shed", J.Int f.Fleet.shed);
       ("rejected", J.Int f.Fleet.rejected);
       ("hedges", J.Int f.Fleet.hedges);
       ("availability", J.Float r.availability);
       ("p50_cycles", J.Int r.p50);
       ("p99_cycles", J.Int r.p99);
       ("shard_p50_cycles", J.Arr (List.map (fun p -> J.Int p) r.shard_p50));
       ("shard_p99_cycles", J.Arr (List.map (fun p -> J.Int p) r.shard_p99));
       ("clock_cycles", J.Int r.clock);
       ("epochs", J.Int r.epochs);
       ("rotations", J.Int f.Fleet.rotations);
       ("rotation_drops", J.Int f.Fleet.rotation_drops);
       ("drops_during_rotation", J.Int f.Fleet.drops_during_rotation);
       ("canary_failures", J.Int f.Fleet.canary_failures);
       ("quarantines", J.Int f.Fleet.quarantines);
       ("max_queue_depth", J.Int f.Fleet.max_queue_depth);
       ("pool_crashes", J.Int p.Pool.crashes);
       ("pool_detections", J.Int p.Pool.detections);
       ("pool_restarts", J.Int p.Pool.restarts);
       ("pool_rerandomizations", J.Int p.Pool.rerandomizations);
       ("gate_failures", J.Arr (List.map (fun m -> J.Str m) (gate r)));
     ]
    @ (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @ match wall_ms with Some w -> [ ("wall_ms", J.Float w) ] | None -> [])

let print r =
  let f = r.fleet in
  Printf.printf "Fleet campaign (seed %d): %d requests over %d shards\n" r.seed
    f.Fleet.submitted r.shards;
  Printf.printf
    "  served %d  dropped %d (shed %d, rejected %d)  availability %.5f\n"
    f.Fleet.served f.Fleet.dropped f.Fleet.shed f.Fleet.rejected r.availability;
  Printf.printf "  latency p50 %d cycles  p99 %d cycles  fleet clock %d\n" r.p50 r.p99
    r.clock;
  Printf.printf "  per-shard p50/p99:%s\n"
    (String.concat ""
       (List.map2
          (fun a b -> Printf.sprintf "  %d/%d" a b)
          r.shard_p50 r.shard_p99));
  Printf.printf
    "  rotations %d (epoch %d, rotation drops %d, drops during rotation %d, canary \
     failures %d)\n"
    f.Fleet.rotations r.epochs f.Fleet.rotation_drops f.Fleet.drops_during_rotation
    f.Fleet.canary_failures;
  Printf.printf "  hedges %d  quarantines %d  max queue depth %d\n" f.Fleet.hedges
    f.Fleet.quarantines f.Fleet.max_queue_depth;
  Printf.printf "  shard pools: crashes %d  detections %d  restarts %d  rerandomizations %d\n"
    r.pool.Pool.crashes r.pool.Pool.detections r.pool.Pool.restarts
    r.pool.Pool.rerandomizations;
  (match gate r with
  | [] -> Printf.printf "  SLO gate: PASS\n"
  | fails ->
      Printf.printf "  SLO gate: FAIL\n";
      List.iter (fun m -> Printf.printf "    - %s\n" m) fails);
  flush stdout
