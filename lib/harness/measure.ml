open R2c_machine
module Stats = R2c_util.Stats
module Obs = R2c_obs

type stats = {
  total_cycles : float;
  steady_cycles : float;
  calls : int;
  insns : int;
  maxrss_bytes : int;
  icache_accesses : int;
  icache_misses : int;
  peak_depth : int;
}

let run ?(profile = Cost.epyc_rome) ?obs ?(label = "measure") img =
  let p = Process.start ~profile img in
  let prof =
    match obs with
    | None -> None
    | Some _ ->
        let pr = Obs.Profile.create ~profile img in
        Obs.Profile.attach pr p.Process.cpu;
        Some pr
  in
  let main_addr = Image.symbol img "main" in
  (match Process.run_until p ~break:[ main_addr ] with
  | `Hit -> ()
  | `Done o -> failwith ("Measure.run: never reached main: " ^ Process.outcome_to_string o));
  let at_main = Process.cycles p in
  match Process.run p with
  | Process.Exited 0 ->
      (match (obs, prof) with
      | Some sink, Some pr ->
          Obs.Sink.add_profile sink label pr;
          Obs.Profile.publish pr ~prefix:label sink.Obs.Sink.metrics;
          Obs.Events.complete ~cat:"measure"
            ~args:
              [
                ("insns", string_of_int (Process.insns p));
                ("icache_misses", string_of_int (Process.icache_misses p));
              ]
            sink.Obs.Sink.events ~name:label ~ts:0
            ~dur:(int_of_float (Process.cycles p))
      | _ -> ());
      {
        total_cycles = Process.cycles p;
        steady_cycles = Process.cycles p -. at_main;
        calls = Process.calls p;
        insns = Process.insns p;
        maxrss_bytes = Process.maxrss_bytes p;
        icache_accesses = Process.icache_accesses p;
        icache_misses = Process.icache_misses p;
        peak_depth = Process.max_depth p;
      }
  | o -> failwith ("Measure.run: " ^ Process.outcome_to_string o)

let overhead ?profile ~seeds cfg program =
  let base = (run ?profile (R2c_compiler.Driver.compile program)).steady_cycles in
  let ratios =
    List.map
      (fun seed ->
        let img = R2c_core.Pipeline.compile ~seed cfg program in
        (run ?profile img).steady_cycles /. base)
      seeds
  in
  Stats.median ratios

let suite_overheads ?profile ~seeds cfg =
  List.map
    (fun (b : R2c_workloads.Spec.benchmark) ->
      (b.name, overhead ?profile ~seeds cfg b.program))
    (R2c_workloads.Spec.all ())

let geomean_max rows =
  let values = List.map snd rows in
  (Stats.maximum values, Stats.geomean values)
