module Table = R2c_util.Table
module Stats = R2c_util.Stats
module Parallel = R2c_util.Parallel

type machine_result = {
  machine : string;
  per_benchmark : (string * float) list;
  geomean : float;
}

(* The machine x benchmark matrix is embarrassingly parallel: every cell
   compiles and runs its own images. Flattening both axes into one task
   list keeps all domains busy even when one machine's column is slower
   than another's; [Parallel.map] preserves cell order, so regrouping by
   machine reproduces the serial result exactly. *)
let run ?(seeds = [ 5; 13; 29 ]) ?jobs () =
  let cfg = R2c_core.Dconfig.full () in
  let machines = R2c_machine.Cost.all_machines in
  let benchmarks = R2c_workloads.Spec.all () in
  let cells =
    List.concat_map
      (fun profile ->
        List.map (fun (b : R2c_workloads.Spec.benchmark) -> (profile, b)) benchmarks)
      machines
  in
  let overheads =
    Parallel.map ?jobs
      (fun ((profile : R2c_machine.Cost.profile), (b : R2c_workloads.Spec.benchmark)) ->
        (b.name, Measure.overhead ~profile ~seeds cfg b.program))
      cells
  in
  List.mapi
    (fun i (profile : R2c_machine.Cost.profile) ->
      let nb = List.length benchmarks in
      let per_benchmark = List.filteri (fun j _ -> j / nb = i) overheads in
      {
        machine = profile.R2c_machine.Cost.name;
        per_benchmark;
        geomean = Stats.geomean (List.map snd per_benchmark);
      })
    machines

let bar width ratio =
  (* Scale: 25% overhead = full width. *)
  let n = int_of_float (Float.min 1.0 ((ratio -. 1.0) /. 0.25) *. float_of_int width) in
  String.make (max 0 n) '#'

let print results =
  let benchmarks = List.map fst (List.hd results).per_benchmark in
  let headers = "benchmark" :: List.map (fun r -> r.machine) results @ [ "bars (i9)" ] in
  let rows =
    List.map
      (fun b ->
        let cells =
          List.map
            (fun r -> Table.pct (List.assoc b r.per_benchmark -. 1.0))
            results
        in
        let first = List.assoc b (List.hd results).per_benchmark in
        (b :: cells) @ [ bar 24 first ])
      benchmarks
  in
  let geo_row =
    ("geomean" :: List.map (fun r -> Table.pct (r.geomean -. 1.0)) results) @ [ "" ]
  in
  Table.print ~title:"Figure 6: full R2C overhead per machine"
    ~headers
    ~aligns:[ Table.Left; Right; Right; Right; Right; Left ]
    (rows @ [ geo_row ]);
  let lo, hi = Paper.figure6_geomean_range in
  Printf.printf "paper: geomean %.1f%% - %.1f%% across machines; worst case %s at %.0f%%\n"
    ((lo -. 1.0) *. 100.0)
    ((hi -. 1.0) *. 100.0)
    (fst Paper.figure6_worst)
    ((snd Paper.figure6_worst -. 1.0) *. 100.0)
