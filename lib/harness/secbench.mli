(** Section 7.2's probabilistic security claims, cross-checked empirically:

    - return-address camouflage: how many return-address candidates an
      attacker actually sees in a leaked R2C frame, versus the analytic
      1/(R+1) guess probability (Section 7.2.1);
    - heap-pointer camouflage: benign-vs-BTDP population in the leaked
      stack and the H/(H+B) pick probability (Section 7.2.3);
    - Monte-Carlo campaigns: AOCR and Blind ROP trial batteries with
      detection statistics (Sections 7.2 and 7.3). *)

type t = {
  ra_candidates_mean : float;  (** text-range words around the RA slot *)
  analytic_ra_p : float;
  empirical_ra_p : float;
  heap_benign_mean : float;
  heap_btdp_mean : float;
  analytic_pick_p : float;
  empirical_pick_p : float;
  aocr_trials : int;
  aocr_successes : int;
  aocr_detections : int;
  brop_trials : int;
  brop_successes : int;
  brop_detections : int;
}

(** [run ?trials ?jobs ()] — the frame-census, AOCR and Blind-ROP trial
    batteries, fanned out per trial over a {!R2c_util.Parallel} domain
    pool ([jobs] caps it; results are independent of [jobs]). *)
val run : ?trials:int -> ?jobs:int -> unit -> t
val print : t -> unit
