(** The translation-validation gate (E-TVAL, `experiments tval`).

    Statically validates every bundled workload program under every
    {!R2c_fuzz.Oracle.matrix} configuration point: the {!R2c_analysis.Tval}
    symbolic refinement check over the emitted code, plus the
    {!R2c_analysis.Lint} IR rule pack over the input program. The fuzz
    reproducer corpus replays through the same validator, and the three
    {!R2c_fuzz.Oracle.plant} miscompiles are re-introduced and must each
    be caught *statically* — no execution anywhere in this gate.

    The report is bit-identical at any Domain-pool width ([?jobs] /
    [$R2C_JOBS]): units fan out over {!R2c_util.Parallel.map}, which
    preserves task order, and every finding is deterministic. Wall-clock
    and job count are therefore kept out of the report and only appended
    (last) to the JSON by the caller. *)

type point = {
  pname : string;  (** matrix point *)
  pfuncs : int;  (** functions validated (IR + BTDP constructor) *)
  pblocks : int;  (** basic blocks symbolically executed *)
  pfindings : string list;  (** rendered {!R2c_analysis.Tval.finding}s *)
}

type workload = {
  wname : string;
  ir_findings : string list;  (** rendered IR lint findings (config-free) *)
  points : point list;  (** one per matrix point, in matrix order *)
}

type plant = {
  plname : string;
  plpoint : string;  (** config the plant was compiled under *)
  caught : int;  (** validator findings against the unplanted IR *)
}

type replay = {
  rpath : string;
  rerrors : string list;  (** parse/validate/tval failures *)
}

type report = {
  seed : int;
  workloads : workload list;
  plants : plant list;
  corpus : replay list;
}

(** [run ?seed ?jobs ?corpus_dir ()] — the full gate. [seed] is the
    diversification seed every point compiles under (default 3, the fuzz
    oracle's); [corpus_dir] defaults to [test/corpus]. *)
val run : ?seed:int -> ?jobs:int -> ?corpus_dir:string -> unit -> report

(** [gate r] — violated criteria (empty = pass): zero validator and IR
    findings on every workload x point, every plant caught at every
    point it was compiled under, zero corpus replay failures, and
    non-trivial coverage (>= 17 workloads, >= 11 points). *)
val gate : report -> string list

(** [json ?jobs ?wall_ms r] — the one-line summary; deterministic fields
    first, volatile run metadata last. *)
val json : ?jobs:int -> ?wall_ms:float -> report -> R2c_obs.Json.t

val print : report -> unit
