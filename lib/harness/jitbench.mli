(** E-JIT: three-tier comparison on the SPEC-like workload set.

    Each workload is compiled once under a diversity config, then run
    through all three execution tiers:

    - {b reference}: {!R2c_machine.Cpu.run_reference}, the plain decoded
      interpreter the validator trusts;
    - {b fast}: {!R2c_machine.Cpu.run} with the JIT disabled — the
      predecoded interpreter;
    - {b tier 3}: {!R2c_machine.Cpu.run} with the template JIT attached,
      timed in steady state: the timed run shares the code cache a
      warm-up run populated, the regime a respawning fleet worker is in
      (see {!R2c_machine.Process.restart}).

    The three-way bit-identicality contract is asserted per workload
    (cycles as IEEE-754 bits, instruction and icache counters, call
    depth, output, exit code, run result), and the gate additionally
    demands a wall-clock floor for tier 3 over the reference tier. *)

type row = {
  name : string;
  insns : int;
  cycles_bits : int64;  (** [Int64.bits_of_float] of the cycle total *)
  icache_misses : int;
  identical : bool;  (** all three tiers bit-identical on this workload *)
  compiled : int;  (** functions compiled (warm + timed runs) *)
  entry_enters : int;  (** tier-3 entries at function entry *)
  osr_enters : int;  (** tier-3 entries at loop backedges (OSR) *)
  deopts : int;
  tier3_insns : int;
  interp_insns : int;
}

type report = {
  seed : int;
  config : string;
  fuel : int;
  rows : row list;
  identical : bool;
  compiled_total : int;
  osr_total : int;
  tier3_share : float;
      (** fraction of instructions the JIT-attached runs retired in
          compiled code (warm-up included) *)
}

type timing = {
  ref_ms : float;
  fast_ms : float;
  jit_ms : float;
  speedup_fast : float;  (** reference / fast *)
  speedup_jit : float;  (** reference / tier 3 *)
}

(** [run ?seed ?config ?fuel ?jobs ()] — compile the 12 workloads
    ([?jobs] fans the compilations over the domain pool; the measured
    runs are always serial) and produce the report plus wall-clock
    timings. Defaults: seed 3, config ["full"], fuel 50M. *)
val run :
  ?seed:int -> ?config:string -> ?fuel:int -> ?jobs:int -> unit -> report * timing

(** [gate ?min_speedup ?timing r] — failure strings, empty when the run
    passes. Deterministic checks (three-way identity everywhere, every
    workload compiled something, OSR actually exercised, tier-3
    instruction share >= 50%) always apply; the [min_speedup] floor
    (default 5x over the reference tier) applies when [timing] is
    given. *)
val gate : ?min_speedup:float -> ?timing:timing -> report -> string list

(** [json ?jobs ?timing r] — deterministic fields first; [jobs] opens
    the volatile tail, timing fields come last. *)
val json : ?jobs:int -> ?timing:timing -> report -> R2c_obs.Json.t

val print : report * timing -> unit
