(** The static audit gate: IR validation over every generated workload,
    the image linter over diversified vulnapp variants, the gadget-surface
    survivor intersection, and the sanitizer wiring self-check — the
    `experiments audit` subcommand and the `make check` lint step.

    A clean run means: zero IR diagnostics, zero lint findings on every
    unmodified image, every seeded mutation flagged by exactly its rule,
    and a cross-variant gadget survivor count strictly below every single
    variant's gadget count. *)

type variant = {
  label : string;
  seed : int;
  findings : R2c_analysis.Lint.finding list;
  n_gadgets : int;
  cfg_stats : R2c_analysis.Cfg.stats;
}

(** Per-workload dataflow statistics: dead stores flagged by the
    liveness lint rule, instructions the conditional constant propagator
    folds, and the worst fixpoint sweep count over all three analyses. *)
type dataflow_row = {
  dwork : string;
  dead_stores : int;
  folded : int;
  max_iterations : int;
}

type t = {
  ir_checked : (string * string list) list;  (** workload, diagnostics *)
  dataflow : dataflow_row list;  (** one row per workload *)
  r2c : variant list;  (** full R2C, one per seed *)
  r2c_survivors : int;  (** gadget intersection across the r2c variants *)
  baseline : variant list;  (** undiversified control group *)
  baseline_survivors : int;
  checked : variant;  (** full R2C + Section 7.3 post-checks *)
  selfcheck : R2c_analysis.Selfcheck.outcome list;
  ir_selfcheck : R2c_analysis.Selfcheck.ir_outcome list;
      (** IR rule pack + translation-validator wiring *)
}

(** Every IR program the repo generates, named — the audit's validation
    set and the {!Tvalbench} workload list (17 programs: the Spec
    benchmarks plus the webservers, vulnapp, genprog and browser). *)
val ir_programs : unit -> (string * Ir.program) list

(** [run ?seeds ()] — defaults to 5 seeds, i.e. 5 diversified variants. *)
val run : ?seeds:int list -> unit -> t

val ok : t -> bool
val print : t -> unit
