(** Availability chaos harness (supervision-layer evaluation).

    Three experiments around {!R2c_runtime.Pool}:

    - {!run} — the webserver worker pool under a combined campaign: a
      Blind-ROP attacker (stack reading + ret2plt gadget sweep, adapted to
      pool semantics: the only feedback is served / died / refused) probing
      while legitimate traffic flows, once per restart policy. Reports
      availability, MTTR and detection-to-response latency; the expected
      shape is Same_image bleeding availability for the whole campaign
      while Rerandomize and Reactive force the attacker into a layout-churn
      abort.
    - {!injection_sweep} — no attacker, only injected faults (bit flips,
      corrupted loads, spurious faults, fuel cuts) at increasing rates.
    - {!baseline_equivalence} — the guardrail: an attached injector with
      all rates zero must reproduce the bare run bit for bit (outcome,
      instructions, cycles). *)

type attack_cfg = {
  probe_budget : int;
  churn_limit : int;  (** consecutive failed revalidations before giving up *)
  stall_limit : int;  (** consecutive refused probes before giving up *)
  sweep_budget : int;  (** gadget addresses swept per RA candidate *)
}

val default_attack : attack_cfg

type attack_report = { probes : int; note : string; compromised : bool }

(** [blind_rop_pool ~pool ~legit ~cfg ()] — run the campaign against an
    arbitrary pool; [legit] is called once before every probe (traffic
    interleaving). *)
val blind_rop_pool :
  pool:R2c_runtime.Pool.t -> legit:(unit -> unit) -> cfg:attack_cfg -> unit ->
  attack_report

type run_result = {
  policy : R2c_runtime.Policy.t;
  stats : R2c_runtime.Pool.stats;
  clock : int;
  legit_served : int;
  legit_total : int;
  availability : float;  (** legit traffic only *)
  probes : int;
  attack_note : string;
  compromised : bool;
  escalated : bool;
}

val run_policy :
  ?seed:int -> ?legit_total:int -> ?attack:attack_cfg -> R2c_runtime.Policy.t ->
  run_result

(** The policy lineup compared by {!run}: same-image, backoff,
    rerandomize, reactive→rerandomize, reactive→MVEE. *)
val policies : R2c_runtime.Policy.t list

val run : ?seed:int -> ?legit_total:int -> ?attack:attack_cfg -> unit -> run_result list
val print : run_result list -> unit

type sweep_row = {
  label : string;
  rates : R2c_machine.Inject.rates;
  sweep_policy : R2c_runtime.Policy.t;
  sweep_stats : R2c_runtime.Pool.stats;
  sweep_availability : float;
}

val injection_sweep : ?seed:int -> ?requests:int -> unit -> sweep_row list
val print_sweep : sweep_row list -> unit

(** [baseline_equivalence ()] — true iff the rate-0 injector run equals
    the bare run exactly. *)
val baseline_equivalence : ?seed:int -> unit -> bool

val print_equivalence : bool -> unit
