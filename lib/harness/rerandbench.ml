module Genprog = R2c_workloads.Genprog
module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Incremental = R2c_compiler.Incremental
module Image = R2c_machine.Image
module J = R2c_obs.Json

type report = {
  funcs : int;
  config : string;
  body_seed : int;
  base_link_seed : int;
  rotations : int;
  checked : int;
  identical : bool;
  warm_misses : int;
  rotation_hits : int;
  rotation_misses : int;
  edit_misses : int;
  edit_missed : string list;
  edit_identical : bool;
  cache_entries : int;
}

type timing = { cold_ms : float; incr_ms : float; speedup : float }

let config_of_name = function
  | "baseline" -> Dconfig.baseline
  | "full" -> Dconfig.full ()
  | "full-checked" -> Dconfig.full_checked
  | "layout" -> Dconfig.layout_only
  | name -> invalid_arg ("rerandbench: unknown config " ^ name)

(* The single-function IR edit of the edit-step: one more local variable.
   It grows the function's frame, so the recompiled body genuinely
   differs, and it perturbs no other function's diversification slice —
   the rebuild must miss exactly this function. *)
let edit_one (p : Ir.program) =
  let victim = List.nth p.funcs (List.length p.funcs / 2) in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        if f == victim then { f with Ir.nvars = f.nvars + 1 } else f)
      p.funcs
  in
  ({ p with Ir.funcs }, victim.Ir.name)

let now () = Unix.gettimeofday ()

let run ?(funcs = 10_000) ?(config = "full") ?(body_seed = 3) ?(base_link_seed = 100)
    ?(rotations = 4) ?(checked = 2) ?jobs () =
  let cfg = config_of_name config in
  let p = Genprog.generate ~seed:body_seed ~funcs in
  let coords ls = { Pipeline.cfg; body_seed; link_seed = Some ls } in
  (* Each timed region starts from a collected heap: the untimed
     reference compiles and fingerprint forcings between them leave tens
     of megabytes of garbage, and without the barrier the next timed
     build pays the previous phase's collection debt. *)
  let settle () = Gc.full_major () in
  (* Cold reference at the base coordinates. *)
  settle ();
  let t0 = now () in
  let cold = Pipeline.compile_cold (coords base_link_seed) p in
  let cold_ms = (now () -. t0) *. 1000.0 in
  let cold_fp = Image.fingerprint cold in
  (* Warm build: populates the cache (every function misses once). *)
  let r = Pipeline.rerand_create () in
  let warm, warm_stats = Pipeline.compile_incremental ?jobs r (coords base_link_seed) p in
  let warm_fp = Image.fingerprint warm in
  (* Steady-state rotations: only the link seed moves. *)
  let rot_hits = ref 0 and rot_misses = ref 0 and incr_total = ref 0.0 in
  let identical = ref (String.equal warm_fp cold_fp) in
  for i = 1 to rotations do
    let c = coords (base_link_seed + i) in
    settle ();
    let t0 = now () in
    let img, stats = Pipeline.compile_incremental ?jobs r c p in
    incr_total := !incr_total +. ((now () -. t0) *. 1000.0);
    rot_hits := !rot_hits + stats.Incremental.hits;
    rot_misses := !rot_misses + stats.Incremental.misses;
    (* Differential spot checks: a cold compile at sampled rotation
       coordinates must fingerprint-match the incremental rebuild. *)
    if i <= checked then begin
      let cold_i = Pipeline.compile_cold c p in
      if not (String.equal (Image.fingerprint cold_i) (Image.fingerprint img)) then
        identical := false
    end
  done;
  let incr_ms = !incr_total /. float_of_int (max 1 rotations) in
  (* Edit step: one function's IR changes; the rebuild recompiles it and
     nothing else, and still matches a cold compile of the edited
     program. *)
  let p2, _victim = edit_one p in
  let c2 = coords (base_link_seed + rotations + 1) in
  let img2, stats2 = Pipeline.compile_incremental ?jobs r c2 p2 in
  let edit_identical =
    String.equal (Image.fingerprint (Pipeline.compile_cold c2 p2)) (Image.fingerprint img2)
  in
  let report =
    {
      funcs;
      config;
      body_seed;
      base_link_seed;
      rotations;
      checked;
      identical = !identical;
      warm_misses = warm_stats.Incremental.misses;
      rotation_hits = !rot_hits;
      rotation_misses = !rot_misses;
      edit_misses = stats2.Incremental.misses;
      edit_missed = stats2.Incremental.missed;
      edit_identical;
      cache_entries = Incremental.size (Pipeline.rerand_cache r);
    }
  in
  let timing =
    { cold_ms; incr_ms; speedup = (if incr_ms > 0.0 then cold_ms /. incr_ms else 0.0) }
  in
  (report, timing)

(* The E-RERAND gate. Timing binds only when given: CI gates the
   measured run on the 10x floor; the deterministic half (identity,
   cache traffic) also guards the test battery. *)
let gate ?(min_speedup = 10.0) ?timing r =
  let checks =
    [
      ("byte-identical to cold compile at every checked rotation", r.identical);
      ("edit rebuild byte-identical to cold compile", r.edit_identical);
      ("warm build compiles every function once", r.warm_misses >= r.funcs);
      ("rotations hit the cache for every function", r.rotation_misses = 0);
      ( "edit rebuild recompiles exactly one function",
        r.edit_misses = 1 && List.length r.edit_missed = 1 );
    ]
    @
    match timing with
    | None -> []
    | Some t ->
        [
          ( Printf.sprintf "incremental rebuild >= %.0fx faster than cold (got %.1fx)"
              min_speedup t.speedup,
            t.speedup >= min_speedup );
        ]
  in
  List.filter_map (fun (what, ok) -> if ok then None else Some what) checks

(* Deterministic fields first; [jobs] opens the volatile tail and the
   timing fields stay behind it, so CI's serial-vs-parallel diff can
   strip everything from "jobs" on. *)
let json ?jobs ?timing r =
  J.Obj
    ([
       ("funcs", J.Int r.funcs);
       ("config", J.Str r.config);
       ("body_seed", J.Int r.body_seed);
       ("base_link_seed", J.Int r.base_link_seed);
       ("rotations", J.Int r.rotations);
       ("checked", J.Int r.checked);
       ("identical", J.Bool r.identical);
       ("warm_misses", J.Int r.warm_misses);
       ("rotation_hits", J.Int r.rotation_hits);
       ("rotation_misses", J.Int r.rotation_misses);
       ("edit_misses", J.Int r.edit_misses);
       ("edit_missed", J.Arr (List.map (fun s -> J.Str s) r.edit_missed));
       ("edit_identical", J.Bool r.edit_identical);
       ("cache_entries", J.Int r.cache_entries);
     ]
    @ (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @
    match timing with
    | Some t ->
        [
          ("cold_ms", J.Float t.cold_ms);
          ("incr_ms", J.Float t.incr_ms);
          ("speedup", J.Float t.speedup);
        ]
    | None -> [])

let print (r, t) =
  Printf.printf
    "rerand: %d funcs (%s), %d rotations: cold %.0f ms, incremental %.1f ms (%.1fx), \
     %d/%d rotation hits, edit recompiled %d, identical=%b\n"
    r.funcs r.config r.rotations t.cold_ms t.incr_ms t.speedup r.rotation_hits
    (r.rotation_hits + r.rotation_misses) r.edit_misses
    (r.identical && r.edit_identical)
