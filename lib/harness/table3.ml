module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp
module Rng = R2c_util.Rng
module Stats = R2c_util.Stats
module Table = R2c_util.Table

type cell = {
  attack : string;
  trials : int;
  successes : int;
  detections : int;
}

type row = {
  defense : string;
  measured_overhead : float option;
  icache_miss_pct : float option;
  peak_depth : int option;
  paper_overhead : string;
  cpp : bool;
  cells : cell list;
}

let scenario (d : Defenses.t) ~seed =
  let target_img = Defenses.build_vulnapp d ~seed in
  let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 1000)) in
  let relink =
    if d.Defenses.rerandomize then begin
      let counter = ref 0 in
      Some
        (fun () ->
          incr counter;
          Defenses.build_vulnapp d ~seed:(seed + (7777 * !counter)))
    end
    else None
  in
  (reference, Oracle.attach ?relink ~break_sym:Vulnapp.break_symbol target_img)

let attacks : (string * (Defenses.t -> seed:int -> Report.t)) list =
  [
    ( "ROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Rop.run ~reference ~target );
    ( "JIT-ROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Jitrop.run ~reference ~target );
    ( "PIROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Pirop.run ~reference ~target () );
    ( "AOCR",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Aocr.run ~rng:(Rng.create (seed * 977)) ~reference ~target () );
  ]

(* A small SPEC subset keeps the overhead column affordable. *)
let overhead_subset = [ "perlbench"; "mcf"; "omnetpp"; "x264" ]

(* Geomean overhead plus the satellite columns: icache miss rate and peak
   call depth of the *defended* builds, aggregated over the subset. *)
let measure_overhead (d : Defenses.t) =
  let measurements =
    List.map
      (fun name ->
        let b = R2c_workloads.Spec.find name in
        let base =
          (Measure.run (R2c_compiler.Driver.compile b.program)).Measure.steady_cycles
        in
        let img = Defenses.build d ~seed:9 ~extra_raw:[] b.program in
        let s = Measure.run img in
        (s.Measure.steady_cycles /. base, s))
      overhead_subset
  in
  let ratios = List.map fst measurements in
  let accesses =
    List.fold_left (fun a (_, s) -> a + s.Measure.icache_accesses) 0 measurements
  in
  let misses =
    List.fold_left (fun a (_, s) -> a + s.Measure.icache_misses) 0 measurements
  in
  let depth =
    List.fold_left (fun a (_, s) -> max a s.Measure.peak_depth) 0 measurements
  in
  let miss_pct =
    if accesses = 0 then 0.0 else float_of_int misses /. float_of_int accesses
  in
  (Stats.geomean ratios, miss_pct, depth)

let run ?(trials = 3) ?(with_overhead = true) () =
  List.map
    (fun (d : Defenses.t) ->
      let cells =
        List.map
          (fun (attack, f) ->
            let reports = List.init trials (fun i -> f d ~seed:((i * 13) + 2)) in
            {
              attack;
              trials;
              successes =
                List.length (List.filter (fun r -> r.Report.success) reports);
              detections =
                List.length (List.filter (fun r -> r.Report.detected) reports);
            })
          attacks
      in
      let measured =
        if with_overhead then Some (measure_overhead d) else None
      in
      {
        defense = d.Defenses.name;
        measured_overhead = Option.map (fun (o, _, _) -> o) measured;
        icache_miss_pct = Option.map (fun (_, m, _) -> m) measured;
        peak_depth = Option.map (fun (_, _, dep) -> dep) measured;
        paper_overhead = d.Defenses.paper_overhead;
        cpp = d.Defenses.cpp_support;
        cells;
      })
    Defenses.all

let glyph c =
  if c.successes = 0 then "#"  (* protected *)
  else if c.successes >= (c.trials + 1) / 2 then "o"  (* broken *)
  else "+" (* partial *)

let print rows =
  let headers =
    [ "defense"; "overhead"; "paper"; "icache"; "depth"; "C++" ]
    @ List.map (fun (a, _) -> a) attacks
    @ [ "detections" ]
  in
  Table.print
    ~title:
      "Table 3: defense comparison (# = stopped every trial, o = broken, + = partial)"
    ~headers
    (List.map
       (fun r ->
         [
           r.defense;
           (match r.measured_overhead with
           | Some o -> Table.pct (o -. 1.0)
           | None -> "-");
           r.paper_overhead;
           (match r.icache_miss_pct with Some m -> Table.pct m | None -> "-");
           (match r.peak_depth with Some d -> string_of_int d | None -> "-");
           (if r.cpp then "yes" else "no");
         ]
         @ List.map glyph r.cells
         @ [
             String.concat "/"
               (List.map (fun c -> string_of_int c.detections) r.cells);
           ])
       rows)
