module Fleetapp = R2c_workloads.Fleetapp
module Genprog = R2c_workloads.Genprog
module Trace = R2c_replay.Trace
module Record = R2c_replay.Record
module Reduce = R2c_replay.Reduce
module Replayer = R2c_replay.Replayer
module J = R2c_obs.Json
module Parallel = R2c_util.Parallel

type case = {
  c_name : string;
  c_meta : Trace.meta;
  c_program : Ir.program;
  c_inputs : string list;
}

(* Periodic request traffic with a small URL alphabet: half the server's
   loop bound, so the capture also records the empty-queue reads of the
   drained tail — exactly the chatter reduction should throw away. *)
let fleet_requests = 2048
let fleet_distinct = 32

let cases () =
  [
    {
      c_name = "fleetapp";
      c_meta =
        {
          Trace.workload = "fleetapp";
          config = "full-checked";
          seed = 7;
          machine = "EPYC Rome";
          fuel = 50_000_000;
        };
      c_program = Fleetapp.program ();
      c_inputs =
        List.init fleet_requests (fun i ->
            "GET /item/" ^ string_of_int (i mod fleet_distinct));
    };
    {
      c_name = "genprog";
      c_meta =
        {
          Trace.workload = "genprog";
          config = "full";
          seed = 5;
          machine = "EPYC Rome";
          fuel = 50_000_000;
        };
      c_program = Genprog.generate ~seed:13 ~funcs:24;
      c_inputs = [];
    };
  ]

type case_report = {
  cr_name : string;
  cr_trace : Trace.t;
  cr_reduce : Reduce.report;
  cr_replay : Replayer.run;
  cr_failures : string list;
}

type report = { case_reports : case_report list }

let run_case ?tolerance ?max_checks c =
  match
    Record.capture ~fuel:c.c_meta.Trace.fuel ~meta:c.c_meta
      ~program:c.c_program ~inputs:c.c_inputs ()
  with
  | Error e -> Error (c.c_name ^ ": " ^ e)
  | Ok raw -> (
      let reduced, rr = Reduce.run ?max_checks ?tolerance raw in
      match Replayer.check ?tolerance reduced with
      | Error e -> Error (c.c_name ^ ": " ^ e)
      | Ok v ->
          Ok
            {
              cr_name = c.c_name;
              cr_trace = reduced;
              cr_reduce = rr;
              cr_replay = v.Replayer.result;
              cr_failures = v.Replayer.failures;
            })

let run ?tolerance ?max_checks ?jobs () =
  let results =
    Parallel.map ?jobs (run_case ?tolerance ?max_checks) (cases ())
  in
  let errs =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if errs <> [] then Error (String.concat "; " errs)
  else
    Ok
      {
        case_reports =
          List.filter_map (function Ok r -> Some r | Error _ -> None) results;
      }

let gate ?(min_reduction = 0.30) r =
  List.concat_map
    (fun cr ->
      let fidelity =
        List.map (fun f -> cr.cr_name ^ ": replay fidelity: " ^ f) cr.cr_failures
      in
      let reduction =
        (* The ratio gate only binds where there is traffic to reduce:
           an inputless case has a tiny raw trace to begin with. *)
        if cr.cr_reduce.Reduce.raw_spans > 0 && Trace.feeds cr.cr_trace <> []
           && Reduce.ratio cr.cr_reduce < min_reduction
        then
          [
            Printf.sprintf "%s: reduction %.1f%% below %.0f%% floor" cr.cr_name
              (100. *. Reduce.ratio cr.cr_reduce)
              (100. *. min_reduction);
          ]
        else []
      in
      fidelity @ reduction)
    r.case_reports

let save_corpus ~dir r =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun cr ->
      let path = Filename.concat dir (cr.cr_name ^ ".r2cr") in
      Trace.save ~path cr.cr_trace;
      path)
    r.case_reports

let case_json cr =
  J.Obj
    [
      ("name", J.Str cr.cr_name);
      ("config", J.Str cr.cr_trace.Trace.meta.Trace.config);
      ("seed", J.Int cr.cr_trace.Trace.meta.Trace.seed);
      ("reduce", Reduce.report_json cr.cr_reduce);
      ("replay", Replayer.run_json cr.cr_replay);
      ("fidelity", J.Str (if cr.cr_failures = [] then "pass" else "fail"));
    ]

let json ?jobs ?wall_ms r =
  let fields =
    [
      ("experiment", J.Str "replay");
      ("cases", J.Arr (List.map case_json r.case_reports));
      ("gate", J.Str (if gate r = [] then "pass" else "fail"));
    ]
  in
  let volatile =
    (match jobs with Some j -> [ ("jobs", J.Int j) ] | None -> [])
    @ match wall_ms with Some w -> [ ("wall_ms", J.Float w) ] | None -> []
  in
  J.Obj (fields @ volatile)

let print r =
  print_endline "E-REPLAY: record / reduce / replay with profile-fidelity gates";
  List.iter
    (fun cr ->
      Printf.printf
        "  %-10s %6d -> %4d spans, %7d -> %5d bytes (%.1f%% reduced), %d oracle \
         runs; replay %s\n"
        cr.cr_name cr.cr_reduce.Reduce.raw_spans cr.cr_reduce.Reduce.reduced_spans
        cr.cr_reduce.Reduce.raw_bytes cr.cr_reduce.Reduce.reduced_bytes
        (100. *. Reduce.ratio cr.cr_reduce)
        cr.cr_reduce.Reduce.checks
        (if cr.cr_failures = [] then "reproduces the recorded profile (<=1%)"
         else "BREACHES fidelity: " ^ String.concat "; " cr.cr_failures))
    r.case_reports
