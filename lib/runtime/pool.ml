open R2c_machine
module Rng = R2c_util.Rng
module Mvee = R2c_defenses.Mvee
module Obs = R2c_obs

type config = {
  workers : int;
  policy : Policy.t;
  seed : int;
  worker_fuel : int;
  request_fuel : int;
  max_retries : int;
  requests_per_child : int;
  spawn_cycles : int;
  restart_cycles : int;
  rerandomize_cycles : int;
  arrival_cycles : int;
  detection_threshold : int;
  inject : Inject.rates;
}

let default_config =
  {
    workers = 3;
    policy = Policy.Same_image;
    seed = 1;
    worker_fuel = 20_000_000;
    request_fuel = 2_000_000;
    max_retries = 2;
    requests_per_child = 0;
    spawn_cycles = 10_000;
    restart_cycles = 600_000;
    rerandomize_cycles = 1_000_000;
    arrival_cycles = 40_000;
    detection_threshold = 2;
    inject = Inject.zero;
  }

type stats = {
  mutable served : int;
  mutable dropped : int;
  mutable shed : int;
  mutable retried : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable detections : int;
  mutable restarts : int;
  mutable recycles : int;
  mutable rerandomizations : int;
  mutable quarantines : int;
  mutable mvee_blocks : int;
  mutable recovery_cycles : int;
  mutable recoveries : int;
  mutable first_detection : int option;
  mutable first_response : int option;
}

let fresh_stats () =
  {
    served = 0;
    dropped = 0;
    shed = 0;
    retried = 0;
    crashes = 0;
    timeouts = 0;
    detections = 0;
    restarts = 0;
    recycles = 0;
    rerandomizations = 0;
    quarantines = 0;
    mvee_blocks = 0;
    recovery_cycles = 0;
    recoveries = 0;
    first_detection = None;
    first_response = None;
  }

type response =
  | Served of { cycles : int; lines : int }
  | Rejected of { reason : string; lines : int }
  | Dropped

type worker = {
  wid : int;
  inject : Inject.t option;
  backoff : Policy.Backoff_state.s;
  mutable proc : Process.t;
  mutable break_addr : int;
  mutable at_break : bool;
  mutable served_this_child : int;
  mutable down_until : int;
  mutable ring : Trace.t option;  (* post-mortem ring, when observed *)
}

(* Live metric instruments, registered once per observed pool. *)
type instruments = {
  i_requests : Obs.Metrics.counter;
  i_served : Obs.Metrics.counter;
  i_dropped : Obs.Metrics.counter;
  i_crashes : Obs.Metrics.counter;
  i_detections : Obs.Metrics.counter;
  i_timeouts : Obs.Metrics.counter;
  i_restarts : Obs.Metrics.counter;
  i_rerand : Obs.Metrics.counter;
  i_clock : Obs.Metrics.gauge;
  i_request_cycles : Obs.Metrics.histogram;
}

type postmortem = { pm_clock : int; pm_wid : int; pm_fault : string; pm_tail : string }

type t = {
  cfg : config;
  ns : string;  (* metric-name prefix: lets shards share one registry *)
  build : seed:int -> Image.t;
  break_sym : string;
  rng : Rng.t;
  workers : worker array;
  stats : stats;
  mutable clock : int;
  mutable rr : int;
  mutable escalated : bool;
  mutable shut : bool;
  mutable mvee_images : Image.t list;
  mutable sensitive : (int * int) list;
  mutable obs : Obs.Sink.t option;
  mutable instruments : instruments option;
  mutable postmortems : postmortem list;  (* newest first, capped *)
}

(* Post-mortems kept per run: only the last K crashes stay resident, so a
   chaos campaign with thousands of crashes stays bounded. *)
let max_postmortems = 8

let ring_capacity = 32

let ev t f = match t.obs with None -> () | Some sink -> f sink

(* A fresh ring per child: records from a previous incarnation must not
   leak into the next crash's post-mortem. *)
let observe_worker t w =
  match t.obs with
  | None -> ()
  | Some _ ->
      let ring = Trace.create ~capacity:ring_capacity in
      w.ring <- Some ring;
      Trace.attach ring w.proc.Process.cpu

let register_instruments ~ns (sink : Obs.Sink.t) =
  let m = sink.Obs.Sink.metrics in
  let c name help = Obs.Metrics.counter ~help m (ns ^ name) in
  {
    i_requests = c "pool_requests_total" "requests submitted to the pool";
    i_served = c "pool_served_total" "requests served";
    i_dropped = c "pool_dropped_total" "requests rejected or dropped";
    i_crashes = c "pool_crashes_total" "worker crashes";
    i_detections = c "pool_detections_total" "crashes flagged as attack detections";
    i_timeouts = c "pool_timeouts_total" "request timeouts";
    i_restarts = c "pool_restarts_total" "worker restarts";
    i_rerand = c "pool_rerandomizations_total" "worker rerandomizations";
    i_clock =
      Obs.Metrics.gauge ~help:"simulated pool clock (cycles)" m (ns ^ "pool_clock_cycles");
    i_request_cycles =
      Obs.Metrics.histogram ~help:"per-request service cycles" m
        (ns ^ "pool_request_cycles");
  }

let sync_metrics t =
  match t.instruments with
  | None -> ()
  | Some i ->
      let s = t.stats in
      Obs.Metrics.set_counter i.i_requests (s.served + s.dropped);
      Obs.Metrics.set_counter i.i_served s.served;
      Obs.Metrics.set_counter i.i_dropped s.dropped;
      Obs.Metrics.set_counter i.i_crashes s.crashes;
      Obs.Metrics.set_counter i.i_detections s.detections;
      Obs.Metrics.set_counter i.i_timeouts s.timeouts;
      Obs.Metrics.set_counter i.i_restarts s.restarts;
      Obs.Metrics.set_counter i.i_rerand s.rerandomizations;
      Obs.Metrics.set_gauge i.i_clock (float_of_int t.clock)

(* Attaching is idempotent: re-attaching the sink that is already active
   (whether it arrived at [create] or through a previous [run ?obs]) must
   not re-register instruments or replace the workers' post-mortem rings.
   Registration itself is also idempotent per name at the registry level,
   so even a fresh [t] pointed at a registry that already carries
   [ns ^ "pool_*"] series adopts the existing instruments instead of
   duplicating them. *)
let set_obs t sink =
  let already = match t.obs with Some s -> s == sink | None -> false in
  if not already then begin
    t.obs <- Some sink;
    t.instruments <- Some (register_instruments ~ns:t.ns sink);
    Array.iter (fun w -> observe_worker t w) t.workers
  end

(* Snapshot the dying child's ring before the respawn path replaces its
   CPU; the tail also lands in the event timeline so a Chrome trace
   carries the post-mortem inline. *)
let capture_postmortem t w f =
  match (t.obs, w.ring) with
  | Some sink, Some ring ->
      let tail = Trace.pp_tail ring ~n:16 in
      t.postmortems <-
        {
          pm_clock = t.clock;
          pm_wid = w.wid;
          pm_fault = Fault.to_string f;
          pm_tail = tail;
        }
        :: List.filteri (fun i _ -> i < max_postmortems - 1) t.postmortems;
      Obs.Events.instant ~cat:"postmortem" ~tid:(w.wid + 1)
        ~args:
          [
            ("wid", string_of_int w.wid);
            ("fault", Fault.to_string f);
            ("tail", tail);
          ]
        sink.Obs.Sink.events ~name:"postmortem" ~ts:t.clock
  | _ -> ()

let break_addr_of img sym =
  match Hashtbl.find_opt img.Image.symbols sym with
  | Some a -> a
  | None -> invalid_arg ("Pool: no breakpoint symbol " ^ sym)

let create ?(cfg = default_config) ?obs ?(ns = "") ~build ~break_sym () =
  if cfg.workers <= 0 then invalid_arg "Pool.create: need at least one worker";
  let rng = Rng.create cfg.seed in
  (* All workers start as forks of one parent image — the pre-fork server
     model whose layout uniformity Blind ROP exploits. *)
  let img0 = build ~seed:cfg.seed in
  let break0 = break_addr_of img0 break_sym in
  let workers =
    Array.init cfg.workers (fun i ->
        let inject =
          if Inject.rates_active cfg.inject then
            Some (Inject.create ~rates:cfg.inject ~seed:((cfg.seed * 1009) + i) ())
          else None
        in
        {
          wid = i;
          inject;
          backoff =
            (match cfg.policy with
            | Policy.Backoff b ->
                Policy.Backoff_state.create ~cfg:b ~seed:((cfg.seed * 31) + i) ()
            | _ -> Policy.Backoff_state.create ~seed:((cfg.seed * 31) + i) ());
          proc = Process.start ?inject ~fuel:cfg.worker_fuel img0;
          break_addr = break0;
          at_break = false;
          served_this_child = 0;
          down_until = 0;
          ring = None;
        })
  in
  let t =
    {
      cfg;
      ns;
      build;
      break_sym;
      rng;
      workers;
      stats = fresh_stats ();
      clock = 0;
      rr = 0;
      escalated = false;
      shut = false;
      mvee_images = [];
      sensitive = [];
      obs = None;
      instruments = None;
      postmortems = [];
    }
  in
  (match obs with None -> () | Some sink -> set_obs t sink);
  t

let fresh_seed t = Rng.int t.rng 0x3fff_ffff

let collect_sensitive t w = t.sensitive <- Process.sensitive_log w.proc @ t.sensitive

let take_down ?(kind = "restart") t w delay =
  w.at_break <- false;
  w.served_this_child <- 0;
  w.down_until <- t.clock + delay;
  t.stats.recovery_cycles <- t.stats.recovery_cycles + delay;
  t.stats.recoveries <- t.stats.recoveries + 1;
  t.stats.restarts <- t.stats.restarts + 1;
  ev t (fun sink ->
      Obs.Events.complete ~cat:"respawn" ~tid:(w.wid + 1)
        ~args:[ ("kind", kind); ("wid", string_of_int w.wid) ]
        sink.Obs.Sink.events ~name:kind ~ts:t.clock ~dur:delay)

let rerandomize_worker t w =
  collect_sensitive t w;
  let img = t.build ~seed:(fresh_seed t) in
  w.proc <- Process.start ?inject:w.inject ~fuel:t.cfg.worker_fuel img;
  w.break_addr <- break_addr_of img t.break_sym;
  t.stats.rerandomizations <- t.stats.rerandomizations + 1;
  observe_worker t w

(* How a crashed worker comes back, given the policy and the escalation
   state. *)
let respawn_mode t =
  match t.cfg.policy with
  | Policy.Same_image -> `Same
  | Policy.Rerandomize -> `Rerand
  | Policy.Backoff b -> `Backoff b
  | Policy.Reactive Policy.Escalate_rerandomize -> if t.escalated then `Rerand else `Same
  | Policy.Reactive (Policy.Escalate_mvee _) -> `Same

(* The reactive response: once monitoring has seen enough detections,
   either roll fresh layouts across the fleet (staggered, so capacity
   never drops to zero at once) or switch the service into MVEE
   lockstep. [crashed] is respawned by the crash path itself. *)
let maybe_escalate t ~crashed =
  match t.cfg.policy with
  | Policy.Reactive esc
    when (not t.escalated) && t.stats.detections >= t.cfg.detection_threshold ->
      t.escalated <- true;
      t.stats.first_response <- Some t.clock;
      ev t (fun sink ->
          let mode =
            match esc with
            | Policy.Escalate_rerandomize -> "rerandomize"
            | Policy.Escalate_mvee _ -> "mvee"
          in
          Obs.Events.instant ~cat:"escalation"
            ~args:[ ("mode", mode); ("detections", string_of_int t.stats.detections) ]
            sink.Obs.Sink.events ~name:"escalate" ~ts:t.clock);
      (match esc with
      | Policy.Escalate_rerandomize ->
          let k = ref 0 in
          Array.iter
            (fun w ->
              if w.wid <> crashed then begin
                rerandomize_worker t w;
                take_down ~kind:"rerandomize" t w (t.cfg.rerandomize_cycles * (!k + 1));
                incr k
              end)
            t.workers
      | Policy.Escalate_mvee { variants } ->
          t.mvee_images <-
            List.init (max 2 variants) (fun _ -> t.build ~seed:(fresh_seed t)))
  | _ -> ()

let handle_crash t w f =
  t.stats.crashes <- t.stats.crashes + 1;
  capture_postmortem t w f;
  ev t (fun sink ->
      Obs.Events.instant ~cat:"crash" ~tid:(w.wid + 1)
        ~args:[ ("fault", Fault.to_string f); ("wid", string_of_int w.wid) ]
        sink.Obs.Sink.events ~name:"crash" ~ts:t.clock);
  if Fault.is_detection f then begin
    t.stats.detections <- t.stats.detections + 1;
    if t.stats.first_detection = None then t.stats.first_detection <- Some t.clock;
    ev t (fun sink ->
        Obs.Events.instant ~cat:"detection" ~tid:(w.wid + 1)
          ~args:[ ("fault", Fault.to_string f); ("wid", string_of_int w.wid) ]
          sink.Obs.Sink.events ~name:"detection" ~ts:t.clock)
  end;
  maybe_escalate t ~crashed:w.wid;
  match respawn_mode t with
  | `Same ->
      collect_sensitive t w;
      Process.restart w.proc;
      observe_worker t w;
      take_down t w t.cfg.restart_cycles
  | `Rerand ->
      rerandomize_worker t w;
      take_down ~kind:"rerandomize" t w t.cfg.rerandomize_cycles
  | `Backoff _ ->
      collect_sensitive t w;
      Process.restart w.proc;
      observe_worker t w;
      let tripped = Policy.Backoff_state.record_crash w.backoff ~now:t.clock in
      if tripped then begin
        t.stats.quarantines <- t.stats.quarantines + 1;
        take_down ~kind:"quarantine" t w
          (Policy.Backoff_state.quarantined_until w.backoff - t.clock)
      end
      else
        take_down t w (t.cfg.restart_cycles + Policy.Backoff_state.next_delay w.backoff)

let handle_timeout t w =
  t.stats.timeouts <- t.stats.timeouts + 1;
  collect_sensitive t w;
  Process.restart w.proc;
  observe_worker t w;
  take_down t w t.cfg.restart_cycles

(* Graceful child rotation (MaxRequestsPerChild): a spare replaces the
   worker, cheaper than a crash respawn and without policy involvement. *)
let recycle t w =
  collect_sensitive t w;
  Process.restart w.proc;
  observe_worker t w;
  w.at_break <- false;
  w.served_this_child <- 0;
  w.down_until <- t.clock + t.cfg.spawn_cycles;
  t.stats.recycles <- t.stats.recycles + 1;
  ev t (fun sink ->
      Obs.Events.complete ~cat:"respawn" ~tid:(w.wid + 1)
        ~args:[ ("kind", "recycle"); ("wid", string_of_int w.wid) ]
        sink.Obs.Sink.events ~name:"recycle" ~ts:t.clock ~dur:t.cfg.spawn_cycles)

let pick_worker t ~skip =
  let n = Array.length t.workers in
  let rec go i =
    if i >= n then None
    else
      let idx = (t.rr + i) mod n in
      let w = t.workers.(idx) in
      if w.down_until <= t.clock && not (List.mem w.wid skip) then begin
        t.rr <- (idx + 1) mod n;
        Some w
      end
      else go (i + 1)
  in
  go 0

let charge_cycles t w cyc0 =
  let d = int_of_float (Process.cycles w.proc -. cyc0) in
  t.clock <- t.clock + d;
  d

let line_count s = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let serve_on t w payload =
  let cyc0 = Process.cycles w.proc in
  let warm =
    if w.at_break then `Ready
    else
      match Process.run_until ~fuel:t.cfg.request_fuel w.proc ~break:[ w.break_addr ] with
      | `Hit ->
          w.at_break <- true;
          `Ready
      | `Done d -> `Done d
  in
  (* Response size is client-visible: [lines] is what the worker printed
     while handling this request (from after warmup up to — for a crash —
     the point of death). Blind ROP's stop-gadget test reads it. *)
  let lines0 = line_count (Process.output w.proc) in
  let lines () = line_count (Process.output w.proc) - lines0 in
  let fail_crash f =
    let l = lines () in
    ignore (charge_cycles t w cyc0);
    handle_crash t w f;
    `Fail ("crash: " ^ Fault.to_string f, l)
  in
  let fail_timeout () =
    let l = lines () in
    ignore (charge_cycles t w cyc0);
    handle_timeout t w;
    `Fail ("timeout", l)
  in
  match warm with
  | `Done (Process.Crashed f) -> fail_crash f
  | `Done Process.Timeout -> fail_timeout ()
  | `Done (Process.Exited _) ->
      ignore (charge_cycles t w cyc0);
      recycle t w;
      `Fail ("no serving point", 0)
  | `Ready ->
      Cpu.push_input w.proc.Process.cpu payload;
      (* The parked worker sits right after a [read_input] return; the
         request is fully handled only after TWO break-to-break advances:
         one to the read that consumes the payload, one through the
         handler and the enclosing return — where a smashed frame actually
         detonates (booby traps, hijacked returns). Stopping earlier would
         let corrupted state park unexercised. *)
      let advance () =
        match
          if w.proc.Process.cpu.Cpu.rip = w.break_addr then Cpu.step w.proc.Process.cpu
        with
        | exception Fault.Fault f -> `Done (Process.Crashed f)
        | () -> (
            match
              Process.run_until ~fuel:t.cfg.request_fuel w.proc ~break:[ w.break_addr ]
            with
            | `Hit -> `Hit
            | `Done d -> `Done d)
      in
      let serve_done () =
        let l = lines () in
        let d = charge_cycles t w cyc0 in
        w.served_this_child <- w.served_this_child + 1;
        if
          t.cfg.requests_per_child > 0
          && w.served_this_child >= t.cfg.requests_per_child
        then recycle t w;
        `Ok (d, l)
      in
      let exited () =
        (* Natural end of the child's request loop: the request was
           served, then the worker rotated out. *)
        let l = lines () in
        let d = charge_cycles t w cyc0 in
        recycle t w;
        `Ok (d, l)
      in
      let step = function
        | `Done (Process.Crashed f) -> `Fail_crash f
        | `Done Process.Timeout -> `Fail_timeout
        | `Done (Process.Exited _) -> `Exited
        | `Hit -> `Hit
      in
      (match (step (advance ()), lazy (step (advance ()))) with
      | `Fail_crash f, _ -> fail_crash f
      | `Fail_timeout, _ -> fail_timeout ()
      | `Exited, _ -> exited ()
      | `Hit, (lazy (`Fail_crash f)) -> fail_crash f
      | `Hit, (lazy `Fail_timeout) -> fail_timeout ()
      | `Hit, (lazy `Exited) -> exited ()
      | `Hit, (lazy `Hit) -> serve_done ())

let serve_mvee t payload =
  let { Mvee.verdict; cycles } = Mvee.run_images ~images:t.mvee_images ~inputs:[ payload ] in
  t.clock <- t.clock + int_of_float cycles;
  match verdict with
  | Mvee.Consistent (Process.Exited _) ->
      t.stats.served <- t.stats.served + 1;
      Served { cycles = int_of_float cycles; lines = 0 }
  | Mvee.Consistent _ | Mvee.Divergence _ ->
      (* The lockstep monitor saw the variants disagree (or all die): the
         request is refused and no worker was harmed. *)
      t.stats.mvee_blocks <- t.stats.mvee_blocks + 1;
      t.stats.dropped <- t.stats.dropped + 1;
      Rejected { reason = "mvee: lockstep divergence"; lines = 0 }

(* Exactly one request span per [submit] — served, rejected or dropped —
   so a trace's request-span count always equals [served + dropped]. *)
let finish_request t ~ts0 resp =
  match t.obs with
  | None -> ()
  | Some sink ->
      let name, args =
        match resp with
        | Served { cycles; lines } ->
            ( "served",
              [
                ("outcome", "served");
                ("cycles", string_of_int cycles);
                ("lines", string_of_int lines);
              ] )
        | Rejected { reason; lines } ->
            ( "rejected",
              [
                ("outcome", "rejected");
                ("reason", reason);
                ("lines", string_of_int lines);
              ] )
        | Dropped -> ("dropped", [ ("outcome", "dropped") ])
      in
      Obs.Events.complete ~cat:"request" ~args sink.Obs.Sink.events ~name ~ts:ts0
        ~dur:(t.clock - ts0);
      (match (t.instruments, resp) with
      | Some i, Served { cycles; _ } -> Obs.Metrics.observe i.i_request_cycles cycles
      | _ -> ());
      sync_metrics t

let submit ?retries t payload =
  let max_retries = match retries with Some r -> r | None -> t.cfg.max_retries in
  t.clock <- t.clock + t.cfg.arrival_cycles;
  let ts0 = t.clock in
  let resp =
    if t.shut then begin
      (* Drained pool: admission is closed, the connection is refused
         without touching a worker. Counted like any other shed so the
         span invariant (request spans = served + dropped) holds. *)
      t.stats.dropped <- t.stats.dropped + 1;
      t.stats.shed <- t.stats.shed + 1;
      Dropped
    end
    else if t.mvee_images <> [] then serve_mvee t payload
    else
      let rec attempt n skip =
        match pick_worker t ~skip with
        | None ->
            (* Shed load: better a fast 503 than a connection queue that
               crash-loops the fleet. *)
            t.stats.dropped <- t.stats.dropped + 1;
            if n = 0 then t.stats.shed <- t.stats.shed + 1;
            Dropped
        | Some w -> (
            let ts_a = t.clock in
            let r = serve_on t w payload in
            ev t (fun sink ->
                let outcome =
                  match r with `Ok _ -> "ok" | `Fail (reason, _) -> reason
                in
                Obs.Events.complete ~cat:"attempt" ~tid:(w.wid + 1)
                  ~args:[ ("wid", string_of_int w.wid); ("outcome", outcome) ]
                  sink.Obs.Sink.events ~name:"serve" ~ts:ts_a ~dur:(t.clock - ts_a));
            match r with
            | `Ok (cycles, lines) ->
                t.stats.served <- t.stats.served + 1;
                Served { cycles; lines }
            | `Fail (reason, lines) ->
                if n < max_retries then begin
                  t.stats.retried <- t.stats.retried + 1;
                  attempt (n + 1) (w.wid :: skip)
                end
                else begin
                  t.stats.dropped <- t.stats.dropped + 1;
                  Rejected { reason; lines }
                end)
      in
      attempt 0 []
  in
  finish_request t ~ts0 resp;
  resp

(* Replay a whole request list through [submit], opting into observation
   first so worker rings and instruments are live from the first request. *)
let run ?obs t payloads =
  (match obs with None -> () | Some sink -> set_obs t sink);
  List.map (fun p -> submit t p) payloads

let postmortems t = List.rev t.postmortems

let stats t = t.stats
let clock t = t.clock
let escalated t = t.escalated
let is_shutdown t = t.shut

let advance_clock t now = if now > t.clock then t.clock <- now

let attach t sink = set_obs t sink

(* Graceful drain. The serving model is synchronous — a request is fully
   handled (or fully failed) inside [submit] — so "let in-flight work
   finish" holds by construction once admission stops; what remains is to
   close out the observable lifecycle: one retirement span per worker
   covering its residual downtime (a worker abandoned mid-respawn would
   otherwise leave a dangling recovery in the timeline), sensitive-log
   collection from the final incarnations, a terminal stats snapshot in
   the metrics registry, and a [shutdown] instant. Idempotent; later
   [submit]s are refused as shed. *)
let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    (* No [collect_sensitive] here: the workers' final incarnations stay
       resident and [sensitive_log] already folds over live processes —
       collecting them into [t.sensitive] too would double-count. *)
    Array.iter
      (fun w ->
        ev t (fun sink ->
            let residual = max 0 (w.down_until - t.clock) in
            Obs.Events.complete ~cat:"respawn" ~tid:(w.wid + 1)
              ~args:
                [ ("kind", "retire"); ("wid", string_of_int w.wid);
                  ("residual_down", string_of_int residual) ]
              sink.Obs.Sink.events ~name:"retire" ~ts:t.clock ~dur:residual))
      t.workers;
    ev t (fun sink ->
        Obs.Events.instant ~cat:"lifecycle"
          ~args:
            [
              ("served", string_of_int t.stats.served);
              ("dropped", string_of_int t.stats.dropped);
              ("crashes", string_of_int t.stats.crashes);
              ("detections", string_of_int t.stats.detections);
            ]
          sink.Obs.Sink.events ~name:"shutdown" ~ts:t.clock);
    sync_metrics t
  end

let sensitive_log t =
  Array.fold_left (fun acc w -> Process.sensitive_log w.proc @ acc) t.sensitive t.workers

let availability s =
  let total = s.served + s.dropped in
  if total = 0 then 1.0 else float_of_int s.served /. float_of_int total

let mttr s =
  if s.recoveries = 0 then None
  else Some (float_of_int s.recovery_cycles /. float_of_int s.recoveries)

let detection_to_response s =
  match (s.first_detection, s.first_response) with
  | Some d, Some r -> Some (r - d)
  | _ -> None
