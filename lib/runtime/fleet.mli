(** Sharded serving fleet with admission control and epoch-based live
    rerandomization.

    N {!Pool}s (shards) behind a load balancer. Per arrival the balancer
    runs power-of-two-choices over the healthy shards (two uniform picks,
    dispatch to the shallower queue), enforces a bounded per-shard queue
    depth (admission past the bound is shed — a fast 503 beats a
    connection queue that melts the fleet), and hedges rejected requests
    onto other shards within a bounded retry budget. Shard health is
    tracked from the dispatcher's own view: a shard whose recent failure
    count or booby-trap detection count crosses its threshold is
    quarantined — excluded from dispatch while its workers' layouts churn
    back to health — and its traffic redistributes to the remaining
    shards.

    Time is simulated-cycle time, one global fleet clock: each arrival
    advances the clock; shards serve "concurrently" in the queueing-model
    sense (per-shard completion times, not serialized service). Shard
    pools run with [arrival_cycles = 0] and are fast-forwarded to the
    fleet clock at dispatch ({!Pool.advance_clock}), so respawn downtimes
    elapse in fleet time.

    {b Epoch rotation.} On a cycle timer ([epoch_cycles]) or a reactive
    detection trigger ([rotate_detections]), the fleet compiles one
    freshly-seeded image per shard in the background — fanned out over
    {!R2c_util.Parallel}, charged zero fleet-clock cycles because serving
    does not wait on it — warms each new pool with a canary request
    (rebuilding under a new seed on canary failure, bounded by
    [canary_retries]), then drains traffic epoch-by-epoch: one shard per
    subsequent arrival atomically swaps to its warmed pool and the old
    pool retires through {!Pool.shutdown}. A swap happens between
    arrivals and the old pool serves until the instant its replacement
    takes over, so the rotation itself never removes a shard from the
    candidate set: rotation-caused drops are structurally zero, and
    [stats.rotation_drops] measures that the implementation keeps the
    promise (it counts any request that sheds or terminally fails after
    touching a shut-down pool — the signature of a rotation bug). *)

type config = {
  shards : int;  (** shard count *)
  seed : int;  (** master seed: shard seeds, p2c picks, rotation seeds *)
  queue_bound : int;  (** max outstanding requests per shard; admission
                          past this sheds *)
  hedge_retries : int;  (** cross-shard retries for a rejected request *)
  arrival_cycles : int;  (** fleet-clock advance per arrival *)
  epoch_cycles : int;  (** rotate every N cycles; 0 = timer off *)
  rotate_detections : int;  (** reactive rotation after N fleet-wide
                                detections since the last rotation;
                                0 = trigger off *)
  canary : string;  (** warmup payload served by each new-epoch pool *)
  canary_retries : int;  (** rebuilds (fresh seed) before giving up on a
                             shard's rotation this epoch *)
  quarantine_failures : int;  (** quarantine at N failures in the window *)
  quarantine_window : int;  (** per-shard sliding outcome window size *)
  quarantine_detections : int;  (** quarantine at N shard detections *)
  quarantine_cycles : int;  (** quarantine duration *)
  panic_min_healthy : int;
      (** panic threshold: when fewer shards than this are healthy, the
          balancer ignores quarantine and routes across every live shard —
          a struggling shard beats refusing the connection (cf. Envoy's
          panic routing) *)
  observe_shards : bool;  (** attach the fleet sink to shard pools
                              (namespaced [shardN_pool_*] metrics, full
                              per-request spans — heavy; off for big
                              campaigns) *)
  jobs : int;  (** Domain-pool width for background compiles; 0 = auto.
                   The fleet's observable behaviour is identical at any
                   width. *)
  shard : Pool.config;  (** per-shard pool template; [seed] and
                            [arrival_cycles] are overridden per shard *)
}

val default_config : config

type stats = {
  mutable submitted : int;
  mutable served : int;
  mutable dropped : int;  (** all unserved = shed + rejected *)
  mutable shed : int;  (** refused at admission (bound, no healthy shard) *)
  mutable rejected : int;  (** attempted but failed out of hedges *)
  mutable hedges : int;  (** cross-shard retry dispatches *)
  mutable quarantines : int;
  mutable rotations : int;  (** completed epoch rotations *)
  mutable rotation_drops : int;  (** drops attributable to rotation itself
                                     (a request touched a shut pool);
                                     structurally zero — the SLO gate *)
  mutable drops_during_rotation : int;  (** coincidental drops while a
                                            rotation was draining *)
  mutable canary_failures : int;  (** new-epoch pools that failed warmup *)
  mutable max_queue_depth : int;  (** deepest per-shard queue ever
                                      admitted to (≤ [queue_bound]) *)
}

type t

(** [create ?cfg ?obs ~build ~break_sym ()] — compile the epoch-0 shard
    pools (fanned out over the Domain pool) and register [fleet_*]
    metrics — aggregate counters, an epoch/clock gauge pair, a
    request-latency histogram, and per-shard
    [fleet_shardN_{served,failed,quarantines,queue_depth}] series — into
    [?obs] (an internal sink when omitted, so {!percentile} always
    works). *)
val create :
  ?cfg:config ->
  ?obs:R2c_obs.Sink.t ->
  build:(seed:int -> R2c_machine.Image.t) ->
  break_sym:string ->
  unit ->
  t

(** [submit t payload] — one arrival: advance the clock, advance the
    rotation state machine one step, then admit/dispatch/hedge as
    described above. *)
val submit : t -> string -> Pool.response

(** [run t payloads] — {!submit} each payload in order. *)
val run : t -> string list -> Pool.response list

val stats : t -> stats
val clock : t -> int

(** [epoch t] — completed rotations (the fleet serves epoch [epoch t]
    images). *)
val epoch : t -> int

(** [rotating t] — a rotation is mid-drain. *)
val rotating : t -> bool

val shard_count : t -> int

(** [queue_depth t i] — outstanding requests on shard [i] at the current
    clock. *)
val queue_depth : t -> int -> int

(** [quarantined t i] — shard [i] is currently excluded from dispatch. *)
val quarantined : t -> int -> bool

(** [pool_totals t] — shard-pool stats aggregated across every pool the
    fleet ever ran: live shards plus pools retired by rotation (and
    new-epoch builds that failed their canary). *)
val pool_totals : t -> Pool.stats

(** [availability s] — served / submitted; 1.0 with no traffic. *)
val availability : stats -> float

(** [percentile t p] — nearest-rank percentile of the request-latency
    histogram (queue wait + service, in cycles). *)
val percentile : t -> float -> int

(** [shard_percentile t i p] — the same nearest-rank percentile over only
    the requests shard [i] served (its [fleet_shard<i>_request_cycles]
    histogram): the per-shard latency breakdown behind the fleet-wide
    p50/p99, and the basis of per-shard SLO checks. *)
val shard_percentile : t -> int -> float -> int

(** [sink t] — the observability sink the fleet publishes into. *)
val sink : t -> R2c_obs.Sink.t
