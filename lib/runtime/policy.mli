(** Restart policies — the supervisor's answer to a crashed worker, as
    first-class values.

    R2C's booby traps "give defenders a way to respond to an ongoing
    attack" (Section 4.2); a policy is that response:

    - {!Same_image} — respawn with the same layout: the nginx/Apache
      worker-respawn model Blind ROP exploits (Section 4.1).
    - {!Rerandomize} — fresh seed, fresh compile, fresh layout on every
      respawn: the load-time re-randomization extension of Section 7.3.
    - {!Backoff} — exponential respawn delay with jitter plus a crash-loop
      circuit breaker that quarantines a worker crashing too often within
      a window; trades availability for attack-rate limiting.
    - {!Reactive} — cheap [Same_image] respawns until monitoring sees a
      {e detection} ({!R2c_machine.Fault.is_detection}), then escalate:
      fleet-wide re-randomization or MVEE lockstep — the reactive half of
      R2C. *)

type backoff = {
  base : int;  (** first delay, cycles *)
  factor : int;  (** exponential growth factor *)
  cap : int;  (** delay ceiling, cycles *)
  jitter : float;  (** extra random delay as a fraction of the raw delay *)
  window : int;  (** circuit-breaker crash window, cycles *)
  max_crashes : int;  (** crashes within [window] that trip the breaker *)
  quarantine : int;  (** quarantine duration once tripped, cycles *)
}

val default_backoff : backoff

type escalation =
  | Escalate_rerandomize  (** rolling fleet re-randomization *)
  | Escalate_mvee of { variants : int }
      (** serve subsequent requests in N-variant lockstep (Section 7.3) *)

type t =
  | Same_image
  | Rerandomize
  | Backoff of backoff
  | Reactive of escalation

val escalation_to_string : escalation -> string
val to_string : t -> string

(** Per-worker backoff bookkeeping: delay escalation and the circuit
    breaker. Deterministic per seed. *)
module Backoff_state : sig
  type s

  val create : ?cfg:backoff -> seed:int -> unit -> s

  (** [next_delay s] — the next respawn delay. Successive delays are
      monotonically non-decreasing and never exceed [cap], jitter
      included. *)
  val next_delay : s -> int

  (** [reset s] — a healthy stretch ends the escalation (delays restart
      from [base]). *)
  val reset : s -> unit

  (** [record_crash s ~now] — feed the circuit breaker; [true] when this
      crash trips it (the worker enters quarantine until
      [now + quarantine]). *)
  val record_crash : s -> now:int -> bool

  val quarantined : s -> now:int -> bool
  val quarantined_until : s -> int
end
