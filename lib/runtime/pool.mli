(** Reactive worker-pool supervisor.

    A pool of diversified worker processes serves a shared request queue —
    the pre-fork server model (nginx, Apache) in which every worker is a
    fork of one parent and therefore shares one randomized layout, the
    uniformity Blind ROP feeds on (Section 4.1). The supervisor owns the
    recovery story: per-request timeouts, bounded retry on another worker,
    load shedding when the fleet is down, and a restart {!Policy.t} that
    decides what a crashed worker comes back as — the same image, a fresh
    layout, a backed-off respawn, or (reactively, once booby-trap
    detections cross a threshold) a fleet-wide re-randomization or MVEE
    lockstep.

    Time is simulated-cycle time: serving burns the worker's measured
    cycles, respawns burn configured penalty cycles, and arrivals advance a
    global clock — enough to measure availability, MTTR and
    detection-to-response latency deterministically. *)

type config = {
  workers : int;  (** pool size *)
  policy : Policy.t;
  seed : int;  (** master seed: parent image, respawn seeds, injectors *)
  worker_fuel : int;  (** per-child lifetime instruction budget *)
  request_fuel : int;  (** per-request instruction cap (timeout) *)
  max_retries : int;  (** failed-request retries on other workers *)
  requests_per_child : int;  (** recycle after N requests; 0 = never *)
  spawn_cycles : int;  (** graceful recycle downtime *)
  restart_cycles : int;  (** crash-respawn downtime *)
  rerandomize_cycles : int;  (** recompile + respawn downtime *)
  arrival_cycles : int;  (** inter-arrival gap charged per submit *)
  detection_threshold : int;  (** Reactive: escalate at N detections *)
  inject : R2c_machine.Inject.rates;  (** chaos fault-injection rates *)
}

val default_config : config

type stats = {
  mutable served : int;
  mutable dropped : int;  (** all unserved: failed out of retries + shed *)
  mutable shed : int;  (** dropped without any attempt (no capacity) *)
  mutable retried : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable detections : int;  (** crashes with {!R2c_machine.Fault.is_detection} *)
  mutable restarts : int;
  mutable recycles : int;
  mutable rerandomizations : int;
  mutable quarantines : int;  (** circuit-breaker trips *)
  mutable mvee_blocks : int;  (** requests refused by lockstep divergence *)
  mutable recovery_cycles : int;  (** total downtime charged *)
  mutable recoveries : int;
  mutable first_detection : int option;  (** clock of first detection *)
  mutable first_response : int option;  (** clock of reactive escalation *)
}

type response =
  | Served of { cycles : int; lines : int }
      (** [lines]: response lines the client saw — the feedback channel
          Blind ROP's stop-gadget test reads *)
  | Rejected of { reason : string; lines : int }
      (** attempted but failed out of retries, or MVEE-blocked; [lines] is
          output seen before the connection died *)
  | Dropped  (** shed: no live worker would take it *)

type t

(** A crash post-mortem: the last instructions the dying child executed,
    captured from its per-worker trace ring at the moment of the fault.
    Only kept when the pool is observed; bounded to the last few crashes. *)
type postmortem = {
  pm_clock : int;  (** pool clock at the crash *)
  pm_wid : int;
  pm_fault : string;
  pm_tail : string;  (** {!R2c_machine.Trace.pp_tail} of the child's ring *)
}

(** [create ?cfg ?obs ?ns ~build ~break_sym ()] — [build ~seed] compiles one
    worker image; [break_sym] names the per-request serving point every
    worker parks at between requests (the request-accept loop). All workers
    start from a single [build ~seed:cfg.seed] image — the fork model.

    With [?obs], the pool streams its lifecycle into the sink: request /
    attempt / respawn spans and crash / detection / escalation /
    post-mortem instants on the event timeline (dispatcher is thread 0,
    worker [w] is thread [w+1], timestamps are pool-clock cycles), plus
    [pool_*] counters, a clock gauge and a request-cycles histogram in the
    metrics registry. Each worker also gets a small trace ring for crash
    post-mortems. Without [?obs] none of this exists — the serving path is
    the bare interpreter.

    [?ns] (default [""]) prefixes every registered metric name — a fleet
    of pools sharing one registry gives each shard its own namespace
    (["shard0_pool_served_total"], …) instead of fighting over one
    [pool_*] series. Attachment is idempotent: re-attaching the sink that
    is already active (at [create] or a previous {!run}/{!attach}) neither
    re-registers instruments nor replaces the post-mortem rings. *)
val create :
  ?cfg:config ->
  ?obs:R2c_obs.Sink.t ->
  ?ns:string ->
  build:(seed:int -> R2c_machine.Image.t) ->
  break_sym:string ->
  unit ->
  t

(** [submit ?retries t payload] — advance the clock one arrival and serve
    [payload] on the next available worker, retrying on others on failure
    ([?retries] overrides [cfg.max_retries]; attack probes pass
    [~retries:0]). Once a Reactive pool has escalated to MVEE, every
    request is served in lockstep instead.

    When observed, every [submit] records exactly one request span —
    served, rejected or dropped — so a trace's request-span count equals
    [stats.served + stats.dropped]. *)
val submit : ?retries:int -> t -> string -> response

(** [run ?obs t payloads] — submit each payload in order and collect the
    responses. [?obs] attaches a sink first (equivalent to passing it at
    {!create}), so existing harnesses can opt into observation per run. *)
val run : ?obs:R2c_obs.Sink.t -> t -> string list -> response list

(** [attach t sink] — opt into observation after the fact (what
    [run ?obs] does before replaying). Idempotent for the sink already
    attached. *)
val attach : t -> R2c_obs.Sink.t -> unit

(** [shutdown t] — graceful drain: stop admitting (every later {!submit}
    is refused and counted as shed), close out each worker with a
    [retire] span covering its residual downtime, record a terminal
    stats snapshot in the metrics registry, and mark the timeline with a
    [shutdown] instant. In-flight work needs no waiting — serving is
    synchronous, so nothing is mid-request between [submit]s.
    Idempotent. The fleet's epoch rotation retires old-epoch pools
    through this instead of abandoning them. *)
val shutdown : t -> unit

(** [is_shutdown t] — {!shutdown} has run. *)
val is_shutdown : t -> bool

(** [advance_clock t now] — fast-forward the pool clock to [now] (no-op
    if the clock is already past it). For composing pools under an
    external clock: a fleet dispatching to shards advances each shard to
    the fleet-wide arrival time so respawn downtimes elapse in fleet
    time, not per-shard request counts. *)
val advance_clock : t -> int -> unit

(** [postmortems t] — captured crash post-mortems, oldest first. *)
val postmortems : t -> postmortem list

val stats : t -> stats
val clock : t -> int

(** [escalated t] — a Reactive pool has fired its escalation. *)
val escalated : t -> bool

(** [sensitive_log t] — privileged-call log across all workers, dead and
    alive: (builtin address, first-arg) pairs. Compromise evidence. *)
val sensitive_log : t -> (int * int) list

(** [availability s] — served / (served + dropped); 1.0 with no traffic. *)
val availability : stats -> float

(** [mttr s] — mean downtime per recovery, in cycles. *)
val mttr : stats -> float option

(** [detection_to_response s] — cycles from first detection to the
    reactive escalation, when both happened. *)
val detection_to_response : stats -> int option
