module Rng = R2c_util.Rng

type backoff = {
  base : int;
  factor : int;
  cap : int;
  jitter : float;
  window : int;
  max_crashes : int;
  quarantine : int;
}

let default_backoff =
  {
    base = 50_000;
    factor = 2;
    cap = 1_600_000;
    jitter = 0.25;
    window = 2_000_000;
    max_crashes = 5;
    quarantine = 8_000_000;
  }

type escalation = Escalate_rerandomize | Escalate_mvee of { variants : int }

type t =
  | Same_image
  | Rerandomize
  | Backoff of backoff
  | Reactive of escalation

let escalation_to_string = function
  | Escalate_rerandomize -> "rerandomize"
  | Escalate_mvee { variants } -> Printf.sprintf "mvee(%d)" variants

let to_string = function
  | Same_image -> "same-image"
  | Rerandomize -> "rerandomize"
  | Backoff b ->
      Printf.sprintf "backoff(base=%d,cap=%d,breaker=%d/%d)" b.base b.cap b.max_crashes
        b.window
  | Reactive e -> Printf.sprintf "reactive->%s" (escalation_to_string e)

module Backoff_state = struct
  type s = {
    cfg : backoff;
    rng : Rng.t;
    mutable streak : int;
    mutable last_delay : int;
    mutable crash_times : int list;
    mutable quarantined_until : int;
  }

  let create ?(cfg = default_backoff) ~seed () =
    {
      cfg;
      rng = Rng.create seed;
      streak = 0;
      last_delay = 0;
      crash_times = [];
      quarantined_until = 0;
    }

  (* base * factor^streak without overflow: stop multiplying at the cap. *)
  let raw_delay cfg streak =
    let rec go d n =
      if n <= 0 || d >= cfg.cap then min d cfg.cap else go (d * cfg.factor) (n - 1)
    in
    go cfg.base streak

  (* Monotone by construction: jitter never lets a later delay undercut an
     earlier one, and the cap is an absolute ceiling — the property the
     supervisor (and test_properties) relies on. *)
  let next_delay s =
    let raw = raw_delay s.cfg s.streak in
    let jitter =
      if s.cfg.jitter <= 0.0 then 0
      else int_of_float (Rng.float s.rng (float_of_int raw *. s.cfg.jitter))
    in
    let d = min s.cfg.cap (max s.last_delay (raw + jitter)) in
    s.streak <- s.streak + 1;
    s.last_delay <- d;
    d

  let reset s =
    s.streak <- 0;
    s.last_delay <- 0

  let record_crash s ~now =
    s.crash_times <- now :: List.filter (fun c -> now - c < s.cfg.window) s.crash_times;
    if List.length s.crash_times >= s.cfg.max_crashes then begin
      s.quarantined_until <- now + s.cfg.quarantine;
      s.crash_times <- [];
      true
    end
    else false

  let quarantined s ~now = now < s.quarantined_until
  let quarantined_until s = s.quarantined_until
end
