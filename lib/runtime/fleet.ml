module Rng = R2c_util.Rng
module Parallel = R2c_util.Parallel
module Obs = R2c_obs

type config = {
  shards : int;
  seed : int;
  queue_bound : int;
  hedge_retries : int;
  arrival_cycles : int;
  epoch_cycles : int;
  rotate_detections : int;
  canary : string;
  canary_retries : int;
  quarantine_failures : int;
  quarantine_window : int;
  quarantine_detections : int;
  quarantine_cycles : int;
  panic_min_healthy : int;
  observe_shards : bool;
  jobs : int;
  shard : Pool.config;
}

let default_config =
  {
    shards = 4;
    seed = 1;
    queue_bound = 32;
    hedge_retries = 3;
    arrival_cycles = 800;
    epoch_cycles = 18_000_000;
    rotate_detections = 0;
    canary = "GET /healthz";
    canary_retries = 3;
    quarantine_failures = 8;
    quarantine_window = 32;
    quarantine_detections = 3;
    quarantine_cycles = 200_000;
    panic_min_healthy = 2;
    observe_shards = false;
    jobs = 0;
    shard =
      {
        Pool.default_config with
        Pool.workers = 3;
        policy = Policy.Rerandomize;
        requests_per_child = 48;
        arrival_cycles = 0;
      };
  }

type stats = {
  mutable submitted : int;
  mutable served : int;
  mutable dropped : int;
  mutable shed : int;
  mutable rejected : int;
  mutable hedges : int;
  mutable quarantines : int;
  mutable rotations : int;
  mutable rotation_drops : int;
  mutable drops_during_rotation : int;
  mutable canary_failures : int;
  mutable max_queue_depth : int;
}

let fresh_stats () =
  {
    submitted = 0;
    served = 0;
    dropped = 0;
    shed = 0;
    rejected = 0;
    hedges = 0;
    quarantines = 0;
    rotations = 0;
    rotation_drops = 0;
    drops_during_rotation = 0;
    canary_failures = 0;
    max_queue_depth = 0;
  }

(* Per-shard dispatcher view: the queueing model (outstanding completion
   times), the health window, and the live pool. *)
type shard_instruments = {
  s_served : Obs.Metrics.counter;
  s_failed : Obs.Metrics.counter;
  s_quarantines : Obs.Metrics.counter;
  s_depth : Obs.Metrics.gauge;
  s_latency : Obs.Metrics.histogram;
}

type shard = {
  idx : int;
  mutable pool : Pool.t;
  mutable tail : int;  (* completion time of the last admitted request *)
  completions : int Queue.t;  (* outstanding completion times, ascending *)
  mutable quarantined_until : int;
  window : bool array;  (* recent outcomes ring; [true] = failure *)
  mutable win_pos : int;
  mutable win_len : int;
  mutable win_fails : int;
  mutable det_base : int;  (* pool detections at the last health reset *)
  si : shard_instruments;
}

type instruments = {
  f_requests : Obs.Metrics.counter;
  f_served : Obs.Metrics.counter;
  f_dropped : Obs.Metrics.counter;
  f_shed : Obs.Metrics.counter;
  f_hedges : Obs.Metrics.counter;
  f_quarantines : Obs.Metrics.counter;
  f_rotations : Obs.Metrics.counter;
  f_rotation_drops : Obs.Metrics.counter;
  f_canary_failures : Obs.Metrics.counter;
  f_epoch : Obs.Metrics.gauge;
  f_clock : Obs.Metrics.gauge;
  f_request_cycles : Obs.Metrics.histogram;
}

type rotation = {
  started : int;
  reason : string;
  mutable pending : (int * Pool.t) list;  (* shard idx, warmed pool *)
}

type t = {
  cfg : config;
  build : seed:int -> R2c_machine.Image.t;
  break_sym : string;
  rng : Rng.t;
  shards : shard array;
  stats : stats;
  sink : Obs.Sink.t;
  ins : instruments;
  retired : Pool.stats;  (* accumulated stats of every retired pool *)
  mutable clock : int;
  mutable epoch : int;
  mutable last_rotation : int;
  mutable det_at_rotation : int;
  mutable rotating : rotation option;
}

let zero_pool_stats () =
  {
    Pool.served = 0;
    dropped = 0;
    shed = 0;
    retried = 0;
    crashes = 0;
    timeouts = 0;
    detections = 0;
    restarts = 0;
    recycles = 0;
    rerandomizations = 0;
    quarantines = 0;
    mvee_blocks = 0;
    recovery_cycles = 0;
    recoveries = 0;
    first_detection = None;
    first_response = None;
  }

let add_pool_stats (acc : Pool.stats) (s : Pool.stats) =
  acc.Pool.served <- acc.Pool.served + s.Pool.served;
  acc.Pool.dropped <- acc.Pool.dropped + s.Pool.dropped;
  acc.Pool.shed <- acc.Pool.shed + s.Pool.shed;
  acc.Pool.retried <- acc.Pool.retried + s.Pool.retried;
  acc.Pool.crashes <- acc.Pool.crashes + s.Pool.crashes;
  acc.Pool.timeouts <- acc.Pool.timeouts + s.Pool.timeouts;
  acc.Pool.detections <- acc.Pool.detections + s.Pool.detections;
  acc.Pool.restarts <- acc.Pool.restarts + s.Pool.restarts;
  acc.Pool.recycles <- acc.Pool.recycles + s.Pool.recycles;
  acc.Pool.rerandomizations <- acc.Pool.rerandomizations + s.Pool.rerandomizations;
  acc.Pool.quarantines <- acc.Pool.quarantines + s.Pool.quarantines;
  acc.Pool.mvee_blocks <- acc.Pool.mvee_blocks + s.Pool.mvee_blocks;
  acc.Pool.recovery_cycles <- acc.Pool.recovery_cycles + s.Pool.recovery_cycles;
  acc.Pool.recoveries <- acc.Pool.recoveries + s.Pool.recoveries

let pool_totals t =
  let acc = zero_pool_stats () in
  add_pool_stats acc t.retired;
  Array.iter (fun sh -> add_pool_stats acc (Pool.stats sh.pool)) t.shards;
  acc

let shard_cfg t ~seed = { t.cfg.shard with Pool.seed; arrival_cycles = 0 }

let fresh_seed t = Rng.int t.rng 0x3fff_ffff

let shard_ns i = Printf.sprintf "shard%d_" i

let register_instruments (sink : Obs.Sink.t) =
  let m = sink.Obs.Sink.metrics in
  let c name help = Obs.Metrics.counter ~help m name in
  let g name help = Obs.Metrics.gauge ~help m name in
  {
    f_requests = c "fleet_requests_total" "requests submitted to the fleet";
    f_served = c "fleet_served_total" "requests served";
    f_dropped = c "fleet_dropped_total" "requests shed or rejected";
    f_shed = c "fleet_shed_total" "requests refused at admission";
    f_hedges = c "fleet_hedges_total" "cross-shard hedge dispatches";
    f_quarantines = c "fleet_quarantines_total" "shard quarantines";
    f_rotations = c "fleet_rotations_total" "completed epoch rotations";
    f_rotation_drops =
      c "fleet_rotation_drops_total" "drops caused by rotation itself (SLO: 0)";
    f_canary_failures = c "fleet_canary_failures_total" "new-epoch pools failing warmup";
    f_epoch = g "fleet_epoch" "current serving epoch";
    f_clock = g "fleet_clock_cycles" "simulated fleet clock (cycles)";
    f_request_cycles =
      Obs.Metrics.histogram ~help:"request latency: queue wait + service cycles" m
        "fleet_request_cycles";
  }

let register_shard_instruments (sink : Obs.Sink.t) i =
  let m = sink.Obs.Sink.metrics in
  let n suffix = Printf.sprintf "fleet_shard%d_%s" i suffix in
  {
    s_served = Obs.Metrics.counter ~help:"requests served by this shard" m (n "served_total");
    s_failed =
      Obs.Metrics.counter ~help:"dispatches this shard failed" m (n "failed_total");
    s_quarantines = Obs.Metrics.counter ~help:"times quarantined" m (n "quarantines_total");
    s_depth = Obs.Metrics.gauge ~help:"outstanding requests" m (n "queue_depth");
    s_latency =
      Obs.Metrics.histogram ~help:"request latency served by this shard (cycles)" m
        (n "request_cycles");
  }

(* Build one epoch's worth of pools, fanned out across the Domain pool.
   Seeds are pre-drawn sequentially (the RNG stream is identical at any
   job count) and each task touches only its own pool-to-be; observation
   is attached afterwards, serially, because the sink's registry is not a
   concurrent structure. *)
let build_pools t seeds =
  let jobs = if t.cfg.jobs <= 0 then None else Some t.cfg.jobs in
  let pools =
    Parallel.map ?jobs
      (fun (i, seed) ->
        Pool.create ~cfg:(shard_cfg t ~seed) ~ns:(shard_ns i) ~build:t.build
          ~break_sym:t.break_sym ())
      (List.mapi (fun i s -> (i, s)) seeds)
  in
  if t.cfg.observe_shards then List.iter (fun p -> Pool.attach p t.sink) pools;
  pools

(* A freshly built pool must prove it can serve before any traffic drains
   onto it: one canary request per worker. Round-robin dispatch walks the
   canaries across every worker, so each child pays its cold-start cycles
   (running main up to the first request park — ~35x a steady-state
   request) here, in the background, instead of dumping them into the
   serving queue at swap time. On failure (a chaos fault during warmup,
   or a genuinely bad build) the shard is rebuilt under a new seed, a
   bounded number of times; a shard whose canaries all fail skips this
   rotation — its old pool keeps serving, so the failure costs diversity
   freshness, never availability. *)
let warm_pool ~workers ~canary pool =
  let ok = ref true in
  for _ = 1 to workers do
    match Pool.submit pool canary with Pool.Served _ -> () | _ -> ok := false
  done;
  !ok

let ev t f = f t.sink

let create ?(cfg = default_config) ?obs ~build ~break_sym () =
  if cfg.shards <= 0 then invalid_arg "Fleet.create: need at least one shard";
  if cfg.queue_bound <= 0 then invalid_arg "Fleet.create: queue_bound must be positive";
  let sink = match obs with Some s -> s | None -> Obs.Sink.create () in
  let rng = Rng.create cfg.seed in
  let jobs = if cfg.jobs <= 0 then None else Some cfg.jobs in
  let seeds = List.init cfg.shards (fun _ -> Rng.int rng 0x3fff_ffff) in
  let pools =
    Parallel.map ?jobs
      (fun (i, seed) ->
        Pool.create
          ~cfg:{ cfg.shard with Pool.seed; arrival_cycles = 0 }
          ~ns:(shard_ns i) ~build ~break_sym ())
      (List.mapi (fun i s -> (i, s)) seeds)
  in
  if cfg.observe_shards then List.iter (fun p -> Pool.attach p sink) pools;
  (* Epoch-0 warmup: ignore outcomes (under chaos injection a canary can
     crash; the worker respawns and its downtime elapses before traffic
     starts) — what matters is that every worker's cold start is charged
     before the fleet clock begins. *)
  List.iter
    (fun p ->
      ignore (warm_pool ~workers:cfg.shard.Pool.workers ~canary:cfg.canary p))
    pools;
  let clock0 = List.fold_left (fun acc p -> max acc (Pool.clock p)) 0 pools in
  let shards =
    Array.of_list
      (List.mapi
         (fun i p ->
           {
             idx = i;
             pool = p;
             tail = 0;
             completions = Queue.create ();
             quarantined_until = 0;
             window = Array.make (max 1 cfg.quarantine_window) false;
             win_pos = 0;
             win_len = 0;
             win_fails = 0;
             det_base = (Pool.stats p).Pool.detections;
             si = register_shard_instruments sink i;
           })
         pools)
  in
  {
    cfg;
    build;
    break_sym;
    rng;
    shards;
    stats = fresh_stats ();
    sink;
    ins = register_instruments sink;
    retired = zero_pool_stats ();
    (* The fleet clock opens where warmup left the slowest shard: the
       service is "up" once every worker has served its canary. *)
    clock = clock0;
    epoch = 0;
    last_rotation = clock0;
    (* Canary crashes during warmup can already be detections; the
       reactive trigger counts only detections since serving began. *)
    det_at_rotation =
      List.fold_left (fun acc p -> acc + (Pool.stats p).Pool.detections) 0 pools;
    rotating = None;
  }

(* --- queueing model --- *)

let expire sh ~now =
  while (not (Queue.is_empty sh.completions)) && Queue.peek sh.completions <= now do
    ignore (Queue.pop sh.completions)
  done

let depth sh ~now =
  expire sh ~now;
  Queue.length sh.completions

(* --- shard health --- *)

let reset_window sh =
  sh.win_pos <- 0;
  sh.win_len <- 0;
  sh.win_fails <- 0;
  Array.fill sh.window 0 (Array.length sh.window) false

let record_outcome sh ~failed =
  let w = sh.window in
  let n = Array.length w in
  if sh.win_len = n then begin
    if w.(sh.win_pos) then sh.win_fails <- sh.win_fails - 1
  end
  else sh.win_len <- sh.win_len + 1;
  w.(sh.win_pos) <- failed;
  if failed then sh.win_fails <- sh.win_fails + 1;
  sh.win_pos <- (sh.win_pos + 1) mod n

let quarantine t sh ~why =
  sh.quarantined_until <- t.clock + t.cfg.quarantine_cycles;
  t.stats.quarantines <- t.stats.quarantines + 1;
  Obs.Metrics.inc t.ins.f_quarantines;
  Obs.Metrics.inc sh.si.s_quarantines;
  reset_window sh;
  sh.det_base <- (Pool.stats sh.pool).Pool.detections;
  ev t (fun sink ->
      Obs.Events.instant ~cat:"quarantine"
        ~args:
          [
            ("shard", string_of_int sh.idx);
            ("why", why);
            ("until", string_of_int sh.quarantined_until);
          ]
        sink.Obs.Sink.events ~name:"quarantine" ~ts:t.clock)

(* Quarantine triggers, checked after every dispatch to the shard: too
   many failures in the sliding window (availability), or the shard's
   pool has accumulated booby-trap detections past the threshold (it is
   being probed — rest it while its workers rerandomize). *)
let check_health t sh =
  if sh.win_fails >= t.cfg.quarantine_failures then quarantine t sh ~why:"failures"
  else
    let det = (Pool.stats sh.pool).Pool.detections in
    if t.cfg.quarantine_detections > 0 && det - sh.det_base >= t.cfg.quarantine_detections
    then quarantine t sh ~why:"detections"

(* --- epoch rotation --- *)

let swap t idx np =
  let sh = t.shards.(idx) in
  let old = sh.pool in
  Pool.advance_clock np t.clock;
  Pool.shutdown old;
  add_pool_stats t.retired (Pool.stats old);
  sh.pool <- np;
  (* Fresh layout: clear the health record and any quarantine — the
     probes that tripped it were against the retired epoch's layouts.
     The queue carries over: outstanding work finishes draining in the
     background regardless of which epoch admitted it. *)
  reset_window sh;
  sh.det_base <- (Pool.stats np).Pool.detections;
  sh.quarantined_until <- 0;
  ev t (fun sink ->
      Obs.Events.instant ~cat:"rotation"
        ~args:[ ("shard", string_of_int idx); ("epoch", string_of_int (t.epoch + 1)) ]
        sink.Obs.Sink.events ~name:"swap" ~ts:t.clock)

let finish_rotation t r =
  t.rotating <- None;
  t.epoch <- t.epoch + 1;
  t.last_rotation <- t.clock;
  t.stats.rotations <- t.stats.rotations + 1;
  Obs.Metrics.inc t.ins.f_rotations;
  Obs.Metrics.set_gauge t.ins.f_epoch (float_of_int t.epoch);
  ev t (fun sink ->
      Obs.Events.complete ~cat:"rotation"
        ~args:[ ("epoch", string_of_int t.epoch); ("reason", r.reason) ]
        sink.Obs.Sink.events ~name:"epoch-rotation" ~ts:r.started
        ~dur:(t.clock - r.started))

let start_rotation t ~reason =
  (* Background compile: every shard gets a freshly seeded image, fanned
     out over the Domain pool; the serving path does not wait, so no
     fleet-clock cycles are charged. Then warm each new pool with the
     canary before it is allowed anywhere near traffic. *)
  let seeds = List.init t.cfg.shards (fun _ -> fresh_seed t) in
  let pools = build_pools t seeds in
  let warmed =
    List.mapi
      (fun i p ->
        let rec warm p tries =
          if warm_pool ~workers:t.cfg.shard.Pool.workers ~canary:t.cfg.canary p then
            Some p
          else begin
            t.stats.canary_failures <- t.stats.canary_failures + 1;
            Obs.Metrics.inc t.ins.f_canary_failures;
            add_pool_stats t.retired (Pool.stats p);
            Pool.shutdown p;
            if tries >= t.cfg.canary_retries then None
            else
              let p' =
                Pool.create
                  ~cfg:(shard_cfg t ~seed:(fresh_seed t))
                  ~ns:(shard_ns i) ~build:t.build ~break_sym:t.break_sym ()
              in
              if t.cfg.observe_shards then Pool.attach p' t.sink;
              warm p' (tries + 1)
          end
        in
        (i, warm p 0))
      pools
  in
  let pending = List.filter_map (fun (i, p) -> Option.map (fun p -> (i, p)) p) warmed in
  ev t (fun sink ->
      Obs.Events.instant ~cat:"rotation"
        ~args:
          [
            ("reason", reason);
            ("epoch", string_of_int (t.epoch + 1));
            ("warmed", string_of_int (List.length pending));
          ]
        sink.Obs.Sink.events ~name:"rotation-start" ~ts:t.clock);
  t.det_at_rotation <-
    (let tot = pool_totals t in
     tot.Pool.detections);
  let r = { started = t.clock; reason; pending } in
  (* Even if every canary failed, the epoch still turns over (nothing to
     drain): diversity freshness is lost this round, availability is not. *)
  if pending = [] then finish_rotation t r else t.rotating <- Some r

(* One rotation step per arrival: either trigger a new rotation or swap
   the next pending shard. Swaps are atomic between arrivals — the old
   pool serves up to the instant its replacement takes over — which is
   what makes rotation-caused drops structurally zero. *)
let rotation_tick t =
  match t.rotating with
  | Some r -> (
      match r.pending with
      | [] -> finish_rotation t r
      | (idx, np) :: rest ->
          swap t idx np;
          r.pending <- rest;
          if rest = [] then finish_rotation t r)
  | None ->
      let timer =
        t.cfg.epoch_cycles > 0 && t.clock - t.last_rotation >= t.cfg.epoch_cycles
      in
      let reactive =
        t.cfg.rotate_detections > 0
        &&
        let tot = pool_totals t in
        tot.Pool.detections - t.det_at_rotation >= t.cfg.rotate_detections
      in
      if timer || reactive then
        start_rotation t ~reason:(if reactive then "reactive" else "timer")

(* --- dispatch --- *)

(* Dispatchable shards. Quarantine is advisory under pressure: when fewer
   than [panic_min_healthy] shards are healthy, the balancer panics and
   routes across every live shard, quarantined or not — a quarantined
   shard that still has a worker up beats refusing the connection
   outright (the same reasoning as Envoy's panic threshold). *)
let candidates t =
  let now = t.clock in
  let healthy = ref [] and live = ref [] in
  let shut_excluded = ref 0 in
  for i = Array.length t.shards - 1 downto 0 do
    let sh = t.shards.(i) in
    if Pool.is_shutdown sh.pool then incr shut_excluded
    else begin
      live := sh :: !live;
      if sh.quarantined_until <= now then healthy := sh :: !healthy
    end
  done;
  let cands =
    if List.length !healthy >= t.cfg.panic_min_healthy then !healthy else !live
  in
  (cands, !shut_excluded)

let record_drop t ~shed ~touched_shut =
  t.stats.dropped <- t.stats.dropped + 1;
  Obs.Metrics.inc t.ins.f_dropped;
  if shed then begin
    t.stats.shed <- t.stats.shed + 1;
    Obs.Metrics.inc t.ins.f_shed
  end
  else t.stats.rejected <- t.stats.rejected + 1;
  if t.rotating <> None then
    t.stats.drops_during_rotation <- t.stats.drops_during_rotation + 1;
  (* The SLO counter: a drop is the rotation's fault only if the request
     was refused or failed because a pool had already been shut down —
     which the atomic-swap design never allows a dispatchable shard to
     be. Nonzero here means the rotation machinery broke its promise. *)
  if touched_shut then begin
    t.stats.rotation_drops <- t.stats.rotation_drops + 1;
    Obs.Metrics.inc t.ins.f_rotation_drops
  end

(* Dispatch [payload] on [sh]; returns the pool's verdict plus whether
   the shard burned cycles. The shard pool is fast-forwarded to the
   request's start time (arrival or end of the shard's queue, whichever
   is later) so pool-side downtime windows elapse in fleet time. *)
let dispatch t sh payload =
  let start = max t.clock sh.tail in
  Pool.advance_clock sh.pool start;
  let c0 = Pool.clock sh.pool in
  let resp = Pool.submit sh.pool payload in
  let completion = Pool.clock sh.pool in
  let cost = completion - c0 in
  if cost > 0 then begin
    sh.tail <- completion;
    Queue.push completion sh.completions
  end;
  (resp, completion)

let serve_result t sh ~completion =
  let latency = completion - t.clock in
  t.stats.served <- t.stats.served + 1;
  Obs.Metrics.inc t.ins.f_served;
  Obs.Metrics.inc sh.si.s_served;
  Obs.Metrics.observe t.ins.f_request_cycles latency;
  Obs.Metrics.observe sh.si.s_latency latency;
  Obs.Metrics.set_gauge sh.si.s_depth (float_of_int (Queue.length sh.completions));
  record_outcome sh ~failed:false;
  let d = Queue.length sh.completions in
  if d > t.stats.max_queue_depth then t.stats.max_queue_depth <- d

let submit t payload =
  t.stats.submitted <- t.stats.submitted + 1;
  Obs.Metrics.inc t.ins.f_requests;
  t.clock <- t.clock + t.cfg.arrival_cycles;
  Obs.Metrics.set_gauge t.ins.f_clock (float_of_int t.clock);
  rotation_tick t;
  let cands, shut_excluded = candidates t in
  match cands with
  | [] ->
      record_drop t ~shed:true ~touched_shut:(shut_excluded > 0);
      Pool.Dropped
  | cands ->
      let n = List.length cands in
      let pick i = List.nth cands i in
      (* Power of two choices: two uniform picks, keep the shallower
         queue (ties to the lower shard index — deterministic). *)
      let a = pick (Rng.int t.rng n) in
      let b = pick (Rng.int t.rng n) in
      let da = depth a ~now:t.clock and db = depth b ~now:t.clock in
      let best, dbest =
        if da < db || (da = db && a.idx <= b.idx) then (a, da) else (b, db)
      in
      if dbest >= t.cfg.queue_bound then begin
        (* Admission control: the bound is on outstanding work, and it is
           checked before dispatch — the queue can never be driven past
           [queue_bound]. *)
        record_drop t ~shed:true ~touched_shut:false;
        Pool.Dropped
      end
      else begin
        let touched_shut = ref false in
        let rec attempt sh hedges tried =
          if Pool.is_shutdown sh.pool then touched_shut := true;
          let resp, completion = dispatch t sh payload in
          match resp with
          | Pool.Served _ ->
              serve_result t sh ~completion;
              resp
          | Pool.Rejected _ | Pool.Dropped -> (
              record_outcome sh ~failed:true;
              Obs.Metrics.inc sh.si.s_failed;
              check_health t sh;
              (* Hedge: bounded retry on the least-loaded other shard. *)
              let tried = sh.idx :: tried in
              let next =
                if hedges >= t.cfg.hedge_retries then None
                else
                  List.filter (fun c -> not (List.mem c.idx tried)) cands
                  |> List.fold_left
                       (fun acc c ->
                         let dc = depth c ~now:t.clock in
                         match acc with
                         | Some (_, dbest) when dbest <= dc -> acc
                         | _ when dc >= t.cfg.queue_bound -> acc
                         | _ -> Some (c, dc))
                       None
              in
              match next with
              | Some (c, _) ->
                  t.stats.hedges <- t.stats.hedges + 1;
                  Obs.Metrics.inc t.ins.f_hedges;
                  attempt c (hedges + 1) tried
              | None ->
                  record_drop t ~shed:false ~touched_shut:!touched_shut;
                  resp)
        in
        attempt best 0 []
      end

let run t payloads = List.map (fun p -> submit t p) payloads

let stats t = t.stats
let clock t = t.clock
let epoch t = t.epoch
let rotating t = t.rotating <> None
let shard_count t = Array.length t.shards
let queue_depth t i = depth t.shards.(i) ~now:t.clock
let quarantined t i = t.shards.(i).quarantined_until > t.clock

let availability s =
  if s.submitted = 0 then 1.0 else float_of_int s.served /. float_of_int s.submitted

let percentile t p = Obs.Metrics.percentile t.ins.f_request_cycles p
let shard_percentile t i p = Obs.Metrics.percentile t.shards.(i).si.s_latency p
let sink t = t.sink
