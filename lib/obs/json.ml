type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s -> Buffer.add_string buf (escape s)
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (escape k);
            Buffer.add_char buf ':';
            go v)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Parse_error of int * string

let parse ?(max_depth = 512) s =
  let n = String.length s in
  let pos = ref 0 in
  let depth = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Escaped controls decode to their byte; other code
                      points keep a lossy single-byte rendering — enough
                      for validation. *)
                   Buffer.add_char buf (Char.chr (code land 0xff))
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else match int_of_string_opt tok with Some i -> Int i | None -> Float (float_of_string tok)
  in
  (* Containers recurse; a depth bound turns pathological nesting (a
     100k-'[' bomb would otherwise blow the OCaml stack) into an ordinary
     parse error. *)
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some ('{' | '[') when !depth >= max_depth -> fail "nesting too deep"
    | Some '{' ->
        advance ();
        incr depth;
        skip_ws ();
        let v =
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
        in
        decr depth;
        v
    | Some '[' ->
        advance ();
        incr depth;
        skip_ws ();
        let v =
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
          end
        in
        decr depth;
        v
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "json: offset %d: %s" at msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
