type phase = Complete of int | Instant

type event = {
  name : string;
  cat : string;
  ts : int;
  tid : int;
  ph : phase;
  args : (string * string) list;
}

type t = {
  limit : int;
  mutable evs : event list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
}

let create ?(limit = 200_000) () = { limit; evs = []; n = 0; dropped = 0 }

let push t ev =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.evs <- ev :: t.evs;
    t.n <- t.n + 1
  end

let complete ?(cat = "") ?(tid = 0) ?(args = []) t ~name ~ts ~dur =
  push t { name; cat; ts; tid; ph = Complete dur; args }

let instant ?(cat = "") ?(tid = 0) ?(args = []) t ~name ~ts =
  push t { name; cat; ts; tid; ph = Instant; args }

let events t = List.rev t.evs

let count ?cat t =
  match cat with
  | None -> t.n
  | Some c -> List.length (List.filter (fun e -> e.cat = c) t.evs)

let dropped t = t.dropped

let event_json e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
      ("ts", Json.Int e.ts);
    ]
  in
  let phase =
    match e.ph with
    | Complete dur -> [ ("ph", Json.Str "X"); ("dur", Json.Int dur) ]
    | Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "g") ]
  in
  let args =
    match e.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  Json.Obj (base @ phase @ args)

let to_chrome t =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.map event_json (events t)));
         ("displayTimeUnit", Json.Str "ns");
         ("otherData", Json.Obj [ ("clock", Json.Str "simulated-cycles");
                                  ("dropped", Json.Int t.dropped) ]);
       ])

let to_jsonl t =
  String.concat "\n" (List.map (fun e -> Json.to_string (event_json e)) (events t))
