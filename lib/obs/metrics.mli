(** Metrics registry: counters, gauges, and log-bucketed histograms with a
    Prometheus-style text exposition and a JSON dump.

    The machine, pool and harness layers publish into a registry when one
    is attached; nothing in the hot path touches a registry otherwise.
    Instruments are registered by name — registration is idempotent, so a
    re-attached observer finds its existing instrument instead of a
    duplicate series.

    Histograms are log2-bucketed: bucket 0 counts values [<= 1], bucket
    [i >= 1] counts values in [(2^(i-1), 2^i]]. The exposition renders them
    as cumulative Prometheus buckets with [le="2^i"] bounds. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** Instrument registration — idempotent per name; raises
    [Invalid_argument] if the name is already registered as a different
    kind. [help] is kept from the first registration. *)

val counter : ?help:string -> t -> string -> counter

val gauge : ?help:string -> t -> string -> gauge

val histogram : ?help:string -> t -> string -> histogram

(** Updates. *)

val inc : ?by:int -> counter -> unit

(** [set_counter c v] — jump the counter to an externally tracked monotone
    total (mirroring an existing stats struct). *)
val set_counter : counter -> int -> unit

val set_gauge : gauge -> float -> unit

(** [observe h v] — record a (non-negative) sample. *)
val observe : histogram -> int -> unit

(** Reads. *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val hist_count : histogram -> int

val hist_sum : histogram -> float

(** [bucket_of v] — the bucket index a value lands in (exposed for
    tests). *)
val bucket_of : int -> int

(** [bucket_bound i] — inclusive upper bound of bucket [i] ([2^i]). *)
val bucket_bound : int -> int

(** [percentile h p] — nearest-rank percentile ([0 < p <= 100]) as the
    upper bound of the bucket containing that rank; 0 on an empty
    histogram. *)
val percentile : histogram -> float -> int

(** [expose t] — Prometheus text exposition format. *)
val expose : t -> string

(** [to_json t] — the whole registry as one JSON object. *)
val to_json : t -> Json.t
