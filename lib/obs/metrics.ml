let max_buckets = 62

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_help : string;
  buckets : int array;  (* log2 buckets, see mli *)
  mutable h_count : int;
  mutable h_sum : float;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable items : item list (* newest first *) }

let create () = { items = [] }

let item_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let find t name = List.find_opt (fun i -> item_name i = name) t.items

let counter ?(help = "") t name =
  match find t name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered as another kind")
  | None ->
      let c = { c_name = name; c_help = help; c_value = 0 } in
      t.items <- Counter c :: t.items;
      c

let gauge ?(help = "") t name =
  match find t name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered as another kind")
  | None ->
      let g = { g_name = name; g_help = help; g_value = 0.0 } in
      t.items <- Gauge g :: t.items;
      g

let histogram ?(help = "") t name =
  match find t name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " registered as another kind")
  | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          buckets = Array.make (max_buckets + 1) 0;
          h_count = 0;
          h_sum = 0.0;
        }
      in
      t.items <- Histogram h :: t.items;
      h

let inc ?(by = 1) c = c.c_value <- c.c_value + by
let set_counter c v = c.c_value <- v
let set_gauge g v = g.g_value <- v

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go i bound = if bound >= v then i else go (i + 1) (bound * 2) in
    min max_buckets (go 0 1)
  end

let bucket_bound i = 1 lsl i

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. float_of_int v

let counter_value c = c.c_value
let gauge_value g = g.g_value
let hist_count h = h.h_count
let hist_sum h = h.h_sum

let percentile h p =
  if h.h_count = 0 then 0
  else begin
    let p = Float.max 1e-9 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
    let rank = max 1 rank in
    let rec go i cum =
      if i > max_buckets then bucket_bound max_buckets
      else
        let cum = cum + h.buckets.(i) in
        if cum >= rank then bucket_bound i else go (i + 1) cum
    in
    go 0 0
  end

let items_in_order t = List.rev t.items

let top_bucket h =
  let rec go i = if i < 0 then -1 else if h.buckets.(i) > 0 then i else go (i - 1) in
  go max_buckets

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let expose t =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun item ->
      match item with
      | Counter c ->
          header c.c_name c.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name c.c_value)
      | Gauge g ->
          header g.g_name g.g_help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %s\n" g.g_name (float_str g.g_value))
      | Histogram h ->
          header h.h_name h.h_help "histogram";
          let top = top_bucket h in
          let cum = ref 0 in
          for i = 0 to top do
            cum := !cum + h.buckets.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" h.h_name (bucket_bound i) !cum)
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name h.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (float_str h.h_sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name h.h_count))
    (items_in_order t);
  Buffer.contents buf

let to_json t =
  let item_json = function
    | Counter c -> (c.c_name, Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c_value) ])
    | Gauge g -> (g.g_name, Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g.g_value) ])
    | Histogram h ->
        let top = top_bucket h in
        let buckets =
          List.init (top + 1) (fun i ->
              Json.Obj [ ("le", Json.Int (bucket_bound i)); ("n", Json.Int h.buckets.(i)) ])
        in
        ( h.h_name,
          Json.Obj
            [
              ("type", Json.Str "histogram");
              ("count", Json.Int h.h_count);
              ("sum", Json.Float h.h_sum);
              ("buckets", Json.Arr buckets);
            ] )
  in
  Json.Obj (List.map item_json (items_in_order t))
