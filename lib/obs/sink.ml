type t = {
  metrics : Metrics.t;
  events : Events.t;
  mutable profiles : (string * Profile.t) list;
}

let create ?limit () =
  { metrics = Metrics.create (); events = Events.create ?limit (); profiles = [] }

let add_profile t label p = t.profiles <- t.profiles @ [ (label, p) ]
let profile t label = List.assoc_opt label t.profiles
