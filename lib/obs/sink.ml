type t = {
  metrics : Metrics.t;
  events : Events.t;
  mutable profiles : (string * Profile.t) list;
}

let create ?limit () =
  { metrics = Metrics.create (); events = Events.create ?limit (); profiles = [] }

let add_profile t label p = t.profiles <- t.profiles @ [ (label, p) ]
let profile t label = List.assoc_opt label t.profiles

let tee (obs : R2c_machine.Cpu.observer list) : R2c_machine.Cpu.observer =
  match obs with
  | [] -> fun ~rip:_ ~cycles:_ ~misses:_ ~called:_ -> ()
  | [ o ] -> o
  | os -> fun ~rip ~cycles ~misses ~called ->
      List.iter (fun o -> o ~rip ~cycles ~misses ~called) os
