(** Cycle / instruction / icache profiler, driven by the {!Cpu.observer}
    per-step hook.

    Attributes every retired instruction's cycle and icache-miss deltas to
    the covering function (via the image's defender-side symbol metadata),
    builds a flat profile plus a caller→callee edge profile, and splits
    each function's cycles into the components the paper's evaluation
    attributes diversification overhead to (Sections 6.1–6.3):

    - {b call-site} — BTRA setup shapes: immediate pushes, vector
      loads/stores of decoy batches, [vzeroupper], and the call-site NOPs
      of Section 4.3;
    - {b prologue} — instructions inside the trap-padded prologue region
      ([entry ..] the compiler's [<f>.Lprolog] label);
    - {b icache} — miss-penalty cycles, wherever charged;
    - the remainder is ordinary execution ({b other}).

    The split is exactly additive: the four components of a row sum to the
    row's cycles, and row sums equal the CPU's own totals. Intercepted
    library entries appear as ["<name>"] pseudo-functions. *)

open R2c_machine

type row = {
  name : string;
  cycles : float;
  insns : int;
  misses : int;  (** icache misses charged while executing this function *)
  calls : int;  (** times entered via a call instruction *)
  callsite_cycles : float;
  prologue_cycles : float;
  icache_cycles : float;
}

type t

(** [create ~profile img] — a profiler for one image; attach it to any
    number of CPUs running that image (accumulates across them). *)
val create : profile:Cost.profile -> Image.t -> t

(** [attach ?tee t cpu] — install the profiling observer. By default it
    replaces any other observer on [cpu] (the historical semantics the
    worker pool's fresh-ring-per-child logic relies on); with [~tee:true]
    a previously attached observer keeps firing first on every step, so a
    profiler can ride alongside a trace ring or a workload recorder
    (see {!Sink.tee}). *)
val attach : ?tee:bool -> t -> Cpu.t -> unit

(** [detach cpu] — remove whatever observer is installed. *)
val detach : Cpu.t -> unit

(** [rows t] — per-function rows, descending by cycles; only functions
    that executed at least one instruction appear. *)
val rows : t -> row list

(** [total t] — the column sums as one row (name ["total"]). By
    construction equals the observed CPUs' own cycle/insn/miss totals. *)
val total : t -> row

(** [edges t] — (caller, callee, count) call edges, descending by
    count. *)
val edges : t -> (string * string * int) list

(** [report ?top ?title t] — ASCII "top functions" table plus the hottest
    call edges. *)
val report : ?top:int -> ?title:string -> t -> string

(** [publish t ~prefix metrics] — counters ([<prefix>_cycles_total],
    [_insns_total], [_icache_misses_total], [_calls_total]) and a
    per-function-cycles histogram into a registry. [prefix] is sanitized
    to a valid metric name. *)
val publish : t -> prefix:string -> Metrics.t -> unit
