(** One observability context: a metrics registry, an event timeline, and
    the profilers collected along the way.

    This is the value the [?obs] optional arguments accept
    ({!R2c_harness.Measure.run}, [Pool.create]/[Pool.run]); a harness
    creates one, threads it through, and reads everything back at the
    end. When no sink is attached anywhere, every hook is a no-op. *)

type t = {
  metrics : Metrics.t;
  events : Events.t;
  mutable profiles : (string * Profile.t) list;  (** label → profiler, in
                                                     attachment order *)
}

(** [create ?limit ()] — fresh registry and timeline ([limit] bounds the
    timeline, default 200k events). *)
val create : ?limit:int -> unit -> t

(** [add_profile t label p] — record a profiler under [label] (appended;
    duplicate labels keep both, {!profile} returns the first). *)
val add_profile : t -> string -> Profile.t -> unit

val profile : t -> string -> Profile.t option

(** [tee observers] — one {!R2c_machine.Cpu.observer} that fires every
    observer in [observers], in order, with the same step record.

    {!R2c_machine.Cpu.set_observer} holds a single hook, so attaching a
    second observer used to silently clobber the first; [tee] is the
    fan-out that lets a workload recorder, a {!Profile}, and a
    [Trace.attach] post-mortem ring ride the same CPU. [tee []] is the
    no-op observer; [tee [o]] is [o] itself (no wrapper cost). *)
val tee : R2c_machine.Cpu.observer list -> R2c_machine.Cpu.observer
