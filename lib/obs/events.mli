(** Span-based event timelines, stamped in simulated-cycle time.

    The worker pool (and any other component) records request lifecycles,
    crashes, detections, escalations and respawns as spans and instants;
    the timeline exports as Chrome [trace_event] JSON (load it in
    [chrome://tracing] / Perfetto) and as JSONL structured logs.

    Timestamps and durations are simulated cycles; the Chrome export
    writes them into the [ts]/[dur] microsecond fields unscaled — the
    shape, not the wall-clock unit, is the point. Thread ids: 0 is the
    dispatcher/supervisor, worker [w] is thread [w + 1]. The timeline is
    bounded: past [limit] events, new ones are counted but dropped. *)

type phase = Complete of int  (** duration in cycles *) | Instant

type event = {
  name : string;
  cat : string;
  ts : int;  (** simulated-cycle timestamp *)
  tid : int;
  ph : phase;
  args : (string * string) list;
}

type t

(** [create ?limit ()] — default limit 200_000 events. *)
val create : ?limit:int -> unit -> t

(** [complete t ~name ~ts ~dur] — a span ([ph = "X"]). *)
val complete :
  ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  t -> name:string -> ts:int -> dur:int -> unit

(** [instant t ~name ~ts] — a point event ([ph = "i"]). *)
val instant :
  ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  t -> name:string -> ts:int -> unit

(** [events t] — oldest first. *)
val events : t -> event list

(** [count ?cat t] — number of recorded events, optionally only those in
    a category. *)
val count : ?cat:string -> t -> int

(** [dropped t] — events discarded past the limit. *)
val dropped : t -> int

(** [to_chrome t] — a Chrome [trace_event] document:
    [{"traceEvents": [...], ...}]. *)
val to_chrome : t -> string

(** [to_jsonl t] — one JSON object per line, oldest first. *)
val to_jsonl : t -> string
