open R2c_machine

type row = {
  name : string;
  cycles : float;
  insns : int;
  misses : int;
  calls : int;
  callsite_cycles : float;
  prologue_cycles : float;
  icache_cycles : float;
}

type acc = {
  a_name : string;
  mutable a_cycles : float;
  mutable a_insns : int;
  mutable a_misses : int;
  mutable a_calls : int;
  mutable a_callsite : float;
  mutable a_prologue : float;
  mutable a_icache : float;
}

type t = {
  img : Image.t;
  cost : Cost.profile;
  (* Compiled functions, ascending by entry: (entry, end, prologue end). *)
  entries : (int * int * int) array;
  accs : acc array;  (* one per compiled function, same order as [entries] *)
  by_name : (string, acc) Hashtbl.t;  (* pseudo-functions: builtins, unknown *)
  mutable order : acc list;  (* registration order of pseudo accs, newest first *)
  edges : (string * string, int ref) Hashtbl.t;
}

let fresh_acc name =
  {
    a_name = name;
    a_cycles = 0.0;
    a_insns = 0;
    a_misses = 0;
    a_calls = 0;
    a_callsite = 0.0;
    a_prologue = 0.0;
    a_icache = 0.0;
  }

let create ~profile (img : Image.t) =
  let funcs =
    List.sort (fun (a : Image.func_info) b -> compare a.entry b.entry) img.Image.funcs
  in
  let entries =
    Array.of_list
      (List.map
         (fun (f : Image.func_info) ->
           let prologue_end =
             match Hashtbl.find_opt img.Image.symbols (f.fname ^ ".Lprolog") with
             | Some a when a > f.entry && a <= f.entry + f.code_len -> a
             | Some _ | None -> f.entry
           in
           (f.entry, f.entry + f.code_len, prologue_end))
         funcs)
  in
  let accs =
    Array.of_list (List.map (fun (f : Image.func_info) -> fresh_acc f.fname) funcs)
  in
  {
    img;
    cost = profile;
    entries;
    accs;
    by_name = Hashtbl.create 16;
    order = [];
    edges = Hashtbl.create 64;
  }

(* Largest entry <= rip with rip inside the body, by binary search. *)
let func_index t rip =
  let n = Array.length t.entries in
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let entry, fin, _ = t.entries.(mid) in
      if rip < entry then go lo (mid - 1)
      else if rip >= fin then go (mid + 1) hi
      else Some mid
  in
  go 0 (n - 1)

let pseudo t name =
  match Hashtbl.find_opt t.by_name name with
  | Some a -> a
  | None ->
      let a = fresh_acc name in
      Hashtbl.replace t.by_name name a;
      t.order <- a :: t.order;
      a

let acc_at t rip =
  match func_index t rip with
  | Some i -> (Some i, t.accs.(i))
  | None -> (
      ( None,
        match Hashtbl.find_opt t.img.Image.builtin_addrs rip with
        | Some name -> pseudo t ("<" ^ name ^ ">")
        | None -> pseudo t "<unknown>" ))

(* The BTRA call-site instrumentation shapes (Figures 3/4) plus the
   call-site NOPs of Section 4.3. Plain register pushes (stack arguments)
   and the call itself are ordinary execution — present in the baseline
   too. *)
let is_callsite_insn = function
  | Insn.Push (Insn.Imm _) -> true
  | Insn.Vload _ | Insn.Vstore _ | Insn.Vload128 _ | Insn.Vstore128 _
  | Insn.Vload512 _ | Insn.Vstore512 _ | Insn.Vzeroupper -> true
  | Insn.Nop _ -> true
  | _ -> false

let record_edge t caller callee =
  let key = (caller, callee) in
  match Hashtbl.find_opt t.edges key with
  | Some r -> incr r
  | None -> Hashtbl.replace t.edges key (ref 1)

let name_at t rip =
  match func_index t rip with
  | Some i -> t.accs.(i).a_name
  | None -> (
      match Hashtbl.find_opt t.img.Image.builtin_addrs rip with
      | Some name -> "<" ^ name ^ ">"
      | None -> "<unknown>")

let attach ?(tee = false) t cpu =
  let prev = if tee then cpu.Cpu.observer else None in
  let compose self =
    match prev with
    | None -> self
    | Some p ->
        fun ~rip ~cycles ~misses ~called ->
          p ~rip ~cycles ~misses ~called;
          self ~rip ~cycles ~misses ~called
  in
  Cpu.set_observer cpu
    (Some
       (compose
       (fun ~rip ~cycles ~misses ~called ->
         let idx, a = acc_at t rip in
         let icache_c = float_of_int misses *. t.cost.Cost.icache_miss_penalty in
         let body = cycles -. icache_c in
         a.a_cycles <- a.a_cycles +. cycles;
         a.a_insns <- a.a_insns + 1;
         a.a_misses <- a.a_misses + misses;
         a.a_icache <- a.a_icache +. icache_c;
         (let in_prologue =
            match idx with
            | Some i ->
                let entry, _, prologue_end = t.entries.(i) in
                rip >= entry && rip < prologue_end
            | None -> false
          in
          if in_prologue then a.a_prologue <- a.a_prologue +. body
          else
            match Image.code_at t.img rip with
            | Some (insn, _) when is_callsite_insn insn ->
                a.a_callsite <- a.a_callsite +. body
            | Some _ | None -> ());
         if called then begin
           let callee_rip = cpu.Cpu.rip in
           let _, callee = acc_at t callee_rip in
           callee.a_calls <- callee.a_calls + 1;
           record_edge t a.a_name (name_at t callee_rip)
         end)))

let detach cpu = Cpu.set_observer cpu None

let row_of (a : acc) =
  {
    name = a.a_name;
    cycles = a.a_cycles;
    insns = a.a_insns;
    misses = a.a_misses;
    calls = a.a_calls;
    callsite_cycles = a.a_callsite;
    prologue_cycles = a.a_prologue;
    icache_cycles = a.a_icache;
  }

let all_accs t = Array.to_list t.accs @ List.rev t.order

let rows t =
  all_accs t
  |> List.filter (fun a -> a.a_insns > 0)
  |> List.map row_of
  |> List.sort (fun a b -> compare b.cycles a.cycles)

let total t =
  List.fold_left
    (fun acc (r : row) ->
      {
        acc with
        cycles = acc.cycles +. r.cycles;
        insns = acc.insns + r.insns;
        misses = acc.misses + r.misses;
        calls = acc.calls + r.calls;
        callsite_cycles = acc.callsite_cycles +. r.callsite_cycles;
        prologue_cycles = acc.prologue_cycles +. r.prologue_cycles;
        icache_cycles = acc.icache_cycles +. r.icache_cycles;
      })
    {
      name = "total";
      cycles = 0.0;
      insns = 0;
      misses = 0;
      calls = 0;
      callsite_cycles = 0.0;
      prologue_cycles = 0.0;
      icache_cycles = 0.0;
    }
    (rows t)

let edges t =
  Hashtbl.fold (fun (caller, callee) n acc -> (caller, callee, !n) :: acc) t.edges []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let report ?(top = 15) ?(title = "top functions") t =
  let buf = Buffer.create 1024 in
  let tot = total t in
  let rs = rows t in
  Buffer.add_string buf
    (Printf.sprintf "== %s (%d functions, %.0f cycles, %d insns, %d misses) ==\n" title
       (List.length rs) tot.cycles tot.insns tot.misses);
  Buffer.add_string buf
    (Printf.sprintf "%-28s %12s %6s %10s %8s %6s %10s %10s %10s\n" "function" "cycles"
       "cyc%" "insns" "misses" "calls" "callsite" "prologue" "icache");
  let shown = List.filteri (fun i _ -> i < top) rs in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %12.0f %5.1f%% %10d %8d %6d %10.0f %10.0f %10.0f\n" r.name
           r.cycles
           (if tot.cycles > 0.0 then 100.0 *. r.cycles /. tot.cycles else 0.0)
           r.insns r.misses r.calls r.callsite_cycles r.prologue_cycles r.icache_cycles))
    shown;
  let rest = List.filteri (fun i _ -> i >= top) rs in
  if rest <> [] then begin
    let rc = List.fold_left (fun a r -> a +. r.cycles) 0.0 rest in
    Buffer.add_string buf
      (Printf.sprintf "%-28s %12.0f %5.1f%%  (%d more)\n" "..." rc
         (if tot.cycles > 0.0 then 100.0 *. rc /. tot.cycles else 0.0)
         (List.length rest))
  end;
  let es = edges t in
  if es <> [] then begin
    Buffer.add_string buf "hot call edges:\n";
    List.iteri
      (fun i (caller, callee, n) ->
        if i < top then
          Buffer.add_string buf (Printf.sprintf "  %-26s -> %-26s %8d\n" caller callee n))
      es
  end;
  Buffer.contents buf

let sanitize_name s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    s

let publish t ~prefix metrics =
  let p = sanitize_name prefix in
  let tot = total t in
  let c name help v =
    Metrics.set_counter (Metrics.counter ~help metrics (p ^ name)) v
  in
  c "_cycles_total" "cycles attributed by the profiler" (int_of_float tot.cycles);
  c "_insns_total" "instructions retired" tot.insns;
  c "_icache_misses_total" "icache misses" tot.misses;
  c "_calls_total" "call entries" tot.calls;
  let h =
    Metrics.histogram ~help:"per-function cycle totals" metrics (p ^ "_function_cycles")
  in
  List.iter (fun (r : row) -> Metrics.observe h (int_of_float r.cycles)) (rows t)
