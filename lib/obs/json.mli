(** Minimal JSON: a value type, a compact printer, and a validating
    recursive-descent parser.

    The observability layer emits Chrome [trace_event] files, JSONL logs
    and metric dumps; CI re-reads what it wrote and fails the build if it
    does not parse. No external JSON dependency is available in the image,
    so both directions live here. Numbers are printed with enough
    precision to round-trip simulated-cycle counts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [to_string v] — compact (single-line) rendering with full string
    escaping. *)
val to_string : t -> string

(** [escape s] — the JSON string literal for [s], including the quotes. *)
val escape : string -> string

(** [parse ?max_depth s] — parse one JSON value; trailing non-whitespace
    is an error. Errors carry a byte offset. Containers may nest at most
    [max_depth] (default 512) levels deep — past that the parser reports
    ["nesting too deep"] instead of overflowing the OCaml stack on
    adversarial input. *)
val parse : ?max_depth:int -> string -> (t, string) result

(** [member key v] — field lookup on an [Obj]; [None] otherwise. *)
val member : string -> t -> t option
