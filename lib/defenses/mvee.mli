(** Multi-Variant Execution (Section 7.3).

    "MVEEs and diversification defenses like R2C naturally complement each
    other. Considering that R2C diversifies along multiple dimensions, an
    MVEE would detect data corruption or leakage in one of the variants
    with high probability."

    [run] feeds the same input stream to N differently-seeded variants of
    a program and runs them in lockstep to completion, comparing the
    observable behaviour (outcome, printed output, privileged-call log).
    Any divergence is the detection signal: an exploit tailored to one
    variant's layout behaves differently on its siblings. *)

type verdict =
  | Consistent of R2c_machine.Process.outcome
      (** every variant behaved identically *)
  | Divergence of { variant : int; detail : string }
      (** variant [variant] (0-based) differs from variant 0 *)

(** A lockstep execution: the verdict plus the total cycles burned across
    all variants — what the supervision layer charges a request served
    under MVEE escalation. *)
type lockstep = { verdict : verdict; cycles : float }

(** [run_images ~images ~inputs] — lockstep over prebuilt variant images;
    the reactive-escalation entry point (variants are built once when the
    supervisor escalates, then reused per request). Stops at the first
    divergence. *)
val run_images :
  images:R2c_machine.Image.t list -> inputs:string list -> lockstep

(** [run ~build ~seeds ~inputs] — [build seed] produces one variant's
    image. *)
val run :
  build:(seed:int -> R2c_machine.Image.t) -> seeds:int list -> inputs:string list -> verdict

val verdict_to_string : verdict -> string
