open R2c_machine

type verdict =
  | Consistent of Process.outcome
  | Divergence of { variant : int; detail : string }

type lockstep = { verdict : verdict; cycles : float }

type observation = {
  outcome : Process.outcome;
  output : string;
  sensitive : (int * int) list;
  cycles : float;
}

let observe img inputs =
  let p = Process.start img in
  List.iter (Cpu.push_input p.Process.cpu) inputs;
  let outcome = Process.run p in
  {
    outcome;
    output = Process.output p;
    sensitive = Process.sensitive_log p;
    cycles = Process.cycles p;
  }

(* Outcomes compare structurally except crash *addresses*, which differ
   across variants by construction: only the fault kind is monitored. *)
let outcome_kind = function
  | Process.Exited n -> Printf.sprintf "exit(%d)" n
  | Process.Crashed f -> (
      match f with
      | Fault.Segv _ -> "segv"
      | Fault.Guard_page _ -> "guard-page"
      | Fault.Booby_trap _ -> "booby-trap"
      | Fault.Misaligned_stack _ -> "misaligned"
      | Fault.Invalid_opcode _ -> "sigill"
      | Fault.Division_by_zero _ -> "sigfpe"
      | Fault.Cfi_violation _ -> "cfi"
      | Fault.Injected _ -> "injected")
  | Process.Timeout -> "timeout"

let run_images ~images ~inputs =
  match images with
  | [] -> invalid_arg "Mvee.run_images: no variants"
  | first :: rest ->
      let reference = observe first inputs in
      let cycles = ref reference.cycles in
      let rec check i = function
        | [] -> Consistent reference.outcome
        | img :: tl ->
            let v = observe img inputs in
            cycles := !cycles +. v.cycles;
            if outcome_kind v.outcome <> outcome_kind reference.outcome then
              Divergence
                {
                  variant = i;
                  detail =
                    Printf.sprintf "outcome %s vs %s" (outcome_kind v.outcome)
                      (outcome_kind reference.outcome);
                }
            else if v.output <> reference.output then
              Divergence { variant = i; detail = "output differs" }
            else if v.sensitive <> reference.sensitive then
              Divergence { variant = i; detail = "privileged-call log differs" }
            else check (i + 1) tl
      in
      let verdict = check 1 rest in
      { verdict; cycles = !cycles }

let run ~build ~seeds ~inputs =
  (run_images ~images:(List.map (fun seed -> build ~seed) seeds) ~inputs).verdict

let verdict_to_string = function
  | Consistent o -> "consistent (" ^ Process.outcome_to_string o ^ ")"
  | Divergence { variant; detail } ->
      Printf.sprintf "DIVERGENCE at variant %d: %s" variant detail
