(* Three-tier comparison on the full SPEC-like suite under full R2C:
   reference dispatch vs predecoded fast path vs tier-3 template JIT
   (steady-state, warm shared code cache). Asserts the three-way
   bit-identicality contract per workload and gates tier 3 at >= 5x over
   the reference tier. [--json FILE] writes the one-line report
   (deterministic fields first, volatile timing tail last); exit is
   nonzero on a contract breach or a missed speedup gate. *)
module JB = R2c_harness.Jitbench

let () =
  let json_out = ref None in
  let args = Array.to_list Sys.argv in
  (match args with
  | _ :: "--json" :: file :: _ -> json_out := Some file
  | _ :: [] -> ()
  | _ :: rest when rest <> [] && List.hd rest <> "--json" ->
      prerr_endline "usage: tiercmp [--json FILE]";
      exit 2
  | _ -> ());
  let r, t = JB.run () in
  JB.print (r, t);
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (R2c_obs.Json.to_string (JB.json ~jobs:1 ~timing:t r));
      output_char oc '\n';
      close_out oc);
  match JB.gate ~timing:t r with
  | [] -> ()
  | fails ->
      List.iter (Printf.eprintf "tiercmp: FAIL %s\n") fails;
      exit 1
