(* Times the reference (hash-probing) dispatch against the predecoded
   fast path on the full SPEC-like suite under full R2C, asserting
   bit-identical results and counters along the way. The printed ratio is
   the Layer-1 interpreter speedup; the asserts are the two-tier
   equivalence contract checked at workload scale. *)
open R2c_machine
module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Spec = R2c_workloads.Spec

let () =
  let full = Dconfig.full () in
  let time f =
    let t = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t)
  in
  let total_ref = ref 0.0 and total_fast = ref 0.0 in
  List.iter
    (fun (b : Spec.benchmark) ->
      let img = Pipeline.compile ~seed:3 full b.Spec.program in
      let load () = Loader.load ~strict_align:false ~profile:Cost.epyc_rome img in
      (* warm *)
      ignore (Cpu.run (load ()) ~fuel:50_000_000);
      let c1 = load () in
      let r1, t_ref = time (fun () -> Cpu.run_reference c1 ~fuel:50_000_000) in
      let c2 = load () in
      let r2, t_fast = time (fun () -> Cpu.run c2 ~fuel:50_000_000) in
      assert (r1 = r2 && c1.Cpu.insns = c2.Cpu.insns && c1.Cpu.cycles = c2.Cpu.cycles);
      total_ref := !total_ref +. t_ref;
      total_fast := !total_fast +. t_fast;
      Printf.printf "%-12s ref %7.1fms fast %7.1fms  %.2fx  (%d insns)\n%!"
        b.Spec.name (t_ref *. 1000.) (t_fast *. 1000.) (t_ref /. t_fast) c2.Cpu.insns)
    (Spec.all ());
  Printf.printf "TOTAL ref %.1fms fast %.1fms  %.2fx\n" (!total_ref *. 1000.)
    (!total_fast *. 1000.) (!total_ref /. !total_fast)
