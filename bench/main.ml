(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed side by side with the paper's numbers) and registers
   one Bechamel micro-benchmark per artifact measuring the cost of its
   regeneration kernel.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table1 figure6  -- selected experiments
     bench/main.exe bechamel        -- only the Bechamel timings *)

module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Spec = R2c_workloads.Spec
module Measure = R2c_harness.Measure
open R2c_machine

(* --- the traffic-derived workload class: recorded .r2cr benchmarks.
   Each file is a reduced capture of a real serving/compute run; replaying
   one recompiles the embedded program under its recorded diversification
   coordinates and checks the profile reproduces within 1%. --- *)

let replay_corpus_dir () =
  if Sys.file_exists "bench/replays" then "bench/replays"
  else if Sys.file_exists "replays" then "replays"
  else "bench/replays"

let replay_corpus () =
  let module RT = R2c_replay.Trace in
  RT.files ~dir:(replay_corpus_dir ())

let run_replay_corpus () =
  let module RT = R2c_replay.Trace in
  let module RP = R2c_replay.Replayer in
  match replay_corpus () with
  | [] ->
      Printf.printf
        "replay: no .r2cr corpus under %s (generate with `experiments replay \
         --corpus-out %s`)\n"
        (replay_corpus_dir ()) (replay_corpus_dir ())
  | files ->
      List.iter
        (fun path ->
          let name = Filename.basename path in
          match RT.load path with
          | Error e -> Printf.printf "  %-20s LOAD ERROR: %s\n" name e
          | Ok t -> (
              match RP.check t with
              | Error e -> Printf.printf "  %-20s REPLAY ERROR: %s\n" name e
              | Ok v ->
                  Printf.printf
                    "  %-20s %10.0f cycles, %8d insns, %5d icache misses, %4d \
                     request(s) — %s\n"
                    name v.RP.result.RP.r_cycles v.RP.result.RP.r_insns
                    v.RP.result.RP.r_misses
                    (List.length (RT.feeds t))
                    (if v.RP.failures = [] then "fidelity pass"
                     else "FIDELITY FAIL: " ^ String.concat "; " v.RP.failures)))
        files

let experiments : (string * string * (unit -> unit)) list =
  [
    ( "table1",
      "Table 1: component overheads (Push/AVX/BTDP/Prolog/Layout/OIA)",
      fun () -> R2c_harness.Table1.(print (run ())) );
    ( "table2",
      "Table 2: median call frequencies",
      fun () -> R2c_harness.Table2.(print (run ())) );
    ( "table3",
      "Table 3: defense comparison matrix",
      fun () -> R2c_harness.Table3.(print (run ())) );
    ( "figure6",
      "Figure 6: full R2C overhead on four machines",
      fun () -> R2c_harness.Figure6.(print (run ())) );
    ( "web",
      "Section 6.2.4: webserver throughput",
      fun () -> R2c_harness.Webbench.(print (run ())) );
    ( "memory",
      "Section 6.2.5: memory overhead",
      fun () -> R2c_harness.Membench.(print (run ())) );
    ( "security",
      "Section 7.2: probabilistic security, AOCR and Blind ROP batteries",
      fun () -> R2c_harness.Secbench.(print (run ())) );
    ( "scale",
      "Section 6.3: compiling large programs",
      fun () -> R2c_harness.Scale.(print (run ())) );
    ( "ablation",
      "Design-choice ablations (BTRA count, setups, BTDP density, pools)",
      fun () -> R2c_harness.Ablation.print_all () );
    ( "extensions",
      "Section 7.1/7.3 extensions: race window, RA zeroing vs checks, MVEE",
      fun () -> Extension_demos.run () );
    ( "fleet",
      "Sharded fleet under chaos with epoch-based live rerandomization (small campaign)",
      fun () ->
        R2c_harness.Fleetbench.(
          print (run ~seed:11 ~requests:20_000 ~epoch_cycles:4_000_000 ())) );
    ( "replay",
      "Traffic-derived workload class: recorded .r2cr traces replayed under \
       profile-fidelity gates",
      run_replay_corpus );
    ( "rerand",
      "Incremental rerandomization: per-function cache warm/rotate/edit with \
       byte-identity spot checks (small image)",
      fun () ->
        R2c_harness.Rerandbench.(
          print (run ~funcs:2_000 ~rotations:4 ~checked:1 ())) );
  ]

(* --- Bechamel: one Test.make per artifact, timing the regeneration
   kernel at a small size. --- *)

let bechamel_tests () =
  let module M = R2c_harness.Measure in
  let open Bechamel in
  let full = Dconfig.full () in
  let perl = (Spec.find "perlbench").Spec.program in
  let baseline_img = R2c_compiler.Driver.compile perl in
  let r2c_img = Pipeline.compile ~seed:3 full perl in
  let vuln = R2c_defenses.Defenses.build_vulnapp R2c_defenses.Defenses.r2c ~seed:4 in
  let vuln_ref =
    R2c_attacks.Reference.measure
      (R2c_defenses.Defenses.build_vulnapp R2c_defenses.Defenses.r2c ~seed:1004)
  in
  let web = R2c_workloads.Webserver.server `Nginx ~requests:100 in
  let web_img = R2c_compiler.Driver.compile web in
  let gen = R2c_workloads.Genprog.generate ~seed:1 ~funcs:200 in
  Test.make_grouped ~name:"r2c"
    [
      Test.make ~name:"table1.run-baseline"
        (Staged.stage (fun () -> ignore (M.run baseline_img)));
      Test.make ~name:"table1.run-full-r2c"
        (Staged.stage (fun () -> ignore (M.run r2c_img)));
      Test.make ~name:"table2.call-count"
        (Staged.stage (fun () -> ignore (M.run baseline_img).M.calls));
      Test.make ~name:"table3.aocr-attack"
        (Staged.stage (fun () ->
             let target =
               R2c_attacks.Oracle.attach ~break_sym:R2c_workloads.Vulnapp.break_symbol
                 vuln
             in
             ignore
               (R2c_attacks.Aocr.run
                  ~rng:(R2c_util.Rng.create 7)
                  ~reference:vuln_ref ~target ())));
      Test.make ~name:"figure6.compile-full-r2c"
        (Staged.stage (fun () -> ignore (Pipeline.compile ~seed:5 full perl)));
      Test.make ~name:"web.serve-requests"
        (Staged.stage (fun () -> ignore (M.run web_img)));
      Test.make ~name:"memory.maxrss"
        (Staged.stage (fun () ->
             let p = Process.start baseline_img in
             ignore (Process.run p);
             ignore (Process.maxrss_bytes p)));
      Test.make ~name:"security.frame-census"
        (Staged.stage (fun () ->
             let target =
               R2c_attacks.Oracle.attach ~break_sym:R2c_workloads.Vulnapp.break_symbol
                 vuln
             in
             match R2c_attacks.Oracle.to_break target with
             | `Break -> ignore (R2c_attacks.Oracle.leak_stack target ~words:256)
             | `Done _ -> ()));
      Test.make ~name:"scale.compile-200-funcs"
        (Staged.stage (fun () -> ignore (Pipeline.compile ~seed:2 full gen)));
    ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  print_endline "\n== Bechamel: regeneration-kernel timings ==";
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-36s %14.0f ns/run (%s)\n" test est name
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" test)
        tbl)
    results

(* --- `--json FILE`: machine-readable per-workload numbers (steady
   cycles, overhead, insns, icache, call depth) for baseline vs full R2C,
   emitted with the observability layer's JSON printer. --- *)

let emit_json ?(timings = []) path =
  let module Json = R2c_obs.Json in
  let full = Dconfig.full () in
  let seed = 3 in
  let per_workload =
    List.map
      (fun (b : Spec.benchmark) ->
        let base = Measure.run (R2c_compiler.Driver.compile b.Spec.program) in
        let r2c = Measure.run (Pipeline.compile ~seed full b.Spec.program) in
        let side (s : Measure.stats) =
          Json.Obj
            [
              ("steady_cycles", Json.Float s.Measure.steady_cycles);
              ("total_cycles", Json.Float s.Measure.total_cycles);
              ("insns", Json.Int s.Measure.insns);
              ("calls", Json.Int s.Measure.calls);
              ("icache_accesses", Json.Int s.Measure.icache_accesses);
              ("icache_misses", Json.Int s.Measure.icache_misses);
              ("peak_depth", Json.Int s.Measure.peak_depth);
              ("maxrss_bytes", Json.Int s.Measure.maxrss_bytes);
            ]
        in
        let overhead = r2c.Measure.steady_cycles /. base.Measure.steady_cycles in
        ( b.Spec.name,
          overhead,
          Json.Obj
            [
              ("baseline", side base);
              ("full", side r2c);
              ("overhead", Json.Float overhead);
            ] ))
      (Spec.all ())
  in
  let overheads = List.map (fun (_, o, _) -> o) per_workload in
  (* The replay corpus rides along as a workload class of its own: each
     .r2cr re-measures under its recorded diversification coordinates. *)
  let replays =
    List.filter_map
      (fun path ->
        let module RP = R2c_replay.Replayer in
        match R2c_replay.Trace.load path with
        | Error _ -> None
        | Ok t -> (
            match RP.check t with
            | Error _ -> None
            | Ok v ->
                Some
                  ( Filename.remove_extension (Filename.basename path),
                    Json.Obj
                      [
                        ("cycles", Json.Float v.RP.result.RP.r_cycles);
                        ("insns", Json.Int v.RP.result.RP.r_insns);
                        ("icache_misses", Json.Int v.RP.result.RP.r_misses);
                        ( "fidelity",
                          Json.Str (if v.RP.failures = [] then "pass" else "fail")
                        );
                      ] )))
      (replay_corpus ())
  in
  let doc =
    Json.Obj
      [
        ("config", Json.Str "full");
        ("seed", Json.Int seed);
        ("jobs", Json.Int (R2c_util.Parallel.default_jobs ()));
        ( "workloads",
          Json.Obj (List.map (fun (n, _, j) -> (n, j)) per_workload) );
        ("replays", Json.Obj replays);
        ( "summary",
          Json.Obj
            [
              ("geomean_overhead", Json.Float (R2c_util.Stats.geomean overheads));
              ("max_overhead", Json.Float (R2c_util.Stats.maximum overheads));
            ] );
        (* Wall-clock per experiment regenerated in this invocation: the
           perf-trajectory signal BENCH_*.json tracks across PRs. *)
        ( "experiment_wall_ms",
          Json.Obj (List.map (fun (n, ms) -> (n, Json.Float ms)) timings) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d workloads)\n%!" path (List.length per_workload)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let t0 = Unix.gettimeofday () in
  let rec split_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | x :: rest -> split_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = split_json [] args in
  let selected =
    match args with
    | [] when json_path <> None -> []  (* --json alone: just the workload emission *)
    | [] -> List.map (fun (n, _, _) -> n) experiments @ [ "bechamel" ]
    | _ -> args
  in
  let timings = ref [] in
  List.iter
    (fun name ->
      if name = "bechamel" then run_bechamel ()
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, desc, f) ->
            Printf.printf "\n######## %s ########\n%!" desc;
            let t = Unix.gettimeofday () in
            f ();
            let seconds = Unix.gettimeofday () -. t in
            timings := (name, seconds *. 1000.0) :: !timings;
            Printf.printf "[%s completed in %.1fs]\n%!" name seconds
        | None ->
            Printf.eprintf "unknown experiment %s (available: %s, bechamel)\n" name
              (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))
    selected;
  (match json_path with
  | Some path -> emit_json ~timings:(List.rev !timings) path
  | None -> ());
  Printf.printf "\nTotal: %.1fs\n" (Unix.gettimeofday () -. t0)
