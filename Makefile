# Convenience targets around dune. `make check` is the tier-1 gate CI runs.

.PHONY: all build test check clean examples bench audit

all: build

build:
	dune build

test:
	dune runtest

# Static audit: IR validation over every workload, invariant lint +
# self-check + cross-variant gadget surface over built images. Exits
# nonzero on any finding.
audit:
	dune exec bin/experiments.exe -- audit
	dune exec bin/r2cc.exe -- examples/triangle.r2c -c full -s 7 --lint

check: build test audit

examples:
	dune build examples

bench:
	dune exec bench/main.exe

clean:
	dune clean
