# Convenience targets around dune. `make check` is the tier-1 gate CI runs.

.PHONY: all build test check clean examples bench

all: build

build:
	dune build

test:
	dune runtest

check: build test

examples:
	dune build examples

bench:
	dune exec bench/main.exe

clean:
	dune clean
