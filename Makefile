# Convenience targets around dune. `make check` is the tier-1 gate CI runs.

.PHONY: all build test check clean examples bench bench-json audit profile fuzz fleet tval replay rerand jit

all: build

build:
	dune build

test:
	dune runtest

# Static audit: IR validation over every workload, invariant lint +
# self-check + cross-variant gadget surface over built images. Exits
# nonzero on any finding.
audit:
	dune exec bin/experiments.exe -- audit
	dune exec bin/r2cc.exe -- examples/triangle.r2c -c full -s 7 --lint

# Profiling smoke: per-function cycle attribution must sum to the CPU's
# own counters, and the exported pool timeline must re-parse as JSON with
# one request span per submit. Exits nonzero on any violation.
profile:
	dune exec bin/experiments.exe -- profile mcf --trace /tmp/r2c_profile_trace.json

# Differential fuzzing smoke: pinned seed, 100 generated programs, the
# full config matrix per program, plus the planted-miscompile self-check.
# Exits nonzero on a surviving divergence or a failed self-check; shrunk
# reproducers land in test/corpus/ for replay.
fuzz:
	dune exec bin/experiments.exe -- fuzz --seed 11 --count 100 --self-check

# Fleet-scale chaos SLO: 100k simulated requests over 4 shards with
# epoch-based live rerandomization under fault injection. Exits nonzero
# unless availability >= 99.9%, >= 3 rotations completed, and rotation
# caused zero drops. The one-line report lands in fleet_out.json (CI
# archives it next to bench_out.json).
fleet:
	dune exec bin/experiments.exe -- fleet --seed 11 --json-out fleet_out.json

# Static translation validation: every workload x every diversification
# config, symbolically re-executed against its IR semantics, plus the
# IR rule pack and the planted-miscompile catch checks. Exits nonzero on
# any finding, uncaught plant, or corpus replay failure. The one-line
# report lands in tval_out.json (CI archives it next to fleet_out.json).
tval:
	dune exec bin/experiments.exe -- tval --seed 3 --json-out tval_out.json

# Record-reduce-replay: capture the Fleetapp + Genprog workloads at the
# builtin boundary, delta-debug the traces (>= 30% smaller), and gate on
# replay reproducing the recorded cycles/insns/icache profile within 1%.
# Exits nonzero on a fidelity breach or a missed reduction floor. The
# reduced corpus refreshes bench/replays/ and the one-line report lands
# in replay_out.json (CI archives both).
replay:
	dune exec bin/experiments.exe -- replay --corpus-out bench/replays --json-out replay_out.json

# Incremental rerandomization gate: warm the per-function codegen cache
# on a 10k-function Genprog image, rotate the link seed, and require
# every rebuild byte-identical to a cold compile, rotations recompiling
# nothing, a one-function edit recompiling exactly that function, and
# the rebuild beating the cold compile by >= 10x. Exits nonzero on any
# breach. The one-line report lands in rerand_out.json (CI archives it).
rerand:
	dune exec bin/experiments.exe -- rerand --json-out rerand_out.json

# Tier-3 JIT gate: the three-tier comparison on the SPEC-like suite.
# Exits nonzero unless reference dispatch, fast interpreter and tier-3
# template JIT are bit-identical (cycles as IEEE bits, insns, icache,
# faults, output) on every workload, OSR entries actually occur, and
# steady-state tier 3 beats the reference tier by >= 5x. The one-line
# report lands in jit_out.json (CI archives it).
jit:
	dune exec bin/experiments.exe -- jit --json-out jit_out.json

check: build test audit profile fuzz fleet tval replay rerand jit

examples:
	dune build examples

bench:
	dune exec bench/main.exe

# Machine-readable perf trajectory: per-workload metrics plus wall-clock
# ms for the table1 + figure6 regenerations, written to bench_out.json
# (CI archives it as an artifact).
bench-json:
	dune exec bench/main.exe -- --json bench_out.json table1 figure6

clean:
	dune clean
