(* Reactive recovery, end to end: the same Blind-ROP campaign is thrown at
   a worker pool under three restart policies, and the supervisor's
   recovery story decides how it ends.

   - same-image: every respawn reuses the parent's layout (the
     nginx/Apache model Blind ROP was built for). The attacker reads the
     stack byte by byte, finds the return address, sweeps gadgets, and
     walks away with a sensitive(marker) call — while availability bleeds.
   - rerandomize: every crash buys a fresh layout. Learned bytes rot, the
     attacker's revalidation probes start dying, and the campaign aborts.
   - reactive->rerandomize: cheap same-image respawns until booby-trap
     detections cross the threshold, then one fleet-wide re-randomization.
     The paper's reactive camouflage as a supervisor policy.

     dune exec examples/reactive_recovery.exe *)

module Chaos = R2c_harness.Chaos
module Policy = R2c_runtime.Policy
module Pool = R2c_runtime.Pool

let describe (r : Chaos.run_result) =
  let s = r.Chaos.stats in
  Printf.printf "=== %s ===\n" (Policy.to_string r.Chaos.policy);
  Printf.printf "  legit availability   %5.1f%%  (%d/%d served)\n"
    (100. *. r.Chaos.availability)
    r.Chaos.legit_served r.Chaos.legit_total;
  Printf.printf "  worker crashes       %d (%d flagged as detections)\n" s.Pool.crashes
    s.Pool.detections;
  Printf.printf "  restarts             %d (%d with a fresh layout)\n" s.Pool.restarts
    s.Pool.rerandomizations;
  (match Pool.mttr s with
  | Some m -> Printf.printf "  MTTR                 %.0f cycles\n" m
  | None -> ());
  (match Pool.detection_to_response s with
  | Some d -> Printf.printf "  detection->response  %d cycles\n" d
  | None -> ());
  if r.Chaos.escalated then
    Printf.printf "  ESCALATED: monitoring crossed the detection threshold\n";
  Printf.printf "  attacker: %d probes, %s\n"
    r.Chaos.probes
    (if r.Chaos.compromised then "COMPROMISED (sensitive(marker) executed)"
     else "gave up — " ^ r.Chaos.attack_note);
  print_newline ()

let () =
  let seed = 11 and legit_total = 600 in
  Printf.printf
    "Blind-ROP campaign vs a 3-worker pool (seed %d, %d legit requests)\n\n" seed
    legit_total;
  List.iter
    (fun p -> describe (Chaos.run_policy ~seed ~legit_total p))
    [
      Policy.Same_image;
      Policy.Rerandomize;
      Policy.Reactive Policy.Escalate_rerandomize;
    ]
