(* The static analysis layer, end to end: recover a CFG straight from a
   linked image, lint it against the R2C invariants the configuration
   promises, prove the linter's wiring with targeted mutations, and
   measure the gadget surface that survives across diversified variants.

     dune exec examples/static_audit.exe *)

module Cfg = R2c_analysis.Cfg
module Lint = R2c_analysis.Lint
module Gadget = R2c_analysis.Gadget
module Selfcheck = R2c_analysis.Selfcheck
module Defenses = R2c_defenses.Defenses
module Table = R2c_util.Table

let () =
  print_endline "== Static image audit ==\n";

  (* 1. CFG recovery: decode the image, split into basic blocks, follow
     direct branches and calls. Diversification is visible structurally —
     booby traps and prolog traps add functions and blocks. *)
  let img = Defenses.build_vulnapp Defenses.r2c_checked ~seed:11 in
  let cfg = Cfg.recover img in
  let s = Cfg.stats cfg in
  Printf.printf
    "CFG of an R2C-checked vulnapp (seed 11):\n\
    \  %d functions, %d basic blocks, %d branch edges,\n\
    \  %d call edges, %d indirect transfers\n\n"
    s.Cfg.n_funcs s.Cfg.n_blocks s.Cfg.n_edges s.Cfg.n_call_edges s.Cfg.n_indirect;

  (* 2. Invariant lint: the expectation vector is derived from the build
     configuration, so the linter knows which promises to hold the image
     to (XOM, checked BTRAs, booby traps, pointer hygiene). *)
  let expect = Lint.expect_of_dconfig R2c_core.Dconfig.full_checked in
  (match Lint.run ~expect img with
  | [] -> print_endline "Lint: CLEAN — every configured invariant holds.\n"
  | fs ->
      Printf.printf "Lint: %d findings\n" (List.length fs);
      List.iter (fun f -> print_endline ("  " ^ Lint.finding_to_string f)) fs;
      print_newline ());

  (* 3. Sanitizer wiring: mutate the image three ways — drop the BTRA
     post-return check, skip the mprotect seal, plant a readable code
     pointer — and confirm each trips exactly its own rule. A linter that
     passes clean images is only trustworthy if it fails broken ones. *)
  let outcomes = Selfcheck.run ~expect img in
  Table.print ~title:"Self-check: each mutation trips exactly its rule"
    ~headers:[ "mutation"; "expected"; "rules hit"; "findings"; "ok" ]
    ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right; Table.Left ]
    (List.map
       (fun (o : Selfcheck.outcome) ->
         [
           Selfcheck.mutation_to_string o.mutation;
           o.expected;
           String.concat "," o.rules_hit;
           string_of_int o.n_findings;
           (if o.ok then "yes" else "NO");
         ])
       outcomes);
  print_newline ();

  (* 4. Gadget surface across variants: scan every byte offset of four
     diversified builds. Each variant has gadgets; what matters is how
     many survive at the same text-relative offset in all of them —
     that intersection is what an attacker with one leaked copy can
     reuse against another. *)
  let seeds = [ 2; 3; 5; 7 ] in
  let scans =
    List.map (fun seed -> (seed, Gadget.scan (Defenses.build_vulnapp Defenses.r2c ~seed))) seeds
  in
  Table.print ~title:"Gadget counts per diversified variant"
    ~headers:[ "seed"; "gadgets" ]
    ~aligns:[ Table.Right; Table.Right ]
    (List.map (fun (seed, gs) -> [ string_of_int seed; string_of_int (List.length gs) ]) scans);
  let survivors = Gadget.survivors (List.map snd scans) in
  Printf.printf "\nSurvivors present in all %d variants: %d\n" (List.length seeds)
    (List.length survivors);
  print_endline
    "Diversification pays off exactly when that intersection collapses:\n\
     a gadget an attacker scouts in one variant is gone from the next."
