(* r2c-experiments: run the paper-reproduction experiments individually with
   tunable trial counts. `bench/main.exe` runs the whole battery; this tool
   is the fine-grained interface. *)

open Cmdliner

let seeds_term =
  let doc = "Compilation seeds for median-of-N runs (comma separated)." in
  Arg.(value & opt (list int) [ 3; 11; 27 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)

let table1_cmd =
  let run seeds =
    R2c_harness.Table1.(print (run ~seeds ()));
    0
  in
  Cmd.v (Cmd.info "table1" ~doc:"Component overheads (paper Table 1).")
    Term.(const run $ seeds_term)

let table2_cmd =
  let run () =
    R2c_harness.Table2.(print (run ()));
    0
  in
  Cmd.v (Cmd.info "table2" ~doc:"Call frequencies (paper Table 2).")
    Term.(const run $ const ())

(* Reproduction gate: the R2C row must stop every attack trial and the
   unprotected baseline must fall to at least one, or the reproduction has
   regressed and CI should say so. *)
let table3_gate (rows : R2c_harness.Table3.row list) =
  let row name = List.find_opt (fun (r : R2c_harness.Table3.row) -> r.defense = name) rows in
  let stopped (r : R2c_harness.Table3.row) =
    List.for_all (fun (c : R2c_harness.Table3.cell) -> c.successes = 0) r.cells
  in
  let fell (r : R2c_harness.Table3.row) =
    List.exists (fun (c : R2c_harness.Table3.cell) -> c.successes > 0) r.cells
  in
  match (row "R2C", row "unprotected") with
  | Some r2c, Some unprot when stopped r2c && fell unprot -> 0
  | _ ->
      prerr_endline "table3: reproduction check failed (R2C breached or baseline unbeaten)";
      1

let table3_cmd =
  let trials =
    Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc:"Attack trials per cell.")
  in
  let overheads =
    Arg.(value & flag & info [ "no-overhead" ] ~doc:"Skip the measured overhead column.")
  in
  let run trials no_overhead =
    let rows = R2c_harness.Table3.run ~trials ~with_overhead:(not no_overhead) () in
    R2c_harness.Table3.print rows;
    table3_gate rows
  in
  Cmd.v (Cmd.info "table3" ~doc:"Defense comparison (paper Table 3).")
    Term.(const run $ trials $ overheads)

let figure6_cmd =
  let run seeds =
    R2c_harness.Figure6.(print (run ~seeds ()));
    0
  in
  Cmd.v (Cmd.info "figure6" ~doc:"Full R2C overhead on four machines (paper Figure 6).")
    Term.(const run $ seeds_term)

let web_cmd =
  let requests =
    Arg.(value & opt int 400 & info [ "requests" ] ~docv:"N" ~doc:"Requests per run.")
  in
  let run seeds requests =
    R2c_harness.Webbench.(print (run ~seeds ~requests ()));
    0
  in
  Cmd.v (Cmd.info "web" ~doc:"Webserver throughput (Section 6.2.4).")
    Term.(const run $ seeds_term $ requests)

let memory_cmd =
  let run () =
    R2c_harness.Membench.(print (run ()));
    0
  in
  Cmd.v (Cmd.info "memory" ~doc:"Memory overhead (Section 6.2.5).")
    Term.(const run $ const ())

let security_cmd =
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials.")
  in
  let run trials =
    let r = R2c_harness.Secbench.run ~trials () in
    R2c_harness.Secbench.print r;
    if r.aocr_successes = 0 && r.brop_successes = 0 then 0
    else begin
      prerr_endline "security: reproduction check failed (an attack breached full R2C)";
      1
    end
  in
  Cmd.v (Cmd.info "security" ~doc:"Probabilistic security evaluation (Section 7.2).")
    Term.(const run $ trials)

let scale_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 500; 2000; 8000 ]
      & info [ "sizes" ] ~docv:"SIZES" ~doc:"Program sizes in functions.")
  in
  let run sizes =
    R2c_harness.Scale.(print (run ~sizes ()));
    0
  in
  Cmd.v (Cmd.info "scale" ~doc:"Compilation at scale (Section 6.3).")
    Term.(const run $ sizes)

let ablation_cmd =
  let run () =
    R2c_harness.Ablation.print_all ();
    0
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablation sweeps.") Term.(const run $ const ())

let chaos_cmd =
  let legit =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~docv:"N" ~doc:"Legitimate requests per policy run.")
  in
  let budget =
    Arg.(
      value & opt int 4000
      & info [ "probe-budget" ] ~docv:"N" ~doc:"Attacker probe budget per campaign.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Pool master seed.")
  in
  let run seed legit budget =
    let attack = { R2c_harness.Chaos.default_attack with probe_budget = budget } in
    let results = R2c_harness.Chaos.run ~seed ~legit_total:legit ~attack () in
    R2c_harness.Chaos.print results;
    R2c_harness.Chaos.(print_sweep (injection_sweep ()));
    let equiv = R2c_harness.Chaos.baseline_equivalence () in
    R2c_harness.Chaos.print_equivalence equiv;
    (* Gate: re-randomizing policies must hold against the campaign the
       same-image policy loses to, and the zero-rate injector must stay a
       bit-exact no-op. *)
    let holds =
      List.for_all
        (fun (r : R2c_harness.Chaos.run_result) ->
          match r.policy with
          | R2c_runtime.Policy.Rerandomize | R2c_runtime.Policy.Reactive _ ->
              not r.compromised
          | R2c_runtime.Policy.Same_image | R2c_runtime.Policy.Backoff _ -> true)
        results
    in
    if equiv && holds then 0
    else begin
      prerr_endline "chaos: reproduction check failed";
      1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Availability under fault injection and a Blind-ROP campaign, per restart \
          policy.")
    Term.(const run $ seed $ legit $ budget)

let audit_cmd =
  let seeds =
    Arg.(
      value
      & opt (list int) [ 2; 3; 5; 7; 11 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Variant seeds (one diversified image each).")
  in
  let run seeds =
    let a = R2c_harness.Audit.run ~seeds () in
    R2c_harness.Audit.print a;
    if R2c_harness.Audit.ok a then 0 else 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Static image audit: IR validation, invariant lint, cross-variant gadget \
          survivors, sanitizer wiring self-check.")
    Term.(const run $ seeds)

let profile_cmd =
  let workload =
    Arg.(value & pos 0 string "mcf" & info [] ~docv:"WORKLOAD" ~doc:"Benchmark name.")
  in
  let seed =
    Arg.(value & opt int 3 & info [ "seed" ] ~docv:"SEED" ~doc:"Diversification seed.")
  in
  let config =
    let configs =
      [
        ("full", `Full);
        ("full-checked", `Full_checked);
        ("btra-avx", `Btra_avx);
        ("btra-push", `Btra_push);
        ("btdp", `Btdp);
        ("prolog", `Prolog);
        ("layout", `Layout);
      ]
    in
    Arg.(
      value
      & opt (enum configs) `Full
      & info [ "config" ] ~docv:"CFG" ~doc:"R2C configuration to profile against.")
  in
  let top =
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc:"Functions shown.")
  in
  let requests =
    Arg.(
      value & opt int 60
      & info [ "requests" ] ~docv:"N" ~doc:"Requests in the pool timeline run.")
  in
  let trace =
    Arg.(
      value & opt string ""
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the pool timeline as Chrome trace_event JSON (and FILE.jsonl).")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the metrics registry exposition.")
  in
  let run workload seed config top requests trace metrics =
    let cfg_name, cfg =
      match config with
      | `Full -> ("full", R2c_core.Dconfig.full ())
      | `Full_checked -> ("full-checked", R2c_core.Dconfig.full_checked)
      | `Btra_avx -> ("btra-avx", R2c_core.Dconfig.btra_avx_only)
      | `Btra_push -> ("btra-push", R2c_core.Dconfig.btra_push_only)
      | `Btdp -> ("btdp", R2c_core.Dconfig.btdp_only)
      | `Prolog -> ("prolog", R2c_core.Dconfig.prolog_only)
      | `Layout -> ("layout", R2c_core.Dconfig.layout_only)
    in
    let r = R2c_harness.Prof.run ~cfg ~cfg_name ~seed ~workload () in
    R2c_harness.Prof.print ~top r;
    if metrics then print_string (R2c_obs.Metrics.expose r.R2c_harness.Prof.sink.R2c_obs.Sink.metrics);
    let sums = R2c_harness.Prof.sums_ok r in
    if not sums then
      prerr_endline "profile: column sums diverge from the CPU's own counters";
    (* Pool timeline: export, re-parse, and check the span invariant. *)
    let sink, stats = R2c_harness.Prof.pool_timeline ~requests () in
    let events = sink.R2c_obs.Sink.events in
    let doc = R2c_obs.Events.to_chrome events in
    let parsed =
      match R2c_obs.Json.parse doc with
      | Ok _ -> true
      | Error e ->
          prerr_endline ("profile: trace JSON does not parse: " ^ e);
          false
    in
    let spans = R2c_obs.Events.count ~cat:"request" events in
    let expected = stats.R2c_runtime.Pool.served + stats.R2c_runtime.Pool.dropped in
    let spans_ok = spans = expected in
    if not spans_ok then
      Printf.eprintf "profile: %d request spans but served+dropped = %d\n" spans expected;
    Printf.printf
      "pool timeline: %d events (%d request spans = %d served + %d dropped), %d crashes, %d post-mortems\n"
      (R2c_obs.Events.count events) spans stats.R2c_runtime.Pool.served
      stats.R2c_runtime.Pool.dropped stats.R2c_runtime.Pool.crashes
      (R2c_obs.Events.count ~cat:"postmortem" events);
    if trace <> "" then begin
      let write path s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write trace doc;
      write (trace ^ ".jsonl") (R2c_obs.Events.to_jsonl events);
      Printf.printf "trace written to %s (+ .jsonl)\n" trace
    end;
    if sums && parsed && spans_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Per-function cycle/icache profile, baseline vs one R2C configuration, plus an \
          observed worker-pool timeline exported as Chrome trace JSON.")
    Term.(const run $ workload $ seed $ config $ top $ requests $ trace $ metrics)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign master seed.")
  in
  let count =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Generated programs.")
  in
  let fuel =
    Arg.(
      value & opt int 5_000_000
      & info [ "fuel" ] ~docv:"STEPS"
          ~doc:"Reference-interpreter budget per program (machine budget is 40x).")
  in
  let self_check =
    Arg.(
      value & flag
      & info [ "self-check" ]
          ~doc:
            "Also plant a deliberate miscompile (Sub compiled as Add) and require the \
             oracle to catch it and the shrinker to reduce it to <= 10 IR instructions.")
  in
  let corpus =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Corpus directory: replayed before the campaign; divergences are saved here.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for the campaign (0 = auto: \\$R2C_JOBS or the \
             recommended domain count; 1 = serial). The report is identical at any \
             width.")
  in
  let run seed count fuel self_check corpus jobs =
    let module J = R2c_obs.Json in
    let module C = R2c_fuzz.Campaign in
    let jobs = if jobs <= 0 then None else Some jobs in
    let effective_jobs =
      match jobs with Some j -> j | None -> R2c_util.Parallel.default_jobs ()
    in
    (* Replay the persisted corpus first: known reproducers must stay fixed. *)
    let replay_failures = C.replay ~fuel ~dir:corpus () in
    List.iter
      (fun (path, why) -> Printf.eprintf "fuzz: corpus replay failed: %s: %s\n" path why)
      replay_failures;
    let t0 = Unix.gettimeofday () in
    let rep = C.run ~corpus_dir:corpus ~fuel ?jobs ~seed ~count () in
    let campaign_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let sc = if self_check then Some (C.self_check ~fuel ~seed ()) else None in
    let sc_ok =
      match sc with
      | None -> true
      | Some s -> s.C.caught && s.C.shrunk_size <= 10 && s.C.roundtrip_ok && s.C.still_fails
    in
    let summary =
      J.Obj
        ([
           ("seed", J.Int rep.C.seed);
           ("programs", J.Int rep.C.programs);
           ("skipped", J.Int rep.C.skipped);
           ("configs", J.Int (List.length R2c_fuzz.Oracle.matrix));
           ("points_per_program", J.Int rep.C.points);
           ("corpus_replayed", J.Int (List.length (R2c_fuzz.Corpus.files ~dir:corpus)));
           ("corpus_failures", J.Int (List.length replay_failures));
           ("jobs", J.Int effective_jobs);
           ("campaign_wall_ms", J.Float campaign_ms);
           ("divergences", J.Int rep.C.divergences);
           ("reproducers",
            J.Arr
              (List.map
                 (fun (path, size) ->
                   J.Obj [ ("path", J.Str path); ("shrunk_size", J.Int size) ])
                 rep.C.reproducers));
         ]
        @
        match sc with
        | None -> []
        | Some s ->
            [
              ( "self_check",
                J.Obj
                  [
                    ("caught", J.Bool s.C.caught);
                    ("shrunk_size", J.Int s.C.shrunk_size);
                    ("reproducer", J.Str s.C.reproducer);
                    ("roundtrip_ok", J.Bool s.C.roundtrip_ok);
                    ("still_fails", J.Bool s.C.still_fails);
                  ] );
            ])
    in
    print_endline (J.to_string summary);
    if rep.C.divergences = 0 && replay_failures = [] && sc_ok then 0
    else begin
      prerr_endline "fuzz: surviving divergence or failed self-check";
      1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generated programs through the reference interpreter vs \
          the compiled machine under the whole Dconfig matrix (plus rerandomized \
          variants); divergences are delta-debugged to minimal .r2c reproducers.")
    Term.(const run $ seed $ count $ fuel $ self_check $ corpus $ jobs)

let fleet_cmd =
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign master seed.")
  in
  let requests =
    Arg.(
      value & opt int 100_000
      & info [ "requests" ] ~docv:"N" ~doc:"Simulated requests in the campaign.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Serving shards (pools).")
  in
  let epoch_cycles =
    Arg.(
      value
      & opt int R2c_runtime.Fleet.default_config.R2c_runtime.Fleet.epoch_cycles
      & info [ "epoch-cycles" ] ~docv:"CYCLES"
          ~doc:"Live-rerandomization period: rotate every CYCLES fleet cycles.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for background epoch compiles (0 = auto: \\$R2C_JOBS or \
             the recommended domain count; 1 = serial). The report is identical at any \
             width.")
  in
  let max_p99 =
    Arg.(
      value & opt int 0
      & info [ "max-p99" ] ~docv:"CYCLES"
          ~doc:
            "Latency SLO: fail the gate if the fleet-wide or any per-shard p99 \
             request latency exceeds CYCLES (0 = disabled).")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the one-line JSON to FILE.")
  in
  let incremental =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Build epoch rotations through the shared per-function codegen cache \
             (body diversification pinned at the campaign seed; rotations relink \
             from cache hits).")
  in
  let run seed requests shards epoch_cycles jobs max_p99 incremental json_out =
    let module FB = R2c_harness.Fleetbench in
    let effective_jobs =
      if jobs > 0 then jobs else R2c_util.Parallel.default_jobs ()
    in
    let t0 = Unix.gettimeofday () in
    let r = FB.run ~seed ~requests ~shards ~epoch_cycles ~jobs ~incremental () in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    FB.print r;
    let line = R2c_obs.Json.to_string (FB.json ~jobs:effective_jobs ~wall_ms r) in
    print_endline line;
    (match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc);
    (* The SLO gate: the campaign must have fleet scale (>= 100k requests,
       >= 4 shards), live diversity (>= 3 completed rotations), perfect
       rotations (zero rotation-caused drops) and >= 99.9% availability. *)
    let max_p99 = if max_p99 > 0 then Some max_p99 else None in
    match FB.gate ?max_p99 r with
    | [] -> 0
    | fails ->
        List.iter (fun m -> Printf.eprintf "fleet: SLO gate failed: %s\n" m) fails;
        1
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Sharded serving fleet under chaos: >=100k simulated requests across load-\
          balanced pools with admission control and epoch-based live rerandomization; \
          exits nonzero unless availability >= 99.9% with zero rotation-caused drops \
          (and, with --max-p99, the latency SLO holds fleet-wide and per shard).")
    Term.(
      const run $ seed $ requests $ shards $ epoch_cycles $ jobs $ max_p99 $ incremental
      $ json_out)

let tval_cmd =
  let seed =
    Arg.(
      value & opt int 3
      & info [ "seed" ] ~docv:"SEED" ~doc:"Diversification seed every point compiles under.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for the validation fan-out (0 = auto: \\$R2C_JOBS or the \
             recommended domain count; 1 = serial). The report is identical at any \
             width.")
  in
  let corpus =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Fuzz reproducer corpus replayed through the validator.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the one-line JSON to FILE.")
  in
  let run seed jobs corpus json_out =
    let module TB = R2c_harness.Tvalbench in
    let jobs = if jobs <= 0 then None else Some jobs in
    let effective_jobs =
      match jobs with Some j -> j | None -> R2c_util.Parallel.default_jobs ()
    in
    let t0 = Unix.gettimeofday () in
    let r = TB.run ~seed ?jobs ~corpus_dir:corpus () in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    TB.print r;
    let line = R2c_obs.Json.to_string (TB.json ~jobs:effective_jobs ~wall_ms r) in
    print_endline line;
    (match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc);
    match TB.gate r with
    | [] -> 0
    | fails ->
        List.iter (fun m -> Printf.eprintf "tval: gate failed: %s\n" m) fails;
        1
  in
  Cmd.v
    (Cmd.info "tval"
       ~doc:
         "Static translation validation: symbolically execute the emitted code of every \
          workload under the whole Dconfig matrix against its IR semantics, replay the \
          fuzz corpus, and re-catch the planted miscompiles — no execution; exits \
          nonzero on any finding or uncaught plant.")
    Term.(const run $ seed $ jobs $ corpus $ json_out)

let replay_cmd =
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for the per-case fan-out (0 = auto: \\$R2C_JOBS or the \
             recommended domain count; 1 = serial). The report is identical at any \
             width.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.01
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Relative profile-fidelity tolerance for cycles/insns/icache.")
  in
  let max_checks =
    Arg.(
      value & opt int 200
      & info [ "max-checks" ] ~docv:"N"
          ~doc:"Fidelity-oracle budget per trace reduction (each check re-runs the trace).")
  in
  let corpus_out =
    Arg.(
      value & opt (some string) None
      & info [ "corpus-out" ] ~docv:"DIR"
          ~doc:"Write the reduced .r2cr traces to DIR (the bench/replays corpus).")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the one-line JSON to FILE.")
  in
  let run jobs tolerance max_checks corpus_out json_out =
    let module RB = R2c_harness.Replaybench in
    let jobs = if jobs <= 0 then None else Some jobs in
    let effective_jobs =
      match jobs with Some j -> j | None -> R2c_util.Parallel.default_jobs ()
    in
    let t0 = Unix.gettimeofday () in
    match RB.run ~tolerance ~max_checks ?jobs () with
    | Error e ->
        Printf.eprintf "replay: %s\n" e;
        1
    | Ok r ->
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        RB.print r;
        (match corpus_out with
        | None -> ()
        | Some dir ->
            List.iter
              (fun p -> Printf.printf "  wrote %s\n" p)
              (RB.save_corpus ~dir r));
        let line = R2c_obs.Json.to_string (RB.json ~jobs:effective_jobs ~wall_ms r) in
        print_endline line;
        (match json_out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc line;
            output_char oc '\n';
            close_out oc);
        (match RB.gate r with
        | [] -> 0
        | fails ->
            List.iter (fun m -> Printf.eprintf "replay: gate failed: %s\n" m) fails;
            1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Record-reduce-replay: capture every builtin-boundary crossing of the fleet \
          and compute workloads, delta-debug the traces (>=30% smaller), and replay \
          them as standalone benchmarks; exits nonzero unless every replay reproduces \
          the recorded cycles/insns/icache profile within 1%.")
    Term.(const run $ jobs $ tolerance $ max_checks $ corpus_out $ json_out)

let rerand_cmd =
  let funcs =
    Arg.(
      value & opt int 10_000
      & info [ "funcs" ] ~docv:"N" ~doc:"Generated program size in functions.")
  in
  let config =
    Arg.(
      value & opt string "full"
      & info [ "config" ] ~docv:"CFG"
          ~doc:"Diversity configuration (baseline, full, full-checked, layout).")
  in
  let rotations =
    Arg.(
      value & opt int 4
      & info [ "rotations" ] ~docv:"N" ~doc:"Link-seed rotations through the cache.")
  in
  let checked =
    Arg.(
      value & opt int 2
      & info [ "checked" ] ~docv:"N"
          ~doc:"Rotations differentially fingerprinted against a cold compile.")
  in
  let min_speedup =
    Arg.(
      value & opt float 10.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Gate floor: incremental rebuild must beat cold compile by this factor \
                (0 disables the timing gate).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for recompiling cache misses (0 = auto: \\$R2C_JOBS or \
             the recommended domain count; 1 = serial). The report is identical at any \
             width.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the one-line JSON to FILE.")
  in
  let run funcs config rotations checked min_speedup jobs json_out =
    let module RR = R2c_harness.Rerandbench in
    let jobs = if jobs <= 0 then None else Some jobs in
    let effective_jobs =
      match jobs with Some j -> j | None -> R2c_util.Parallel.default_jobs ()
    in
    let r, t = RR.run ~funcs ~config ~rotations ~checked ?jobs () in
    RR.print (r, t);
    let line = R2c_obs.Json.to_string (RR.json ~jobs:effective_jobs ~timing:t r) in
    print_endline line;
    (match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc);
    let timing = if min_speedup > 0.0 then Some t else None in
    match RR.gate ~min_speedup:(max min_speedup 1.0) ?timing r with
    | [] -> 0
    | fails ->
        List.iter (fun m -> Printf.eprintf "rerand: gate failed: %s\n" m) fails;
        1
  in
  Cmd.v
    (Cmd.info "rerand"
       ~doc:
         "Incremental rerandomization: warm the per-function codegen cache on a \
          Genprog-scale image, rotate the link seed, and exit nonzero unless every \
          rebuild is byte-identical to a cold compile, rotations recompile nothing, a \
          one-function edit recompiles exactly one function, and the rebuild beats the \
          cold compile by the speedup floor.")
    Term.(const run $ funcs $ config $ rotations $ checked $ min_speedup $ jobs $ json_out)

let jit_cmd =
  let config =
    Arg.(
      value & opt string "full"
      & info [ "config" ] ~docv:"CFG"
          ~doc:"Diversity configuration (baseline, full, full-checked, layout).")
  in
  let seed =
    Arg.(value & opt int 3 & info [ "seed" ] ~docv:"N" ~doc:"Diversification seed.")
  in
  let fuel =
    Arg.(
      value & opt int 50_000_000
      & info [ "fuel" ] ~docv:"N" ~doc:"Per-run instruction budget.")
  in
  let min_speedup =
    Arg.(
      value & opt float 5.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Gate floor: tier 3 must beat the reference tier by this factor (0 \
                disables the timing gate).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width for compiling the workload images (0 = auto: \\$R2C_JOBS \
             or the recommended domain count; 1 = serial). The measured runs are always \
             serial and the report is identical at any width.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the one-line JSON to FILE.")
  in
  let run config seed fuel min_speedup jobs json_out =
    let module JB = R2c_harness.Jitbench in
    let jobs = if jobs <= 0 then None else Some jobs in
    let effective_jobs =
      match jobs with Some j -> j | None -> R2c_util.Parallel.default_jobs ()
    in
    let r, t = JB.run ~config ~seed ~fuel ?jobs () in
    JB.print (r, t);
    let line = R2c_obs.Json.to_string (JB.json ~jobs:effective_jobs ~timing:t r) in
    print_endline line;
    (match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc);
    let timing = if min_speedup > 0.0 then Some t else None in
    match JB.gate ~min_speedup:(max min_speedup 1.0) ?timing r with
    | [] -> 0
    | fails ->
        List.iter (fun m -> Printf.eprintf "jit: gate failed: %s\n" m) fails;
        1
  in
  Cmd.v
    (Cmd.info "jit"
       ~doc:
         "Three-tier comparison on the SPEC-like suite: reference dispatch vs \
          predecoded interpreter vs tier-3 template JIT (steady-state, warm shared \
          code cache). Exits nonzero unless all three tiers are bit-identical on \
          every workload and tier 3 clears the speedup floor over the reference \
          tier.")
    Term.(const run $ config $ seed $ fuel $ min_speedup $ jobs $ json_out)

let all_cmd =
  let run seeds =
    R2c_harness.Table1.(print (run ~seeds ()));
    R2c_harness.Table2.(print (run ()));
    R2c_harness.Table3.(print (run ()));
    R2c_harness.Figure6.(print (run ~seeds ()));
    R2c_harness.Webbench.(print (run ()));
    R2c_harness.Membench.(print (run ()));
    R2c_harness.Secbench.(print (run ()));
    R2c_harness.Scale.(print (run ()));
    0
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.") Term.(const run $ seeds_term)

let () =
  let doc = "Reproduce the R2C paper's evaluation tables and figures." in
  let info = Cmd.info "r2c-experiments" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            table1_cmd; table2_cmd; table3_cmd; figure6_cmd; web_cmd; memory_cmd;
            security_cmd; scale_cmd; ablation_cmd; chaos_cmd; audit_cmd; profile_cmd;
            fuzz_cmd; fleet_cmd; tval_cmd; replay_cmd; rerand_cmd; jit_cmd; all_cmd;
          ]))
