(* r2cc: the R2C compiler driver for the bundled workloads.

   Compile a named workload under a chosen protection configuration, run it
   on a chosen machine profile, and report cycles / calls / memory — or dump
   the diversified assembly. *)

open Cmdliner
module Dconfig = R2c_core.Dconfig
open R2c_machine

let workloads () =
  List.map (fun (b : R2c_workloads.Spec.benchmark) -> (b.name, b.program))
    (R2c_workloads.Spec.all ())
  @ [
      ("nginx", R2c_workloads.Webserver.server `Nginx ~requests:400);
      ("apache", R2c_workloads.Webserver.server `Apache ~requests:400);
      ("vulnsrv", R2c_workloads.Vulnapp.program ());
    ]

let config_of_name = function
  | "baseline" -> Dconfig.baseline
  | "full" -> Dconfig.full ()
  | "full-push" -> Dconfig.full ~setup:Dconfig.Push ()
  | "full-checked" -> Dconfig.full_checked
  | "push" -> Dconfig.btra_push_only
  | "avx" -> Dconfig.btra_avx_only
  | "btdp" -> Dconfig.btdp_only
  | "prolog" -> Dconfig.prolog_only
  | "layout" -> Dconfig.layout_only
  | "oia" -> Dconfig.oia_only
  | other -> failwith ("unknown config " ^ other)

let machine_of_name name =
  match
    List.find_opt (fun p -> String.lowercase_ascii p.Cost.name = String.lowercase_ascii name)
      Cost.all_machines
  with
  | Some p -> p
  | None -> (
      match name with
      | "i9" -> Cost.i9_9900k
      | "epyc" -> Cost.epyc_rome
      | "tr" -> Cost.tr_3970x
      | "xeon" -> Cost.xeon_8358
      | other -> failwith ("unknown machine " ^ other))

(* --record: capture the run's builtin boundary into a standalone .r2cr
   benchmark (optionally delta-debugged first), then verify the artifact
   replays with the recorded profile before writing it. *)
let record_run ~name ~config ~seed ~(profile : Cost.profile) ~program ~inputs
    ~reduce path =
  let module RT = R2c_replay.Trace in
  let module RReduce = R2c_replay.Reduce in
  let module RReplayer = R2c_replay.Replayer in
  let meta =
    {
      RT.workload = Filename.remove_extension (Filename.basename name);
      config;
      seed;
      machine = profile.Cost.name;
      fuel = 50_000_000;
    }
  in
  match
    R2c_replay.Record.capture ~fuel:meta.RT.fuel ~meta ~program ~inputs ()
  with
  | Error e ->
      prerr_endline ("record: " ^ e);
      1
  | Ok raw -> (
      let t, note =
        if reduce then begin
          let t, r = RReduce.run raw in
          ( t,
            Printf.sprintf ", reduced %d -> %d bytes (%.1f%%)"
              r.RReduce.raw_bytes r.RReduce.reduced_bytes
              (100. *. RReduce.ratio r) )
        end
        else (raw, "")
      in
      match RReplayer.check t with
      | Error e ->
          prerr_endline ("record: replay check: " ^ e);
          1
      | Ok v ->
          RT.save ~path t;
          Printf.printf
            "recorded %s under %s (seed %d): %d span(s)%s -> %s; replay \
             fidelity %s\n"
            meta.RT.workload config seed (RT.span_count t) note path
            (if v.RReplayer.failures = [] then "pass" else "FAIL");
          if v.RReplayer.failures = [] then 0
          else begin
            List.iter prerr_endline v.RReplayer.failures;
            1
          end)

let run_workload name config machine seed dump emit_ir trace profiled lint tval
    record inputs reduce =
  let program =
    (* A path ending in .r2c is compiled from source; otherwise it names a
       bundled workload. *)
    if Filename.check_suffix name ".r2c" then begin
      let ic = open_in name in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      match Text.parse src with
      | Ok p -> (
          match Validate.check p with
          | [] -> p
          | errs ->
              failwith
                (String.concat "\n" (List.map Validate.error_to_string errs)))
      | Error e -> failwith (name ^ ": " ^ Text.error_to_string e)
    end
    else
      match List.assoc_opt name (workloads ()) with
      | Some p -> p
      | None ->
          failwith
            (Printf.sprintf "unknown workload %s (have: %s, or a .r2c file)" name
               (String.concat ", " (List.map fst (workloads ()))))
  in
  if emit_ir then begin
    print_string (Text.to_string program);
    exit 0
  end;
  let cfg = config_of_name config in
  let profile = machine_of_name machine in
  if tval then begin
    (* Static translation validation: the pipeline with lowering metadata,
       the symbolic per-block refinement check, and the IR lint pack. *)
    let module Tval = R2c_analysis.Tval in
    let module Lint = R2c_analysis.Lint in
    let img, meta, p' = R2c_core.Pipeline.compile_with_meta ~seed cfg program in
    let r = Tval.validate ~img ~meta p' in
    let ir_findings = Lint.run_ir program in
    Printf.printf
      "%s under %s (seed %d): %d function(s), %d block(s) validated; %d tval finding(s), \
       %d IR lint finding(s)\n"
      name config seed r.Tval.funcs r.Tval.blocks
      (List.length r.Tval.findings)
      (List.length ir_findings);
    List.iter (fun f -> print_endline ("  " ^ Tval.finding_to_string f)) r.Tval.findings;
    List.iter (fun f -> print_endline ("  " ^ Lint.ir_finding_to_string f)) ir_findings;
    exit (if r.Tval.findings = [] && ir_findings = [] then 0 else 1)
  end;
  (match record with
  | Some path ->
      exit (record_run ~name ~config ~seed ~profile ~program ~inputs ~reduce path)
  | None -> ());
  let img =
    if config = "baseline" then R2c_compiler.Driver.compile program
    else R2c_core.Pipeline.compile ~seed cfg program
  in
  if lint then begin
    let module Lint = R2c_analysis.Lint in
    let expect = Lint.expect_of_dconfig cfg in
    let findings = Lint.run ~expect img in
    let stats = R2c_analysis.Cfg.(stats (recover img)) in
    let gadgets = List.length (R2c_analysis.Gadget.scan img) in
    Printf.printf
      "%s under %s (seed %d): %d finding(s); cfg %d funcs / %d blocks / %d edges; %d \
       gadget(s)\n"
      name config seed (List.length findings) stats.R2c_analysis.Cfg.n_funcs
      stats.R2c_analysis.Cfg.n_blocks stats.R2c_analysis.Cfg.n_edges gadgets;
    List.iter (fun f -> print_endline ("  " ^ Lint.finding_to_string f)) findings;
    if findings = [] then 0 else 1
  end
  else if dump then begin
    Printf.printf "; %s under %s (seed %d)\n%s" name config seed (Dump.image img);
    0
  end
  else if trace then begin
    (* Traced run: keep the last instructions for a post-mortem view. *)
    let cpu = Loader.load ~profile img in
    let tr = Trace.create ~capacity:40 in
    let result = Trace.run tr cpu ~fuel:50_000_000 in
    Printf.printf "--- output ---\n%s--- end ---\n" (Cpu.output cpu);
    (match result with
    | Cpu.Halted -> Printf.printf "exit: %d\n" cpu.Cpu.exit_code
    | Cpu.Fuel_exhausted -> print_endline "timeout"
    | Cpu.Faulted f -> Printf.printf "FAULT: %s\n" (Fault.to_string f));
    Printf.printf "last instructions:\n%s\n" (Trace.pp_tail tr ~n:24);
    0
  end
  else begin
    let p = Process.start ~profile img in
    let prof =
      if profiled then begin
        let pr = R2c_obs.Profile.create ~profile img in
        R2c_obs.Profile.attach pr p.Process.cpu;
        Some pr
      end
      else None
    in
    match Process.run p with
    | Process.Exited code ->
        Printf.printf "--- output ---\n%s--- end ---\n" (Process.output p);
        Printf.printf "exit: %d\n" code;
        Printf.printf "machine: %s, config: %s (%s), seed %d\n" profile.Cost.name config
          (Dconfig.describe cfg) seed;
        Printf.printf "instructions: %d\ncalls: %d\ncycles: %.0f\nmaxrss: %d KB\n"
          (Process.insns p) (Process.calls p) (Process.cycles p)
          (Process.maxrss_bytes p / 1024);
        Printf.printf "icache: %d misses / %d accesses; peak call depth: %d\n"
          (Process.icache_misses p) (Process.icache_accesses p) (Process.max_depth p);
        (match prof with
        | Some pr ->
            print_string
              (R2c_obs.Profile.report ~top:15
                 ~title:(Printf.sprintf "%s under %s (seed %d)" name config seed)
                 pr)
        | None -> ());
        if code = 0 then 0 else code
    | o ->
        Printf.printf "run failed: %s\n" (Process.outcome_to_string o);
        1
  end

let () =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (try: perlbench, nginx, vulnsrv).")
  in
  let config =
    Arg.(
      value & opt string "full"
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:
            "Protection: baseline, full, full-checked, full-push, push, avx, btdp, \
             prolog, layout, oia.")
  in
  let machine =
    Arg.(
      value & opt string "epyc"
      & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Cost profile: i9, epyc, tr, xeon.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Diversification seed.")
  in
  let dump =
    Arg.(value & flag & info [ "S"; "dump" ] ~doc:"Dump the diversified assembly and exit.")
  in
  let emit_ir =
    Arg.(value & flag & info [ "emit-ir" ] ~doc:"Print the workload as textual IR and exit.")
  in
  let trace =
    Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Trace execution; print the final instructions.")
  in
  let profiled =
    Arg.(
      value & flag
      & info [ "p"; "profile" ]
          ~doc:"Attach the per-step profiler; print the top-functions table after the run.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the static invariant linter on the linked image instead of executing; \
             exit nonzero on findings.")
  in
  let tval =
    Arg.(
      value & flag
      & info [ "tval" ]
          ~doc:
            "Statically validate the translation instead of executing: symbolically \
             execute the diversified machine code of every basic block against the IR \
             semantics and run the IR dataflow lint; exit nonzero on findings.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE.r2cr"
          ~doc:
            "Record the run's builtin boundary (every intercepted call with \
             arguments, results and simulated-cycle timestamps) into a \
             standalone replay benchmark at $(docv), verified to reproduce the \
             recorded profile before it is written.")
  in
  let inputs =
    Arg.(
      value & opt_all string []
      & info [ "input" ] ~docv:"BYTES"
          ~doc:"Queue a read_input payload for a --record run (repeatable, in order).")
  in
  let reduce =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Delta-debug the recorded trace before writing it: drop observational \
             spans, intern request payloads, collapse periodic loops — keeping \
             only edits the profile-fidelity oracle accepts.")
  in
  let doc = "Compile and run a bundled workload under R2C protection." in
  let cmd =
    Cmd.v (Cmd.info "r2cc" ~version:"1.0.0" ~doc)
      Term.(
        const run_workload $ workload $ config $ machine $ seed $ dump $ emit_ir $ trace
        $ profiled $ lint $ tval $ record $ inputs $ reduce)
  in
  exit (Cmd.eval' cmd)
