module Stats = R2c_util.Stats

let feq = Alcotest.float 1e-9

let test_mean () = Alcotest.check feq "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_geomean () =
  Alcotest.check feq "geomean of equal" 3.0 (Stats.geomean [ 3.0; 3.0; 3.0 ]);
  Alcotest.check (Alcotest.float 1e-9) "geomean 2,8" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_median_odd () = Alcotest.check feq "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ])

let test_median_even () =
  Alcotest.check feq "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_median_int () =
  Alcotest.(check int) "odd" 3 (Stats.median_int [ 5; 1; 3 ]);
  Alcotest.(check int) "even lower-mid" 2 (Stats.median_int [ 4; 1; 2; 3 ])

let test_stddev () =
  Alcotest.check feq "constant" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]);
  Alcotest.check feq "simple" 2.0 (Stats.stddev [ 2.0; 6.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "p100" 100.0 (Stats.percentile 100.0 xs);
  Alcotest.check feq "p1" 1.0 (Stats.percentile 1.0 xs)

let test_minmax () =
  Alcotest.check feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_cluster_basic () =
  (* Three groups separated by big gaps — like text/heap/stack pointers. *)
  let values = [ 10; 12; 11; 1000; 1002; 50000; 50001; 50002; 50003 ] in
  let cs = Stats.cluster ~gap:100 values in
  Alcotest.(check int) "three clusters" 3 (List.length cs);
  let sizes = List.map Stats.cluster_size cs in
  Alcotest.(check (list int)) "sizes ascending lo" [ 3; 2; 4 ] sizes

let test_cluster_by_size () =
  let values = [ 10; 12; 11; 1000; 1002; 50000; 50001; 50002; 50003 ] in
  let cs = Stats.clusters_by_size (Stats.cluster ~gap:100 values) in
  Alcotest.(check int) "largest first" 4 (Stats.cluster_size (List.hd cs))

let test_cluster_single () =
  let cs = Stats.cluster ~gap:10 [ 5 ] in
  Alcotest.(check int) "one cluster" 1 (List.length cs);
  match cs with
  | [ c ] ->
      Alcotest.(check int) "lo" 5 c.Stats.lo;
      Alcotest.(check int) "hi" 5 c.Stats.hi
  | _ -> Alcotest.fail "expected one cluster"

let test_cluster_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Stats.cluster ~gap:10 []))

let test_cluster_bounds () =
  let cs = Stats.cluster ~gap:5 [ 3; 1; 2; 100 ] in
  match cs with
  | [ a; b ] ->
      Alcotest.(check int) "first lo" 1 a.Stats.lo;
      Alcotest.(check int) "first hi" 3 a.Stats.hi;
      Alcotest.(check int) "second lo" 100 b.Stats.lo
  | _ -> Alcotest.fail "expected two clusters"

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "geomean rejects" `Quick test_geomean_rejects_nonpositive;
        Alcotest.test_case "median odd" `Quick test_median_odd;
        Alcotest.test_case "median even" `Quick test_median_even;
        Alcotest.test_case "median int" `Quick test_median_int;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "min max" `Quick test_minmax;
        Alcotest.test_case "cluster basic" `Quick test_cluster_basic;
        Alcotest.test_case "cluster by size" `Quick test_cluster_by_size;
        Alcotest.test_case "cluster single" `Quick test_cluster_single;
        Alcotest.test_case "cluster empty" `Quick test_cluster_empty;
        Alcotest.test_case "cluster bounds" `Quick test_cluster_bounds;
      ] );
  ]
