(* Tests for the extension features: SSE/AVX-512 setups (Section 7.1), the
   naive race window (Section 5.1), RA-zeroing + consistency checks and
   load-time re-randomization (Section 7.3). *)

module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Report = R2c_attacks.Report
module Race = R2c_attacks.Race
module Ra_zeroing = R2c_attacks.Ra_zeroing
module Vulnapp = R2c_workloads.Vulnapp
module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
open R2c_machine

let interp_ref p =
  match Interp.run p with
  | Ok r -> r
  | Error e -> Alcotest.failf "interp: %s" (Interp.error_to_string e)

let check_differential ~cfg ~seed name p =
  let r = interp_ref p in
  let img = Pipeline.compile ~seed cfg p in
  let proc = Process.start ~strict_align:true img in
  (match Process.run proc with
  | Process.Exited code -> Alcotest.(check int) (name ^ ": exit") r.Interp.exit_code code
  | o -> Alcotest.failf "%s: %s" name (Process.outcome_to_string o));
  Alcotest.(check string) (name ^ ": output") r.Interp.output (Process.output proc)

(* --- new setup flavours still compile correct binaries --- *)

let test_differential_new_setups () =
  List.iter
    (fun (cname, cfg) ->
      List.iter
        (fun (name, p) -> check_differential ~cfg ~seed:5 (cname ^ "/" ^ name) p)
        Samples.all)
    [
      ("sse", Dconfig.btra_sse_only);
      ("avx512", Dconfig.btra_avx512_only);
      ("naive", Dconfig.full ~setup:Dconfig.Naive ());
      ("checked", Dconfig.full_checked);
      ("full-sse", Dconfig.full ~setup:Dconfig.Sse ());
      ("full-avx512", Dconfig.full ~setup:Dconfig.Avx512 ());
    ]

let steady_cycles img =
  (R2c_harness.Measure.run img).R2c_harness.Measure.steady_cycles

let test_avx512_halves_the_gap () =
  (* Section 7.1: with 64-byte moves "we could either half the BTRA
     performance impact, or use twice as many BTRAs". *)
  let p = (R2c_workloads.Spec.find "nab").R2c_workloads.Spec.program in
  let base = steady_cycles (R2c_compiler.Driver.compile p) in
  let overhead cfg = (steady_cycles (Pipeline.compile ~seed:7 cfg p) /. base) -. 1.0 in
  let avx = overhead Dconfig.btra_avx_only in
  let avx512 = overhead Dconfig.btra_avx512_only in
  let sse = overhead Dconfig.btra_sse_only in
  Alcotest.(check bool)
    (Printf.sprintf "avx512 (%.3f) < avx (%.3f) < sse (%.3f)" avx512 avx sse)
    true
    (avx512 < avx && avx < sse);
  (* Twice the BTRAs under AVX-512 costs about what 10 cost under AVX. *)
  let avx512_double =
    overhead
      {
        Dconfig.btra_avx512_only with
        btra =
          Some
            {
              Dconfig.total = 20;
              setup = Dconfig.Avx512;
              to_builtins = true;
              max_post = 4;
              check_after_return = false;
            };
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "20 BTRAs on avx512 (%.3f) within 1.6x of 10 on avx (%.3f)" avx512_double
       avx)
    true
    (avx512_double < avx *. 1.6)

(* --- race window (Section 5.1) --- *)

let test_race_beats_naive () =
  let target =
    Oracle.attach ~break_sym:Vulnapp.break_symbol
      (Defenses.build_vulnapp Defenses.r2c_naive ~seed:6)
  in
  let r = Race.run ~target in
  Alcotest.(check bool)
    ("race vs naive: " ^ Report.to_string r)
    true r.Report.success

let test_race_fails_against_r2c () =
  List.iter
    (fun seed ->
      let target =
        Oracle.attach ~break_sym:Vulnapp.break_symbol
          (Defenses.build_vulnapp Defenses.r2c ~seed)
      in
      let r = Race.run ~target in
      Alcotest.(check bool)
        ("race vs R2C: " ^ Report.to_string r)
        false r.Report.success)
    [ 6; 7; 8 ]

let test_race_fails_against_push_r2c () =
  let d = { Defenses.r2c with Defenses.cfg = Dconfig.full ~setup:Dconfig.Push () } in
  let target =
    Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed:9)
  in
  let r = Race.run ~target in
  Alcotest.(check bool) ("race vs push R2C: " ^ Report.to_string r) false r.Report.success

(* --- RA zeroing (Section 7.3) --- *)

let test_ra_zeroing_discloses_without_checks () =
  (* The paper admits this as remaining attack surface. *)
  let successes =
    List.filter
      (fun seed ->
        let target =
          Oracle.attach ~break_sym:Vulnapp.break_symbol
            (Defenses.build_vulnapp Defenses.r2c_nopie ~seed)
        in
        (Ra_zeroing.run ~target ()).Report.success)
      [ 3; 4; 5; 6 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "discloses in %d/4 campaigns" (List.length successes))
    true
    (List.length successes >= 3)

let test_ra_zeroing_checks_detect () =
  (* With consistency checks, zeroed BTRAs trap on the way out. *)
  let results =
    List.map
      (fun seed ->
        let target =
          Oracle.attach ~break_sym:Vulnapp.break_symbol
            (Defenses.build_vulnapp Defenses.r2c_checked_nopie ~seed)
        in
        Ra_zeroing.run ~target ())
      [ 3; 4; 5; 6; 7; 8 ]
  in
  let detected = List.length (List.filter (fun r -> r.Report.detected) results) in
  Alcotest.(check bool)
    (Printf.sprintf "checks detect most campaigns (%d/6)" detected)
    true (detected >= 3)

let test_rerandomization_stops_restart_probing () =
  (* Section 7.3: "Both attacks could be prevented by load time
     re-randomization" — every respawn changes the layout, so cross-restart
     probing learns nothing. *)
  let d = Defenses.r2c_rerand in
  let counter = ref 0 in
  let relink () =
    incr counter;
    Defenses.build_vulnapp d ~seed:(500 + !counter)
  in
  let target =
    Oracle.attach ~relink ~break_sym:Vulnapp.break_symbol
      (Defenses.build_vulnapp d ~seed:500)
  in
  let r = Ra_zeroing.run ~target () in
  Alcotest.(check bool) ("zeroing vs rerand: " ^ Report.to_string r) false r.Report.success

(* --- checked BTRAs still behave (differential) and catch corruption --- *)

let test_check_fires_on_corrupted_btra () =
  (* Directly corrupt a live pre-BTRA of main's call site and let the
     request return: the consistency check must trap. *)
  let img = Defenses.build_vulnapp Defenses.r2c_checked ~seed:11 in
  let truth = R2c_attacks.Reference.measure img in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol img in
  (match Oracle.to_break target with `Break -> () | `Done _ -> Alcotest.fail "no break");
  (match Oracle.resume_to_break target with
  | `Break -> ()
  | `Done _ -> Alcotest.fail "no second break");
  (* Zero every live pre-BTRA above the frame's return address: one of
     them is the checked one. *)
  let base = Oracle.rsp target in
  let ra_off = truth.R2c_attacks.Reference.ra_off in
  let _, values = Oracle.leak_stack target ~words:((ra_off / 8) + 12) in
  Array.iteri
    (fun i v ->
      let off = 8 * i in
      if off > ra_off && Addr.region_of v = Addr.Text then
        match Oracle.arb_write target (base + off) 0 with Ok () | Error _ -> ())
    values;
  match Oracle.resume_to_end target with
  | Process.Crashed (Fault.Booby_trap _) ->
      Alcotest.(check bool) "detected" true (Oracle.detected target)
  | o -> Alcotest.failf "expected check trap, got %s" (Process.outcome_to_string o)

(* --- CFI / shadow stack (Section 8.2) --- *)

let scenario (d : Defenses.t) ~seed =
  let reference =
    R2c_attacks.Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 700))
  in
  (reference, Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed))

let test_cfi_differential () =
  (* Programs behave identically under the shadow stack. *)
  List.iter
    (fun (name, p) ->
      let r = interp_ref p in
      let img = Defenses.build Defenses.cfi ~seed:4 ~extra_raw:[] p in
      let proc = Process.start ~strict_align:true img in
      (match Process.run proc with
      | Process.Exited code -> Alcotest.(check int) (name ^ " exit") r.Interp.exit_code code
      | o -> Alcotest.failf "%s: %s" name (Process.outcome_to_string o));
      Alcotest.(check string) (name ^ " out") r.Interp.output (Process.output proc))
    Samples.all

let test_cfi_stops_rop () =
  let reference, target = scenario Defenses.cfi ~seed:12 in
  let r = R2c_attacks.Rop.run ~reference ~target in
  Alcotest.(check bool) ("rop vs CFI: " ^ Report.to_string r) false r.Report.success;
  Alcotest.(check bool) "violation detected" true r.Report.detected

let test_cfi_misses_aocr () =
  (* Whole-function reuse through a corrupted forward edge sails past the
     shadow stack — Section 8.2's caveat, and the reason R2C exists. *)
  let reference, target = scenario Defenses.cfi ~seed:14 in
  let r =
    R2c_attacks.Aocr.run ~rng:(R2c_util.Rng.create 5) ~reference ~target ()
  in
  Alcotest.(check bool) ("aocr vs CFI: " ^ Report.to_string r) true r.Report.success

let test_r2c_cfi_compose () =
  (* The composition stops both attack families. *)
  let reference, target = scenario Defenses.r2c_cfi ~seed:16 in
  let rop = R2c_attacks.Rop.run ~reference ~target in
  Alcotest.(check bool) "rop fails" false rop.Report.success;
  let reference, target = scenario Defenses.r2c_cfi ~seed:17 in
  let aocr =
    R2c_attacks.Aocr.run ~rng:(R2c_util.Rng.create 6) ~reference ~target ()
  in
  Alcotest.(check bool) ("aocr vs R2C+CFI: " ^ Report.to_string aocr) false
    aocr.Report.success

let test_shadow_stack_mechanics () =
  (* A hand-made return-address overwrite trips the shadow check with a
     CFI fault specifically. Stack offsets are stable under the
     baseline+aslr config, so the reference's ra_off locates the frame's
     return address on the target. *)
  let reference, target = scenario Defenses.cfi ~seed:18 in
  (match Oracle.to_break target with `Break -> () | `Done _ -> Alcotest.fail "no break");
  (match Oracle.resume_to_break target with `Break -> () | `Done _ -> Alcotest.fail "no b2");
  let slot = Oracle.rsp target + reference.R2c_attacks.Reference.ra_off in
  (* Redirect the return into some other executable byte. *)
  (match Oracle.arb_write target slot (Oracle.rsp target) with
  | Ok () -> ()
  | Error f -> Alcotest.failf "write failed: %s" (Fault.to_string f));
  match Oracle.resume_to_end target with
  | Process.Crashed (Fault.Cfi_violation _) -> ()
  | o -> Alcotest.failf "expected CFI violation, got %s" (Process.outcome_to_string o)

(* --- MVEE (Section 7.3) --- *)

let mvee_defense = { Defenses.r2c with Defenses.cfg = Dconfig.layout_only }

let mvee_build ~seed = Defenses.build_vulnapp mvee_defense ~seed

let test_mvee_benign_consistent () =
  match
    R2c_defenses.Mvee.run ~build:mvee_build ~seeds:[ 1; 2; 3; 4 ]
      ~inputs:[ "hello"; "world" ]
  with
  | R2c_defenses.Mvee.Consistent (Process.Exited 0) -> ()
  | v -> Alcotest.failf "expected consistency: %s" (R2c_defenses.Mvee.verdict_to_string v)

let test_mvee_detects_tailored_exploit () =
  (* Craft a ROP payload against variant 1's exact layout: it owns variant
     1 but diverges on variant 2 — the MVEE's detection signal. *)
  let v1 = mvee_build ~seed:1 in
  let reference = R2c_attacks.Reference.measure v1 in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol v1 in
  (match (Oracle.to_break target, Oracle.resume_to_break target) with
  | `Break, `Break -> ()
  | _ -> Alcotest.fail "no serving state");
  let _, values =
    Oracle.leak_stack target ~words:((reference.R2c_attacks.Reference.ra_off / 8) + 8)
  in
  match R2c_attacks.Rop.craft ~reference ~values with
  | None -> Alcotest.fail "no gadget"
  | Some payload -> (
      match
        R2c_defenses.Mvee.run ~build:mvee_build ~seeds:[ 1; 2 ] ~inputs:[ ""; payload ]
      with
      | R2c_defenses.Mvee.Divergence _ -> ()
      | R2c_defenses.Mvee.Consistent _ -> Alcotest.fail "MVEE missed the exploit")

(* --- unwind tables (Section 7.2.4) --- *)

let test_unwind_tables_populated () =
  let img = Defenses.build_vulnapp Defenses.r2c ~seed:5 in
  Alcotest.(check bool) "function rows" true (Array.length img.Image.unwind_funcs > 5);
  Alcotest.(check bool) "site rows" true (Hashtbl.length img.Image.unwind_sites > 10);
  (* Site rows under full R2C must include nonzero pre-offsets. *)
  let nonzero = Hashtbl.fold (fun _ w acc -> acc || w > 0) img.Image.unwind_sites false in
  Alcotest.(check bool) "BTRA offsets recorded" true nonzero

let test_unwind_rows_shuffled () =
  (* Table rows are PC-keyed; row order follows the (randomized) layout,
     so the row index reveals nothing stable about function identity
     (Section 7.2.4's function-reordering argument). *)
  let order seed =
    let img = Defenses.build_vulnapp Defenses.r2c ~seed in
    Array.to_list img.Image.unwind_funcs
    |> List.map (fun (entry, _, _, _) ->
           match Image.func_of_addr img entry with Some f -> f.Image.fname | None -> "?")
  in
  Alcotest.(check bool) "row order differs across seeds" true (order 1 <> order 2)

let test_unwind_through_btras () =
  (* Walk a live stack with the unwinder and confirm the frame count and
     that every frame's return address lies inside a compiled function. *)
  let img = Defenses.build_vulnapp Defenses.r2c ~seed:8 in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol img in
  (match Oracle.to_break target with `Break -> () | `Done _ -> Alcotest.fail "no break");
  (* At the breakpoint we are mid-call-site; unwinding is specified from a
     return-address slot, so locate process_request's RA with ground truth
     and walk from there. *)
  let truth = R2c_attacks.Reference.measure img in
  (match Oracle.resume_to_break target with `Break -> () | `Done _ -> Alcotest.fail "no b2");
  let slot = Oracle.rsp target + truth.R2c_attacks.Reference.ra_off in
  let frames =
    Unwind.backtrace target.Oracle.proc.Process.cpu.Cpu.mem img ~ra_slot:slot
  in
  (* process_request's RA (into main); main's RA is in _start, which has no
     row — exactly one frame. *)
  Alcotest.(check int) "one compiled frame above process_request" 1 (List.length frames);
  List.iter
    (fun ra ->
      match Image.func_of_addr img ra with
      | Some f -> Alcotest.(check string) "frame in main" "main" f.Image.fname
      | None -> Alcotest.fail "frame outside compiled code")
    frames

let suite =
  [
    ( "extensions",
      [
        Alcotest.test_case "new setups differential" `Quick test_differential_new_setups;
        Alcotest.test_case "avx512 halves the gap" `Quick test_avx512_halves_the_gap;
        Alcotest.test_case "race beats naive" `Quick test_race_beats_naive;
        Alcotest.test_case "race fails vs R2C" `Quick test_race_fails_against_r2c;
        Alcotest.test_case "race fails vs push R2C" `Quick test_race_fails_against_push_r2c;
        Alcotest.test_case "zeroing discloses w/o checks" `Quick
          test_ra_zeroing_discloses_without_checks;
        Alcotest.test_case "zeroing detected w/ checks" `Quick test_ra_zeroing_checks_detect;
        Alcotest.test_case "rerand stops restart probing" `Quick
          test_rerandomization_stops_restart_probing;
        Alcotest.test_case "check fires on corruption" `Quick
          test_check_fires_on_corrupted_btra;
        Alcotest.test_case "mvee benign consistent" `Quick test_mvee_benign_consistent;
        Alcotest.test_case "mvee detects exploit" `Quick test_mvee_detects_tailored_exploit;
        Alcotest.test_case "unwind tables populated" `Quick test_unwind_tables_populated;
        Alcotest.test_case "unwind rows shuffled" `Quick test_unwind_rows_shuffled;
        Alcotest.test_case "unwind through BTRAs" `Quick test_unwind_through_btras;
        Alcotest.test_case "cfi differential" `Quick test_cfi_differential;
        Alcotest.test_case "cfi stops rop" `Quick test_cfi_stops_rop;
        Alcotest.test_case "cfi misses aocr" `Quick test_cfi_misses_aocr;
        Alcotest.test_case "r2c+cfi compose" `Quick test_r2c_cfi_compose;
        Alcotest.test_case "shadow stack mechanics" `Quick test_shadow_stack_mechanics;
      ] );
  ]
