module Measure = R2c_harness.Measure
module Webserver = R2c_workloads.Webserver

let tiny_program =
  let open Builder in
  let main = func "main" ~nparams:0 in
  call_void main (Ir.Builtin "print_int") [ Ir.Const 5 ];
  ret main (Some (Ir.Const 0));
  program ~main:"main" [ finish main ] []

let test_measure_steady_below_total () =
  let s = Measure.run (R2c_compiler.Driver.compile tiny_program) in
  Alcotest.(check bool) "steady <= total" true (s.Measure.steady_cycles <= s.Measure.total_cycles);
  Alcotest.(check bool) "positive" true (s.Measure.steady_cycles > 0.0)

let test_measure_startup_excluded () =
  (* Under full R2C the constructor runs before main: total-steady must be
     substantially larger than for the baseline. *)
  let base = Measure.run (R2c_compiler.Driver.compile tiny_program) in
  let r2c =
    Measure.run (R2c_core.Pipeline.compile ~seed:2 (R2c_core.Dconfig.full ()) tiny_program)
  in
  let startup s = s.Measure.total_cycles -. s.Measure.steady_cycles in
  Alcotest.(check bool) "BTDP constructor in startup" true
    (startup r2c > startup base +. 1000.0)

let test_overhead_of_identity () =
  (* The baseline config has ratio ~1.0 against itself. *)
  let oh =
    Measure.overhead ~seeds:[ 1 ] R2c_core.Dconfig.baseline
      (R2c_workloads.Spec.find "xz").R2c_workloads.Spec.program
  in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f ~ 1" oh) true
    (oh > 0.98 && oh < 1.02)

let test_geomean_max () =
  let mx, geo = Measure.geomean_max [ ("a", 1.0); ("b", 1.21); ("c", 1.1) ] in
  Alcotest.(check (float 1e-9)) "max" 1.21 mx;
  Alcotest.(check bool) "geo between" true (geo > 1.0 && geo < 1.21)

let test_throughput_inverse_cycles () =
  let t1 = Webserver.throughput_of_cycles ~requests:100 1_000_000.0 in
  let t2 = Webserver.throughput_of_cycles ~requests:100 2_000_000.0 in
  Alcotest.(check (float 1e-9)) "halved" (t1 /. 2.0) t2

let test_table3_glyphs () =
  let open R2c_harness.Table3 in
  Alcotest.(check string) "protected" "#"
    (glyph { attack = "x"; trials = 3; successes = 0; detections = 1 });
  Alcotest.(check string) "broken" "o"
    (glyph { attack = "x"; trials = 3; successes = 3; detections = 0 });
  Alcotest.(check string) "partial" "+"
    (glyph { attack = "x"; trials = 3; successes = 1; detections = 0 })

let test_paper_constants_sane () =
  List.iter
    (fun (label, mx, geo) ->
      Alcotest.(check bool) (label ^ " max >= geomean") true (mx >= geo))
    R2c_harness.Paper.table1;
  Alcotest.(check bool) "probability example" true
    (abs_float (R2c_harness.Paper.guess_probability_example -. 0.0000683) < 0.00001)

let test_scale_runs_small () =
  (* First row is the browser-shaped workload, then the requested size. *)
  match R2c_harness.Scale.run ~sizes:[ 60 ] () with
  | [ browser; row ] ->
      Alcotest.(check bool) "browser correct" true browser.R2c_harness.Scale.run_ok;
      Alcotest.(check bool) "correct" true row.R2c_harness.Scale.run_ok;
      Alcotest.(check int) "funcs" 60 row.R2c_harness.Scale.funcs;
      Alcotest.(check bool) "text nonempty" true (row.R2c_harness.Scale.text_kb > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_table1_smoke () =
  (* A single-seed run of the component harness on the suite is the
     expensive integration test of the whole measurement stack. *)
  let rows = R2c_harness.Table1.run ~seeds:[ 3 ] () in
  Alcotest.(check int) "six components" 6 (List.length rows);
  List.iter
    (fun (r : R2c_harness.Table1.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: max %.3f >= geomean %.3f >= ~1" r.label r.max r.geomean)
        true
        (r.max >= r.geomean && r.geomean > 0.98))
    rows;
  let get l = List.find (fun (r : R2c_harness.Table1.row) -> r.label = l) rows in
  Alcotest.(check bool) "push > avx" true ((get "Push").geomean > (get "AVX").geomean);
  Alcotest.(check bool) "avx > layout" true ((get "AVX").geomean > (get "Layout").geomean)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "steady below total" `Quick test_measure_steady_below_total;
        Alcotest.test_case "startup excluded" `Quick test_measure_startup_excluded;
        Alcotest.test_case "identity overhead" `Quick test_overhead_of_identity;
        Alcotest.test_case "geomean/max" `Quick test_geomean_max;
        Alcotest.test_case "throughput inverse" `Quick test_throughput_inverse_cycles;
        Alcotest.test_case "table3 glyphs" `Quick test_table3_glyphs;
        Alcotest.test_case "paper constants" `Quick test_paper_constants_sane;
        Alcotest.test_case "scale small" `Quick test_scale_runs_small;
        Alcotest.test_case "table1 smoke" `Slow test_table1_smoke;
      ] );
  ]
