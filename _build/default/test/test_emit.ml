(* Golden-sequence tests for the emitter: the BTRA setups must match the
   paper's figures instruction for instruction. *)

module Opts = R2c_compiler.Opts
module Emit = R2c_compiler.Emit
module Asm = R2c_compiler.Asm
module B = Builder
open R2c_machine

(* A caller with exactly one direct call. *)
let caller_callee () =
  let callee = B.func "callee" ~nparams:1 in
  B.ret callee (Some (B.param 0));
  let caller = B.func "caller" ~nparams:0 in
  let v = B.call caller (Ir.Direct "callee") [ Ir.Const 7 ] in
  B.ret caller (Some v);
  (B.finish caller, B.finish callee)

let bt k = (Printf.sprintf "__bt_%d" k, 0)

let plan_opts ?(post_words = 1) plan =
  {
    Opts.default with
    Opts.oia = true;
    callsite_btra = (fun ~fname:_ ~site:_ ~callee:_ -> Some plan);
    post_offset_words = (fun ~fname:_ -> post_words);
  }

let insns_of (e : Asm.emitted) = Array.to_list e.Asm.insns

let pushes l =
  List.filter_map (function Insn.Push (Imm (Sym (s, _))) -> Some s | _ -> None) l

let count p l = List.length (List.filter p l)

let test_push_setup_figure3 () =
  (* 2 pre + RA + 1 post, rsp repositioning, call, pre revert. *)
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2 ];
      post_syms = [ bt 3 ];
      setup = Opts.Push_setup;
      array_global = None;
      avx_pad = 0;
      dummy_sym = None;
      check_sym = None;
    }
  in
  let e = Emit.emit_func ~opts:(plan_opts plan) caller in
  let l = insns_of e in
  (* The pushes appear in Figure 3's order: pre, RA, post. *)
  Alcotest.(check (list string)) "push order"
    [ "__bt_1"; "__bt_2"; "__ra_caller_0"; "__bt_3" ]
    (pushes l);
  (* Figure 3 step 2: rsp moves up by 8*(post+1) before the call. *)
  Alcotest.(check bool) "rsp reposition" true
    (List.exists (function Insn.Binop (Add, RSP, Imm (Abs 16)) -> true | _ -> false) l);
  Alcotest.(check int) "one call" 1
    (count (function Insn.Call _ -> true | _ -> false) l)

let test_avx_setup_figure4 () =
  (* 2 pre + RA + 1 post = 4 words = exactly one 32-byte batch. *)
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2 ];
      post_syms = [ bt 3 ];
      setup = Opts.Avx_setup;
      array_global = Some "cs_arr";
      avx_pad = 0;
      dummy_sym = None;
      check_sym = None;
    }
  in
  let e = Emit.emit_func ~opts:(plan_opts plan) caller in
  let l = insns_of e in
  Alcotest.(check int) "one vload" 1
    (count (function Insn.Vload _ -> true | _ -> false) l);
  Alcotest.(check int) "one vstore" 1
    (count (function Insn.Vstore _ -> true | _ -> false) l);
  Alcotest.(check int) "vzeroupper present" 1
    (count (function Insn.Vzeroupper -> true | _ -> false) l);
  Alcotest.(check int) "no BTRA pushes" 0 (List.length (pushes l));
  (* rsp positioned above the RA slot via lea rsp, [rsp - 8*pre]. *)
  Alcotest.(check bool) "lea reposition" true
    (List.exists
       (function
         | Insn.Lea (RSP, { base = Some RSP; disp = Abs d; _ }) -> d = -16
         | _ -> false)
       l)

let test_avx512_batches () =
  (* 6 pre + RA + 1 post = 8 words = one 64-byte batch. *)
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2; bt 3; bt 4; bt 5; bt 6 ];
      post_syms = [ bt 7 ];
      setup = Opts.Avx512_setup;
      array_global = Some "cs_arr";
      avx_pad = 0;
      dummy_sym = None;
      check_sym = None;
    }
  in
  let e = Emit.emit_func ~opts:(plan_opts plan) caller in
  let l = insns_of e in
  Alcotest.(check int) "one 64-byte store" 1
    (count (function Insn.Vstore512 _ -> true | _ -> false) l)

let test_naive_setup_has_dummy_in_ra_slot () =
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2 ];
      post_syms = [ bt 3 ];
      setup = Opts.Push_naive;
      array_global = None;
      avx_pad = 0;
      dummy_sym = Some (bt 9);
      check_sym = None;
    }
  in
  let e = Emit.emit_func ~opts:(plan_opts plan) caller in
  Alcotest.(check (list string)) "dummy instead of RA"
    [ "__bt_1"; "__bt_2"; "__bt_9"; "__bt_3" ]
    (pushes (insns_of e))

let test_check_sequence () =
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2 ];
      post_syms = [ bt 3 ];
      setup = Opts.Push_setup;
      array_global = None;
      avx_pad = 0;
      dummy_sym = None;
      check_sym = Some (1, bt 1);
    }
  in
  let e = Emit.emit_func ~opts:(plan_opts plan) caller in
  let l = insns_of e in
  (* load slot into r11, compare against the expected symbol, trap on
     mismatch. *)
  Alcotest.(check bool) "loads the checked slot into r11" true
    (List.exists
       (function
         | Insn.Mov (Reg R11, Mem { base = Some RSP; disp = Abs 8; _ }) -> true
         | _ -> false)
       l);
  Alcotest.(check bool) "compares against the BTRA value" true
    (List.exists
       (function Insn.Cmp (Reg R11, Imm (Sym ("__bt_1", 0))) -> true | _ -> false)
       l);
  Alcotest.(check bool) "trap on mismatch" true (List.mem Insn.Trap l)

let test_no_check_no_trap_in_caller () =
  let caller, _ = caller_callee () in
  let e = Emit.emit_func ~opts:Opts.default caller in
  Alcotest.(check bool) "plain call site has no trap" false
    (List.mem Insn.Trap (insns_of e))

let test_odd_pre_rejected () =
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1 ];
      post_syms = [ bt 3 ];
      setup = Opts.Push_setup;
      array_global = None;
      avx_pad = 0;
      dummy_sym = None;
      check_sym = None;
    }
  in
  match Emit.emit_func ~opts:(plan_opts plan) caller with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd pre count must be rejected (stack alignment)"

let test_post_mismatch_rejected () =
  let caller, _ = caller_callee () in
  let plan =
    {
      Opts.pre_syms = [ bt 1; bt 2 ];
      post_syms = [ bt 3; bt 4 ];
      (* callee expects 1 *)
      setup = Opts.Push_setup;
      array_global = None;
      avx_pad = 0;
      dummy_sym = None;
      check_sym = None;
    }
  in
  match Emit.emit_func ~opts:(plan_opts ~post_words:1 plan) caller with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "post count must match the callee's post offset"

let test_prolog_traps_jumped_over () =
  let caller, _ = caller_callee () in
  let opts = { Opts.default with Opts.prolog_traps = (fun ~fname:_ -> 3) } in
  let e = Emit.emit_func ~opts caller in
  let l = insns_of e in
  (* Entry is a jump, followed by the traps. *)
  (match l with
  | Insn.Jmp _ :: Insn.Trap :: Insn.Trap :: Insn.Trap :: _ -> ()
  | _ -> Alcotest.fail "prolog traps must follow an entry jump");
  Alcotest.(check int) "three traps" 3 (count (fun i -> i = Insn.Trap) l)

let test_frame_alignment_invariant () =
  (* For every function and post-offset choice: frame + 8*post = 8 mod 16,
     so call sites sit at 16-byte-aligned rsp. *)
  List.iter
    (fun post_words ->
      let opts =
        { Opts.default with Opts.post_offset_words = (fun ~fname:_ -> post_words) }
      in
      List.iter
        (fun (_, (p : Ir.program)) ->
          List.iter
            (fun f ->
              let e = Emit.emit_func ~opts f in
              (* Recover the frame size from the first sub rsp, N after the
                 optional post-offset sub. *)
              let subs =
                List.filter_map
                  (function Insn.Binop (Sub, RSP, Imm (Abs n)) -> Some n | _ -> None)
                  (insns_of e)
              in
              match subs with
              | [] -> ()
              | first :: rest ->
                  let frame = if post_words > 0 then List.nth_opt rest 0 else Some first in
                  (match frame with
                  | Some fr ->
                      Alcotest.(check int)
                        (Printf.sprintf "%s post=%d frame=%d" f.Ir.name post_words fr)
                        8
                        ((fr + (8 * post_words)) land 15)
                  | None -> ()))
            p.funcs)
        [ ("fib", Samples.fib_prog 3); ("stack", Samples.stack_args_prog) ])
    [ 0; 1; 2; 3; 4 ]

let suite =
  [
    ( "emit",
      [
        Alcotest.test_case "push setup (Figure 3)" `Quick test_push_setup_figure3;
        Alcotest.test_case "avx setup (Figure 4)" `Quick test_avx_setup_figure4;
        Alcotest.test_case "avx512 batches" `Quick test_avx512_batches;
        Alcotest.test_case "naive dummy slot" `Quick test_naive_setup_has_dummy_in_ra_slot;
        Alcotest.test_case "check sequence" `Quick test_check_sequence;
        Alcotest.test_case "no spurious traps" `Quick test_no_check_no_trap_in_caller;
        Alcotest.test_case "odd pre rejected" `Quick test_odd_pre_rejected;
        Alcotest.test_case "post mismatch rejected" `Quick test_post_mismatch_rejected;
        Alcotest.test_case "prolog traps jumped" `Quick test_prolog_traps_jumped_over;
        Alcotest.test_case "frame alignment invariant" `Quick test_frame_alignment_invariant;
      ] );
  ]
