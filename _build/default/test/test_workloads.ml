module Spec = R2c_workloads.Spec
module Webserver = R2c_workloads.Webserver
module Genprog = R2c_workloads.Genprog
module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
open R2c_machine

let interp_output ?(fuel = 100_000_000) p =
  match Interp.run ~fuel p with
  | Ok r -> (r.Interp.output, r.Interp.exit_code)
  | Error e -> Alcotest.failf "interp: %s" (Interp.error_to_string e)

let machine_output ?(strict = true) img =
  let p = Process.start ~strict_align:strict ~fuel:100_000_000 img in
  match Process.run p with
  | Process.Exited code -> (Process.output p, code)
  | o -> Alcotest.failf "machine: %s" (Process.outcome_to_string o)

let test_spec_names () =
  let names = List.map (fun (b : Spec.benchmark) -> b.name) (Spec.all ()) in
  Alcotest.(check int) "twelve benchmarks" 12 (List.length names);
  Alcotest.(check (list string)) "paper order"
    [ "perlbench"; "gcc"; "mcf"; "lbm"; "omnetpp"; "xalancbmk"; "x264"; "deepsjeng";
      "imagick"; "leela"; "nab"; "xz" ]
    names

let test_spec_baseline_differential () =
  List.iter
    (fun (b : Spec.benchmark) ->
      let expected = interp_output b.program in
      let got = machine_output (R2c_compiler.Driver.compile b.program) in
      Alcotest.(check (pair string int)) (b.name ^ " baseline") expected got)
    (Spec.all ())

let test_spec_full_r2c_differential () =
  (* The whole suite under the full Figure 6 configuration. *)
  List.iter
    (fun (b : Spec.benchmark) ->
      let expected = interp_output b.program in
      let got = machine_output (Pipeline.compile ~seed:21 (Dconfig.full ()) b.program) in
      Alcotest.(check (pair string int)) (b.name ^ " full R2C") expected got)
    (Spec.all ())

let test_spec_call_ordering_matches_paper () =
  (* nab must dominate, lbm must be negligible — Table 2's anchors. *)
  let counts =
    List.map
      (fun (b : Spec.benchmark) ->
        let img = R2c_compiler.Driver.compile b.program in
        let p = Process.start img in
        (match Process.run p with
        | Process.Exited 0 -> ()
        | o -> Alcotest.failf "%s: %s" b.name (Process.outcome_to_string o));
        (b.name, Process.calls p))
      (Spec.all ())
  in
  let get n = List.assoc n counts in
  Alcotest.(check bool) "nab has the most calls" true
    (List.for_all (fun (n, c) -> n = "nab" || c < get "nab") counts);
  Alcotest.(check bool) "lbm has the fewest" true
    (List.for_all (fun (n, c) -> n = "lbm" || c > get "lbm") counts);
  Alcotest.(check bool) "mcf second" true
    (List.for_all (fun (n, c) -> n = "nab" || n = "mcf" || c < get "mcf") counts)

let test_spec_scale_parameter () =
  let small = Spec.find ~scale:0.5 "perlbench" in
  let big = Spec.find ~scale:1.0 "perlbench" in
  let calls p =
    let img = R2c_compiler.Driver.compile p in
    let proc = Process.start img in
    match Process.run proc with
    | Process.Exited 0 -> Process.calls proc
    | o -> Alcotest.failf "%s" (Process.outcome_to_string o)
  in
  Alcotest.(check bool) "scale halves work" true
    (calls small.Spec.program * 3 / 2 < calls big.Spec.program)

let test_webserver_differential () =
  List.iter
    (fun fl ->
      let p = Webserver.server fl ~requests:120 in
      let expected = interp_output p in
      Alcotest.(check (pair string int))
        "baseline" expected
        (machine_output (R2c_compiler.Driver.compile p));
      Alcotest.(check (pair string int))
        "full R2C" expected
        (machine_output (Pipeline.compile ~seed:5 (Dconfig.full ()) p)))
    [ `Nginx; `Apache ]

let test_webserver_apache_more_calls () =
  let calls fl =
    let img = R2c_compiler.Driver.compile (Webserver.server fl ~requests:100) in
    let p = Process.start img in
    match Process.run p with
    | Process.Exited 0 -> Process.calls p
    | o -> Alcotest.failf "%s" (Process.outcome_to_string o)
  in
  Alcotest.(check bool) "apache's hook chain costs calls" true
    (calls `Apache > calls `Nginx)

let test_saturation_curve () =
  let curve = Webserver.saturation_curve ~cpu_rate:100.0 ~connections:[ 1; 8; 24; 48; 96 ] in
  (* Monotone non-decreasing and capped at the CPU-bound rate. *)
  let rates = List.map snd curve in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone rates);
  List.iter (fun r -> Alcotest.(check bool) "capped" true (r <= 100.0)) rates;
  Alcotest.(check (float 1e-9)) "saturates" 100.0 (List.nth rates 4)

let test_genprog_deterministic () =
  let a = Genprog.generate ~seed:9 ~funcs:30 in
  let b = Genprog.generate ~seed:9 ~funcs:30 in
  Alcotest.(check string) "same program" (Pretty.program a) (Pretty.program b);
  let c = Genprog.generate ~seed:10 ~funcs:30 in
  Alcotest.(check bool) "different seed differs" true (Pretty.program a <> Pretty.program c)

let test_genprog_validates () =
  List.iter
    (fun seed ->
      let p = Genprog.generate ~seed ~funcs:25 in
      match Validate.check p with
      | [] -> ()
      | errs ->
          Alcotest.failf "seed %d: %s" seed
            (String.concat "; " (List.map Validate.error_to_string errs)))
    [ 1; 2; 3; 4; 5 ]

let test_genprog_differential () =
  List.iter
    (fun seed ->
      let p = Genprog.generate ~seed ~funcs:40 in
      let expected = interp_output p in
      Alcotest.(check (pair string int))
        (Printf.sprintf "seed %d" seed)
        expected
        (machine_output (Pipeline.compile ~seed:(seed * 3) (Dconfig.full ()) p)))
    [ 11; 12; 13 ]

let test_browser_differential () =
  let p = R2c_workloads.Browser.program ~pages:4 in
  let expected = interp_output p in
  Alcotest.(check (pair string int))
    "baseline" expected
    (machine_output (R2c_compiler.Driver.compile p));
  List.iter
    (fun (name, cfg) ->
      Alcotest.(check (pair string int))
        name expected
        (machine_output (Pipeline.compile ~seed:9 cfg p)))
    [
      ("full avx", Dconfig.full ());
      ("full push", Dconfig.full ~setup:Dconfig.Push ());
      ("full checked", Dconfig.full_checked);
    ]

let test_browser_unwind_depth () =
  (* The layout leaf reports its unwind-table frame count; under full R2C it
     must equal the interpreter's call depth (main + page loop functions +
     7 levels of bk_layout). *)
  let p = R2c_workloads.Browser.program ~pages:1 in
  let out, _ = interp_output p in
  let lines = String.split_on_char '\n' out in
  let depth = List.nth lines 2 in
  Alcotest.(check string) "depth is 8 frames" "8" depth

let test_vulnapp_stub_gadget_present () =
  (* The libc-model stubs must provide the classic gadget the ROP
     experiments rely on. *)
  let img = R2c_workloads.Vulnapp.build ~seed:2 R2c_core.Dconfig.baseline in
  let g =
    R2c_attacks.Reference.find_gadget
      (fun a -> Image.code_at img a)
      ~first:img.Image.text_base ~len:img.Image.text_len
  in
  Alcotest.(check bool) "pop rdi; ret exists" true (g <> None)

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "spec names" `Quick test_spec_names;
        Alcotest.test_case "spec baseline differential" `Quick test_spec_baseline_differential;
        Alcotest.test_case "spec full R2C differential" `Quick test_spec_full_r2c_differential;
        Alcotest.test_case "spec call ordering" `Quick test_spec_call_ordering_matches_paper;
        Alcotest.test_case "spec scale parameter" `Quick test_spec_scale_parameter;
        Alcotest.test_case "webserver differential" `Quick test_webserver_differential;
        Alcotest.test_case "apache hook calls" `Quick test_webserver_apache_more_calls;
        Alcotest.test_case "saturation curve" `Quick test_saturation_curve;
        Alcotest.test_case "genprog deterministic" `Quick test_genprog_deterministic;
        Alcotest.test_case "genprog validates" `Quick test_genprog_validates;
        Alcotest.test_case "genprog differential" `Quick test_genprog_differential;
        Alcotest.test_case "stub gadget present" `Quick test_vulnapp_stub_gadget_present;
        Alcotest.test_case "browser differential" `Quick test_browser_differential;
        Alcotest.test_case "browser unwind depth" `Quick test_browser_unwind_depth;
      ] );
  ]
