module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Rop = R2c_attacks.Rop
module Jitrop = R2c_attacks.Jitrop
module Indirect_jitrop = R2c_attacks.Indirect_jitrop
module Aocr = R2c_attacks.Aocr
module Pirop = R2c_attacks.Pirop
module Blindrop = R2c_attacks.Blindrop
module Defenses = R2c_defenses.Defenses
module Vulnapp = R2c_workloads.Vulnapp
module Rng = R2c_util.Rng
module Process = R2c_machine.Process

(* The attacker's reference copy always uses a different seed than the
   victim: under no/static diversification the binaries coincide (the
   monoculture); under per-binary diversification every transferred offset
   is potentially stale. *)
let scenario (d : Defenses.t) ~seed =
  let target_img = Defenses.build_vulnapp d ~seed in
  let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 1000)) in
  let relink =
    if d.Defenses.rerandomize then begin
      let counter = ref 0 in
      Some
        (fun () ->
          incr counter;
          Defenses.build_vulnapp d ~seed:(seed + (7777 * !counter)))
    end
    else None
  in
  let target = Oracle.attach ?relink ~break_sym:Vulnapp.break_symbol target_img in
  (reference, target)

let check_result name ~expect_success ?expect_detected (r : Report.t) =
  Alcotest.(check bool)
    (Printf.sprintf "%s success (%s)" name (Report.to_string r))
    expect_success r.Report.success;
  match expect_detected with
  | Some d -> Alcotest.(check bool) (name ^ " detected") d r.Report.detected
  | None -> ()

let rate (runs : Report.t list) = List.length (List.filter (fun r -> r.Report.success) runs)

let trials n f = List.init n (fun i -> f (i + 1))

(* --- benign behaviour under every defense model --- *)

let test_vulnapp_benign () =
  let expected =
    match Interp.run ~input:[] (Vulnapp.program ()) with
    | Ok r -> r.Interp.output
    | Error e -> Alcotest.failf "interp: %s" (Interp.error_to_string e)
  in
  List.iter
    (fun (d : Defenses.t) ->
      let img = Defenses.build_vulnapp d ~seed:3 in
      let proc = Process.start img in
      (match Process.run proc with
      | Process.Exited 0 -> ()
      | o -> Alcotest.failf "%s: %s" d.Defenses.name (Process.outcome_to_string o));
      Alcotest.(check string) (d.Defenses.name ^ " output") expected (Process.output proc))
    Defenses.all

let test_reference_measure_all_models () =
  List.iter
    (fun (d : Defenses.t) ->
      let r = Reference.measure (Defenses.build_vulnapp d ~seed:11) in
      Alcotest.(check bool) (d.Defenses.name ^ " ra_off sane") true (r.Reference.ra_off > 0);
      Alcotest.(check bool)
        (d.Defenses.name ^ " buf below ra")
        true
        (r.Reference.buf_off < r.Reference.ra_off);
      Alcotest.(check bool)
        (d.Defenses.name ^ " gadget found")
        true
        (r.Reference.pop_rdi <> None))
    Defenses.all

(* --- classic ROP --- *)

let test_rop_vs_unprotected () =
  (* Identical binaries: reference knowledge is exact. *)
  let target_img = Defenses.build_vulnapp Defenses.unprotected ~seed:5 in
  let reference = Reference.measure (Defenses.build_vulnapp Defenses.unprotected ~seed:99) in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol target_img in
  check_result "rop vs unprotected" ~expect_success:true (Rop.run ~reference ~target)

let test_rop_vs_r2c () =
  let runs =
    trials 5 (fun seed ->
        let reference, target = scenario Defenses.r2c ~seed in
        Rop.run ~reference ~target)
  in
  Alcotest.(check int) "rop never succeeds vs R2C" 0 (rate runs)

let test_rop_vs_aslr_fails () =
  let runs =
    trials 3 (fun seed ->
        let reference, target = scenario Defenses.aslr ~seed in
        Rop.run ~reference ~target)
  in
  Alcotest.(check int) "rop blind vs ASLR fails" 0 (rate runs)

(* --- JIT-ROP --- *)

let test_jitrop_vs_unprotected () =
  let reference, target = scenario Defenses.unprotected ~seed:2 in
  check_result "jitrop vs unprotected" ~expect_success:true (Jitrop.run ~reference ~target)

let test_jitrop_vs_aslr () =
  (* Runtime disclosure defeats sliding. *)
  let reference, target = scenario Defenses.aslr ~seed:4 in
  check_result "jitrop vs aslr" ~expect_success:true (Jitrop.run ~reference ~target)

let test_jitrop_vs_xom () =
  (* Execute-only memory stops the disclosure read. *)
  List.iter
    (fun d ->
      let reference, target = scenario d ~seed:6 in
      let r = Jitrop.run ~reference ~target in
      check_result ("jitrop vs " ^ d.Defenses.name) ~expect_success:false r;
      Alcotest.(check bool)
        (d.Defenses.name ^ ": disclosure crashed")
        true
        (r.Report.crashes > 0 || r.Report.notes <> []))
    [ Defenses.readactor; Defenses.r2c ]

(* --- indirect JIT-ROP --- *)

let test_indirect_vs_aslr () =
  let reference, target = scenario Defenses.aslr ~seed:8 in
  check_result "indirect vs aslr" ~expect_success:true
    (Indirect_jitrop.run ~reference ~target)

let test_indirect_vs_shuffling () =
  let runs =
    trials 4 (fun seed ->
        let reference, target = scenario Defenses.readactor ~seed in
        Indirect_jitrop.run ~reference ~target)
  in
  Alcotest.(check int) "indirect vs readactor fails" 0 (rate runs)

let test_indirect_vs_r2c () =
  let runs =
    trials 5 (fun seed ->
        let reference, target = scenario Defenses.r2c ~seed in
        Indirect_jitrop.run ~reference ~target)
  in
  Alcotest.(check int) "indirect vs R2C fails" 0 (rate runs)

(* --- AOCR --- *)

let test_aocr_vs_unprotected () =
  let reference, target = scenario Defenses.unprotected ~seed:10 in
  check_result "aocr vs unprotected" ~expect_success:true
    (Aocr.run ~rng:(Rng.create 1) ~reference ~target ())

let test_aocr_vs_aslr () =
  let reference, target = scenario Defenses.aslr ~seed:12 in
  check_result "aocr vs aslr" ~expect_success:true
    (Aocr.run ~rng:(Rng.create 2) ~reference ~target ())

let test_aocr_vs_readactor () =
  (* The paper's headline: AOCR defeats leakage-resilient code-only
     diversification. *)
  let reference, target = scenario Defenses.readactor ~seed:14 in
  check_result "aocr vs readactor" ~expect_success:true
    (Aocr.run ~rng:(Rng.create 3) ~reference ~target ())

let test_aocr_vs_tasr () =
  (* Re-randomizing code does not help: AOCR is address-oblivious. *)
  let reference, target = scenario Defenses.tasr ~seed:16 in
  check_result "aocr vs tasr" ~expect_success:true
    (Aocr.run ~rng:(Rng.create 4) ~reference ~target ())

let test_aocr_vs_r2c () =
  let runs =
    trials 8 (fun seed ->
        let reference, target = scenario Defenses.r2c ~seed in
        Aocr.run ~rng:(Rng.create (seed * 31)) ~reference ~target ())
  in
  Alcotest.(check int) "aocr vs R2C never succeeds" 0 (rate runs);
  (* The reactive component: BTDP guard pages catch most campaigns. *)
  let detections = List.length (List.filter (fun r -> r.Report.detected) runs) in
  Alcotest.(check bool)
    (Printf.sprintf "aocr vs R2C mostly detected (%d/8)" detections)
    true (detections >= 4)

(* --- PIROP --- *)

let test_pirop_vs_aslr () =
  let reference, target = scenario Defenses.aslr ~seed:18 in
  check_result "pirop vs aslr" ~expect_success:true
    (Pirop.run ~reference ~target ())

let test_pirop_vs_r2c () =
  let runs =
    trials 5 (fun seed ->
        let reference, target = scenario Defenses.r2c ~seed in
        Pirop.run ~reference ~target ())
  in
  Alcotest.(check int) "pirop vs R2C fails" 0 (rate runs)

(* --- Blind ROP --- *)

let test_blindrop_vs_unprotected () =
  let _, target = scenario Defenses.unprotected ~seed:20 in
  check_result "blindrop vs unprotected" ~expect_success:true
    (Blindrop.run ~probe_budget:6000 ~target ())

let test_blindrop_vs_r2c_detected () =
  (* BROP's precondition is a non-PIE worker-respawning server; R2C's
     booby traps are what stops it there (Section 4.1). *)
  let r2c_nopie =
    { Defenses.r2c with Defenses.cfg = { (R2c_core.Dconfig.full ()) with aslr = false } }
  in
  let _, target = scenario r2c_nopie ~seed:22 in
  let r = Blindrop.run ~probe_budget:20000 ~target () in
  check_result "blindrop vs R2C" ~expect_success:false ~expect_detected:true r

let suite =
  [
    ( "attacks",
      [
        Alcotest.test_case "vulnapp benign everywhere" `Quick test_vulnapp_benign;
        Alcotest.test_case "reference measurement" `Quick test_reference_measure_all_models;
        Alcotest.test_case "rop vs unprotected" `Quick test_rop_vs_unprotected;
        Alcotest.test_case "rop vs r2c" `Quick test_rop_vs_r2c;
        Alcotest.test_case "rop vs aslr" `Quick test_rop_vs_aslr_fails;
        Alcotest.test_case "jitrop vs unprotected" `Quick test_jitrop_vs_unprotected;
        Alcotest.test_case "jitrop vs aslr" `Quick test_jitrop_vs_aslr;
        Alcotest.test_case "jitrop vs xom" `Quick test_jitrop_vs_xom;
        Alcotest.test_case "indirect vs aslr" `Quick test_indirect_vs_aslr;
        Alcotest.test_case "indirect vs shuffling" `Quick test_indirect_vs_shuffling;
        Alcotest.test_case "indirect vs r2c" `Quick test_indirect_vs_r2c;
        Alcotest.test_case "aocr vs unprotected" `Quick test_aocr_vs_unprotected;
        Alcotest.test_case "aocr vs aslr" `Quick test_aocr_vs_aslr;
        Alcotest.test_case "aocr vs readactor" `Quick test_aocr_vs_readactor;
        Alcotest.test_case "aocr vs tasr" `Quick test_aocr_vs_tasr;
        Alcotest.test_case "aocr vs r2c" `Quick test_aocr_vs_r2c;
        Alcotest.test_case "pirop vs aslr" `Quick test_pirop_vs_aslr;
        Alcotest.test_case "pirop vs r2c" `Quick test_pirop_vs_r2c;
        Alcotest.test_case "blindrop vs unprotected" `Quick test_blindrop_vs_unprotected;
        Alcotest.test_case "blindrop vs r2c detected" `Quick test_blindrop_vs_r2c_detected;
      ] );
  ]
