(* Shared sample IR programs exercising every language feature; used by the
   IR interpreter tests and by the compiler differential tests. *)

open Ir
module B = Builder

(* main prints a few arithmetic results. *)
let arith_prog =
  let fb = B.func "main" ~nparams:0 in
  let x = B.mov fb (Const 10) in
  let y = B.binop fb Mul x (Const 7) in
  let z = B.binop fb Sub y (Const 4) in
  B.call_void fb (Builtin "print_int") [ z ];
  let q = B.binop fb Div z (Const 5) in
  let r = B.binop fb Rem z (Const 5) in
  B.call_void fb (Builtin "print_int") [ q ];
  B.call_void fb (Builtin "print_int") [ r ];
  let a = B.binop fb And (Const 0b1100) (Const 0b1010) in
  let o = B.binop fb Or (Const 0b1100) (Const 0b1010) in
  let e = B.binop fb Xor (Const 0b1100) (Const 0b1010) in
  B.call_void fb (Builtin "print_int") [ a ];
  B.call_void fb (Builtin "print_int") [ o ];
  B.call_void fb (Builtin "print_int") [ e ];
  let s = B.binop fb Shl (Const 3) (Const 4) in
  let t = B.binop fb Shr s (Const 2) in
  let u = B.binop fb Sar (Const (-64)) (Const 3) in
  B.call_void fb (Builtin "print_int") [ s ];
  B.call_void fb (Builtin "print_int") [ t ];
  B.call_void fb (Builtin "print_int") [ u ];
  B.ret fb (Some (Const 0));
  B.program ~main:"main" [ B.finish fb ] []

(* Recursive fibonacci, printed. *)
let fib_prog n =
  let fib = B.func "fib" ~nparams:1 in
  let n0 = B.param 0 in
  let base = B.new_block fib and rec_ = B.new_block fib in
  let c = B.cmp fib Lt n0 (Const 2) in
  B.cond_br fib c base rec_;
  B.switch_to fib base;
  B.ret fib (Some n0);
  B.switch_to fib rec_;
  let a = B.binop fib Sub n0 (Const 1) in
  let fa = B.call fib (Direct "fib") [ a ] in
  let b = B.binop fib Sub n0 (Const 2) in
  let fb_ = B.call fib (Direct "fib") [ b ] in
  let s = B.binop fib Add fa fb_ in
  B.ret fib (Some s);
  let main = B.func "main" ~nparams:0 in
  let r = B.call main (Direct "fib") [ Const n ] in
  B.call_void main (Builtin "print_int") [ r ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish fib; B.finish main ] []

(* Iterative loop over a stack-allocated array. *)
let loop_prog n =
  let main = B.func "main" ~nparams:0 in
  let arr = B.slot main (8 * 16) in
  let ctr = B.slot main 8 in
  let header = B.new_block main and body = B.new_block main and fin = B.new_block main in
  let arr_addr = B.slot_addr main arr in
  let ctr_addr = B.slot_addr main ctr in
  (* Locals are not implicitly zero: clear the array first (the machine's
     stack may hold residue from earlier frames, e.g. the BTDP
     constructor's). *)
  for k = 0 to 15 do
    B.store main arr_addr (8 * k) (Const 0)
  done;
  B.store main ctr_addr 0 (Const 0);
  B.br main header;
  B.switch_to main header;
  let i = B.load main ctr_addr 0 in
  let c = B.cmp main Lt i (Const n) in
  B.cond_br main c body fin;
  B.switch_to main body;
  let i2 = B.load main ctr_addr 0 in
  let slot16 = B.binop main Rem i2 (Const 16) in
  let off = B.binop main Mul slot16 (Const 8) in
  let addr = B.binop main Add arr_addr off in
  let old = B.load main addr 0 in
  let nv = B.binop main Add old i2 in
  B.store main addr 0 nv;
  let i3 = B.binop main Add i2 (Const 1) in
  B.store main ctr_addr 0 i3;
  B.br main header;
  B.switch_to main fin;
  (* Print the checksum of the array. *)
  let acc = B.slot main 8 in
  let acc_addr = B.slot_addr main acc in
  B.store main acc_addr 0 (Const 0);
  let h2 = B.new_block main and b2 = B.new_block main and f2 = B.new_block main in
  B.store main ctr_addr 0 (Const 0);
  B.br main h2;
  B.switch_to main h2;
  let j = B.load main ctr_addr 0 in
  let c2 = B.cmp main Lt j (Const 16) in
  B.cond_br main c2 b2 f2;
  B.switch_to main b2;
  let j2 = B.load main ctr_addr 0 in
  let off2 = B.binop main Mul j2 (Const 8) in
  let addr2 = B.binop main Add arr_addr off2 in
  let v = B.load main addr2 0 in
  let a0 = B.load main acc_addr 0 in
  let a1 = B.binop main Add a0 v in
  B.store main acc_addr 0 a1;
  let j3 = B.binop main Add j2 (Const 1) in
  B.store main ctr_addr 0 j3;
  B.br main h2;
  B.switch_to main f2;
  let final = B.load main acc_addr 0 in
  B.call_void main (Builtin "print_int") [ final ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] []

(* Globals: words, symbol references, strings. *)
let global_prog =
  let greeting = B.global "greeting" ~size:16 [ Str "hello, r2c\000" ] in
  let counter = B.global "counter" ~size:8 [ Word 5 ] in
  let table = B.global "table" ~size:24 [ Word 100; Word 200; Word 300 ] in
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Builtin "print_str") [ Global "greeting" ];
  let c = B.load main (Global "counter") 0 in
  B.call_void main (Builtin "print_int") [ c ];
  B.store main (Global "counter") 0 (Const 9);
  let c2 = B.load main (Global "counter") 0 in
  B.call_void main (Builtin "print_int") [ c2 ];
  let t1 = B.load main (Global "table") 8 in
  B.call_void main (Builtin "print_int") [ t1 ];
  (* Byte access into the string. *)
  let b = B.load8 main (Global "greeting") 7 in
  B.call_void main (Builtin "print_int") [ b ];
  B.store8 main (Global "greeting") 0 (Const (Char.code 'H'));
  B.call_void main (Builtin "print_str") [ Global "greeting" ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] [ greeting; counter; table ]

(* Stack arguments: 9 parameters forces 3 onto the stack. *)
let stack_args_prog =
  let sum9 = B.func "sum9" ~nparams:9 in
  let acc = ref (B.param 0) in
  for i = 1 to 8 do
    acc := B.binop sum9 Add !acc (B.param i)
  done;
  B.ret sum9 (Some !acc);
  let weigh = B.func "weigh" ~nparams:9 in
  (* Weighted: arg_i * (i+1), uses stack args repeatedly. *)
  let acc = ref (Const 0) in
  for i = 0 to 8 do
    let w = B.binop weigh Mul (B.param i) (Const (i + 1)) in
    acc := B.binop weigh Add !acc w
  done;
  B.ret weigh (Some !acc);
  let main = B.func "main" ~nparams:0 in
  let args = List.init 9 (fun i -> Ir.Const (i + 1)) in
  let s = B.call main (Direct "sum9") args in
  B.call_void main (Builtin "print_int") [ s ];
  let w = B.call main (Direct "weigh") args in
  B.call_void main (Builtin "print_int") [ w ];
  (* Nested: an 8-arg call inside a function that itself has stack args. *)
  let sum8 = B.func "sum8" ~nparams:8 in
  let acc = ref (B.param 0) in
  for i = 1 to 7 do
    acc := B.binop sum8 Add !acc (B.param i)
  done;
  B.ret sum8 (Some !acc);
  let outer = B.func "outer" ~nparams:7 in
  let inner_args = List.init 8 (fun i -> if i < 7 then Ir.Var i else Ir.Const 80) in
  let r = B.call outer (Direct "sum8") inner_args in
  let r2 = B.binop outer Add r (B.param 6) in
  B.ret outer (Some r2);
  let o = B.call main (Direct "outer") (List.init 7 (fun i -> Ir.Const (10 + i))) in
  B.call_void main (Builtin "print_int") [ o ];
  B.ret main (Some (Const 0));
  B.program ~main:"main"
    [ B.finish sum9; B.finish weigh; B.finish sum8; B.finish outer; B.finish main ]
    []

(* Indirect calls through a function-pointer table in the data section. *)
let indirect_prog =
  let double_ = B.func "double" ~nparams:1 in
  let r = B.binop double_ Add (B.param 0) (B.param 0) in
  B.ret double_ (Some r);
  let square = B.func "square" ~nparams:1 in
  let r = B.binop square Mul (B.param 0) (B.param 0) in
  B.ret square (Some r);
  let negate = B.func "negate" ~nparams:1 in
  let r = B.binop negate Sub (Const 0) (B.param 0) in
  B.ret negate (Some r);
  let table =
    B.global "dispatch" ~size:24 [ Sym_addr "double"; Sym_addr "square"; Sym_addr "negate" ]
  in
  let main = B.func "main" ~nparams:0 in
  for i = 0 to 2 do
    let fp = B.load main (Global "dispatch") (8 * i) in
    let v = B.call main (Indirect fp) [ Const 7 ] in
    B.call_void main (Builtin "print_int") [ v ]
  done;
  (* Function address as a first-class value. *)
  let v = B.call main (Indirect (Func "square")) [ Const 9 ] in
  B.call_void main (Builtin "print_int") [ v ];
  B.ret main (Some (Const 0));
  B.program ~main:"main"
    [ B.finish double_; B.finish square; B.finish negate; B.finish main ]
    [ table ]

(* Heap: build a linked list, sum it, free it. *)
let heap_prog n =
  let main = B.func "main" ~nparams:0 in
  let head = B.slot main 8 in
  let ctr = B.slot main 8 in
  let head_addr = B.slot_addr main head in
  let ctr_addr = B.slot_addr main ctr in
  B.store main head_addr 0 (Const 0);
  B.store main ctr_addr 0 (Const 0);
  let h = B.new_block main and b = B.new_block main and f = B.new_block main in
  B.br main h;
  B.switch_to main h;
  let i = B.load main ctr_addr 0 in
  let c = B.cmp main Lt i (Const n) in
  B.cond_br main c b f;
  B.switch_to main b;
  let node = B.call main (Builtin "malloc") [ Const 16 ] in
  let i2 = B.load main ctr_addr 0 in
  B.store main node 0 i2;
  let old = B.load main head_addr 0 in
  B.store main node 8 old;
  B.store main head_addr 0 node;
  let i3 = B.binop main Add i2 (Const 1) in
  B.store main ctr_addr 0 i3;
  B.br main h;
  B.switch_to main f;
  (* Walk and sum, freeing as we go. *)
  let sum = B.slot main 8 in
  let sum_addr = B.slot_addr main sum in
  B.store main sum_addr 0 (Const 0);
  let wh = B.new_block main and wb = B.new_block main and wf = B.new_block main in
  B.br main wh;
  B.switch_to main wh;
  let cur = B.load main head_addr 0 in
  let nonzero = B.cmp main Ne cur (Const 0) in
  B.cond_br main nonzero wb wf;
  B.switch_to main wb;
  let cur2 = B.load main head_addr 0 in
  let v = B.load main cur2 0 in
  let s0 = B.load main sum_addr 0 in
  let s1 = B.binop main Add s0 v in
  B.store main sum_addr 0 s1;
  let next = B.load main cur2 8 in
  B.store main head_addr 0 next;
  B.call_void main (Builtin "free") [ cur2 ];
  B.br main wh;
  B.switch_to main wf;
  let final = B.load main sum_addr 0 in
  B.call_void main (Builtin "print_int") [ final ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] []

(* Byte-level work: checksum over a buffer filled bytewise. *)
let byte_prog =
  let main = B.func "main" ~nparams:0 in
  let buf = B.slot main 64 in
  let buf_addr = B.slot_addr main buf in
  let i_slot = B.slot main 8 in
  let i_addr = B.slot_addr main i_slot in
  B.store main i_addr 0 (Const 0);
  let h = B.new_block main and b = B.new_block main and f = B.new_block main in
  B.br main h;
  B.switch_to main h;
  let i = B.load main i_addr 0 in
  let c = B.cmp main Lt i (Const 64) in
  B.cond_br main c b f;
  B.switch_to main b;
  let i2 = B.load main i_addr 0 in
  let v = B.binop main Mul i2 (Const 3) in
  let v2 = B.binop main And v (Const 0xff) in
  let addr = B.binop main Add buf_addr i2 in
  B.store8 main addr 0 v2;
  let i3 = B.binop main Add i2 (Const 1) in
  B.store main i_addr 0 i3;
  B.br main h;
  B.switch_to main f;
  (* Sum the bytes. *)
  let acc = B.slot main 8 in
  let acc_addr = B.slot_addr main acc in
  B.store main acc_addr 0 (Const 0);
  B.store main i_addr 0 (Const 0);
  let h2 = B.new_block main and b2 = B.new_block main and f2 = B.new_block main in
  B.br main h2;
  B.switch_to main h2;
  let i4 = B.load main i_addr 0 in
  let c2 = B.cmp main Lt i4 (Const 64) in
  B.cond_br main c2 b2 f2;
  B.switch_to main b2;
  let i5 = B.load main i_addr 0 in
  let addr2 = B.binop main Add buf_addr i5 in
  let byte = B.load8 main addr2 0 in
  let a0 = B.load main acc_addr 0 in
  let a1 = B.binop main Add a0 byte in
  B.store main acc_addr 0 a1;
  let i6 = B.binop main Add i5 (Const 1) in
  B.store main i_addr 0 i6;
  B.br main h2;
  B.switch_to main f2;
  let final = B.load main acc_addr 0 in
  B.call_void main (Builtin "print_int") [ final ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] []

(* Stack unwinding through diversified frames: nested calls — one with
   stack arguments — each reporting the backtrace builtin's frame count.
   Differential equality with the interpreter's call depth proves the
   unwind tables (Section 7.2.4) hold through BTRA pre/post offsets. *)
let backtrace_prog =
  let leaf = B.func "bt_leaf" ~nparams:8 in
  let d = B.call leaf (Builtin "backtrace") [] in
  let sum = B.binop leaf Add (B.param 6) (B.param 7) in
  let r = B.binop leaf Mul d (Const 100) in
  B.ret leaf (Some (B.binop leaf Add r sum));
  let mid = B.func "bt_mid" ~nparams:1 in
  let d = B.call mid (Builtin "backtrace") [] in
  B.call_void mid (Builtin "print_int") [ d ];
  let args = List.init 8 (fun i -> Ir.Const (i + 1)) in
  let v = B.call mid (Direct "bt_leaf") args in
  B.call_void mid (Builtin "print_int") [ v ];
  let r = B.binop mid Add v (B.param 0) in
  B.ret mid (Some r);
  let outer = B.func "bt_outer" ~nparams:1 in
  let v = B.call outer (Direct "bt_mid") [ B.param 0 ] in
  B.ret outer (Some v);
  let main = B.func "main" ~nparams:0 in
  let d0 = B.call main (Builtin "backtrace") [] in
  B.call_void main (Builtin "print_int") [ d0 ];
  let v = B.call main (Direct "bt_outer") [ Const 9 ] in
  B.call_void main (Builtin "print_int") [ v ];
  (* Recursive depth reporting. *)
  let deep = B.func "bt_deep" ~nparams:1 in
  let base = B.new_block deep and rec_ = B.new_block deep in
  let c = B.cmp deep Le (B.param 0) (Const 0) in
  B.cond_br deep c base rec_;
  B.switch_to deep base;
  let d = B.call deep (Builtin "backtrace") [] in
  B.ret deep (Some d);
  B.switch_to deep rec_;
  let n' = B.binop deep Sub (B.param 0) (Const 1) in
  let r = B.call deep (Direct "bt_deep") [ n' ] in
  B.ret deep (Some r);
  let depth = B.call main (Direct "bt_deep") [ Const 6 ] in
  B.call_void main (Builtin "print_int") [ depth ];
  B.ret main (Some (Const 0));
  B.program ~main:"main"
    [ B.finish leaf; B.finish mid; B.finish outer; B.finish deep; B.finish main ]
    []

(* Exit-code propagation via the exit builtin, cutting main short. *)
let exit_prog =
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Builtin "print_int") [ Const 1 ];
  B.call_void main (Builtin "exit") [ Const 42 ];
  B.call_void main (Builtin "print_int") [ Const 2 ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] []

(* Deep register pressure: more live values than allocatable registers,
   forcing spills. *)
let pressure_prog =
  let main = B.func "main" ~nparams:0 in
  let vs = List.init 12 (fun i -> B.mov main (Const (i + 1))) in
  (* Keep them all live to the end, then combine. *)
  let acc =
    List.fold_left
      (fun acc v ->
        let m = B.binop main Mul v (Const 3) in
        B.binop main Add acc m)
      (Const 0) vs
  in
  (* And use the originals again so intervals span the folds. *)
  let acc2 = List.fold_left (fun a v -> B.binop main Add a v) acc vs in
  B.call_void main (Builtin "print_int") [ acc2 ];
  B.ret main (Some (Const 0));
  B.program ~main:"main" [ B.finish main ] []

let all =
  [
    ("arith", arith_prog);
    ("fib", fib_prog 12);
    ("loop", loop_prog 100);
    ("globals", global_prog);
    ("stack_args", stack_args_prog);
    ("indirect", indirect_prog);
    ("heap", heap_prog 20);
    ("bytes", byte_prog);
    ("exit", exit_prog);
    ("backtrace", backtrace_prog);
    ("pressure", pressure_prog);
  ]
