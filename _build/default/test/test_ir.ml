module B = Builder

let run_ok ?input p =
  match Interp.run ?input p with
  | Ok r -> r
  | Error e -> Alcotest.failf "interp failed: %s" (Interp.error_to_string e)

let test_validate_samples () =
  List.iter
    (fun (name, p) ->
      match Validate.check p with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s: %s" name
            (String.concat "; " (List.map Validate.error_to_string errs)))
    Samples.all

let test_validate_catches_unknown_call () =
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Direct "nonexistent") [];
  B.ret main (Some (Const 0));
  let p = B.program ~main:"main" [ B.finish main ] [] in
  Alcotest.(check bool) "error found" true (Validate.check p <> [])

let test_validate_catches_bad_label () =
  let f =
    {
      Ir.name = "main";
      nparams = 0;
      nvars = 0;
      slots = [||];
      blocks = [ { Ir.lbl = 0; body = []; term = Ir.Br 99 } ];
    }
  in
  let p = B.program ~main:"main" [ f ] [] in
  Alcotest.(check bool) "error found" true (Validate.check p <> [])

let test_validate_catches_arity_mismatch () =
  let f = B.func "f" ~nparams:2 in
  B.ret f (Some (B.param 0));
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Direct "f") [ Const 1 ];
  B.ret main (Some (Const 0));
  let p = B.program ~main:"main" [ B.finish f; B.finish main ] [] in
  Alcotest.(check bool) "error found" true (Validate.check p <> [])

let test_validate_catches_duplicate_names () =
  let f1 = B.func "f" ~nparams:0 in
  B.ret f1 None;
  let f2 = B.func "f" ~nparams:0 in
  B.ret f2 None;
  let main = B.func "main" ~nparams:0 in
  B.ret main (Some (Const 0));
  let p = B.program ~main:"main" [ B.finish f1; B.finish f2; B.finish main ] [] in
  Alcotest.(check bool) "error found" true (Validate.check p <> [])

let test_validate_catches_bad_main () =
  let f = B.func "notmain" ~nparams:0 in
  B.ret f None;
  let p = B.program ~main:"main" [ B.finish f ] [] in
  Alcotest.(check bool) "error found" true (Validate.check p <> [])

let test_interp_arith () =
  let r = run_ok Samples.arith_prog in
  Alcotest.(check string) "output" "66\n13\n1\n8\n14\n6\n48\n12\n-8\n" r.Interp.output;
  Alcotest.(check int) "exit" 0 r.Interp.exit_code

let test_interp_fib () =
  let r = run_ok (Samples.fib_prog 12) in
  Alcotest.(check string) "fib 12" "144\n" r.Interp.output

let test_interp_loop () =
  let r = run_ok (Samples.loop_prog 100) in
  (* sum 0..99 = 4950 accumulated over 16 buckets. *)
  Alcotest.(check string) "loop checksum" "4950\n" r.Interp.output

let test_interp_globals () =
  let r = run_ok Samples.global_prog in
  Alcotest.(check string) "globals" "hello, r2c\n5\n9\n200\n114\nHello, r2c\n" r.Interp.output

let test_interp_stack_args () =
  let r = run_ok Samples.stack_args_prog in
  (* sum9 1..9 = 45; weighted = sum i*(i+1)^... computed: sum_{i=1..9} i*i+...
     args are 1..9 with weights 1..9: sum i^2? arg_i = i+1-th value (i+1)?
     args = 1..9, weight i+1 for index i: sum (i+1)*(i+1) for i=0..8 = 285.
     outer: sum8(10..16, 80) + 16 = 91+80+16 = 187. *)
  Alcotest.(check string) "stack args" "45\n285\n187\n" r.Interp.output

let test_interp_indirect () =
  let r = run_ok Samples.indirect_prog in
  Alcotest.(check string) "indirect" "14\n49\n-7\n81\n" r.Interp.output

let test_interp_heap () =
  let r = run_ok (Samples.heap_prog 20) in
  Alcotest.(check string) "heap sum 0..19" "190\n" r.Interp.output

let test_interp_bytes () =
  let r = run_ok Samples.byte_prog in
  (* sum of (3*i mod 256) for i in 0..63 = 3*sum(0..63) = 6048, minus wrap:
     3*i < 256 for i < 86, so no wrap: 6048. *)
  Alcotest.(check string) "bytes" "6048\n" r.Interp.output

let test_interp_exit () =
  let r = run_ok Samples.exit_prog in
  Alcotest.(check int) "exit code" 42 r.Interp.exit_code;
  Alcotest.(check string) "output stops" "1\n" r.Interp.output

let test_interp_pressure () =
  let r = run_ok Samples.pressure_prog in
  (* 3*sum(1..12) + sum(1..12) = 4*78 = 312. *)
  Alcotest.(check string) "pressure" "312\n" r.Interp.output

let test_interp_fuel () =
  let main = B.func "main" ~nparams:0 in
  let l = B.new_block main in
  B.br main l;
  B.switch_to main l;
  B.br main l;
  let p = B.program ~main:"main" [ B.finish main ] [] in
  match Interp.run ~fuel:1000 p with
  | Error Interp.Fuel_exhausted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_input () =
  let main = B.func "main" ~nparams:0 in
  let buf = B.slot main 32 in
  let buf_addr = B.slot_addr main buf in
  let n = B.call main (Builtin "read_input") [ buf_addr; Const 32 ] in
  B.call_void main (Builtin "print_int") [ n ];
  let b0 = B.load8 main buf_addr 0 in
  B.call_void main (Builtin "print_int") [ b0 ];
  B.ret main (Some (Const 0));
  let p = B.program ~main:"main" [ B.finish main ] [] in
  let r = run_ok ~input:[ "hi" ] p in
  Alcotest.(check string) "input" "2\n104\n" r.Interp.output

let test_interp_sensitive_log () =
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Builtin "sensitive") [ Const 111; Const 222 ];
  B.ret main (Some (Const 0));
  let p = B.program ~main:"main" [ B.finish main ] [] in
  let r = run_ok p in
  Alcotest.(check (list (pair int int))) "sensitive" [ (111, 222) ] r.Interp.sensitive

let test_pretty_roundtrip_smoke () =
  (* The printer must cover every construct without raising. *)
  List.iter
    (fun (_, p) -> Alcotest.(check bool) "nonempty" true (String.length (Pretty.program p) > 0))
    Samples.all

let test_builder_rejects_unterminated () =
  let f = B.func "f" ~nparams:0 in
  let _ = B.new_block f in
  B.ret f None;
  (* The second block was never terminated. *)
  match B.finish f with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_builder_rejects_double_terminate () =
  let f = B.func "f" ~nparams:0 in
  B.ret f None;
  match B.ret f None with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

let suite =
  [
    ( "ir",
      [
        Alcotest.test_case "validate samples" `Quick test_validate_samples;
        Alcotest.test_case "validate unknown call" `Quick test_validate_catches_unknown_call;
        Alcotest.test_case "validate bad label" `Quick test_validate_catches_bad_label;
        Alcotest.test_case "validate arity" `Quick test_validate_catches_arity_mismatch;
        Alcotest.test_case "validate duplicates" `Quick test_validate_catches_duplicate_names;
        Alcotest.test_case "validate bad main" `Quick test_validate_catches_bad_main;
        Alcotest.test_case "interp arith" `Quick test_interp_arith;
        Alcotest.test_case "interp fib" `Quick test_interp_fib;
        Alcotest.test_case "interp loop" `Quick test_interp_loop;
        Alcotest.test_case "interp globals" `Quick test_interp_globals;
        Alcotest.test_case "interp stack args" `Quick test_interp_stack_args;
        Alcotest.test_case "interp indirect" `Quick test_interp_indirect;
        Alcotest.test_case "interp heap" `Quick test_interp_heap;
        Alcotest.test_case "interp bytes" `Quick test_interp_bytes;
        Alcotest.test_case "interp exit" `Quick test_interp_exit;
        Alcotest.test_case "interp pressure" `Quick test_interp_pressure;
        Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
        Alcotest.test_case "interp input" `Quick test_interp_input;
        Alcotest.test_case "interp sensitive log" `Quick test_interp_sensitive_log;
        Alcotest.test_case "pretty smoke" `Quick test_pretty_roundtrip_smoke;
        Alcotest.test_case "builder unterminated" `Quick test_builder_rejects_unterminated;
        Alcotest.test_case "builder double terminate" `Quick test_builder_rejects_double_terminate;
      ] );
  ]
