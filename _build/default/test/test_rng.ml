module Rng = R2c_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_in_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done;
  (* Degenerate range. *)
  Alcotest.(check int) "singleton" 3 (Rng.int_in_range r ~lo:3 ~hi:3)

let test_split_independence () =
  let r = Rng.create 99 in
  let a = Rng.split r in
  let b = Rng.split r in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 a <> Rng.int64 b)

let test_copy () =
  let r = Rng.create 5 in
  let _ = Rng.int64 r in
  let c = Rng.copy r in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 r) (Rng.int64 c)

let test_shuffle_is_permutation () =
  let r = Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_moves_something () =
  let r = Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 (fun i -> i))

let test_sample_without_replacement () =
  let r = Rng.create 3 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement r ~k:10 arr in
  Alcotest.(check int) "k elements" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s))

let test_choose_uniformity () =
  let r = Rng.create 17 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Rng.choose r [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_float_bounds () =
  let r = Rng.create 23 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int_in_range" `Quick test_int_in_range;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
        Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
        Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "choose uniformity" `Quick test_choose_uniformity;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
      ] );
  ]
