open R2c_machine

let test_sizes_positive () =
  let samples =
    Insn.
      [
        Mov (Reg RAX, Reg RBX);
        Mov (Reg RAX, Imm (Abs 5));
        Mov (Reg RAX, Imm (Abs 0x5555_5555_0000));
        Mov (Reg RAX, Mem (mem ~base:RSP ~disp:16 ()));
        Lea (RAX, mem ~base:RSP ~disp:8 ());
        Push (Reg RAX);
        Push (Imm (Abs 0x400000));
        Pop RBX;
        Binop (Add, RAX, Imm (Abs 1));
        Cmp (Reg RAX, Imm (Abs 0));
        Jmp (TAbs 0x400000);
        Call (TAbs 0x400000);
        Ret;
        Nop 5;
        Trap;
        Vload (13, mem ~base:RSP ());
        Vstore (mem ~base:RSP (), 13);
        Vzeroupper;
        Halt;
      ]
  in
  List.iter
    (fun i -> Alcotest.(check bool) (Insn.to_string i) true (Insn.size i > 0))
    samples

let test_push_imm_is_5_bytes () =
  (* The BTRA push embedding of Section 5.1: push imm32. *)
  Alcotest.(check int) "push imm" 5 (Insn.size (Insn.Push (Imm (Abs 0x400000))))

let test_movabs_is_10_bytes () =
  Alcotest.(check int) "movabs" 10
    (Insn.size (Insn.Mov (Reg RAX, Imm (Abs 0x5555_5555_0000))))

let test_nop_width_is_size () =
  for w = 1 to 15 do
    Alcotest.(check int) "nop width" w (Insn.size (Insn.Nop w))
  done

let test_trap_ret_one_byte () =
  Alcotest.(check int) "trap" 1 (Insn.size Insn.Trap);
  Alcotest.(check int) "ret" 1 (Insn.size Insn.Ret)

let test_map_syms () =
  let resolve s off = match s with "f" -> 0x1000 + off | _ -> failwith s in
  let i = Insn.Push (Imm (Sym ("f", 8))) in
  Alcotest.(check bool) "unresolved before" false (Insn.is_resolved i);
  let r = Insn.map_syms resolve i in
  Alcotest.(check bool) "resolved after" true (Insn.is_resolved r);
  match r with
  | Insn.Push (Imm (Abs v)) -> Alcotest.(check int) "value" 0x1008 v
  | _ -> Alcotest.fail "unexpected shape"

let test_map_syms_mem_disp () =
  let resolve _ off = 0x2000 + off in
  let i = Insn.Mov (Reg RAX, Mem (Insn.mem_sym ~base:R11 "g" 16)) in
  match Insn.map_syms resolve i with
  | Insn.Mov (Reg RAX, Mem { base = Some R11; disp = Abs v; _ }) ->
      Alcotest.(check int) "disp" 0x2010 v
  | _ -> Alcotest.fail "unexpected shape"

let test_map_syms_target () =
  let resolve _ _ = 0x3000 in
  match Insn.map_syms resolve (Insn.Call (TSym ("f", 0))) with
  | Insn.Call (TAbs a) -> Alcotest.(check int) "target" 0x3000 a
  | _ -> Alcotest.fail "unexpected shape"

let test_size_stable_under_resolution () =
  (* Layout assigns addresses before resolution: sizes must not change. *)
  let resolve _ _ = 0x400000 in
  let samples =
    Insn.
      [
        Push (Imm (Sym ("bt", 3)));
        Mov (Reg RAX, Imm (Sym ("g", 0)));
        Call (TSym ("f", 0));
        Jcc (Eq, TSym ("l", 0));
        Vload (13, mem_sym "arr" 32);
      ]
  in
  List.iter
    (fun i ->
      Alcotest.(check int) (Insn.to_string i) (Insn.size i)
        (Insn.size (Insn.map_syms resolve i)))
    samples

let test_to_string () =
  Alcotest.(check string) "mov" "mov rax, rbx"
    (Insn.to_string (Insn.Mov (Reg RAX, Reg RBX)));
  Alcotest.(check string) "push sym" "push bt+8"
    (Insn.to_string (Insn.Push (Imm (Sym ("bt", 8)))))

let test_reg_index_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (Insn.reg_to_string r) true
        (Insn.reg_of_index (Insn.reg_index r) = r))
    Insn.all_regs

let test_negate_cond () =
  let open Insn in
  List.iter
    (fun (c, n) -> Alcotest.(check bool) "negation" true (negate_cond c = n))
    [ (Eq, Ne); (Ne, Eq); (Lt, Ge); (Le, Gt); (Gt, Le); (Ge, Lt) ]

let suite =
  [
    ( "insn",
      [
        Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
        Alcotest.test_case "push imm 5 bytes" `Quick test_push_imm_is_5_bytes;
        Alcotest.test_case "movabs 10 bytes" `Quick test_movabs_is_10_bytes;
        Alcotest.test_case "nop width" `Quick test_nop_width_is_size;
        Alcotest.test_case "trap/ret 1 byte" `Quick test_trap_ret_one_byte;
        Alcotest.test_case "map_syms imm" `Quick test_map_syms;
        Alcotest.test_case "map_syms mem disp" `Quick test_map_syms_mem_disp;
        Alcotest.test_case "map_syms target" `Quick test_map_syms_target;
        Alcotest.test_case "size stable under resolution" `Quick
          test_size_stable_under_resolution;
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "reg index roundtrip" `Quick test_reg_index_roundtrip;
        Alcotest.test_case "negate cond" `Quick test_negate_cond;
      ] );
  ]
