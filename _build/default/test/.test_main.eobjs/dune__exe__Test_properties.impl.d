test/test_properties.ml: Addr Array Char Gen Hashtbl Heap Image Interp List Mem Process QCheck QCheck_alcotest R2c_attacks R2c_compiler R2c_core R2c_machine R2c_util R2c_workloads Seq String Text
