test/test_harness.ml: Alcotest Builder Ir List Printf R2c_compiler R2c_core R2c_harness R2c_workloads
