test/test_emit.ml: Alcotest Array Builder Insn Ir List Printf R2c_compiler R2c_machine Samples
