test/test_analysis.ml: Addr Alcotest Array Cost Cpu Dump Insn List Loader Mem Process R2c_attacks R2c_compiler R2c_core R2c_defenses R2c_machine R2c_workloads Samples String Trace
