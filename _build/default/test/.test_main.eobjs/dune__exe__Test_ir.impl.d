test/test_ir.ml: Alcotest Builder Interp Ir List Pretty Samples String Validate
