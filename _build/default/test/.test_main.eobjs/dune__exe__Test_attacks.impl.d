test/test_attacks.ml: Alcotest Interp List Printf R2c_attacks R2c_core R2c_defenses R2c_machine R2c_util R2c_workloads
