test/test_compiler.ml: Addr Alcotest Array Hashtbl Image Insn Interp Ir List Perm Printf Process R2c_compiler R2c_machine Samples
