test/test_insn.ml: Alcotest Insn List R2c_machine
