test/test_heap.ml: Addr Alcotest Heap Mem R2c_machine
