test/test_mem.ml: Addr Alcotest Bytes Fault Mem Perm R2c_machine
