test/test_linker.ml: Alcotest Builder Image Insn Ir List Process R2c_compiler R2c_machine Validate
