test/test_text.ml: Alcotest Builder Interp Ir List Printf R2c_core R2c_machine R2c_workloads Samples String Text Validate
