test/test_stats.ml: Alcotest List R2c_util
