test/samples.ml: Builder Char Ir List
