test/test_defenses.ml: Addr Alcotest Image List Perm Process R2c_attacks R2c_core R2c_defenses R2c_machine R2c_workloads String
