test/test_rng.ml: Alcotest Array List R2c_util
