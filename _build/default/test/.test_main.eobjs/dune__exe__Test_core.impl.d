test/test_core.ml: Addr Alcotest Array Builder Cpu Fault Hashtbl Image Interp Ir List Mem Option Perm Printf Process R2c_compiler R2c_core R2c_machine R2c_util Samples
