test/test_table.ml: Alcotest Insn List Mem Perm R2c_compiler R2c_machine R2c_util Samples String Unwind
