test/test_cpu.ml: Addr Alcotest Char Cpu Fault Insn List Perm Process R2c_compiler R2c_machine
