test/test_workloads.ml: Alcotest Image Interp List Pretty Printf Process R2c_attacks R2c_compiler R2c_core R2c_machine R2c_workloads String Validate
