(* Textual IR: round trips and parse errors. *)

let roundtrip name (p : Ir.program) =
  let printed = Text.to_string p in
  match Text.parse printed with
  | Error e -> Alcotest.failf "%s: %s\n%s" name (Text.error_to_string e) printed
  | Ok q ->
      (* Structural equality via the canonical printer. *)
      Alcotest.(check string) (name ^ " round trip") printed (Text.to_string q);
      (* And behavioural equality. *)
      let out prog =
        match Interp.run ~fuel:50_000_000 prog with
        | Ok r -> (r.Interp.output, r.Interp.exit_code)
        | Error e -> Alcotest.failf "%s interp: %s" name (Interp.error_to_string e)
      in
      if Ir.find_func p p.main <> None then
        Alcotest.(check (pair string int)) (name ^ " behaviour") (out p) (out q)

let test_roundtrip_samples () =
  List.iter (fun (name, p) -> roundtrip name p) Samples.all

let test_roundtrip_spec () =
  List.iter
    (fun (b : R2c_workloads.Spec.benchmark) -> roundtrip b.name b.program)
    (R2c_workloads.Spec.all ())

let test_roundtrip_generated () =
  List.iter
    (fun seed -> roundtrip (Printf.sprintf "gen%d" seed)
        (R2c_workloads.Genprog.generate ~seed ~funcs:25))
    [ 1; 2; 3 ]

let test_roundtrip_vulnapp () = roundtrip "vulnapp" (R2c_workloads.Vulnapp.program ())

let test_parse_minimal () =
  let src = {|
global counter : 8 = word 41

func main() {
L0:
  v0 = load [@counter + 0]
  v1 = add v0, 1
  call !print_int(v1)
  ret 0
}
|} in
  match Text.parse src with
  | Error e -> Alcotest.failf "parse: %s" (Text.error_to_string e)
  | Ok p -> (
      Alcotest.(check (list string)) "validates" []
        (List.map Validate.error_to_string (Validate.check p));
      match Interp.run p with
      | Ok r -> Alcotest.(check string) "output" "42\n" r.Interp.output
      | Error e -> Alcotest.failf "interp: %s" (Interp.error_to_string e))

let test_parse_compiles_and_runs () =
  let src = {|
func helper(v0, v1) {
L0:
  v2 = mul v0, v1
  ret v2
}

func main() {
  slots 8
L0:
  v0 = call helper(6, 7)
  v1 = slot 0
  store [v1 + 0], v0
  v2 = load [v1 + 0]
  call !print_int(v2)
  ret 0
}
|} in
  match Text.parse src with
  | Error e -> Alcotest.failf "parse: %s" (Text.error_to_string e)
  | Ok p -> (
      let img = R2c_core.Pipeline.compile ~seed:3 (R2c_core.Dconfig.full ()) p in
      let proc = R2c_machine.Process.start ~strict_align:true img in
      match R2c_machine.Process.run proc with
      | R2c_machine.Process.Exited 0 ->
          Alcotest.(check string) "output" "42\n" (R2c_machine.Process.output proc)
      | o -> Alcotest.failf "run: %s" (R2c_machine.Process.outcome_to_string o))

let expect_error src fragment =
  match Text.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error e ->
      let msg = Text.error_to_string e in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S in %S" fragment msg)
        true (contains msg fragment)

let test_parse_errors () =
  expect_error "bogus line" "expected 'global' or 'func'";
  expect_error "func f() {\nL0:\n  ret\n" "unterminated function";
  expect_error "func f() {\n  v0 = add 1, 2\n}" "instruction outside a block";
  expect_error "func f() {\nL0:\n  v0 = frob 1, 2\n  ret\n}" "unknown operation";
  expect_error "func f() {\nL0:\n  v0 = cmp.zz 1, 2\n  ret\n}" "unknown comparison";
  expect_error "global g : 8 = str \"unterminated" "unterminated string"

let test_string_escapes () =
  let p =
    Builder.program ~main:"main"
      [
        (let fb = Builder.func "main" ~nparams:0 in
         Builder.ret fb (Some (Ir.Const 0));
         Builder.finish fb);
      ]
      [ { Ir.gname = "s"; gsize = 16; ginit = [ Ir.Str "a\"b\\c\000\xff tail" ] } ]
  in
  roundtrip "escapes" p

let suite =
  [
    ( "text",
      [
        Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
        Alcotest.test_case "roundtrip spec suite" `Quick test_roundtrip_spec;
        Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
        Alcotest.test_case "roundtrip vulnapp" `Quick test_roundtrip_vulnapp;
        Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
        Alcotest.test_case "parse + compile + run" `Quick test_parse_compiles_and_runs;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
      ] );
  ]
