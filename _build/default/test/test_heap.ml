open R2c_machine

let fresh () =
  let m = Mem.create () in
  (m, Heap.create m ~base:Addr.heap_base)

let test_malloc_basic () =
  let _, h = fresh () in
  let a = Heap.malloc h 64 in
  Alcotest.(check bool) "in heap region" true (Addr.region_of a = Addr.Heap);
  Alcotest.(check int) "aligned 16" 0 (a land 15);
  Alcotest.(check int) "size" 64 (Heap.block_size h a)

let test_malloc_distinct () =
  let _, h = fresh () in
  let a = Heap.malloc h 32 and b = Heap.malloc h 32 in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_malloc_maps_memory () =
  let m, h = fresh () in
  let a = Heap.malloc h 128 in
  Mem.write_u64 m a 99;
  Alcotest.(check int) "usable" 99 (Mem.read_u64 m a)

let test_free_and_reuse () =
  let _, h = fresh () in
  let a = Heap.malloc h 64 in
  Heap.free h a;
  let b = Heap.malloc h 64 in
  Alcotest.(check int) "first fit reuses" a b

let test_free_unknown_rejected () =
  let _, h = fresh () in
  Alcotest.check_raises "bad free"
    (Invalid_argument "Heap.free: 0x55555800 is not a live block") (fun () ->
      Heap.free h 0x55555800)

let test_malloc_pages_alignment () =
  let _, h = fresh () in
  let _ = Heap.malloc h 24 in
  let p = Heap.malloc_pages h 1 in
  Alcotest.(check int) "page aligned" 0 (Addr.page_offset p);
  Alcotest.(check int) "page sized" Addr.page_size (Heap.block_size h p)

let test_unfreed_page_not_reused () =
  let m, h = fresh () in
  let p = Heap.malloc_pages h 1 in
  (* Allocate a lot afterwards: none of it may land in p's page. *)
  for _ = 1 to 200 do
    let a = Heap.malloc h 48 in
    Alcotest.(check bool) "outside guard page" true
      (Addr.page_of a <> Addr.page_of p || a >= p + Addr.page_size)
  done;
  ignore m

let test_live_bytes () =
  let _, h = fresh () in
  let a = Heap.malloc h 100 in
  (* 100 rounds to 112. *)
  Alcotest.(check int) "live" 112 (Heap.live_bytes h);
  Heap.free h a;
  Alcotest.(check int) "after free" 0 (Heap.live_bytes h)

let test_fragmentation_split () =
  let _, h = fresh () in
  let a = Heap.malloc h 256 in
  Heap.free h a;
  let b = Heap.malloc h 64 in
  let c = Heap.malloc h 64 in
  (* Both carved from the freed block. *)
  Alcotest.(check bool) "b from split" true (b = a);
  Alcotest.(check bool) "c from remainder" true (c >= a && c < a + 256)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "malloc basic" `Quick test_malloc_basic;
        Alcotest.test_case "malloc distinct" `Quick test_malloc_distinct;
        Alcotest.test_case "malloc maps memory" `Quick test_malloc_maps_memory;
        Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
        Alcotest.test_case "free unknown rejected" `Quick test_free_unknown_rejected;
        Alcotest.test_case "malloc_pages alignment" `Quick test_malloc_pages_alignment;
        Alcotest.test_case "unfreed page not reused" `Quick test_unfreed_page_not_reused;
        Alcotest.test_case "live bytes" `Quick test_live_bytes;
        Alcotest.test_case "fragmentation split" `Quick test_fragmentation_split;
      ] );
  ]
