(* Linker-level error handling and layout invariants. *)

module Opts = R2c_compiler.Opts
module Link = R2c_compiler.Link
module Asm = R2c_compiler.Asm
module B = Builder
open R2c_machine

let raw name insns = Asm.of_raw { Opts.rname = name; rinsns = insns; rbooby_trap = false }

let test_duplicate_function_rejected () =
  match
    Link.link ~opts:Opts.default ~main:"main"
      [ raw "main" [ Insn.Ret ]; raw "main" [ Insn.Ret ] ]
      []
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate function must be rejected"

let test_duplicate_global_function_clash () =
  let p =
    B.program ~main:"main"
      [
        (let fb = B.func "main" ~nparams:0 in
         B.ret fb (Some (Ir.Const 0));
         B.finish fb);
      ]
      [ { Ir.gname = "main"; gsize = 8; ginit = [] } ]
  in
  Alcotest.(check bool) "validator flags shadowing" true (Validate.check p <> [])

let test_undefined_symbol_rejected () =
  match
    Link.link ~opts:Opts.default ~main:"main"
      [ raw "main" [ Insn.Jmp (Insn.TSym ("nowhere", 0)); Insn.Ret ] ]
      []
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined symbol must be rejected"

let test_func_order_must_be_permutation () =
  let opts = { Opts.default with Opts.func_order = (fun _ -> [ "main"; "ghost" ]) } in
  match Link.link ~opts ~main:"main" [ raw "main" [ Insn.Ret ]; raw "g" [ Insn.Ret ] ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "func_order inventing names must be rejected"

let test_data_overflow_rejected () =
  (* A single global bigger than the data window. *)
  let huge = { Ir.gname = "huge"; gsize = 0x2000_0000_0000; ginit = [] } in
  match Link.link ~opts:Opts.default ~main:"main" [ raw "main" [ Insn.Ret ] ] [ huge ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "data overflow must be rejected"

let test_builtins_have_fixed_plt_slots () =
  let img = Link.link ~opts:Opts.default ~main:"main" [ raw "main" [ Insn.Ret ] ] [] in
  List.iteri
    (fun i name ->
      Alcotest.(check int) (name ^ " slot")
        (img.Image.text_base + (16 * i))
        (Image.symbol img name))
    Image.builtin_names

let test_entry_is_start () =
  let img = Link.link ~opts:Opts.default ~main:"main" [ raw "main" [ Insn.Ret ] ] [] in
  Alcotest.(check int) "entry = _start" (Image.symbol img "_start") img.Image.entry

let test_constructors_run_before_main () =
  (* _start calls the constructor, then main; the ctor's print precedes
     main's. *)
  let ctor = B.func "ctor" ~nparams:0 in
  B.call_void ctor (Ir.Builtin "print_int") [ Ir.Const 1 ];
  B.ret ctor None;
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Ir.Builtin "print_int") [ Ir.Const 2 ];
  B.ret main (Some (Ir.Const 0));
  let p = B.program ~main:"main" [ B.finish ctor; B.finish main ] [] in
  let opts = { Opts.default with Opts.constructors = [ "ctor" ] } in
  let img = R2c_compiler.Driver.compile ~opts p in
  let proc = Process.start img in
  (match Process.run proc with
  | Process.Exited 0 -> ()
  | o -> Alcotest.failf "%s" (Process.outcome_to_string o));
  Alcotest.(check string) "ctor first" "1\n2\n" (Process.output proc)

let test_global_padding_separates () =
  (* Padding requested between globals must appear in the layout. *)
  let g1 = { Ir.gname = "g1"; gsize = 8; ginit = [] } in
  let g2 = { Ir.gname = "g2"; gsize = 8; ginit = [] } in
  let opts =
    { Opts.default with Opts.global_order = (fun gs -> List.map (fun g -> (g, 128)) gs) }
  in
  let img = Link.link ~opts ~main:"main" [ raw "main" [ Insn.Ret ] ] [ g1; g2 ] in
  let a1 = Image.symbol img "g1" and a2 = Image.symbol img "g2" in
  Alcotest.(check bool) "padding honoured" true (abs (a2 - a1) >= 128)

let suite =
  [
    ( "linker",
      [
        Alcotest.test_case "duplicate function" `Quick test_duplicate_function_rejected;
        Alcotest.test_case "global shadows function" `Quick test_duplicate_global_function_clash;
        Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol_rejected;
        Alcotest.test_case "func_order permutation" `Quick test_func_order_must_be_permutation;
        Alcotest.test_case "data overflow" `Quick test_data_overflow_rejected;
        Alcotest.test_case "plt slots fixed" `Quick test_builtins_have_fixed_plt_slots;
        Alcotest.test_case "entry is _start" `Quick test_entry_is_start;
        Alcotest.test_case "constructors first" `Quick test_constructors_run_before_main;
        Alcotest.test_case "global padding" `Quick test_global_padding_separates;
      ] );
  ]
