open R2c_machine
module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Btra = R2c_core.Btra
module Boobytrap = R2c_core.Boobytrap
module Probability = R2c_core.Probability
module Opts = R2c_compiler.Opts
module Rng = R2c_util.Rng

let interp_ref p =
  match Interp.run p with
  | Ok r -> r
  | Error e -> Alcotest.failf "reference interp failed: %s" (Interp.error_to_string e)

let check_differential ~cfg ~seed name p =
  let r = interp_ref p in
  let img = Pipeline.compile ~seed cfg p in
  let proc = Process.start ~strict_align:true img in
  (match Process.run proc with
  | Process.Exited code ->
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d: exit" name seed)
        r.Interp.exit_code code
  | other ->
      Alcotest.failf "%s seed %d (%s): compiled run %s" name seed (Dconfig.describe cfg)
        (Process.outcome_to_string other));
  Alcotest.(check string)
    (Printf.sprintf "%s seed %d: output" name seed)
    r.Interp.output (Process.output proc)

let configs =
  [
    ("full-avx", Dconfig.full ());
    ("full-push", Dconfig.full ~setup:Dconfig.Push ());
    ("push-only", Dconfig.btra_push_only);
    ("avx-only", Dconfig.btra_avx_only);
    ("btdp-only", Dconfig.btdp_only);
    ("prolog-only", Dconfig.prolog_only);
    ("layout-only", Dconfig.layout_only);
    ("oia-only", Dconfig.oia_only);
  ]

let test_differential_config (cname, cfg) () =
  List.iter
    (fun (name, p) ->
      List.iter (fun seed -> check_differential ~cfg ~seed (cname ^ "/" ^ name) p) [ 1; 7 ])
    Samples.all

let test_many_seeds_full () =
  (* One representative program across many seeds. *)
  let p = Samples.stack_args_prog in
  List.iter
    (fun seed -> check_differential ~cfg:(Dconfig.full ()) ~seed "stack_args" p)
    (List.init 10 (fun i -> i + 100))

let test_determinism () =
  let cfg = Dconfig.full () in
  let img1 = Pipeline.compile ~seed:5 cfg Samples.indirect_prog in
  let img2 = Pipeline.compile ~seed:5 cfg Samples.indirect_prog in
  Alcotest.(check int) "entry equal" img1.Image.entry img2.Image.entry;
  let sorted img =
    List.sort compare
      (List.map (fun (f : Image.func_info) -> (f.fname, f.entry)) img.Image.funcs)
  in
  Alcotest.(check bool) "same layout" true (sorted img1 = sorted img2)

let test_seed_changes_layout () =
  let cfg = Dconfig.full () in
  let img1 = Pipeline.compile ~seed:1 cfg Samples.indirect_prog in
  let img2 = Pipeline.compile ~seed:2 cfg Samples.indirect_prog in
  let entry img name = Image.symbol img name in
  let moved =
    List.exists
      (fun (f : Image.func_info) ->
        (not f.is_booby_trap) && entry img2 f.fname <> f.entry)
      img1.Image.funcs
  in
  Alcotest.(check bool) "some function moved" true moved

let test_booby_traps_present_and_scattered () =
  let cfg = Dconfig.full () in
  let img = Pipeline.compile ~seed:3 cfg (Samples.fib_prog 10) in
  let bts = List.filter (fun (f : Image.func_info) -> f.is_booby_trap) img.Image.funcs in
  Alcotest.(check bool) "enough booby traps" true (List.length bts >= 16);
  (* Shuffling interleaves them: not all booby traps contiguous. *)
  let by_addr =
    List.sort
      (fun (a : Image.func_info) b -> compare a.entry b.entry)
      img.Image.funcs
  in
  let flags = List.map (fun (f : Image.func_info) -> f.is_booby_trap) by_addr in
  let transitions =
    let rec count = function
      | a :: (b :: _ as tl) -> (if a <> b then 1 else 0) + count tl
      | _ -> 0
    in
    count flags
  in
  Alcotest.(check bool) "interleaved" true (transitions >= 2)

let test_btra_pre_counts_even () =
  let p = Samples.stack_args_prog in
  let rng = Rng.create 11 in
  let _, targets = Boobytrap.generate rng ~count:32 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg = { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = true; max_post = 4; check_after_return = false } in
  let t = Btra.build ~rng ~cfg ~pool p in
  Hashtbl.iter
    (fun (fname, site) (plan : Opts.callsite_plan) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s#%d pre even" fname site)
        true
        (List.length plan.pre_syms land 1 = 0))
    t.Btra.plans

let test_btra_post_matches_callee () =
  let p = (Samples.fib_prog 10) in
  let rng = Rng.create 13 in
  let _, targets = Boobytrap.generate rng ~count:32 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg = { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = true; max_post = 4; check_after_return = false } in
  let t = Btra.build ~rng ~cfg ~pool p in
  (* fib calls fib twice: each direct site's post count must equal fib's
     post offset. *)
  let fib_post = Btra.post_offset t ~fname:"fib" in
  Alcotest.(check bool) "post in range" true (fib_post >= 1 && fib_post <= 4);
  List.iter
    (fun site ->
      match Btra.plan t ~fname:"fib" ~site with
      | Some plan ->
          Alcotest.(check int)
            (Printf.sprintf "fib#%d post" site)
            fib_post
            (List.length plan.post_syms)
      | None -> Alcotest.failf "fib#%d has no plan" site)
    [ 0; 1 ]

let test_btra_property_a_no_repeats_within_site () =
  let p = Samples.stack_args_prog in
  let rng = Rng.create 17 in
  let _, targets = Boobytrap.generate rng ~count:48 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg = { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = true; max_post = 4; check_after_return = false } in
  let t = Btra.build ~rng ~cfg ~pool p in
  Hashtbl.iter
    (fun (fname, site) (plan : Opts.callsite_plan) ->
      let all = plan.pre_syms @ plan.post_syms in
      Alcotest.(check int)
        (Printf.sprintf "%s#%d distinct" fname site)
        (List.length all)
        (List.length (List.sort_uniq compare all)))
    t.Btra.plans

let test_btra_property_c_sets_differ_across_sites () =
  let p = Samples.stack_args_prog in
  let rng = Rng.create 19 in
  let _, targets = Boobytrap.generate rng ~count:64 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg = { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = true; max_post = 4; check_after_return = false } in
  let t = Btra.build ~rng ~cfg ~pool p in
  let sets =
    Hashtbl.fold
      (fun _ (plan : Opts.callsite_plan) acc ->
        List.sort compare (plan.pre_syms @ plan.post_syms) :: acc)
      t.Btra.plans []
  in
  let distinct = List.length (List.sort_uniq compare sets) in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d sets distinct" distinct (List.length sets))
    true
    (distinct = List.length sets)

let test_avx_arrays_are_multiple_of_4_words () =
  let p = (Samples.fib_prog 10) in
  let rng = Rng.create 23 in
  let _, targets = Boobytrap.generate rng ~count:48 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg = { Dconfig.total = 10; setup = Dconfig.Avx; to_builtins = true; max_post = 4; check_after_return = false } in
  let t = Btra.build ~rng ~cfg ~pool p in
  Alcotest.(check bool) "arrays exist" true (t.Btra.arrays <> []);
  List.iter
    (fun (g : Ir.global) ->
      Alcotest.(check int) (g.gname ^ " word multiple of 4") 0 (g.gsize / 8 mod 4);
      Alcotest.(check int) (g.gname ^ " fully initialised") g.gsize
        (Ir.init_footprint g.ginit))
    t.Btra.arrays

(* Run a full-R2C image to completion and inspect the BTDP runtime state. *)
let run_full_btdp () =
  let cfg = Dconfig.full () in
  let img = Pipeline.compile ~seed:9 cfg (Samples.loop_prog 20) in
  let proc = Process.start ~strict_align:true img in
  (match Process.run proc with
  | Process.Exited 0 -> ()
  | other -> Alcotest.failf "run failed: %s" (Process.outcome_to_string other));
  (img, proc)

let test_btdp_guard_pages_armed () =
  let _, proc = run_full_btdp () in
  let guards = Mem.guard_page_addrs proc.Process.cpu.Cpu.mem in
  Alcotest.(check int) "16 guard pages" 16 (List.length guards);
  List.iter
    (fun g ->
      Alcotest.(check bool) "guard page in heap" true (Addr.region_of g = Addr.Heap);
      Alcotest.(check bool) "no permissions" true
        (Mem.perm_at proc.Process.cpu.Cpu.mem g = Some Perm.none))
    guards

let test_btdp_array_on_heap_pointer_in_data () =
  let img, proc = run_full_btdp () in
  let mem = proc.Process.cpu.Cpu.mem in
  let arrp_addr = Image.symbol img "__r2c_btdp_arrp" in
  Alcotest.(check bool) "slot in data" true (Addr.region_of arrp_addr = Addr.Data);
  match Mem.peek_u64 mem arrp_addr with
  | Some arr ->
      Alcotest.(check bool) "array on heap" true (Addr.region_of arr = Addr.Heap);
      (* Array entries point into guard pages. *)
      let guards = Mem.guard_page_addrs mem in
      for k = 0 to 7 do
        match Mem.peek_u64 mem (arr + (8 * k)) with
        | Some ptr ->
            Alcotest.(check bool)
              (Printf.sprintf "entry %d in a guard page" k)
              true
              (List.mem (Addr.page_base ptr) guards)
        | None -> Alcotest.fail "array unmapped"
      done
  | None -> Alcotest.fail "array pointer unmapped"

let test_btdp_decoys_distinct_from_array () =
  let img, proc = run_full_btdp () in
  let mem = proc.Process.cpu.Cpu.mem in
  let arr =
    match Mem.peek_u64 mem (Image.symbol img "__r2c_btdp_arrp") with
    | Some a -> a
    | None -> Alcotest.fail "no array"
  in
  let array_values = List.init 48 (fun k -> Mem.peek_u64 mem (arr + (8 * k))) in
  List.iter
    (fun d ->
      let decoy_addr = Image.symbol img (Printf.sprintf "__r2c_btdp_decoy_%d" d) in
      match Mem.peek_u64 mem decoy_addr with
      | Some v ->
          Alcotest.(check bool) "decoy in heap range" true (Addr.region_of v = Addr.Heap);
          Alcotest.(check bool) "decoy in a guard page" true
            (List.mem (Addr.page_base v) (Mem.guard_page_addrs mem));
          Alcotest.(check bool) "decoy not an array value" false
            (List.mem (Some v) array_values)
      | None -> Alcotest.fail "decoy unmapped")
    [ 0; 1 ]

let test_btdp_deref_detected () =
  (* A program that dereferences a BTDP from the array must trip a guard
     page and count as detection. *)
  let open Builder in
  let main = func "main" ~nparams:0 in
  let arrp = load main (Global "__r2c_btdp_arrp") 0 in
  let victim = load main arrp 0 in
  (* dereference the first BTDP *)
  let boom = load main victim 0 in
  call_void main (Builtin "print_int") [ boom ];
  ret main (Some (Const 0));
  let p = program ~main:"main" [ finish main ] [] in
  let cfg = Dconfig.full () in
  let img = Pipeline.compile ~seed:4 cfg p in
  let proc = Process.start img in
  match Process.run proc with
  | Process.Crashed (Fault.Guard_page _) ->
      Alcotest.(check bool) "detected" true (Process.detected proc)
  | other -> Alcotest.failf "expected guard page, got %s" (Process.outcome_to_string other)

let test_xom_in_full_config () =
  let cfg = Dconfig.full () in
  let img = Pipeline.compile ~seed:2 cfg Samples.arith_prog in
  Alcotest.(check bool) "text execute-only" true (Perm.equal img.Image.text_perm Perm.xo)

let test_probability_paper_example () =
  (* Section 7.2.1: ten BTRAs, four return addresses: ~0.00007. *)
  let p = Probability.guess_n_return_addresses ~btras:10 ~n:4 in
  Alcotest.(check bool) "0.00007 ballpark" true (p > 0.00006 && p < 0.00008);
  Alcotest.(check (float 1e-12)) "single" (1.0 /. 11.0)
    (Probability.guess_return_address ~btras:10)

let test_probability_heap_pick () =
  Alcotest.(check (float 1e-12)) "H/(H+B)" 0.4
    (Probability.pick_benign_heap_pointer ~benign:4 ~btdps:6);
  Alcotest.(check (float 1e-12)) "E(B)*S" 25.0
    (Probability.expected_btdps_in_leak ~min_per_func:0 ~max_per_func:5 ~frames:10)

let test_probability_detection () =
  Alcotest.(check (float 1e-12)) "1 - p^k" 0.875
    (Probability.detection_probability ~success_p:0.5 ~attempts:3)

let test_btra_to_builtins_default_off () =
  (* Section 7.4.1: by default, call sites into unprotected code get no
     BTRAs — the plan table must skip Builtin callees. *)
  let p = Samples.arith_prog in
  let rng = Rng.create 41 in
  let _, targets = Boobytrap.generate rng ~count:32 in
  let pool = Boobytrap.pool_of_targets targets in
  let cfg =
    { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = false; max_post = 4;
      check_after_return = false }
  in
  let t = Btra.build ~rng ~cfg ~pool p in
  (* arith_prog's main only calls builtins: no plans at all. *)
  Alcotest.(check int) "no plans for builtin-only callers" 0 (Hashtbl.length t.Btra.plans);
  (* And the emitted code carries no BTRA pushes. *)
  let p2 = Samples.fib_prog 4 in
  let t2 = Btra.build ~rng ~cfg ~pool p2 in
  Hashtbl.iter
    (fun (fname, site) (_ : Opts.callsite_plan) ->
      (* every planned site must be a Direct call (fib's recursion or
         main's call of fib), never print_int *)
      Alcotest.(check bool) (Printf.sprintf "%s#%d" fname site) true
        (fname = "fib" || (fname = "main" && site = 0)))
    t2.Btra.plans

let test_pool_reuse_balancing () =
  let rng = Rng.create 31 in
  let _, targets = Boobytrap.generate rng ~count:8 in
  let pool = Boobytrap.pool_of_targets targets in
  let n = Array.length targets in
  (* Draw 3x the pool size in total; usage must stay balanced within 1. *)
  let counts = Hashtbl.create 64 in
  for _ = 1 to 3 * (n / 4) do
    List.iter
      (fun tgt ->
        Hashtbl.replace counts tgt (1 + Option.value ~default:0 (Hashtbl.find_opt counts tgt)))
      (Boobytrap.pick rng pool ~n:4)
  done;
  let values = Hashtbl.fold (fun _ v acc -> v :: acc) counts [] in
  let mx = List.fold_left max 0 values and mn = List.fold_left min max_int values in
  Alcotest.(check bool) (Printf.sprintf "balanced (%d..%d)" mn mx) true (mx - mn <= 1)

let suite =
  [
    ( "r2c-core",
      List.map
        (fun (cname, cfg) ->
          Alcotest.test_case ("differential " ^ cname) `Quick (test_differential_config (cname, cfg)))
        configs
      @ [
          Alcotest.test_case "many seeds full" `Quick test_many_seeds_full;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes layout" `Quick test_seed_changes_layout;
          Alcotest.test_case "booby traps scattered" `Quick test_booby_traps_present_and_scattered;
          Alcotest.test_case "BTRA pre even" `Quick test_btra_pre_counts_even;
          Alcotest.test_case "BTRA post matches callee" `Quick test_btra_post_matches_callee;
          Alcotest.test_case "BTRA property A" `Quick test_btra_property_a_no_repeats_within_site;
          Alcotest.test_case "BTRA property C" `Quick test_btra_property_c_sets_differ_across_sites;
          Alcotest.test_case "AVX arrays shape" `Quick test_avx_arrays_are_multiple_of_4_words;
          Alcotest.test_case "BTDP guard pages armed" `Quick test_btdp_guard_pages_armed;
          Alcotest.test_case "BTDP array indirection" `Quick test_btdp_array_on_heap_pointer_in_data;
          Alcotest.test_case "BTDP decoys distinct" `Quick test_btdp_decoys_distinct_from_array;
          Alcotest.test_case "BTDP deref detected" `Quick test_btdp_deref_detected;
          Alcotest.test_case "XOM in full config" `Quick test_xom_in_full_config;
          Alcotest.test_case "probability paper example" `Quick test_probability_paper_example;
          Alcotest.test_case "probability heap pick" `Quick test_probability_heap_pick;
          Alcotest.test_case "probability detection" `Quick test_probability_detection;
          Alcotest.test_case "BTRAs skip builtins by default" `Quick
            test_btra_to_builtins_default_off;
          Alcotest.test_case "pool reuse balancing" `Quick test_pool_reuse_balancing;
        ] );
  ]
