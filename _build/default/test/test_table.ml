(* The table renderer and remaining util coverage. *)

module Table = R2c_util.Table
module Stats = R2c_util.Stats
open R2c_machine

let test_render_alignment () =
  let out =
    Table.render
      ~headers:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ]
      [ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  (* All lines are equally wide. *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  (* Right-aligned numbers end the line. *)
  Alcotest.(check bool) "right aligned" true
    (String.length (List.nth lines 2) > 0
    && (List.nth lines 2).[String.length (List.nth lines 2) - 1] = '1')

let test_render_short_rows_padded () =
  let out = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_pct_ratio () =
  Alcotest.(check string) "pct" "6.6%" (Table.pct 0.066);
  Alcotest.(check string) "negative pct" "-0.2%" (Table.pct (-0.002));
  Alcotest.(check string) "ratio" "1.06" (Table.ratio 1.06)

let test_pearson () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Stats.pearson [ 1.0; 2.0; 3.0 ] [ 2.0; 4.0; 6.0 ]);
  Alcotest.(check (float 1e-9)) "perfect negative" (-1.0)
    (Stats.pearson [ 1.0; 2.0; 3.0 ] [ 3.0; 2.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "degenerate" 0.0
    (Stats.pearson [ 1.0; 1.0; 1.0 ] [ 3.0; 2.0; 1.0 ])

(* --- unwind edge cases --- *)

let test_unwind_empty_tables () =
  (* A raw-only image has no unwind rows: the walk stops immediately. *)
  let img =
    R2c_compiler.Link.link ~opts:R2c_compiler.Opts.default ~main:"main"
      [ R2c_compiler.Asm.of_raw
          { R2c_compiler.Opts.rname = "main"; rinsns = [ Insn.Ret ]; rbooby_trap = false } ]
      []
  in
  let mem = Mem.create () in
  Mem.map mem 0x7fff_0000_0000 4096 Perm.rw;
  Alcotest.(check (list int)) "no frames" []
    (Unwind.backtrace mem img ~ra_slot:0x7fff_0000_0100)

let test_unwind_corrupted_chain_terminates () =
  (* Garbage on the stack must terminate the walk, not loop. *)
  let img = R2c_compiler.Driver.compile (Samples.fib_prog 3) in
  let mem = Mem.create () in
  Mem.map mem 0x7fff_0000_0000 65536 Perm.rw;
  (* Fill with a self-referencing pattern. *)
  for i = 0 to 8000 do
    Mem.write_u64 mem (0x7fff_0000_0000 + (8 * i)) 0x7fff_0000_0000
  done;
  let frames = Unwind.backtrace mem img ~ra_slot:0x7fff_0000_0400 in
  Alcotest.(check (list int)) "terminates empty" [] frames

let suite =
  [
    ( "util-extra",
      [
        Alcotest.test_case "table alignment" `Quick test_render_alignment;
        Alcotest.test_case "table short rows" `Quick test_render_short_rows_padded;
        Alcotest.test_case "pct/ratio" `Quick test_pct_ratio;
        Alcotest.test_case "pearson" `Quick test_pearson;
        Alcotest.test_case "unwind empty tables" `Quick test_unwind_empty_tables;
        Alcotest.test_case "unwind corrupted chain" `Quick test_unwind_corrupted_chain_terminates;
      ] );
  ]
