(* r2c-attack: launch one code-reuse attack against the vulnerable server
   hardened by a chosen defense model, with a verbose trace. *)

open Cmdliner
module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp
module Rng = R2c_util.Rng

let defense_of_name name =
  match
    List.find_opt
      (fun (d : Defenses.t) ->
        String.lowercase_ascii d.Defenses.name = String.lowercase_ascii name)
      Defenses.all
  with
  | Some d -> d
  | None -> (
      match
        List.find_opt
          (fun (d : Defenses.t) ->
            String.lowercase_ascii d.Defenses.name = String.lowercase_ascii name)
          Defenses.variants
      with
      | Some d -> d
      | None ->
          failwith
            (Printf.sprintf "unknown defense %s (have: %s)" name
               (String.concat ", "
                  (List.map
                     (fun (d : Defenses.t) -> d.Defenses.name)
                     (Defenses.all @ Defenses.variants)))))

let scenario (d : Defenses.t) ~seed =
  let target_img = Defenses.build_vulnapp d ~seed in
  let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 1000)) in
  let relink =
    if d.Defenses.rerandomize then begin
      let counter = ref 0 in
      Some
        (fun () ->
          incr counter;
          Defenses.build_vulnapp d ~seed:(seed + (7777 * !counter)))
    end
    else None
  in
  (reference, Oracle.attach ?relink ~break_sym:Vulnapp.break_symbol target_img)

let run_attack attack defense seed =
  let d = defense_of_name defense in
  Printf.printf "target: vulnerable server under %s (seed %d) — %s\n" d.Defenses.name seed
    d.Defenses.footnote;
  let reference, target = scenario d ~seed in
  let report =
    match attack with
    | "rop" -> R2c_attacks.Rop.run ~reference ~target
    | "jitrop" -> R2c_attacks.Jitrop.run ~reference ~target
    | "indirect-jitrop" -> R2c_attacks.Indirect_jitrop.run ~reference ~target
    | "aocr" -> R2c_attacks.Aocr.run ~rng:(Rng.create (seed * 31)) ~reference ~target ()
    | "pirop" -> R2c_attacks.Pirop.run ~reference ~target ()
    | "blindrop" -> R2c_attacks.Blindrop.run ~target ()
    | "race" -> R2c_attacks.Race.run ~target
    | "ra-zeroing" -> R2c_attacks.Ra_zeroing.run ~target ()
    | other ->
        failwith
          ("unknown attack " ^ other
         ^ " (have: rop, jitrop, indirect-jitrop, aocr, pirop, blindrop, race, \
            ra-zeroing)")
  in
  print_endline (Report.to_string report);
  Printf.printf "victim sensitive-call log: %s\n"
    (String.concat ", "
       (List.map
          (fun (a, b) -> Printf.sprintf "(0x%x, 0x%x)" a b)
          (Oracle.sensitive_log target)));
  if report.Report.success then 0 else 1

let () =
  let attack =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ATTACK"
          ~doc:"One of: rop, jitrop, indirect-jitrop, aocr, pirop, blindrop.")
  in
  let defense =
    Arg.(
      value & opt string "unprotected"
      & info [ "d"; "defense" ] ~docv:"DEFENSE"
          ~doc:"Defense model (unprotected, aslr, CodeArmor, TASR, StackArmor, \
                Readactor, kR^X, R2C, r2c-nopie).")
  in
  let seed =
    Arg.(value & opt int 2 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Victim seed.")
  in
  let doc = "Run a code-reuse attack against the hardened vulnerable server." in
  let cmd =
    Cmd.v (Cmd.info "r2c-attack" ~version:"1.0.0" ~doc)
      Term.(const run_attack $ attack $ defense $ seed)
  in
  exit (Cmd.eval' cmd)
