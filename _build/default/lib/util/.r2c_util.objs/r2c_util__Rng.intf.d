lib/util/rng.mli:
