lib/util/stats.mli:
