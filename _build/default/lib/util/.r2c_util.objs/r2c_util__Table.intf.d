lib/util/table.mli:
