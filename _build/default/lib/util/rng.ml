type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 (Steele et al.), the reference stream generator: one additive
   constant walk plus a finalizing mix. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: 62 random bits modulo the bound. The
     modulo bias is < bound / 2^62, irrelevant at our bounds. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  bits mod bound

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t ~k arr =
  let n = Array.length arr in
  assert (k <= n);
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k draws are needed. *)
  let picked = ref [] in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp;
    picked := arr.(idx.(i)) :: !picked
  done;
  List.rev !picked
