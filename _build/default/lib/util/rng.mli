(** Deterministic pseudo-random number generation (SplitMix64).

    Every randomized decision in the toolchain — diversification choices at
    compile time, workload inputs, attack trials — draws from an explicit
    generator so that a compilation or experiment is reproducible from its
    seed alone, mirroring the paper's per-seed recompilation methodology
    (Section 6.2). *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator state; the copy evolves
    independently. *)
val copy : t -> t

(** [split t] derives a statistically independent generator and advances
    [t]. Use to hand sub-seeds to compilation passes without coupling their
    consumption patterns. *)
val split : t -> t

(** [int64 t] returns the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] returns a uniform integer in [\[lo, hi\]]
    (inclusive). Requires [lo <= hi]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [shuffle_list t l] returns a permutation of [l]. *)
val shuffle_list : t -> 'a list -> 'a list

(** [choose t arr] picks a uniform element. [arr] must be non-empty. *)
val choose : t -> 'a array -> 'a

(** [choose_list t l] picks a uniform element. [l] must be non-empty. *)
val choose_list : t -> 'a list -> 'a

(** [sample_without_replacement t ~k arr] picks [k] distinct positions'
    elements uniformly. Requires [k <= Array.length arr]. *)
val sample_without_replacement : t -> k:int -> 'a array -> 'a list
