let require_nonempty = function
  | [] -> invalid_arg "Stats: empty list"
  | _ -> ()

let mean xs =
  require_nonempty xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  require_nonempty xs;
  List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive") xs;
  let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (log_sum /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  require_nonempty xs;
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let median_int xs =
  require_nonempty xs;
  let s = Array.of_list (List.sort compare xs) in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else s.((n / 2) - 1)

let stddev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let percentile p xs =
  require_nonempty xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  s.(rank - 1)

let minimum xs =
  require_nonempty xs;
  List.fold_left min (List.hd xs) xs

let maximum xs =
  require_nonempty xs;
  List.fold_left max (List.hd xs) xs

let pearson xs ys =
  if List.length xs <> List.length ys then invalid_arg "Stats.pearson: length mismatch";
  require_nonempty xs;
  let mx = mean xs and my = mean ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs) in
  let sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys) in
  if sx = 0.0 || sy = 0.0 then 0.0 else num /. (sx *. sy)

type cluster = { lo : int; hi : int; members : int list }

let cluster ~gap values =
  match List.sort compare values with
  | [] -> []
  | first :: rest ->
      (* Walk the sorted values, closing a cluster at each gap wider than
         [gap]. [current] holds the open cluster's members in reverse. *)
      let close current =
        let members = List.rev current in
        match (members, current) with
        | lo :: _, hi :: _ -> { lo; hi; members }
        | [], _ | _, [] -> assert false
      in
      let rec walk acc current prev = function
        | [] -> List.rev (close current :: acc)
        | v :: tl ->
            if v - prev > gap then walk (close current :: acc) [ v ] v tl
            else walk acc (v :: current) v tl
      in
      walk [] [ first ] first rest

let cluster_size c = List.length c.members

let clusters_by_size cs =
  List.sort (fun a b -> compare (cluster_size b) (cluster_size a)) cs
