(** Descriptive statistics and the 1-D value clustering used by AOCR's
    pointer analysis.

    The evaluation reports medians, geometric means and maxima (Table 1,
    Figure 6); the AOCR attack groups leaked stack words by value range
    (Section 2.3 / 4.2). Both live here. *)

(** [mean xs] — arithmetic mean. [xs] must be non-empty. *)
val mean : float list -> float

(** [geomean xs] — geometric mean; all elements must be positive. *)
val geomean : float list -> float

(** [median xs] — the median (average of middle pair for even lengths). *)
val median : float list -> float

(** [median_int xs] — integer median (lower middle for even lengths). *)
val median_int : int list -> int

(** [stddev xs] — population standard deviation. *)
val stddev : float list -> float

(** [percentile p xs] — the [p]-th percentile (0..100), nearest-rank. *)
val percentile : float -> float list -> float

(** [minimum xs] / [maximum xs] on non-empty lists. *)
val minimum : float list -> float

val maximum : float list -> float

(** [pearson xs ys] — Pearson correlation coefficient of two equal-length
    series (the paper correlates call frequency with overhead in
    Section 7.1). Returns 0 for degenerate series. *)
val pearson : float list -> float list -> float

(** A cluster of numerically close values, as produced by {!cluster}. *)
type cluster = {
  lo : int;  (** smallest member *)
  hi : int;  (** largest member *)
  members : int list;  (** all members, ascending *)
}

(** [cluster ~gap values] sorts [values] and splits them wherever two
    neighbours differ by more than [gap]. This reproduces the AOCR paper's
    observation that pointer values on x86-64 occur in tight clusters (text,
    data, heap, stack) separated by huge gaps. Result is ordered by
    ascending [lo]. *)
val cluster : gap:int -> int list -> cluster list

(** [clusters_by_size cs] orders clusters by descending member count — the
    AOCR attacker identifies "the third largest cluster" as heap pointers. *)
val clusters_by_size : cluster list -> cluster list

(** [cluster_size c] — number of members. *)
val cluster_size : cluster -> int
