type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~headers ?(aligns = []) rows =
  let ncols = List.length headers in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let all = headers :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let align_of c = try List.nth aligns c with Failure _ | Invalid_argument _ -> Left in
  let render_row row =
    String.concat "  "
      (List.mapi (fun c cell -> pad (align_of c) (List.nth widths c) cell) row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row headers :: sep :: List.map render_row rows)

let print ~title ~headers ?(aligns = []) rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~headers ~aligns rows)

let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)

let ratio x = Printf.sprintf "%.2f" x
