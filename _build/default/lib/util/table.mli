(** Plain-text table rendering for experiment output.

    The benchmark harness prints paper-style tables (Table 1, 2, 3 and the
    Figure 6 series) to stdout; this module does the column alignment. *)

type align = Left | Right

(** [render ~headers ~aligns rows] lays the string cells out in padded
    columns. [aligns] applies per column; missing entries default to
    [Left]. Rows shorter than [headers] are padded with empty cells. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ~title ~headers ~aligns rows] renders with a title line and a
    separator, then prints to stdout. *)
val print : title:string -> headers:string list -> ?aligns:align list -> string list list -> unit

(** [pct x] formats a ratio as a percentage with one decimal ("6.6%" for
    [0.066]). *)
val pct : float -> string

(** [ratio x] formats an overhead ratio with two decimals ("1.06"). *)
val ratio : float -> string
