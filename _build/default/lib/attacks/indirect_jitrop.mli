(** Indirect JIT-ROP (Section 2.1, [25, 26]): infer gadget locations from
    leaked code pointers without reading code.

    Reads the frame's return address from the leaked stack (at the
    reference-known slot), computes the module slide as the difference to
    the reference value, and rebases the reference gadget and PLT
    addresses. Correct against sliding-only diversification (ASLR);
    against function shuffling the rebased addresses are stale, and
    against R2C the "return address" read is likely a BTRA in the first
    place — executing the chain then lands in a booby trap. *)

val name : string

val run : reference:Reference.t -> target:Oracle.t -> Report.t
