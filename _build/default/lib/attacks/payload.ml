let le64 v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let slice ~values ~from_off ~upto_off =
  assert (from_off <= upto_off);
  String.init (upto_off - from_off) (fun i ->
      let off = from_off + i in
      let word = values.(off / 8) in
      Char.chr ((word lsr (8 * (off mod 8))) land 0xff))

let fill n = String.make n 'A'
