open R2c_machine

let name = "indirect-jit-rop"

let marker = R2c_workloads.Vulnapp.marker

let succeeded t = List.exists (fun (rdi, _) -> rdi = marker) (Oracle.sensitive_log t)

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

let run ~reference:(r : Reference.t) ~target:t =
  match Oracle.to_break t with
  | `Done o ->
      Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
        ~notes:[ "no breakpoint: " ^ Process.outcome_to_string o ]
        ()
  | `Break -> (
      match Oracle.resume_to_break t with
      | `Done o ->
          Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
            ~notes:[ "second request never reached: " ^ Process.outcome_to_string o ]
            ()
      | `Break -> (
          match r.pop_rdi with
          | None ->
              Report.make ~attack:name ~success:false ~detected:false
                ~notes:[ "reference binary has no pop rdi gadget" ] ()
          | Some ref_gadget ->
              let _, values = Oracle.leak_stack t ~words:((r.ra_off / 8) + 8) in
              (* The word at the reference RA slot is taken for the return
                 address; under R2C it may well be a BTRA. *)
              let leaked_ra = values.(r.ra_off / 8) in
              let slide = leaked_ra - r.frame_ra_value in
              let gadget = ref_gadget + slide in
              let sensitive = r.sensitive_plt + slide in
              let filler = Payload.slice ~values ~from_off:r.buf_off ~upto_off:r.ra_off in
              let chain =
                Payload.le64 gadget ^ Payload.le64 marker ^ Payload.le64 sensitive
              in
              Oracle.send t (filler ^ chain);
              let (_ : Process.outcome) = Oracle.resume_to_end t in
              finish ~attempts:1
                ~notes:[ Printf.sprintf "inferred slide %#x" slide ]
                t))
