module Stats = R2c_util.Stats

type label = Code | Static_data | Heap_like | Stack_like | Unknown

type cluster = {
  label : label;
  lo : int;
  hi : int;
  members : int list;
}

let label_to_string = function
  | Code -> "code"
  | Static_data -> "static data"
  | Heap_like -> "heap"
  | Stack_like -> "stack"
  | Unknown -> "unknown"

(* Public coarse knowledge of the user-space map — not victim ground
   truth: canonical Linux x86-64 places non-PIE text low, PIE/data/heap in
   the 0x5555xx-0x7fxx mmap range, stacks just below 0x7ffffffff000. *)
let label_of_range lo hi =
  if hi < 0x1_0000_0000 then Code
  else if lo >= 0x7f00_0000_0000 then Stack_like
  else if lo >= 0x5000_0000_0000 && hi < 0x7f00_0000_0000 then
    (* The data/heap boundary is not directly observable; AOCR leans on the
       brk heap sitting above the module's data segment. Within the window,
       call the lower cluster data and higher clusters heap; a single
       cluster here is treated as heap-like (the attacker dereferences to
       find out). *)
    Heap_like
  else Unknown

let analyze ?(gap = 1 lsl 24) values =
  let pointers = List.filter (fun v -> v > 0xffff) values in
  let raw = Stats.cluster ~gap pointers in
  (* First pass: range labels. *)
  let labelled =
    List.map
      (fun (c : Stats.cluster) ->
        { label = label_of_range c.Stats.lo c.Stats.hi; lo = c.lo; hi = c.hi;
          members = c.members })
      raw
  in
  (* Second pass: among the mmap-range clusters, the lowest is the module's
     data segment, anything above it is heap. *)
  let mmap_clusters =
    List.filter (fun c -> c.label = Heap_like) labelled |> List.sort compare
  in
  let labelled =
    match mmap_clusters with
    | lowest :: _ :: _ ->
        List.map
          (fun c ->
            if c.label = Heap_like && c.lo = lowest.lo then
              { c with label = Static_data }
            else c)
          labelled
    | _ -> labelled
  in
  List.sort
    (fun a b -> compare (List.length b.members) (List.length a.members))
    labelled

let heap_candidates clusters =
  List.concat_map
    (fun c -> if c.label = Heap_like then c.members else [])
    clusters
  |> List.sort_uniq compare

let code_candidates clusters =
  List.concat_map (fun c -> if c.label = Code then c.members else []) clusters
  |> List.sort_uniq compare
