(** The call-site race-window attack of Section 5.1.

    A naive decoy scheme (kR^X-style, modelled by [Dconfig.Naive]) pushes
    only decoys and lets the call instruction write the real return
    address: an attacker who observes the stack immediately before and
    after the call sees exactly one word change — the return address,
    unmasked. Microsoft's Return Flow Guard fell to exactly this
    observation; R2C's Figure 3 setup pre-writes the return-address value
    so the call's implicit store changes nothing.

    The attack freezes the victim at the dispatch call instruction,
    snapshots the stack, single-steps across the call, snapshots again and
    diffs. Success = exactly the return-address slot identified. *)

val name : string

val run : target:Oracle.t -> Report.t
