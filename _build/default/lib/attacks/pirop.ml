open R2c_machine

let name = "pirop"

(* PIROP diverts control without choosing arguments: reaching the sensitive
   sink at all (through handler_exec's legitimate body) is the win. *)
let succeeded t = Oracle.sensitive_log t <> []

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

let run ?(max_tries = 16) ?(monitor_threshold = 1) ~reference:(r : Reference.t) ~target:t () =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let attempts = ref 0 in
  let overwrite_len = r.ra_off - r.buf_off + 2 in
  let rec try_slide_bits k =
    if k >= max_tries then finish ~attempts:!attempts ~notes:(List.rev !notes) t
    else if Oracle.detections t >= monitor_threshold then begin
      note "monitoring response (booby trap fired)";
      finish ~attempts:!attempts ~notes:(List.rev !notes) t
    end
    else if succeeded t then finish ~attempts:!attempts ~notes:(List.rev !notes) t
    else begin
      incr attempts;
      let low16 = (r.exec_low16 + (k * 0x1000)) land 0xffff in
      let payload = Payload.fill (overwrite_len - 2) ^ Payload.le16 low16 in
      let proceed () =
        Oracle.send t payload;
        let (_ : Process.outcome) = Oracle.resume_to_end t in
        if succeeded t then finish ~attempts:!attempts ~notes:(List.rev !notes) t
        else if Oracle.restart t then try_slide_bits (k + 1)
        else begin
          note "worker does not restart";
          finish ~attempts:!attempts ~notes:(List.rev !notes) t
        end
      in
      match Oracle.to_break t with
      | `Break -> proceed ()
      | `Done o ->
          note "service loop gone: %s" (Process.outcome_to_string o);
          finish ~attempts:!attempts ~notes:(List.rev !notes) t
    end
  in
  try_slide_bits 0
