open R2c_machine
module Rng = R2c_util.Rng

let name = "aocr"

let marker = R2c_workloads.Vulnapp.marker

let succeeded t = List.exists (fun (rdi, _) -> rdi = marker) (Oracle.sensitive_log t)

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

(* Step A: the AOCR statistical analysis, via the shared value-range
   clustering (Section 2.3). *)
let heap_candidates values =
  Cluster.heap_candidates (Cluster.analyze (Array.to_list values))

let run ?(max_candidates = 12) ?(monitor_threshold = 1) ~rng ~reference:(r : Reference.t)
    ~target:t () =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let attempts = ref 0 in
  let monitor_tripped () = Oracle.detections t >= monitor_threshold in
  let give_up why =
    note "%s" why;
    finish ~attempts:!attempts ~notes:(List.rev !notes) t
  in
  match Oracle.to_break t with
  | `Done o -> give_up ("no breakpoint: " ^ Process.outcome_to_string o)
  | `Break -> (
      match Oracle.resume_to_break t with
      | `Done o -> give_up ("second request never reached: " ^ Process.outcome_to_string o)
      | `Break -> (
          (* A: two pages of stack values (Section 4.2). *)
          let _, values = Oracle.leak_stack t ~words:1024 in
          let candidates = heap_candidates values in
          note "heap cluster: %d candidates" (List.length candidates);
          if candidates = [] then give_up "no heap cluster found"
          else begin
            (* B: pick-and-dereference until a session object surfaces. *)
            let shuffled = Rng.shuffle_list rng candidates in
            let rec probe tried = function
              | [] -> None
              | _ when tried >= max_candidates -> None
              | _ when monitor_tripped () -> None
              | cand :: rest -> (
                  incr attempts;
                  match Oracle.arb_read t (cand + 8) with
                  | Ok v when Addr.region_of v = Addr.Data -> Some v
                  | Ok _ -> probe (tried + 1) rest
                  | Error f ->
                      note "deref 0x%x faulted: %s" cand (Fault.to_string f);
                      if Oracle.restart t && not (monitor_tripped ()) then begin
                        (* The worker respawned; re-enter the same serving
                           state (second request's breakpoint) so the leaked
                           heap addresses are live again. *)
                        match Oracle.to_break t with
                        | `Break -> (
                            match Oracle.resume_to_break t with
                            | `Break -> probe (tried + 1) rest
                            | `Done _ -> None)
                        | `Done _ -> None
                      end
                      else None)
            in
            match probe 0 shuffled with
            | None ->
                if monitor_tripped () then give_up "monitoring response (booby trap fired)"
                else give_up "no data-section pointer reached through the heap"
            | Some data_ptr ->
                (* The reached field is g_motd's address; globals follow at
                   reference-known deltas. *)
                let default_cmd = data_ptr + r.default_cmd_delta in
                let service_table = data_ptr + r.service_table_delta in
                note "data section reached via 0x%x" data_ptr;
                (* C: corrupt the default parameter, then redirect dispatch
                   to the harvested whole function. *)
                incr attempts;
                (match Oracle.arb_write t default_cmd marker with
                | Ok () -> (
                    match Oracle.arb_read t (service_table + 24) with
                    | Ok exec_ptr when Addr.region_of exec_ptr = Addr.Text -> (
                        match Oracle.arb_write t service_table exec_ptr with
                        | Ok () ->
                            let (_ : Process.outcome) = Oracle.resume_to_end t in
                            ()
                        | Error f -> note "table write faulted: %s" (Fault.to_string f))
                    | Ok v -> note "harvested non-code pointer 0x%x" v
                    | Error f -> note "table read faulted: %s" (Fault.to_string f))
                | Error f -> note "default-param write faulted: %s" (Fault.to_string f));
                finish ~attempts:!attempts ~notes:(List.rev !notes) t
          end))
