(** Position-Independent ROP (Section 7.2.5, [31]).

    Corrupts only the low 16 bits of the return address, so full address
    knowledge (and therefore ASLR) is unnecessary: the high bits — slide
    included — stay intact. The target is [handler_exec]'s slide-invariant
    low bits from the reference image; the four slide bits inside the low
    16 are brute-forced across worker restarts.

    R2C impedes this two ways (Section 7.2.5): the return address slot is
    unknown among the BTRAs, so the partial write usually mangles a decoy
    with no control effect; and shuffling randomizes the low bits
    themselves, so even a hit retargets to a random place — frequently a
    booby trap. *)

val name : string

val run :
  ?max_tries:int ->
  ?monitor_threshold:int ->
  reference:Reference.t ->
  target:Oracle.t ->
  unit ->
  Report.t
