open R2c_machine

let name = "blind-rop"

let marker = R2c_workloads.Vulnapp.marker

let succeeded t = List.exists (fun (rdi, _) -> rdi = marker) (Oracle.sensitive_log t)

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

type probe_result = Survived of int  (** output lines *) | Crashed_probe | Gone

(* One probe: respawn, reach the serving state, deliver the payload, run to
   the end; report survival and the number of response lines the attacker
   saw. *)
let probe t payload =
  if t.Oracle.dead && not (Oracle.restart t) then Gone
  else
    match Oracle.to_break t with
    | `Done _ -> Gone
    | `Break -> (
        Oracle.send t payload;
        match Oracle.resume_to_end t with
        | Process.Exited _ ->
            let lines =
              String.fold_left
                (fun acc c -> if c = '\n' then acc + 1 else acc)
                0
                (Process.output t.Oracle.proc)
            in
            Survived lines
        | Process.Crashed _ | Process.Timeout -> Crashed_probe)

let plt_addr_of name_wanted =
  let rec idx i = function
    | [] -> 0
    | n :: tl -> if n = name_wanted then i else idx (i + 1) tl
  in
  Addr.text_base + (16 * idx 0 Image.builtin_names)

let run ?(probe_budget = 20_000) ?(monitor_threshold = 1) ~target:t () =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let attempts = ref 0 in
  let monitor_tripped () = Oracle.detections t >= monitor_threshold in
  let abort why =
    note "%s" why;
    finish ~attempts:!attempts ~notes:(List.rev !notes) t
  in
  let budget_left () = !attempts < probe_budget && not (monitor_tripped ()) in
  let try_probe payload =
    incr attempts;
    probe t payload
  in
  (* Bitau et al.'s stack reading: extend the overflow one byte at a time,
     keeping only bytes the server survives. The true values are not needed
     — any survivable filler reaches deeper into the frame. *)
  let filler = Buffer.create 128 in
  let result = ref None in
  let stop r = result := Some r in
  let learn_byte () =
    let rec guess g =
      if g > 255 then None
      else if not (budget_left ()) then None
      else
        match try_probe (Buffer.contents filler ^ String.make 1 (Char.chr g)) with
        | Survived _ -> Some (Char.chr g)
        | Crashed_probe -> guess (g + 1)
        | Gone -> None
    in
    (* Likely bytes first: zero padding, then the canonical stack/heap/text
       high bytes, then everything. *)
    let ordered = [ 0x00; 0x41; 0xff; 0x7f; 0xfe; 0x55; 0x40 ] in
    let rec preferred = function
      | [] -> guess 0
      | g :: tl -> (
          if not (budget_left ()) then None
          else
            match try_probe (Buffer.contents filler ^ String.make 1 (Char.chr g)) with
            | Survived _ -> Some (Char.chr g)
            | Crashed_probe -> preferred tl
            | Gone -> None)
    in
    preferred ordered
  in
  (* Stop-gadget test at a word boundary: a ret into a harmless PLT entry
     produces one extra response line iff the word is the return address. *)
  let stop_plt = plt_addr_of "print_int" in
  let ra_here () =
    let base = Buffer.contents filler in
    match try_probe (base ^ Payload.le64 stop_plt) with
    | Survived _ | Gone -> false
    | Crashed_probe -> (
        let with_stop =
          String.fold_left
            (fun acc c -> if c = '\n' then acc + 1 else acc)
            0
            (Process.output t.Oracle.proc)
        in
        match try_probe (base ^ Payload.fill 8) with
        | Survived _ | Gone -> false
        | Crashed_probe ->
            let with_garbage =
              String.fold_left
                (fun acc c -> if c = '\n' then acc + 1 else acc)
                0
                (Process.output t.Oracle.proc)
            in
            with_stop > with_garbage)
  in
  let ra_found = ref false in
  while !result = None && not !ra_found do
    if Buffer.length filler >= 512 then stop (abort "return address not located within 512 bytes")
    else if not (budget_left ()) then
      stop
        (abort
           (if monitor_tripped () then "monitoring response during stack reading"
            else "probe budget exhausted during stack reading"))
    else if Buffer.length filler mod 8 = 0 && ra_here () then ra_found := true
    else
      match learn_byte () with
      | Some c -> Buffer.add_char filler c
      | None ->
          stop
            (abort
               (if monitor_tripped () then "monitoring response during stack reading"
                else "stack reading failed"))
  done;
  match !result with
  | Some r -> r
  | None ->
  note "return address at buffer+%d (stack reading)" (Buffer.length filler);
  (* Gadget sweep: ret2plt chain with brute-forced first gadget. The PLT of
     a non-PIE binary is architectural knowledge. *)
  let sensitive = plt_addr_of "sensitive" in
  let start = Addr.text_base + (16 * List.length Image.builtin_names) in
  let base = Buffer.contents filler in
  let rec sweep addr =
    if not (budget_left ()) then
      abort
        (if monitor_tripped () then "monitoring response during gadget sweep"
         else "probe budget exhausted")
    else begin
      let chain = Payload.le64 addr ^ Payload.le64 marker ^ Payload.le64 sensitive in
      match try_probe (base ^ chain) with
      | Gone -> abort "worker gone"
      | Survived _ | Crashed_probe ->
          if succeeded t then finish ~attempts:!attempts ~notes:(List.rev !notes) t
          else sweep (addr + 1)
    end
  in
  sweep start
