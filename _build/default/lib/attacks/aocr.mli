(** Address-Oblivious Code Reuse (Section 2.3, [59]).

    The three demonstrated steps, oblivious to the code layout:

    + {b Profile} (A): leak two pages of stack and run the statistical
      value-range analysis — pointer values cluster by region; the heap
      cluster is picked without needing any specific pointer's identity.
    + {b Leak heap} (B): dereference a pointer from the heap cluster to
      reach a session object whose field points into the data section;
      that pointer plus reference-known deltas locate the globals. Under
      R2C, the picked "heap pointer" is a BTDP with probability
      B/(H+B) — dereferencing it trips a guard page (Section 4.2).
    + {b Corrupt} (C): overwrite the default-parameter global with the
      marker and redirect a service-table slot to the harvested
      [handler_exec] pointer — whole-function reuse with a corrupted
      default argument, no gadgets involved. Under global shuffling the
      deltas are stale and both writes miss.

    [max_candidates] bounds how many heap-cluster picks the attacker tries
    (restarting the worker after each faulting dereference);
    [monitor_threshold] models the reactive defense: the attack aborts once
    that many booby-trap/guard-page detections have fired. *)

val name : string

val run :
  ?max_candidates:int ->
  ?monitor_threshold:int ->
  rng:R2c_util.Rng.t ->
  reference:Reference.t ->
  target:Oracle.t ->
  unit ->
  Report.t
