(** Classic return-oriented programming (Section 2.1).

    Monoculture attack: gadget addresses and the buffer-to-return-address
    distance come from the attacker's reference copy. The stack smash is
    performed through the server's real overflow; benign filler is rebuilt
    from a prior stack leak so only the return address changes. The chain
    is [pop rdi; marker; sensitive@plt] — ret2libc through the PLT.

    Defeated by any defense that moves the gadget (code randomization) or
    the return address (BTRAs); a wrong guess that lands in a booby trap is
    a detection. *)

val name : string

(** [run ~reference ~target] *)
val run : reference:Reference.t -> target:Oracle.t -> Report.t

(** [craft ~reference ~values] — the exploit request bytes, given a leaked
    stack window (benign filler + chain). [None] when the reference binary
    lacks the gadget. Exposed for the MVEE divergence experiment. *)
val craft : reference:Reference.t -> values:int array -> string option
