(** Attack outcomes.

    Every attack returns one of these; the security harness (Table 3 and
    the Section 7.2 experiments) aggregates them over trials. *)

type t = {
  attack : string;
  success : bool;  (** the attack reached its goal *)
  detected : bool;  (** a booby trap or guard page fired along the way *)
  crashes : int;  (** plain crashes observed (restart oracle uses) *)
  attempts : int;  (** probes/interactions used *)
  notes : string list;  (** free-form trace for the report *)
}

val make :
  attack:string ->
  success:bool ->
  detected:bool ->
  ?crashes:int ->
  ?attempts:int ->
  ?notes:string list ->
  unit ->
  t

val to_string : t -> string

(** Aggregate over trials. *)
type summary = {
  name : string;
  trials : int;
  successes : int;
  detections : int;
  total_crashes : int;
}

val summarize : string -> t list -> summary
val summary_to_string : summary -> string
