open R2c_machine

let name = "rop"

let marker = R2c_workloads.Vulnapp.marker

let succeeded t =
  List.exists (fun (rdi, _) -> rdi = marker) (Oracle.sensitive_log t)

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

(* The exploit bytes: benign filler rebuilt from the leak, then
   [pop rdi; marker; sensitive@plt]. Exposed for the MVEE experiment. *)
let craft ~(reference : Reference.t) ~values =
  match reference.pop_rdi with
  | None -> None
  | Some gadget ->
      let filler =
        Payload.slice ~values ~from_off:reference.buf_off ~upto_off:reference.ra_off
      in
      Some
        (filler ^ Payload.le64 gadget ^ Payload.le64 marker
        ^ Payload.le64 reference.sensitive_plt)

let run ~reference:(r : Reference.t) ~target:t =
  match Oracle.to_break t with
  | `Done o ->
      Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
        ~notes:[ "no breakpoint: " ^ Process.outcome_to_string o ]
        ()
  | `Break -> (
      match Oracle.resume_to_break t with
      | `Done o ->
          Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
            ~notes:[ "second request never reached: " ^ Process.outcome_to_string o ]
            ()
      | `Break -> (
          match r.pop_rdi with
          | None ->
              Report.make ~attack:name ~success:false ~detected:false
                ~notes:[ "reference binary has no pop rdi gadget" ] ()
          | Some _ ->
              let _, values = Oracle.leak_stack t ~words:((r.ra_off / 8) + 8) in
              (match craft ~reference:r ~values with
              | None -> ()
              | Some payload ->
                  Oracle.send t payload;
                  let (_ : Process.outcome) = Oracle.resume_to_end t in
                  ());
              finish ~attempts:1 t))
