type t = {
  attack : string;
  success : bool;
  detected : bool;
  crashes : int;
  attempts : int;
  notes : string list;
}

let make ~attack ~success ~detected ?(crashes = 0) ?(attempts = 1) ?(notes = []) () =
  { attack; success; detected; crashes; attempts; notes }

let to_string r =
  Printf.sprintf "%s: %s%s (crashes=%d attempts=%d)%s" r.attack
    (if r.success then "SUCCESS" else "failed")
    (if r.detected then ", DETECTED" else "")
    r.crashes r.attempts
    (match r.notes with [] -> "" | ns -> "\n  " ^ String.concat "\n  " ns)

type summary = {
  name : string;
  trials : int;
  successes : int;
  detections : int;
  total_crashes : int;
}

let summarize name reports =
  {
    name;
    trials = List.length reports;
    successes = List.length (List.filter (fun r -> r.success) reports);
    detections = List.length (List.filter (fun r -> r.detected) reports);
    total_crashes = List.fold_left (fun acc r -> acc + r.crashes) 0 reports;
  }

let summary_to_string s =
  Printf.sprintf "%s: %d/%d succeeded, %d detected, %d crashes" s.name s.successes
    s.trials s.detections s.total_crashes
