open R2c_machine

type t = {
  img : Image.t;
  ra_off : int;
  buf_off : int;
  fp_off : int;
  session_off : int;
  frame_ra_value : int;
  pop_rdi : int option;
  sensitive_plt : int;
  text_base : int;
  data_base : int;
  motd_addr : int;
  default_cmd_delta : int;
  service_table_delta : int;
  exec_entry : int;
  exec_low16 : int;
}

let marker_byte = 0xa1

let find_gadget code_at ~first ~len =
  let rec scan addr =
    if addr >= first + len then None
    else
      match code_at addr with
      | Some (Insn.Pop Insn.RDI, l) -> (
          match code_at (addr + l) with
          | Some (Insn.Ret, _) -> Some addr
          | Some _ | None -> scan (addr + 1))
      | Some _ | None -> scan (addr + 1)
  in
  scan first

let measure img =
  let sym name =
    match Hashtbl.find_opt img.Image.symbols name with
    | Some a -> a
    | None -> failwith ("Reference.measure: no symbol " ^ name)
  in
  let proc = Process.start img in
  (* A recognisable pattern fills the buffer of the first two requests
     (measurement happens at the second request's breakpoint). *)
  Cpu.push_input proc.Process.cpu (String.make 48 (Char.chr marker_byte));
  Cpu.push_input proc.Process.cpu (String.make 48 (Char.chr marker_byte));
  let break = sym R2c_workloads.Vulnapp.break_symbol in
  (* Observe at the SECOND request's breakpoint: the frame then carries the
     previous request's residue (session pointer, dispatched function
     pointer) at the very slots the next request will reuse. *)
  let hit () =
    match Process.run_until proc ~break:[ break ] with
    | `Hit -> ()
    | `Done o ->
        failwith
          ("Reference.measure: never reached breakpoint: " ^ Process.outcome_to_string o)
  in
  hit ();
  Cpu.step proc.Process.cpu;
  hit ();
  let cpu = proc.Process.cpu in
  let mem = cpu.Cpu.mem in
  let rsp = Cpu.reg_get cpu RSP in
  let peek a = match Mem.peek_u64 mem a with Some v -> v | None -> 0 in
  (* main's call sites produce the frame's return address value. *)
  let main_ras =
    Hashtbl.fold
      (fun name addr acc ->
        if String.length name > 9 && String.sub name 0 9 = "__ra_main" then addr :: acc
        else acc)
      img.Image.symbols []
  in
  let scan_words = 512 in
  let find_off pred =
    let rec go i = if i >= scan_words then None else if pred (peek (rsp + (8 * i))) then Some (8 * i) else go (i + 1) in
    go 0
  in
  let ra_off, frame_ra_value =
    match find_off (fun v -> List.mem v main_ras) with
    | Some off -> (off, peek (rsp + off))
    | None -> failwith "Reference.measure: frame return address not found"
  in
  (* The marker pattern locates the buffer (byte-granular). *)
  let buf_off =
    let rec go i =
      if i >= scan_words * 8 then failwith "Reference.measure: buffer not found"
      else
        let all_marked =
          List.for_all
            (fun k -> Mem.peek_u8 mem (rsp + i + k) = Some marker_byte)
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        if all_marked then i else go (i + 1)
    in
    go 0
  in
  let expected_fp = peek (sym "g_service_table") in
  let fp_off =
    match find_off (fun v -> v = expected_fp) with
    | Some off -> off
    | None -> failwith "Reference.measure: function pointer local not found"
  in
  let motd_addr = sym "g_motd" in
  let session_off =
    match
      find_off (fun v -> Addr.region_of v = Addr.Heap && peek (v + 8) = motd_addr)
    with
    | Some off -> off
    | None -> failwith "Reference.measure: session pointer not found"
  in
  let code_at a = Image.code_at img a in
  let pop_rdi = find_gadget code_at ~first:img.Image.text_base ~len:img.Image.text_len in
  let exec_entry = peek (sym "g_service_table" + 24) in
  {
    img;
    ra_off;
    buf_off;
    fp_off;
    session_off;
    frame_ra_value;
    pop_rdi;
    sensitive_plt = sym "sensitive";
    text_base = img.Image.text_base;
    data_base = img.Image.data_base;
    motd_addr;
    default_cmd_delta = sym "g_default_cmd" - motd_addr;
    service_table_delta = sym "g_service_table" - motd_addr;
    exec_entry;
    exec_low16 = exec_entry land 0xffff;
  }
