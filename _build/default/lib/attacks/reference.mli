(** The attacker's reference copy of the target binary.

    Code-reuse attacks rest on the software monoculture: the attacker runs
    and dissects their own copy (full ground-truth access is legitimate
    there) and transfers offsets, gadget addresses and layout knowledge to
    the victim. Against an undiversified target the reference is exact;
    against a diversified target (different seed) every transferred datum
    is potentially stale — measuring exactly *which* knowledge survives
    each defense is the security evaluation. *)

type t = {
  img : R2c_machine.Image.t;
  ra_off : int;  (** bytes from breakpoint rsp to process_request's RA *)
  buf_off : int;  (** bytes from rsp to the overflow buffer *)
  fp_off : int;  (** bytes from rsp to the function-pointer local *)
  session_off : int;  (** bytes from rsp to the heap session pointer *)
  frame_ra_value : int;  (** the RA value observed (return into main) *)
  pop_rdi : int option;  (** classic gadget address, if present *)
  sensitive_plt : int;
  text_base : int;
  data_base : int;
  motd_addr : int;
  default_cmd_delta : int;  (** g_default_cmd relative to g_motd *)
  service_table_delta : int;  (** g_service_table relative to g_motd *)
  exec_entry : int;  (** value of the handler_exec service-table slot *)
  exec_low16 : int;
}

(** [measure img] — run the attacker's copy of the vulnerable server to the
    breakpoint and extract the transferable knowledge. Raises
    [Failure] when the binary does not look like the vulnerable server. *)
val measure : R2c_machine.Image.t -> t

(** [find_gadget code_at ~first ~len] — lowest address [a] in
    [\[first, first+len)] where [code_at a] decodes [pop rdi] immediately
    followed by [ret]. Shared by reference measurement and the JIT-ROP
    runtime scan. *)
val find_gadget :
  (int -> (R2c_machine.Insn.t * int) option) -> first:int -> len:int -> int option
