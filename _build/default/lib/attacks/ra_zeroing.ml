open R2c_machine

let name = "ra-zeroing"

let finish ~success ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

(* Reach the mid-request observation point: second request, after its
   read_input returned. *)
let to_serving t =
  match Oracle.to_break t with
  | `Done _ -> false
  | `Break -> ( match Oracle.resume_to_break t with `Done _ -> false | `Break -> true)

let run ?(max_probes = 40) ?(monitor_threshold = 1) ~target:t () =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let attempts = ref 0 in
  let monitor_tripped () = Oracle.detections t >= monitor_threshold in
  if not (to_serving t) then finish ~success:false ~attempts:0 ~notes:[ "no service" ] t
  else begin
    (* Candidates: byte offsets (from rsp) of text-range words in the live
       window — return-address candidates in BTRA terms. *)
    let _, values = Oracle.leak_stack t ~words:96 in
    let candidates = ref [] in
    Array.iteri
      (fun i v -> if Addr.region_of v = Addr.Text then candidates := (8 * i) :: !candidates)
      values;
    let candidates = List.rev !candidates in
    note "%d return-address candidates in the window" (List.length candidates);
    let rec probe = function
      | [] -> finish ~success:false ~attempts:!attempts ~notes:(List.rev !notes) t
      | _ when !attempts >= max_probes ->
          note "probe budget exhausted";
          finish ~success:false ~attempts:!attempts ~notes:(List.rev !notes) t
      | _ when monitor_tripped () ->
          note "monitoring response (consistency check fired)";
          finish ~success:false ~attempts:!attempts ~notes:(List.rev !notes) t
      | off :: rest -> (
          incr attempts;
          (* Fresh worker, same layout; re-reach the same state, zero the
             candidate, observe the outcome. *)
          if (not (Oracle.restart t)) || not (to_serving t) then
            finish ~success:false ~attempts:!attempts
              ~notes:(List.rev ("worker gone" :: !notes))
              t
          else
            let slot = Oracle.rsp t + off in
            match Oracle.arb_write t slot 0 with
            | Error _ ->
                finish ~success:false ~attempts:!attempts
                  ~notes:(List.rev ("write failed" :: !notes))
                  t
            | Ok () -> (
                match Oracle.resume_to_end t with
                | Process.Crashed (Fault.Booby_trap _) ->
                    (* The zeroed word was a checked BTRA: Section 7.3's
                       counter-measure caught the campaign. *)
                    probe rest
                | Process.Crashed _ -> (
                    (* Confirm: a disclosure is only actionable if it holds
                       on the respawned worker (load-time re-randomization
                       breaks exactly this, Section 7.3). *)
                    incr attempts;
                    if (not (Oracle.restart t)) || not (to_serving t) then
                      finish ~success:false ~attempts:!attempts
                        ~notes:(List.rev ("worker gone" :: !notes))
                        t
                    else
                      let slot = Oracle.rsp t + off in
                      match Oracle.arb_write t slot 0 with
                      | Error _ -> probe rest
                      | Ok () -> (
                          match Oracle.resume_to_end t with
                          | Process.Crashed (Fault.Booby_trap _) -> probe rest
                          | Process.Crashed _ ->
                              note
                                "crash on zeroing rsp+%d twice: that is the return address"
                                off;
                              finish ~success:true ~attempts:!attempts
                                ~notes:(List.rev !notes) t
                          | Process.Exited _ | Process.Timeout ->
                              note "rsp+%d not stable across respawn" off;
                              probe rest))
                | Process.Exited _ | Process.Timeout ->
                    (* Survived: the word was a booby-trapped decoy. *)
                    probe rest))
    in
    probe candidates
  end
