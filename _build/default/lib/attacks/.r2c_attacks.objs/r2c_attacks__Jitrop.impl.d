lib/attacks/jitrop.ml: Addr Array Cluster Hashtbl Image Insn List Oracle Payload Process R2c_machine R2c_workloads Reference Report
