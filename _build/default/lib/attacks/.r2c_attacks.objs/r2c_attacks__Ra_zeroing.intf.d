lib/attacks/ra_zeroing.mli: Oracle Report
