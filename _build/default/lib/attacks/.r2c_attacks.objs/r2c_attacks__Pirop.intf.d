lib/attacks/pirop.mli: Oracle Reference Report
