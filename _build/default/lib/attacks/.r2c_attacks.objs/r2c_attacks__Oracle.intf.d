lib/attacks/oracle.mli: R2c_machine
