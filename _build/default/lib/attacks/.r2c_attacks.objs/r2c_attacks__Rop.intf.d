lib/attacks/rop.mli: Oracle Reference Report
