lib/attacks/blindrop.mli: Oracle Report
