lib/attacks/reference.ml: Addr Char Cpu Hashtbl Image Insn List Mem Process R2c_machine R2c_workloads String
