lib/attacks/cluster.mli:
