lib/attacks/oracle.ml: Array Cpu Fault Hashtbl Image List Mem Process R2c_machine
