lib/attacks/aocr.mli: Oracle R2c_util Reference Report
