lib/attacks/indirect_jitrop.ml: Array List Oracle Payload Printf Process R2c_machine R2c_workloads Reference Report
