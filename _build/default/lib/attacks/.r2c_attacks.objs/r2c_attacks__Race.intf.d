lib/attacks/race.mli: Oracle Report
