lib/attacks/pirop.ml: List Oracle Payload Printf Process R2c_machine Reference Report
