lib/attacks/aocr.ml: Addr Array Cluster Fault List Oracle Printf Process R2c_machine R2c_util R2c_workloads Reference Report
