lib/attacks/indirect_jitrop.mli: Oracle Reference Report
