lib/attacks/cluster.ml: List R2c_util
