lib/attacks/payload.mli:
