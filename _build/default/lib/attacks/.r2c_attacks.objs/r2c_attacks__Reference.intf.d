lib/attacks/reference.mli: R2c_machine
