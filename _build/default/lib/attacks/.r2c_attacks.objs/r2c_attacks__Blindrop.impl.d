lib/attacks/blindrop.ml: Addr Buffer Char Image List Oracle Payload Printf Process R2c_machine R2c_workloads Report String
