lib/attacks/report.ml: List Printf String
