lib/attacks/payload.ml: Array Char String
