lib/attacks/ra_zeroing.ml: Addr Array Fault List Oracle Printf Process R2c_machine Report
