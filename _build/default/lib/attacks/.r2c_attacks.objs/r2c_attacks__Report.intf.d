lib/attacks/report.mli:
