lib/attacks/jitrop.mli: Oracle Reference Report
