lib/attacks/rop.ml: List Oracle Payload Process R2c_machine R2c_workloads Reference Report
