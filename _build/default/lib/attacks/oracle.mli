(** The attacker's interface to a victim process.

    Primitives mirror the threat model (Section 3): a deterministic stack
    leak (Malicious Thread Blocking), arbitrary read/write through the
    assumed memory-corruption vulnerability, input injection into the
    server's real (overflowing) [read_input], and a crash-restart oracle
    for worker-respawn servers. A faulting read/write kills the process —
    and if it hit a booby trap or guard page, the defender's monitoring has
    seen it.

    The [img] field is the target's image; attacks must not consult it for
    layout knowledge (that is what {!Reference} is for) — it is exposed for
    harness-side scoring and for the breakpoint scaffolding that stands in
    for MTB. *)

type t = {
  mutable img : R2c_machine.Image.t;
  mutable proc : R2c_machine.Process.t;
  restart_allowed : bool;
  relink : (unit -> R2c_machine.Image.t) option;
      (** TASR-style re-randomization: a fresh layout on every respawn *)
  break_sym : string;
  mutable break_addr : int;
  mutable interactions : int;
  mutable dead : bool;
  mutable sensitive_acc : (int * int) list;
}

(** [attach ?restart_allowed ?relink ~break_sym img] — load the target and
    position the MTB breakpoint at symbol [break_sym]. *)
val attach :
  ?restart_allowed:bool ->
  ?relink:(unit -> R2c_machine.Image.t) ->
  break_sym:string ->
  R2c_machine.Image.t ->
  t

(** [to_break t] — run (or re-run, under [relink]) until the breakpoint.
    [`Done] carries the final outcome when the breakpoint is never
    reached. *)
val to_break : t -> [ `Break | `Done of R2c_machine.Process.outcome ]

(** [rsp t] — stack pointer at the current stop. *)
val rsp : t -> int

(** [leak_stack t ~words] — [words] 64-bit words upward from rsp, with
    their addresses: [(rsp, values)]. *)
val leak_stack : t -> words:int -> int * int array

(** [leak_window t ~lo_off ~words] — like {!leak_stack} but starting at
    [rsp + lo_off] (negative offsets reach below the stack pointer). *)
val leak_window : t -> lo_off:int -> words:int -> int * int array

(** [leak_at t ~addr ~words] — snapshot at an absolute address (race-window
    diffing across instructions that move rsp). *)
val leak_at : t -> addr:int -> words:int -> int array

(** [to_symbol t sym] — MTB at an arbitrary named instruction (e.g. a
    specific call site). Steps over the current position first when
    already there. *)
val to_symbol : t -> string -> [ `Break | `Done of R2c_machine.Process.outcome ]

(** [step t] — advance the frozen victim by exactly one instruction (the
    race-window observation of Section 5.1). *)
val step : t -> (unit, R2c_machine.Fault.t) result

(** [arb_read t addr] / [arb_write t addr v] — the corruption primitives; a
    fault kills the process (restart required) and is recorded. *)
val arb_read : t -> int -> (int, R2c_machine.Fault.t) result

val arb_write : t -> int -> int -> (unit, R2c_machine.Fault.t) result

(** [disasm t addr] — JIT-ROP's code read: permission-checked read of the
    text byte at [addr], then decode. Under execute-only text this faults
    like {!arb_read}. *)
val disasm :
  t -> int -> ((R2c_machine.Insn.t * int) option, R2c_machine.Fault.t) result

(** [send t payload] — queue bytes for the server's next [read_input]. *)
val send : t -> string -> unit

(** [resume_to_end t] — let the victim run to completion. *)
val resume_to_end : t -> R2c_machine.Process.outcome

(** [resume_to_break t] — continue to the next breakpoint hit. *)
val resume_to_break : t -> [ `Break | `Done of R2c_machine.Process.outcome ]

(** [restart t] — respawn a crashed worker (same layout unless [relink]).
    [false] if the server does not restart workers. *)
val restart : t -> bool

(** Scoring accessors (harness side). *)

val sensitive_log : t -> (int * int) list
val detected : t -> bool
val crashes : t -> int
val detections : t -> int
