(** JIT-ROP (Section 2.1, [62]): disclose the code layout at runtime.

    Harvests code-range values from a stack leak, reads and disassembles
    text around them through the (permission-checked) read primitive,
    discovers a [pop rdi; ret] gadget and the PLT, and fires the same chain
    as {!Rop}. Defeats pure code-layout randomization — and is stopped
    cold by execute-only memory, whose very first text read faults
    (Section 2.1's leakage-resilience upgrade). *)

val name : string

val run : reference:Reference.t -> target:Oracle.t -> Report.t
