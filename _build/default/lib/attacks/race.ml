open R2c_machine

let name = "race-window"

let finish ~success ?(notes = []) t =
  Report.make ~attack:name ~success ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts:1 ~notes ()

(* The dispatch call inside process_request is its third call site. *)
let call_site_symbol = "__call_process_request_2"

let run ~target:t =
  match Oracle.to_symbol t call_site_symbol with
  | `Done o ->
      finish ~success:false
        ~notes:[ "victim never reached the call site: " ^ Process.outcome_to_string o ]
        t
  | `Break -> (
      (* Snapshot around the stack pointer: the RA slot will be written at
         rsp-8 by the call. Both snapshots use the same absolute window —
         the call itself moves rsp. *)
      let words = 48 in
      let lo_off = -8 * 16 in
      let base = Oracle.rsp t + lo_off in
      let before = Oracle.leak_at t ~addr:base ~words in
      match Oracle.step t with
      | Error f ->
          finish ~success:false ~notes:[ "call faulted: " ^ Fault.to_string f ] t
      | Ok () ->
          let after = Oracle.leak_at t ~addr:base ~words in
          let changed = ref [] in
          Array.iteri
            (fun i v ->
              if v <> before.(i) && Addr.region_of v = Addr.Text then
                changed := (lo_off + (8 * i), v) :: !changed)
            after;
          (match !changed with
          | [ (off, v) ] ->
              finish ~success:true
                ~notes:
                  [
                    Printf.sprintf
                      "exactly one word changed across the call: rsp%+d now holds 0x%x — \
                       the return address, unmasked"
                      off v;
                  ]
                t
          | [] ->
              finish ~success:false
                ~notes:
                  [
                    "no stack word changed across the call: the return address was \
                     pre-written (Figure 3's race-free setup)";
                  ]
                t
          | many ->
              finish ~success:false
                ~notes:
                  [ Printf.sprintf "%d words changed: ambiguous diff" (List.length many) ]
                t))
