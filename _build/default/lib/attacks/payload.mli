(** Exploit payload construction. *)

(** [le64 v] — 8 little-endian bytes. *)
val le64 : int -> string

(** [le16 v] — 2 little-endian bytes (partial-overwrite payloads). *)
val le16 : int -> string

(** [slice ~base ~values ~from_off ~upto_off] — the raw bytes of a leaked
    stack window between the two byte offsets (relative to [base], the
    leak's start). Used to rebuild benign filler so an overflow only
    changes the words the attacker targets. *)
val slice : values:int array -> from_off:int -> upto_off:int -> string

(** [fill n] — [n] filler bytes (0x41). *)
val fill : int -> string
