(** The return-address-zeroing side channel of Section 7.3.

    "An attacker could use the corruption of potential return addresses as
    a side channel. For example, by overwriting selected return address
    candidates with zero and observing whether the process crashes, the
    attacker could learn the location of the real return address."

    Implementation: at the serving breakpoint, every text-range word in the
    live frame window is a candidate. Each probe zeroes one candidate and
    lets the worker run: a crash identifies the real return address (the
    disclosure this attack is scored on); a clean exit means the word was a
    BTRA. The worker respawns with the same layout between probes.

    R2C's Section 7.3 counter-measure — post-return consistency checks on a
    random BTRA subset ([Dconfig.full_checked]) — turns the harmless-looking
    BTRA probes into booby-trap detections: a zeroed BTRA that happens to be
    its call site's checked one traps on the way out. *)

val name : string

(** Success = the true return-address slot was disclosed. *)
val run :
  ?max_probes:int ->
  ?monitor_threshold:int ->
  target:Oracle.t ->
  unit ->
  Report.t
