open R2c_machine

let name = "jit-rop"

let marker = R2c_workloads.Vulnapp.marker

let succeeded t = List.exists (fun (rdi, _) -> rdi = marker) (Oracle.sensitive_log t)

let finish ?(notes = []) ~attempts t =
  Report.make ~attack:name ~success:(succeeded t) ~detected:(Oracle.detected t)
    ~crashes:(Oracle.crashes t) ~attempts ~notes ()

(* The Snow et al. page harvest: starting from pages of leaked code
   pointers, disassemble whole pages and enqueue the pages of discovered
   direct-call targets. Reads never leave known code pages, so the walk is
   crash-free on readable text — and dies on the very first page under
   execute-only memory. *)
type harvest = {
  mutable gadget : int option;
  mutable call_targets : int list;
  mutable faulted : bool;
  visited : (int, unit) Hashtbl.t;
  mutable frontier : int list;
}

let scan_page t h page =
  let addr = ref page in
  let stop = page + Addr.page_size in
  while (not h.faulted) && !addr < stop do
    (match Oracle.disasm t !addr with
    | Error _ -> h.faulted <- true
    | Ok None -> ()
    | Ok (Some (insn, len)) -> (
        (match insn with
        | Insn.Call (Insn.TAbs a) ->
            h.call_targets <- a :: h.call_targets;
            let p = Addr.page_base a in
            if not (Hashtbl.mem h.visited p) then h.frontier <- p :: h.frontier
        | _ -> ());
        match insn with
        | Insn.Pop Insn.RDI when h.gadget = None -> (
            match Oracle.disasm t (!addr + len) with
            | Ok (Some (Insn.Ret, _)) -> h.gadget <- Some !addr
            | Ok _ -> ()
            | Error _ -> h.faulted <- true)
        | _ -> ()));
    incr addr
  done

let harvest t ~seeds ~max_pages =
  let h =
    {
      gadget = None;
      call_targets = [];
      faulted = false;
      visited = Hashtbl.create 32;
      frontier = List.map Addr.page_base seeds;
    }
  in
  let pages = ref 0 in
  let rec go () =
    match h.frontier with
    | [] -> ()
    | _ when h.faulted || !pages >= max_pages -> ()
    | page :: rest ->
        h.frontier <- rest;
        if not (Hashtbl.mem h.visited page) then begin
          Hashtbl.replace h.visited page ();
          incr pages;
          scan_page t h page
        end;
        go ()
  in
  go ();
  h

let run ~reference:(r : Reference.t) ~target:t =
  match Oracle.to_break t with
  | `Done o ->
      Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
        ~notes:[ "no breakpoint: " ^ Process.outcome_to_string o ]
        ()
  | `Break -> (
      match Oracle.resume_to_break t with
      | `Done o ->
          Report.make ~attack:name ~success:false ~detected:(Oracle.detected t)
            ~notes:[ "second request never reached: " ^ Process.outcome_to_string o ]
            ()
      | `Break -> (
          let _, values = Oracle.leak_stack t ~words:512 in
          (* Value-range analysis: the code cluster seeds the page walk. *)
          let code_ptrs = Cluster.code_candidates (Cluster.analyze (Array.to_list values)) in
          if code_ptrs = [] then finish ~attempts:1 ~notes:[ "no leaked code pointers" ] t
          else begin
            let h = harvest t ~seeds:code_ptrs ~max_pages:16 in
            if h.faulted then
              (* Execute-only memory: the disclosure read crashed the
                 process. *)
              finish ~attempts:1 ~notes:[ "text read faulted (XOM)" ] t
            else
              match h.gadget with
              | None -> finish ~attempts:1 ~notes:[ "no gadget discovered" ] t
              | Some gadget -> (
                  (* PLT discovery: direct-call targets that decode to
                     nothing are PLT stubs; libc's entry order is public. *)
                  let plt_candidates =
                    List.filter
                      (fun a ->
                        match Oracle.disasm t a with
                        | Ok None -> true
                        | Ok (Some _) | Error _ -> false)
                      (List.sort_uniq compare h.call_targets)
                  in
                  match plt_candidates with
                  | [] -> finish ~attempts:1 ~notes:[ "no PLT discovered" ] t
                  | lowest :: _ ->
                      let plt_base = Addr.page_base lowest in
                      let sensitive_idx =
                        let rec idx i = function
                          | [] -> 0
                          | n :: tl -> if n = "sensitive" then i else idx (i + 1) tl
                        in
                        idx 0 Image.builtin_names
                      in
                      let sensitive = plt_base + (16 * sensitive_idx) in
                      let filler =
                        Payload.slice ~values ~from_off:r.buf_off ~upto_off:r.ra_off
                      in
                      let chain =
                        Payload.le64 gadget ^ Payload.le64 marker ^ Payload.le64 sensitive
                      in
                      Oracle.send t (filler ^ chain);
                      let (_ : Process.outcome) = Oracle.resume_to_end t in
                      finish ~attempts:1 t)
          end))
