(** AOCR's statistical pointer analysis (Sections 2.3 and 4.2).

    "Due to the large address space of x64 systems, the values of pointers
    occur in clusters, with heap pointers typically constituting the third
    largest cluster."

    Given a window of leaked stack words, {!analyze} groups plausible
    pointer values by numeric proximity and labels each cluster using only
    public knowledge of the x86-64 user-space layout: the lowest cluster is
    code (non-PIE text or a PIE module), the 0x5555... range splits into
    data-then-heap, and the 0x7ff... range is stack. No victim-specific
    ground truth is consulted — this is the attacker's own inference, and
    BTDPs are expressly designed to contaminate its heap cluster. *)

type label = Code | Static_data | Heap_like | Stack_like | Unknown

type cluster = {
  label : label;
  lo : int;
  hi : int;
  members : int list;  (** ascending *)
}

val label_to_string : label -> string

(** [analyze ?gap values] — labelled clusters, largest first. Non-pointer
    values (small integers) are discarded. Default gap 16 MiB. *)
val analyze : ?gap:int -> int list -> cluster list

(** [heap_candidates clusters] — members of every heap-labelled cluster,
    the pick-and-dereference population of AOCR step B. *)
val heap_candidates : cluster list -> int list

(** [code_candidates clusters] — members of code-labelled clusters (the
    JIT-ROP seeds). *)
val code_candidates : cluster list -> int list
