(** Blind ROP (Section 4.1, [11]): brute force against a worker-respawning
    server, no reference binary, no information leak.

    Phase 1 probes growing overflow lengths until the crash onset reveals
    the return-address distance. Phase 2 sweeps candidate text addresses
    as the chain's first gadget, probing [cand; marker; sensitive@plt]
    (the PLT is assumed fixed — the non-PIE BROP precondition). Every
    probe costs a crash and a respawn; in R2C's text the sweep keeps
    landing in booby-trap functions, and the monitoring threshold ends the
    campaign — the reactive deterrence of Section 4.1. *)

val name : string

val run :
  ?probe_budget:int ->
  ?monitor_threshold:int ->
  target:Oracle.t ->
  unit ->
  Report.t
