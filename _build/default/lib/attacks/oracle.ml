open R2c_machine

type t = {
  mutable img : Image.t;
  mutable proc : Process.t;
  restart_allowed : bool;
  relink : (unit -> Image.t) option;
  break_sym : string;
  mutable break_addr : int;
  mutable interactions : int;
  mutable dead : bool;
  mutable sensitive_acc : (int * int) list;  (* carried across restarts *)
}

let break_addr_of img break_sym =
  match Hashtbl.find_opt img.Image.symbols break_sym with
  | Some a -> a
  | None -> invalid_arg ("Oracle.attach: no breakpoint symbol " ^ break_sym)

let attach ?(restart_allowed = true) ?relink ~break_sym img =
  {
    img;
    proc = Process.start img;
    restart_allowed;
    relink;
    break_sym;
    break_addr = break_addr_of img break_sym;
    interactions = 0;
    dead = false;
    sensitive_acc = [];
  }

let record_outcome t (o : Process.outcome) =
  match o with
  | Process.Crashed _ -> t.dead <- true
  | Process.Exited _ | Process.Timeout -> t.dead <- true

let to_break t =
  if t.dead then invalid_arg "Oracle.to_break: process dead (restart first)";
  match Process.run_until t.proc ~break:[ t.break_addr ] with
  | `Hit -> `Break
  | `Done o ->
      record_outcome t o;
      `Done o

let rsp t = Cpu.reg_get t.proc.Process.cpu RSP


let leak_at t ~addr ~words =
  let mem = t.proc.Process.cpu.Cpu.mem in
  Array.init words (fun i ->
      match Mem.peek_u64 mem (addr + (8 * i)) with Some v -> v | None -> 0)

let leak_window t ~lo_off ~words =
  let base = rsp t + lo_off in
  let mem = t.proc.Process.cpu.Cpu.mem in
  let values =
    Array.init words (fun i ->
        match Mem.peek_u64 mem (base + (8 * i)) with Some v -> v | None -> 0)
  in
  (base, values)

let leak_stack t ~words =
  let base = rsp t in
  let mem = t.proc.Process.cpu.Cpu.mem in
  let values =
    Array.init words (fun i ->
        match Mem.peek_u64 mem (base + (8 * i)) with Some v -> v | None -> 0)
  in
  (base, values)

(* A faulting corruption primitive kills the worker; booby traps and guard
   pages additionally raise the monitoring alarm. *)
let record_fault t (f : Fault.t) =
  t.proc.Process.crashes <- t.proc.Process.crashes + 1;
  if Fault.is_detection f then
    t.proc.Process.detections <- f :: t.proc.Process.detections;
  t.dead <- true


(* Malicious Thread Blocking can freeze the victim at an arbitrary
   instruction; [to_symbol] positions the block at a named point and
   [step] advances by exactly one instruction (the race-window probe). *)
let to_symbol t sym =
  if t.dead then invalid_arg "Oracle.to_symbol: process dead";
  match Hashtbl.find_opt t.img.Image.symbols sym with
  | None -> invalid_arg ("Oracle.to_symbol: unknown symbol " ^ sym)
  | Some addr -> (
      (if t.proc.Process.cpu.Cpu.rip = addr then
         try Cpu.step t.proc.Process.cpu with Fault.Fault f -> record_fault t f);
      if t.dead then `Done (Process.Crashed (Fault.Segv { addr; access = Fault.Exec }))
      else
        match Process.run_until t.proc ~break:[ addr ] with
        | `Hit -> `Break
        | `Done o ->
            record_outcome t o;
            `Done o)

let step t =
  if t.dead then invalid_arg "Oracle.step: process dead";
  match Cpu.step t.proc.Process.cpu with
  | () -> Ok ()
  | exception Fault.Fault f ->
      record_fault t f;
      Error f

let arb_read t addr =
  match Mem.read_u64 t.proc.Process.cpu.Cpu.mem addr with
  | v -> Ok v
  | exception Fault.Fault f ->
      record_fault t f;
      Error f

let arb_write t addr v =
  match Mem.write_u64 t.proc.Process.cpu.Cpu.mem addr v with
  | () -> Ok ()
  | exception Fault.Fault f ->
      record_fault t f;
      Error f

let disasm t addr =
  match Mem.read_u8 t.proc.Process.cpu.Cpu.mem addr with
  | _ -> Ok (Image.code_at t.img addr)
  | exception Fault.Fault f ->
      record_fault t f;
      Error f

(* Swap in a freshly re-randomized instance (TASR model), preserving the
   monitor's view (crashes, detections) and the attack-success log. *)
let relink_swap t f =
  t.sensitive_acc <- Process.sensitive_log t.proc @ t.sensitive_acc;
  let crashes = t.proc.Process.crashes in
  let detections = t.proc.Process.detections in
  let img = f () in
  let proc = Process.start img in
  proc.Process.crashes <- crashes;
  proc.Process.detections <- detections;
  t.img <- img;
  t.break_addr <- break_addr_of img t.break_sym;
  t.proc <- proc;
  t.dead <- false

let send t payload =
  t.interactions <- t.interactions + 1;
  (* Under live re-randomization, the response/request round trip that
     delivers the payload crosses an I/O boundary: the layout the attacker
     observed is gone (TASR's defensive property). *)
  (match t.relink with Some f -> relink_swap t f | None -> ());
  Cpu.push_input t.proc.Process.cpu payload

let resume_to_end t =
  if t.dead then invalid_arg "Oracle.resume_to_end: process dead";
  let o = Process.run t.proc in
  record_outcome t o;
  o

let resume_to_break t =
  if t.dead then invalid_arg "Oracle.resume_to_break: process dead";
  (* Step over the breakpoint instruction first, else we re-hit in place. *)
  match
    if t.proc.Process.cpu.Cpu.rip = t.break_addr then Cpu.step t.proc.Process.cpu
  with
  | () -> (
      match Process.run_until t.proc ~break:[ t.break_addr ] with
      | `Hit -> `Break
      | `Done o ->
          record_outcome t o;
          `Done o)
  | exception Fault.Fault f ->
      record_fault t f;
      `Done (Process.Crashed f)

let restart t =
  if not t.restart_allowed then false
  else begin
    (match t.relink with
    | Some f -> relink_swap t f
    | None ->
        t.sensitive_acc <- Process.sensitive_log t.proc @ t.sensitive_acc;
        Process.restart t.proc);
    t.dead <- false;
    true
  end

let sensitive_log t = Process.sensitive_log t.proc @ t.sensitive_acc

let detected t = Process.detected t.proc

let crashes t = t.proc.Process.crashes

let detections t = List.length t.proc.Process.detections
