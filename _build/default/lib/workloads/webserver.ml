module B = Builder

type flavour = [ `Nginx | `Apache ]

(* Shared pieces: a routing hash, a 64-byte page template, access stats,
   and a connection table on the heap. *)

let page_template =
  "<html><body>r2c test page 0123456789 abcdefghijklmnopqrstuv</body>\000"

let route_fn () =
  let fb = B.func "ws_route" ~nparams:1 in
  let path = B.param 0 in
  let m = B.binop fb Ir.Mul path (Ir.Const 0x9e3779b9) in
  let m2 = B.binop fb Ir.And m (Ir.Const 0x3fffffff) in
  let h = B.binop fb Ir.Rem m2 (Ir.Const 64) in
  let off = B.binop fb Ir.Mul h (Ir.Const 8) in
  let slot = B.binop fb Ir.Add (Ir.Global "ws_routes") off in
  let hits = B.load fb slot 0 in
  B.store fb slot 0 (B.binop fb Ir.Add hits (Ir.Const 1));
  B.ret fb (Some h);
  B.finish fb

let serve_static_fn () =
  (* Copy the page template into the response buffer, xoring in the route
     id (ETag flavour). *)
  let fb = B.func "ws_serve_static" ~nparams:1 in
  let route = B.param 0 in
  Wb.for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const 64) (fun i ->
      let src = B.binop fb Ir.Add (Ir.Global "ws_page") i in
      let c = B.load8 fb src 0 in
      let dst = B.binop fb Ir.Add (Ir.Global "ws_resp") i in
      B.store8 fb dst 0 c);
  let tag = B.binop fb Ir.And route (Ir.Const 0x3f) in
  B.store8 fb (B.binop fb Ir.Add (Ir.Global "ws_resp") tag) 0 (Ir.Const 0x2a);
  B.ret fb (Some (Ir.Const 64));
  B.finish fb

let log_access_fn () =
  let fb = B.func "ws_log_access" ~nparams:2 in
  let served = B.load fb (Ir.Global "ws_served") 0 in
  B.store fb (Ir.Global "ws_served") 0 (B.binop fb Ir.Add served (Ir.Const 1));
  let bytes = B.load fb (Ir.Global "ws_bytes") 0 in
  B.store fb (Ir.Global "ws_bytes") 0 (B.binop fb Ir.Add bytes (B.param 1));
  let chk = B.load fb (Ir.Global "ws_chk") 0 in
  let m = B.binop fb Ir.Mul chk (Ir.Const 31) in
  let m2 = B.binop fb Ir.Add m (B.param 0) in
  let m3 = B.binop fb Ir.And m2 (Ir.Const 0x3fff_ffff) in
  B.store fb (Ir.Global "ws_chk") 0 m3;
  B.ret fb (Some (Ir.Const 0));
  B.finish fb

let parse_request_fn () =
  (* Scan a synthetic request line for the path id: a short byte loop, the
     header-parsing flavour of both servers. *)
  let fb = B.func "ws_parse_request" ~nparams:1 in
  let seed = B.param 0 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 (Ir.Const 0);
  Wb.for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const 24) (fun i ->
      let c = B.load8 fb (B.binop fb Ir.Add (Ir.Global "ws_reqline") i) 0 in
      let cur = B.load fb (B.slot_addr fb acc) 0 in
      let m = B.binop fb Ir.Mul cur (Ir.Const 17) in
      let m2 = B.binop fb Ir.Add m c in
      B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.And m2 (Ir.Const 0xffffff)));
  let v = B.load fb (B.slot_addr fb acc) 0 in
  B.ret fb (Some (B.binop fb Ir.Xor v seed));
  B.finish fb

(* Apache dispatches each request through extra per-module hooks. *)
let hook_fn name =
  let fb = B.func name ~nparams:1 in
  let v = B.binop fb Ir.Xor (B.param 0) (Ir.Const 0x1234) in
  let v2 = B.binop fb Ir.Add v (Ir.Const 1) in
  B.ret fb (Some v2);
  B.finish fb

let server flavour ~requests =
  let main = B.func "main" ~nparams:0 in
  (* The connection table: a realistic slice of worker heap. *)
  B.call_void main (Ir.Builtin "malloc_pages") [ Ir.Const 16 ];
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const requests) (fun i ->
      let path = B.call main (Ir.Direct "ws_parse_request") [ i ] in
      let path2 =
        match flavour with
        | `Nginx -> path
        | `Apache ->
            (* module hook chain *)
            let a = B.call main (Ir.Direct "ws_hook_auth") [ path ] in
            let b = B.call main (Ir.Direct "ws_hook_rewrite") [ a ] in
            B.call main (Ir.Direct "ws_hook_mime") [ b ]
      in
      let route = B.call main (Ir.Direct "ws_route") [ path2 ] in
      let n = B.call main (Ir.Direct "ws_serve_static") [ route ] in
      B.call_void main (Ir.Direct "ws_log_access") [ route; n ]);
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "ws_served") 0 ];
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "ws_chk") 0 ];
  B.ret main (Some (Ir.Const 0));
  let funcs =
    [ route_fn (); serve_static_fn (); log_access_fn (); parse_request_fn () ]
    @ (match flavour with
      | `Nginx -> []
      | `Apache -> [ hook_fn "ws_hook_auth"; hook_fn "ws_hook_rewrite"; hook_fn "ws_hook_mime" ])
    @ [ B.finish main ]
  in
  let reqline =
    "GET /index-000.html HTTP/1.1\000" (* 24 bytes scanned *)
  in
  B.program ~main:"main" funcs
    [
      { Ir.gname = "ws_routes"; gsize = 8 * 64; ginit = [] };
      { Ir.gname = "ws_page"; gsize = 72; ginit = [ Ir.Str page_template ] };
      { Ir.gname = "ws_resp"; gsize = 72; ginit = [] };
      { Ir.gname = "ws_reqline"; gsize = 32; ginit = [ Ir.Str reqline ] };
      { Ir.gname = "ws_served"; gsize = 8; ginit = [] };
      { Ir.gname = "ws_bytes"; gsize = 8; ginit = [] };
      { Ir.gname = "ws_chk"; gsize = 8; ginit = [] };
    ]

let throughput_of_cycles ~requests cycles =
  float_of_int requests /. (cycles /. 1_000_000.0)

let saturation_curve ~cpu_rate ~connections =
  (* Little's-law flavour: each connection sustains a limited in-flight
     rate; the server saturates at the CPU-bound rate. *)
  let per_conn = cpu_rate /. 24.0 in
  List.map
    (fun c ->
      let offered = float_of_int c *. per_conn in
      (c, Float.min offered cpu_rate))
    connections
