(** Workload-building helpers on top of {!Builder}: memory-backed counted
    loops and a tiny deterministic in-IR PRNG, shared by the SPEC-like
    benchmark kernels. *)

(** [for_ fb ~from ~below body] — a counted loop; [body] receives the
    counter operand. The counter lives in a stack slot, so arbitrarily
    complex bodies (including calls) are safe. *)
val for_ : Builder.t -> from:Ir.operand -> below:Ir.operand -> (Ir.operand -> unit) -> unit

(** [while_ fb cond body] — [cond] emits code computing the continue flag. *)
val while_ : Builder.t -> (unit -> Ir.operand) -> (unit -> unit) -> unit

(** [if_ fb c then_ else_] — two-armed conditional statement. *)
val if_ : Builder.t -> Ir.operand -> (unit -> unit) -> (unit -> unit) -> unit

(** [lcg fb state_global] — advance the linear congruential generator
    stored in the named global and return the new value (non-negative). *)
val lcg : Builder.t -> string -> Ir.operand

(** [lcg_global name] — the global backing an in-IR PRNG stream. *)
val lcg_global : string -> Ir.global
