(** The SPEC CPU 2017-shaped workload suite.

    Twelve synthetic programs named after the paper's C/C++ benchmarks
    (Section 6.2). Each reproduces its namesake's *character* — the
    computational kernel style and, crucially, the call density of Table 2
    (scaled by ~10^-6 for simulation speed): nab is a sea of tiny math
    helper calls, mcf chases pointers with frequent small calls, omnetpp
    dispatches virtual handlers off an event queue, lbm is a nearly
    call-free stencil, and so on. Figure 6 and Table 1 emerge from these
    densities interacting with the cost model.

    Every program prints a checksum, so the differential suite validates
    each one under every diversity configuration. *)

type benchmark = {
  name : string;
  program : Ir.program;  (** the reference input *)
  inputs : Ir.program list;
      (** three input sizes (train/ref/big), as SPEC runs several inputs;
          Table 2 reports the median call count across them *)
  paper_calls : float;  (** Table 2's median executed call count *)
  cpp : bool;  (** C++ benchmark in SPEC's terms *)
}

(** The twelve benchmarks, in Table 2's order. [scale] (default 1.0)
    multiplies workload sizes; the default is calibrated to Table 2's
    relative call counts at ~10^-6 scale. *)
val all : ?scale:float -> unit -> benchmark list

(** [find name] — by benchmark name; raises [Not_found]. *)
val find : ?scale:float -> string -> benchmark
