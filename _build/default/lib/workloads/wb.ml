module B = Builder

let for_ fb ~from ~below body =
  let ctr = B.slot fb 8 in
  B.store fb (B.slot_addr fb ctr) 0 from;
  let header = B.new_block fb and bodyl = B.new_block fb and fin = B.new_block fb in
  B.br fb header;
  B.switch_to fb header;
  let i = B.load fb (B.slot_addr fb ctr) 0 in
  let c = B.cmp fb Ir.Lt i below in
  B.cond_br fb c bodyl fin;
  B.switch_to fb bodyl;
  let i' = B.load fb (B.slot_addr fb ctr) 0 in
  body i';
  let i2 = B.load fb (B.slot_addr fb ctr) 0 in
  let inext = B.binop fb Ir.Add i2 (Ir.Const 1) in
  B.store fb (B.slot_addr fb ctr) 0 inext;
  B.br fb header;
  B.switch_to fb fin

let while_ fb cond body =
  let header = B.new_block fb and bodyl = B.new_block fb and fin = B.new_block fb in
  B.br fb header;
  B.switch_to fb header;
  let c = cond () in
  B.cond_br fb c bodyl fin;
  B.switch_to fb bodyl;
  body ();
  B.br fb header;
  B.switch_to fb fin

let if_ fb c then_ else_ =
  let yes = B.new_block fb and no = B.new_block fb and join = B.new_block fb in
  B.cond_br fb c yes no;
  B.switch_to fb yes;
  then_ ();
  B.br fb join;
  B.switch_to fb no;
  else_ ();
  B.br fb join;
  B.switch_to fb join

(* A 61-bit multiplicative LCG: cheap, deterministic, and identical under
   the reference interpreter and the machine (63-bit OCaml ints). *)
let lcg fb g =
  let s = B.load fb (Ir.Global g) 0 in
  let m = B.binop fb Ir.Mul s (Ir.Const 2862933555777941757) in
  let a = B.binop fb Ir.Add m (Ir.Const 1013904223) in
  let v = B.binop fb Ir.And a (Ir.Const 0x1fff_ffff_ffff_ffff) in
  B.store fb (Ir.Global g) 0 v;
  v

let lcg_global name = { Ir.gname = name; gsize = 8; ginit = [ Ir.Word 0x9e3779b9 ] }
