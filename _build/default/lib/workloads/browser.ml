module B = Builder

(* DOM node layout (40 bytes):
   [0]  tag id
   [8]  style
   [16] child 0   (0 = none)
   [24] child 1
   [32] computed height *)

let html_len = 192

let tokenizer () =
  (* Scan the synthetic page source: count tags, intern tag names. *)
  let fb = B.func "bk_tokenize" ~nparams:1 in
  let seed = B.param 0 in
  let tags = B.slot fb 8 in
  B.store fb (B.slot_addr fb tags) 0 (Ir.Const 0);
  Wb.for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const html_len) (fun i ->
      let c = B.load8 fb (B.binop fb Ir.Add (Ir.Global "bk_html") i) 0 in
      Wb.if_ fb
        (B.cmp fb Ir.Eq c (Ir.Const (Char.code '<')))
        (fun () ->
          let cur = B.load fb (B.slot_addr fb tags) 0 in
          B.store fb (B.slot_addr fb tags) 0 (B.binop fb Ir.Add cur (Ir.Const 1));
          (* intern: bump a bucket chosen from the following byte *)
          let nxt = B.load8 fb (B.binop fb Ir.Add (Ir.Global "bk_html") i) 1 in
          let h = B.binop fb Ir.And (B.binop fb Ir.Add nxt seed) (Ir.Const 31) in
          let slot = B.binop fb Ir.Add (Ir.Global "bk_names") (B.binop fb Ir.Mul h (Ir.Const 8)) in
          let v = B.load fb slot 0 in
          B.store fb slot 0 (B.binop fb Ir.Add v (Ir.Const 1)))
        (fun () -> ()));
  B.ret fb (Some (B.load fb (B.slot_addr fb tags) 0));
  B.finish fb

let dom_create () =
  (* Recursive DOM: two children per node down to depth 0. *)
  let fb = B.func "bk_dom_create" ~nparams:2 in
  let depth = B.param 0 and tag_seed = B.param 1 in
  let node = B.call fb (Ir.Builtin "malloc") [ Ir.Const 40 ] in
  let tag = B.binop fb Ir.And tag_seed (Ir.Const 15) in
  B.store fb node 0 tag;
  Wb.if_ fb
    (B.cmp fb Ir.Gt depth (Ir.Const 0))
    (fun () ->
      let d' = B.binop fb Ir.Sub depth (Ir.Const 1) in
      let s1 = B.binop fb Ir.Mul tag_seed (Ir.Const 31) in
      let s1m = B.binop fb Ir.And s1 (Ir.Const 0xffff) in
      let c0 = B.call fb (Ir.Direct "bk_dom_create") [ d'; s1m ] in
      B.store fb node 16 c0;
      let s2 = B.binop fb Ir.Add s1m (Ir.Const 7) in
      let c1 = B.call fb (Ir.Direct "bk_dom_create") [ d'; s2 ] in
      B.store fb node 24 c1)
    (fun () ->
      B.store fb node 16 (Ir.Const 0);
      B.store fb node 24 (Ir.Const 0));
  B.ret fb (Some node);
  B.finish fb

let style_match () =
  (* Selector match: a cheap hash compare, called once per node per rule. *)
  let fb = B.func "bk_style_match" ~nparams:2 in
  let tag = B.param 0 and rule = B.param 1 in
  let h = B.binop fb Ir.Xor (B.binop fb Ir.Mul tag (Ir.Const 131)) rule in
  let m = B.binop fb Ir.And h (Ir.Const 7) in
  let hit = B.cmp fb Ir.Eq m (Ir.Const 0) in
  B.ret fb (Some hit);
  B.finish fb

let apply_styles () =
  (* Recursive walk: try 4 rules per node. *)
  let fb = B.func "bk_apply_styles" ~nparams:1 in
  let node = B.param 0 in
  Wb.if_ fb
    (B.cmp fb Ir.Eq node (Ir.Const 0))
    (fun () -> ())
    (fun () ->
      let tag = B.load fb node 0 in
      let style = B.slot fb 8 in
      B.store fb (B.slot_addr fb style) 0 (Ir.Const 0);
      Wb.for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const 4) (fun rule ->
          let hit = B.call fb (Ir.Direct "bk_style_match") [ tag; rule ] in
          Wb.if_ fb hit
            (fun () ->
              let cur = B.load fb (B.slot_addr fb style) 0 in
              let bit = B.binop fb Ir.Shl (Ir.Const 1) rule in
              B.store fb (B.slot_addr fb style) 0 (B.binop fb Ir.Or cur bit))
            (fun () -> ()));
      B.store fb node 8 (B.load fb (B.slot_addr fb style) 0);
      B.call_void fb (Ir.Direct "bk_apply_styles") [ B.load fb node 16 ];
      B.call_void fb (Ir.Direct "bk_apply_styles") [ B.load fb node 24 ]);
  B.ret fb (Some (Ir.Const 0));
  B.finish fb

let layout () =
  (* Recursive layout: height = children heights + style padding. At the
     deepest leaf the frame count is sampled via the unwind tables — a
     live check that backtraces survive diversification at depth. *)
  let fb = B.func "bk_layout" ~nparams:1 in
  let node = B.param 0 in
  let result = B.slot fb 8 in
  Wb.if_ fb
    (B.cmp fb Ir.Eq node (Ir.Const 0))
    (fun () -> B.store fb (B.slot_addr fb result) 0 (Ir.Const 0))
    (fun () ->
      let c0 = B.load fb node 16 in
      let c1 = B.load fb node 24 in
      Wb.if_ fb
        (B.cmp fb Ir.Eq c0 (Ir.Const 0))
        (fun () ->
          (* leaf: record the unwind depth once per page *)
          let seen = B.load fb (Ir.Global "bk_depth") 0 in
          Wb.if_ fb
            (B.cmp fb Ir.Eq seen (Ir.Const 0))
            (fun () ->
              let d = B.call fb (Ir.Builtin "backtrace") [] in
              B.store fb (Ir.Global "bk_depth") 0 d)
            (fun () -> ()))
        (fun () -> ());
      let h0 = B.call fb (Ir.Direct "bk_layout") [ c0 ] in
      let h1 = B.call fb (Ir.Direct "bk_layout") [ c1 ] in
      let style = B.load fb node 8 in
      let pad = B.binop fb Ir.And style (Ir.Const 3) in
      let sum = B.binop fb Ir.Add h0 h1 in
      let h = B.binop fb Ir.Add sum (B.binop fb Ir.Add pad (Ir.Const 1)) in
      B.store fb node 32 h;
      B.store fb (B.slot_addr fb result) 0 h);
  B.ret fb (Some (B.load fb (B.slot_addr fb result) 0));
  B.finish fb

let handler name transform =
  let fb = B.func name ~nparams:1 in
  let v = transform fb (B.param 0) in
  let acc = B.load fb (Ir.Global "bk_events") 0 in
  B.store fb (Ir.Global "bk_events") 0 (B.binop fb Ir.Add acc v);
  B.ret fb (Some v);
  B.finish fb

let dispatch_events () =
  (* Virtual dispatch through the handler table, click/scroll/key/timer. *)
  let fb = B.func "bk_dispatch" ~nparams:1 in
  let n = B.param 0 in
  Wb.for_ fb ~from:(Ir.Const 0) ~below:n (fun i ->
      let r = Wb.lcg fb "bk_rng" in
      let kind = B.binop fb Ir.And r (Ir.Const 3) in
      let off = B.binop fb Ir.Mul kind (Ir.Const 8) in
      let fp = B.load fb (B.binop fb Ir.Add (Ir.Global "bk_handlers") off) 0 in
      B.call_void fb (Ir.Indirect fp) [ B.binop fb Ir.Add r i ]);
  B.ret fb (Some (Ir.Const 0));
  B.finish fb

let script_interp () =
  (* A toy script VM: arithmetic ops plus DOM-read calls. *)
  let fb = B.func "bk_script" ~nparams:2 in
  let root = B.param 0 and steps = B.param 1 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 (Ir.Const 1);
  Wb.for_ fb ~from:(Ir.Const 0) ~below:steps (fun _ ->
      let r = Wb.lcg fb "bk_rng" in
      let op = B.binop fb Ir.And r (Ir.Const 3) in
      let a = B.load fb (B.slot_addr fb acc) 0 in
      Wb.if_ fb
        (B.cmp fb Ir.Eq op (Ir.Const 0))
        (fun () ->
          (* getElementHeight *)
          let h = B.load fb root 32 in
          B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.Add a h))
        (fun () ->
          Wb.if_ fb
            (B.cmp fb Ir.Eq op (Ir.Const 1))
            (fun () ->
              let m = B.binop fb Ir.Mul a (Ir.Const 3) in
              B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.And m (Ir.Const 0xffffff)))
            (fun () ->
              let x = B.binop fb Ir.Xor a r in
              B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.And x (Ir.Const 0xffffff)))));
  B.ret fb (Some (B.load fb (B.slot_addr fb acc) 0));
  B.finish fb

let program ~pages =
  let main = B.func "main" ~nparams:0 in
  B.call_void main (Ir.Builtin "malloc_pages") [ Ir.Const 1500 ];
  let totals = B.slot main 8 in
  B.store main (B.slot_addr main totals) 0 (Ir.Const 0);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const pages) (fun page ->
      let tags = B.call main (Ir.Direct "bk_tokenize") [ page ] in
      let root = B.call main (Ir.Direct "bk_dom_create") [ Ir.Const 6; B.binop main Ir.Add page (Ir.Const 3) ] in
      B.call_void main (Ir.Direct "bk_apply_styles") [ root ];
      let height = B.call main (Ir.Direct "bk_layout") [ root ] in
      B.call_void main (Ir.Direct "bk_dispatch") [ Ir.Const 24 ];
      let s = B.call main (Ir.Direct "bk_script") [ root; Ir.Const 40 ] in
      let acc = B.load main (B.slot_addr main totals) 0 in
      let acc1 = B.binop main Ir.Add acc tags in
      let acc2 = B.binop main Ir.Add acc1 height in
      let acc3 = B.binop main Ir.Add acc2 s in
      B.store main (B.slot_addr main totals) 0 (B.binop main Ir.And acc3 (Ir.Const 0x3fff_ffff)));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main totals) 0 ];
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "bk_events") 0 ];
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "bk_depth") 0 ];
  B.ret main (Some (Ir.Const 0));
  let html =
    let b = Buffer.create html_len in
    for i = 0 to html_len - 1 do
      Buffer.add_char b
        (if i mod 13 = 0 then '<'
         else if i mod 13 = 1 then "dphsba".[i mod 6]
         else Char.chr (97 + (i mod 23)))
    done;
    Buffer.contents b
  in
  B.program ~main:"main"
    [
      tokenizer (); dom_create (); style_match (); apply_styles (); layout ();
      handler "bk_on_click" (fun fb p -> B.binop fb Ir.And p (Ir.Const 0xff));
      handler "bk_on_scroll" (fun fb p -> B.binop fb Ir.Shr p (Ir.Const 3));
      handler "bk_on_key" (fun fb p -> B.binop fb Ir.Xor p (Ir.Const 0x42));
      handler "bk_on_timer" (fun fb p -> B.binop fb Ir.And p (Ir.Const 0x1f));
      dispatch_events (); script_interp (); B.finish main;
    ]
    [
      { Ir.gname = "bk_html"; gsize = html_len; ginit = [ Ir.Str html ] };
      { Ir.gname = "bk_names"; gsize = 8 * 32; ginit = [] };
      { Ir.gname = "bk_events"; gsize = 8; ginit = [] };
      { Ir.gname = "bk_depth"; gsize = 8; ginit = [] };
      {
        Ir.gname = "bk_handlers";
        gsize = 32;
        ginit =
          [ Ir.Sym_addr "bk_on_click"; Ir.Sym_addr "bk_on_scroll";
            Ir.Sym_addr "bk_on_key"; Ir.Sym_addr "bk_on_timer" ];
      };
      Wb.lcg_global "bk_rng";
    ]
