(** A browser-shaped workload (Section 6.3's WebKit/Chromium analogue).

    Where {!Genprog} exercises the compiler with *unstructured* scale, this
    program exercises it with browser-*shaped* structure: an HTML
    tokenizer (byte scanning + interning), recursive DOM construction on
    the heap, selector matching and style application, a recursive layout
    pass, virtual event dispatch through handler tables, and a small
    script-bytecode interpreter — the subsystem mix that makes browsers
    the paper's scalability stress test. The deepest layout recursion
    calls the [backtrace] builtin, so a full-R2C differential run also
    validates unwinding through many diversified frames.

    Prints per-subsystem checksums; fully deterministic. *)

(** [program ~pages] — render [pages] synthetic pages. *)
val program : pages:int -> Ir.program
