(** The vulnerable server used by the security evaluation (Section 7.2).

    Mirrors the AOCR target scenario:

    - a request loop whose handler copies attacker input into a fixed
      64-byte stack buffer via an unbounded [read_input] — a real stack
      smash, the "memory corruption vulnerability that enables control-flow
      hijacking" of the threat model (Section 3);
    - a function-pointer local and a heap session pointer in the same
      frame (profiling targets, AOCR step A);
    - a heap session object holding a pointer into the data section (the
      stepping stone of AOCR step B);
    - a privileged function [exec_cmd] whose argument comes from the
      global [g_default_cmd] — the corruptible default parameter of AOCR
      step C — reachable through [handler_exec], present in the service
      table but never dispatched legitimately;
    - the [sensitive] builtin as the execve analogue: the attack succeeds
      when it is called at all (whole-function reuse) or with the marker
      argument {!marker} (argument-controlled reuse).

    [runtime_stubs] models the libc gadget population: raw-code helpers
    whose suffixes are classic gadgets (pop rdi; ret etc.). They are linked
    — and under R2C shuffled — like all other code. *)

(** The attacker's marker argument: a successful argument-controlled attack
    makes the program call [sensitive] with this rdi. *)
val marker : int

(** Requests served per run of [main]. *)
val requests : int

(** The server program. *)
val program : unit -> Ir.program

(** Libc-like raw functions containing the classic gadget population. *)
val runtime_stubs : R2c_compiler.Opts.raw_func list

(** [build ?seed cfg] — compile the server (with [runtime_stubs]) under a
    diversity configuration. *)
val build : ?seed:int -> R2c_core.Dconfig.t -> R2c_machine.Image.t

(** Symbol of the breakpoint the attacker's Malicious-Thread-Blocking
    oracle uses: the return address of the [read_input] call inside
    [process_request]. *)
val break_symbol : string
