(** The webserver workload (Section 6.2's nginx/Apache benchmarks).

    An event-loop worker serving small static pages: per request it parses
    a synthetic request line, routes via a hash lookup, copies a 64-byte
    page into the response buffer and updates access statistics — the
    call-and-byte-copy profile of a static-file server. A connection table
    occupies a realistic chunk of the worker's heap, so the resident-set
    comparison (Section 6.2.5's ~100% webserver overhead, ~55% of it BTDP
    pages) is meaningful.

    Throughput is CPU-bound at saturation (the paper saturates cores with
    wrk): requests per megacycle is the figure of merit, and the R2C
    throughput drop is the inverse of its cycle overhead.

    [server] builds the worker program; two flavours model the paper's
    subjects: [`Nginx] (event loop, fewer bigger handlers) and [`Apache]
    (per-request dispatch through more helper calls). *)

type flavour = [ `Nginx | `Apache ]

val server : flavour -> requests:int -> Ir.program

(** [throughput_of_cycles ~requests cycles] — requests per megacycle. *)
val throughput_of_cycles : requests:int -> float -> float

(** [saturation_curve ~cpu_rate ~connections] — the wrk-style sweep: served
    rate at each concurrent-connection count, saturating at the CPU-bound
    rate (used to pick the saturation point as the paper does). *)
val saturation_curve : cpu_rate:float -> connections:int list -> (int * float) list
