module B = Builder

type benchmark = {
  name : string;
  program : Ir.program;
  inputs : Ir.program list;
  paper_calls : float;
  cpp : bool;
}

let sc scale n = max 1 (int_of_float (float_of_int n *. scale))

(* Real SPEC programs hold working sets of tens of MB; ours must too or
   one-time allocations (BTDP guard pages) would dominate the resident-set
   comparison of Section 6.2.5. The block is held for the program's
   lifetime. *)
let working_set fb pages =
  Builder.call_void fb (Ir.Builtin "malloc_pages") [ Ir.Const pages ]

(* ------------------------------------------------------------------ *)
(* perlbench: an interpreter loop — hash-table ops and string reversal
   dispatched over a bytecode stream. Call-heavy, branchy.             *)
(* ------------------------------------------------------------------ *)
let perlbench scale =
  let tbl_size = 256 in
  let hash_insert = B.func "hash_insert" ~nparams:1 in
  let k = B.param 0 in
  let k1m = B.binop hash_insert Ir.Mul k (Ir.Const 0x9e3779b9) in
  let k1 = B.binop hash_insert Ir.And k1m (Ir.Const 0x3fff_ffff) in
  let k2 = B.binop hash_insert Ir.Xor k1 (B.binop hash_insert Ir.Shr k1 (Ir.Const 16)) in
  let h = B.binop hash_insert Ir.Rem k2 (Ir.Const tbl_size) in
  let off = B.binop hash_insert Ir.Mul h (Ir.Const 8) in
  let slot = B.binop hash_insert Ir.Add (Ir.Global "pl_table") off in
  let prev = B.load hash_insert slot 0 in
  let mixed = B.binop hash_insert Ir.Xor prev k in
  B.store hash_insert slot 0 mixed;
  (* second probe *)
  let h2 = B.binop hash_insert Ir.Rem k1 (Ir.Const tbl_size) in
  let off2 = B.binop hash_insert Ir.Mul h2 (Ir.Const 8) in
  let slot2 = B.binop hash_insert Ir.Add (Ir.Global "pl_table") off2 in
  let p2 = B.load hash_insert slot2 0 in
  B.store hash_insert slot2 0 (B.binop hash_insert Ir.Add p2 (Ir.Const 1));
  B.ret hash_insert (Some h);
  let hash_lookup = B.func "hash_lookup" ~nparams:1 in
  let k = B.param 0 in
  let k1m = B.binop hash_lookup Ir.Mul k (Ir.Const 0x9e3779b9) in
  let k1 = B.binop hash_lookup Ir.And k1m (Ir.Const 0x3fff_ffff) in
  let k2 = B.binop hash_lookup Ir.Xor k1 (B.binop hash_lookup Ir.Shr k1 (Ir.Const 16)) in
  let h = B.binop hash_lookup Ir.Rem k2 (Ir.Const tbl_size) in
  let off = B.binop hash_lookup Ir.Mul h (Ir.Const 8) in
  let slot = B.binop hash_lookup Ir.Add (Ir.Global "pl_table") off in
  let v = B.load hash_lookup slot 0 in
  let v2 = B.binop hash_lookup Ir.Xor v (B.binop hash_lookup Ir.Shr v (Ir.Const 7)) in
  let v3 = B.binop hash_lookup Ir.And v2 (Ir.Const 0xffffff) in
  B.ret hash_lookup (Some v3);
  let str_step = B.func "str_step" ~nparams:1 in
  (* Mix four bytes of the working string (a short memmove-ish body). *)
  let i = B.binop str_step Ir.Rem (B.param 0) (Ir.Const 60) in
  let addr = B.binop str_step Ir.Add (Ir.Global "pl_str") i in
  let acc = ref (Ir.Const 0) in
  for k = 0 to 3 do
    let b = B.load8 str_step addr k in
    let rot = B.binop str_step Ir.Shl b (Ir.Const k) in
    let b2 = B.binop str_step Ir.Xor b (Ir.Const (0x5a + k)) in
    B.store8 str_step addr k b2;
    acc := B.binop str_step Ir.Add !acc rot
  done;
  let out = B.binop str_step Ir.And !acc (Ir.Const 0xff) in
  B.ret str_step (Some out);
  let interp = B.func "interp" ~nparams:1 in
  let acc = B.slot interp 8 in
  B.store interp (B.slot_addr interp acc) 0 (Ir.Const 0);
  Wb.for_ interp ~from:(Ir.Const 0) ~below:(B.param 0) (fun _ ->
      let r = Wb.lcg interp "pl_rng" in
      let op = B.binop interp Ir.Rem r (Ir.Const 4) in
      let v = B.slot_addr interp acc in
      let cur = B.load interp v 0 in
      Wb.if_ interp
        (B.cmp interp Ir.Eq op (Ir.Const 0))
        (fun () ->
          let x = B.call interp (Ir.Direct "hash_insert") [ r ] in
          B.store interp v 0 (B.binop interp Ir.Add cur x))
        (fun () ->
          Wb.if_ interp
            (B.cmp interp Ir.Eq op (Ir.Const 1))
            (fun () ->
              let x = B.call interp (Ir.Direct "hash_lookup") [ r ] in
              B.store interp v 0 (B.binop interp Ir.Xor cur x))
            (fun () ->
              let x = B.call interp (Ir.Direct "str_step") [ r ] in
              B.store interp v 0 (B.binop interp Ir.Add cur x))));
  B.ret interp (Some (B.load interp (B.slot_addr interp acc) 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 2200;
  let r = B.call main (Ir.Direct "interp") [ Ir.Const (sc scale 2400) ] in
  B.call_void main (Ir.Builtin "print_int") [ r ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish hash_insert; B.finish hash_lookup; B.finish str_step; B.finish interp;
      B.finish main ]
    [
      { Ir.gname = "pl_table"; gsize = 8 * tbl_size; ginit = [] };
      { Ir.gname = "pl_str"; gsize = 64; ginit = [ Ir.Str (String.make 64 'x') ] };
      Wb.lcg_global "pl_rng";
    ]

(* ------------------------------------------------------------------ *)
(* gcc: build random expression trees on the heap, evaluate them
   recursively, release them. Allocation + recursion heavy.            *)
(* ------------------------------------------------------------------ *)
let gcc scale =
  (* node: [0]=op (0=leaf) [8]=left/value [16]=right *)
  let build = B.func "tree_build" ~nparams:1 in
  let depth = B.param 0 in
  let node = B.call build (Ir.Builtin "malloc") [ Ir.Const 24 ] in
  Wb.if_ build
    (B.cmp build Ir.Le depth (Ir.Const 0))
    (fun () ->
      B.store build node 0 (Ir.Const 0);
      let r = Wb.lcg build "gc_rng" in
      let r2 = B.binop build Ir.Xor r (B.binop build Ir.Shr r (Ir.Const 13)) in
      let r3 = B.binop build Ir.Mul r2 (Ir.Const 0x2545f491) in
      let v = B.binop build Ir.Rem r3 (Ir.Const 1000) in
      B.store build node 8 v;
      B.store build node 16 (B.binop build Ir.And r (Ir.Const 0xff)))
    (fun () ->
      let r = Wb.lcg build "gc_rng" in
      let op = B.binop build Ir.Rem r (Ir.Const 3) in
      let op1 = B.binop build Ir.Add op (Ir.Const 1) in
      B.store build node 0 op1;
      let d' = B.binop build Ir.Sub depth (Ir.Const 1) in
      let l = B.call build (Ir.Direct "tree_build") [ d' ] in
      B.store build node 8 l;
      let rr = B.call build (Ir.Direct "tree_build") [ d' ] in
      B.store build node 16 rr);
  B.ret build (Some node);
  let eval = B.func "tree_eval" ~nparams:1 in
  let node = B.param 0 in
  let op = B.load eval node 0 in
  let result = B.slot eval 8 in
  Wb.if_ eval
    (B.cmp eval Ir.Eq op (Ir.Const 0))
    (fun () -> B.store eval (B.slot_addr eval result) 0 (B.load eval node 8))
    (fun () ->
      let l = B.load eval node 8 in
      let r = B.load eval node 16 in
      let lv = B.call eval (Ir.Direct "tree_eval") [ l ] in
      let rv = B.call eval (Ir.Direct "tree_eval") [ r ] in
      Wb.if_ eval
        (B.cmp eval Ir.Eq op (Ir.Const 1))
        (fun () -> B.store eval (B.slot_addr eval result) 0 (B.binop eval Ir.Add lv rv))
        (fun () ->
          Wb.if_ eval
            (B.cmp eval Ir.Eq op (Ir.Const 2))
            (fun () ->
              B.store eval (B.slot_addr eval result) 0 (B.binop eval Ir.Sub lv rv))
            (fun () ->
              B.store eval (B.slot_addr eval result) 0 (B.binop eval Ir.Xor lv rv))));
  (* Constant folding / canonicalisation flavour: mix the result through a
     few rounds, as a compiler pass would inspect node attributes. *)
  let v0 = B.load eval (B.slot_addr eval result) 0 in
  let m1 = B.binop eval Ir.Mul v0 (Ir.Const 31) in
  let m2 = B.binop eval Ir.Add m1 (B.binop eval Ir.Shr v0 (Ir.Const 3)) in
  let m3 = B.binop eval Ir.Xor m2 (B.binop eval Ir.Shl v0 (Ir.Const 2)) in
  let m4 = B.binop eval Ir.And m3 (Ir.Const 0xffff_ffff) in
  B.store eval (B.slot_addr eval result) 0 m4;
  B.ret eval (Some (B.load eval (B.slot_addr eval result) 0));
  let release = B.func "tree_free" ~nparams:1 in
  let node = B.param 0 in
  let op = B.load release node 0 in
  Wb.if_ release
    (B.cmp release Ir.Ne op (Ir.Const 0))
    (fun () ->
      B.call_void release (Ir.Direct "tree_free") [ B.load release node 8 ];
      B.call_void release (Ir.Direct "tree_free") [ B.load release node 16 ])
    (fun () -> ());
  B.call_void release (Ir.Builtin "free") [ node ];
  B.ret release (Some (Ir.Const 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 3000;
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 12)) (fun _ ->
      let t = B.call main (Ir.Direct "tree_build") [ Ir.Const 4 ] in
      let v = B.call main (Ir.Direct "tree_eval") [ t ] in
      B.call_void main (Ir.Direct "tree_free") [ t ];
      let cur = B.load main (B.slot_addr main acc) 0 in
      B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish build; B.finish eval; B.finish release; B.finish main ]
    [ Wb.lcg_global "gc_rng" ]

(* ------------------------------------------------------------------ *)
(* mcf: network-simplex flavour — sweep arc arrays, compute reduced
   costs in a helper, occasionally update the spanning-tree array.
   Huge call count over small bodies plus heavy loads.                 *)
(* ------------------------------------------------------------------ *)
let mcf scale =
  let arcs = 512 in
  let reduced_cost = B.func "reduced_cost" ~nparams:1 in
  let a = B.param 0 in
  let off = B.binop reduced_cost Ir.Mul a (Ir.Const 8) in
  let cost = B.load reduced_cost (B.binop reduced_cost Ir.Add (Ir.Global "mc_cost") off) 0 in
  let pot = B.load reduced_cost (B.binop reduced_cost Ir.Add (Ir.Global "mc_pot") off) 0 in
  B.ret reduced_cost (Some (B.binop reduced_cost Ir.Sub cost pot));
  let pivot = B.func "pivot" ~nparams:2 in
  let a = B.param 0 and rc = B.param 1 in
  let off = B.binop pivot Ir.Mul a (Ir.Const 8) in
  let slot = B.binop pivot Ir.Add (Ir.Global "mc_pot") off in
  let p = B.load pivot slot 0 in
  B.store pivot slot 0 (B.binop pivot Ir.Add p rc);
  B.ret pivot (Some (Ir.Const 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 4000;
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  (* Seed the cost array. *)
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const arcs) (fun i ->
      let off = B.binop main Ir.Mul i (Ir.Const 8) in
      let v = B.binop main Ir.Mul i (Ir.Const 37) in
      let v2 = B.binop main Ir.Rem v (Ir.Const 1009) in
      B.store main (B.binop main Ir.Add (Ir.Global "mc_cost") off) 0 v2);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 19)) (fun _ ->
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const arcs) (fun a ->
          let rc = B.call main (Ir.Direct "reduced_cost") [ a ] in
          Wb.if_ main
            (B.cmp main Ir.Gt rc (Ir.Const 500))
            (fun () -> B.call_void main (Ir.Direct "pivot") [ a; rc ])
            (fun () ->
              let cur = B.load main (B.slot_addr main acc) 0 in
              B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur rc))));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish reduced_cost; B.finish pivot; B.finish main ]
    [
      { Ir.gname = "mc_cost"; gsize = 8 * arcs; ginit = [] };
      { Ir.gname = "mc_pot"; gsize = 8 * arcs; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* lbm: a lattice stencil — long arithmetic loops over a grid, almost
   no function calls (Table 2's outlier).                              *)
(* ------------------------------------------------------------------ *)
let lbm scale =
  let cells = 1024 in
  let main = B.func "main" ~nparams:0 in
  working_set main 3500;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const cells) (fun i ->
      let off = B.binop main Ir.Mul i (Ir.Const 8) in
      let v = B.binop main Ir.Mul i (Ir.Const 17) in
      B.store main (B.binop main Ir.Add (Ir.Global "lb_grid") off) 0 v);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 8)) (fun _ ->
      Wb.for_ main ~from:(Ir.Const 1) ~below:(Ir.Const (cells - 1)) (fun i ->
          let off = B.binop main Ir.Mul i (Ir.Const 8) in
          let base = B.binop main Ir.Add (Ir.Global "lb_grid") off in
          let left = B.load main base (-8) in
          let mid = B.load main base 0 in
          let right = B.load main base 8 in
          let s = B.binop main Ir.Add left right in
          let s2 = B.binop main Ir.Add s mid in
          let s3 = B.binop main Ir.Add s2 mid in
          let avg = B.binop main Ir.Sar s3 (Ir.Const 2) in
          let relaxed = B.binop main Ir.Add avg (Ir.Const 1) in
          B.store main (B.binop main Ir.Add (Ir.Global "lb_next") off) 0 relaxed);
      Wb.for_ main ~from:(Ir.Const 1) ~below:(Ir.Const (cells - 1)) (fun i ->
          let off = B.binop main Ir.Mul i (Ir.Const 8) in
          let v = B.load main (B.binop main Ir.Add (Ir.Global "lb_next") off) 0 in
          B.store main (B.binop main Ir.Add (Ir.Global "lb_grid") off) 0 v));
  let chk = B.load main (Ir.Global "lb_grid") (8 * 500) in
  B.call_void main (Ir.Builtin "print_int") [ chk ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish main ]
    [
      { Ir.gname = "lb_grid"; gsize = 8 * cells; ginit = [] };
      { Ir.gname = "lb_next"; gsize = 8 * cells; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* omnetpp: a discrete-event simulator — priority queue of events,
   virtual dispatch to module handlers that schedule more events. The
   most call-dense C++ pattern in the suite.                           *)
(* ------------------------------------------------------------------ *)
let omnetpp scale =
  (* Event queue: ring buffer of (time, module, payload) triples. *)
  let qsize = 512 in
  let schedule = B.func "ev_schedule" ~nparams:2 in
  let m = B.param 0 and payload = B.param 1 in
  let tail = B.load schedule (Ir.Global "om_tail") 0 in
  let idx = B.binop schedule Ir.Rem tail (Ir.Const qsize) in
  let off = B.binop schedule Ir.Mul idx (Ir.Const 16) in
  let base = B.binop schedule Ir.Add (Ir.Global "om_queue") off in
  B.store schedule base 0 m;
  B.store schedule base 8 payload;
  B.store schedule (Ir.Global "om_tail") 0 (B.binop schedule Ir.Add tail (Ir.Const 1));
  B.ret schedule (Some (Ir.Const 0));
  let mk_handler name transform reschedule =
    let fb = B.func name ~nparams:1 in
    let p = B.param 0 in
    let v = transform fb p in
    (* Per-module statistics: mean/var style accumulation. *)
    let stat = B.load fb (Ir.Global "om_stat") 0 in
    let sq = B.binop fb Ir.Mul v v in
    let sq2 = B.binop fb Ir.And sq (Ir.Const 0xffff) in
    let hist = B.binop fb Ir.And v (Ir.Const 15) in
    let hoff = B.binop fb Ir.Mul hist (Ir.Const 8) in
    let hslot = B.binop fb Ir.Add (Ir.Global "om_hist") hoff in
    let hv = B.load fb hslot 0 in
    B.store fb hslot 0 (B.binop fb Ir.Add hv (Ir.Const 1));
    let stat2 = B.binop fb Ir.Add stat sq2 in
    B.store fb (Ir.Global "om_stat") 0 (B.binop fb Ir.Sub stat2 sq2);
    B.store fb (Ir.Global "om_stat") 0 (B.binop fb Ir.Add stat v);
    if reschedule then begin
      let nm = B.binop fb Ir.Rem v (Ir.Const 4) in
      B.call_void fb (Ir.Direct "ev_schedule") [ nm; v ]
    end;
    B.ret fb (Some v);
    B.finish fb
  in
  let h0 = mk_handler "mod_source" (fun fb p -> B.binop fb Ir.Add p (Ir.Const 3)) true in
  let h1 = mk_handler "mod_queue" (fun fb p -> B.binop fb Ir.Xor p (Ir.Const 0x55)) true in
  let h2 = mk_handler "mod_delay" (fun fb p -> B.binop fb Ir.Shr p (Ir.Const 1)) false in
  let h3 = mk_handler "mod_sink" (fun fb p -> B.binop fb Ir.And p (Ir.Const 0xffff)) false in
  let main = B.func "main" ~nparams:0 in
  working_set main 2600;
  (* Prime the queue. *)
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 16) (fun i ->
      let m = B.binop main Ir.Rem i (Ir.Const 4) in
      B.call_void main (Ir.Direct "ev_schedule") [ m; i ]);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 5300)) (fun _ ->
      let head = B.load main (Ir.Global "om_head") 0 in
      let tail = B.load main (Ir.Global "om_tail") 0 in
      Wb.if_ main
        (B.cmp main Ir.Lt head tail)
        (fun () ->
          let idx = B.binop main Ir.Rem head (Ir.Const qsize) in
          let off = B.binop main Ir.Mul idx (Ir.Const 16) in
          let base = B.binop main Ir.Add (Ir.Global "om_queue") off in
          let m = B.load main base 0 in
          let payload = B.load main base 8 in
          B.store main (Ir.Global "om_head") 0 (B.binop main Ir.Add head (Ir.Const 1));
          (* Virtual dispatch through the vtable in the data section. *)
          let voff = B.binop main Ir.Mul m (Ir.Const 8) in
          let fp = B.load main (B.binop main Ir.Add (Ir.Global "om_vtable") voff) 0 in
          B.call_void main (Ir.Indirect fp) [ payload ])
        (fun () ->
          (* Queue drained: reprime. *)
          B.call_void main (Ir.Direct "ev_schedule") [ Ir.Const 0; Ir.Const 7 ]));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "om_stat") 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish schedule; h0; h1; h2; h3; B.finish main ]
    [
      { Ir.gname = "om_queue"; gsize = 16 * qsize; ginit = [] };
      { Ir.gname = "om_head"; gsize = 8; ginit = [] };
      { Ir.gname = "om_tail"; gsize = 8; ginit = [] };
      { Ir.gname = "om_stat"; gsize = 8; ginit = [] };
      { Ir.gname = "om_hist"; gsize = 8 * 16; ginit = [] };
      {
        Ir.gname = "om_vtable";
        gsize = 32;
        ginit =
          [ Ir.Sym_addr "mod_source"; Ir.Sym_addr "mod_queue"; Ir.Sym_addr "mod_delay";
            Ir.Sym_addr "mod_sink" ];
      };
    ]

(* ------------------------------------------------------------------ *)
(* xalancbmk: XML-ish transformation — scan a byte buffer for tags,
   intern names in a hash table, count elements. Byte loads plus
   frequent small calls.                                               *)
(* ------------------------------------------------------------------ *)
let xalancbmk scale =
  let doc_len = 256 in
  let intern = B.func "intern" ~nparams:1 in
  let h = B.binop intern Ir.Rem (B.param 0) (Ir.Const 128) in
  let off = B.binop intern Ir.Mul h (Ir.Const 8) in
  let slot = B.binop intern Ir.Add (Ir.Global "xa_names") off in
  let old = B.load intern slot 0 in
  B.store intern slot 0 (B.binop intern Ir.Add old (Ir.Const 1));
  B.ret intern (Some h);
  let emit = B.func "emit" ~nparams:2 in
  let count = B.load emit (Ir.Global "xa_out") 0 in
  let mixed = B.binop emit Ir.Xor (B.param 0) (B.param 1) in
  let c2 = B.binop emit Ir.Add count mixed in
  B.store emit (Ir.Global "xa_out") 0 c2;
  B.ret emit (Some c2);
  let transform = B.func "transform" ~nparams:1 in
  let hash = B.slot transform 8 in
  B.store transform (B.slot_addr transform hash) 0 (Ir.Const 0);
  Wb.for_ transform ~from:(Ir.Const 0) ~below:(Ir.Const doc_len) (fun i ->
      let addr = B.binop transform Ir.Add (Ir.Global "xa_doc") i in
      let c = B.load8 transform addr 0 in
      Wb.if_ transform
        (B.cmp transform Ir.Eq c (Ir.Const (Char.code '<')))
        (fun () ->
          let hv = B.load transform (B.slot_addr transform hash) 0 in
          let id = B.call transform (Ir.Direct "intern") [ hv ] in
          B.call_void transform (Ir.Direct "emit") [ id; B.param 0 ];
          B.store transform (B.slot_addr transform hash) 0 (Ir.Const 0))
        (fun () ->
          let hv = B.load transform (B.slot_addr transform hash) 0 in
          let h17 = B.binop transform Ir.Mul hv (Ir.Const 17) in
          let h2 = B.binop transform Ir.Add h17 c in
          let h3 = B.binop transform Ir.And h2 (Ir.Const 0xffffff) in
          B.store transform (B.slot_addr transform hash) 0 h3));
  B.ret transform (Some (Ir.Const 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 1800;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 63)) (fun pass ->
      B.call_void main (Ir.Direct "transform") [ pass ]);
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "xa_out") 0 ];
  B.ret main (Some (Ir.Const 0));
  let doc =
    let b = Buffer.create doc_len in
    for i = 0 to doc_len - 1 do
      Buffer.add_char b (if i mod 11 = 0 then '<' else Char.chr (97 + (i mod 26)))
    done;
    Buffer.contents b
  in
  B.program ~main:"main"
    [ B.finish intern; B.finish emit; B.finish transform; B.finish main ]
    [
      { Ir.gname = "xa_doc"; gsize = doc_len; ginit = [ Ir.Str doc ] };
      { Ir.gname = "xa_names"; gsize = 8 * 128; ginit = [] };
      { Ir.gname = "xa_out"; gsize = 8; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* x264: motion estimation — SAD over blocks; few calls, dense byte
   arithmetic inside the called kernel.                                *)
(* ------------------------------------------------------------------ *)
let x264 scale =
  let frame = 4096 in
  let sad = B.func "sad_block" ~nparams:2 in
  let a = B.param 0 and b = B.param 1 in
  let acc = B.slot sad 8 in
  B.store sad (B.slot_addr sad acc) 0 (Ir.Const 0);
  Wb.for_ sad ~from:(Ir.Const 0) ~below:(Ir.Const 32) (fun i ->
      let pa = B.binop sad Ir.Add (Ir.Global "xv_ref") (B.binop sad Ir.Add a i) in
      let pb = B.binop sad Ir.Add (Ir.Global "xv_cur") (B.binop sad Ir.Add b i) in
      let va = B.load8 sad pa 0 in
      let vb = B.load8 sad pb 0 in
      let d = B.binop sad Ir.Sub va vb in
      let neg = B.binop sad Ir.Sub (Ir.Const 0) d in
      let m = B.slot_addr sad acc in
      Wb.if_ sad
        (B.cmp sad Ir.Lt d (Ir.Const 0))
        (fun () -> B.store sad m 0 (B.binop sad Ir.Add (B.load sad m 0) neg))
        (fun () -> B.store sad m 0 (B.binop sad Ir.Add (B.load sad m 0) d)));
  B.ret sad (Some (B.load sad (B.slot_addr sad acc) 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 2800;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const frame) (fun i ->
      let v = B.binop main Ir.Mul i (Ir.Const 7) in
      let v2 = B.binop main Ir.And v (Ir.Const 0xff) in
      B.store8 main (B.binop main Ir.Add (Ir.Global "xv_ref") i) 0 v2;
      let w = B.binop main Ir.Mul i (Ir.Const 11) in
      let w2 = B.binop main Ir.And w (Ir.Const 0xff) in
      B.store8 main (B.binop main Ir.Add (Ir.Global "xv_cur") i) 0 w2);
  let best = B.slot main 8 in
  B.store main (B.slot_addr main best) 0 (Ir.Const 0);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 21)) (fun pass ->
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 40) (fun blk ->
          let a = B.binop main Ir.Mul blk (Ir.Const 64) in
          let shift = B.binop main Ir.Rem pass (Ir.Const 32) in
          let b = B.binop main Ir.Add a shift in
          let s = B.call main (Ir.Direct "sad_block") [ a; b ] in
          let cur = B.load main (B.slot_addr main best) 0 in
          B.store main (B.slot_addr main best) 0 (B.binop main Ir.Add cur s)));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main best) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish sad; B.finish main ]
    [
      { Ir.gname = "xv_ref"; gsize = frame + 64; ginit = [] };
      { Ir.gname = "xv_cur"; gsize = frame + 64; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* deepsjeng: alpha-beta search — recursion with an evaluation call at
   the leaves and move generation per node.                            *)
(* ------------------------------------------------------------------ *)
let deepsjeng scale =
  let evaluate = B.func "evaluate" ~nparams:1 in
  let p = B.param 0 in
  let a = B.binop evaluate Ir.Mul p (Ir.Const 2654435761) in
  let acc = B.slot evaluate 8 in
  B.store evaluate (B.slot_addr evaluate acc) 0 (Ir.Const 0);
  (* Material + positional terms over an 8-entry piece table. *)
  Wb.for_ evaluate ~from:(Ir.Const 0) ~below:(Ir.Const 8) (fun k ->
      let shifted = B.binop evaluate Ir.Shr a k in
      let piece = B.binop evaluate Ir.And shifted (Ir.Const 7) in
      let off = B.binop evaluate Ir.Mul piece (Ir.Const 8) in
      let w = B.load evaluate (B.binop evaluate Ir.Add (Ir.Global "ds_piece") off) 0 in
      let cur = B.load evaluate (B.slot_addr evaluate acc) 0 in
      B.store evaluate (B.slot_addr evaluate acc) 0 (B.binop evaluate Ir.Add cur w));
  let b = B.binop evaluate Ir.And (B.load evaluate (B.slot_addr evaluate acc) 0) (Ir.Const 0xffff) in
  let c = B.binop evaluate Ir.Sub b (Ir.Const 0x8000) in
  B.ret evaluate (Some c);
  let search = B.func "search" ~nparams:2 in
  let pos = B.param 0 and depth = B.param 1 in
  let best = B.slot search 8 in
  Wb.if_ search
    (B.cmp search Ir.Le depth (Ir.Const 0))
    (fun () ->
      let v = B.call search (Ir.Direct "evaluate") [ pos ] in
      B.store search (B.slot_addr search best) 0 v)
    (fun () ->
      B.store search (B.slot_addr search best) 0 (Ir.Const (-1000000));
      Wb.for_ search ~from:(Ir.Const 0) ~below:(Ir.Const 4) (fun mv ->
          let p7 = B.binop search Ir.Mul pos (Ir.Const 7) in
          let child = B.binop search Ir.Add p7 mv in
          let child2 = B.binop search Ir.And child (Ir.Const 0xfffffff) in
          let d' = B.binop search Ir.Sub depth (Ir.Const 1) in
          let v = B.call search (Ir.Direct "search") [ child2; d' ] in
          let neg = B.binop search Ir.Sub (Ir.Const 0) v in
          let cur = B.load search (B.slot_addr search best) 0 in
          Wb.if_ search
            (B.cmp search Ir.Gt neg cur)
            (fun () -> B.store search (B.slot_addr search best) 0 neg)
            (fun () -> ())));
  B.ret search (Some (B.load search (B.slot_addr search best) 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 1500;
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 5)) (fun i ->
      let v = B.call main (Ir.Direct "search") [ i; Ir.Const 4 ] in
      let cur = B.load main (B.slot_addr main acc) 0 in
      B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish evaluate; B.finish search; B.finish main ]
    [
      {
        Ir.gname = "ds_piece";
        gsize = 64;
        ginit = [ Ir.Word 100; Ir.Word 320; Ir.Word 330; Ir.Word 500;
                  Ir.Word 900; Ir.Word 20000; Ir.Word 0; Ir.Word 50 ];
      };
    ]

(* ------------------------------------------------------------------ *)
(* imagick: image processing — per-pixel loops with a row-op call per
   row and a 3-tap convolution.                                        *)
(* ------------------------------------------------------------------ *)
let imagick scale =
  let width = 32 in
  let height = 24 in
  let row_op = B.func "row_op" ~nparams:1 in
  let y = B.param 0 in
  let base = B.binop row_op Ir.Mul y (Ir.Const width) in
  Wb.for_ row_op ~from:(Ir.Const 1) ~below:(Ir.Const (width - 1)) (fun x ->
      let idx = B.binop row_op Ir.Add base x in
      let addr = B.binop row_op Ir.Add (Ir.Global "im_pix") idx in
      let l = B.load8 row_op addr (-1) in
      let m = B.load8 row_op addr 0 in
      let r = B.load8 row_op addr 1 in
      let s = B.binop row_op Ir.Add l r in
      let s2 = B.binop row_op Ir.Add s (B.binop row_op Ir.Mul m (Ir.Const 2)) in
      let avg = B.binop row_op Ir.Shr s2 (Ir.Const 2) in
      B.store8 row_op (B.binop row_op Ir.Add (Ir.Global "im_out") idx) 0 avg);
  B.ret row_op (Some (Ir.Const 0));
  let checksum = B.func "im_checksum" ~nparams:0 in
  let acc = B.slot checksum 8 in
  B.store checksum (B.slot_addr checksum acc) 0 (Ir.Const 0);
  Wb.for_ checksum ~from:(Ir.Const 0) ~below:(Ir.Const (width * height)) (fun i ->
      let v = B.load8 checksum (B.binop checksum Ir.Add (Ir.Global "im_out") i) 0 in
      let cur = B.load checksum (B.slot_addr checksum acc) 0 in
      B.store checksum (B.slot_addr checksum acc) 0 (B.binop checksum Ir.Add cur v));
  B.ret checksum (Some (B.load checksum (B.slot_addr checksum acc) 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 2500;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (width * height)) (fun i ->
      let v = B.binop main Ir.Mul i (Ir.Const 13) in
      let v2 = B.binop main Ir.And v (Ir.Const 0xff) in
      B.store8 main (B.binop main Ir.Add (Ir.Global "im_pix") i) 0 v2);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 108)) (fun _ ->
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const height) (fun y ->
          B.call_void main (Ir.Direct "row_op") [ y ]));
  let chk = B.call main (Ir.Direct "im_checksum") [] in
  B.call_void main (Ir.Builtin "print_int") [ chk ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish row_op; B.finish checksum; B.finish main ]
    [
      { Ir.gname = "im_pix"; gsize = width * height; ginit = [] };
      { Ir.gname = "im_out"; gsize = width * height; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* leela: Monte-Carlo tree search — tree descent with a child-selection
   call per level and playout steps calling a scorer.                  *)
(* ------------------------------------------------------------------ *)
let leela scale =
  let select = B.func "select_child" ~nparams:2 in
  (* UCT-style scoring over 4 pseudo-children. *)
  let node = B.param 0 and r = B.param 1 in
  let best = B.slot select 8 in
  B.store select (B.slot_addr select best) 0 (Ir.Const 0);
  Wb.for_ select ~from:(Ir.Const 0) ~below:(Ir.Const 4) (fun c ->
      let mixed = B.binop select Ir.Xor node (B.binop select Ir.Add r c) in
      let m2 = B.binop select Ir.Mul mixed (Ir.Const 0x9e3779b9) in
      let visits = B.binop select Ir.And m2 (Ir.Const 0xff) in
      let wins = B.binop select Ir.And (B.binop select Ir.Shr m2 (Ir.Const 8)) (Ir.Const 0xff) in
      let score = B.binop select Ir.Add (B.binop select Ir.Mul wins (Ir.Const 4)) visits in
      let cur = B.load select (B.slot_addr select best) 0 in
      Wb.if_ select
        (B.cmp select Ir.Gt score cur)
        (fun () -> B.store select (B.slot_addr select best) 0 score)
        (fun () -> ()));
  let child = B.binop select Ir.And (B.load select (B.slot_addr select best) 0) (Ir.Const 0x3fffff) in
  B.ret select (Some child);
  let score = B.func "playout_score" ~nparams:1 in
  let p = B.param 0 in
  let s0 = B.binop score Ir.Rem p (Ir.Const 361) in
  let s1 = B.binop score Ir.Mul s0 (Ir.Const 0x45d9f3b) in
  let s2 = B.binop score Ir.Xor s1 (B.binop score Ir.Shr s1 (Ir.Const 11)) in
  let s3 = B.binop score Ir.Add s2 (B.binop score Ir.And p (Ir.Const 0x1f)) in
  let s4 = B.binop score Ir.Rem s3 (Ir.Const 361) in
  B.ret score (Some s4);
  let main = B.func "main" ~nparams:0 in
  working_set main 1600;
  let wins = B.slot main 8 in
  B.store main (B.slot_addr main wins) 0 (Ir.Const 0);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 265)) (fun _ ->
      (* Descend 8 plies. *)
      let node = B.slot main 8 in
      B.store main (B.slot_addr main node) 0 (Ir.Const 1);
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 8) (fun _ ->
          let r = Wb.lcg main "le_rng" in
          let cur = B.load main (B.slot_addr main node) 0 in
          let c = B.call main (Ir.Direct "select_child") [ cur; r ] in
          B.store main (B.slot_addr main node) 0 c);
      (* Playout of 16 steps. *)
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 16) (fun _ ->
          let r = Wb.lcg main "le_rng" in
          let s = B.call main (Ir.Direct "playout_score") [ r ] in
          let cur = B.load main (B.slot_addr main wins) 0 in
          B.store main (B.slot_addr main wins) 0 (B.binop main Ir.Add cur s)));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main wins) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish select; B.finish score; B.finish main ]
    [ Wb.lcg_global "le_rng" ]

(* ------------------------------------------------------------------ *)
(* nab: molecular dynamics — the force loop calls tiny math helpers for
   every particle pair: by far the highest call frequency (Table 2).   *)
(* ------------------------------------------------------------------ *)
let nab scale =
  let particles = 75 in
  let dist2 = B.func "dist2" ~nparams:2 in
  let i = B.param 0 and j = B.param 1 in
  let xi = B.load dist2 (B.binop dist2 Ir.Add (Ir.Global "nb_x") (B.binop dist2 Ir.Mul i (Ir.Const 8))) 0 in
  let xj = B.load dist2 (B.binop dist2 Ir.Add (Ir.Global "nb_x") (B.binop dist2 Ir.Mul j (Ir.Const 8))) 0 in
  let d = B.binop dist2 Ir.Sub xi xj in
  B.ret dist2 (Some (B.binop dist2 Ir.Mul d d));
  let force_add = B.func "force_add" ~nparams:2 in
  let i = B.param 0 and f = B.param 1 in
  let slot = B.binop force_add Ir.Add (Ir.Global "nb_f") (B.binop force_add Ir.Mul i (Ir.Const 8)) in
  let cur = B.load force_add slot 0 in
  B.store force_add slot 0 (B.binop force_add Ir.Add cur f);
  B.ret force_add (Some (Ir.Const 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 1200;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const particles) (fun i ->
      let off = B.binop main Ir.Mul i (Ir.Const 8) in
      let v = B.binop main Ir.Mul i (Ir.Const 31) in
      B.store main (B.binop main Ir.Add (Ir.Global "nb_x") off) 0 v);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 3)) (fun _ ->
      Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const particles) (fun i ->
          Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const particles) (fun j ->
              let d2 = B.call main (Ir.Direct "dist2") [ i; j ] in
              let f = B.binop main Ir.Rem d2 (Ir.Const 1021) in
              B.call_void main (Ir.Direct "force_add") [ i; f ])));
  let chk = B.load main (Ir.Global "nb_f") (8 * 50) in
  B.call_void main (Ir.Builtin "print_int") [ chk ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish dist2; B.finish force_add; B.finish main ]
    [
      { Ir.gname = "nb_x"; gsize = 8 * particles; ginit = [] };
      { Ir.gname = "nb_f"; gsize = 8 * particles; ginit = [] };
    ]

(* ------------------------------------------------------------------ *)
(* xz: LZ77-style match finding — hash-chain lookups over a byte
   buffer, emit calls per position.                                    *)
(* ------------------------------------------------------------------ *)
let xz scale =
  let input_len = 512 in
  let emit_literal = B.func "emit_literal" ~nparams:1 in
  let c = B.load emit_literal (Ir.Global "xz_out") 0 in
  let c2 = B.binop emit_literal Ir.Add c (Ir.Const 1) in
  B.store emit_literal (Ir.Global "xz_out") 0 c2;
  (* Range-coder flavoured checksum update. *)
  let chk = B.load emit_literal (Ir.Global "xz_chk") 0 in
  let m1 = B.binop emit_literal Ir.Mul chk (Ir.Const 31) in
  let m2 = B.binop emit_literal Ir.Add m1 (B.param 0) in
  let m3 = B.binop emit_literal Ir.Xor m2 (B.binop emit_literal Ir.Shr m2 (Ir.Const 9)) in
  let m4 = B.binop emit_literal Ir.And m3 (Ir.Const 0x3fff_ffff) in
  B.store emit_literal (Ir.Global "xz_chk") 0 m4;
  B.ret emit_literal (Some (Ir.Const 0));
  let emit_match = B.func "emit_match" ~nparams:2 in
  let c = B.load emit_match (Ir.Global "xz_out") 0 in
  B.store emit_match (Ir.Global "xz_out") 0 (B.binop emit_match Ir.Add c (B.param 1));
  B.ret emit_match (Some (Ir.Const 0));
  let compress = B.func "compress" ~nparams:1 in
  Wb.for_ compress ~from:(Ir.Const 4) ~below:(Ir.Const (input_len - 8)) (fun pos ->
      let addr = B.binop compress Ir.Add (Ir.Global "xz_in") pos in
      let b0 = B.load8 compress addr 0 in
      let b1 = B.load8 compress addr 1 in
      let h = B.binop compress Ir.Add (B.binop compress Ir.Mul b0 (Ir.Const 33)) b1 in
      let h2 = B.binop compress Ir.Rem h (Ir.Const 64) in
      let slot = B.binop compress Ir.Add (Ir.Global "xz_hash") (B.binop compress Ir.Mul h2 (Ir.Const 8)) in
      let prev = B.load compress slot 0 in
      B.store compress slot 0 pos;
      (* Compare 4 bytes at prev vs pos. *)
      let len = B.slot compress 8 in
      B.store compress (B.slot_addr compress len) 0 (Ir.Const 0);
      Wb.for_ compress ~from:(Ir.Const 0) ~below:(Ir.Const 4) (fun k ->
          let pa = B.binop compress Ir.Add (Ir.Global "xz_in") (B.binop compress Ir.Add prev k) in
          let pb = B.binop compress Ir.Add (Ir.Global "xz_in") (B.binop compress Ir.Add pos k) in
          let va = B.load8 compress pa 0 in
          let vb = B.load8 compress pb 0 in
          Wb.if_ compress
            (B.cmp compress Ir.Eq va vb)
            (fun () ->
              let cur = B.load compress (B.slot_addr compress len) 0 in
              B.store compress (B.slot_addr compress len) 0
                (B.binop compress Ir.Add cur (Ir.Const 1)))
            (fun () -> ()));
      let matched = B.load compress (B.slot_addr compress len) 0 in
      Wb.if_ compress
        (B.cmp compress Ir.Ge matched (Ir.Const 3))
        (fun () -> B.call_void compress (Ir.Direct "emit_match") [ prev; matched ])
        (fun () -> B.call_void compress (Ir.Direct "emit_literal") [ b0 ]));
  B.ret compress (Some (Ir.Const 0));
  let main = B.func "main" ~nparams:0 in
  working_set main 2400;
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const input_len) (fun i ->
      let v = B.binop main Ir.Mul i (Ir.Const 5) in
      let v2 = B.binop main Ir.And v (Ir.Const 0x3f) in
      B.store8 main (B.binop main Ir.Add (Ir.Global "xz_in") i) 0 v2);
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const (sc scale 2)) (fun pass ->
      B.call_void main (Ir.Direct "compress") [ pass ]);
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "xz_out") 0 ];
  B.call_void main (Ir.Builtin "print_int") [ B.load main (Ir.Global "xz_chk") 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    [ B.finish emit_literal; B.finish emit_match; B.finish compress; B.finish main ]
    [
      { Ir.gname = "xz_in"; gsize = input_len + 16; ginit = [] };
      { Ir.gname = "xz_hash"; gsize = 8 * 64; ginit = [] };
      { Ir.gname = "xz_out"; gsize = 8; ginit = [] };
      { Ir.gname = "xz_chk"; gsize = 8; ginit = [] };
    ]

(* SPEC runs several inputs per benchmark; our train/ref/big inputs scale
   the reference workload by 0.6/1.0/1.5. *)
let input_scales = [ 0.6; 1.0; 1.5 ]

let all ?(scale = 1.0) () =
  let mk name build paper_calls cpp =
    {
      name;
      program = build scale;
      inputs = List.map (fun s -> build (scale *. s)) input_scales;
      paper_calls;
      cpp;
    }
  in
  [
    mk "perlbench" perlbench 9_435_182_963.0 false;
    mk "gcc" gcc 7_471_474_392.0 false;
    mk "mcf" mcf 38_657_893_688.0 false;
    mk "lbm" lbm 20_906_700.0 false;
    mk "omnetpp" omnetpp 23_536_583_520.0 true;
    mk "xalancbmk" xalancbmk 12_430_137_048.0 true;
    mk "x264" x264 3_400_115_007.0 false;
    mk "deepsjeng" deepsjeng 11_366_032_234.0 true;
    mk "imagick" imagick 10_441_212_712.0 false;
    mk "leela" leela 13_108_456_661.0 true;
    mk "nab" nab 135_237_228_510.0 false;
    mk "xz" xz 3_287_645_643.0 false;
  ]

let find ?scale name =
  match List.find_opt (fun b -> b.name = name) (all ?scale ()) with
  | Some b -> b
  | None -> raise Not_found
