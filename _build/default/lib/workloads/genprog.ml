module B = Builder
module Rng = R2c_util.Rng

let fname i = Printf.sprintf "gp_f%d" i

(* One generated function: mixes its parameters with arithmetic, touches a
   global array, sometimes loops, and calls 0-3 lower-numbered functions
   (guaranteeing an acyclic call graph). *)
let gen_func rng i =
  let fb = B.func (fname i) ~nparams:2 in
  let a = B.param 0 and b = B.param 1 in
  let acc = B.slot fb 8 in
  B.store fb (B.slot_addr fb acc) 0 a;
  let add v =
    let cur = B.load fb (B.slot_addr fb acc) 0 in
    B.store fb (B.slot_addr fb acc) 0 (B.binop fb Ir.Add cur v)
  in
  (* Arithmetic body. *)
  let n_ops = Rng.int_in_range rng ~lo:2 ~hi:6 in
  let cur = ref b in
  for _ = 1 to n_ops do
    let op =
      match Rng.int rng 5 with
      | 0 -> Ir.Add
      | 1 -> Ir.Sub
      | 2 -> Ir.Mul
      | 3 -> Ir.Xor
      | _ -> Ir.And
    in
    cur := B.binop fb op !cur (Ir.Const (Rng.int_in_range rng ~lo:1 ~hi:1000))
  done;
  add !cur;
  (* Global array touch. *)
  if Rng.bool rng then begin
    let idx = B.binop fb Ir.And a (Ir.Const 63) in
    let off = B.binop fb Ir.Mul idx (Ir.Const 8) in
    let slot = B.binop fb Ir.Add (Ir.Global "gp_data") off in
    let v = B.load fb slot 0 in
    B.store fb slot 0 (B.binop fb Ir.Add v (Ir.Const 1));
    add v
  end;
  (* Occasional small loop. *)
  if Rng.int rng 3 = 0 then begin
    let n = Rng.int_in_range rng ~lo:2 ~hi:5 in
    Wb.for_ fb ~from:(Ir.Const 0) ~below:(Ir.Const n) (fun k ->
        let m = B.binop fb Ir.Mul k (Ir.Const 3) in
        add m)
  end;
  (* Calls to earlier functions (each executed exactly once per call of
     this function, keeping total work linear in program size). *)
  if i > 0 then begin
    (* Expected out-degree < 1 keeps the expected transitive work per call
       bounded, so even 30k-function programs execute in linear time. *)
    let n_calls =
      match Rng.int rng 10 with 0 | 1 | 2 | 3 -> 1 | 4 | 5 -> 2 | _ -> 0
    in
    let n_calls = min n_calls i in
    for _ = 1 to n_calls do
      let callee = Rng.int rng i in
      let v =
        B.call fb (Ir.Direct (fname callee))
          [ B.binop fb Ir.And a (Ir.Const 0xffff); Ir.Const (Rng.int_in_range rng ~lo:0 ~hi:99) ]
      in
      add v
    done
  end;
  let r = B.load fb (B.slot_addr fb acc) 0 in
  B.ret fb (Some (B.binop fb Ir.And r (Ir.Const 0xffff_ffff)));
  B.finish fb

let generate ~seed ~funcs =
  assert (funcs > 0);
  let rng = Rng.create seed in
  let fs = List.init funcs (fun i -> gen_func rng i) in
  let main = B.func "main" ~nparams:0 in
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  (* Call the top layer: the highest functions transitively execute a large
     share of the graph. *)
  let roots = min 8 funcs in
  for k = 1 to roots do
    let v = B.call main (Ir.Direct (fname (funcs - k))) [ Ir.Const k; Ir.Const (k * 7) ] in
    let cur = B.load main (B.slot_addr main acc) 0 in
    B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v)
  done;
  (* Ensure every function ran at least once (coverage of the compile). *)
  Wb.for_ main ~from:(Ir.Const 0) ~below:(Ir.Const 1) (fun _ -> ());
  let covered = B.func "gp_cover" ~nparams:0 in
  let acc2 = B.slot covered 8 in
  B.store covered (B.slot_addr covered acc2) 0 (Ir.Const 0);
  List.iteri
    (fun i _ ->
      let v = B.call covered (Ir.Direct (fname i)) [ Ir.Const i; Ir.Const 3 ] in
      let cur = B.load covered (B.slot_addr covered acc2) 0 in
      B.store covered (B.slot_addr covered acc2) 0 (B.binop covered Ir.Xor cur v))
    fs;
  B.ret covered (Some (B.load covered (B.slot_addr covered acc2) 0));
  let v = B.call main (Ir.Direct "gp_cover") [] in
  let cur = B.load main (B.slot_addr main acc) 0 in
  B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur v);
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main"
    (fs @ [ B.finish covered; B.finish main ])
    [ { Ir.gname = "gp_data"; gsize = 8 * 64; ginit = [] } ]
