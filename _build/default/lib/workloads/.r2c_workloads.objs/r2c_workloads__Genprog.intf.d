lib/workloads/genprog.mli: Ir
