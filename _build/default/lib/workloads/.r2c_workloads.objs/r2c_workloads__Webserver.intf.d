lib/workloads/webserver.mli: Ir
