lib/workloads/browser.ml: Buffer Builder Char Ir String Wb
