lib/workloads/webserver.ml: Builder Float Ir List Wb
