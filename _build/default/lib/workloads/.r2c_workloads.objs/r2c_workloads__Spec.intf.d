lib/workloads/spec.mli: Ir
