lib/workloads/wb.ml: Builder Ir
