lib/workloads/spec.ml: Buffer Builder Char Ir List String Wb
