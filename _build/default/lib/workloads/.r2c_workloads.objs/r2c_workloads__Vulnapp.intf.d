lib/workloads/vulnapp.mli: Ir R2c_compiler R2c_core R2c_machine
