lib/workloads/wb.mli: Builder Ir
