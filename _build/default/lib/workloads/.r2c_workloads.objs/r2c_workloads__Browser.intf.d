lib/workloads/browser.mli: Ir
