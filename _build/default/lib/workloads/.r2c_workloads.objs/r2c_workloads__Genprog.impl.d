lib/workloads/genprog.ml: Builder Ir List Printf R2c_util Wb
