module B = Builder
module Insn = R2c_machine.Insn
module Opts = R2c_compiler.Opts

let marker = 0xdeadbeef

let requests = 8

let break_symbol = "__ra_process_request_0"

let program () =
  (* Privileged sink: passes its pointer argument straight to the execve
     analogue. *)
  let exec_cmd = B.func "exec_cmd" ~nparams:1 in
  B.call_void exec_cmd (Ir.Builtin "sensitive") [ B.param 0; Ir.Const 0xec ];
  B.ret exec_cmd (Some (Ir.Const 0));
  (* The AOCR default-parameter pattern: the argument comes from a global. *)
  let handler_exec = B.func "handler_exec" ~nparams:1 in
  let d = B.load handler_exec (Ir.Global "g_default_cmd") 0 in
  let r = B.call handler_exec (Ir.Direct "exec_cmd") [ d ] in
  B.ret handler_exec (Some r);
  let handler_echo = B.func "handler_echo" ~nparams:1 in
  B.call_void handler_echo (Ir.Builtin "print_int") [ B.param 0 ];
  B.ret handler_echo (Some (B.param 0));
  let handler_compute = B.func "handler_compute" ~nparams:1 in
  let x = B.param 0 in
  let x2 = B.binop handler_compute Ir.Mul x x in
  let r = B.binop handler_compute Ir.Add x2 (Ir.Const 7) in
  B.ret handler_compute (Some r);
  let handler_stats = B.func "handler_stats" ~nparams:1 in
  let c = B.load handler_stats (Ir.Global "g_req_count") 0 in
  let c2 = B.binop handler_stats Ir.Add c (Ir.Const 1) in
  B.store handler_stats (Ir.Global "g_req_count") 0 c2;
  B.ret handler_stats (Some c2);
  (* One request: the overflow, a heap session holding a data-section
     pointer, and an indirect dispatch through a stack-resident function
     pointer. *)
  let pr = B.func "process_request" ~nparams:1 in
  let i = B.param 0 in
  let s_buf = B.slot pr 64 in
  let s_fp = B.slot pr 8 in
  let s_session = B.slot pr 8 in
  (* Slot addresses are rematerialized at each use (as an optimizing
     compiler would): no address value stays live across the overflow. *)
  (* Call site 0 of process_request: THE vulnerability. 64-byte buffer,
     4096-byte limit. The buffer's first byte is initialised so an empty
     request is well-defined. *)
  B.store8 pr (B.slot_addr pr s_buf) 0 (Ir.Const 0);
  let n = B.call pr (Ir.Builtin "read_input") [ B.slot_addr pr s_buf; Ir.Const 4096 ] in
  let session = B.call pr (Ir.Builtin "malloc") [ Ir.Const 32 ] in
  B.store pr session 0 i;
  B.store pr session 8 (Ir.Global "g_motd");
  B.store pr session 16 n;
  B.store pr (B.slot_addr pr s_session) 0 session;
  (* Keep every session alive in a global ring (servers cache sessions). *)
  let ring_idx = B.binop pr Ir.Rem i (Ir.Const 8) in
  let ring_off = B.binop pr Ir.Mul ring_idx (Ir.Const 8) in
  let ring_addr = B.binop pr Ir.Add (Ir.Global "g_session_ring") ring_off in
  B.store pr ring_addr 0 session;
  (* Service dispatch through a frame-resident function pointer; entry 3
     (handler_exec) is never selected legitimately. *)
  let svc_idx = B.binop pr Ir.Rem i (Ir.Const 3) in
  let svc_off = B.binop pr Ir.Mul svc_idx (Ir.Const 8) in
  let svc_addr = B.binop pr Ir.Add (Ir.Global "g_service_table") svc_off in
  let fp = B.load pr svc_addr 0 in
  B.store pr (B.slot_addr pr s_fp) 0 fp;
  let x = B.load8 pr (B.slot_addr pr s_buf) 0 in
  let fp2 = B.load pr (B.slot_addr pr s_fp) 0 in
  let r = B.call pr (Ir.Indirect fp2) [ x ] in
  let session2 = B.load pr (B.slot_addr pr s_session) 0 in
  B.store pr session2 24 r;
  B.ret pr (Some r);
  (* The request loop. *)
  let main = B.func "main" ~nparams:0 in
  let s_i = B.slot main 8 in
  let i_addr = B.slot_addr main s_i in
  B.store main i_addr 0 (Ir.Const 0);
  let header = B.new_block main and body = B.new_block main and fin = B.new_block main in
  B.br main header;
  B.switch_to main header;
  let iv = B.load main i_addr 0 in
  let c = B.cmp main Ir.Lt iv (Ir.Const requests) in
  B.cond_br main c body fin;
  B.switch_to main body;
  let iv2 = B.load main i_addr 0 in
  B.call_void main (Ir.Direct "process_request") [ iv2 ];
  let iv3 = B.binop main Ir.Add iv2 (Ir.Const 1) in
  B.store main i_addr 0 iv3;
  B.br main header;
  B.switch_to main fin;
  let served = B.load main (Ir.Global "g_req_count") 0 in
  B.call_void main (Ir.Builtin "print_int") [ served ];
  B.ret main (Some (Ir.Const 0));
  let globals =
    [
      B.global "g_motd" ~size:24 [ Ir.Str "Welcome to vulnsrv\000" ];
      B.global "g_safe_cmd" ~size:8 [ Ir.Str "status\000" ];
      B.global "g_default_cmd" ~size:8 [ Ir.Sym_addr "g_safe_cmd" ];
      B.global "g_service_table" ~size:32
        [
          Ir.Sym_addr "handler_echo";
          Ir.Sym_addr "handler_compute";
          Ir.Sym_addr "handler_stats";
          Ir.Sym_addr "handler_exec";
        ];
      B.global "g_session_ring" ~size:64 [];
      B.global "g_req_count" ~size:8 [];
    ]
  in
  B.program ~main:"main"
    [
      B.finish exec_cmd;
      B.finish handler_exec;
      B.finish handler_echo;
      B.finish handler_compute;
      B.finish handler_stats;
      B.finish pr;
      B.finish main;
    ]
    globals

(* The libc analogue's gadget population: helper functions whose code
   happens to contain the classic sequences — exactly the situation on a
   real system, where libc maps into every process. *)
let runtime_stubs =
  let open Insn in
  [
    {
      Opts.rname = "__rt_invoke1";
      rinsns = [ Mov (Reg RAX, Reg RDI); Pop RDI; Ret ];
      rbooby_trap = false;
    };
    {
      Opts.rname = "__rt_invoke2";
      rinsns = [ Nop 3; Pop RSI; Pop RDI; Ret ];
      rbooby_trap = false;
    };
    {
      Opts.rname = "__rt_store";
      rinsns = [ Mov (Mem (mem ~base:RDI ()), Reg RSI); Ret ];
      rbooby_trap = false;
    };
    {
      Opts.rname = "__rt_fetch";
      rinsns = [ Mov (Reg RAX, Mem (mem ~base:RDI ())); Ret ];
      rbooby_trap = false;
    };
    {
      Opts.rname = "__rt_pivot";
      rinsns = [ Mov (Reg RSP, Reg RDI); Ret ];
      rbooby_trap = false;
    };
    { Opts.rname = "__rt_nop"; rinsns = [ Nop 1; Ret ]; rbooby_trap = false };
  ]

let build ?(seed = 1) cfg =
  R2c_core.Pipeline.compile ~extra_raw:runtime_stubs ~seed cfg (program ())
