(** The paper's reported numbers, for side-by-side output.

    Sources: Table 1 (component overheads), Table 2 (call frequencies),
    Section 6.2.1 (offset-invariant addressing), Section 6.2.4 (webserver
    throughput), Section 6.2.5 (memory), Figure 6 (full-R2C geomeans),
    Section 7.2.1 (probability example). *)

val table1 : (string * float * float) list
(** (component, max, geomean) overhead ratios *)

val oia_geomean : float
val oia_max : float

val table2 : (string * float) list
(** (benchmark, median executed calls) *)

val figure6_geomean_range : float * float
val figure6_worst : string * float  (** omnetpp on Xeon *)

val webserver_drop_intel : (string * float) list
(** throughput decrease on i9-9900K *)

val webserver_drop_amd : float * float  (** range on the AMD machines *)

val spec_memory_overhead : float * float  (** 1-3% *)

val webserver_memory_overhead : float  (** ~100% *)

val webserver_memory_btdp_share : float  (** ~55% *)

val guess_probability_example : float  (** (1/11)^4 *)
