module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp
module Rng = R2c_util.Rng
module Stats = R2c_util.Stats
module Table = R2c_util.Table

type cell = {
  attack : string;
  trials : int;
  successes : int;
  detections : int;
}

type row = {
  defense : string;
  measured_overhead : float option;
  paper_overhead : string;
  cpp : bool;
  cells : cell list;
}

let scenario (d : Defenses.t) ~seed =
  let target_img = Defenses.build_vulnapp d ~seed in
  let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 1000)) in
  let relink =
    if d.Defenses.rerandomize then begin
      let counter = ref 0 in
      Some
        (fun () ->
          incr counter;
          Defenses.build_vulnapp d ~seed:(seed + (7777 * !counter)))
    end
    else None
  in
  (reference, Oracle.attach ?relink ~break_sym:Vulnapp.break_symbol target_img)

let attacks : (string * (Defenses.t -> seed:int -> Report.t)) list =
  [
    ( "ROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Rop.run ~reference ~target );
    ( "JIT-ROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Jitrop.run ~reference ~target );
    ( "PIROP",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Pirop.run ~reference ~target () );
    ( "AOCR",
      fun d ~seed ->
        let reference, target = scenario d ~seed in
        R2c_attacks.Aocr.run ~rng:(Rng.create (seed * 977)) ~reference ~target () );
  ]

(* A small SPEC subset keeps the overhead column affordable. *)
let overhead_subset = [ "perlbench"; "mcf"; "omnetpp"; "x264" ]

let measure_overhead (d : Defenses.t) =
  let ratios =
    List.map
      (fun name ->
        let b = R2c_workloads.Spec.find name in
        let base =
          (Measure.run (R2c_compiler.Driver.compile b.program)).Measure.steady_cycles
        in
        let img = Defenses.build d ~seed:9 ~extra_raw:[] b.program in
        (Measure.run img).Measure.steady_cycles /. base)
      overhead_subset
  in
  Stats.geomean ratios

let run ?(trials = 3) ?(with_overhead = true) () =
  List.map
    (fun (d : Defenses.t) ->
      let cells =
        List.map
          (fun (attack, f) ->
            let reports = List.init trials (fun i -> f d ~seed:((i * 13) + 2)) in
            {
              attack;
              trials;
              successes =
                List.length (List.filter (fun r -> r.Report.success) reports);
              detections =
                List.length (List.filter (fun r -> r.Report.detected) reports);
            })
          attacks
      in
      {
        defense = d.Defenses.name;
        measured_overhead = (if with_overhead then Some (measure_overhead d) else None);
        paper_overhead = d.Defenses.paper_overhead;
        cpp = d.Defenses.cpp_support;
        cells;
      })
    Defenses.all

let glyph c =
  if c.successes = 0 then "#"  (* protected *)
  else if c.successes >= (c.trials + 1) / 2 then "o"  (* broken *)
  else "+" (* partial *)

let print rows =
  let headers =
    [ "defense"; "overhead"; "paper"; "C++" ]
    @ List.map (fun (a, _) -> a) attacks
    @ [ "detections" ]
  in
  Table.print
    ~title:
      "Table 3: defense comparison (# = stopped every trial, o = broken, + = partial)"
    ~headers
    (List.map
       (fun r ->
         [
           r.defense;
           (match r.measured_overhead with
           | Some o -> Table.pct (o -. 1.0)
           | None -> "-");
           r.paper_overhead;
           (if r.cpp then "yes" else "no");
         ]
         @ List.map glyph r.cells
         @ [
             String.concat "/"
               (List.map (fun c -> string_of_int c.detections) r.cells);
           ])
       rows)
