let table1 =
  [
    ("Push", 1.21, 1.06);
    ("AVX", 1.10, 1.04);
    ("BTDP", 1.05, 1.02);
    ("Prolog", 1.06, 1.02);
    ("Layout", 1.02, 1.00);
  ]

let oia_geomean = 1.0079
let oia_max = 1.0361

let table2 =
  [
    ("perlbench", 9_435_182_963.0);
    ("gcc", 7_471_474_392.0);
    ("mcf", 38_657_893_688.0);
    ("lbm", 20_906_700.0);
    ("omnetpp", 23_536_583_520.0);
    ("xalancbmk", 12_430_137_048.0);
    ("x264", 3_400_115_007.0);
    ("deepsjeng", 11_366_032_234.0);
    ("imagick", 10_441_212_712.0);
    ("leela", 13_108_456_661.0);
    ("nab", 135_237_228_510.0);
    ("xz", 3_287_645_643.0);
  ]

let figure6_geomean_range = (1.066, 1.085)
let figure6_worst = ("omnetpp (Xeon)", 1.21)

let webserver_drop_intel = [ ("nginx", 0.13); ("apache", 0.12) ]
let webserver_drop_amd = (0.03, 0.04)

let spec_memory_overhead = (0.01, 0.03)
let webserver_memory_overhead = 1.0
let webserver_memory_btdp_share = 0.55

let guess_probability_example = (1.0 /. 11.0) ** 4.0
