(** Section 6.3's scalability experiment: compile large generated programs
    under full R2C and verify they run correctly (the browser-build
    analogue — correctness at scale, not speed). *)

type row = {
  funcs : int;
  ir_instrs : int;
  text_kb : int;
  data_kb : int;
  compile_seconds : float;
  run_ok : bool;  (** output matches the reference interpreter *)
}

val run : ?sizes:int list -> unit -> row list
val print : row list -> unit
