(** Section 6.2.4's webserver benchmarks: nginx/Apache throughput under
    full R2C versus baseline. Throughput is CPU-bound at saturation, so the
    drop equals the cycle overhead of the serving loop; the harness also
    prints the wrk-style saturation sweep used to pick the measurement
    point. *)

type result = {
  flavour : string;
  machine : string;
  base_throughput : float;  (** requests per megacycle *)
  r2c_throughput : float;
  drop : float;  (** fraction *)
}

val run : ?seeds:int list -> ?requests:int -> unit -> result list
val print : result list -> unit
