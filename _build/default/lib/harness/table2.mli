(** Table 2: median executed call frequencies of the SPEC-shaped suite
    (tail calls excluded — our codegen emits none, matching the paper's
    instrumentation note). The simulated counts sit at a documented scale
    (~2.5e-7) of the paper's; the table reports both and the resulting
    relative shape. *)

type row = {
  name : string;
  measured_calls : int;
  paper_calls : float;
  measured_rel : float;  (** relative to lbm *)
  paper_rel : float;
}

val run : unit -> row list
val print : row list -> unit
