(** Table 1: maximum and geometric-mean overhead of R2C's components
    (Section 6.2.1–6.2.3), plus the offset-invariant-addressing isolation
    of Section 6.2.1. Components are measured in isolation on the SPEC
    suite, recompiled with a fresh seed per run, on the EPYC Rome profile
    — the paper's methodology. *)

type row = {
  label : string;
  max : float;
  geomean : float;
  per_benchmark : (string * float) list;
}

(** [run ?seeds ()] — default seeds [3; 11; 27]. *)
val run : ?seeds:int list -> unit -> row list

(** [print rows] — render with the paper's Table 1 beside it. *)
val print : row list -> unit
