open R2c_machine
module Stats = R2c_util.Stats

type stats = {
  total_cycles : float;
  steady_cycles : float;
  calls : int;
  insns : int;
  maxrss_bytes : int;
}

let run ?(profile = Cost.epyc_rome) img =
  let p = Process.start ~profile img in
  let main_addr = Image.symbol img "main" in
  (match Process.run_until p ~break:[ main_addr ] with
  | `Hit -> ()
  | `Done o -> failwith ("Measure.run: never reached main: " ^ Process.outcome_to_string o));
  let at_main = Process.cycles p in
  match Process.run p with
  | Process.Exited 0 ->
      {
        total_cycles = Process.cycles p;
        steady_cycles = Process.cycles p -. at_main;
        calls = Process.calls p;
        insns = Process.insns p;
        maxrss_bytes = Process.maxrss_bytes p;
      }
  | o -> failwith ("Measure.run: " ^ Process.outcome_to_string o)

let overhead ?profile ~seeds cfg program =
  let base = (run ?profile (R2c_compiler.Driver.compile program)).steady_cycles in
  let ratios =
    List.map
      (fun seed ->
        let img = R2c_core.Pipeline.compile ~seed cfg program in
        (run ?profile img).steady_cycles /. base)
      seeds
  in
  Stats.median ratios

let suite_overheads ?profile ~seeds cfg =
  List.map
    (fun (b : R2c_workloads.Spec.benchmark) ->
      (b.name, overhead ?profile ~seeds cfg b.program))
    (R2c_workloads.Spec.all ())

let geomean_max rows =
  let values = List.map snd rows in
  (Stats.maximum values, Stats.geomean values)
