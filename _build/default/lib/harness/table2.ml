module Table = R2c_util.Table

type row = {
  name : string;
  measured_calls : int;
  paper_calls : float;
  measured_rel : float;
  paper_rel : float;
}

let run () =
  let raw =
    List.map
      (fun (b : R2c_workloads.Spec.benchmark) ->
        (* Median executed calls across the benchmark's inputs, as the
           paper's Table 2 does. *)
        let calls =
          R2c_util.Stats.median_int
            (List.map
               (fun p -> (Measure.run (R2c_compiler.Driver.compile p)).Measure.calls)
               b.inputs)
        in
        (b.name, calls, b.paper_calls))
      (R2c_workloads.Spec.all ())
  in
  let base_measured =
    List.fold_left (fun acc (_, c, _) -> min acc c) max_int raw |> float_of_int
  in
  let base_paper = List.fold_left (fun acc (_, _, p) -> Float.min acc p) infinity raw in
  List.map
    (fun (name, measured_calls, paper_calls) ->
      {
        name;
        measured_calls;
        paper_calls;
        measured_rel = float_of_int measured_calls /. base_measured;
        paper_rel = paper_calls /. base_paper;
      })
    raw

let print rows =
  Table.print ~title:"Table 2: median call frequencies (measured at ~2.5e-7 scale)"
    ~headers:[ "benchmark"; "calls"; "paper calls"; "rel (lbm=1)"; "paper rel" ]
    ~aligns:[ Table.Left; Right; Right; Right; Right ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.measured_calls;
           Printf.sprintf "%.0f" r.paper_calls;
           Printf.sprintf "%.0f" r.measured_rel;
           Printf.sprintf "%.0f" r.paper_rel;
         ])
       rows)
