(** Ablation studies for the design choices DESIGN.md calls out.

    Beyond the paper's own tables, these sweeps quantify the trade-offs the
    paper states qualitatively:

    - {!btra_count}: overhead versus the analytic guess probability as the
      per-site BTRA count R varies (Section 7.2.1's security knob);
    - {!setups}: every setup flavour, reproducing Section 7.1's vector
      claims (SSE fallback; AVX-512 halves the impact, or buys twice the
      BTRAs at the AVX price) and pricing the Section 7.3 consistency
      checks;
    - {!btdp_density}: overhead as the per-function BTDP range grows,
      against the expected camouflage ratio;
    - {!guard_pages}: memory cost of the guard-page pool;
    - {!pool_size}: empirical BTRA-set reuse across call sites as the
      booby-trap pool grows (mimicry property C's combinatorics,
      Section 4.1);
    - {!call_overhead_correlation}: Section 7.1's observation that call
      frequency correlates with, but does not predict, overhead. *)

type row = { label : string; overhead : float option; metric : string }

(** Benchmarks used by the sweeps (a fast suite subset). *)
val subset : string list

val btra_count : ?values:int list -> ?seed:int -> unit -> row list
val setups : ?seed:int -> unit -> row list
val btdp_density : ?values:int list -> ?seed:int -> unit -> row list
val guard_pages : ?values:int list -> ?seed:int -> unit -> row list
val pool_size : ?values:int list -> ?seed:int -> unit -> row list

(** Pearson r between Table 2 call counts and Figure 6 overheads, plus the
    two series. *)
val call_overhead_correlation : ?seed:int -> unit -> float * (string * int * float) list

val print_all : unit -> unit
